"""Tests for the classroom scene builder (§5)."""

import numpy as np
import pytest

from repro import build_mesh
from repro.geometry import ClassroomScene
from repro.geometry.classroom import ROOM_X, ROOM_Y, ROOM_Z


@pytest.fixture(scope="module")
def scene():
    return ClassroomScene(n_rows=2, n_cols=3, with_monitors=True)


@pytest.fixture(scope="module")
def mesh(scene):
    return build_mesh(scene.domain(), 4, 5, p=1)


def test_seat_layout(scene):
    assert len(scene.seats) == 6
    for x, y in scene.seats:
        assert 0 < x < ROOM_X and 0 < y < ROOM_Y


def test_room_predicate_carves_outside(scene):
    pts = np.array([[ROOM_X / 2, ROOM_Y + 0.5, 0.5],  # beyond back wall
                    [ROOM_X / 2, ROOM_Y / 2, ROOM_Z + 0.2],  # above ceiling
                    [1.6, 1.67, 0.9]])  # mid-air inside the room
    c = scene.predicate.carved_points(pts)
    assert list(c) == [True, True, False]


def test_furniture_carved(scene):
    x, y = scene.seats[0]
    desk_pt = [x, y, scene.desk_h + 0.015]
    head_pt = [x, y + scene.desk_size[1] / 2 + 0.12, 0.50]
    c = scene.predicate.carved_points(np.array([desk_pt, head_pt]))
    assert c.all()


def test_monitors_toggle_geometry():
    a = ClassroomScene(with_monitors=True)
    b = ClassroomScene(with_monitors=False)
    x, y = a.seats[0]
    dy = a.desk_size[1]
    monitor_pt = np.array([[x, y - dy / 2 + 0.05, a.desk_h + 0.15]])
    assert a.predicate.carved_points(monitor_pt)[0]
    assert not b.predicate.carved_points(monitor_pt)[0]


def test_mesh_builds_and_boundary_rich(mesh):
    assert mesh.n_elem > 500
    assert len(mesh.boundary_elements) > 100
    assert mesh.nodes.carved_node.sum() > 0


def test_velocity_bc_patches(scene, mesh):
    mask, vals, outlet = scene.velocity_bc(mesh, inlet_speed=2.0)
    inflow = vals[:, 2] < 0
    assert inflow.sum() > 0
    assert np.all(vals[inflow, 2] == -2.0)
    assert outlet.sum() > 0
    # outlets are velocity-free (pressure BC)
    assert not mask[outlet].any()
    # inlets and outlets don't overlap
    assert not np.any(inflow & outlet)


def test_cough_source_peaks_at_infected_head(scene, mesh):
    src = scene.cough_source(rate=2.0)
    pts = mesh.node_coords()
    v = src(pts)
    assert v.max() <= 2.0 + 1e-12
    x, y = scene.seats[scene.infected]
    head = np.array([x, y + scene.desk_size[1] / 2 + 0.12, 0.55])
    d = np.linalg.norm(pts[np.argmax(v)] - head)
    assert d < 0.25


def test_breathing_zones_one_per_seat(scene):
    zones = scene.breathing_zones()
    assert len(zones) == len(scene.seats)
    for z in zones:
        assert z[3] > 0  # positive radius


def test_infected_index_selects_source():
    s0 = ClassroomScene(infected=0)
    s1 = ClassroomScene(infected=3)
    pts = np.array([[1.0, 1.0, 0.5]])
    assert s0.cough_source()(pts)[0] != s1.cough_source()(pts)[0]
