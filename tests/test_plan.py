"""Tests for the unified operator-plan layer (repro.core.plan +
repro.parallel.ghost.ExchangePlan): fingerprint caching, adaptivity
invalidation, operator equivalence, persistent ghost-exchange plans and
obs-span preservation."""

import numpy as np
import pytest

from repro import Domain, build_mesh, obs
from repro.core.adapt import coarsen_leaves, refine_leaves
from repro.core.assembly import assemble
from repro.core.matvec import MapBasedMatVec, traversal_matvec
from repro.core.mesh import mesh_from_leaves
from repro.core.plan import TraversalPlan, mesh_fingerprint, operator_context
from repro.geometry import BoxRetain, SphereCarve
from repro.parallel import (
    SimComm,
    analyze_partition,
    distributed_matvec,
    exchange_plan,
    partition_mesh,
)
from repro.parallel.ghost import ExchangePlan


@pytest.fixture(scope="module")
def sphere_mesh():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    return build_mesh(dom, 2, 4, p=1)


@pytest.fixture(scope="module")
def channel_mesh():
    dom = Domain(
        BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0
    )
    return build_mesh(dom, 3, 4, p=1)


# -- context caching and fingerprints -----------------------------------


def test_context_cached_same_object(sphere_mesh):
    ctx1 = operator_context(sphere_mesh)
    ctx2 = operator_context(sphere_mesh)
    assert ctx1 is ctx2
    assert sphere_mesh.operator_context() is ctx1
    # the lazily derived artifacts are also computed once
    assert ctx1.traversal is ctx2.traversal
    assert ctx1.scatter is ctx2.scatter
    assert ctx1.big_gather(2) is ctx2.big_gather(2)


def test_fingerprint_stable_for_same_content(sphere_mesh):
    assert mesh_fingerprint(sphere_mesh) == mesh_fingerprint(sphere_mesh)
    # an identical rebuild of the same mesh content hashes identically
    rebuilt = mesh_from_leaves(
        sphere_mesh.domain, sphere_mesh.leaves, p=sphere_mesh.p, balance=False
    )
    assert mesh_fingerprint(rebuilt) == mesh_fingerprint(sphere_mesh)
    # but the context is per-object: the rebuild gets its own
    assert operator_context(rebuilt) is not operator_context(sphere_mesh)


def test_fingerprint_changes_after_refine_and_coarsen(sphere_mesh):
    dom = sphere_mesh.domain
    fp0 = mesh_fingerprint(sphere_mesh)
    marks = np.zeros(sphere_mesh.n_elem, bool)
    marks[: max(1, sphere_mesh.n_elem // 8)] = True
    refined = mesh_from_leaves(
        dom, refine_leaves(dom, sphere_mesh.leaves, marks), p=sphere_mesh.p
    )
    assert mesh_fingerprint(refined) != fp0

    all_marks = np.ones(refined.n_elem, bool)
    coarsened = mesh_from_leaves(
        dom, coarsen_leaves(dom, refined.leaves, all_marks), p=refined.p
    )
    assert mesh_fingerprint(coarsened) != mesh_fingerprint(refined)


def test_stale_context_not_reused_after_leaf_swap():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 4, p=1)
    ctx0 = operator_context(mesh)
    marks = np.ones(mesh.n_elem, bool)
    refined = mesh_from_leaves(dom, refine_leaves(dom, mesh.leaves, marks), p=1)
    # simulate in-place adaptation: swap the mesh content under the
    # same object — the stored context must be detected as stale
    mesh.leaves = refined.leaves
    mesh.labels = refined.labels
    mesh.nodes = refined.nodes
    ctx1 = operator_context(mesh)
    assert ctx1 is not ctx0
    assert ctx1.fingerprint != ctx0.fingerprint
    # and the refreshed context serves consistent operator artifacts
    u = np.linspace(0, 1, mesh.n_nodes)
    assert np.allclose(MapBasedMatVec(mesh)(u), assemble(mesh) @ u, atol=1e-12)


def test_stale_context_detected_on_nodes_swap_same_fingerprint():
    # regression: an in-place mutation that swaps in *identical content*
    # (same fingerprint) but a different nodes object must still rebuild
    # the context — its cached gather/traversal reference the old arrays
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 4, p=1)
    ctx0 = operator_context(mesh)
    rebuilt = mesh_from_leaves(dom, mesh.leaves, p=1, balance=False)
    assert mesh_fingerprint(rebuilt) == ctx0.fingerprint
    mesh.nodes = rebuilt.nodes  # same content, different identity
    ctx1 = operator_context(mesh)
    assert ctx1 is not ctx0
    assert ctx1.fingerprint == ctx0.fingerprint
    assert ctx1.nodes is mesh.nodes
    u = np.linspace(0, 1, mesh.n_nodes)
    assert np.allclose(MapBasedMatVec(mesh)(u), assemble(mesh) @ u, atol=1e-12)


# -- operator equivalence through the context ---------------------------


@pytest.mark.parametrize("fixture", ["sphere_mesh", "channel_mesh"])
def test_context_operators_match_assembled(fixture, request):
    mesh = request.getfixturevalue(fixture)
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    A = assemble(mesh)
    assert np.allclose(MapBasedMatVec(mesh)(u), A @ u, atol=1e-12)
    assert np.allclose(traversal_matvec(mesh, u), A @ u, atol=1e-10)
    M = assemble(mesh, kind="mass")
    assert np.allclose(MapBasedMatVec(mesh, kind="mass")(u), M @ u, atol=1e-12)
    assert np.allclose(traversal_matvec(mesh, u, kind="mass"), M @ u, atol=1e-10)


def test_traversal_table_is_flat(sphere_mesh):
    plan = operator_context(sphere_mesh).traversal
    n_elem, npe = sphere_mesh.n_elem, sphere_mesh.npe
    assert isinstance(plan, TraversalPlan)
    for arr in (plan.slot_idx, plan.slot_gid, plan.slot_w):
        assert isinstance(arr, np.ndarray) and arr.ndim == 1
    assert plan.slot_ptr.shape == (n_elem + 1,)
    assert plan.slot_ptr[-1] == len(plan.slot_gid)
    # the flat table is exactly the gather operator, element by element
    g = operator_context(sphere_mesh).gather
    for e in range(0, n_elem, max(1, n_elem // 17)):
        slot, gid, w = plan.rows(e)
        rows = g[e * npe : (e + 1) * npe].tocoo()
        assert np.array_equal(slot, rows.row)
        assert np.array_equal(gid, rows.col)
        assert np.array_equal(w, rows.data)


def test_identity_elements_match_gather(sphere_mesh):
    plan = operator_context(sphere_mesh).traversal
    g = operator_context(sphere_mesh).gather
    npe = sphere_mesh.npe
    for e in range(sphere_mesh.n_elem):
        blk = g[e * npe : (e + 1) * npe]
        is_ident = blk.nnz == npe and np.all(blk.data == 1.0) and np.all(
            np.diff(blk.indptr) == 1
        )
        assert bool(plan.identity_elem[e]) == bool(is_ident)
    # a carved adaptive mesh has both kinds
    assert plan.identity_elem.any()
    assert not plan.identity_elem.all()


def test_level_batches_partition_elements(sphere_mesh):
    ctx = operator_context(sphere_mesh)
    batches = ctx.level_batches
    seen = np.concatenate([idx for _, idx in batches])
    assert np.array_equal(np.sort(seen), np.arange(sphere_mesh.n_elem))
    for level, idx in batches:
        assert np.all(ctx.levels[idx] == level)
    levels = [lv for lv, _ in batches]
    assert levels == sorted(levels)


# -- persistent exchange plans ------------------------------------------


def test_exchange_plan_cached_per_layout(sphere_mesh):
    layout = analyze_partition(sphere_mesh, partition_mesh(sphere_mesh, 4))
    p1 = exchange_plan(sphere_mesh, layout)
    p2 = exchange_plan(sphere_mesh, layout)
    assert p1 is p2
    # a second layout gets its own plan
    layout2 = analyze_partition(sphere_mesh, partition_mesh(sphere_mesh, 3))
    assert exchange_plan(sphere_mesh, layout2) is not p1


def test_exchange_plan_invalidated_by_content_change():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 4, p=1)
    layout = analyze_partition(mesh, partition_mesh(mesh, 3))
    p1 = exchange_plan(mesh, layout)
    refined = mesh_from_leaves(
        dom, refine_leaves(dom, mesh.leaves, np.ones(mesh.n_elem, bool)), p=1
    )
    layout_r = analyze_partition(refined, partition_mesh(refined, 3))
    p2 = exchange_plan(refined, layout_r)
    assert p2 is not p1
    assert p2.fingerprint != p1.fingerprint


@pytest.mark.parametrize("nranks", [2, 7])
def test_distributed_plan_reuse_bit_identical(sphere_mesh, nranks):
    """Cached-plan applies are bit-identical to fresh-plan applies and
    to each other, and match the serial MATVEC."""
    mesh = sphere_mesh
    rng = np.random.default_rng(1)
    u = rng.standard_normal(mesh.n_nodes)
    layout = analyze_partition(mesh, partition_mesh(mesh, nranks))
    cached = distributed_matvec(mesh, layout, u, SimComm(nranks))
    again = distributed_matvec(mesh, layout, u, SimComm(nranks))
    fresh = distributed_matvec(
        mesh, layout, u, SimComm(nranks), plan=ExchangePlan(mesh, layout)
    )
    assert np.array_equal(cached, again)
    assert np.array_equal(cached, fresh)
    assert np.allclose(cached, MapBasedMatVec(mesh)(u), atol=1e-10)


def test_exchange_plan_hoists_per_call_artifacts(sphere_mesh):
    """The rank-local gathers and exchange index arrays live on the plan
    (built once), not rebuilt inside distributed_matvec."""
    mesh = sphere_mesh
    layout = analyze_partition(mesh, partition_mesh(mesh, 4))
    plan = exchange_plan(mesh, layout)
    g_loc_before = [g for g in plan.g_loc]
    u = np.linspace(0, 1, mesh.n_nodes)
    distributed_matvec(mesh, layout, u, SimComm(4))
    assert all(a is b for a, b in zip(g_loc_before, plan.g_loc))
    for r in range(layout.nranks):
        lo, hi = layout.splits[r], layout.splits[r + 1]
        if hi > lo:
            assert plan.g_loc[r].shape == (
                (hi - lo) * mesh.npe,
                len(layout.ref_nodes[r]),
            )


# -- obs spans survive the refactor -------------------------------------


def _span_paths(doc: dict) -> set:
    from repro.obs.regress import flatten_spans

    return set(flatten_spans(doc))


def test_matvec_spans_preserved(sphere_mesh):
    mesh = sphere_mesh
    layout = analyze_partition(mesh, partition_mesh(mesh, 3))
    exchange_plan(mesh, layout)  # plan build outside the traced region
    u = np.linspace(0, 1, mesh.n_nodes)
    obs.reset()
    obs.enable()
    try:
        distributed_matvec(mesh, layout, u, SimComm(3))
        MapBasedMatVec(mesh)(u)
        traversal_matvec(mesh, u)
        doc = obs.collect("span-preservation")
    finally:
        obs.disable()
    paths = _span_paths(doc)
    expected = {
        "matvec.exchange.pre",
        "matvec.exchange.post",
        "matvec.rank",
        "matvec.rank/matvec.top_down",
        "matvec.rank/matvec.leaf",
        "matvec.rank/matvec.bottom_up",
        "matvec.apply",
        "matvec.traversal",
        "matvec.traversal/matvec.top_down",
        "matvec.traversal/matvec.leaf",
        "matvec.traversal/matvec.bottom_up",
    }
    assert expected <= paths, f"missing spans: {expected - paths}"


def test_trace_diff_no_counter_drift(sphere_mesh):
    """Two identical runs produce artifacts with zero counter drift on
    the deterministic matvec counters (the Fig 7 breakdown inputs)."""
    from repro.obs.regress import diff_artifacts

    mesh = sphere_mesh
    layout = analyze_partition(mesh, partition_mesh(mesh, 3))
    u = np.linspace(0, 1, mesh.n_nodes)

    def run():
        obs.reset()
        obs.enable()
        try:
            distributed_matvec(mesh, layout, u, SimComm(3))
            traversal_matvec(mesh, u)
            return obs.collect("drift-check")
        finally:
            obs.disable()

    base, new = run(), run()
    deltas = diff_artifacts(base, new, tol=1e9)  # time deltas irrelevant
    matvec_deltas = [d for d in deltas if d.path.startswith("matvec")]
    assert matvec_deltas, "no matvec spans recorded"
    for d in matvec_deltas:
        assert d.status not in ("added", "removed"), d.path
        assert not d.counter_deltas, (d.path, d.counter_deltas)
