"""Tests for the SFC oracles (Morton and Hilbert)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domain import Domain
from repro.core.construct import construct_uniform
from repro.core.octant import OctantSet, max_level
from repro.core.sfc import HilbertOrder, MortonOrder, get_curve, sfc_sort_order


def test_get_curve_resolution():
    assert get_curve("morton").name == "morton"
    assert get_curve("hilbert").name == "hilbert"
    mo = MortonOrder()
    assert get_curve(mo) is mo
    with pytest.raises(ValueError):
        get_curve("peano")


def test_morton_keys_2d_level1():
    m = max_level(2)
    h = np.uint32(1 << (m - 1))
    anchors = np.array([[0, 0], [h, 0], [0, h], [h, h]], np.uint32)
    o = OctantSet(anchors, np.ones(4, np.uint8))
    keys = MortonOrder().keys(o)
    # Morton order: (0,0) < (1,0) < (0,1) < (1,1) with x as bit 0
    assert list(np.argsort(keys)) == [0, 1, 2, 3]


def test_hilbert_keys_2d_level1_classic_order():
    m = max_level(2)
    h = np.uint32(1 << (m - 1))
    anchors = np.array([[0, 0], [h, 0], [0, h], [h, h]], np.uint32)
    o = OctantSet(anchors, np.ones(4, np.uint8))
    keys = HilbertOrder().keys(o)
    order = list(np.argsort(keys))
    # classic U-shaped first-order Hilbert curve: a path through the 4
    # quadrants where consecutive quadrants share an edge
    seq = anchors[order].astype(np.int64)
    steps = np.abs(np.diff(seq, axis=0)).sum(axis=1)
    assert np.all(steps == int(h))


@pytest.mark.parametrize("dim", [2, 3])
def test_hilbert_full_grid_is_hamiltonian_path(dim):
    """Consecutive cells along the Hilbert curve are face-adjacent."""
    level = 4 if dim == 2 else 3
    t = construct_uniform(Domain(dim=dim), level, curve="hilbert")
    anch = t.anchors.astype(np.int64)
    size = int(t.sizes[0])
    d = np.abs(np.diff(anch, axis=0))
    # exactly one coordinate changes, by exactly one cell size
    assert np.all(d.sum(axis=1) == size)
    assert np.all((d != 0).sum(axis=1) == 1)


@pytest.mark.parametrize("curve", ["morton", "hilbert"])
@pytest.mark.parametrize("dim", [2, 3])
def test_keys_unique_on_uniform_grid(curve, dim):
    t = construct_uniform(Domain(dim=dim), 3, curve=curve)
    keys = get_curve(curve).keys(t)
    assert len(np.unique(keys)) == len(keys)


def test_octant_key_block_alignment():
    """An octant's key equals the min key over its descendants."""
    dom = Domain(dim=2)
    coarse = construct_uniform(dom, 2, curve="hilbert")
    fine = construct_uniform(dom, 5, curve="hilbert")
    hc = get_curve("hilbert")
    ck, fk = hc.keys(coarse), hc.keys(fine)
    span = np.uint64(1) << np.uint64(2 * (max_level(2) - 2))
    for i in range(len(coarse)):
        inside = (fk >= ck[i]) & (fk < ck[i] + span)
        # the octant's block contains exactly its 2^(2*3) descendants
        assert inside.sum() == 8**2
        assert fk[inside].min() == ck[i]


def test_ancestor_sorts_before_descendants():
    dom = Domain(dim=2)
    coarse = construct_uniform(dom, 1)
    fine = construct_uniform(dom, 3)
    both = OctantSet.concatenate([coarse, fine])
    order = sfc_sort_order(both, "morton")
    s = both[order]
    # the first octant must be the level-1 ancestor at the origin
    assert s.levels[0] == 1
    assert np.all(s.anchors[0] == 0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), dim=st.integers(2, 3))
def test_hilbert_key_injective_random(seed, dim):
    rng = np.random.default_rng(seed)
    m = max_level(dim)
    pts = rng.integers(0, 1 << m, (64, dim), dtype=np.uint64).astype(np.uint32)
    pts = np.unique(pts, axis=0)
    keys = HilbertOrder().keys_from_coords(pts, dim)
    assert len(np.unique(keys)) == len(pts)
