"""Tests for the IncompleteMesh facade, Domain, and misc core pieces."""

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh, mesh_from_leaves
from repro.core.construct import construct_adaptive
from repro.geometry import RegionLabel, SphereCarve


@pytest.fixture(scope="module")
def mesh():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    return build_mesh(dom, 3, 5, p=1)


def test_summary_contains_counts(mesh):
    s = mesh.summary()
    assert str(mesh.n_elem) in s and str(mesh.n_nodes) in s


def test_boundary_elements_are_intercepted(mesh):
    lab = mesh.domain.classify_octants(mesh.leaves)
    assert np.array_equal(
        np.flatnonzero(lab == RegionLabel.RETAIN_BOUNDARY),
        mesh.boundary_elements,
    )


def test_element_sizes_match_levels(mesh):
    h = mesh.element_sizes()
    lv = mesh.leaves.levels.astype(int)
    assert np.allclose(h, 2.0 ** (-lv.astype(float)))


def test_element_centers_inside_domain(mesh):
    ctr = mesh.element_centers()
    assert np.all((ctr > 0) & (ctr < 1))


def test_dirichlet_mask_is_union(mesh):
    m = mesh.dirichlet_mask
    assert np.array_equal(
        m, mesh.nodes.carved_node | mesh.nodes.domain_boundary
    )


def test_mesh_from_leaves_check_flag():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    leaves = construct_adaptive(dom, 2, 5)
    # without balancing the raw leaf set may violate 2:1
    m = mesh_from_leaves(dom, leaves, balance=True, check=True)
    assert m.n_elem >= len(leaves)


def test_domain_validation():
    with pytest.raises(ValueError):
        Domain()  # neither predicate nor dim
    with pytest.raises(ValueError):
        Domain(SphereCarve([0.5, 0.5], 0.1), dim=3)  # dim mismatch


def test_domain_query_counters():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    assert dom.cell_queries == 0
    build_mesh(dom, 2, 4, p=1)
    ncell, npt = dom.cell_queries, dom.point_queries
    assert ncell > 0 and npt > 0
    dom.reset_query_counters()
    assert dom.cell_queries == 0 and dom.point_queries == 0


def test_domain_h_unit(mesh):
    from repro.core.octant import max_level

    assert mesh.domain.h_unit == pytest.approx(1.0 / (1 << max_level(2)))


def test_build_mesh_default_boundary_level():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    m = build_mesh(dom, 3)  # boundary defaults to base
    assert m.leaves.levels.max() == 3


def test_node_coords_shape(mesh):
    pts = mesh.node_coords()
    assert pts.shape == (mesh.n_nodes, 2)
    assert pts.min() >= 0 and pts.max() <= 1


def test_uniform_mesh_has_no_hanging():
    m = build_uniform_mesh(Domain(dim=3), 2, p=2)
    assert m.nodes.n_hanging_slots == 0
