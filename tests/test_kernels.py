"""Tests for repro.kernels: the swappable multi-backend kernel layer.

Covers the backend registry (precedence, typed errors), same-backend
bit-identity, cross-backend numerical equivalence of matvec/assembly
on carved and channel meshes, the serve-layer per-request override,
and the measured roofline counters the facade publishes.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Domain, build_mesh, build_uniform_mesh, obs
from repro.analysis import measured_kernel_points
from repro.core.assembly import assemble, assemble_traversal
from repro.core.matvec import MapBasedMatVec, TraversalPlan, traversal_matvec
from repro.fem import TransportProblem
from repro.fem.poisson import PoissonProblem
from repro.geometry import BoxRetain, SphereCarve
from repro.kernels import (
    ENV_VAR,
    NUMBA_AVAILABLE,
    BackendUnavailable,
    NumpyKernels,
    UnknownBackend,
    available_backends,
    backend_names,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.kernels.numba_backend import _py_kernels
from repro.serve import SolveRequest, SolverService

pytestmark = pytest.mark.kernels

NUMBA_PARAM = pytest.param(
    "numba",
    marks=pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed"),
)
ALT_BACKENDS = ["einsum", NUMBA_PARAM]


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


@pytest.fixture(scope="module")
def sphere_mesh():
    return build_mesh(Domain(SphereCarve([0.62, 0.38], 0.2)), 3, 5, p=1)


@pytest.fixture(scope="module")
def channel_mesh():
    dom = Domain(
        BoxRetain([0, 0, 0], [4, 1, 1], domain=([0, 0, 0], [4, 4, 4])),
        scale=4.0,
    )
    return build_mesh(dom, 2, 3, p=1)


# -- registry ------------------------------------------------------------


def test_unknown_backend_raises():
    with pytest.raises(UnknownBackend, match="nope"):
        get_backend("nope")
    with pytest.raises(UnknownBackend):
        resolve_backend_name("nope")
    with pytest.raises(UnknownBackend):
        set_default_backend("nope")
    with pytest.raises(UnknownBackend):
        with use_backend("nope"):
            pass  # pragma: no cover


def test_duplicate_registration_requires_replace():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("numpy", NumpyKernels())
    register_backend("numpy", NumpyKernels(), replace=True)


def test_registered_backends_and_availability():
    names = backend_names()
    assert {"numpy", "einsum", "numba"} <= set(names)
    avail = available_backends()
    assert avail["numpy"] and avail["einsum"]
    assert avail["numba"] == NUMBA_AVAILABLE


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
def test_unavailable_backend_typed_error():
    with pytest.raises(BackendUnavailable, match="numba"):
        get_backend("numba")
    # selection by name alone is legal; instantiation is what fails
    assert resolve_backend_name("numba") == "numba"


def test_selection_precedence(monkeypatch):
    # 1. hard default
    assert resolve_backend_name() == "numpy"
    # 2. environment variable
    monkeypatch.setenv(ENV_VAR, "einsum")
    assert resolve_backend_name() == "einsum"
    # 3. CLI/session default beats the environment
    set_default_backend("numpy")
    assert default_backend() == "numpy"
    assert resolve_backend_name() == "numpy"
    # 4. scoped context beats the session default (and nests)
    with use_backend("einsum"):
        assert resolve_backend_name() == "einsum"
        with use_backend("numpy"):
            assert resolve_backend_name() == "numpy"
        assert resolve_backend_name() == "einsum"
    assert resolve_backend_name() == "numpy"
    # 5. an explicit argument beats everything
    with use_backend("einsum"):
        assert resolve_backend_name("numpy") == "numpy"
    # use_backend(None) is a passthrough (per-request override absent)
    with use_backend(None):
        assert resolve_backend_name() == "numpy"


# -- same-backend bit-identity -------------------------------------------


def test_numpy_backend_is_bit_stable(sphere_mesh):
    mesh = sphere_mesh
    u = np.random.default_rng(0).standard_normal(mesh.n_nodes)
    mv = MapBasedMatVec(mesh)
    assert mv(u).tobytes() == mv(u).tobytes()
    y1 = traversal_matvec(mesh, u)
    y2 = traversal_matvec(mesh, u)
    assert y1.tobytes() == y2.tobytes()
    A1, A2 = assemble(mesh), assemble(mesh)
    assert A1.data.tobytes() == A2.data.tobytes()
    assert A1.indices.tobytes() == A2.indices.tobytes()


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_alt_backend_is_bit_stable(sphere_mesh, backend):
    mesh = sphere_mesh
    u = np.random.default_rng(1).standard_normal(mesh.n_nodes)
    with use_backend(backend):
        y1 = traversal_matvec(mesh, u)
        y2 = traversal_matvec(mesh, u)
        A1, A2 = assemble(mesh), assemble(mesh)
    assert y1.tobytes() == y2.tobytes()
    assert A1.data.tobytes() == A2.data.tobytes()


# -- cross-backend equivalence -------------------------------------------


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("case", ["sphere", "channel"])
@pytest.mark.parametrize("kind", ["stiffness", "mass"])
def test_matvec_equivalence(sphere_mesh, channel_mesh, backend, case, kind):
    mesh = sphere_mesh if case == "sphere" else channel_mesh
    u = np.random.default_rng(2).standard_normal(mesh.n_nodes)
    y_ref = MapBasedMatVec(mesh, kind=kind)(u)
    t_ref = traversal_matvec(mesh, u, kind=kind)
    with use_backend(backend):
        y_alt = MapBasedMatVec(mesh, kind=kind)(u)
        t_alt = traversal_matvec(mesh, u, kind=kind)
    assert np.allclose(y_alt, y_ref, atol=1e-10)
    assert np.allclose(t_alt, t_ref, atol=1e-10)
    assert np.allclose(t_alt, y_ref, atol=1e-10)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("case", ["sphere", "channel"])
@pytest.mark.parametrize("kind", ["stiffness", "mass"])
def test_assembly_equivalence(sphere_mesh, channel_mesh, backend, case, kind):
    mesh = sphere_mesh if case == "sphere" else channel_mesh
    A_ref = assemble(mesh, kind=kind)
    with use_backend(backend):
        A_alt = assemble(mesh, kind=kind)
    assert A_alt.shape == A_ref.shape
    assert abs(A_alt - A_ref).max() < 1e-12
    # and both match the paper's §3.6 traversal assembly
    assert abs(A_alt - assemble_traversal(mesh, kind=kind)).max() < 1e-12


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_poisson_sbm_solve_equivalence(backend):
    mesh = build_mesh(Domain(SphereCarve([0.5, 0.5], 0.35)), 3, 4, p=1)
    u_ref = PoissonProblem(mesh, f=1.0, method="sbm").solve()
    with use_backend(backend):
        u_alt = PoissonProblem(mesh, f=1.0, method="sbm").solve()
    assert np.allclose(u_alt, u_ref, atol=1e-8)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_transport_equivalence(backend):
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    vel = np.tile([1.0, 0.0], (mesh.n_nodes, 1))
    pts = mesh.node_coords()
    c0 = np.exp(-100 * ((pts - 0.5) ** 2).sum(axis=1))
    c_ref = TransportProblem(mesh, vel, kappa=0.01, dt=0.05).run(c0, 2)
    with use_backend(backend):
        c_alt = TransportProblem(mesh, vel, kappa=0.01, dt=0.05).run(c0, 2)
    assert np.allclose(c_alt, c_ref, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_einsum_traversal_property(seed, sphere_mesh):
    """Property: the einsum flat traversal agrees with the recursive
    reference for arbitrary input vectors."""
    mesh = sphere_mesh
    u = np.random.default_rng(seed).standard_normal(mesh.n_nodes)
    plan = TraversalPlan(mesh)
    y_ref = traversal_matvec(mesh, u, plan=plan)
    with use_backend("einsum"):
        y_alt = traversal_matvec(mesh, u, plan=plan)
    assert np.allclose(y_alt, y_ref, atol=1e-10)


def test_numba_python_bodies_match_numpy():
    """The pre-jit pure-Python kernel bodies compute the same results
    as numpy — verifiable even where numba is not installed."""
    rng = np.random.default_rng(3)
    x, y = rng.standard_normal((2, 64))
    assert _py_kernels["dot"](x, y) == pytest.approx(float(x @ y), rel=1e-14)
    y2 = y.copy()
    _py_kernels["axpy"](0.5, x, y2)
    assert np.allclose(y2, y + 0.5 * x, atol=1e-14)


# -- serve integration ----------------------------------------------------


def _req(**kw):
    kw.setdefault(
        "geometry", {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.3}
    )
    kw.setdefault("base_level", 2)
    kw.setdefault("boundary_level", 3)
    return SolveRequest(**kw)


def test_request_backend_digest_stability():
    # None is omitted from the canonical doc: pre-backend digests hold
    r = _req()
    assert "backend" not in r.to_doc()
    assert "backend" not in r.solver_doc()
    r2 = _req(backend="einsum")
    assert r2.to_doc()["backend"] == "einsum"
    assert r2.digest != r.digest
    # backends must not share a solve batch
    assert r2.batch_key != r.batch_key
    # document round trip preserves the digest
    assert SolveRequest.from_doc(r2.to_doc()).digest == r2.digest
    assert SolveRequest.from_doc(r.to_doc()).digest == r.digest


def test_request_backend_validation():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        _req(backend="nope").validate()
    if not NUMBA_AVAILABLE:
        with pytest.raises(ValueError, match="not available"):
            _req(backend="numba").validate()
    _req(backend="einsum").validate()


def test_service_per_request_backend_override():
    svc = SolverService()
    svc.submit(_req(f=1.0))
    svc.submit(_req(f=1.0, backend="einsum"))
    obs.reset()
    obs.enable()
    try:
        done = svc.drain()
    finally:
        obs.disable()
    assert len(done) == 2 and all(r.ok for r in done)
    # different backends ran in separate batches ...
    assert all(r.batch_size == 1 for r in done)
    # ... and both backends' kernels actually executed
    backends = {m.backend for m in measured_kernel_points()}
    assert {"numpy", "einsum"} <= backends
    # same PDE: the two solutions agree to solver tolerance
    by_digest = {r.request_digest: r for r in done}
    assert len(by_digest) == 2


# -- measured roofline counters -------------------------------------------


def test_counters_published_and_parsed(sphere_mesh, tmp_path):
    mesh = sphere_mesh
    u = np.linspace(0.0, 1.0, mesh.n_nodes)
    obs.reset()
    obs.enable()
    try:
        MapBasedMatVec(mesh)(u)
        with use_backend("einsum"):
            traversal_matvec(mesh, u)
        live = measured_kernel_points()
        path = tmp_path / "kernels_artifact.json"
        obs.write_artifact(str(path), "kernels-test")
    finally:
        obs.disable()
    cells = {(m.kernel, m.backend) for m in live}
    assert ("gather", "numpy") in cells
    assert ("elem_apply", "numpy") in cells
    assert ("scatter", "numpy") in cells
    assert ("traversal", "einsum") in cells
    for m in live:
        assert m.calls >= 1 and m.flops > 0 and m.bytes > 0
        assert m.arithmetic_intensity > 0
        assert 0.0 <= m.fraction_of_peak
    # the same points reconstruct from the written run artifact ...
    from_path = measured_kernel_points(str(path))
    assert [m.to_doc() for m in from_path] == [m.to_doc() for m in live]
    # ... and from the loaded document
    doc = json.loads(path.read_text())
    from_doc = measured_kernel_points(doc)
    assert [m.to_doc() for m in from_doc] == [m.to_doc() for m in live]


def test_counters_silent_when_tracing_off(sphere_mesh):
    obs.reset()
    u = np.linspace(0.0, 1.0, sphere_mesh.n_nodes)
    MapBasedMatVec(sphere_mesh)(u)
    assert measured_kernel_points() == []


def test_flops_and_traffic_model_as_executed(sphere_mesh):
    """The cost model matches the batched gather→apply→scatter path as
    executed (the historical model ignored the gather/scatter flops)."""
    mv = MapBasedMatVec(sphere_mesh)
    npe = 2**sphere_mesh.dim
    expected = 4 * mv._gather.nnz + sphere_mesh.n_elem * (2 * npe**2 + npe)
    assert mv.flops() == expected
    g = mv._gather
    csr = 2 * (g.data.nbytes + g.indices.nbytes + g.indptr.nbytes)
    vec = 8 * (
        2 * sphere_mesh.n_nodes
        + 2 * sphere_mesh.n_elem * npe
        + sphere_mesh.n_elem
    )
    assert mv.traffic_bytes() == csr + vec
