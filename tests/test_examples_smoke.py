"""Smoke tests: the fast example scripts run end-to-end as documented.

(The slow flow-solver examples — drag_cylinder, drag_sphere,
classroom_airflow — are exercised through their underlying modules in
the solver tests and through the benches; running them here would
dominate the suite's wall time.)
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    r = _run("quickstart.py")
    assert r.returncode == 0, r.stderr
    assert "Poisson solved" in r.stdout
    assert "max diff" in r.stdout


def test_moving_object_runs():
    r = _run("moving_object.py")
    assert r.returncode == 0, r.stderr
    assert "re-meshing" in r.stdout


def test_channel_scaling_runs():
    r = _run("channel_scaling.py")
    assert r.returncode == 0, r.stderr
    assert "bit-identical" in r.stdout


def test_adaptive_multigrid_runs():
    r = _run("adaptive_multigrid.py")
    assert r.returncode == 0, r.stderr
    assert "multigrid" in r.stdout
    assert "coarsened mesh" in r.stdout


def test_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('#!', '"""')), script
        assert '__main__' in text, f"{script} is not runnable"
