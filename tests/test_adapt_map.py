"""Old↔new leaf correspondence and solution transfer across adaptation.

Covers the AMR-loop contracts: refine-then-coarsen restores the
original mesh fingerprint, the :class:`repro.core.adapt.AdaptMap` is
total and injective, and :func:`repro.core.interpolate.transfer_field`
reproduces polynomials up to the element degree exactly.
"""

import numpy as np
import pytest

from repro import Domain
from repro.core import balance_2to1, construct_adaptive, mesh_fingerprint
from repro.core.adapt import coarsen_leaves, leaf_correspondence, refine_leaves
from repro.core.interpolate import transfer_field
from repro.core.mesh import mesh_from_leaves
from repro.geometry import SphereCarve

pytestmark = pytest.mark.amr


@pytest.fixture(scope="module")
def domain():
    return Domain(SphereCarve([0.5, 0.5], 0.27), dim=2, scale=1.0)


@pytest.fixture(scope="module")
def leaves(domain):
    return construct_adaptive(domain, 5, 7)


def _refined(domain, leaves, seed=0, k=40):
    rng = np.random.default_rng(seed)
    marks = np.zeros(len(leaves), bool)
    marks[rng.choice(len(leaves), k, replace=False)] = True
    return balance_2to1(domain, refine_leaves(domain, leaves, marks))


def test_correspondence_total_and_injective(domain, leaves):
    new = _refined(domain, leaves)
    amap = leaf_correspondence(leaves, new)
    assert amap.is_total()
    cnt = np.diff(amap.src_ptr)
    # pure refinement: every new leaf has exactly one old source
    assert (cnt == 1).all()
    # injective in the refinement sense: each old leaf's derived set is
    # non-empty and the sets partition the new leaves
    ptr, rows = amap.old_to_new()
    ocnt = np.diff(ptr)
    assert (ocnt >= 1).all()
    assert int(ocnt.sum()) == amap.n_new
    assert len(np.unique(rows)) == amap.n_new  # disjoint images


def test_correspondence_coarsen_groups(domain, leaves):
    new = _refined(domain, leaves)
    # coarsening back: parents list their sibling groups as sources
    amap = leaf_correspondence(new, leaves)
    assert amap.is_total()
    cnt = np.diff(amap.src_ptr)
    assert cnt.max() > 1  # some leaf aggregates a refined group
    ss = amap.single_source()
    assert (ss[cnt == 1] >= 0).all()
    assert (ss[cnt > 1] == -1).all()


def test_refine_then_coarsen_restores_fingerprint(domain, leaves):
    mesh0 = mesh_from_leaves(domain, leaves, p=1, balance=False)
    fp0 = mesh_fingerprint(mesh0)
    current = _refined(domain, leaves, seed=1)
    assert mesh_fingerprint(
        mesh_from_leaves(domain, current, p=1, balance=False)
    ) != fp0
    # iterate coarsening guided by the correspondence: any leaf finer
    # than its original source is marked (one level merges per pass;
    # the balance ripple needs a few passes to unwind)
    for _ in range(10):
        amap = leaf_correspondence(leaves, current)
        ss = amap.single_source()
        src_lev = np.full(amap.n_new, -1)
        has = ss >= 0
        src_lev[has] = leaves.levels[ss[has]]
        marks = current.levels > src_lev
        if not marks.any():
            break
        nxt = coarsen_leaves(domain, current, marks)
        if len(nxt) == len(current) and np.array_equal(
            nxt.anchors, current.anchors
        ):
            break
        current = nxt
    mesh1 = mesh_from_leaves(domain, current, p=1, balance=False)
    assert mesh_fingerprint(mesh1) == fp0


@pytest.mark.parametrize("p", [1, 2])
def test_transfer_exact_for_polynomials(domain, leaves, p):
    """Refinement transfer reproduces degree-p polynomials exactly."""
    src = mesh_from_leaves(domain, leaves, p=p, balance=False)
    new = _refined(domain, leaves, seed=2)
    dst = mesh_from_leaves(domain, new, p=p)

    def poly(pts):
        x, y = pts[:, 0], pts[:, 1]
        if p == 1:
            return 1.0 + 2.0 * x - 3.0 * y + 0.5 * x * y
        return 1.0 + x - y + x * y + 0.25 * x**2 - 0.5 * y**2 + x**2 * y**2

    u_src = poly(src.node_coords())
    u_dst = transfer_field(src, dst, u_src)
    assert np.allclose(u_dst, poly(dst.node_coords()), atol=1e-12)


def test_transfer_total_after_coarsening(domain, leaves):
    # coarsening shifts nodes; the transfer must still cover every
    # destination node (kNN fallback for nodes off the source mesh)
    fine = _refined(domain, leaves, seed=3)
    src = mesh_from_leaves(domain, fine, p=1, balance=False)
    dst = mesh_from_leaves(domain, leaves, p=1, balance=False)
    u = np.sin(src.node_coords().sum(axis=1))
    out = transfer_field(src, dst, u)
    assert out.shape == (dst.n_nodes,)
    assert np.isfinite(out).all()
