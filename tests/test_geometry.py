"""Tests for the geometric predicates (repro.geometry.primitives)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    BoxCarve,
    BoxRetain,
    CapsuleCarve,
    CarveUnion,
    CylinderCarve,
    HalfSpaceCarve,
    RegionLabel,
    SphereCarve,
    SphereRetain,
)
from repro.geometry.predicate import EverywhereRetained


def _cells(rng, n, dim, size=0.1):
    lo = rng.uniform(0, 1 - size, (n, dim))
    return lo, lo + rng.uniform(0.01, size, (n, dim))


def test_sphere_carve_classification():
    s = SphereCarve([0.5, 0.5], 0.25)
    lo = np.array([[0.45, 0.45], [0.0, 0.0], [0.2, 0.45]])
    hi = np.array([[0.55, 0.55], [0.1, 0.1], [0.3, 0.55]])
    lab = s.classify_cells(lo, hi)
    assert lab[0] == RegionLabel.CARVED          # cell inside ball
    assert lab[1] == RegionLabel.RETAIN_INTERNAL  # far corner cell
    assert lab[2] == RegionLabel.RETAIN_BOUNDARY  # straddles the circle


def test_sphere_carve_points_closed():
    s = SphereCarve([0.0, 0.0], 1.0)
    pts = np.array([[1.0, 0.0], [0.999, 0.0], [1.001, 0.0]])
    c = s.carved_points(pts)
    assert list(c) == [True, True, False]  # boundary point is carved


def test_sphere_retain_is_complement():
    inner = SphereRetain([0.5, 0.5], 0.25)
    pts = np.array([[0.5, 0.5], [0.5, 0.74], [0.5, 0.76], [0.5, 0.75]])
    c = inner.carved_points(pts)
    assert list(c) == [False, False, True, True]  # boundary carved


def test_sphere_projection_on_circle():
    s = SphereCarve([0.5, 0.5], 0.25)
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 1, (50, 2))
    proj = s.boundary_projection(pts)
    r = np.linalg.norm(proj - 0.5, axis=1)
    assert np.allclose(r, 0.25)


def test_box_carve_exact():
    b = BoxCarve([0.2, 0.2], [0.6, 0.4])
    lo = np.array([[0.3, 0.25], [0.0, 0.0], [0.1, 0.1]])
    hi = np.array([[0.4, 0.35], [0.1, 0.1], [0.3, 0.3]])
    lab = b.classify_cells(lo, hi)
    assert lab[0] == RegionLabel.CARVED
    assert lab[1] == RegionLabel.RETAIN_INTERNAL
    assert lab[2] == RegionLabel.RETAIN_BOUNDARY


def test_box_carve_signed_distance_sign():
    b = BoxCarve([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
    pts = np.array([[0.5, 0.5, 0.5], [2.0, 0.5, 0.5]])
    d = b.boundary_distance(pts)
    assert d[0] > 0 and d[1] < 0
    assert d[0] == pytest.approx(0.5)
    assert d[1] == pytest.approx(-1.0)


def test_box_retain_channel_semantics():
    ch = BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4]))
    # inlet/outlet faces flush with the domain cube are NOT carved
    pts = np.array([[0.0, 0.5], [4.0, 0.5], [2.0, 1.0], [2.0, 1.5]])
    c = ch.carved_points(pts)
    assert list(c) == [False, False, True, True]


def test_box_retain_rejects_nothing_without_domain():
    ch = BoxRetain([0, 0], [4, 1])
    assert ch.carved_points(np.array([[0.0, 0.5]]))[0]  # x=0 face carved


def test_cylinder_carve():
    cyl = CylinderCarve(center=[0.5, 0.5], radius=0.2, axis=2, span=(0.0, 0.5))
    pts = np.array(
        [[0.5, 0.5, 0.25], [0.5, 0.5, 0.75], [0.9, 0.5, 0.25], [0.5, 0.69, 0.49]]
    )
    c = cyl.carved_points(pts)
    assert list(c) == [True, False, False, True]
    lab = cyl.classify_cells(
        np.array([[0.45, 0.45, 0.1]]), np.array([[0.55, 0.55, 0.2]])
    )
    assert lab[0] == RegionLabel.CARVED


def test_capsule_carve():
    cap = CapsuleCarve([0.5, 0.5, 0.2], [0.5, 0.5, 0.8], 0.1)
    pts = np.array([[0.5, 0.5, 0.5], [0.5, 0.5, 0.05], [0.59, 0.5, 0.2]])
    c = cap.carved_points(pts)
    assert list(c) == [True, False, True]


def test_halfspace_carve():
    h = HalfSpaceCarve([1.0, 0.0], 0.5)
    pts = np.array([[0.6, 0.0], [0.4, 0.0], [0.5, 0.3]])
    assert list(h.carved_points(pts)) == [True, False, True]
    proj = h.boundary_projection(np.array([[0.8, 0.2]]))
    assert np.allclose(proj, [[0.5, 0.2]])


def test_carve_union():
    u = CarveUnion([SphereCarve([0.25, 0.5], 0.1), SphereCarve([0.75, 0.5], 0.1)])
    pts = np.array([[0.25, 0.5], [0.75, 0.5], [0.5, 0.5]])
    assert list(u.carved_points(pts)) == [True, True, False]
    lab = u.classify_cells(
        np.array([[0.2, 0.45], [0.45, 0.45]]), np.array([[0.3, 0.55], [0.55, 0.55]])
    )
    assert lab[0] != RegionLabel.RETAIN_INTERNAL
    assert lab[1] == RegionLabel.RETAIN_INTERNAL


def test_carve_union_empty_raises():
    with pytest.raises(ValueError):
        CarveUnion([])


def test_carve_union_distance_is_max():
    a = SphereCarve([0.3, 0.5], 0.1)
    b = SphereCarve([0.7, 0.5], 0.2)
    u = CarveUnion([a, b])
    pts = np.array([[0.7, 0.5]])
    assert u.boundary_distance(pts)[0] == pytest.approx(0.2)


def test_everywhere_retained():
    e = EverywhereRetained(3)
    lo, hi = _cells(np.random.default_rng(0), 10, 3)
    assert np.all(e.classify_cells(lo, hi) == RegionLabel.RETAIN_INTERNAL)
    assert not e.carved_points(lo).any()


@settings(max_examples=30)
@given(seed=st.integers(0, 2**31 - 1))
def test_classification_consistency_property(seed):
    """Conservative-exactness: a cell labelled CARVED has all its
    sampled points carved; RETAIN_INTERNAL has none."""
    rng = np.random.default_rng(seed)
    preds = [
        SphereCarve(rng.uniform(0.3, 0.7, 2), rng.uniform(0.1, 0.3)),
        BoxCarve([0.2, 0.3], [0.7, 0.8]),
        HalfSpaceCarve(rng.standard_normal(2), 0.2),
    ]
    lo, hi = _cells(rng, 20, 2)
    for p in preds:
        lab = p.classify_cells(lo, hi)
        for i in range(len(lo)):
            samples = lo[i] + rng.uniform(0, 1, (20, 2)) * (hi[i] - lo[i])
            carved = p.carved_points(samples)
            if lab[i] == RegionLabel.CARVED:
                assert carved.all()
            elif lab[i] == RegionLabel.RETAIN_INTERNAL:
                assert not carved.any()
