"""Tests for repro.fleet: consistent-hash routing, the shared second
tier, work stealing, seeded workloads, and checkpointed fail-over."""

import random

import pytest

from repro.fleet import (
    FleetService,
    HashRing,
    ShardLog,
    TierCache,
    mesh_catalog,
    plan_steals,
    rebuild_queue,
    synthetic_workload,
)
from repro.resilience.checkpoint import (
    CheckpointCorruption,
    load_state_checkpoint,
    save_state_checkpoint,
)
from repro.serve import SolveRequest

pytestmark = pytest.mark.fleet


def _fleet(n, **kw):
    kw.setdefault("cache_bytes", 8 << 20)
    kw.setdefault("steal_threshold", 4)
    kw.setdefault("steal_latency", 100)
    return FleetService(n, **kw)


def _busy_workload(n=48, seed=3):
    """Compute-bound: interarrival gaps well below per-request cost."""
    return synthetic_workload(n, seed=seed, mean_gap=40, burst_gap=5)


# -- consistent-hash routing ---------------------------------------------


def test_ring_routes_deterministically():
    keys = [f"key{i}" for i in range(200)]
    a = HashRing(["s0", "s1", "s2", "s3"])
    b = HashRing(["s3", "s1", "s0", "s2"])  # insertion order irrelevant
    assert [a.route(k) for k in keys] == [b.route(k) for k in keys]
    owned = a.ownership(keys)
    assert sum(owned.values()) == len(keys)
    assert all(v > 0 for v in owned.values())  # vnodes spread the keyspace


def test_ring_removal_only_remaps_dead_shards_keys():
    keys = [f"key{i}" for i in range(300)]
    ring = HashRing(["s0", "s1", "s2", "s3"])
    before = {k: ring.route(k) for k in keys}
    ring.remove("s2")
    for k in keys:
        if before[k] != "s2":
            assert ring.route(k) == before[k]
        else:
            assert ring.route(k) != "s2"
    with pytest.raises(ValueError):
        ring.remove("s2")
    with pytest.raises(ValueError):
        ring.add("s0")


# -- shared second tier --------------------------------------------------


class _Entry:
    """Stand-in CacheEntry: fingerprint, bytes, and a mesh size."""

    class _Mesh:
        def __init__(self, n_elem):
            self.n_elem = n_elem

    def __init__(self, fp, nbytes=100, n_elem=64):
        self.fingerprint = fp
        self.nbytes = nbytes
        self.mesh = self._Mesh(n_elem)


def test_tiercache_promote_and_demote_by_hit_rate():
    l2 = TierCache(promote_after=3, demote_below=1, window=4)
    hot, cold = _Entry("hot"), _Entry("cold")
    l2.publish("md_hot", hot)
    l2.publish("md_cold", cold)
    for _ in range(12):
        assert l2.fetch("md_hot") is hot
    assert "hot" in l2.pinned  # windowed count crossed promote_after
    assert "cold" not in l2.pinned
    # stop touching it: the count halves every window and demotes
    for _ in range(40):
        l2.fetch("md_missing")
    assert "hot" not in l2.pinned
    assert l2.stats()["demotions"] >= 1


def test_tiercache_eviction_spares_pinned_entries():
    l2 = TierCache(byte_budget=250, promote_after=2, demote_below=1,
                   window=2)
    hot = _Entry("hot", nbytes=100)
    l2.publish("md_hot", hot)
    for _ in range(8):
        l2.fetch("md_hot")
    assert "hot" in l2.pinned
    for i in range(4):
        l2.publish(f"md{i}", _Entry(f"fp{i}", nbytes=100))
    assert "hot" in l2._entries  # unpinned victims went first
    assert l2.fetch("md_hot") is hot
    assert all(v != "hot" for v in l2.eviction_log)


def test_tiercache_fetch_cost_fraction_of_build():
    from repro.serve.scheduler import cost_build

    e = _Entry("fp", n_elem=256)
    l2 = TierCache()
    assert l2.fetch_cost(e) == max(1, cost_build(256) // 16)


def test_fleet_builds_each_mesh_once():
    """Write-through + victim demotion: a discretization is built at
    most once fleet-wide, every other shard fetches it from L2."""
    wl = _busy_workload(32, seed=5)
    fleet = _fleet(4)
    fleet.run(wl)
    distinct = len({a.request.mesh_digest for a in wl})
    cold_builds = sum(sh.cache.misses - sh.l2_fetches
                      for sh in fleet.shards.values())
    assert cold_builds == distinct
    # L2 stores by post-build fingerprint: distinct mesh digests can
    # alias to one carved discretization, so entries <= digests
    assert 1 <= fleet.l2.stats()["entries"] <= distinct


# -- synthetic workload --------------------------------------------------


def test_workload_deterministic_and_skewed():
    a = synthetic_workload(60, seed=7)
    b = synthetic_workload(60, seed=7)
    assert [(x.tick, x.request.digest) for x in a] == [
        (x.tick, x.request.digest) for x in b
    ]
    assert [x.tick for x in a] == sorted(x.tick for x in a)
    assert a != synthetic_workload(60, seed=8)
    # zipf: the rank-0 mesh dominates
    rank0 = SolveRequest(**mesh_catalog(6)[0]).mesh_digest
    counts: dict[str, int] = {}
    for x in a:
        md = x.request.mesh_digest
        counts[md] = counts.get(md, 0) + 1
    assert counts[rank0] == max(counts.values())
    # bursty: some gaps far below the quiet-state mean
    gaps = [a[i + 1].tick - a[i].tick for i in range(len(a) - 1)]
    assert min(gaps) < 100 < max(gaps)


# -- fleet determinism (shuffle invariance) ------------------------------


@pytest.mark.parametrize("n_shards", [2, 4])
def test_shuffled_submission_order_same_stream_digest(n_shards):
    wl = _busy_workload(36, seed=9)
    shuffled = list(wl)
    random.Random(123).shuffle(shuffled)
    assert [a.request.digest for a in shuffled] != [
        a.request.digest for a in wl
    ]
    a = _fleet(n_shards)
    a.run(wl)
    b = _fleet(n_shards)
    b.run(shuffled)
    assert a.stream_digest == b.stream_digest
    assert a.fleet_digest == b.fleet_digest
    assert a.stats()["status"] == b.stats()["status"]


# -- work stealing -------------------------------------------------------


def test_plan_steals_deterministic_and_capped():
    depths = {"s0": 12, "s1": 0, "s2": 0, "s3": 3}
    plans = plan_steals(depths, threshold=4)
    # deepest victim feeds idle shards in id order, halving each time
    assert [(p.src, p.dst, p.n) for p in plans] == [
        ("s0", "s1", 6), ("s0", "s2", 3),
    ]
    capped = plan_steals(depths, threshold=4, max_items=2,
                         capacity={"s1": 1, "s2": 5})
    assert [(p.src, p.dst, p.n) for p in capped] == [
        ("s0", "s1", 1), ("s0", "s2", 2),
    ]
    assert plan_steals({"s0": 3, "s1": 0}, threshold=4) == []


def test_stealing_fires_and_improves_makespan():
    wl = _busy_workload(48, seed=3)

    def run(stealing):
        f = _fleet(4, stealing=stealing)
        f.run(wl)
        return f

    idle, busy = run(False), run(True)
    assert busy.steal_events and not idle.steal_events
    assert busy.makespan < idle.makespan
    # stealing reorders completions but not the response *set*
    assert {r.request_digest for r in busy.responses} == {
        r.request_digest for r in idle.responses
    }
    # and the steal schedule itself replays bit-identically
    again = run(True)
    assert again.steal_events == busy.steal_events
    assert again.stream_digest == busy.stream_digest


# -- fail-over -----------------------------------------------------------


def test_post_arrival_kill_recovers_bit_identically(tmp_path):
    wl = _busy_workload(48, seed=3)
    kill_tick = max(a.tick for a in wl) + 1
    base = _fleet(4, stealing=False)
    base.run(wl)
    for victim in ("shard0", "shard1"):
        killed = _fleet(4, stealing=False, ckpt_dir=tmp_path / victim,
                        ckpt_interval=4)
        killed.run(wl, kill=(kill_tick, victim))
        assert killed.failover_events[0].shard_id == victim
        assert len(killed.responses) == len(wl)
        assert killed.fleet_digest == base.fleet_digest
        # sealed state checkpoints actually landed on disk
        assert list((tmp_path / victim).glob(f"{victim}_step*.ckpt.json"))


def test_kill_recovers_without_disk_checkpoints():
    wl = _busy_workload(40, seed=13)
    kill_tick = max(a.tick for a in wl) + 1
    base = _fleet(4, stealing=False)
    base.run(wl)
    killed = _fleet(4, stealing=False)  # in-memory checkpointer
    killed.run(wl, kill=(kill_tick, "shard0"))
    assert killed.fleet_digest == base.fleet_digest


def test_early_kill_exactly_once_delivery():
    """A kill during the arrival phase with stealing live: bit-identity
    is out of scope, but every admitted request completes exactly once."""
    wl = _busy_workload(48, seed=3)
    mid = sorted(a.tick for a in wl)[len(wl) // 2]
    fleet = _fleet(4, ckpt_interval=3)
    fleet.run(wl, kill=(mid, "shard1"))
    assert sorted(r.request_digest for r in fleet.responses) == sorted(
        a.request.digest for a in wl
    )
    assert fleet.failover_events[0].tick >= mid


def test_rebuild_queue_watermark_multiset():
    req = SolveRequest()
    doc = {"request": req.to_doc(), "digest": req.digest,
           "t_submit": 5, "retries": 0}
    other = SolveRequest(f=2.0)
    odoc = {"request": other.to_doc(), "digest": other.digest,
            "t_submit": 9, "retries": 1}
    log = ShardLog(arrivals=[doc, odoc, doc],
                   stolen_away=[req.digest], completed=[other.digest])
    # no checkpoint: full log replay
    out = rebuild_queue(None, log)
    assert [d["digest"] for d in out] == [req.digest]
    # checkpoint past the first arrival: tails only
    state = {"pending": [doc], "arrivals_seen": 1,
             "steals_seen": 0, "completed_seen": 0}
    out = rebuild_queue(state, log)
    assert [d["digest"] for d in out] == [req.digest]
    # a completion with no matching queued item is an inconsistency
    bad = ShardLog(completed=["nope"])
    with pytest.raises(RuntimeError, match="inconsistency"):
        rebuild_queue(None, bad)


def test_request_doc_roundtrip_digest_stable():
    req = SolveRequest(pde="transport", velocity=(1.0, 0.5), steps=2,
                       f=1.25, priority=1)
    assert SolveRequest.from_doc(req.to_doc()).digest == req.digest
    with pytest.raises(ValueError, match="unknown request fields"):
        SolveRequest.from_doc({**req.to_doc(), "bogus": 1})


def test_state_checkpoint_sealed_roundtrip(tmp_path):
    path = tmp_path / "s0_step1.ckpt.json"
    state = {"pending": [], "clock": 42, "arrivals_seen": 3,
             "steals_seen": 0, "completed_seen": 3}
    save_state_checkpoint(path, name="s0", step=1, state=state)
    ck = load_state_checkpoint(path)
    assert ck.state == state and ck.name == "s0" and ck.step == 1
    tampered = path.read_text().replace('"clock": 42', '"clock": 41')
    path.write_text(tampered)
    with pytest.raises(CheckpointCorruption):
        load_state_checkpoint(path)


# -- fleet stats ---------------------------------------------------------


def test_fleet_stats_shape_and_counters():
    fleet = _fleet(2)
    fleet.run(synthetic_workload(16, seed=1))
    st = fleet.stats()
    assert st["n_shards"] == 2
    assert st["responses"] == 16 == sum(st["routed"].values())
    assert set(st["shards"]) == {"shard0", "shard1"}
    for sh in st["shards"].values():
        assert sh["cache"]["name"] in ("shard0", "shard1")
    assert st["makespan_ticks"] == fleet.makespan > 0
    assert len(st["stream_digest"]) == 64
    assert len(st["fleet_digest"]) == 64
