"""Tests for the immersed and complete-octree baselines."""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.baselines import (
    CompleteTreeReport,
    ImmersedPredicate,
    build_immersed_mesh,
    compare_carved_immersed,
    dendro_style_pipeline,
)
from repro.geometry import BoxRetain, RegionLabel, SphereCarve


@pytest.fixture(scope="module")
def sphere_domain():
    return Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)


def test_immersed_predicate_never_carves(sphere_domain):
    pred = ImmersedPredicate(sphere_domain.predicate)
    rng = np.random.default_rng(0)
    lo = rng.uniform(0, 9, (50, 3))
    hi = lo + rng.uniform(0.1, 1.0, (50, 3))
    lab = pred.classify_cells(lo, hi)
    assert not np.any(lab == RegionLabel.CARVED)
    # but points inside the object still report carved (the IN nodes)
    assert pred.carved_points(np.array([[5.0, 5.0, 5.0]]))[0]


def test_immersed_mesh_larger_than_carved(sphere_domain):
    r = compare_carved_immersed(sphere_domain, 3, 6, p=1)
    assert r.immersed_elems > r.carved_elems
    assert r.f_elem > 1.0
    assert r.in_elements > 0


def test_immersed_mesh_has_in_nodes(sphere_domain):
    imm = build_immersed_mesh(sphere_domain, 3, 6, p=1)
    # carved_node marks the object interior in the immersed mesh
    pts = imm.node_coords()
    inside = np.linalg.norm(pts - 5.0, axis=1) <= 0.5
    assert np.array_equal(imm.nodes.carved_node, inside)
    assert inside.sum() > 0


def test_immersed_band_zero_smaller(sphere_domain):
    with_band = build_immersed_mesh(sphere_domain, 3, 7, p=1, band=0.6)
    no_band = build_immersed_mesh(sphere_domain, 3, 7, p=1, band=0.0)
    assert with_band.n_elem > no_band.n_elem


def test_dendro_pipeline_counting_exact_small():
    """At a small scale the counting analysis must equal the actual
    complete tree built by the immersed predicate."""
    dom = Domain(BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0)
    rep = dendro_style_pipeline(dom, 4, 4, nranks=4)
    # exact complete tree at level 4 in 2D: 16x16 cells
    assert rep.n_complete == 256
    assert rep.n_active == 16 * 4
    assert rep.active_per_rank.sum() == rep.n_active


def test_dendro_pipeline_channel_imbalance():
    dom = Domain(
        BoxRetain([0, 0, 0], [16, 1, 1], domain=([0, 0, 0], [16, 16, 16])),
        scale=16.0,
    )
    rep = dendro_style_pipeline(dom, 5, 6, nranks=16)
    assert rep.inactive_fraction > 0.8
    assert rep.active_imbalance > 2.0
    assert rep.octants_visited > 3 * rep.active_octants_visited


def test_dendro_active_count_matches_direct_build():
    dom = Domain(
        BoxRetain([0, 0, 0], [16, 1, 1], domain=([0, 0, 0], [16, 16, 16])),
        scale=16.0,
    )
    from repro.core.construct import construct_adaptive

    rep = dendro_style_pipeline(dom, 5, 6, nranks=4)
    direct = construct_adaptive(dom, 5, 6)
    assert rep.n_active == len(direct)


def test_dendro_memory_model():
    rep = CompleteTreeReport(
        n_active=10,
        n_complete=10**10,
        octants_visited=1,
        active_octants_visited=1,
        active_per_rank=np.array([10]),
        bytes_per_rank=np.array([8 * 10**10]),
    )
    assert rep.exceeds_memory()
    small = CompleteTreeReport(
        n_active=10,
        n_complete=100,
        octants_visited=1,
        active_octants_visited=1,
        active_per_rank=np.array([10]),
        bytes_per_rank=np.array([800]),
    )
    assert not small.exceeds_memory()


# -- two-tier (macro-element) baseline ---------------------------------------


def test_two_tier_channel_matches_carved_octree():
    """For box-decomposable domains, two-tier == carved octree exactly."""
    import scipy.sparse as sp

    from repro import assemble, build_uniform_mesh
    from repro.baselines import TwoTierMesh, boxes_for_predicate
    from repro.solvers import condest_1norm

    dom = Domain(BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0)
    boxes = boxes_for_predicate(dom)
    assert len(boxes) == 4
    tt = TwoTierMesh(boxes, level=3)
    oc = build_uniform_mesh(dom, 5, p=1)
    assert tt.n_elem == oc.n_elem
    assert tt.n_nodes == oc.n_nodes
    assert tt.boundary_mask().sum() == oc.dirichlet_mask.sum()

    def cond_of(A, fixed):
        keep = sp.diags((~fixed).astype(float))
        return condest_1norm(
            (keep @ A + sp.diags(fixed.astype(float))).tocsc()
        )

    c_tt = cond_of(tt.assemble_stiffness(), tt.boundary_mask())
    c_oc = cond_of(assemble(oc), oc.dirichlet_mask)
    assert c_tt == pytest.approx(c_oc, rel=1e-6)


def test_two_tier_rejects_curved_geometry():
    from repro.baselines import TwoTierError, boxes_for_predicate

    with pytest.raises(TwoTierError):
        boxes_for_predicate(Domain(SphereCarve([5, 5, 5], 0.5), scale=10.0))


def test_two_tier_rejects_non_integer_scale():
    from repro.baselines import TwoTierError, boxes_for_predicate

    dom = Domain(BoxRetain([0, 0], [1, 1]), scale=1.5)
    with pytest.raises(TwoTierError):
        boxes_for_predicate(dom)


def test_two_tier_3d_l_shape():
    """An L-shaped union of cubes meshes fine in two-tier form."""
    from repro.baselines import TwoTierMesh

    boxes = [
        (np.array([0.0, 0.0, 0.0]), np.array([1.0, 1.0, 1.0])),
        (np.array([1.0, 0.0, 0.0]), np.array([2.0, 1.0, 1.0])),
        (np.array([0.0, 1.0, 0.0]), np.array([1.0, 2.0, 1.0])),
    ]
    tt = TwoTierMesh(boxes, level=2)
    assert tt.n_elem == 3 * 64
    # shared macro faces deduplicate nodes
    assert tt.n_nodes < 3 * 5**3
    A = tt.assemble_stiffness()
    ones = np.ones(tt.n_nodes)
    assert np.abs(A @ ones).max() < 1e-10
