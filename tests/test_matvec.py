"""Tests for matrix-free MATVEC (map-based and traversal) & assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembly import assemble, assemble_traversal
from repro.core.domain import Domain
from repro import obs
from repro.core.matvec import MapBasedMatVec, TraversalPlan, traversal_matvec
from repro.core.mesh import build_mesh
from repro.geometry.primitives import SphereCarve


@pytest.fixture(scope="module")
def carved_mesh_2d():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    return build_mesh(dom, 2, 5, p=1)


@pytest.fixture(scope="module")
def carved_mesh_3d_p2():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    return build_mesh(dom, 2, 3, p=2)


def test_map_matvec_matches_assembled(carved_mesh_2d):
    mesh = carved_mesh_2d
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    mv = MapBasedMatVec(mesh)
    A = assemble(mesh)
    assert np.allclose(mv(u), A @ u, atol=1e-12)


def test_traversal_matches_map(carved_mesh_2d):
    mesh = carved_mesh_2d
    rng = np.random.default_rng(1)
    u = rng.standard_normal(mesh.n_nodes)
    y_map = MapBasedMatVec(mesh)(u)
    y_tr = traversal_matvec(mesh, u)
    assert np.allclose(y_tr, y_map, atol=1e-12)


def test_traversal_matches_map_3d_p2(carved_mesh_3d_p2):
    mesh = carved_mesh_3d_p2
    rng = np.random.default_rng(2)
    u = rng.standard_normal(mesh.n_nodes)
    assert np.allclose(
        traversal_matvec(mesh, u), MapBasedMatVec(mesh)(u), atol=1e-12
    )


def test_traversal_phase_spans_accumulate(carved_mesh_2d):
    """The obs spans that replaced the old TraversalTimers struct record
    every traversal phase with positive accumulated durations."""
    mesh = carved_mesh_2d
    obs.reset()
    obs.enable()
    try:
        traversal_matvec(mesh, np.ones(mesh.n_nodes))
    finally:
        obs.disable()
    roots = obs.TRACER.roots
    assert len(roots) == 1 and roots[0].name == "matvec.traversal"
    phases = {c.name: c for c in roots[0].children}
    for name in ("matvec.top_down", "matvec.leaf", "matvec.bottom_up"):
        assert name in phases, f"missing phase span {name}"
        assert phases[name].duration > 0
        assert phases[name].count > 1  # merged across many invocations
    assert phases["matvec.leaf"].counters["elements"] == mesh.n_elem


def test_traversal_plan_reuse(carved_mesh_2d):
    mesh = carved_mesh_2d
    plan = TraversalPlan(mesh)
    u = np.linspace(0, 1, mesh.n_nodes)
    y1 = traversal_matvec(mesh, u, plan=plan)
    y2 = traversal_matvec(mesh, u)
    assert np.allclose(y1, y2)


def test_traversal_owned_range_partitions_sum(carved_mesh_2d):
    """Restricting to element sub-ranges and summing = full MATVEC
    (the distributed-memory decomposition property)."""
    mesh = carved_mesh_2d
    rng = np.random.default_rng(3)
    u = rng.standard_normal(mesh.n_nodes)
    full = traversal_matvec(mesh, u)
    mid = mesh.n_elem // 2
    part = traversal_matvec(mesh, u, owned_range=(0, mid)) + traversal_matvec(
        mesh, u, owned_range=(mid, mesh.n_elem)
    )
    assert np.allclose(part, full, atol=1e-12)


def test_mass_kind(carved_mesh_2d):
    mesh = carved_mesh_2d
    rng = np.random.default_rng(4)
    u = rng.standard_normal(mesh.n_nodes)
    y_map = MapBasedMatVec(mesh, kind="mass")(u)
    y_tr = traversal_matvec(mesh, u, kind="mass")
    A = assemble(mesh, kind="mass")
    assert np.allclose(y_map, A @ u, atol=1e-12)
    assert np.allclose(y_tr, A @ u, atol=1e-12)


def test_unknown_kind_raises(carved_mesh_2d):
    with pytest.raises(ValueError):
        MapBasedMatVec(carved_mesh_2d, kind="advection-nonsense")
    with pytest.raises(ValueError):
        traversal_matvec(
            carved_mesh_2d, np.zeros(carved_mesh_2d.n_nodes), kind="nope"
        )


def test_custom_elemental_callable(carved_mesh_2d):
    mesh = carved_mesh_2d
    mv_st = MapBasedMatVec(mesh, kind="stiffness")
    ref = mv_st.ref

    def my_stiffness(u_loc, h):
        return ref.apply_stiffness(u_loc, h)

    mv_c = MapBasedMatVec(mesh, kind=my_stiffness)
    u = np.linspace(-1, 1, mesh.n_nodes)
    assert np.allclose(mv_c(u), mv_st(u))


def test_stiffness_spd_properties(carved_mesh_2d):
    A = assemble(carved_mesh_2d)
    assert abs(A - A.T).max() < 1e-12
    ones = np.ones(A.shape[0])
    assert np.abs(A @ ones).max() < 1e-10  # constants in the nullspace
    d = A.diagonal()
    assert np.all(d > 0)


def test_assembly_traversal_equals_bsr(carved_mesh_2d):
    A1 = assemble(carved_mesh_2d)
    A2 = assemble_traversal(carved_mesh_2d)
    assert abs(A1 - A2).max() < 1e-12


def test_mass_matrix_volume_3d():
    """1' M 1 equals the voxelated retained volume exactly."""
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 4, p=1)
    M = assemble(mesh, kind="mass")
    ones = np.ones(mesh.n_nodes)
    vol_mass = float(ones @ (M @ ones))
    vol_cells = float(np.sum(mesh.element_sizes() ** 3))
    assert vol_mass == pytest.approx(vol_cells, rel=1e-12)


def test_flops_and_bytes_counters(carved_mesh_2d):
    mv = MapBasedMatVec(carved_mesh_2d)
    # as-executed model: gather + scatter (2 flops per stored weight
    # each) plus the dense elemental apply (2·npe² + npe per element)
    assert mv.flops() == 4 * mv._gather.nnz + carved_mesh_2d.n_elem * (2 * 16 + 4)
    assert mv.traffic_bytes() > 0
    assert mv.shape == (carved_mesh_2d.n_nodes, carved_mesh_2d.n_nodes)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_matvec_linearity_property(seed, carved_mesh_2d):
    mesh = carved_mesh_2d
    rng = np.random.default_rng(seed)
    u, v = rng.standard_normal((2, mesh.n_nodes))
    a, b = rng.standard_normal(2)
    mv = MapBasedMatVec(mesh)
    assert np.allclose(mv(a * u + b * v), a * mv(u) + b * mv(v), atol=1e-10)
