"""Fault injection, checkpoint/restart and self-healing recovery tests.

All tests carry the ``resilience`` marker so CI can run the
fault-injection suite standalone (``pytest -m resilience``).
"""

import json

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.core.mesh import build_uniform_mesh
from repro.fem.navier_stokes import NavierStokesProblem
from repro.fem.poisson import PoissonProblem
from repro.geometry import BoxRetain, SphereCarve
from repro.parallel import SimComm, shrink_splits
from repro.resilience import (
    Checkpoint,
    CheckpointCorruption,
    FaultSchedule,
    MessageCorruption,
    RankFailure,
    ResilientNSDriver,
    SolverBreakdown,
    corrupt_buffer,
    latest_checkpoint,
    load_checkpoint,
    prune_checkpoints,
    resilient_poisson_solve,
    save_checkpoint,
)
from repro.solvers import bicgstab, cg, newton_ls

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def sphere_mesh():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    return dom, build_mesh(dom, 2, 4, p=1)


@pytest.fixture(scope="module")
def channel():
    dom = Domain(BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0)
    mesh = build_uniform_mesh(dom, 4, p=1)
    pts = mesh.node_coords()

    def bc(p_):
        mask = np.zeros((len(p_), 2), bool)
        vals = np.zeros((len(p_), 2))
        wall = np.isclose(p_[:, 1], 0) | np.isclose(p_[:, 1], 1)
        inlet = np.isclose(p_[:, 0], 0)
        mask[wall] = True
        mask[inlet] = True
        vals[inlet, 0] = 4 * p_[inlet, 1] * (1 - p_[inlet, 1])
        return mask, vals

    outlet = np.isclose(pts[:, 0], 4.0)

    def make():
        return NavierStokesProblem(
            mesh, nu=0.05, velocity_bc=bc, pressure_pin=outlet, dt=0.2
        )

    return dom, mesh, make


# -- fault schedules ---------------------------------------------------


def test_schedule_determinism():
    a = FaultSchedule.random(3, nranks=8, max_op=100, n_faults=4,
                             kinds=("crash", "drop", "corrupt"))
    b = FaultSchedule.random(3, nranks=8, max_op=100, n_faults=4,
                             kinds=("crash", "drop", "corrupt"))
    assert a.describe() == b.describe()
    c = FaultSchedule.random(4, nranks=8, max_op=100, n_faults=4,
                             kinds=("crash", "drop", "corrupt"))
    assert a.describe() != c.describe()


def test_corrupt_buffer_deterministic_single_bit_flip():
    buf = np.arange(8, dtype=np.float64)
    a = corrupt_buffer(buf, (0, 1, 2, 3))
    b = corrupt_buffer(buf, (0, 1, 2, 3))
    assert np.array_equal(a, b)
    xor = np.frombuffer(buf.tobytes(), np.uint8) ^ np.frombuffer(
        a.tobytes(), np.uint8
    )
    assert int(np.unpackbits(xor).sum()) == 1  # exactly one bit flipped
    other = corrupt_buffer(buf, (0, 1, 2, 4))
    assert not np.array_equal(a, other)


def test_crash_fires_at_exact_op_and_poisons_comm():
    comm = SimComm(3)
    comm.install_faults(FaultSchedule(seed=0).crash_rank(1, at_op=1))
    comm.allreduce([np.float64(r) for r in range(3)])  # op 0: fine
    with pytest.raises(RankFailure) as ei:
        comm.allreduce([np.float64(r) for r in range(3)])  # op 1: crash
    assert ei.value.rank == 1 and ei.value.op_index == 1
    assert comm.failed_ranks == {1}
    # the communicator stays broken: every later collective raises too
    with pytest.raises(RankFailure):
        comm.allgather([np.zeros(1)] * 3)


def test_consumed_fault_does_not_refire():
    sched = FaultSchedule(seed=0).crash_rank(0, at_op=0)
    comm = SimComm(2)
    comm.install_faults(sched)
    with pytest.raises(RankFailure):
        comm.allreduce([np.float64(0), np.float64(1)])
    rebuilt = SimComm(1)
    rebuilt.install_faults(sched)  # same one-shot schedule, new op clock
    rebuilt.allreduce([np.float64(0)])  # op 0 again: must NOT refire
    assert not sched.pending()


def test_detected_drop_raises_typed_error():
    comm = SimComm(2)
    comm.install_faults(FaultSchedule(seed=0).drop_message(0, 1, at_op=0))
    with pytest.raises(MessageCorruption) as ei:
        comm.exchange({(0, 1): np.ones(4)})
    assert (ei.value.src, ei.value.dst, ei.value.mode) == (0, 1, "drop")


def test_silent_drop_removes_message():
    comm = SimComm(2)
    comm.install_faults(
        FaultSchedule(seed=0).drop_message(0, 1, at_op=0, silent=True)
    )
    out = comm.exchange({(0, 1): np.ones(4), (1, 0): np.ones(2)})
    assert (0, 1) not in out and (1, 0) in out


def test_silent_corruption_flips_one_bit_deterministically():
    payload = np.arange(16, dtype=np.float64)
    outs = []
    for _ in range(2):
        comm = SimComm(2)
        comm.install_faults(
            FaultSchedule(seed=5).corrupt_message(0, 1, at_op=0, silent=True)
        )
        outs.append(comm.exchange({(0, 1): payload.copy()})[(0, 1)])
    assert np.array_equal(outs[0], outs[1])  # same seed, same damage
    assert not np.array_equal(outs[0], payload)


# -- communicator validation (satellite) -------------------------------


def test_exchange_rejects_bad_keys():
    comm = SimComm(2)
    with pytest.raises(ValueError, match="outside"):
        comm.exchange({(0, 5): np.ones(1)})
    with pytest.raises(ValueError, match="malformed"):
        comm.exchange({"0->1": np.ones(1)})
    with pytest.raises(ValueError, match="self-send"):
        comm.exchange({(1, 1): np.ones(1)}, allow_self=False)
    # self-sends stay legal where explicitly allowed (default)
    out = comm.exchange({(1, 1): np.ones(1)})
    assert np.array_equal(out[(1, 1)], np.ones(1))


def test_alltoallv_rejects_negative_size_buffers():
    class _NegBytes(np.ndarray):
        @property
        def nbytes(self):
            return -8

    comm = SimComm(2)
    send = [[None] * 2 for _ in range(2)]
    send[0][1] = np.zeros(2).view(_NegBytes)
    with pytest.raises(ValueError, match="negative"):
        comm.alltoallv(send)


def test_alltoallv_rejects_aliased_buffers():
    comm = SimComm(3)
    buf = np.ones(4)
    send = [[None] * 3 for _ in range(3)]
    send[0][1] = buf
    send[0][2] = buf  # same object to two receivers
    with pytest.raises(ValueError, match="aliases"):
        comm.alltoallv(send)


# -- solver breakdown taxonomy (satellite) -----------------------------


def test_bicgstab_breakdown_reason_never_converged():
    # r_hat ⟂ A r for the antisymmetric operator: pivot breakdown at it 0
    A = np.array([[0.0, 1.0], [-1.0, 0.0]])
    res = bicgstab(A, np.array([1.0, 1.0]), rtol=1e-12)
    assert res.reason == "breakdown"
    assert not res.converged


def test_krylov_nonfinite_reason():
    bad = np.full((2, 2), np.nan)
    for solver in (cg, bicgstab):
        res = solver(bad, np.ones(2))
        assert res.reason == "nonfinite"
        assert not res.converged


def test_krylov_converged_reason():
    A = np.diag([2.0, 3.0, 4.0])
    for solver in (cg, bicgstab):
        res = solver(A, np.ones(3), rtol=1e-10)
        assert res.reason == "converged" and res.converged


def test_newton_nonfinite_reason():
    res = newton_ls(
        lambda x: np.full_like(x, np.nan), lambda x, r: r, np.array([1.0])
    )
    assert res.reason == "nonfinite" and not res.converged


def test_newton_retry_backoff_recovers_bad_step_scaling():
    # the "Jacobian solve" overshoots 100x: every full/halved step within
    # one short line search increases |F|, so only the lam_cap backoff
    # (retry budget) finds the decreasing step
    def residual(x):
        return x

    def solve_jac(x, rhs):
        return 100.0 * rhs

    res = newton_ls(residual, solve_jac, np.array([1.0]), rtol=1e-8,
                    max_backtracks=2, retry_budget=8)
    assert res.converged and res.retries > 0


# -- checkpoint/restart (satellite) ------------------------------------


def test_checkpoint_roundtrip_bitwise_sphere(sphere_mesh, tmp_path):
    dom, mesh = sphere_mesh
    rng = np.random.default_rng(0)
    vecs = {"x": rng.standard_normal(mesh.n_nodes), "r": rng.standard_normal(mesh.n_nodes)}
    p1 = save_checkpoint(tmp_path / "a.ckpt.json", mesh, step=3,
                         splits=np.array([0, mesh.n_elem]), vectors=vecs,
                         scalars={"rz": 0.125}, name="t")
    p2 = save_checkpoint(tmp_path / "b.ckpt.json", mesh, step=3,
                         splits=np.array([0, mesh.n_elem]), vectors=vecs,
                         scalars={"rz": 0.125}, name="t")
    # bit-deterministic writer: same state, byte-identical files
    assert p1.read_bytes() == p2.read_bytes()
    ck = load_checkpoint(p1)
    assert isinstance(ck, Checkpoint) and ck.step == 3
    assert np.array_equal(ck.vector("x"), vecs["x"])  # exact, not approx
    assert ck.scalars["rz"] == 0.125
    mesh2, layout, plan = ck.restore(dom)
    assert mesh2.n_nodes == mesh.n_nodes
    assert plan.fingerprint == ck.fingerprint


def test_checkpoint_roundtrip_channel_dt(channel, tmp_path):
    dom, mesh, make = channel
    prob = make()
    U, P = prob.initial_state()
    path = save_checkpoint(tmp_path / "c.ckpt.json", mesh, step=2, t=0.4,
                           dt=prob.dt, vectors={"U": U, "P": P}, name="ns")
    ck = load_checkpoint(path)
    assert ck.dt == prob.dt and ck.time == 0.4
    assert np.array_equal(ck.vector("U"), U)
    assert ck.restore_mesh(dom).n_elem == mesh.n_elem


def test_checkpoint_tamper_detection(sphere_mesh, tmp_path):
    _, mesh = sphere_mesh
    path = save_checkpoint(tmp_path / "t.ckpt.json", mesh,
                           vectors={"x": np.ones(mesh.n_nodes)})
    doc = json.loads(path.read_text())
    doc["step"] = 99  # tamper with the header
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointCorruption, match="digest"):
        load_checkpoint(path)
    doc = json.loads(path.read_text())
    doc["step"] = 0
    doc["sha256"] = "0" * 64  # tamper with the digest itself
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointCorruption, match="digest"):
        load_checkpoint(path)
    path.write_text("not json at all")
    with pytest.raises(CheckpointCorruption, match="unreadable"):
        load_checkpoint(path)


def test_checkpoint_schema_tag_enforced(tmp_path):
    path = tmp_path / "w.ckpt.json"
    path.write_text(json.dumps({"schema": "something/else.v9"}))
    with pytest.raises(CheckpointCorruption, match="schema"):
        load_checkpoint(path)


def test_latest_checkpoint_orders_by_step(tmp_path):
    (tmp_path / "run_step000002.ckpt.json").write_text("{}")
    (tmp_path / "run_step000010.ckpt.json").write_text("{}")
    assert latest_checkpoint(tmp_path, "run").name == "run_step000010.ckpt.json"
    assert latest_checkpoint(tmp_path / "missing") is None


def test_latest_checkpoint_numeric_step_order_unpadded(tmp_path):
    # step10 must beat step2 even without zero padding
    (tmp_path / "run_step2.ckpt.json").write_text("{}")
    (tmp_path / "run_step10.ckpt.json").write_text("{}")
    assert latest_checkpoint(tmp_path, "run").name == "run_step10.ckpt.json"


def test_checkpoint_retention_keep_last(sphere_mesh, tmp_path):
    _, mesh = sphere_mesh
    vec = {"x": np.ones(mesh.n_nodes)}
    for step in (1, 2, 3, 10):
        save_checkpoint(tmp_path / f"run_step{step}.ckpt.json", mesh,
                        step=step, vectors=vec, name="run", keep_last=2)
    survivors = sorted(p.name for p in tmp_path.glob("*.ckpt.json"))
    # numeric step order: step10 is newest, step3 second-newest
    assert survivors == ["run_step10.ckpt.json", "run_step3.ckpt.json"]
    assert latest_checkpoint(tmp_path, "run").name == "run_step10.ckpt.json"


def test_prune_checkpoints_scoped_by_name_and_validated(tmp_path):
    for step in (1, 2, 3):
        (tmp_path / f"a_step{step}.ckpt.json").write_text("{}")
        (tmp_path / f"b_step{step}.ckpt.json").write_text("{}")
    removed = prune_checkpoints(tmp_path, name="a", keep_last=1)
    assert [p.name for p in removed] == ["a_step1.ckpt.json",
                                         "a_step2.ckpt.json"]
    # "b" checkpoints are untouched by a name-scoped prune
    assert len(list(tmp_path.glob("b_step*.ckpt.json"))) == 3
    assert len(list(tmp_path.glob("a_step*.ckpt.json"))) == 1
    with pytest.raises(ValueError, match="keep_last"):
        prune_checkpoints(tmp_path, keep_last=0)


# -- partition shrink --------------------------------------------------


def test_shrink_splits_absorbs_failed_ranges():
    splits = np.array([0, 10, 20, 30, 40])
    assert shrink_splits(splits, [1]).tolist() == [0, 20, 30, 40]
    assert shrink_splits(splits, [0]).tolist() == [0, 20, 30, 40]
    assert shrink_splits(splits, [3]).tolist() == [0, 10, 20, 40]
    assert shrink_splits(splits, [1, 2]).tolist() == [0, 30, 40]
    with pytest.raises(ValueError, match="outside"):
        shrink_splits(splits, [7])
    with pytest.raises(ValueError, match="surviving"):
        shrink_splits(splits, [0, 1, 2, 3])


# -- end-to-end recovery ----------------------------------------------


def test_resilient_poisson_crash_recovery_matches(sphere_mesh, tmp_path):
    dom, mesh = sphere_mesh
    prob = PoissonProblem(mesh, f=1.0)
    ref = resilient_poisson_solve(
        prob, ranks=6, ckpt_dir=tmp_path / "ref", ckpt_interval=5, rtol=1e-12
    )
    assert ref.reason == "converged" and not ref.recoveries
    sched = FaultSchedule(seed=1).crash_rank(2, at_op=17)
    res = resilient_poisson_solve(
        prob, ranks=6, ckpt_dir=tmp_path / "faulted", ckpt_interval=5,
        fault_schedule=sched, rtol=1e-12,
    )
    assert res.reason == "converged"
    assert len(res.recoveries) == 1
    assert res.ranks_final == 5
    ev = res.recoveries[0]
    assert ev.kind == "rank_failure" and ev.failed_ranks == (2,)
    assert "resumed" in ev.describe()
    assert float(np.abs(res.x - ref.x).max()) <= 1e-12


def test_resilient_poisson_recovery_is_deterministic(sphere_mesh, tmp_path):
    dom, mesh = sphere_mesh
    prob = PoissonProblem(mesh, f=1.0)
    runs = []
    for tag in ("a", "b"):
        sched = FaultSchedule(seed=1).crash_rank(2, at_op=17)
        runs.append(resilient_poisson_solve(
            prob, ranks=6, ckpt_dir=tmp_path / tag, ckpt_interval=5,
            fault_schedule=sched, rtol=1e-12,
        ))
    assert np.array_equal(runs[0].x, runs[1].x)
    assert [e.op_index for e in runs[0].recoveries] == [
        e.op_index for e in runs[1].recoveries
    ]


def test_resilient_poisson_respects_max_recoveries(sphere_mesh, tmp_path):
    _, mesh = sphere_mesh
    prob = PoissonProblem(mesh, f=1.0)
    sched = (FaultSchedule(seed=0)
             .crash_rank(1, at_op=5).crash_rank(0, at_op=8))
    with pytest.raises(RankFailure):
        resilient_poisson_solve(
            prob, ranks=6, ckpt_dir=tmp_path, ckpt_interval=3,
            fault_schedule=sched, max_recoveries=1,
        )


def test_resilient_ns_crash_recovery_bit_identical(channel, tmp_path):
    dom, mesh, make = channel
    ref = ResilientNSDriver(
        make(), ranks=4, ckpt_dir=tmp_path / "ref", ckpt_interval=2
    ).run(6)
    sched = FaultSchedule(seed=7).crash_rank(1, at_op=4)
    res = ResilientNSDriver(
        make(), ranks=4, ckpt_dir=tmp_path / "faulted", ckpt_interval=2,
        fault_schedule=sched,
    ).run(6)
    assert len(res.recoveries) == 1 and res.ranks_final == 3
    assert res.recoveries[0].restored_step == 4
    # NS recovery replays from raw checkpoint bytes on the serial
    # stepper: the recovered trajectory is *bit*-identical
    assert np.array_equal(res.velocity, ref.velocity)
    assert np.array_equal(res.pressure, ref.pressure)


# -- dt-halving retry --------------------------------------------------


def test_ns_dt_halving_retry(channel, monkeypatch):
    _, mesh, make = channel
    prob = make()
    dt0 = prob.dt
    orig = NavierStokesProblem._substep

    def flaky(self, state, picard_per_step):
        if self.dt > dt0 / 2 + 1e-15:
            raise FloatingPointError("injected instability at full dt")
        return orig(self, state, picard_per_step)

    monkeypatch.setattr(NavierStokesProblem, "_substep", flaky)
    U, P = prob.initial_state()
    with pytest.raises(FloatingPointError):
        prob.advance(U, P, 1)  # no budget: the failure propagates
    assert prob.dt == dt0
    out = prob.advance(U, P, 2, max_dt_halvings=2)
    assert np.all(np.isfinite(out.velocity))
    assert prob.dt == dt0  # restored after the halved substeps


def test_ns_dt_halving_budget_exhaustion(channel, monkeypatch):
    _, mesh, make = channel
    prob = make()

    def always_fails(self, state, picard_per_step):
        raise FloatingPointError("injected")

    monkeypatch.setattr(NavierStokesProblem, "_substep", always_fails)
    U, P = prob.initial_state()
    with pytest.raises(SolverBreakdown, match="dt_budget_exhausted"):
        prob.advance(U, P, 1, max_dt_halvings=2)
    assert prob.dt == prob.dt  # dt restored by the finally


def test_matvec_rank_failure_carries_phase(sphere_mesh):
    from repro.parallel import analyze_partition, distributed_matvec, partition_mesh

    _, mesh = sphere_mesh
    splits = partition_mesh(mesh, 4)
    layout = analyze_partition(mesh, splits)
    comm = SimComm(4)
    comm.install_faults(FaultSchedule(seed=0).crash_rank(3, at_op=0))
    with pytest.raises(RankFailure) as ei:
        distributed_matvec(mesh, layout, np.ones(mesh.n_nodes), comm)
    assert ei.value.phase == "matvec.exchange.pre"
