"""Tests for geometric multigrid on carved-mesh hierarchies."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Domain, assemble, build_mesh, build_uniform_mesh
from repro.geometry import SphereCarve, SphereRetain
from repro.solvers import MultigridPoisson, cg, jacobi, prolongation


def _bc_system(mesh):
    A = assemble(mesh)
    fixed = mesh.dirichlet_mask
    keep = sp.diags((~fixed).astype(float))
    ident = sp.diags(fixed.astype(float))
    Abc = (keep @ A @ keep + ident).tocsr()
    b = keep @ np.ones(mesh.n_nodes)
    return Abc, b, fixed


@pytest.fixture(scope="module")
def hierarchy():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    return [build_mesh(dom, lv, lv + 2, p=1) for lv in (5, 4, 3)]


def test_prolongation_reproduces_linears(hierarchy):
    fine, coarse = hierarchy[0], hierarchy[1]
    P = prolongation(fine, coarse)
    assert P.shape == (fine.n_nodes, coarse.n_nodes)
    cpts = coarse.node_coords()
    fpts = fine.node_coords()
    lin = 2.0 * cpts[:, 0] - cpts[:, 1] + 0.3
    up = P @ lin
    expect = 2.0 * fpts[:, 0] - fpts[:, 1] + 0.3
    # exact where the fine node lies inside the coarse mesh (the carved
    # boundary recedes, so a thin voxel layer may use the injection
    # fallback)
    good = np.abs(up - expect) < 1e-9
    assert good.mean() > 0.95


def test_prolongation_partition_of_unity(hierarchy):
    P = prolongation(hierarchy[0], hierarchy[1])
    rs = np.asarray(P.sum(axis=1)).ravel()
    assert np.allclose(rs, 1.0)


def test_prolongation_validation(hierarchy):
    dom2 = Domain(SphereRetain([0.5, 0.5], 0.4))
    other = build_uniform_mesh(dom2, 4, p=2)
    with pytest.raises(ValueError):
        prolongation(hierarchy[0], other)


def test_mg_standalone_converges(hierarchy):
    Abc, b, fixed = _bc_system(hierarchy[0])
    mg = MultigridPoisson(hierarchy, Abc, fixed)
    x, cycles, res = mg.solve(b, rtol=1e-8)
    assert res < 1e-8
    assert cycles <= 15, "V-cycle convergence degraded"
    assert np.linalg.norm(Abc @ x - b) < 1e-6


def test_mg_preconditioner_beats_jacobi(hierarchy):
    Abc, b, fixed = _bc_system(hierarchy[0])
    mg = MultigridPoisson(hierarchy, Abc, fixed)
    r_mg = cg(Abc, b, M=mg, rtol=1e-8)
    r_j = cg(Abc, b, M=jacobi(Abc), rtol=1e-8, maxiter=10000)
    assert r_mg.converged and r_j.converged
    assert r_mg.iterations < r_j.iterations / 2
    assert np.allclose(r_mg.x, r_j.x, atol=1e-5)


def test_mg_needs_two_levels(hierarchy):
    Abc, _, fixed = _bc_system(hierarchy[0])
    with pytest.raises(ValueError):
        MultigridPoisson(hierarchy[:1], Abc, fixed)


def test_mg_three_level_cycle_count_stable():
    """More DOFs, same-ish cycle count (mesh-independent convergence)."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    small = [build_mesh(dom, lv, lv + 1, p=1) for lv in (5, 4, 3)]
    large = [build_mesh(dom, lv, lv + 1, p=1) for lv in (6, 5, 4)]
    cycles = []
    for meshes in (small, large):
        Abc, b, fixed = _bc_system(meshes[0])
        mg = MultigridPoisson(meshes, Abc, fixed)
        _, cyc, _ = mg.solve(b, rtol=1e-8)
        cycles.append(cyc)
    assert cycles[1] <= cycles[0] + 4


def test_mg_chebyshev_smoother(hierarchy):
    Abc, b, fixed = _bc_system(hierarchy[0])
    mg = MultigridPoisson(hierarchy, Abc, fixed, smoother="chebyshev")
    x, cycles, res = mg.solve(b, rtol=1e-8)
    assert res < 1e-8
    assert cycles <= 12
    mg_j = MultigridPoisson(hierarchy, Abc, fixed, smoother="jacobi")
    xj, _, _ = mg_j.solve(b, rtol=1e-8)
    assert np.allclose(x, xj, atol=1e-6)


def test_mg_rejects_unknown_smoother(hierarchy):
    Abc, _, fixed = _bc_system(hierarchy[0])
    with pytest.raises(ValueError):
        MultigridPoisson(hierarchy, Abc, fixed, smoother="sor")
