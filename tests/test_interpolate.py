"""Tests for field evaluation and mesh-to-mesh transfer."""

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh
from repro.core.interpolate import (
    evaluate_field,
    evaluation_matrix,
    locate_points,
    transfer_field,
)
from repro.geometry import SphereCarve


@pytest.fixture(scope="module")
def mesh():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    return build_mesh(dom, 3, 5, p=1)


def test_locate_points_inside(mesh):
    rng = np.random.default_rng(0)
    q = rng.uniform(0.02, 0.98, (300, 2))
    q = q[~mesh.domain.carved_points(q)]
    leaf = locate_points(mesh, q)
    assert np.all(leaf >= 0)
    # the reported leaf really contains the point
    lo, hi = mesh.leaves.physical_bounds(1.0)
    assert np.all((q >= lo[leaf] - 1e-12) & (q <= hi[leaf] + 1e-12))


def test_locate_points_in_carved_region(mesh):
    q = np.array([[0.5, 0.5], [0.52, 0.48]])  # inside the carved sphere
    assert np.all(locate_points(mesh, q) == -1)


def test_evaluate_linear_exact(mesh):
    pts_n = mesh.node_coords()
    u = 3.0 * pts_n[:, 0] + pts_n[:, 1]
    rng = np.random.default_rng(1)
    q = rng.uniform(0.02, 0.98, (200, 2))
    q = q[~mesh.domain.carved_points(q)]
    vals = evaluate_field(mesh, u, q)
    assert np.abs(vals - (3.0 * q[:, 0] + q[:, 1])).max() < 1e-12


def test_evaluate_strict_raises_outside(mesh):
    with pytest.raises(ValueError):
        evaluate_field(mesh, np.zeros(mesh.n_nodes), np.array([[0.5, 0.5]]))


def test_evaluation_matrix_rows_partition_of_unity(mesh):
    rng = np.random.default_rng(2)
    q = rng.uniform(0.02, 0.98, (100, 2))
    q = q[~mesh.domain.carved_points(q)]
    E, found = evaluation_matrix(mesh, q)
    assert found.all()
    rs = np.asarray(E.sum(axis=1)).ravel()
    assert np.allclose(rs, 1.0)


def test_evaluate_at_nodes_is_identity(mesh):
    """Evaluating at the global nodes returns the nodal values."""
    pts = mesh.node_coords()
    rng = np.random.default_rng(3)
    u = rng.standard_normal(mesh.n_nodes)
    vals = evaluate_field(mesh, u, pts)
    assert np.abs(vals - u).max() < 1e-10


def test_transfer_refinement_exact(mesh):
    """Transfer onto a finer mesh of the same geometry is exact for
    fields in the coarse space."""
    fine = build_mesh(mesh.domain, 4, 6, p=1)
    pts_n = mesh.node_coords()
    u = pts_n[:, 0] - 2 * pts_n[:, 1]
    uf = transfer_field(mesh, fine, u)
    pf = fine.node_coords()
    # nodes covered by the coarse mesh transfer exactly; the finer voxel
    # boundary may expose a thin uncovered layer using the fallback
    expect = pf[:, 0] - 2 * pf[:, 1]
    exact_frac = (np.abs(uf - expect) < 1e-10).mean()
    assert exact_frac > 0.97


def test_transfer_moved_object_total(mesh):
    """Transfer is total even when the carved object moves."""
    dom2 = Domain(SphereCarve([0.55, 0.5], 0.25))
    mesh2 = build_mesh(dom2, 3, 5, p=1)
    u = np.ones(mesh.n_nodes)
    u2 = transfer_field(mesh, mesh2, u)
    assert np.allclose(u2, 1.0)  # constants transfer exactly everywhere
    assert len(u2) == mesh2.n_nodes


def test_transfer_p2_quadratic_exact():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    src = build_mesh(dom, 3, 4, p=2)
    dst = build_mesh(dom, 4, 5, p=2)
    pts = src.node_coords()
    u = pts[:, 0] ** 2 - pts[:, 0] * pts[:, 1]
    ud = transfer_field(src, dst, u)
    pd = dst.node_coords()
    expect = pd[:, 0] ** 2 - pd[:, 0] * pd[:, 1]
    exact_frac = (np.abs(ud - expect) < 1e-9).mean()
    assert exact_frac > 0.95
