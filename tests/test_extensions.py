"""Tests for the extension modules: DG, FD, FV, adaptation, VTU output."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh
from repro.core.adapt import coarsen_leaves, construct_from_points, refine_leaves
from repro.core.balance import balance_2to1, is_balanced
from repro.core.construct import construct_uniform
from repro.core.treesort import is_sorted_linear
from repro.fem import (
    DGPoissonProblem,
    FDPoissonProblem,
    FVAdvectionProblem,
    PoissonProblem,
    dg_dof_count,
)
from repro.fem.dg import interior_faces
from repro.geometry import SphereCarve, SphereRetain
from repro.io import write_vtu


# -- DG -------------------------------------------------------------------


def test_dg_dof_count_scales_with_elements():
    """The §4.4 remark: DG DOFs = n_elem * npe exactly."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_uniform_mesh(dom, 4, p=1)
    assert dg_dof_count(mesh) == mesh.n_elem * 4
    assert dg_dof_count(mesh) > mesh.n_nodes  # no sharing


def test_dg_interior_faces_counts():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    em, ep, ax = interior_faces(mesh)
    # 8x8 grid: 7*8 vertical + 8*7 horizontal interior faces
    assert len(em) == 2 * 7 * 8
    assert np.all(em != ep)


def test_dg_smooth_square_second_order():
    def exact(pts):
        return np.sin(np.pi * pts[:, 0]) * np.sin(np.pi * pts[:, 1])

    def f(pts):
        return 2 * np.pi**2 * exact(pts)

    errs = []
    for lv in (3, 4, 5):
        mesh = build_uniform_mesh(Domain(dim=2), lv, p=1)
        prob = DGPoissonProblem(mesh, f=f, dirichlet=0.0)
        errs.append(prob.l2_error(prob.solve(), exact))
    assert np.log2(errs[0] / errs[1]) > 1.8
    assert np.log2(errs[1] / errs[2]) > 1.8


def test_dg_on_carved_disk_runs():
    dom = Domain(SphereRetain([0.5, 0.5], 0.4))
    mesh = build_uniform_mesh(dom, 5, p=1)
    u = DGPoissonProblem(mesh, f=1.0, dirichlet=0.0).solve()
    assert len(u) == dg_dof_count(mesh)
    assert u.max() > 0 and u.min() > -1e-3  # DG: no discrete max principle


def test_dg_rejects_graded_mesh():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 3, 5, p=1)
    with pytest.raises(ValueError):
        DGPoissonProblem(mesh)


def test_dg_matches_cg_on_smooth_problem():
    def exact(pts):
        return np.sin(np.pi * pts[:, 0]) * np.sin(np.pi * pts[:, 1])

    def f(pts):
        return 2 * np.pi**2 * exact(pts)

    mesh = build_uniform_mesh(Domain(dim=2), 5, p=1)
    dg = DGPoissonProblem(mesh, f=f, dirichlet=0.0)
    e_dg = dg.l2_error(dg.solve(), exact)
    from repro.fem.poisson import l2_error

    e_cg = l2_error(mesh, PoissonProblem(mesh, f=f).solve(rtol=1e-12), exact)
    assert e_dg < 3 * e_cg  # same asymptotic class


# -- FD -------------------------------------------------------------------


def test_fd_second_order_square():
    def exact(pts):
        return np.sin(np.pi * pts[:, 0]) * np.sin(np.pi * pts[:, 1])

    def f(pts):
        return 2 * np.pi**2 * exact(pts)

    errs = []
    for lv in (4, 5):
        mesh = build_uniform_mesh(Domain(dim=2), lv, p=1)
        u = FDPoissonProblem(mesh, f=f, dirichlet=0.0).solve()
        errs.append(np.abs(u - exact(mesh.node_coords())).max())
    assert np.log2(errs[0] / errs[1]) > 1.9


def test_fd_agrees_with_fem_on_carved_disk():
    dom = Domain(SphereRetain([0.5, 0.5], 0.45))
    mesh = build_uniform_mesh(dom, 5, p=1)
    ufd = FDPoissonProblem(mesh, f=1.0).solve()
    ufe = PoissonProblem(mesh, f=1.0).solve()
    assert np.abs(ufd - ufe).max() < 0.05 * max(ufe.max(), 1e-12) + 2e-3


def test_fd_rejects_graded_or_p2():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    graded = build_mesh(dom, 3, 5, p=1)
    with pytest.raises(ValueError):
        FDPoissonProblem(graded)
    quad = build_uniform_mesh(Domain(dim=2), 3, p=2)
    with pytest.raises(ValueError):
        FDPoissonProblem(quad)


# -- FV -------------------------------------------------------------------


def test_fv_conserves_mass_without_outflow():
    dom = Domain(SphereCarve([0.5, 0.5], 0.2))
    mesh = build_uniform_mesh(dom, 5, p=1)
    fv = FVAdvectionProblem(mesh, np.zeros((mesh.n_elem, 2)), kappa=0.02)
    ctr = mesh.element_centers()
    c0 = np.exp(-100 * ((ctr - [0.25, 0.5]) ** 2).sum(axis=1))
    c1 = fv.run(c0, 0.05)
    assert fv.total_mass(c1) == pytest.approx(fv.total_mass(c0), rel=1e-12)
    assert c1.max() < c0.max()  # diffusion smooths


def test_fv_advects_downstream():
    dom = Domain(SphereCarve([0.5, 0.5], 0.2))
    mesh = build_uniform_mesh(dom, 5, p=1)
    fv = FVAdvectionProblem(mesh, np.tile([1.0, 0.0], (mesh.n_elem, 1)))
    ctr = mesh.element_centers()
    c0 = np.exp(-200 * ((ctr - [0.2, 0.5]) ** 2).sum(axis=1))
    c1 = fv.run(c0, 0.15)
    x0 = (ctr[:, 0] * c0).sum() / c0.sum()
    x1 = (ctr[:, 0] * c1).sum() / c1.sum()
    assert x1 > x0 + 0.05


def test_fv_cfl_guard():
    mesh = build_uniform_mesh(Domain(dim=2), 4, p=1)
    fv = FVAdvectionProblem(mesh, np.tile([2.0, 0.0], (mesh.n_elem, 1)))
    assert fv.max_dt() <= 0.5 * fv.h / 2.0 + 1e-15


def test_fv_velocity_validation():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    with pytest.raises(ValueError):
        FVAdvectionProblem(mesh, np.zeros((3, 2)))


# -- adaptation -------------------------------------------------------------


def test_refine_then_coarsen_roundtrip():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    t = construct_uniform(dom, 4)
    t2 = refine_leaves(dom, t, np.ones(len(t), bool))
    t3 = coarsen_leaves(dom, t2, np.ones(len(t2), bool))
    assert np.array_equal(t3.anchors, t.anchors)
    assert np.array_equal(t3.levels, t.levels)


def test_refine_prunes_carved_children():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    t = construct_uniform(dom, 3)
    t2 = refine_leaves(dom, t, np.ones(len(t), bool))
    lab = dom.classify_octants(t2)
    from repro.geometry import RegionLabel

    assert not np.any(lab == RegionLabel.CARVED)
    assert len(t2) < 4 * len(t)  # strictly fewer than naive 4x


def test_partial_coarsen_keeps_unmarked():
    dom = Domain(dim=2)
    t = construct_uniform(dom, 3)
    marks = np.zeros(len(t), bool)
    marks[:4] = True  # one sibling group (first 4 in SFC order)
    t2 = coarsen_leaves(dom, t, marks)
    assert len(t2) == len(t) - 3
    assert is_sorted_linear(t2)


def test_coarsen_respects_min_level():
    dom = Domain(dim=2)
    t = construct_uniform(dom, 3)
    t2 = coarsen_leaves(dom, t, np.ones(len(t), bool), min_level=3)
    assert len(t2) == len(t)


def test_point_cloud_construction_caps_counts():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    rng = np.random.default_rng(1)
    pts = np.clip(0.5 + 0.25 * rng.standard_normal((1500, 2)), 0.01, 0.99)
    t = construct_from_points(dom, pts, max_points=25)
    assert is_sorted_linear(t)
    bal = balance_2to1(dom, t)
    assert is_balanced(bal)
    # verify the cap via key counting
    from repro.core.octant import max_level
    from repro.core.sfc import get_curve
    from repro.core.treesort import block_ends

    oracle = get_curve("morton")
    m = max_level(2)
    ip = np.clip((pts * (1 << m)).astype(np.int64), 0, (1 << m) - 1)
    pk = np.sort(oracle.keys_from_coords(ip.astype(np.uint32), 2))
    keys = oracle.keys(t)
    ends = block_ends(keys, t.levels, 2)
    counts = np.searchsorted(pk, ends) - np.searchsorted(pk, keys)
    assert counts.max() <= 25


def test_point_cloud_validation():
    with pytest.raises(ValueError):
        construct_from_points(Domain(dim=2), np.zeros((3, 2)), max_points=0)


# -- VTU ---------------------------------------------------------------------


def test_vtu_structure(tmp_path):
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    mesh = build_mesh(dom, 3, 5, p=1)
    u = PoissonProblem(mesh, f=1.0).solve()
    path = write_vtu(
        mesh, tmp_path / "out.vtu",
        point_data={"u": u},
        cell_data={"level": mesh.leaves.levels.astype(float)},
    )
    tree = ET.parse(path)
    piece = tree.getroot().find(".//Piece")
    assert int(piece.get("NumberOfCells")) == mesh.n_elem
    assert int(piece.get("NumberOfPoints")) == mesh.n_elem * 4
    names = {d.get("Name") for d in tree.getroot().iter("DataArray")}
    assert {"connectivity", "offsets", "types", "u", "level"} <= names


def test_vtu_3d_hexes(tmp_path):
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 3, p=1)
    path = write_vtu(mesh, tmp_path / "out3.vtu")
    txt = path.read_text()
    assert 'type="UInt8" Name="types"' in txt
    # hexahedron type id
    assert " 12" in txt or txt.count("12") > 0


def test_vtu_vector_point_data(tmp_path):
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    vel = np.stack([np.ones(mesh.n_nodes), -np.ones(mesh.n_nodes)], axis=1)
    path = write_vtu(mesh, tmp_path / "v.vtu", point_data={"vel": vel})
    tree = ET.parse(path)
    arr = [d for d in tree.getroot().iter("DataArray") if d.get("Name") == "vel"]
    assert arr and arr[0].get("NumberOfComponents") == "2"


def test_vtu_rejects_unsupported_dim(tmp_path):
    mesh = build_uniform_mesh(Domain(dim=2), 2, p=1)
    mesh_bad = mesh
    mesh_bad.domain.dim = 2  # no-op; construct a fake via monkeypatch instead
    # dimension validation is exercised through a direct call
    from repro.io.vtu import _VTK_CELL

    assert set(_VTK_CELL) == {2, 3}
