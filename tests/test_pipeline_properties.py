"""End-to-end property tests: random geometries through the full
carve → balance → nodes → operators pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Domain, assemble, build_mesh
from repro.core.balance import is_balanced
from repro.core.matvec import MapBasedMatVec, traversal_matvec
from repro.core.treesort import is_sorted_linear
from repro.geometry import BoxCarve, CarveUnion, SphereCarve


def _random_domain(rng, dim):
    parts = []
    n_obj = rng.integers(1, 4)
    for _ in range(n_obj):
        kind = rng.integers(0, 2)
        if kind == 0:
            c = rng.uniform(0.25, 0.75, dim)
            parts.append(SphereCarve(c, rng.uniform(0.05, 0.2)))
        else:
            lo = rng.uniform(0.1, 0.6, dim)
            hi = lo + rng.uniform(0.1, 0.3, dim)
            parts.append(BoxCarve(lo, np.minimum(hi, 0.9)))
    return Domain(CarveUnion(parts))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_geometry_pipeline_2d(seed):
    rng = np.random.default_rng(seed)
    dom = _random_domain(rng, 2)
    mesh = build_mesh(dom, 2, 5, p=1)
    # structural invariants
    assert is_sorted_linear(mesh.leaves)
    assert is_balanced(mesh.leaves)
    assert mesh.n_nodes > 0
    # operator invariants
    A = assemble(mesh)
    assert abs(A - A.T).max() < 1e-12
    assert np.abs(A @ np.ones(mesh.n_nodes)).max() < 1e-9
    u = rng.standard_normal(mesh.n_nodes)
    assert np.allclose(MapBasedMatVec(mesh)(u), A @ u, atol=1e-10)
    # energy positivity on the non-constant part
    v = u - u.mean()
    assert v @ (A @ v) >= -1e-10


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_geometry_traversal_equivalence_3d(seed):
    rng = np.random.default_rng(seed)
    dom = _random_domain(rng, 3)
    mesh = build_mesh(dom, 2, 3, p=1)
    u = rng.standard_normal(mesh.n_nodes)
    y_map = MapBasedMatVec(mesh)(u)
    y_trav = traversal_matvec(mesh, u)
    assert np.allclose(y_trav, y_map, atol=1e-11)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_geometry_volume_consistency(seed):
    """1' M 1 equals the summed voxel volume for any random carving."""
    rng = np.random.default_rng(seed)
    dom = _random_domain(rng, 2)
    mesh = build_mesh(dom, 3, 4, p=1)
    M = assemble(mesh, kind="mass")
    ones = np.ones(mesh.n_nodes)
    assert ones @ (M @ ones) == pytest.approx(
        float(np.sum(mesh.element_sizes() ** 2)), rel=1e-12
    )


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), nranks=st.integers(2, 9))
def test_random_geometry_distributed_consistency(seed, nranks):
    from repro.parallel import SimComm, analyze_partition, distributed_matvec, partition_mesh

    rng = np.random.default_rng(seed)
    dom = _random_domain(rng, 2)
    mesh = build_mesh(dom, 2, 4, p=1)
    u = rng.standard_normal(mesh.n_nodes)
    layout = analyze_partition(mesh, partition_mesh(mesh, nranks))
    dist = distributed_matvec(mesh, layout, u, SimComm(nranks))
    assert np.allclose(dist, MapBasedMatVec(mesh)(u), atol=1e-10)
