"""Tests for the fleet defense layers: hedged requests, per-shard
circuit breakers, deadline-aware brownout, artifact-corruption
quarantine and torn-checkpoint detection."""

import random

import numpy as np
import pytest

from repro.chaos import ChaosSchedule
from repro.fleet import FleetService, synthetic_workload
from repro.fleet.defense import BreakerPolicy, CircuitBreaker, HedgePolicy
from repro.obs import EventLog
from repro.resilience.checkpoint import (
    CheckpointCorruption,
    load_checkpoint,
    load_state_checkpoint,
    save_checkpoint,
    save_state_checkpoint,
)
from repro.resilience.faults import ArtifactCorruption, corrupt_in_place
from repro.serve import SolverService, demo_workload
from repro.serve.scheduler import BrownoutPolicy

pytestmark = pytest.mark.chaos


def _fleet(n, **kw):
    kw.setdefault("cache_bytes", 8 << 20)
    kw.setdefault("steal_threshold", 4)
    kw.setdefault("steal_latency", 100)
    return FleetService(n, **kw)


# -- circuit breakers ----------------------------------------------------


def _policy(**kw):
    kw.setdefault("window", 8)
    kw.setdefault("failure_threshold", 0.5)
    kw.setdefault("min_samples", 4)
    kw.setdefault("cooldown", 1000)
    return BreakerPolicy(**kw)


def test_breaker_opens_on_windowed_failure_rate():
    b = CircuitBreaker("s0", _policy())
    for t in range(3):
        b.record(False, t)
    assert b.state == "closed"  # below min_samples
    b.record(False, 3)
    assert b.state == "open" and b.opens == 1
    assert not b.allow(4)  # cooldown not elapsed


def test_breaker_never_opens_below_threshold():
    b = CircuitBreaker("s0", _policy())
    for t in range(50):
        b.record(t % 4 != 0, t)  # 1/4 failures < 0.5 threshold
    assert b.state == "closed" and b.opens == 0


def test_breaker_half_open_admits_exactly_one_probe():
    b = CircuitBreaker("s0", _policy())
    for t in range(4):
        b.record(False, t)
    assert b.state == "open"
    t_half = 4 + b.policy.cooldown
    assert b.allow(t_half)  # the single probe
    assert b.state == "half_open"
    # every further routing decision is refused until the probe resolves
    assert not b.allow(t_half)
    assert not b.allow(t_half + 1)
    assert not b.allow(t_half + 500)
    b.record(True, t_half + 600)  # probe succeeds
    assert b.state == "closed"
    assert b.allow(t_half + 601)


def test_breaker_probe_failure_reopens():
    b = CircuitBreaker("s0", _policy())
    for t in range(4):
        b.record(False, t)
    t_half = 4 + b.policy.cooldown
    assert b.allow(t_half)
    b.record(False, t_half + 1)  # probe fails
    assert b.state == "open" and b.opens == 2
    assert not b.allow(t_half + 2)
    # a second cooldown earns a second (single) probe
    t2 = t_half + 1 + b.policy.cooldown
    assert b.allow(t2)
    assert not b.allow(t2)


def test_breaker_transitions_emit_typed_events():
    log = EventLog()
    b = CircuitBreaker("s0", _policy(), recorder=log)
    for t in range(4):
        b.record(False, t)
    t_half = 4 + b.policy.cooldown
    b.allow(t_half)
    b.record(True, t_half + 1)
    kinds = [ev.kind for ev in log.events]
    assert kinds == ["breaker_open", "breaker_half_open", "breaker_close"]
    assert all(ev.shard == "s0" for ev in log.events)


# -- hedged requests -----------------------------------------------------


def _straggler_schedule(factor=50):
    return ChaosSchedule().slow("shard0", 0, 10_000_000, factor)


def _hedge_policy(**kw):
    kw.setdefault("initial_delay", 3_000)
    kw.setdefault("min_delay", 1_000)
    kw.setdefault("min_samples", 10**9)  # pin the delay: deterministic
    kw.setdefault("transfer_latency", 100)
    return HedgePolicy(**kw)


def test_hedging_preserves_exactly_once_under_straggler():
    workload = synthetic_workload(40, seed=3)
    expected = sorted(a.request.digest for a in workload)
    log = EventLog()
    fleet = _fleet(4, stealing=False, recorder=log,
                   chaos=_straggler_schedule(), hedge=_hedge_policy())
    fleet.run(synthetic_workload(40, seed=3))
    got = sorted(r.request_digest for r in fleet.responses)
    assert got == expected  # exactly once, no dupes, no losses
    assert fleet.hedges_fired > 0 and fleet.hedge_wins > 0
    kinds = {ev.kind for ev in log.events}
    assert "hedge" in kinds and "hedge_win" in kinds


def test_hedged_run_is_deterministic():
    def run():
        fleet = _fleet(4, stealing=False, chaos=_straggler_schedule(),
                       hedge=_hedge_policy())
        fleet.run(synthetic_workload(40, seed=3))
        return fleet.stream_digest
    assert run() == run()


class _FakeItem:
    def __init__(self, instance, digest):
        self.instance = instance
        self.digest = digest


def test_hedge_guard_suppresses_loser_at_same_tick():
    """Winner and loser completing at the same virtual tick: the first
    guard call wins, the second is suppressed and logged as completed
    on its shard — exactly-once even under a tie."""
    fleet = _fleet(2, hedge=HedgePolicy())
    rec = {"request": None, "digest": "d" * 64, "t_submit": 0,
           "completed": False, "hedges": 1}
    fleet._instances.append(rec)
    item = _FakeItem(0, "d" * 64)
    g0 = fleet.shards["shard0"].completion_guard
    g1 = fleet.shards["shard1"].completion_guard
    # a requeue only peeks — it must not consume the completion
    assert g0(item, "retry") is True
    assert not rec["completed"]
    assert g0(item, "solve") is True  # the winner
    assert rec["completed"] and fleet.hedge_wins == 1
    assert g1(item, "solve") is False  # same-tick loser: suppressed
    assert fleet.logs["shard1"].completed[-1] == "d" * 64
    assert g1(item, "retry") is False  # late requeue of a done instance
    assert fleet.hedge_wins == 1  # the win counted once


def test_hedge_guard_ignores_unregistered_instances():
    fleet = _fleet(2, hedge=HedgePolicy())
    g = fleet.shards["shard0"].completion_guard
    assert g(_FakeItem(-1, "x" * 64), "solve") is True
    assert g(_FakeItem(99, "x" * 64), "solve") is True


# -- deadline-aware brownout ---------------------------------------------


def _flood(n=64, seed=9):
    """Arrivals far faster than service: queues must spike."""
    return synthetic_workload(n, seed=seed, mean_gap=2, burst_gap=1)


@pytest.mark.parametrize("n_shards", [2, 4])
def test_brownout_sheds_deterministically_under_shuffle(n_shards):
    brown = BrownoutPolicy(shed_depth=6, pressure_depth=3, degrade_depth=4)

    def run(order_seed):
        arrivals = list(_flood())
        random.Random(order_seed).shuffle(arrivals)
        log = EventLog()
        fleet = _fleet(n_shards, stealing=False, recorder=log,
                       brownout=brown)
        fleet.run(arrivals)
        shed = sorted(r.request_digest for r in fleet.responses
                      if r.status == "rejected" and r.reason == "shed")
        return shed, fleet.stream_digest, log.digest

    shed_a, stream_a, dig_a = run(1)
    shed_b, stream_b, dig_b = run(2)
    assert shed_a, "flood workload must actually shed"
    assert shed_a == shed_b  # same multiset of arrivals → same sheds
    assert stream_a == stream_b and dig_a == dig_b


def test_brownout_degrades_and_marks_responses():
    brown = BrownoutPolicy(shed_depth=10**6, degrade_depth=2)
    log = EventLog()
    fleet = _fleet(2, stealing=False, recorder=log, brownout=brown)
    fleet.run(_flood(48))
    degraded = [r for r in fleet.responses
                if r.status == "ok" and r.degraded]
    assert degraded, "deep queues must degrade some solves"
    assert any(ev.kind == "degrade" for ev in log.events)
    # a degraded solve still completes exactly once
    expected = sorted(a.request.digest for a in _flood(48))
    assert sorted(r.request_digest for r in fleet.responses) == expected


# -- artifact-cache corruption quarantine --------------------------------


def test_cache_get_reverifies_quarantines_and_rebuilds():
    svc = SolverService(cache_bytes=256 << 20)
    reqs = demo_workload(6, seed=0)
    for r in reqs:
        svc.submit(r)
    svc.drain()
    key = reqs[0].mesh_digest
    entry = svc.cache.peek(key)
    assert entry is not None
    corrupt_in_place(entry.ctx.h, (1, 2))  # flip one bit
    before = len(svc.cache.quarantined)
    with pytest.raises(ArtifactCorruption) as exc:
        svc.cache.lookup(key)
    assert exc.value.tier == "l1"
    assert len(svc.cache.quarantined) == before + 1
    assert svc.cache.stats()["quarantined"] == before + 1
    assert svc.cache.peek(key) is None  # evicted, not served again
    # the service rebuilds from scratch and answers correctly
    n_before = len(svc.responses)
    svc.submit(reqs[0])
    svc.drain()
    assert len(svc.responses) == n_before + 1
    assert svc.responses[-1].status == "ok"


def test_chaos_cache_corruption_detected_end_to_end():
    # flip a byte under the fleet's feet mid-run: the lookup-side
    # re-verification must catch it, quarantine, rebuild and still
    # answer every request
    # lookup 5 is a hit for this (workload, config): a live entry is
    # corrupted under the service's feet, not a miss
    sched = ChaosSchedule().corrupt_cache("shard0", at_lookup=5)
    log = EventLog()
    fleet = _fleet(2, stealing=False, recorder=log, chaos=sched)
    workload = synthetic_workload(32, seed=0)
    fleet.run(synthetic_workload(32, seed=0))
    expected = sorted(a.request.digest for a in workload)
    assert sorted(r.request_digest for r in fleet.responses) == expected
    assert all(r.status == "ok" for r in fleet.responses)
    kinds = [ev.kind for ev in log.events]
    assert "corrupt_detect" in kinds and "quarantine" in kinds


# -- torn checkpoints ----------------------------------------------------


def test_torn_ckpt_v1_raises_typed_corruption(tmp_path):
    from repro.core.domain import Domain
    from repro.core.mesh import build_mesh
    from repro.geometry import SphereCarve

    mesh = build_mesh(Domain(SphereCarve([0.5, 0.5], 0.3), dim=2), 2, 3, p=1)
    path = save_checkpoint(tmp_path / "t.ckpt.json", mesh,
                           vectors={"x": np.ones(mesh.n_nodes)})
    raw = path.read_bytes()
    for cut in (1, len(raw) // 3, len(raw) // 2, len(raw) - 2):
        torn = tmp_path / f"torn_{cut}.ckpt.json"
        torn.write_bytes(raw[:cut])
        with pytest.raises(CheckpointCorruption):
            load_checkpoint(torn)


def test_torn_state_v1_raises_typed_corruption(tmp_path):
    path = tmp_path / "s0_step1.ckpt.json"
    save_state_checkpoint(path, name="s0", step=1,
                          state={"pending": [], "clock": 42})
    raw = path.read_bytes()
    for cut in (1, len(raw) // 4, len(raw) // 2, len(raw) - 2):
        torn = tmp_path / f"torn_{cut}.ckpt.json"
        torn.write_bytes(raw[:cut])
        with pytest.raises(CheckpointCorruption):
            load_state_checkpoint(torn)
