"""Tests for repro.obs: spans, counters, artifacts, diffs, determinism."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core.domain import Domain
from repro.core.matvec import MapBasedMatVec
from repro.core.mesh import build_mesh
from repro.geometry.primitives import SphereCarve
from repro.obs.regress import diff_artifacts, flatten_spans
from repro.obs.report import (
    ARTIFACT_SCHEMA,
    BENCH_SCHEMA,
    canonical_metrics,
    canonical_spans,
    collect,
    load_artifact,
    render_report,
    to_chrome_trace,
    validate_artifact,
    write_artifact,
)
from repro.obs.trace import _NULL
from repro.parallel.simmpi import SimComm, _nbytes


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with a disabled, empty registry."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def small_mesh():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    return build_mesh(dom, 2, 4, p=1)


# -- trace ---------------------------------------------------------------


def test_span_nesting_builds_tree():
    obs.enable()
    with obs.span("outer", kind="demo") as sp:
        sp.add("widgets", 2)
        with obs.span("inner"):
            pass
        with obs.span("inner2"):
            pass
    roots = obs.TRACER.roots
    assert [r.name for r in roots] == ["outer"]
    assert roots[0].attrs == {"kind": "demo"}
    assert roots[0].counters == {"widgets": 2}
    assert [c.name for c in roots[0].children] == ["inner", "inner2"]
    assert roots[0].duration >= sum(c.duration for c in roots[0].children)


def test_merge_spans_accumulate():
    obs.enable()
    with obs.span("parent"):
        for _ in range(5):
            with obs.span("hot", merge=True) as sp:
                sp.add("items", 3)
    (parent,) = obs.TRACER.roots
    (hot,) = parent.children  # five invocations folded into one child
    assert hot.count == 5
    assert hot.counters["items"] == 15


def test_record_attaches_known_duration():
    obs.enable()
    with obs.span("model"):
        sp = obs.record("phase", 0.25, items=4)
        obs.record("phase", 0.5)
    assert sp.duration == pytest.approx(0.75)
    assert sp.count == 2
    assert sp.counters == {"items": 4}


def test_disabled_mode_is_noop():
    assert not obs.is_enabled()
    assert obs.span("anything") is _NULL
    with obs.span("anything") as sp:
        sp.add("x")
        sp.set("y", 1)
    assert obs.TRACER.roots == []
    assert obs.record("phase", 1.0) is None
    obs.add("counter.x", 5)
    obs.set_gauge("gauge.x", 5)
    snap = obs.snapshot()
    assert snap == {"counters": {}, "gauges": {}}


def test_disabled_span_overhead_under_5pct(small_mesh):
    """Disabled-path instrumentation cost stays below 5% of the
    ablation bench's small case (one map-based MATVEC)."""
    mv = MapBasedMatVec(small_mesh)
    u = np.linspace(0, 1, small_mesh.n_nodes)
    mv(u)  # warm caches
    t0 = time.perf_counter()
    reps = 20
    for _ in range(reps):
        mv(u)
    t_matvec = (time.perf_counter() - t0) / reps

    n = 20000
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("x", merge=True) as sp:
            sp.add("a", 1)
            sp.add("b", 2)
    per_call = (time.perf_counter() - t0) / n
    # one span + two counter adds is exactly what mv() does per call
    assert per_call < 0.05 * t_matvec, (
        f"disabled obs costs {per_call * 1e6:.2f}us vs "
        f"matvec {t_matvec * 1e6:.2f}us"
    )


# -- counters ------------------------------------------------------------


def test_counters_and_gauges_with_labels():
    obs.enable()
    obs.add("comm.bytes_sent", 100, rank=0)
    obs.add("comm.bytes_sent", 50, rank=0)
    obs.add("comm.bytes_sent", 7, rank=1)
    obs.set_gauge("mesh.n_elem", 800)
    obs.set_gauge("mesh.n_elem", 900)
    assert obs.get_value("comm.bytes_sent", rank=0) == 150
    assert obs.get_value("comm.bytes_sent", rank=1) == 7
    assert obs.get_value("mesh.n_elem") == 900
    assert obs.get_value("never.published") is None
    snap = obs.snapshot()
    assert snap["counters"]['comm.bytes_sent{rank="0"}'] == 150
    assert snap["gauges"]["mesh.n_elem"] == 900


def test_simmpi_publishes_matching_obs_counters():
    obs.enable()
    comm = SimComm(3)
    msg = {(0, 1): np.zeros(4), (1, 2): np.zeros(2), (2, 2): np.zeros(8)}
    comm.exchange(msg)
    comm.allreduce([np.zeros(2)] * 3)
    comm.allgather([np.zeros(1), np.zeros(2), np.zeros(3)])
    for r in range(3):
        assert obs.get_value("comm.bytes_sent", rank=r) == int(
            comm.counters.bytes_sent[r]
        )
        assert obs.get_value("comm.bytes_recv", rank=r) == int(
            comm.counters.bytes_recv[r]
        )
        assert obs.get_value("comm.messages_sent", rank=r) == int(
            comm.counters.messages_sent[r]
        )
    assert obs.get_value("comm.collectives") == comm.counters.collectives == 3


# -- _nbytes satellite ---------------------------------------------------


def test_nbytes_all_payload_types():
    assert _nbytes(np.zeros(3)) == 24
    assert _nbytes(np.zeros((2, 2), np.float32)) == 16
    assert _nbytes(b"abcd") == 4
    assert _nbytes(bytearray(5)) == 5
    assert _nbytes(memoryview(b"abc")) == 3
    assert _nbytes(None) == 0
    assert _nbytes([np.zeros(2), np.zeros(3)]) == 40
    assert _nbytes((b"ab", None)) == 2
    # dicts count keys and values, recursively
    assert _nbytes({0: np.zeros(2)}) == _nbytes(0) + 16
    assert _nbytes({"k": {"n": b"xy"}}) == 2 * _nbytes("k") + 2
    assert _nbytes(np.float64(1.0)) == 8
    assert _nbytes(3) == np.asarray(3).nbytes


def test_exchange_accepts_dict_payloads():
    comm = SimComm(2)
    comm.exchange({(0, 1): {"ids": np.zeros(3, np.int64)}})
    assert comm.counters.bytes_sent[0] == _nbytes("ids") + 24


# -- report / artifacts --------------------------------------------------


def _traced_run(small_mesh, ranks=4):
    from repro.parallel import (
        SimComm,
        analyze_partition,
        distributed_matvec,
        partition_mesh,
    )

    splits = partition_mesh(small_mesh, ranks, load_tol=0.1)
    layout = analyze_partition(small_mesh, splits)
    rng = np.random.default_rng(0)
    u = rng.standard_normal(small_mesh.n_nodes)
    return distributed_matvec(small_mesh, layout, u, SimComm(ranks))


def test_artifact_roundtrip_and_validation(tmp_path, small_mesh):
    obs.enable()
    _traced_run(small_mesh)
    path = tmp_path / "run.json"
    write_artifact(path, "unit-run", meta={"note": "test"})
    doc = load_artifact(path)
    assert validate_artifact(doc) == []
    assert doc["schema"] == "repro.obs/run.v1"
    assert doc["name"] == "unit-run"
    assert doc["meta"] == {"note": "test"}
    names = {s["name"] for s in doc["spans"]}
    assert "matvec.rank" in names and "partition.analyze" in names
    assert any("comm.bytes_sent" in k for k in doc["metrics"]["counters"])
    # optional: the real jsonschema validator agrees with ours
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(doc, ARTIFACT_SCHEMA)


def test_validate_artifact_rejects_garbage():
    assert validate_artifact([]) != []
    assert validate_artifact({"schema": "wrong/tag"}) != []
    bad = collect("x")
    bad["spans"] = [{"name": 3, "count": "nope"}]
    assert len(validate_artifact(bad)) >= 2


def test_load_artifact_raises_on_invalid(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(ValueError):
        load_artifact(p)


def test_render_report_and_chrome_trace(small_mesh):
    obs.enable()
    _traced_run(small_mesh, ranks=2)
    doc = collect("render-test")
    text = render_report(doc)
    assert "render-test" in text
    assert "matvec.rank" in text and "x2" in text  # sibling aggregation
    chrome = to_chrome_trace(doc)
    events = chrome["traceEvents"]
    assert all(e["ph"] == "X" for e in events)
    # per-rank spans land on their own chrome pid lanes
    pids = {e["pid"] for e in events if e["name"] == "matvec.top_down"}
    assert pids == {0, 1}


def test_two_runs_are_deterministic(small_mesh):
    """Identical distributed runs → identical counters and span trees
    (timing excluded) — the reproducibility contract of the artifact."""
    docs = []
    for _ in range(2):
        obs.reset()
        obs.enable()
        _traced_run(small_mesh)
        docs.append(collect("det"))
        obs.disable()
    a, b = docs
    # wall-clock counters (kernels.seconds) are timing, not payload
    assert canonical_metrics(a) == canonical_metrics(b)
    assert canonical_spans(a) == canonical_spans(b)
    # and the canonical form really dropped the clock fields
    flat = json.dumps(canonical_spans(a))
    assert "t_start" not in flat and "duration" not in flat


# -- regress -------------------------------------------------------------


def test_diff_identical_runs_is_clean(small_mesh):
    obs.enable()
    _traced_run(small_mesh, ranks=2)
    doc = collect("base")
    deltas = diff_artifacts(doc, doc, tol=0.1)
    assert deltas and all(d.status == "ok" for d in deltas)


def test_diff_flags_regressions():
    base = {
        "spans": [
            {"name": "a", "count": 1, "duration": 1.0,
             "counters": {"items": 10}},
            {"name": "gone", "count": 1, "duration": 0.5},
        ]
    }
    new = {
        "spans": [
            {"name": "a", "count": 1, "duration": 2.0,
             "counters": {"items": 11}},
            {"name": "fresh", "count": 1, "duration": 0.5},
        ]
    }
    by_path = {d.path: d for d in diff_artifacts(base, new, tol=0.25)}
    assert by_path["a"].status == "slower"
    assert by_path["a"].counter_deltas["items"] == (10, 11)
    assert by_path["gone"].status == "removed"
    assert by_path["fresh"].status == "added"
    improved = {d.path: d for d in diff_artifacts(new, base, tol=0.25)}
    assert improved["a"].status == "faster"


def test_flatten_spans_paths():
    doc = {
        "spans": [
            {"name": "a", "count": 1, "duration": 1.0,
             "children": [{"name": "b", "count": 2, "duration": 0.5}]}
        ]
    }
    flat = flatten_spans(doc)
    assert set(flat) == {"a", "a/b"}
    assert flat["a/b"]["count"] == 2


# -- ResultTable satellite ----------------------------------------------


def test_result_table_creates_nested_results_dir(tmp_path):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
    try:
        from _util import ResultTable
    finally:
        sys.path.pop(0)

    deep = tmp_path / "does" / "not" / "exist"
    t = ResultTable("unit", "Unit Table", results_dir=deep)
    t.row("row one")
    t.record(x=1, y=2.5)
    out = t.save()
    assert out == deep / "unit.txt"
    assert "row one" in out.read_text()
    doc = json.loads((deep / "unit.json").read_text())
    assert validate_artifact(doc, BENCH_SCHEMA) == []
    assert doc["records"] == [{"x": 1, "y": 2.5}]
    assert doc["trace"]["enabled"] is False


# -- histograms ----------------------------------------------------------


def test_histogram_summary_and_quantiles():
    from repro.obs import Histogram

    h = Histogram()
    for v in [1.0, 2.0, 3.0, 100.0]:
        h.observe(v)
    s = h.summary()
    assert s["count"] == 4 and s["sum"] == 106.0
    assert s["min"] == 1.0 and s["max"] == 100.0
    # quantiles are deterministic bucket upper bounds
    assert h.quantile(0.5) >= 2.0
    assert h.quantile(0.99) >= 100.0 * 0.99 or h.quantile(0.99) >= s["p50"]
    assert s["p50"] <= s["p95"] <= s["p99"]


def test_histogram_identical_streams_identical_summaries():
    from repro.obs import Histogram

    rng = np.random.default_rng(0)
    vals = rng.lognormal(0.0, 2.0, 500)
    h1, h2 = Histogram(), Histogram()
    for v in vals:
        h1.observe(float(v))
    for v in vals[::-1]:  # order must not matter
        h2.observe(float(v))
    s1, s2 = h1.summary(), h2.summary()
    # the running float sum is the one order-sensitive field
    assert s1.pop("sum") == pytest.approx(s2.pop("sum"), rel=1e-12)
    assert s1 == s2


def test_histogram_empty_and_extremes():
    from repro.obs import Histogram

    h = Histogram()
    s = h.summary()
    assert s == {"count": 0, "sum": 0.0}
    assert h.quantile(0.5) == 0.0
    h.observe(0.0)        # below the smallest bucket edge
    h.observe(1e30)       # beyond the largest edge → overflow bucket
    assert h.quantile(0.99) == 1e30  # overflow quantile reports max seen


def test_registry_histograms_in_snapshot_and_report():
    obs.enable()
    for v in (1.0, 2.0, 4.0, 1000.0):
        obs.observe("serve.latency_ticks", v)
    obs.observe("solve.residual", 1e-9, pde="poisson")
    h = obs.get_histogram("serve.latency_ticks")
    assert h is not None and h["count"] == 4
    snap = obs.snapshot()
    assert "histograms" in snap
    assert snap["histograms"]["serve.latency_ticks"]["count"] == 4
    assert 'solve.residual{pde="poisson"}' in snap["histograms"]
    doc = obs.collect("hist-run")
    from repro.obs.report import ARTIFACT_SCHEMA, render_report, validate_artifact

    assert validate_artifact(doc, ARTIFACT_SCHEMA) == []
    text = render_report(doc)
    assert "histograms" in text and "serve.latency_ticks" in text
    assert "p95=" in text


def test_registry_histograms_gated_when_disabled():
    obs.observe("never.recorded", 1.0)
    assert obs.get_histogram("never.recorded") is None
    snap = obs.snapshot()
    assert "histograms" not in snap  # old artifacts stay byte-stable
