"""Tests for TreeSort, linearisation, and duplicate removal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.octant import OctantSet, ancestor_at_level, children, max_level
from repro.core.treesort import (
    is_sorted_linear,
    linearize,
    remove_duplicates,
    tree_sort,
    tree_sort_msd,
)


def _random_octants(rng, dim, n, max_lv=6):
    m = max_level(dim)
    levels = rng.integers(1, max_lv + 1, n)
    anchors = np.empty((n, dim), np.uint32)
    for i, lv in enumerate(levels):
        size = 1 << (m - lv)
        anchors[i] = rng.integers(0, 1 << lv, dim) * size
    return OctantSet(anchors, levels.astype(np.uint8), dim)


@pytest.mark.parametrize("curve", ["morton", "hilbert"])
@pytest.mark.parametrize("dim", [2, 3])
def test_msd_matches_keysort(curve, dim):
    rng = np.random.default_rng(7)
    o = _random_octants(rng, dim, 200)
    a, _ = tree_sort(o, curve)
    b = tree_sort_msd(o, curve)
    assert np.array_equal(a.anchors, b.anchors)
    assert np.array_equal(a.levels, b.levels)


def test_tree_sort_permutation_valid():
    rng = np.random.default_rng(3)
    o = _random_octants(rng, 2, 50)
    s, order = tree_sort(o)
    assert np.array_equal(s.anchors, o.anchors[order])
    assert sorted(order) == list(range(50))


def test_remove_duplicates():
    rng = np.random.default_rng(1)
    o = _random_octants(rng, 2, 30)
    dup = OctantSet.concatenate([o, o, o])
    u = remove_duplicates(dup)
    s, _ = tree_sort(o)
    su = remove_duplicates(s, assume_sorted=True)
    assert len(u) == len(su)
    # all duplicates gone: pairwise distinct
    keys = [tuple(a) + (l,) for a, l in zip(u.anchors, u.levels)]
    assert len(set(keys)) == len(keys)


def test_linearize_prefer_finer():
    r = OctantSet.root(2)
    ch = children(r)
    both = OctantSet.concatenate([r, ch])
    lin = linearize(both, prefer="finer")
    assert len(lin) == 4
    assert np.all(lin.levels == 1)


def test_linearize_prefer_coarser():
    r = OctantSet.root(2)
    ch = children(r)
    both = OctantSet.concatenate([r, ch])
    lin = linearize(both, prefer="coarser")
    assert len(lin) == 1
    assert lin.levels[0] == 0


def test_linearize_rejects_bad_prefer():
    with pytest.raises(ValueError):
        linearize(OctantSet.root(2), prefer="middle")


def test_linearize_multilevel_chain():
    """ancestor chains of depth > 1 resolve in one pass."""
    r = OctantSet.root(2)
    ch = children(r)
    gch = children(ch[0])
    mix = OctantSet.concatenate([r, ch[0], gch])
    fin = linearize(mix, prefer="finer")
    assert is_sorted_linear(fin)
    assert fin.levels.max() == 2 and fin.levels.min() == 2
    co = linearize(mix, prefer="coarser")
    assert len(co) == 1 and co.levels[0] == 0


def test_is_sorted_linear_detects_overlap():
    r = OctantSet.root(2)
    ch = children(r)
    both, _ = tree_sort(OctantSet.concatenate([r, ch]))
    assert not is_sorted_linear(both)
    assert is_sorted_linear(ch)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_linearize_produces_linear_octree(seed):
    rng = np.random.default_rng(seed)
    o = _random_octants(rng, 2, 100)
    lin = linearize(o)
    assert is_sorted_linear(lin)
    # prefer='finer' keeps every finest representative: no input octant
    # is strictly finer than everything that survived in its block
    assert len(lin) >= 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_linearize_coarser_covers_all_inputs(seed):
    """Every input octant is covered by some kept octant."""
    rng = np.random.default_rng(seed)
    o = _random_octants(rng, 2, 60)
    lin = linearize(o, prefer="coarser")
    # each input is a descendant-or-equal of a kept octant
    for i in range(len(o)):
        anc_found = False
        for lv in range(int(o.levels[i]), -1, -1):
            anc = ancestor_at_level(o[i], lv)
            match = (lin.levels == lv) & np.all(
                lin.anchors == anc.anchors[0], axis=1
            )
            if match.any():
                anc_found = True
                break
        assert anc_found
