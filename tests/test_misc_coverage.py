"""Edge-case coverage across smaller code paths."""

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh
from repro.core.faces import extract_boundary_faces
from repro.core.octant import OctantSet
from repro.geometry import BoxRetain, SphereCarve
from repro.parallel import FRONTERA, SimComm
from repro.parallel.perfmodel import MachineModel


def test_machine_model_rates():
    m = MachineModel()
    assert m.kernel_rate(1) == m.gflops_linear
    assert m.kernel_rate(2) == m.gflops_quadratic
    assert m.kernel_rate(3) > m.gflops_quadratic  # extrapolated
    assert m.leaf_flops_per_element(2, 3) > m.leaf_flops_per_element(1, 3)


def test_simcomm_validation_errors():
    comm = SimComm(2)
    with pytest.raises(ValueError):
        comm.alltoallv([[None]])  # wrong shape
    with pytest.raises(ValueError):
        comm.allgather([1])  # one value per rank required
    with pytest.raises(ValueError):
        comm.allreduce([np.ones(2)])


def test_simcomm_reset():
    comm = SimComm(2)
    comm.exchange({(0, 1): np.zeros(8)})
    assert comm.counters.total_bytes() > 0
    comm.reset_counters()
    assert comm.counters.total_bytes() == 0
    assert comm.counters.max_bytes_per_rank() == 0


def test_boundary_faces_3d_sphere_closed():
    """The carved-sphere surrogate surface is closed: outward-flux of a
    constant vector field integrates to zero."""
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 3, 4, p=1)
    sub, _ = extract_boundary_faces(mesh)
    assert len(sub) > 0
    n = sub.outward_normals(3)
    h = mesh.element_sizes()[sub.elem]
    areas = h**2
    flux = (n * areas[:, None]).sum(axis=0)
    assert np.abs(flux).max() < 1e-12


def test_boundary_faces_anisotropic_channel_area():
    """Total carved-boundary area of the 4x1 channel = 2 walls x length
    (inlet/outlet faces are domain boundary, not carved)."""
    dom = Domain(BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0)
    mesh = build_uniform_mesh(dom, 5, p=1)
    sub, domf = extract_boundary_faces(mesh)
    h = mesh.element_sizes()
    area_sub = h[sub.elem].sum()  # 1D "area" = length in 2D
    # one wall at y=1 inside the domain; y=0 wall is on the cube boundary
    assert area_sub == pytest.approx(4.0)
    area_dom = h[domf.elem].sum()
    assert area_dom == pytest.approx(4.0 + 1.0 + 1.0)  # y=0 wall + inlet + outlet


def test_octantset_getitem_scalar():
    r = OctantSet.root(2)
    sub = r[0]
    assert len(sub) == 1


def test_octantset_concatenate_empty_list():
    with pytest.raises(ValueError):
        OctantSet.concatenate([])


def test_vtu_unsupported_dim(tmp_path):
    from repro.io import write_vtu

    mesh = build_uniform_mesh(Domain(dim=4), 1, p=1)
    with pytest.raises(ValueError):
        write_vtu(mesh, tmp_path / "x.vtu")


def test_traversal_plan_slots_cover_all(tmp_path):
    from repro.core.matvec import TraversalPlan

    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 4, p=1)
    plan = TraversalPlan(mesh)
    assert len(plan.slot_ptr) == mesh.n_elem + 1
    assert plan.slot_ptr[-1] == len(plan.slot_gid) == len(plan.slot_w)
    for e in range(mesh.n_elem):
        # every local slot appears at least once in the slot table
        slot, _, _ = plan.rows(e)
        assert set(slot) == set(range(mesh.npe))


def test_blockjacobi_empty_block():
    import scipy.sparse as sp

    from repro.solvers import BlockJacobi

    A = sp.eye(4).tocsc()
    M = BlockJacobi(A, splits=[0, 2, 2, 4])  # middle block empty
    r = np.arange(4.0)
    assert np.allclose(M(r), r)


def test_krylov_zero_rhs():
    from repro.solvers import bicgstab, cg

    A = np.eye(5)
    for solver in (cg, bicgstab):
        res = solver(A, np.zeros(5))
        assert res.converged
        assert np.allclose(res.x, 0.0)


def test_result_table_roundtrip(tmp_path, monkeypatch):
    import importlib.util
    import sys

    bench_dir = str(
        __import__("pathlib").Path(__file__).parent.parent / "benchmarks"
    )
    sys.path.insert(0, bench_dir)
    try:
        import _util

        monkeypatch.setattr(_util, "RESULTS_DIR", tmp_path)
        t = _util.ResultTable("demo", "Demo Table")
        t.row("a b c")
        out = t.save()
        assert out.read_text().startswith("Demo Table")
    finally:
        sys.path.remove(bench_dir)
