"""Tests for Algorithm 3: distributed construction on the simulated MPI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import balance_2to1, is_balanced
from repro.core.construct import construct_adaptive, construct_constrained
from repro.core.distributed import (
    dist_tree_sort,
    distributed_balance_2to1,
    distributed_construct_constrained,
    gather_global,
)
from repro.core.domain import Domain
from repro.core.octant import OctantSet, max_level
from repro.core.treesort import is_sorted_linear, tree_sort
from repro.geometry import SphereCarve
from repro.parallel import SimComm


def _random_seeds(rng, n, dim=2, levels=(2, 6)):
    m = max_level(dim)
    lv = rng.integers(levels[0], levels[1], n)
    anchors = np.empty((n, dim), np.uint32)
    for i, l in enumerate(lv):
        anchors[i] = rng.integers(0, 1 << l, dim) * (1 << (m - l))
    return OctantSet(anchors, lv.astype(np.uint8), dim)


def _scatter(oset, nranks, rng):
    owner = rng.integers(0, nranks, len(oset))
    return [oset[np.flatnonzero(owner == r)] for r in range(nranks)]


def test_dist_tree_sort_global_order():
    rng = np.random.default_rng(0)
    seeds = _random_seeds(rng, 40)
    comm = SimComm(4)
    parts = dist_tree_sort(_scatter(seeds, 4, rng), comm)
    merged = OctantSet.concatenate([p for p in parts if len(p)])
    ref, _ = tree_sort(seeds)
    assert np.array_equal(merged.anchors, ref.anchors)
    assert np.array_equal(merged.levels, ref.levels)
    # rank ranges are globally ordered
    from repro.core.sfc import get_curve

    keys = [get_curve("morton").keys(p) for p in parts if len(p)]
    for a, b in zip(keys[:-1], keys[1:]):
        assert a[-1] <= b[0]


def test_dist_tree_sort_counts_traffic():
    rng = np.random.default_rng(1)
    seeds = _random_seeds(rng, 60)
    comm = SimComm(4)
    dist_tree_sort(_scatter(seeds, 4, rng), comm)
    assert comm.counters.total_bytes() > 0
    assert comm.counters.collectives >= 2


@pytest.mark.parametrize("nranks", [2, 4, 7])
def test_distributed_construct_matches_serial(nranks):
    rng = np.random.default_rng(nranks)
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    seeds = _random_seeds(rng, 20)
    comm = SimComm(nranks)
    parts = distributed_construct_constrained(
        dom, _scatter(seeds, nranks, rng), comm
    )
    glob = gather_global(parts)
    ref = construct_constrained(dom, seeds)
    assert np.array_equal(glob.anchors, ref.anchors)
    assert np.array_equal(glob.levels, ref.levels)
    assert is_sorted_linear(glob)


def test_distributed_balance_matches_serial():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    raw = construct_adaptive(dom, 2, 6)
    rng = np.random.default_rng(2)
    comm = SimComm(4)
    parts = distributed_balance_2to1(dom, _scatter(raw, 4, rng), comm)
    glob = gather_global(parts)
    ref = balance_2to1(dom, raw)
    assert np.array_equal(glob.anchors, ref.anchors)
    assert is_balanced(glob)


def test_distributed_construct_empty_ranks_ok():
    """Ranks holding no seeds must not break the pipeline."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    rng = np.random.default_rng(3)
    seeds = _random_seeds(rng, 6)
    comm = SimComm(4)
    parts = [seeds, OctantSet.empty(2), OctantSet.empty(2), OctantSet.empty(2)]
    out = distributed_construct_constrained(dom, parts, comm)
    glob = gather_global(out)
    ref = construct_constrained(dom, seeds)
    assert np.array_equal(glob.anchors, ref.anchors)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_distributed_construct_property(seed):
    """Distributed == serial for random seed scatters (3D too)."""
    rng = np.random.default_rng(seed)
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    seeds = _random_seeds(rng, 10, dim=3, levels=(1, 4))
    comm = SimComm(3)
    parts = distributed_construct_constrained(dom, _scatter(seeds, 3, rng), comm)
    glob = gather_global(parts)
    ref = construct_constrained(dom, seeds)
    assert np.array_equal(glob.anchors, ref.anchors)
    assert np.array_equal(glob.levels, ref.levels)
