"""Estimator-driven AMR: estimators, marking, the loop, and serving."""

import numpy as np
import pytest

from repro import Domain
from repro.amr import (
    amr_solve,
    dorfler_mark,
    maximum_mark,
    poisson_estimator,
)
from repro.core import construct_adaptive
from repro.core.mesh import mesh_from_leaves
from repro.fem.poisson import PoissonProblem
from repro.geometry import BoxCarve, SphereCarve

pytestmark = pytest.mark.amr


def lshape_domain():
    return Domain(BoxCarve([0.5, 0.5], [1.0, 1.0]), dim=2, scale=1.0)


def lshape_exact(pts):
    x = pts[:, 0] - 0.5
    y = pts[:, 1] - 0.5
    r = np.hypot(x, y)
    theta = np.mod(np.arctan2(y, x) - np.pi / 2, 2 * np.pi)
    return np.where(r > 0, r ** (2.0 / 3.0), 0.0) * np.sin(2.0 * theta / 3.0)


# -- estimators ---------------------------------------------------------


def test_estimator_zero_for_linear_field():
    # a globally linear FE function has no jumps and no residual: the
    # estimator must vanish identically (up to roundoff)
    dom = Domain(SphereCarve([0.5, 0.5], 0.27), dim=2, scale=1.0)
    mesh = mesh_from_leaves(dom, construct_adaptive(dom, 4, 6), p=1)
    pts = mesh.node_coords()
    u = 2.0 + 3.0 * pts[:, 0] - pts[:, 1]
    eta2 = poisson_estimator(mesh, u, f=0.0)
    assert eta2.shape == (mesh.n_elem,)
    assert np.abs(eta2).max() < 1e-18


def test_estimator_concentrates_at_singularity():
    dom = lshape_domain()
    mesh = mesh_from_leaves(dom, construct_adaptive(dom, 4, 4), p=1)
    u = PoissonProblem(mesh, f=0.0, dirichlet=lshape_exact).solve()
    eta2 = poisson_estimator(mesh, u, f=0.0)
    centers = mesh.element_centers()
    d = np.linalg.norm(centers - [0.5, 0.5], axis=1)
    # the largest indicator sits adjacent to the re-entrant corner
    assert d[np.argmax(eta2)] < 0.15
    # and indicators near the corner dominate the far field
    near = eta2[d < 0.2].max()
    far = eta2[d > 0.4].max()
    assert near > 10 * far


def test_estimator_sbm_mismatch_term():
    dom = Domain(SphereCarve([0.5, 0.5], 0.27), dim=2, scale=1.0)
    mesh = mesh_from_leaves(dom, construct_adaptive(dom, 4, 6), p=1)
    u = np.zeros(mesh.n_nodes)
    # u = 0 but g = 1: the mismatch term must charge exactly the
    # surrogate-boundary elements
    eta2 = poisson_estimator(mesh, u, f=0.0, method="sbm", dirichlet=1.0)
    boundary = np.zeros(mesh.n_elem, bool)
    boundary[mesh.boundary_elements] = True
    assert (eta2[boundary] > 0).any()
    assert np.abs(eta2[~boundary]).max() < 1e-18


# -- marking ------------------------------------------------------------


def test_dorfler_bulk_and_minimality():
    eta2 = np.array([8.0, 4.0, 2.0, 1.0, 1.0])
    marks = dorfler_mark(eta2, theta=0.5)
    assert marks.tolist() == [True, False, False, False, False]
    marks = dorfler_mark(eta2, theta=0.8)
    assert marks.tolist() == [True, True, True, False, False]
    assert eta2[marks].sum() >= 0.8 * eta2.sum()


def test_marking_scale_invariance():
    rng = np.random.default_rng(7)
    eta2 = rng.random(100)
    for fn in (dorfler_mark, maximum_mark):
        base = fn(eta2, 0.6)
        assert np.array_equal(base, fn(1e6 * eta2, 0.6))
        assert np.array_equal(base, fn(1e-6 * eta2, 0.6))


def test_maximum_mark():
    eta2 = np.array([1.0, 0.3, 0.26, 0.2])
    # threshold theta^2 * max = 0.25
    assert maximum_mark(eta2, 0.5).tolist() == [True, True, True, False]


def test_marking_degenerate_inputs():
    assert not dorfler_mark(np.zeros(4)).any()
    assert not maximum_mark(np.zeros(4)).any()
    assert dorfler_mark(np.array([], dtype=float)).shape == (0,)
    with pytest.raises(ValueError):
        dorfler_mark(np.ones(3), theta=0.0)


# -- the loop -----------------------------------------------------------


def test_amr_loop_reduces_error_and_eta():
    res = amr_solve(
        lshape_domain(), f=0.0, dirichlet=lshape_exact, base_level=3,
        max_cycles=5, theta=0.5, exact=lshape_exact,
    )
    errs = [r["error_l2"] for r in res.history]
    etas = [r["eta"] for r in res.history]
    assert len(res.history) == 6
    assert errs[-1] < 0.5 * errs[0]
    assert etas[-1] < etas[0]
    assert res.history[-1]["n_dofs"] > res.history[0]["n_dofs"]


def test_amr_loop_deterministic_digest():
    kw = dict(f=0.0, dirichlet=lshape_exact, base_level=3, max_cycles=3,
              theta=0.5)
    d1 = amr_solve(lshape_domain(), **kw).digest()
    d2 = amr_solve(lshape_domain(), **kw).digest()
    assert d1 == d2


def test_amr_loop_incremental_path_with_gate():
    # a sharp off-dyadic source keeps refinement SFC-local: the
    # incremental plan path engages and the equivalence gate (on by
    # default) asserts bit-identity on every such step
    def f(pts):
        d2 = ((pts - np.array([0.3, 0.7])) ** 2).sum(axis=1)
        return 100.0 * np.exp(-d2 / (2 * 0.02**2))

    dom = Domain(SphereCarve([0.62, 0.38], 0.2), dim=2, scale=1.0)
    res = amr_solve(dom, f, 0.0, base_level=4, boundary_level=5,
                    max_cycles=3, theta=0.4)
    inc = [r["incremental"] for r in res.history[:-1]]
    assert any(inc), f"incremental path never engaged: {res.history}"


def test_amr_loop_target_dofs_stop():
    res = amr_solve(
        lshape_domain(), f=0.0, dirichlet=lshape_exact, base_level=3,
        max_cycles=20, theta=0.5, target_dofs=150,
    )
    assert res.n_dofs >= 150
    assert len(res.history) < 21


def test_amr_loop_rejects_unknown_marking():
    with pytest.raises(ValueError, match="unknown marking"):
        amr_solve(lshape_domain(), marking="random")


# -- serving ------------------------------------------------------------


@pytest.mark.serve
def test_serve_amr_batch_scaling():
    from repro.serve.api import SolveRequest
    from repro.serve.batcher import build_entry, ensure_factor, solve_batch

    geo = {"shape": "sphere", "center": (0.62, 0.38), "radius": 0.2}
    reqs = [
        SolveRequest(geometry=geo, pde="amr", base_level=3, boundary_level=4,
                     amr_cycles=2, amr_theta=0.4, f=amp)
        for amp in (1.0, -2.0, 0.5)
    ]
    for r in reqs:
        r.validate()
    assert len({r.batch_key for r in reqs}) == 1
    entry = build_entry(reqs[0])
    factor, built = ensure_factor(entry, reqs[0])
    assert built and factor.kind == "amr"
    out = solve_batch(factor, reqs)
    assert out.solutions.shape == (factor.n_nodes, 3)
    assert np.allclose(out.solutions[:, 1], -2.0 * out.solutions[:, 0])
    assert np.allclose(out.solutions[:, 2], 0.5 * out.solutions[:, 0])
    # cached on second request
    f2, built2 = ensure_factor(entry, reqs[1])
    assert f2 is factor and not built2


@pytest.mark.serve
def test_serve_amr_request_validation():
    from repro.serve.api import SolveRequest

    geo = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.3}
    with pytest.raises(ValueError, match="g == 0"):
        SolveRequest(geometry=geo, pde="amr", g=1.0).validate()
    with pytest.raises(ValueError, match="amr_theta"):
        SolveRequest(geometry=geo, pde="amr", amr_theta=0.0).validate()
    # amr params are in the batch key: different trajectories never batch
    a = SolveRequest(geometry=geo, pde="amr", amr_cycles=2)
    b = SolveRequest(geometry=geo, pde="amr", amr_cycles=3)
    assert a.batch_key != b.batch_key
    # round trip through the canonical document keeps the digest
    assert SolveRequest.from_doc(a.to_doc()).digest == a.digest


@pytest.mark.serve
def test_serve_amr_end_to_end():
    from repro.serve import SolverService
    from repro.serve.api import SolveRequest

    geo = {"shape": "sphere", "center": (0.62, 0.38), "radius": 0.2}
    svc = SolverService()
    for amp in (1.0, 3.0):
        svc.submit(SolveRequest(geometry=geo, pde="amr", base_level=3,
                                boundary_level=4, amr_cycles=2,
                                amr_theta=0.4, f=amp))
    svc.drain()
    assert len(svc.responses) == 2
    assert all(r.ok for r in svc.responses)
    assert {r.pde for r in svc.responses} == {"amr"}
