"""Tier-1 smoke test: one real bench end-to-end, sidecar validated.

Runs ``bench_fig5_signed_distance`` (at reduced refinement so the suite
stays fast) through its actual test function with a stub ``benchmark``
fixture, then validates the JSON sidecar every bench now emits against
the ``repro.obs/bench.v1`` schema — both with the in-repo structural
validator and, when available, the real ``jsonschema`` package.
"""

import functools
import json
import sys
from pathlib import Path

import pytest

from repro.obs.report import BENCH_SCHEMA, BENCH_SCHEMA_ID, validate_artifact

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture()
def bench_modules(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCH_DIR))
    import _util
    import bench_fig5_signed_distance as bench

    return _util, bench


class _StubBenchmark:
    """Minimal stand-in for the pytest-benchmark fixture."""

    def pedantic(self, fn, rounds=1, iterations=1, **kw):
        result = None
        for _ in range(rounds * iterations):
            result = fn()
        return result

    def __call__(self, fn, *args, **kw):
        return fn(*args, **kw)


def test_fig5_bench_end_to_end_with_valid_sidecar(tmp_path, monkeypatch,
                                                  bench_modules):
    _util, bench = bench_modules
    monkeypatch.setattr(_util, "RESULTS_DIR", tmp_path)
    # reduced levels: same pipeline, tier-1-friendly runtime; the
    # bench's own convergence assertions still hold at (4, 5)
    monkeypatch.setattr(
        bench, "run_signed_distance",
        functools.partial(bench.run_signed_distance, levels=(4, 5)),
    )

    bench.test_fig5_signed_distance(_StubBenchmark())

    txt = tmp_path / "fig5_signed_distance.txt"
    sidecar = tmp_path / "fig5_signed_distance.json"
    assert txt.exists(), "bench did not write its text table"
    assert sidecar.exists(), "bench did not write its JSON sidecar"

    doc = json.loads(sidecar.read_text())
    assert doc["schema"] == BENCH_SCHEMA_ID
    assert validate_artifact(doc, BENCH_SCHEMA) == []
    assert doc["name"] == "fig5_signed_distance"
    assert doc["lines"][0] == doc["title"]
    assert "spans" in doc["trace"] and "metrics" in doc["trace"]

    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(doc, BENCH_SCHEMA)
