"""Tests for Poisson problems, SBM and boundary faces."""

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh
from repro.core.faces import extract_boundary_faces
from repro.fem import PoissonProblem, l2_error, linf_error, load_vector
from repro.fem.sbm import face_quadrature, sbm_terms
from repro.geometry import BoxRetain, SphereCarve, SphereRetain


@pytest.fixture(scope="module")
def disk_mesh():
    return build_uniform_mesh(Domain(SphereRetain([0.5, 0.5], 0.5)), 5, p=1)


def test_load_vector_constant_integrates_area(disk_mesh):
    b = load_vector(disk_mesh, 1.0)
    # sum of the load vector = integral of 1 over the voxel domain
    area_cells = float(np.sum(disk_mesh.element_sizes() ** 2))
    assert b.sum() == pytest.approx(area_cells, rel=1e-12)


def test_poisson_square_manufactured():
    """Complete square, u = sin(pi x) sin(pi y): optimal L2 rates."""
    def exact(pts):
        return np.sin(np.pi * pts[:, 0]) * np.sin(np.pi * pts[:, 1])

    def f(pts):
        return 2 * np.pi**2 * exact(pts)

    errs = []
    for lv in (3, 4, 5):
        mesh = build_uniform_mesh(Domain(dim=2), lv, p=1)
        u = PoissonProblem(mesh, f=f, dirichlet=0.0).solve(rtol=1e-12)
        errs.append(l2_error(mesh, u, exact))
    r = np.log2(errs[0] / errs[1]), np.log2(errs[1] / errs[2])
    assert r[0] > 1.8 and r[1] > 1.8


def test_poisson_p2_superior_accuracy():
    def exact(pts):
        return np.sin(np.pi * pts[:, 0]) * np.sin(np.pi * pts[:, 1])

    def f(pts):
        return 2 * np.pi**2 * exact(pts)

    mesh1 = build_uniform_mesh(Domain(dim=2), 4, p=1)
    mesh2 = build_uniform_mesh(Domain(dim=2), 4, p=2)
    e1 = l2_error(mesh1, PoissonProblem(mesh1, f=f).solve(rtol=1e-12), exact)
    e2 = l2_error(mesh2, PoissonProblem(mesh2, f=f).solve(rtol=1e-12), exact)
    assert e2 < e1 / 5


def test_poisson_on_adaptive_carved_mesh():
    """The full carved pipeline runs and satisfies the max principle."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    mesh = build_mesh(dom, 3, 5, p=1)
    u = PoissonProblem(mesh, f=1.0, dirichlet=0.0).solve()
    assert u.max() > 0
    assert u.min() >= -1e-10  # no undershoot below the boundary data


def test_poisson_unknown_method():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    with pytest.raises(ValueError):
        PoissonProblem(mesh, method="magic").solve()


def test_nodal_dirichlet_values_applied():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    g = lambda pts: pts[:, 0]
    u = PoissonProblem(mesh, f=0.0, dirichlet=g).solve(rtol=1e-12)
    # harmonic extension of x is x itself
    assert np.abs(u - mesh.node_coords()[:, 0]).max() < 1e-8


# -- boundary faces -------------------------------------------------------


def test_boundary_faces_counts_uniform_square():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    sub, dom = extract_boundary_faces(mesh)
    assert len(sub) == 0          # nothing carved
    assert len(dom) == 4 * 8      # 8 cells per side


def test_boundary_faces_carved_box():
    pred = SphereCarve([0.5, 0.5], 0.2)
    mesh = build_mesh(Domain(pred), 4, 4, p=1)
    sub, _ = extract_boundary_faces(mesh)
    assert len(sub) > 0
    # each face's outward neighbour cell centre must be carved
    lo, hi = mesh.leaves.physical_bounds(1.0)
    h = mesh.element_sizes()
    ctr = 0.5 * (lo + hi)
    n = sub.outward_normals(2)
    probe = ctr[sub.elem] + n * h[sub.elem][:, None]
    assert pred.carved_points(probe).all()


def test_face_quadrature_weights_sum_to_one():
    for axis in (0, 1, 2):
        for side in (0, 1):
            pts, wts = face_quadrature(1, 3, axis, side, 2)
            assert wts.sum() == pytest.approx(1.0)
            assert np.allclose(pts[:, axis], side)


def test_sbm_terms_empty_when_no_boundary():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    A, b = sbm_terms(mesh, lambda p: np.zeros(len(p)),
                     include_domain_faces=False)
    assert A.nnz == 0 and np.all(b == 0)


def test_sbm_linear_exactness():
    """SBM reproduces any linear solution exactly (patch test)."""
    dom = Domain(SphereRetain([0.5, 0.5], 0.5))
    mesh = build_uniform_mesh(dom, 4, p=1)
    g = lambda pts: 3.0 * pts[:, 0] - pts[:, 1] + 0.5
    u = PoissonProblem(mesh, f=0.0, dirichlet=g, method="sbm").solve()
    assert linf_error(mesh, u, g) < 1e-9


def test_sbm_second_order_beats_nodal():
    R, c = 0.5, np.array([0.5, 0.5])

    def exact(pts):
        return 0.25 * (R * R - ((pts - c) ** 2).sum(axis=1))

    dom = Domain(SphereRetain(c, R))
    mesh = build_uniform_mesh(dom, 6, p=1)
    e_nodal = l2_error(
        mesh, PoissonProblem(mesh, f=1.0, method="nodal").solve(), exact
    )
    e_sbm = l2_error(
        mesh, PoissonProblem(mesh, f=1.0, method="sbm").solve(), exact
    )
    assert e_sbm < e_nodal / 5


def test_matrix_free_solve_matches_assembled():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    mesh = build_mesh(dom, 3, 5, p=1)
    prob = PoissonProblem(mesh, f=1.0, dirichlet=0.0)
    u_mf = prob.solve(solver="matrix-free")
    u_cg = prob.solve(solver="cg")
    assert np.abs(u_mf - u_cg).max() < 1e-10


def test_matrix_free_rejects_sbm():
    dom = Domain(SphereRetain([0.5, 0.5], 0.5))
    mesh = build_uniform_mesh(dom, 4, p=1)
    with pytest.raises(ValueError):
        PoissonProblem(mesh, f=1.0, method="sbm").solve(solver="matrix-free")
