"""Tests for the artifact-style CLI (python -m repro ...)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    p = build_parser()
    args = p.parse_args(["mvc-channel", "5", "6", "1", "--ranks", "4"])
    assert args.base_level == 5 and args.boundary_level == 6
    assert args.order == 1 and args.ranks == 4
    args = p.parse_args(["signed-distance", "3", "4", "--shape", "sphere"])
    assert args.min_level == 3 and args.shape == "sphere"


def test_parser_rejects_bad_order():
    p = build_parser()
    with pytest.raises(SystemExit):
        p.parse_args(["mvc-channel", "5", "6", "3"])


def test_mvc_channel_runs(capsys, tmp_path):
    out = tmp_path / "log.txt"
    rc = main(["mvc-channel", "4", "5", "1", "--ranks", "4",
               "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "distributed MATVEC == serial: True" in text
    assert "modelled MATVEC time" in text
    assert "mesh:" in text


def test_mvc_sphere_runs(capsys):
    rc = main(["mvc-sphere", "3", "4", "2", "--ranks", "2"])
    assert rc == 0
    cap = capsys.readouterr().out
    assert "MVCSphere" in cap
    assert "eta" in cap


def test_signed_distance_runs(capsys, tmp_path):
    out = tmp_path / "sd.txt"
    rc = main(["signed-distance", "3", "4", "--shape", "sphere",
               "--out", str(out)])
    assert rc == 0
    lines = out.read_text().strip().splitlines()
    # error decreases over the two levels
    e3 = float(lines[-2].split()[-1])
    e4 = float(lines[-1].split()[-1])
    assert e4 < e3


# -- trace-diff ---------------------------------------------------------


def _span(name, duration, count=1, counters=None, children=None):
    return {"name": name, "duration": duration, "count": count,
            "counters": counters or {}, "children": children or []}


def _artifact(tmp_path, name, spans):
    import json

    doc = {"schema": "repro.obs/run.v1", "name": name, "spans": spans,
           "metrics": {"counters": {}, "gauges": {}}}
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(doc))
    return path


def test_trace_diff_json_doc_clean(capsys, tmp_path):
    import json

    spans = [_span("solve", 0.5, counters={"matvecs": 12})]
    base = _artifact(tmp_path, "base", spans)
    new = _artifact(tmp_path, "new", spans)
    out = tmp_path / "diff.json"
    rc = main(["trace-diff", str(base), str(new), "--json", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.obs/trace_diff.v1"
    assert doc["flagged"] is False
    assert [d["status"] for d in doc["deltas"]] == ["ok"]
    assert "no regressions within tolerance" in capsys.readouterr().out


def test_trace_diff_added_removed_span_exits_nonzero(capsys, tmp_path):
    import json

    base = _artifact(tmp_path, "base",
                     [_span("assemble", 0.2), _span("solve", 0.5)])
    new = _artifact(tmp_path, "new",
                    [_span("solve", 0.5), _span("precondition", 0.1)])
    out = tmp_path / "diff.json"
    with pytest.raises(SystemExit) as exc:
        main(["trace-diff", str(base), str(new), "--json", str(out)])
    assert exc.value.code == 1
    cap = capsys.readouterr().out
    assert "assemble: removed" in cap
    assert "precondition: added" in cap
    doc = json.loads(out.read_text())
    assert doc["flagged"] is True
    status = {d["path"]: d["status"] for d in doc["deltas"]}
    assert status == {"assemble": "removed", "precondition": "added",
                      "solve": "ok"}


def test_trace_diff_counter_drift_exits_nonzero(capsys, tmp_path):
    base = _artifact(tmp_path, "base",
                     [_span("solve", 0.5, counters={"matvecs": 12})])
    new = _artifact(tmp_path, "new",
                    [_span("solve", 0.5, counters={"matvecs": 13})])
    with pytest.raises(SystemExit) as exc:
        main(["trace-diff", str(base), str(new)])
    assert exc.value.code == 1
    assert "counter matvecs drifted 12 -> 13" in capsys.readouterr().out


# -- flight recorder CLI ------------------------------------------------


def _serve_events(tmp_path, capsys):
    """serve-demo --events fixture: returns (events path, stdout)."""
    ev = tmp_path / "ev.json"
    rc = main(["serve-demo", "--requests", "8", "--events", str(ev)])
    assert rc == 0
    return ev, capsys.readouterr().out


def test_serve_demo_events_digest_line(capsys, tmp_path):
    from repro.obs import load_events

    ev, cap = _serve_events(tmp_path, capsys)
    log = load_events(ev)  # digest re-verified on load
    digest_line = [ln for ln in cap.splitlines()
                   if ln.startswith("event digest:")]
    assert digest_line == [f"event digest: {log.digest}"]
    assert f"events: {len(log)} written to {ev}" in cap


def test_request_trace_list_and_timeline(capsys, tmp_path):
    ev, _ = _serve_events(tmp_path, capsys)
    listing = tmp_path / "list.txt"
    rc = main(["request-trace", str(ev), "--list", "--out", str(listing)])
    assert rc == 0
    capsys.readouterr()
    rows = listing.read_text().strip().splitlines()
    assert len(rows) == 8
    rid = rows[0].split()[0]

    out = tmp_path / "tl.txt"
    rc = main(["request-trace", str(ev), rid[:12], "--out", str(out)])
    assert rc == 0
    capsys.readouterr()
    text = out.read_text()
    assert f"request {rid}" in text
    assert "stages: " in text and "(sum=" in text

    with pytest.raises(SystemExit, match="no request matching"):
        main(["request-trace", str(ev), "zzzz"])


def test_fleet_health_cli_outputs_and_strict(capsys, tmp_path):
    import json

    ev = tmp_path / "fleet_ev.json"
    rc = main(["fleet-demo", "--shards", "2", "--requests", "12",
               "--mean-gap", "40", "--burst-gap", "5",
               "--events", str(ev)])
    assert rc == 0
    capsys.readouterr()

    hjson = tmp_path / "health.json"
    chrome = tmp_path / "chrome.json"
    report = tmp_path / "health.txt"
    rc = main(["fleet-health", str(ev), "--json", str(hjson),
               "--chrome", str(chrome), "--out", str(report)])
    assert rc == 0
    capsys.readouterr()
    assert report.read_text().startswith("fleet health:")
    doc = json.loads(hjson.read_text())
    assert doc["schema"] == "repro.obs/health.v1"
    assert doc["requests"] == 12
    trace = json.loads(chrome.read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])

    # an unmeetable stage ceiling turns --strict into a gate
    with pytest.raises(SystemExit) as exc:
        main(["fleet-health", str(ev), "--stage-p95", "solve=1", "--strict"])
    assert exc.value.code == 1
    assert "VIOLATION stage_p95:solve" in capsys.readouterr().out

    with pytest.raises(SystemExit, match="STAGE=TICKS"):
        main(["fleet-health", str(ev), "--stage-p95", "solve"])
