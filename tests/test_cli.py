"""Tests for the artifact-style CLI (python -m repro ...)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    p = build_parser()
    args = p.parse_args(["mvc-channel", "5", "6", "1", "--ranks", "4"])
    assert args.base_level == 5 and args.boundary_level == 6
    assert args.order == 1 and args.ranks == 4
    args = p.parse_args(["signed-distance", "3", "4", "--shape", "sphere"])
    assert args.min_level == 3 and args.shape == "sphere"


def test_parser_rejects_bad_order():
    p = build_parser()
    with pytest.raises(SystemExit):
        p.parse_args(["mvc-channel", "5", "6", "3"])


def test_mvc_channel_runs(capsys, tmp_path):
    out = tmp_path / "log.txt"
    rc = main(["mvc-channel", "4", "5", "1", "--ranks", "4",
               "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "distributed MATVEC == serial: True" in text
    assert "modelled MATVEC time" in text
    assert "mesh:" in text


def test_mvc_sphere_runs(capsys):
    rc = main(["mvc-sphere", "3", "4", "2", "--ranks", "2"])
    assert rc == 0
    cap = capsys.readouterr().out
    assert "MVCSphere" in cap
    assert "eta" in cap


def test_signed_distance_runs(capsys, tmp_path):
    out = tmp_path / "sd.txt"
    rc = main(["signed-distance", "3", "4", "--shape", "sphere",
               "--out", str(out)])
    assert rc == 0
    lines = out.read_text().strip().splitlines()
    # error decreases over the two levels
    e3 = float(lines[-2].split()[-1])
    e4 = float(lines[-1].split()[-1])
    assert e4 < e3
