"""Tests for the simulated-MPI substrate: SimComm, partitioning, ghost
analysis, distributed MATVEC and the performance model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Domain, build_mesh
from repro.core.matvec import MapBasedMatVec
from repro.geometry import BoxRetain, SphereCarve
from repro.parallel import (
    FRONTERA,
    SimComm,
    analyze_partition,
    distributed_matvec,
    model_matvec,
    partition_mesh,
    partition_weights,
    rank_statistics,
)


@pytest.fixture(scope="module")
def mesh():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    return build_mesh(dom, 2, 5, p=1)


# -- SimComm -----------------------------------------------------------


def test_simcomm_size_validation():
    with pytest.raises(ValueError):
        SimComm(0)


def test_alltoallv_routing_and_counters():
    comm = SimComm(3)
    send = [[None] * 3 for _ in range(3)]
    send[0][1] = np.arange(10, dtype=np.float64)
    send[2][0] = np.arange(5, dtype=np.int32)
    send[1][1] = np.ones(7)  # self-message: free
    recv = comm.alltoallv(send)
    assert np.array_equal(recv[1][0], np.arange(10.0))
    assert np.array_equal(recv[0][2], np.arange(5, dtype=np.int32))
    assert comm.counters.bytes_sent[0] == 80
    assert comm.counters.bytes_sent[2] == 20
    assert comm.counters.bytes_sent[1] == 0  # self traffic not counted
    assert comm.counters.messages_sent.sum() == 2


def test_allgather_traffic():
    comm = SimComm(4)
    out = comm.allgather([np.zeros(2) for _ in range(4)])
    assert len(out) == 4 and all(len(o) == 4 for o in out)
    assert np.all(comm.counters.bytes_sent == 16 * 3)


def test_allreduce():
    comm = SimComm(3)
    out = comm.allreduce([np.array([1.0, 2.0])] * 3)
    assert np.allclose(out[0], [3.0, 6.0])


def test_exchange_counts_only_cross_rank():
    comm = SimComm(2)
    comm.exchange({(0, 1): np.zeros(4), (1, 1): np.zeros(100)})
    assert comm.counters.bytes_sent[0] == 32
    assert comm.counters.bytes_sent[1] == 0


# -- partitioning -------------------------------------------------------


def test_partition_weights_balanced():
    splits = partition_weights(np.ones(100), 4)
    assert list(splits) == [0, 25, 50, 75, 100]


def test_partition_weights_nonuniform():
    w = np.concatenate([np.full(10, 10.0), np.full(90, 1.0)])
    splits = partition_weights(w, 2)
    # heavy head: first rank gets far fewer than half the items
    assert splits[1] < 30


def test_partition_weights_validation():
    with pytest.raises(ValueError):
        partition_weights(np.ones(5), 0)


def test_partition_mesh_covers_all(mesh):
    splits = partition_mesh(mesh, 8)
    assert splits[0] == 0 and splits[-1] == mesh.n_elem
    assert np.all(np.diff(splits) >= 0)


def test_partition_load_tolerance_snaps_to_blocks(mesh):
    from repro.parallel.partition import splitter_block_levels

    tight = partition_mesh(mesh, 8, load_tol=0.0)
    loose = partition_mesh(mesh, 8, load_tol=0.5)
    assert splitter_block_levels(mesh, loose).mean() >= splitter_block_levels(
        mesh, tight
    ).mean()


# -- ghost analysis -----------------------------------------------------


def test_ghost_layout_consistency(mesh):
    splits = partition_mesh(mesh, 6)
    layout = analyze_partition(mesh, splits)
    assert layout.owned_counts.sum() == mesh.n_nodes
    # ghosts of rank r are owned by other ranks
    for r in range(6):
        assert np.all(layout.node_owner[layout.ghost_nodes[r]] != r)
        assert len(layout.ghost_nodes[r]) == layout.ghost_counts[r]
    assert np.all(layout.local_counts >= layout.ghost_counts)


def test_single_rank_has_no_ghosts(mesh):
    layout = analyze_partition(mesh, partition_mesh(mesh, 1))
    assert layout.ghost_counts[0] == 0
    assert layout.eta()[0] == 0.0


def test_eta_increases_with_ranks(mesh):
    etas = []
    for nranks in (2, 8, 32):
        layout = analyze_partition(mesh, partition_mesh(mesh, nranks))
        etas.append(layout.eta().mean())
    assert etas[0] < etas[-1]


# -- distributed matvec --------------------------------------------------


@pytest.mark.parametrize("nranks", [2, 5, 16])
def test_distributed_matvec_matches_serial(mesh, nranks):
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    serial = MapBasedMatVec(mesh)(u)
    comm = SimComm(nranks)
    layout = analyze_partition(mesh, partition_mesh(mesh, nranks))
    dist = distributed_matvec(mesh, layout, u, comm)
    assert np.allclose(dist, serial, atol=1e-10)
    if nranks > 1:
        assert comm.counters.total_bytes() > 0


def test_distributed_matvec_rank_mismatch(mesh):
    layout = analyze_partition(mesh, partition_mesh(mesh, 4))
    with pytest.raises(ValueError):
        distributed_matvec(mesh, layout, np.zeros(mesh.n_nodes), SimComm(3))


# -- performance model ----------------------------------------------------


def test_model_matvec_phases_positive(mesh):
    layout = analyze_partition(mesh, partition_mesh(mesh, 4))
    stats = rank_statistics(mesh, layout)
    ph = model_matvec(stats, p=1, dim=3, machine=FRONTERA)
    assert ph.time > 0
    br = ph.breakdown()
    assert set(br) == {"top_down", "leaf", "bottom_up", "comm", "malloc"}
    assert all(v >= 0 for v in br.values())
    assert ph.parallel_cost() == pytest.approx(ph.time * 4)


def test_model_quadratic_slower_within_bounds(mesh):
    layout = analyze_partition(mesh, partition_mesh(mesh, 2))
    stats = rank_statistics(mesh, layout)
    t1 = model_matvec(stats, p=1, dim=3).time
    t2 = model_matvec(stats, p=2, dim=3).time
    # the paper observes ~4.2x; the model is calibrated to that regime
    assert 2.0 < t2 / t1 < 8.0


def test_model_active_elem_override(mesh):
    layout = analyze_partition(mesh, partition_mesh(mesh, 4))
    stats = rank_statistics(mesh, layout)
    base = model_matvec(stats, p=1, dim=3)
    unbal = model_matvec(
        stats, p=1, dim=3, active_elem=np.array([stats.n_elem.sum(), 0, 0, 0])
    )
    assert unbal.time > base.time


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), nparts=st.integers(1, 16))
def test_partition_property(seed, nparts):
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.1, 10.0, rng.integers(nparts, 300))
    splits = partition_weights(w, nparts)
    assert len(splits) == nparts + 1
    assert splits[0] == 0 and splits[-1] == len(w)
    assert np.all(np.diff(splits) >= 0)
    # every part within 2x ideal + heaviest item slack
    ideal = w.sum() / nparts
    for i in range(nparts):
        part = w[splits[i]:splits[i + 1]].sum()
        assert part <= ideal + w.max() + 1e-9
