"""Unit tests for octant algebra (repro.core.octant)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.octant import (
    OctantSet,
    ancestor_at_level,
    child_number,
    children,
    contains,
    is_ancestor,
    max_level,
    neighbors,
    octant_size,
    parent,
)


def test_max_level_by_dim():
    assert max_level(2) == 30
    assert max_level(3) == 21
    assert max_level(4) == 15


def test_max_level_invalid_dim():
    with pytest.raises(ValueError):
        max_level(0)


def test_octant_size_scalar_and_array():
    assert octant_size(0, 3) == 1 << 21
    assert octant_size(21, 3) == 1
    sizes = octant_size(np.array([0, 1, 2]), 2)
    assert list(sizes) == [1 << 30, 1 << 29, 1 << 28]


def test_octant_size_rejects_bad_levels():
    with pytest.raises(ValueError):
        octant_size(31, 2)
    with pytest.raises(ValueError):
        octant_size(-1, 2)


def test_root_and_empty():
    r = OctantSet.root(3)
    assert len(r) == 1
    assert r.levels[0] == 0
    assert np.all(r.anchors == 0)
    e = OctantSet.empty(3)
    assert len(e) == 0


def test_shape_validation():
    with pytest.raises(ValueError):
        OctantSet(np.zeros((3, 2), np.uint32), np.zeros(2, np.uint8))


def test_children_count_and_levels():
    r = OctantSet.root(2)
    ch = children(r)
    assert len(ch) == 4
    assert np.all(ch.levels == 1)
    # anchors are the 4 quadrant corners
    half = np.uint32(1 << 29)
    expect = {(0, 0), (int(half), 0), (0, int(half)), (int(half), int(half))}
    got = {tuple(map(int, a)) for a in ch.anchors}
    assert got == expect


def test_children_3d_count():
    ch = children(OctantSet.root(3))
    assert len(ch) == 8
    assert len({tuple(map(int, a)) for a in ch.anchors}) == 8


def test_children_at_max_level_raises():
    m = max_level(2)
    o = OctantSet(np.zeros((1, 2), np.uint32), np.array([m], np.uint8))
    with pytest.raises(ValueError):
        children(o)


def test_parent_of_children_is_self():
    r = OctantSet.root(3)
    ch = children(r)
    gch = children(ch)
    back = parent(gch)
    # grandchildren's parents are the children, repeated 8x
    expect_anchors = np.repeat(ch.anchors, 8, axis=0)
    assert np.array_equal(back.anchors, expect_anchors)
    assert np.all(back.levels == 1)


def test_parent_of_root_is_root():
    pr = parent(OctantSet.root(2))
    assert pr.levels[0] == 0
    assert np.all(pr.anchors == 0)


def test_child_number_roundtrip():
    ch = children(children(OctantSet.root(3)))
    nums = child_number(ch)
    # children are generated in Morton child order within each parent
    assert np.array_equal(nums.reshape(-1, 8), np.tile(np.arange(8), (8, 1)))


def test_neighbors_of_corner_octant():
    ch = children(OctantSet.root(2))
    corner = ch[0]  # anchor (0,0): only 3 of 8 neighbours are in-domain
    nb = neighbors(corner)
    assert len(nb) == 3


def test_neighbors_interior_full_count():
    # an interior level-2 octant has all 3^d-1 neighbours
    m = max_level(2)
    s = 1 << (m - 2)
    o = OctantSet(np.array([[s, s]], np.uint32), np.array([2], np.uint8))
    assert len(neighbors(o)) == 8
    assert len(neighbors(o, include_self=True)) == 9


def test_ancestor_at_level():
    ch = children(children(OctantSet.root(2)))
    anc = ancestor_at_level(ch, 1)
    assert np.all(anc.levels == 1)
    assert np.all(is_ancestor(anc, ch) | (anc.levels == ch.levels))


def test_ancestor_level_too_fine_raises():
    r = OctantSet.root(2)
    with pytest.raises(ValueError):
        ancestor_at_level(r, 1)


def test_is_ancestor_basic():
    r = OctantSet.root(2)
    ch = children(r)
    roots = OctantSet.concatenate([r, r, r, r])
    assert np.all(is_ancestor(roots, ch))
    assert not np.any(is_ancestor(ch, OctantSet.concatenate([r] * 4)))


def test_contains_closed():
    r = OctantSet.root(2)
    m = max_level(2)
    pts = np.array([[0, 0], [1 << m, 1 << m], [1 << (m - 1), 5]])
    c = contains(r, pts)
    assert c.shape == (1, 3)
    assert c.all()  # closed containment includes the upper corner


def test_physical_bounds_isotropic():
    ch = children(OctantSet.root(3))
    lo, hi = ch.physical_bounds(2.0)
    assert np.allclose(hi - lo, 1.0)  # half of scale=2
    assert lo.min() == 0.0 and hi.max() == 2.0


@settings(max_examples=50)
@given(
    dim=st.integers(2, 3),
    level=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
def test_parent_child_roundtrip_property(dim, level, seed):
    """children(parent) always covers the original octant."""
    rng = np.random.default_rng(seed)
    m = max_level(dim)
    size = 1 << (m - level)
    anchors = (rng.integers(0, 1 << level, (5, dim)) * size).astype(np.uint32)
    o = OctantSet(anchors, np.full(5, level, np.uint8))
    p = parent(o)
    ch = children(p)
    # each original octant equals one of its parent's children
    for i in range(5):
        kid_anchors = ch.anchors[i * (1 << dim) : (i + 1) * (1 << dim)]
        assert any(np.array_equal(o.anchors[i], k) for k in kid_anchors)
