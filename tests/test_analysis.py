"""Tests for analysis utilities: convergence rates, drag, roofline."""

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh
from repro.analysis import (
    ACHENBACH_ANCHORS,
    CYLINDER_CD_REFERENCE,
    analyze_kernel,
    drag_from_faces,
    fit_rate,
    morrison_cd,
    observed_rates,
    roofline_ceilings,
    schiller_naumann_cd,
)
from repro.core.faces import extract_boundary_faces
from repro.geometry import SphereCarve


def test_observed_rates_exact_power():
    h = np.array([0.1, 0.05, 0.025])
    err = 3.0 * h**2
    assert np.allclose(observed_rates(h, err), 2.0)
    assert fit_rate(h, err) == pytest.approx(2.0)


def test_observed_rates_validation():
    with pytest.raises(ValueError):
        observed_rates(np.array([0.1]), np.array([1.0]))


def test_morrison_stokes_limit():
    # Stokes drag dominates at small Re
    assert morrison_cd(0.1) == pytest.approx(240.0, rel=0.1)


def test_morrison_newton_plateau():
    cd = morrison_cd(np.array([1e4, 5e4, 1e5]))
    assert np.all((cd > 0.35) & (cd < 0.55))


def test_morrison_drag_crisis_collapse():
    pre = float(morrison_cd(2e5))
    post = float(morrison_cd(4.5e5))
    assert pre > 0.4 and post < 0.15
    # partial recovery
    assert float(morrison_cd(2e6)) > post


def test_schiller_naumann_matches_low_re_table():
    for Re, cd in [(50, 1.54), (100, 1.09)]:
        assert schiller_naumann_cd(Re) == pytest.approx(cd, rel=0.02)


def test_anchor_table_monotone_re():
    assert np.all(np.diff(ACHENBACH_ANCHORS[:, 0]) > 0)
    assert set(CYLINDER_CD_REFERENCE) == {20, 40, 100}


def test_drag_pressure_only_closed_surface():
    """Uniform pressure on a closed voxel surface gives zero net force."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.2))
    mesh = build_mesh(dom, 4, 5, p=1)
    faces, _ = extract_boundary_faces(mesh)
    p = np.ones(mesh.n_nodes)
    vel = np.zeros((mesh.n_nodes, 2))
    F = drag_from_faces(mesh, faces, vel, p, nu=0.1)
    assert abs(F) < 1e-10


def test_drag_linear_pressure_gives_buoyancy():
    """p = x over a closed surface integrates to the carved volume
    (the discrete divergence theorem on the voxel surface)."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.2))
    mesh = build_mesh(dom, 5, 5, p=1)
    faces, _ = extract_boundary_faces(mesh)
    pts = mesh.node_coords()
    vel = np.zeros((mesh.n_nodes, 2))
    F = drag_from_faces(mesh, faces, vel, pts[:, 0].copy(), nu=0.0)
    # voxelated carved area: total - retained cell area; the force ON
    # THE BODY from p = x points in -x (higher pressure downstream)
    carved_area = 1.0 - float(np.sum(mesh.element_sizes() ** 2))
    assert F == pytest.approx(-carved_area, rel=1e-10)


def test_roofline_point_structure():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 4, p=1)
    pt = analyze_kernel(mesh, repeats=2)
    assert pt.arithmetic_intensity > 0
    assert pt.measured_gflops > 0
    assert pt.bandwidth_bound_gflops == pytest.approx(
        pt.arithmetic_intensity * 60e9
    )


def test_roofline_ai_grows_with_p():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    m1 = build_mesh(dom, 2, 4, p=1)
    m2 = build_mesh(dom, 2, 4, p=2)
    a1 = analyze_kernel(m1, repeats=1).arithmetic_intensity
    a2 = analyze_kernel(m2, repeats=1).arithmetic_intensity
    assert a2 > a1


def test_roofline_ceilings():
    c = roofline_ceilings()
    assert c["ridge_ai"] == pytest.approx(c["peak_flops"] / c["memory_bw"])
