"""Tests for the triangle-mesh substrate (repro.geometry.trimesh)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import TriMesh, TriMeshCarve, dragon_blob, icosphere
from repro.geometry.predicate import RegionLabel


@pytest.fixture(scope="module")
def sphere():
    return icosphere((0.5, 0.5, 0.5), 0.3, subdivisions=3)


def test_icosphere_counts():
    s0 = icosphere(subdivisions=0)
    assert len(s0.faces) == 20 and len(s0.vertices) == 12
    s2 = icosphere(subdivisions=2)
    assert len(s2.faces) == 20 * 16


def test_icosphere_area_volume(sphere):
    r = 0.3
    assert sphere.area() == pytest.approx(4 * np.pi * r * r, rel=0.01)
    assert sphere.volume() == pytest.approx(4 / 3 * np.pi * r**3, rel=0.01)


def test_bounds(sphere):
    lo, hi = sphere.bounds
    assert np.allclose(lo, 0.2, atol=1e-6)
    assert np.allclose(hi, 0.8, atol=1e-6)


def test_contains_radial(sphere):
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 1, (500, 3))
    inside = sphere.contains(pts)
    r = np.linalg.norm(pts - 0.5, axis=1)
    # faceted sphere lies between insphere and circumsphere
    assert not np.any(inside & (r > 0.3 + 1e-9))
    assert not np.any(~inside & (r < 0.29))


def test_contains_outside_grid_bbox(sphere):
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [-5.0, 0.5, 0.5]])
    assert not sphere.contains(pts).any()


def test_signed_distance_sign_and_magnitude(sphere):
    pts = np.array([[0.5, 0.5, 0.5], [0.95, 0.5, 0.5], [0.5, 0.79, 0.5]])
    sd = sphere.signed_distance(pts)
    assert sd[0] == pytest.approx(0.3, abs=0.01)  # deep inside, positive
    assert sd[1] == pytest.approx(-0.15, abs=0.01)  # outside, negative
    assert abs(sd[2]) < 0.02  # near the surface


def test_closest_points_on_surface(sphere):
    rng = np.random.default_rng(2)
    pts = rng.uniform(0.1, 0.9, (100, 3))
    cp, d = sphere.closest_points(pts)
    # closest points lie on the faceted surface: radius within facet sag
    r = np.linalg.norm(cp - 0.5, axis=1)
    assert np.all((r > 0.29) & (r <= 0.3 + 1e-9))
    # distances are consistent
    assert np.allclose(d, np.linalg.norm(pts - cp, axis=1))


def test_closest_points_widening_safety(sphere):
    """Tiny-k prefilter must still return the true closest point."""
    pts = np.array([[0.5, 0.5, 0.5], [0.0, 0.0, 0.0]])
    cp1, d1 = sphere.closest_points(pts, k=1)
    cp2, d2 = sphere.closest_points(pts, k=len(sphere.faces))
    assert np.allclose(d1, d2, atol=1e-12)


def test_dragon_blob_watertight_statistics():
    blob = dragon_blob(subdivisions=3, seed=7)
    assert blob.volume() > 0  # consistently oriented
    # surface-to-volume ratio well above the sphere's (the point of it)
    s = icosphere(subdivisions=3)
    assert blob.area() / blob.volume() > s.area() / s.volume()


def test_dragon_blob_deterministic():
    a = dragon_blob(subdivisions=2, seed=3)
    b = dragon_blob(subdivisions=2, seed=3)
    assert np.array_equal(a.vertices, b.vertices)
    c = dragon_blob(subdivisions=2, seed=4)
    assert not np.array_equal(a.vertices, c.vertices)


def test_trimesh_carve_classification(sphere):
    pred = TriMeshCarve(sphere)
    lo = np.array([[0.45, 0.45, 0.45], [0.0, 0.0, 0.0], [0.75, 0.45, 0.45]])
    hi = lo + 0.1
    lab = pred.classify_cells(lo, hi)
    assert lab[0] == RegionLabel.CARVED
    assert lab[1] == RegionLabel.RETAIN_INTERNAL
    assert lab[2] == RegionLabel.RETAIN_BOUNDARY


def test_trimesh_carve_conservative(sphere):
    """Cells marked CARVED/INTERNAL must truly be inside/outside."""
    pred = TriMeshCarve(sphere)
    rng = np.random.default_rng(3)
    lo = rng.uniform(0, 0.9, (50, 3))
    hi = lo + rng.uniform(0.02, 0.1, (50, 3))
    lab = pred.classify_cells(lo, hi)
    for i in range(50):
        samples = lo[i] + rng.uniform(0, 1, (10, 3)) * (hi[i] - lo[i])
        inside = sphere.contains(samples)
        if lab[i] == RegionLabel.CARVED:
            assert inside.all()
        elif lab[i] == RegionLabel.RETAIN_INTERNAL:
            assert not inside.any()


def test_validation_errors():
    with pytest.raises(ValueError):
        TriMesh(np.zeros((3, 2)), np.zeros((1, 3), int))
    with pytest.raises(ValueError):
        TriMesh(np.zeros((3, 3)), np.zeros((1, 4), int))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_signed_distance_matches_analytic_property(seed):
    """|signed distance| of the icosphere tracks the analytic sphere
    within the facet sag everywhere."""
    s = icosphere((0.5, 0.5, 0.5), 0.3, subdivisions=2)
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.05, 0.95, (50, 3))
    sd = s.signed_distance(pts)
    analytic = 0.3 - np.linalg.norm(pts - 0.5, axis=1)
    assert np.abs(sd - analytic).max() < 0.02
