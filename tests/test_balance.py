"""Tests for 2:1 balancing (Algorithms 4-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import (
    balance_2to1,
    bottom_up_constrain_neighbors,
    find_balance_violations,
    is_balanced,
)
from repro.core.construct import construct_adaptive, construct_uniform
from repro.core.domain import Domain
from repro.core.octant import OctantSet, max_level
from repro.core.treesort import is_sorted_linear
from repro.geometry.primitives import SphereCarve, SphereRetain


def _point_seed(dim, level, cell_index):
    m = max_level(dim)
    size = 1 << (m - level)
    anchor = (np.asarray(cell_index, np.uint32) * size).astype(np.uint32)
    return OctantSet(anchor[None, :], np.array([level], np.uint8), dim)


def test_unbalanced_seed_creates_violation_free_tree():
    """A single deep seed in a coarse tree forces a graded cascade."""
    dom = Domain(dim=2)
    seed = _point_seed(2, 6, [0, 0])
    t = balance_2to1(dom, seed)
    assert is_sorted_linear(t)
    assert is_balanced(t)
    assert t.levels.max() == 6
    # grading forces strictly more leaves than the 4 of a level-1 cover
    assert len(t) > 4


def test_uniform_tree_already_balanced():
    dom = Domain(dim=2)
    t = construct_uniform(dom, 4)
    assert is_balanced(t)
    t2 = balance_2to1(dom, t)
    assert len(t2) == len(t)


def test_violation_detector_catches_imbalance():
    """A 4:1 interface across the x-midline is flagged."""
    dom = Domain(dim=2)
    # a level-4 cell hugging the x-midline from the left; the right half
    # stays a level-1 quadrant -> 3-level jump across the shared edge
    fine = _point_seed(2, 4, [7, 0])
    from repro.core.construct import construct_constrained

    t = construct_constrained(dom, fine)
    assert t.levels.max() - t.levels.min() >= 2
    assert len(find_balance_violations(t)) > 0
    # and balancing repairs it
    bal = balance_2to1(dom, fine)
    assert is_balanced(bal)


def test_balance_adaptive_carved_mesh():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    raw = construct_adaptive(dom, 2, 6)
    bal = balance_2to1(dom, raw)
    assert is_balanced(bal)
    # balancing only refines: balanced count >= raw count
    assert len(bal) >= len(raw)


def test_balance_across_carved_region_3d():
    """Balance constraints propagate through carved regions (§3.3)."""
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.2))
    raw = construct_adaptive(dom, 1, 5)
    bal = balance_2to1(dom, raw)
    assert is_balanced(bal)


def test_bottom_up_seeds_include_parent_neighbors():
    seed = _point_seed(2, 3, [2, 2])
    aux = bottom_up_constrain_neighbors(seed)
    # must contain octants at every coarser level down to 1 or 0
    lv = set(int(x) for x in np.unique(aux.levels))
    assert {1, 2, 3}.issubset(lv)


def test_bottom_up_empty():
    e = OctantSet.empty(2)
    assert len(bottom_up_constrain_neighbors(e)) == 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_balance_random_seeds_property(seed):
    """Random seed sets always yield 2:1-balanced covers."""
    rng = np.random.default_rng(seed)
    dom = Domain(SphereRetain([0.5, 0.5], 0.45))
    m = max_level(2)
    n = 6
    levels = rng.integers(2, 7, n)
    anchors = np.empty((n, 2), np.uint32)
    for i, lv in enumerate(levels):
        size = 1 << (m - lv)
        anchors[i] = rng.integers(0, 1 << lv, 2) * size
    seeds = OctantSet(anchors, levels.astype(np.uint8))
    bal = balance_2to1(dom, seeds)
    assert is_balanced(bal)
    assert is_sorted_linear(bal)
