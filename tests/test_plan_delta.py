"""Incremental operator-plan deltas (repro.core.plan_delta).

The contract under test: for any refine/coarsen step,
``update_mesh(old_mesh, new_leaves)`` produces a mesh whose node
enumeration, gather CSR, flags, labels — and therefore every operator
built from them — are **bit-identical** to a from-scratch rebuild,
whether the incremental path ran or the churn-limit fallback fired.
"""

import numpy as np
import pytest

from repro import Domain
from repro.core import balance_2to1, construct_adaptive
from repro.core.adapt import coarsen_leaves, refine_leaves
from repro.core.mesh import mesh_from_leaves
from repro.core.plan import diff_leaves
from repro.core.plan_delta import assert_plan_equivalent, update_mesh
from repro.geometry import SphereCarve
from repro.parallel import analyze_partition, update_exchange_plan
from repro.parallel.ghost import ExchangePlan, exchange_plan

pytestmark = pytest.mark.amr


def _mesh_2d(p=1, base=5, boundary=7):
    dom = Domain(SphereCarve([0.5, 0.5], 0.27), dim=2, scale=1.0)
    return mesh_from_leaves(dom, construct_adaptive(dom, base, boundary), p=p)


def _mesh_3d():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    return mesh_from_leaves(dom, construct_adaptive(dom, 3, 5), p=1)


def _window_refine(mesh, start_frac, frac):
    n = mesh.n_elem
    marks = np.zeros(n, bool)
    k = max(int(n * frac), 1)
    s = int(n * start_frac)
    marks[s : s + k] = True
    return balance_2to1(
        mesh.domain, refine_leaves(mesh.domain, mesh.leaves, marks)
    )


def _reference(mesh, new_leaves):
    return mesh_from_leaves(
        mesh.domain, new_leaves, p=mesh.p, curve=mesh.curve, balance=False
    )


@pytest.mark.parametrize("start", [0.0, 0.33, 0.7])
@pytest.mark.parametrize("p", [1, 2])
def test_incremental_refine_bit_identical_2d(p, start):
    mesh = _mesh_2d(p=p)
    new_leaves = _window_refine(mesh, start, 0.01)
    new_mesh, delta = update_mesh(mesh, new_leaves, churn_limit=1.0)
    assert new_mesh._plan_update.incremental, f"churn {delta.churn:.3f}"
    assert_plan_equivalent(new_mesh, _reference(mesh, new_leaves))


def test_incremental_refine_bit_identical_3d():
    mesh = _mesh_3d()
    new_leaves = _window_refine(mesh, 0.0, 0.01)
    new_mesh, delta = update_mesh(mesh, new_leaves, churn_limit=1.0)
    assert new_mesh._plan_update.incremental
    assert_plan_equivalent(new_mesh, _reference(mesh, new_leaves))


def test_incremental_coarsen_bit_identical():
    mesh = _mesh_2d()
    n = mesh.n_elem
    marks = np.zeros(n, bool)
    marks[n // 2 : n // 2 + n // 20] = True
    new_leaves = balance_2to1(
        mesh.domain, coarsen_leaves(mesh.domain, mesh.leaves, marks)
    )
    new_mesh, delta = update_mesh(mesh, new_leaves, churn_limit=1.0)
    assert_plan_equivalent(new_mesh, _reference(mesh, new_leaves))


def test_identical_leaves_share_nodes():
    mesh = _mesh_2d()
    new_mesh, delta = update_mesh(mesh, mesh.leaves)
    assert delta.identical
    assert new_mesh.nodes is mesh.nodes
    rep = new_mesh._plan_update
    assert rep.incremental
    assert np.array_equal(rep.gid_map, np.arange(mesh.n_nodes))


def test_churn_limit_falls_back_to_full_rebuild():
    mesh = _mesh_2d()
    # scattered marks: the single prefix/suffix window covers nearly
    # everything, churn blows past the limit, and the fallback fires
    rng = np.random.default_rng(0)
    marks = np.zeros(mesh.n_elem, bool)
    marks[rng.choice(mesh.n_elem, mesh.n_elem // 10, replace=False)] = True
    new_leaves = balance_2to1(
        mesh.domain, refine_leaves(mesh.domain, mesh.leaves, marks)
    )
    new_mesh, delta = update_mesh(mesh, new_leaves, churn_limit=0.3)
    assert not new_mesh._plan_update.incremental
    assert_plan_equivalent(new_mesh, _reference(mesh, new_leaves))


def test_incremental_matvec_bit_identical():
    from repro.core.matvec import MapBasedMatVec

    mesh = _mesh_2d()
    new_leaves = _window_refine(mesh, 0.4, 0.02)
    new_mesh, _ = update_mesh(mesh, new_leaves, churn_limit=1.0)
    ref = _reference(mesh, new_leaves)
    x = np.sin(np.arange(new_mesh.n_nodes, dtype=float))
    y_inc = MapBasedMatVec(new_mesh, kind="stiffness")(x)
    y_ref = MapBasedMatVec(ref, kind="stiffness")(x)
    assert np.array_equal(y_inc, y_ref)  # bit-identical, not just close


def test_diff_leaves_windows():
    mesh = _mesh_2d()
    new_leaves = _window_refine(mesh, 0.5, 0.01)
    delta = diff_leaves(mesh.leaves, new_leaves, mesh.curve)
    assert delta.prefix > 0 and delta.suffix > 0
    assert 0.0 < delta.churn < 0.5
    # the unchanged windows really are unchanged
    a_old, a_new = mesh.leaves.anchors, new_leaves.anchors
    assert np.array_equal(a_old[: delta.prefix], a_new[: delta.prefix])
    assert np.array_equal(
        a_old[len(a_old) - delta.suffix :], a_new[len(a_new) - delta.suffix :]
    )


def test_update_exchange_plan_matches_fresh_build():
    mesh = _mesh_2d(base=6, boundary=8)
    splits = np.linspace(0, mesh.n_elem, 9).astype(np.int64)
    layout = analyze_partition(mesh, splits)
    plan0 = exchange_plan(mesh, layout)
    new_leaves = _window_refine(mesh, 0.33, 0.015)
    new_mesh, _ = update_mesh(mesh, new_leaves, churn_limit=1.0)
    assert new_mesh._plan_update.incremental
    splits2 = splits.copy()
    splits2[-1] = new_mesh.n_elem
    layout2 = analyze_partition(new_mesh, splits2)
    plan_up = update_exchange_plan(new_mesh, layout2, plan0)
    plan_fresh = ExchangePlan(new_mesh, layout2)
    assert plan_up.reused_ranks > 0, "no rank operator was reused"
    for r in range(layout2.nranks):
        a, b = plan_up.g_loc[r], plan_fresh.g_loc[r]
        if a is None:
            assert b is None
            continue
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(plan_up.mine[r], plan_fresh.mine[r])
        assert np.array_equal(plan_up.owned_ids[r], plan_fresh.owned_ids[r])
    assert set(plan_up.send_ids) == set(plan_fresh.send_ids)
    for key in plan_up.send_ids:
        assert np.array_equal(plan_up.send_ids[key], plan_fresh.send_ids[key])
        assert np.array_equal(
            plan_up.ghost_pos[key], plan_fresh.ghost_pos[key]
        )


def test_update_exchange_plan_fallback_without_report():
    mesh = _mesh_2d()
    splits = np.linspace(0, mesh.n_elem, 5).astype(np.int64)
    layout = analyze_partition(mesh, splits)
    plan0 = exchange_plan(mesh, layout)
    # a mesh built from scratch carries no PlanUpdateReport: the update
    # degrades to the plain cached build
    plan = update_exchange_plan(mesh, layout, plan0)
    assert plan is plan0  # cached per layout + fingerprint
