"""Tests for the request-scoped flight recorder: event log integrity,
timeline reconstruction with exact stage attribution, SLO health
snapshots, and bit-identical fail-over timelines."""

import json

import numpy as np
import pytest

from repro import obs
from repro.fleet import FleetService, demo_fleet, synthetic_workload
from repro.obs import (
    EVENT_KINDS,
    EventLog,
    EventStreamCorruption,
    load_events,
    save_events,
)
from repro.obs.counters import CounterRegistry, Histogram
from repro.obs.reqtrace import (
    STAGES,
    events_to_chrome,
    reconstruct,
    render_timeline,
    resolve_rid,
    timeline_doc,
    timelines,
)
from repro.obs.slo import SLOPolicy, evaluate_windows, fleet_health, render_health
from repro.serve import Rejected, SolverService, SolveRequest, demo_workload

DISK = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.3}
SMALL_DISK = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.2}


def _req(**kw):
    kw.setdefault("geometry", DISK)
    kw.setdefault("base_level", 2)
    kw.setdefault("boundary_level", 3)
    return SolveRequest(**kw)


def _served(n=12, seed=0, **kw):
    """Run a demo workload through a recorded SolverService."""
    rec = EventLog()
    svc = SolverService(cache_bytes=8 << 20, recorder=rec, **kw)
    for r in demo_workload(n, seed=seed):
        svc.submit(r)
    svc.drain()
    return svc, rec


# -- event log ----------------------------------------------------------


def test_event_log_seq_and_digest_deterministic():
    def fill(log):
        log.emit("submit", "r1", tick=0, pde="poisson")
        log.emit("enqueue", "r1", tick=0, shard="shard0", depth=1)
        log.emit("complete", "r1", tick=64, shard="shard0", status="ok")

    a, b = EventLog(), EventLog()
    fill(a)
    fill(b)
    assert [ev.seq for ev in a.events] == [1, 2, 3]
    assert a.digest == b.digest
    # any difference in the stream changes the digest
    c = EventLog()
    fill(c)
    c.emit("retry", "r1", tick=65)
    assert c.digest != a.digest


def test_event_log_rejects_unknown_kind():
    log = EventLog()
    with pytest.raises(ValueError, match="unknown event kind"):
        log.emit("teleport", "r1", tick=0)
    assert len(log) == 0
    assert "teleport" not in EVENT_KINDS


def test_event_log_soft_disable_is_noop():
    log = EventLog(enabled=False)
    assert log.emit("submit", "r1", tick=0) is None
    assert len(log) == 0
    assert log.digest == EventLog().digest


def test_event_log_coerces_numpy_scalars():
    log = EventLog()
    ev = log.emit("solve_exec", "r1", tick=8, matvecs=np.int64(17))
    assert ev.attrs["matvecs"] == 17
    json.dumps(log.to_doc())  # must be plain-JSON serialisable


def test_event_stream_roundtrip_and_tamper_detection(tmp_path):
    _, rec = _served(6)
    path = save_events(tmp_path / "ev.json", rec, name="unit")
    back = load_events(path)
    assert back.digest == rec.digest
    assert len(back) == len(rec)

    doc = json.loads(path.read_text())
    doc["events"][3]["tick"] += 1  # bit-flip one tick
    with pytest.raises(EventStreamCorruption, match="digest mismatch"):
        EventLog.from_doc(doc)

    doc2 = json.loads(path.read_text())
    del doc2["events"][0]  # truncation shifts every seq
    with pytest.raises(EventStreamCorruption, match="stream gap"):
        EventLog.from_doc(doc2)

    with pytest.raises(ValueError, match="not a repro.obs/events.v1"):
        EventLog.from_doc({"schema": "bogus"})


# -- histogram summary / registry satellites ---------------------------


def test_histogram_summary_pinned_values():
    h = Histogram()
    for v in (1.0, 2.0, 4.0, 8.0, 100.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 5
    assert s["sum"] == 115.0
    assert s["min"] == 1.0 and s["max"] == 100.0
    # log-bucketed quantiles report the holding bucket's upper bound
    assert s["p50"] == pytest.approx(5.623413251903491)
    assert s["p95"] == 100.0
    assert s["p99"] == 100.0
    assert Histogram().summary() == {"count": 0, "sum": 0.0}


def test_histogram_summary_matches_per_quantile_scan():
    h = Histogram()
    for i in range(200):
        h.observe((i * 37 % 199) + 0.5)
    s = h.summary()
    for q, key in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
        assert s[key] == h.quantile(q)


def test_get_value_counter_gauge_collision_raises():
    obs.enable()
    try:
        reg = CounterRegistry()
        reg.add("queue.depth", 3)
        assert reg.get_value("queue.depth") == 3
        reg.set_gauge("queue.depth", 7)
        assert reg.get_counter("queue.depth") == 3
        assert reg.get_gauge("queue.depth") == 7
        with pytest.raises(KeyError, match="both a counter and a gauge"):
            reg.get_value("queue.depth")
        # distinct labels are distinct metrics — no collision
        reg.add("queue.depth", 1, shard="s0")
        assert reg.get_value("queue.depth", shard="s0") == 1
    finally:
        obs.disable()
        obs.reset()


# -- serve-level stage attribution -------------------------------------


def test_serve_stage_sums_equal_latency_for_all_requests():
    svc, rec = _served(12)
    tls = timelines(rec)
    assert len(tls) == len(svc.responses) == 12
    for tl in tls:
        assert sum(tl.stages.values()) == tl.latency, tl.rid
        assert set(tl.stages) == set(STAGES)
        assert tl.status == "ok"
    # completions in the stream match the response set exactly
    assert rec.kinds()["complete"] == 12


def test_queue_full_rejection_is_all_admission():
    rec = EventLog()
    svc = SolverService(max_pending=2, recorder=rec)
    svc.submit(_req(f=1.0))
    svc.submit(_req(f=2.0))
    rej = svc.submit(_req(f=3.0))
    assert isinstance(rej, Rejected)
    svc.drain()
    tl = reconstruct(rec, rej.request_digest)
    assert tl.status == "rejected" and tl.reason == "queue_full"
    # never enqueued: the whole (zero-tick) latency is admission wait
    assert tl.stages["admission"] == tl.latency
    assert sum(tl.stages.values()) == tl.latency
    assert [ev.kind for ev in tl.events] == ["submit", "reject", "complete"]


def test_deadline_expiry_timeline_is_queue_wait():
    rec = EventLog()
    svc = SolverService(max_batch=4, recorder=rec)
    svc.submit(_req(priority=0))
    doomed = _req(geometry=SMALL_DISK, priority=5, deadline=10)
    svc.submit(doomed)
    svc.drain()
    tl = reconstruct(rec, doomed.digest)
    assert tl.status == "rejected" and tl.reason == "deadline_exceeded"
    assert tl.deadline == 10 and tl.t_done > 10
    # admitted but never batched: latency = admission + queue exactly
    assert tl.stages["queue"] == tl.latency - tl.stages["admission"]
    assert sum(tl.stages.values()) == tl.latency


class _FlakyOnce:
    def __call__(self, request, retries):
        from repro.resilience.faults import SolverBreakdown

        if retries == 0:
            raise SolverBreakdown("injected", "breakdown", "first try fails")


def test_retry_backoff_lands_in_queue_stage():
    rec = EventLog()
    svc = SolverService(fault_injector=_FlakyOnce(), backoff=500, recorder=rec)
    req = _req(f=1.0)
    svc.submit(req)
    svc.drain()
    tl = reconstruct(rec, req.digest)
    assert tl.ok and tl.retries == 1
    assert "retry" in [ev.kind for ev in tl.events]
    # two batch_form events: original dispatch plus the re-queue
    assert sum(1 for ev in tl.events if ev.kind == "batch_form") == 2
    assert sum(tl.stages.values()) == tl.latency
    assert tl.stages["queue"] >= 500  # backoff wait is queue time


def test_resolve_rid_exact_prefix_unknown_ambiguous():
    _, rec = _served(6)
    rids = rec.request_ids()
    full = rids[0]
    assert resolve_rid(rec, full) == full
    # a 12-char prefix is unique in practice for sha256 ids
    assert resolve_rid(rec, full[:12]) == full
    with pytest.raises(KeyError, match="no request matching"):
        resolve_rid(rec, "zzzz")
    with pytest.raises(KeyError, match="ambiguous"):
        resolve_rid(rec, "")  # every id matches the empty prefix


def test_reconstruct_incomplete_request_raises_and_is_skipped():
    log = EventLog()
    log.emit("submit", "inflight", tick=0, pde="poisson")
    log.emit("enqueue", "inflight", tick=0, depth=1)
    with pytest.raises(ValueError, match="never completed"):
        reconstruct(log, "inflight")
    assert timelines(log) == []


def test_render_timeline_reports_exact_stage_sum():
    _, rec = _served(4)
    tl = timelines(rec)[0]
    text = render_timeline(tl)
    assert f"(sum={tl.latency})" in text
    assert f"latency={tl.latency} ticks" in text
    for ev in tl.events:
        assert f"{ev.kind:<16}" in text


# -- SLO evaluation -----------------------------------------------------


def _hand_rolled_log():
    """Two windows: one clean, one burning half its error budget×10."""
    log = EventLog()
    for i, (t0, t1, status) in enumerate(
        [(0, 400, "ok"), (100, 900, "ok"), (5000, 5400, "ok"),
         (5100, 5900, "failed")]
    ):
        rid = f"r{i}"
        log.emit("submit", rid, tick=t0, pde="poisson", priority=0,
                 deadline=None)
        log.emit("enqueue", rid, tick=t0, depth=1)
        log.emit("complete", rid, tick=t1, status=status,
                 reason="" if status == "ok" else "retries_exhausted",
                 t_submit=t0, retries=0, pde="poisson")
    return log


def test_slo_windows_and_burn_alerts():
    log = _hand_rolled_log()
    policy = SLOPolicy(window=5_000, burn_alert=2.0)
    wins = evaluate_windows(log, policy)
    assert [w["window"] for w in wins] == [0, 1]
    assert wins[0]["availability"] == 1.0 and wins[0]["burn_rate"] == 0.0
    assert wins[1]["availability"] == 0.5
    assert wins[1]["burn_rate"] == pytest.approx(10.0)
    assert not wins[0]["alert"] and wins[1]["alert"]


def test_fleet_health_flags_violations_and_default_deadline():
    log = _hand_rolled_log()
    doc = fleet_health(log, SLOPolicy(default_deadline=500))
    assert doc["schema"] == "repro.obs/health.v1"
    assert doc["requests"] == 4 and doc["ok"] == 3 and doc["failed"] == 1
    assert doc["availability"] == 0.75
    # default deadline of 500 ticks: only the two 400-tick solves hit
    assert doc["deadline_hit_rate"] == 0.5
    assert not doc["healthy"]
    objectives = {v["objective"] for v in doc["violations"]}
    assert {"availability", "deadline_hit_rate"} <= objectives
    assert doc["alert_windows"] == [1]
    assert doc["event_digest"] == log.digest
    text = render_health(doc)
    assert "fleet health: DEGRADED" in text
    assert "VIOLATION availability" in text


def test_fleet_health_stage_ceilings():
    _, rec = _served(8)
    ok_doc = fleet_health(rec, SLOPolicy(stage_p95={"queue": 10**9}))
    assert ok_doc["healthy"]
    assert ok_doc["stages"]["e2e"]["count"] == 8
    bad_doc = fleet_health(rec, SLOPolicy(stage_p95={"solve": 1}))
    assert any(
        v["objective"] == "stage_p95:solve" for v in bad_doc["violations"]
    )


# -- fleet-level determinism and fail-over -----------------------------


@pytest.mark.fleet
def test_fleet_event_stream_digest_bit_identical():
    rec_a, rec_b = EventLog(), EventLog()
    demo_fleet(4, seed=0, n_requests=40, recorder=rec_a)
    demo_fleet(4, seed=0, n_requests=40, recorder=rec_b)
    assert rec_a.digest == rec_b.digest
    kinds = rec_a.kinds()
    assert kinds["route"] == kinds["submit"] == 40
    assert kinds["complete"] >= 40
    assert "steal" in kinds  # the demo workload is tuned to steal
    for tl in timelines(rec_a):
        assert sum(tl.stages.values()) == tl.latency, tl.rid


@pytest.mark.fleet
def test_failover_survivor_timelines_bit_identical():
    work = synthetic_workload(40, seed=3, mean_gap=40, burst_gap=5)
    kill_at = max(a.tick for a in work) + 1

    def run(kill, rec):
        fleet = FleetService(4, cache_bytes=8 << 20, stealing=False,
                             ckpt_interval=6, recorder=rec)
        fleet.run(synthetic_workload(40, seed=3, mean_gap=40, burst_gap=5),
                  kill=kill)
        return fleet

    rec_base, rec_kill = EventLog(), EventLog()
    run(None, rec_base)
    run((kill_at, "shard0"), rec_kill)

    kinds = rec_kill.kinds()
    assert kinds["failover"] == 1 and kinds.get("failover_replay", 0) > 0

    survivors = [
        ev.rid for ev in rec_base.events
        if ev.kind == "route" and ev.shard != "shard0"
    ]
    assert survivors  # the scenario must actually exercise survivors
    for rid in survivors:
        base = timeline_doc(reconstruct(rec_base, rid))
        recovered = timeline_doc(reconstruct(rec_kill, rid))
        assert base == recovered, rid


@pytest.mark.fleet
def test_fleet_health_snapshot_deterministic():
    rec_a, rec_b = EventLog(), EventLog()
    demo_fleet(4, seed=0, n_requests=30, recorder=rec_a)
    demo_fleet(4, seed=0, n_requests=30, recorder=rec_b)
    a = fleet_health(rec_a, name="demo")
    b = fleet_health(rec_b, name="demo")
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["requests"] == 30
    assert len(a["per_shard_completed"]) > 1  # work actually spread


# -- chrome export ------------------------------------------------------


@pytest.mark.fleet
def test_events_to_chrome_one_track_per_shard():
    rec = EventLog()
    demo_fleet(4, seed=0, n_requests=30, recorder=rec)
    doc = events_to_chrome(rec)
    evs = doc["traceEvents"]
    meta = [e for e in evs if e["ph"] == "M"]
    tracks = {e["args"]["name"] for e in meta}
    assert tracks == {f"shard{i}" for i in range(4)}
    xs = [e for e in evs if e["ph"] == "X"]
    assert len(xs) == len(timelines(rec))
    for x in xs:
        assert x["dur"] == sum(x["args"]["stages"].values())
    # pids are densely numbered in first-seen order
    assert {e["pid"] for e in meta} == set(range(1, len(meta) + 1))
