"""Tests for repro.chaos: seeded fault schedules, the chaos clock, and
the fleet-level invariant sweep (exactly-once, unaffected-request
identity, deterministic health, exact stage attribution)."""

import pytest

from repro.chaos import (
    CHAOS_KINDS,
    ChaosSchedule,
    check_schedule,
    run_sweep,
)
from repro.fleet import FleetService, synthetic_workload
from repro.fleet.defense import HedgePolicy
from repro.obs import EventLog
from repro.obs.reqtrace import timelines

pytestmark = pytest.mark.chaos


# -- schedules -----------------------------------------------------------


def test_random_schedule_is_seed_deterministic():
    ids = ["shard0", "shard1", "shard2"]
    a = ChaosSchedule.random(7, ids, 8000, n_crash=1, n_handoff=2)
    b = ChaosSchedule.random(7, ids, 8000, n_crash=1, n_handoff=2)
    assert a.describe() == b.describe()
    c = ChaosSchedule.random(8, ids, 8000, n_crash=1, n_handoff=2)
    assert a.describe() != c.describe()


def test_slow_factor_and_stall_windows():
    s = ChaosSchedule().slow("s0", 100, 200, 10).stall("s0", 300, 400)
    assert s.slow_factor("s0", 150) == 10
    assert s.slow_factor("s0", 250) == 1  # outside the window
    assert s.slow_factor("s1", 150) == 1  # other shard untouched
    assert s.stall_until("s0", 350) == 400
    assert s.stall_until("s0", 450) == 450
    assert s.stall_until("s1", 350) == 350


def test_stall_windows_chain():
    s = ChaosSchedule().stall("s0", 100, 200).stall("s0", 200, 300)
    assert s.stall_until("s0", 150) == 300


def test_one_shot_faults_are_consumed():
    s = ChaosSchedule().corrupt_cache("s0", at_lookup=2).handoff(1, "dup")
    assert not s.cache_corruption_due("s0", 1)
    assert s.cache_corruption_due("s0", 2)
    assert not s.cache_corruption_due("s0", 2)  # one-shot
    assert s.handoff_mode(0) is None
    assert s.handoff_mode(1) == "dup"
    assert s.handoff_mode(1) is None  # one-shot


def test_chaos_clock_scales_advance_inside_window():
    sched = ChaosSchedule().slow("s0", 0, 1000, 5)
    clock = sched.clock_for("s0")
    clock.advance(10)
    assert clock.now == 50  # 10 ticks of work cost 5x
    clock.jump_to(2000)  # past the window
    clock.advance(10)
    assert clock.now == 2010


def test_affected_shards_and_describe():
    s = (ChaosSchedule().slow("s0", 0, 10).stall("s1", 0, 10)
         .crash(5, "s2").corrupt_cache("s3", 1).handoff(0, "drop"))
    assert s.affected_shards() == {"s0", "s1", "s2", "s3"}
    assert len(s.describe()) == 5


# -- invariants ----------------------------------------------------------


def test_stage_attribution_sums_exactly_under_chaos():
    log = EventLog()
    sched = ChaosSchedule().slow("shard0", 0, 10**7, 20)
    fleet = FleetService(
        2, cache_bytes=8 << 20, steal_threshold=4, steal_latency=100,
        stealing=False, recorder=log, chaos=sched,
        hedge=HedgePolicy(initial_delay=2_000, min_delay=1_000,
                          min_samples=10**9),
    )
    fleet.run(synthetic_workload(24, seed=2))
    n = 0
    for tl in timelines(log):
        assert sum(tl.stages.values()) == tl.latency
        n += 1
    assert n == len(fleet.responses) == 24


def test_check_schedule_single_seed():
    res = check_schedule(0)
    assert res["band"] == "isolation"
    assert res["responses"] == 40
    assert res["unaffected_checked"] > 0
    assert len(res["event_digest"]) == 64


def test_invariant_sweep_subset():
    out = run_sweep(seeds=(0, 1), handoff_seeds=(100,), log=None)
    assert out["passed"] == out["schedules"] == 3
    assert not out["breaches"]
    bands = {r["band"] for r in out["results"]}
    assert bands == {"isolation", "handoff"}


def test_chaos_kinds_are_registered_event_kinds():
    from repro.obs.events import EVENT_KINDS

    assert CHAOS_KINDS <= set(EVENT_KINDS)


# -- chaos-demo CLI ------------------------------------------------------


def test_chaos_demo_cli_runs_and_is_deterministic(capsys, tmp_path):
    from repro.cli import main

    argv = ["chaos-demo", "--seed", "1", "--shards", "2",
            "--requests", "20", "--out", str(tmp_path / "a.txt")]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(["chaos-demo", "--seed", "1", "--shards", "2",
                 "--requests", "20", "--out", str(tmp_path / "b.txt")]) == 0
    capsys.readouterr()
    a = (tmp_path / "a.txt").read_text()
    b = (tmp_path / "b.txt").read_text()
    assert a == b
    assert "fleet digest:" in a and "fault:" in a
