"""Tests for nodal enumeration & hanging-node handling (§3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domain import Domain
from repro.core.mesh import build_mesh, build_uniform_mesh
from repro.core.nodes import cancellation_offsets
from repro.fem.basis import local_node_offsets
from repro.geometry.primitives import BoxRetain, SphereCarve, SphereRetain


def _local_coords(mesh):
    """Physical coordinates of every element-local node slot."""
    p, dim = mesh.p, mesh.dim
    off = local_node_offsets(p, dim)
    a = mesh.leaves.anchors.astype(np.int64)
    s = mesh.leaves.sizes.astype(np.int64)
    X = 2 * p * a[:, None, :] + 2 * off[None] * s[:, None, None]
    return X.reshape(-1, dim) * mesh.nodes.h_node


def _check_polynomial_reproduction(mesh, func):
    pts = mesh.nodes.physical_coords()
    loc = mesh.nodes.gather @ func(pts)
    expect = func(_local_coords(mesh))
    assert np.abs(loc - expect).max() < 1e-9


def test_cancellation_offsets_p1_2d():
    k = cancellation_offsets(1, 2)
    # the 4 edge midpoints of the quad
    assert len(k) == 4
    assert {tuple(x) for x in k} == {(0, 1), (1, 0), (1, 2), (2, 1)}


def test_cancellation_offsets_p1_3d():
    k = cancellation_offsets(1, 3)
    # 12 edge midpoints + 6 face centres
    assert len(k) == 18


def test_cancellation_offsets_p2_2d():
    k = cancellation_offsets(2, 2)
    # boundary points of the 5x5 grid with an odd index: 2 per edge
    # (even positions coincide with ordinary coarse nodes)
    assert len(k) == 8


def test_uniform_node_count_2d():
    dom = Domain(dim=2)
    for p, expect in [(1, 17 * 17), (2, 33 * 33)]:
        mesh = build_uniform_mesh(dom, 4, p=p)
        assert mesh.n_nodes == expect
        assert mesh.nodes.n_hanging_slots == 0


def test_uniform_node_count_3d():
    mesh = build_uniform_mesh(Domain(dim=3), 2, p=1)
    assert mesh.n_nodes == 5**3


def test_no_duplicate_node_coords():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 5, p=1)
    coords = mesh.nodes.coords
    assert len(np.unique(coords, axis=0)) == len(coords)


def test_hanging_slots_appear_on_graded_mesh():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 5, p=1)
    assert mesh.nodes.n_hanging_slots > 0
    assert (mesh.nodes.elem_nodes >= 0).any()


def test_gather_rows_partition_of_unity():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    for p in (1, 2):
        mesh = build_mesh(dom, 2, 4, p=p)
        rs = np.asarray(mesh.nodes.gather.sum(axis=1)).ravel()
        assert np.allclose(rs, 1.0)


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("p", [1, 2])
def test_polynomial_reproduction(dim, p):
    """Order-p interpolation reproduces degree-p polynomials exactly
    across hanging interfaces — the conformity property."""
    center = [0.5] * dim
    dom = Domain(SphereCarve(center, 0.3))
    mesh = build_mesh(dom, 2, 4, p=p)
    assert mesh.nodes.n_hanging_slots > 0

    def func(pts):
        out = 1.0 + pts @ np.arange(1, dim + 1, dtype=float)
        if p >= 2:
            out = out + 0.5 * pts[:, 0] ** 2 - 0.25 * pts[:, 0] * pts[:, dim - 1]
        return out

    _check_polynomial_reproduction(mesh, func)


def test_carved_nodes_marked_on_disk():
    dom = Domain(SphereRetain([0.5, 0.5], 0.25))
    mesh = build_uniform_mesh(dom, 5, p=1)
    pts = mesh.nodes.physical_coords()
    r = np.linalg.norm(pts - 0.5, axis=1)
    carved = mesh.nodes.carved_node
    # all marked nodes lie on/outside the circle, all unmarked inside
    assert np.all(r[carved] >= 0.25 - 1e-12)
    assert np.all(r[~carved] < 0.25)
    assert carved.any() and (~carved).any()


def test_domain_boundary_nodes_on_cube():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=1)
    pts = mesh.nodes.physical_coords()
    onb = (
        np.isclose(pts, 0.0).any(axis=1) | np.isclose(pts, 1.0).any(axis=1)
    )
    assert np.array_equal(onb, mesh.nodes.domain_boundary)


def test_channel_nodes_inside_channel():
    dom = Domain(BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0)
    mesh = build_uniform_mesh(dom, 4, p=1)
    pts = mesh.nodes.physical_coords()
    assert pts[:, 1].max() <= 1.0 + 1e-12
    assert mesh.n_nodes == 17 * 5


def test_empty_mesh_raises():
    from repro.core.nodes import build_nodes
    from repro.core.octant import OctantSet

    with pytest.raises(ValueError):
        build_nodes(Domain(dim=2), OctantSet.empty(2), p=1)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_carving_linear_reproduction(seed):
    """Linear fields reproduce on randomly carved, graded meshes."""
    rng = np.random.default_rng(seed)
    c = rng.uniform(0.3, 0.7, 2)
    r = rng.uniform(0.1, 0.3)
    dom = Domain(SphereCarve(c, r))
    mesh = build_mesh(dom, 2, 5, p=1)
    coef = rng.standard_normal(2)

    def func(pts):
        return pts @ coef + 1.0

    _check_polynomial_reproduction(mesh, func)
