"""Tests for the transport and Navier–Stokes solvers."""

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh
from repro.fem import NavierStokesProblem, TransportProblem
from repro.fem.transport import element_velocity
from repro.geometry import BoxRetain, SphereCarve


@pytest.fixture(scope="module")
def square_mesh():
    return build_uniform_mesh(Domain(dim=2), 4, p=1)


# -- transport ------------------------------------------------------------


def test_element_velocity_constant_field(square_mesh):
    v = np.tile([2.0, -1.0], (square_mesh.n_nodes, 1))
    ev = element_velocity(square_mesh, v)
    assert np.allclose(ev, [2.0, -1.0])


def test_transport_conserves_without_source_or_outflow(square_mesh):
    """Zero velocity, no source: total mass is exactly conserved by
    implicit Euler with natural BCs."""
    tp = TransportProblem(square_mesh, np.zeros((square_mesh.n_nodes, 2)),
                          kappa=0.01, dt=0.1)
    rng = np.random.default_rng(0)
    c0 = np.abs(rng.standard_normal(square_mesh.n_nodes))
    m0 = tp.total_mass(c0)
    c = tp.run(c0, 5)
    assert tp.total_mass(c) == pytest.approx(m0, rel=1e-10)


def test_transport_diffusion_smooths(square_mesh):
    tp = TransportProblem(square_mesh, np.zeros((square_mesh.n_nodes, 2)),
                          kappa=0.1, dt=0.05)
    pts = square_mesh.node_coords()
    c0 = np.exp(-100 * ((pts - 0.5) ** 2).sum(axis=1))
    c = tp.run(c0, 10)
    assert c.max() < c0.max()
    assert c.min() > -1e-3


def test_transport_advects_downstream(square_mesh):
    vel = np.tile([1.0, 0.0], (square_mesh.n_nodes, 1))
    pts = square_mesh.node_coords()
    inlet = np.isclose(pts[:, 0], 0.0)
    tp = TransportProblem(square_mesh, vel, kappa=1e-3, dt=0.05,
                          dirichlet_mask=inlet)
    c0 = np.exp(-200 * ((pts - [0.25, 0.5]) ** 2).sum(axis=1))
    c = tp.run(c0, 8)
    x0 = (pts[:, 0] * c0.clip(0)).sum() / c0.clip(0).sum()
    x1 = (pts[:, 0] * c.clip(0)).sum() / c.clip(0).sum()
    assert x1 > x0 + 0.15  # the blob moved right by ~u*t = 0.4


def test_transport_source_injects_mass(square_mesh):
    tp = TransportProblem(square_mesh, np.zeros((square_mesh.n_nodes, 2)),
                          kappa=0.01, dt=0.1)
    c = tp.step(np.zeros(square_mesh.n_nodes), source=1.0)
    assert tp.total_mass(c) > 0


def test_transport_velocity_shape_validation(square_mesh):
    with pytest.raises(ValueError):
        TransportProblem(square_mesh, np.zeros((3, 2)), kappa=0.1, dt=0.1)


# -- Navier-Stokes ----------------------------------------------------------


def _poiseuille_setup(level=5, nu=0.05):
    dom = Domain(BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0)
    mesh = build_uniform_mesh(dom, level, p=1)
    pts = mesh.node_coords()

    def bc(pts_):
        n = len(pts_)
        mask = np.zeros((n, 2), bool)
        vals = np.zeros((n, 2))
        wall = np.isclose(pts_[:, 1], 0) | np.isclose(pts_[:, 1], 1)
        inlet = np.isclose(pts_[:, 0], 0)
        mask[wall] = True
        mask[inlet] = True
        vals[inlet, 0] = 4 * pts_[inlet, 1] * (1 - pts_[inlet, 1])
        vals[wall] = 0.0
        return mask, vals

    outlet = np.isclose(pts[:, 0], 4.0)
    return mesh, bc, outlet, pts


def test_ns_poiseuille_profile():
    mesh, bc, outlet, pts = _poiseuille_setup()
    ns = NavierStokesProblem(mesh, nu=0.05, velocity_bc=bc, pressure_pin=outlet)
    res = ns.picard_solve(max_iter=20, tol=1e-9)
    exact = 4 * pts[:, 1] * (1 - pts[:, 1])
    assert np.abs(res.velocity[:, 0] - exact).max() < 0.03
    assert np.abs(res.velocity[:, 1]).max() < 0.01


def test_ns_poiseuille_pressure_gradient():
    mesh, bc, outlet, pts = _poiseuille_setup()
    nu = 0.05
    ns = NavierStokesProblem(mesh, nu=nu, velocity_bc=bc, pressure_pin=outlet)
    res = ns.picard_solve(max_iter=20, tol=1e-9)
    mid = np.isclose(pts[:, 1], 0.5)
    x = pts[mid, 0]
    p = res.pressure[mid]
    slope = np.polyfit(x, p, 1)[0]
    assert slope == pytest.approx(-8 * nu, rel=0.08)


def test_ns_divergence_small():
    mesh, bc, outlet, pts = _poiseuille_setup(level=4)
    ns = NavierStokesProblem(mesh, nu=0.1, velocity_bc=bc, pressure_pin=outlet)
    res = ns.picard_solve(max_iter=15, tol=1e-9)
    assert ns.divergence_norm(res.velocity) < 0.15


def test_ns_stokes_limit_linear():
    """At huge viscosity the problem is linear: Picard converges in ~2."""
    mesh, bc, outlet, _ = _poiseuille_setup(level=4, nu=100.0)
    ns = NavierStokesProblem(mesh, nu=100.0, velocity_bc=bc, pressure_pin=outlet)
    res = ns.picard_solve(max_iter=10, tol=1e-10)
    assert res.iterations <= 5


def test_ns_unsteady_decay_to_steady():
    """Impulsively-started channel approaches the steady profile."""
    mesh, bc, outlet, pts = _poiseuille_setup(level=4)
    ns = NavierStokesProblem(mesh, nu=0.05, velocity_bc=bc,
                             pressure_pin=outlet, dt=0.2)
    U0, P0 = ns.initial_state()
    res = ns.advance(U0, P0, nsteps=20, picard_per_step=2)
    exact = 4 * pts[:, 1] * (1 - pts[:, 1])
    assert np.abs(res.velocity[:, 0] - exact).max() < 0.1


def test_ns_advance_requires_finite_dt():
    mesh, bc, outlet, _ = _poiseuille_setup(level=4)
    ns = NavierStokesProblem(mesh, nu=0.1, velocity_bc=bc, pressure_pin=outlet)
    with pytest.raises(ValueError):
        ns.advance(*ns.initial_state(), nsteps=1)


def test_ns_bc_shape_validation():
    mesh, _, outlet, _ = _poiseuille_setup(level=4)

    def bad_bc(pts):
        return np.zeros((3, 2), bool), np.zeros((3, 2))

    with pytest.raises(ValueError):
        NavierStokesProblem(mesh, nu=0.1, velocity_bc=bad_bc)


def test_ns_carved_cylinder_produces_wake():
    dom = Domain(SphereCarve([3.0, 5.0], 0.5), scale=10.0)
    mesh = build_mesh(dom, 4, 6, p=1)
    pts = mesh.node_coords()

    def bc(pts_):
        n = len(pts_)
        mask = np.zeros((n, 2), bool)
        vals = np.zeros((n, 2))
        inlet = np.isclose(pts_[:, 0], 0.0)
        walls = np.isclose(pts_[:, 1], 0.0) | np.isclose(pts_[:, 1], 10.0)
        mask[inlet] = True
        vals[inlet, 0] = 1.0
        mask[walls] = True
        vals[walls, 0] = 1.0
        mask[mesh.nodes.carved_node] = True
        vals[mesh.nodes.carved_node] = 0.0
        return mask, vals

    outlet = np.isclose(pts[:, 0], 10.0)
    ns = NavierStokesProblem(mesh, nu=1 / 40, velocity_bc=bc, pressure_pin=outlet)
    res = ns.picard_solve(max_iter=25, tol=1e-6)
    U = res.velocity
    # velocity deficit directly behind the cylinder; acceleration beside it
    behind = (np.abs(pts[:, 1] - 5.0) < 0.3) & (pts[:, 0] > 3.5) & (pts[:, 0] < 5.0)
    beside = (np.abs(pts[:, 1] - 5.0) > 0.8) & (np.abs(pts[:, 1] - 5.0) < 2.0) \
        & (np.abs(pts[:, 0] - 3.0) < 1.0)
    assert U[behind, 0].mean() < 0.5
    assert U[beside, 0].mean() > 1.0
    # stagnation pressure in front exceeds wake pressure
    front = (np.abs(pts[:, 1] - 5.0) < 0.2) & (pts[:, 0] > 2.0) & (pts[:, 0] < 2.5)
    assert res.pressure[front].mean() > res.pressure[behind].mean()
