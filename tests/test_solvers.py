"""Tests for the solver substrate (Krylov, preconditioners, Newton,
condition estimation)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import (
    BlockJacobi,
    bicgstab,
    cg,
    cond_dense,
    cond_spd_extremes,
    condest_1norm,
    jacobi,
    newton_ls,
)


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    B = rng.standard_normal((n, n))
    return B @ B.T + n * np.eye(n)


def test_cg_dense_spd():
    A = _spd(40)
    b = np.arange(40.0)
    res = cg(A, b, rtol=1e-10)
    assert res.converged
    assert np.allclose(A @ res.x, b, atol=1e-6)


def test_cg_with_jacobi_preconditioner():
    A = sp.diags([np.full(99, -1.0), np.full(100, 4.0), np.full(99, -1.0)],
                 [-1, 0, 1]).tocsr()
    b = np.ones(100)
    M = jacobi(A)
    res = cg(A, b, M=M, rtol=1e-12)
    assert res.converged
    assert np.allclose(A @ res.x, b, atol=1e-8)


def test_cg_matrix_free_operator():
    A = _spd(30, 1)
    res = cg(lambda v: A @ v, np.ones(30), rtol=1e-10)
    assert res.converged and res.matvecs > 0


def test_cg_x0_start():
    A = _spd(20, 2)
    b = np.ones(20)
    x_star = np.linalg.solve(A, b)
    res = cg(A, b, x0=x_star)
    assert res.iterations <= 1


def test_bicgstab_nonsymmetric():
    rng = np.random.default_rng(3)
    A = sp.random(80, 80, density=0.1, random_state=3).tocsr() + 10 * sp.eye(80)
    b = rng.standard_normal(80)
    res = bicgstab(A, b, rtol=1e-10, maxiter=500)
    assert res.converged
    assert np.linalg.norm(A @ res.x - b) < 1e-6


def test_bicgstab_with_preconditioner():
    A = sp.diags([np.full(199, -1.2), np.full(200, 3.0), np.full(199, -0.8)],
                 [-1, 0, 1]).tocsr()
    b = np.ones(200)
    res = bicgstab(A, b, M=jacobi(A), rtol=1e-10)
    assert res.converged


def test_block_jacobi_solves_block_diagonal_exactly():
    blocks = [np.array([[2.0, 1.0], [1.0, 3.0]]), np.array([[4.0]])]
    A = sp.block_diag(blocks).tocsr()
    M = BlockJacobi(A, splits=[0, 2, 3])
    r = np.array([1.0, 2.0, 3.0])
    assert np.allclose(A @ M(r), r)


def test_block_jacobi_accelerates_cg():
    A = sp.diags([np.full(299, -1.0), np.full(300, 2.01), np.full(299, -1.0)],
                 [-1, 0, 1]).tocsr()
    b = np.ones(300)
    plain = cg(A, b, rtol=1e-8, maxiter=5000)
    precond = cg(A, b, M=BlockJacobi(A, nblocks=4), rtol=1e-8, maxiter=5000)
    assert precond.converged
    assert precond.iterations < plain.iterations


def test_newton_scalar_like_system():
    def residual(x):
        return np.array([x[0] ** 3 - 8.0, x[1] ** 2 - 4.0])

    def solve_jac(x, rhs):
        J = np.diag([3 * x[0] ** 2, 2 * x[1]])
        return np.linalg.solve(J, rhs)

    res = newton_ls(residual, solve_jac, np.array([3.0, 3.0]), rtol=1e-12)
    assert res.converged
    assert np.allclose(res.x, [2.0, 2.0], atol=1e-6)


def test_newton_needs_backtracking():
    # steep residual where a full step overshoots
    def residual(x):
        return np.array([np.arctan(5 * x[0])])

    def solve_jac(x, rhs):
        return rhs / (5 / (1 + 25 * x[0] ** 2))

    res = newton_ls(residual, solve_jac, np.array([1.2]), rtol=1e-10,
                    max_iter=100)
    assert res.converged
    assert abs(res.x[0]) < 1e-8


def test_cond_dense_identity():
    assert cond_dense(np.eye(5)) == pytest.approx(1.0)


def test_condest_1norm_diagonal():
    A = sp.diags([1.0, 2.0, 4.0, 8.0]).tocsc()
    # kappa_1 of a diagonal matrix = max/min
    assert condest_1norm(A) == pytest.approx(8.0, rel=1e-6)


def test_condest_tracks_dense_order_of_magnitude():
    rng = np.random.default_rng(5)
    A = sp.csc_matrix(_spd(60, 7))
    est = condest_1norm(A)
    exact = cond_dense(A.toarray())
    assert exact / 10 < est < exact * 60  # 1-norm vs 2-norm bounded slack


def test_cond_spd_extremes_small_matrix():
    A = sp.csc_matrix(np.diag([1.0, 10.0, 100.0]))
    assert cond_spd_extremes(A) == pytest.approx(100.0, rel=1e-4)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(5, 40))
def test_cg_property_random_spd(seed, n):
    rng = np.random.default_rng(seed)
    A = _spd(n, seed)
    b = rng.standard_normal(n)
    res = cg(A, b, rtol=1e-10, maxiter=10 * n)
    assert res.converged
    assert np.linalg.norm(A @ res.x - b) <= 1e-6 * max(np.linalg.norm(b), 1)


# -- multi-RHS (block) CG ----------------------------------------------


def _carved_sphere_system():
    from repro import Domain, build_mesh
    from repro.core.assembly import assemble
    from repro.geometry import SphereCarve

    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 3, p=1)
    A = assemble(mesh, kind="stiffness")
    free = np.flatnonzero(~mesh.dirichlet_mask)
    return A[np.ix_(free, free)].tocsr()


def test_cg_block_matches_independent_solves_carved_sphere():
    Aff = _carved_sphere_system()
    n, k = Aff.shape[0], 5
    rng = np.random.default_rng(3)
    B = rng.standard_normal((n, k))
    res = cg(Aff, B, rtol=1e-12, maxiter=10 * n)
    assert res.converged
    assert res.x.shape == (n, k)
    assert res.col_iterations.shape == (k,)
    assert all(r == "converged" for r in res.col_reasons)
    for j in range(k):
        single = cg(Aff, B[:, j], rtol=1e-12, maxiter=10 * n)
        assert single.converged
        scale = np.linalg.norm(single.x)
        assert np.linalg.norm(res.x[:, j] - single.x) <= 1e-12 * max(scale, 1)


def test_cg_block_preconditioned_matches_independent_solves():
    Aff = _carved_sphere_system()
    M = jacobi(Aff)
    n, k = Aff.shape[0], 4
    rng = np.random.default_rng(7)
    B = rng.standard_normal((n, k))
    res = cg(Aff, B, M=M, rtol=1e-12, maxiter=10 * n)
    assert res.converged
    for j in range(k):
        single = cg(Aff, B[:, j], M=M, rtol=1e-12, maxiter=10 * n)
        scale = np.linalg.norm(single.x)
        assert np.linalg.norm(res.x[:, j] - single.x) <= 1e-12 * max(scale, 1)


def test_cg_block_columns_freeze_independently():
    # one easy column (b itself an eigenvector direction of diag) and
    # one hard column: per-column iteration counts must differ and the
    # easy column must not keep iterating after convergence
    A = sp.diags(np.linspace(1.0, 100.0, 80)).tocsr()
    b_easy = np.zeros(80)
    b_easy[0] = 1.0  # converges in one iteration on a diagonal system
    rng = np.random.default_rng(11)
    b_hard = rng.standard_normal(80)
    B = np.column_stack([b_easy, b_hard])
    res = cg(A, B, rtol=1e-12, maxiter=1000)
    assert res.converged
    assert res.col_iterations[0] < res.col_iterations[1]
    assert res.iterations == int(res.col_iterations.max())


def test_cg_block_zero_column_and_scalar_path_unchanged():
    A = _spd(30, 2)
    rng = np.random.default_rng(13)
    B = np.column_stack([np.zeros(30), rng.standard_normal(30)])
    res = cg(A, B, rtol=1e-10)
    assert res.converged
    assert np.allclose(res.x[:, 0], 0.0)
    # the 1-D path still returns a 1-D x with no per-column fields
    single = cg(A, B[:, 1], rtol=1e-10)
    assert single.x.ndim == 1
    assert single.col_iterations is None and single.col_reasons is None
