"""Tests for bases, quadrature and elemental reference matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.basis import LagrangeBasis, local_node_offsets
from repro.fem.elemental import reference_element
from repro.fem.quadrature import gauss_legendre_1d, tensor_rule


def test_gauss_legendre_exactness():
    # n points integrate degree 2n-1 exactly on [0,1]
    for n in (1, 2, 3, 4):
        x, w = gauss_legendre_1d(n)
        for deg in range(2 * n):
            exact = 1.0 / (deg + 1)
            assert np.dot(w, x**deg) == pytest.approx(exact, rel=1e-12)


def test_tensor_rule_weights():
    pts, w = tensor_rule(3, 3)
    assert pts.shape == (27, 3)
    assert w.sum() == pytest.approx(1.0)


def test_local_node_offsets_ordering():
    off = local_node_offsets(2, 2)
    # axis 0 fastest: index = i0 + 3*i1
    assert list(off[0]) == [0, 0]
    assert list(off[1]) == [1, 0]
    assert list(off[3]) == [0, 1]


@pytest.mark.parametrize("p,dim", [(1, 2), (2, 2), (1, 3), (2, 3), (3, 2)])
def test_basis_kronecker_delta(p, dim):
    b = LagrangeBasis(p, dim)
    nodes = b.node_reference_coords()
    vals = b.eval(nodes)
    assert np.allclose(vals, np.eye(b.npe), atol=1e-12)


@pytest.mark.parametrize("p,dim", [(1, 2), (2, 3)])
def test_basis_partition_of_unity(p, dim):
    b = LagrangeBasis(p, dim)
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 1, (20, dim))
    assert np.allclose(b.eval(pts).sum(axis=1), 1.0)
    assert np.allclose(b.eval_grad(pts).sum(axis=1), 0.0, atol=1e-10)


def test_basis_gradient_finite_difference():
    b = LagrangeBasis(2, 2)
    rng = np.random.default_rng(1)
    pts = rng.uniform(0.1, 0.9, (5, 2))
    g = b.eval_grad(pts)
    eps = 1e-6
    for ax in range(2):
        pp = pts.copy()
        pp[:, ax] += eps
        fd = (b.eval(pp) - b.eval(pts)) / eps
        assert np.allclose(fd, g[:, :, ax], atol=1e-4)


def test_basis_order_validation():
    with pytest.raises(ValueError):
        LagrangeBasis(0, 2)


def test_reference_stiffness_known_p1_2d():
    """The classic bilinear-quad stiffness matrix."""
    ref = reference_element(1, 2)
    K = ref.K_ref
    assert np.allclose(K, K.T)
    assert np.allclose(K.sum(axis=1), 0.0, atol=1e-14)
    assert K[0, 0] == pytest.approx(2.0 / 3.0)
    assert K[0, 3] == pytest.approx(-1.0 / 3.0)  # opposite corner


def test_reference_mass_total():
    for p, dim in [(1, 2), (2, 2), (1, 3)]:
        ref = reference_element(p, dim)
        assert ref.M_ref.sum() == pytest.approx(1.0)  # ∫1 over unit cube


def test_advection_blocks_antisymmetric_plus_boundary():
    """∫ φ_i ∂_k φ_j + ∫ ∂_k φ_i φ_j = boundary term (divergence)."""
    ref = reference_element(1, 2)
    for k in range(2):
        S = ref.C_ref[k] + ref.C_ref[k].T
        # row sums of S equal the boundary integral of φ_i n_k
        assert np.allclose(S.sum(), 0.0, atol=1e-12)


def test_d_ref_contracts_to_stiffness():
    ref = reference_element(2, 2)
    K = sum(ref.D_ref[k, k] for k in range(2))
    assert np.allclose(K, ref.K_ref, atol=1e-12)


def test_apply_stiffness_matches_blocks():
    ref = reference_element(1, 3)
    rng = np.random.default_rng(2)
    u = rng.standard_normal((5, ref.npe))
    h = rng.uniform(0.1, 1.0, 5)
    out = ref.apply_stiffness(u, h)
    blocks = ref.stiffness_blocks(h)
    expect = np.einsum("eij,ej->ei", blocks, u)
    assert np.allclose(out, expect)


def test_apply_mass_and_advection_consistency():
    ref = reference_element(1, 2)
    rng = np.random.default_rng(3)
    u = rng.standard_normal((4, ref.npe))
    h = np.full(4, 0.5)
    m = ref.apply_mass(u, h)
    expect = np.einsum("eij,ej->ei", ref.mass_blocks(h), u)
    assert np.allclose(m, expect)
    vel = rng.standard_normal((4, 2))
    c = ref.apply_advection(u, h, vel)
    Ce = np.einsum("fk,kij->fij", vel, ref.C_ref) * (h ** 1)[:, None, None]
    assert np.allclose(c, np.einsum("eij,ej->ei", Ce, u))


def test_flop_and_byte_counters_positive():
    ref = reference_element(2, 3)
    assert ref.matvec_flops_per_element() == 2 * 27 * 27 + 27
    assert ref.matvec_bytes_per_element() > 0


@settings(max_examples=20)
@given(p=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
def test_basis_interpolates_polynomials_exactly(p, seed):
    """Order-p basis reproduces degree-p 1D monomials in each axis."""
    b = LagrangeBasis(p, 2)
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 1, (10, 2))
    nodes = b.node_reference_coords()
    for deg in range(p + 1):
        coeffs = nodes[:, 0] ** deg
        vals = b.eval(pts) @ coeffs
        assert np.allclose(vals, pts[:, 0] ** deg, atol=1e-10)
