"""Dimension- and order-agnosticism tests.

The paper claims "the algorithms presented ... are dimension agnostic"
(the group's lineage includes 4-D space-time trees, Ishii et al. 2019)
and arbitrary p-refinement (§3.4: "for a given p-refinement, there are
(p+1)^3 nodes per element").  These tests exercise the machinery at
d = 4 (hexadecatrees) and p = 3 — configurations none of the standard
benches touch.
"""

import numpy as np
import pytest

from repro import Domain, build_mesh, build_uniform_mesh
from repro.core.balance import balance_2to1, is_balanced
from repro.core.construct import construct_adaptive, construct_uniform
from repro.core.octant import OctantSet, children, max_level, parent
from repro.core.treesort import is_sorted_linear, linearize, tree_sort
from repro.fem.basis import LagrangeBasis, local_node_offsets
from repro.geometry import SphereCarve


# -- 4D trees ---------------------------------------------------------------


def test_4d_max_level():
    assert max_level(4) == 15


def test_4d_children_and_parent():
    r = OctantSet.root(4)
    ch = children(r)
    assert len(ch) == 16
    back = parent(ch)
    assert np.all(back.anchors == 0)
    assert np.all(back.levels == 0)


def test_4d_uniform_construction():
    dom = Domain(dim=4)
    t = construct_uniform(dom, 2)
    assert len(t) == 16**2
    assert is_sorted_linear(t)


def test_4d_carved_construction_and_balance():
    """A 4-ball carved from the 4-cube (a space-time sphere)."""
    dom = Domain(SphereCarve([0.5] * 4, 0.3))
    t = construct_adaptive(dom, 1, 3)
    assert len(t) > 0
    bal = balance_2to1(dom, t)
    assert is_balanced(bal)
    assert is_sorted_linear(bal)
    # the carved region removed something
    assert len(construct_uniform(dom, 3)) < 16**3


def test_4d_nodes_and_matvec():
    """Full pipeline at d=4: nodes, gather, stiffness MATVEC."""
    dom = Domain(SphereCarve([0.5] * 4, 0.3))
    mesh = build_mesh(dom, 1, 2, p=1)
    assert mesh.npe == 16
    # linear reproduction across the 4D mesh
    pts = mesh.nodes.physical_coords()
    coef = np.array([1.0, -2.0, 0.5, 3.0])
    f = pts @ coef + 1.0
    loc = mesh.nodes.gather @ f
    off = local_node_offsets(1, 4)
    a = mesh.leaves.anchors.astype(np.int64)
    s = mesh.leaves.sizes.astype(np.int64)
    X = (2 * a[:, None, :] + 2 * off[None] * s[:, None, None]).reshape(-1, 4)
    expect = (X * mesh.nodes.h_node) @ coef + 1.0
    assert np.abs(loc - expect).max() < 1e-9
    # stiffness annihilates constants in 4D too
    from repro.core.matvec import MapBasedMatVec

    mv = MapBasedMatVec(mesh)
    assert np.abs(mv(np.ones(mesh.n_nodes))).max() < 1e-10


def test_4d_hilbert_keys_injective():
    from repro.core.sfc import HilbertOrder

    dom = Domain(dim=4)
    t = construct_uniform(dom, 2, curve="hilbert")
    keys = HilbertOrder().keys(t)
    assert len(np.unique(keys)) == len(t)
    assert is_sorted_linear(t, "hilbert")


# -- p = 3 -------------------------------------------------------------------


def test_p3_basis_is_nodal():
    b = LagrangeBasis(3, 2)
    assert b.npe == 16
    vals = b.eval(b.node_reference_coords())
    assert np.allclose(vals, np.eye(16), atol=1e-10)


def test_p3_uniform_node_count():
    mesh = build_uniform_mesh(Domain(dim=2), 3, p=3)
    assert mesh.n_nodes == (3 * 8 + 1) ** 2


def test_p3_cubic_reproduction_across_hanging():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 4, p=3)
    assert mesh.nodes.n_hanging_slots > 0
    pts = mesh.nodes.physical_coords()

    def func(p):
        return p[:, 0] ** 3 - 2 * p[:, 1] ** 3 + p[:, 0] * p[:, 1] ** 2 + 1

    loc = mesh.nodes.gather @ func(pts)
    off = local_node_offsets(3, 2)
    a = mesh.leaves.anchors.astype(np.int64)
    s = mesh.leaves.sizes.astype(np.int64)
    X = (6 * a[:, None, :] + 2 * off[None] * s[:, None, None]).reshape(-1, 2)
    expect = func(X * mesh.nodes.h_node)
    assert np.abs(loc - expect).max() < 1e-8


def test_p3_poisson_superconvergence():
    """p=3 beats p=1 by orders of magnitude on a smooth problem."""
    from repro.fem import PoissonProblem, l2_error

    def exact(p):
        return np.sin(np.pi * p[:, 0]) * np.sin(np.pi * p[:, 1])

    def f(p):
        return 2 * np.pi**2 * exact(p)

    m1 = build_uniform_mesh(Domain(dim=2), 4, p=1)
    m3 = build_uniform_mesh(Domain(dim=2), 4, p=3)
    e1 = l2_error(m1, PoissonProblem(m1, f=f).solve(rtol=1e-13), exact)
    e3 = l2_error(m3, PoissonProblem(m3, f=f).solve(rtol=1e-13), exact)
    assert e3 < e1 / 100
