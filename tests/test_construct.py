"""Tests for incomplete-octree construction (Algorithms 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import (
    construct_adaptive,
    construct_constrained,
    construct_constrained_recursive,
    construct_uniform,
)
from repro.core.domain import Domain
from repro.core.octant import OctantSet, max_level, octant_size
from repro.core.treesort import is_sorted_linear
from repro.geometry.predicate import RegionLabel
from repro.geometry.primitives import BoxRetain, SphereCarve, SphereRetain


def test_uniform_complete_counts():
    dom = Domain(dim=2)
    for lv in range(5):
        t = construct_uniform(dom, lv)
        assert len(t) == 4**lv
        assert is_sorted_linear(t)


def test_uniform_3d_counts():
    dom = Domain(dim=3)
    assert len(construct_uniform(dom, 2)) == 64


def test_uniform_level_out_of_range():
    with pytest.raises(ValueError):
        construct_uniform(Domain(dim=2), 99)


def test_carved_sphere_removes_interior():
    """Carving a disk removes cells fully inside it."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    t = construct_uniform(dom, 5)
    full = 4**5
    assert len(t) < full
    # removed area ~ pi r^2 fraction of cells
    removed = full - len(t)
    assert removed > 0.5 * np.pi * 0.3**2 * full


def test_carved_cells_never_in_output():
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    t = construct_uniform(dom, 5)
    labels = dom.classify_octants(t)
    assert not np.any(labels == RegionLabel.CARVED)


def test_retained_disk_covers_disk_only():
    dom = Domain(SphereRetain([0.5, 0.5], 0.25))
    t = construct_uniform(dom, 5)
    centers = dom.octant_centers(t)
    # every retained cell must intersect the closed disk: its centre is
    # within radius + half cell diagonal
    h = octant_size(5, 2) * dom.h_unit
    d = np.linalg.norm(centers - 0.5, axis=1)
    assert np.all(d <= 0.25 + h * np.sqrt(2) / 2 + 1e-12)


def test_channel_retain_box():
    dom = Domain(BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0)
    t = construct_uniform(dom, 4)
    assert len(t) == 16 * 4  # 16 x 4 cells of size 1/4


def test_adaptive_refines_boundary_only():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    t = construct_adaptive(dom, 3, 6)
    labels = dom.classify_octants(t)
    bdry = labels == RegionLabel.RETAIN_BOUNDARY
    assert np.all(t.levels[bdry] == 6)
    assert np.all(t.levels[~bdry] >= 3)
    assert t.levels.min() == 3


def test_adaptive_rejects_inverted_levels():
    with pytest.raises(ValueError):
        construct_adaptive(Domain(dim=2), 5, 3)


def test_adaptive_return_labels():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    t, lab = construct_adaptive(dom, 3, 5, return_labels=True)
    assert len(lab) == len(t)
    assert np.array_equal(lab, dom.classify_octants(t))


def test_adaptive_extra_refine():
    dom = Domain(dim=2)

    def near_origin(frontier, labels):
        lo, hi = frontier.physical_bounds(1.0)
        want = np.where(np.all(lo < 0.25, axis=1), 5, 0)
        return want

    t = construct_adaptive(dom, 2, 2, extra_refine=near_origin)
    lo, _ = t.physical_bounds(1.0)
    near = np.all(lo < 0.2, axis=1)
    assert t.levels[near].max() == 5


def test_constrained_no_coarser_than_seeds():
    dom = Domain(dim=2)
    m = max_level(2)
    size = 1 << (m - 4)
    seeds = OctantSet(
        np.array([[0, 0], [3 * size, 2 * size]], np.uint32),
        np.array([4, 4], np.uint8),
    )
    t = construct_constrained(dom, seeds)
    assert is_sorted_linear(t)
    # the leaf covering each seed anchor must be at level >= 4
    from repro.core.sfc import get_curve
    from repro.core.treesort import block_ends

    keys = get_curve("morton").keys(t)
    skeys = get_curve("morton").keys(seeds)
    pos = np.searchsorted(keys, skeys, side="right") - 1
    assert np.all(t.levels[pos] >= 4)


def test_constrained_empty_seeds_gives_root_cover():
    dom = Domain(dim=2)
    t = construct_constrained(dom, OctantSet.empty(2))
    assert len(t) == 1 and t.levels[0] == 0


def test_constrained_seed_dim_mismatch():
    with pytest.raises(ValueError):
        construct_constrained(Domain(dim=2), OctantSet.root(3))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_constrained_matches_recursive_reference(seed):
    """Vectorised frontier driver == faithful Algorithm-2 recursion."""
    rng = np.random.default_rng(seed)
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    m = max_level(2)
    n = 8
    levels = rng.integers(2, 6, n)
    anchors = np.empty((n, 2), np.uint32)
    for i, lv in enumerate(levels):
        size = 1 << (m - lv)
        anchors[i] = rng.integers(0, 1 << lv, 2) * size
    seeds = OctantSet(anchors, levels.astype(np.uint8))
    a = construct_constrained(dom, seeds)
    b = construct_constrained_recursive(dom, seeds)
    assert np.array_equal(a.anchors, b.anchors)
    assert np.array_equal(a.levels, b.levels)


def test_output_covers_subdomain_exactly():
    """Union of leaf areas equals the area of retained cells at the
    finest uniform refinement (no gaps, no overlaps)."""
    dom = Domain(SphereCarve([0.5, 0.5], 0.3))
    adaptive = construct_adaptive(dom, 2, 5)
    fine = construct_uniform(dom, 5)
    area = lambda t: float(np.sum((t.sizes.astype(np.float64) * dom.h_unit) ** 2))
    assert area(adaptive) == pytest.approx(area(fine), rel=1e-12)
