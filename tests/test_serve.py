"""Tests for repro.serve: typed requests, artifact caching, fingerprint
batching, deterministic scheduling and the service facade."""

import numpy as np
import pytest

from repro import obs
from repro.serve import (
    Rejected,
    SolverClient,
    SolverService,
    SolveRequest,
    build_entry,
    demo_workload,
    ensure_factor,
    solve_batch,
)

pytestmark = pytest.mark.serve

DISK = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.3}
SMALL_DISK = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.2}
TINY_DISK = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.15}


def _req(**kw):
    kw.setdefault("geometry", DISK)
    kw.setdefault("base_level", 2)
    kw.setdefault("boundary_level", 3)
    return SolveRequest(**kw)


# -- api: canonical digests and validation -----------------------------


def test_request_digest_canonical_across_spellings():
    a = _req(geometry={"shape": "sphere", "center": (0.5, 0.5), "radius": 0.3})
    # ints where floats are meant, list instead of tuple, reordered keys
    b = _req(geometry={"radius": 0.3, "center": [0.5, 0.5], "shape": "sphere"})
    assert a.digest == b.digest
    assert a.mesh_digest == b.mesh_digest
    assert a.batch_key == b.batch_key
    # RHS data changes the request identity but not the mesh/batch keys
    c = _req(f=2.0)
    assert c.digest != a.digest
    assert c.mesh_digest == a.mesh_digest
    assert c.batch_key == a.batch_key
    # tolerance is part of the batch key but not the mesh key
    d = _req(tol=1e-8)
    assert d.mesh_digest == a.mesh_digest
    assert d.batch_key != a.batch_key


def test_request_validation():
    with pytest.raises(ValueError, match="pde"):
        _req(pde="heat").validate()
    with pytest.raises(ValueError, match="shape"):
        _req(geometry={"shape": "torus"}).validate()
    with pytest.raises(ValueError, match="base_level"):
        _req(base_level=5, boundary_level=3).validate()
    with pytest.raises(ValueError, match="radius"):
        _req(geometry={"shape": "sphere", "center": (0.5, 0.5),
                       "radius": -1.0}).validate()
    _req().validate()  # the default request is valid


# -- admission control and deadlines -----------------------------------


def test_queue_full_typed_rejection():
    svc = SolverService(max_pending=2)
    assert svc.submit(_req(f=1.0)) is None
    assert svc.submit(_req(f=2.0)) is None
    rej = svc.submit(_req(f=3.0))
    assert isinstance(rej, Rejected)
    assert rej.status == "rejected" and rej.reason == "queue_full"
    # the rejection is part of the response stream
    assert svc.responses[0] is rej
    done = svc.drain()
    assert len(done) == 2 and all(r.ok for r in done)
    assert svc.stats()["status"] == {"ok": 2, "rejected": 1}


def test_deadline_exceeded():
    svc = SolverService(max_batch=4)
    # priority 0 dispatches first and its (cold) batch advances the
    # virtual clock well past the second request's deadline
    svc.submit(_req(priority=0))
    svc.submit(_req(geometry=SMALL_DISK, priority=5, deadline=10))
    done = svc.drain()
    by_reason = {r.reason: r for r in done}
    assert "deadline_exceeded" in by_reason
    rej = by_reason["deadline_exceeded"]
    assert rej.status == "rejected" and rej.t_done > 10


# -- caching ------------------------------------------------------------


@pytest.fixture
def traced():
    obs.disable()
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


def _span_names(spans, out=None):
    out = [] if out is None else out
    for sp in spans:
        out.append(sp.name)
        _span_names(sp.children, out)
        _span_names(list(sp._merged.values()), out)
    return out


def test_cache_hot_request_skips_all_build_work(traced):
    svc = SolverService()
    svc.submit(_req(f=1.0))
    svc.drain()
    cold = _span_names(obs.TRACER.roots)
    assert "build_mesh" in cold and "plan.context_build" in cold
    assert "serve.factor_build" in cold

    obs.reset()
    svc.submit(_req(f=2.0))  # same mesh + batch key, different RHS
    done = svc.drain()
    assert done[0].ok and done[0].cache_hit
    hot = _span_names(obs.TRACER.roots)
    assert "serve.batch" in hot and "serve.solve" in hot
    assert "build_mesh" not in hot
    assert "plan.context_build" not in hot
    assert "serve.factor_build" not in hot
    assert obs.get_value("serve.cache.hits") == 1
    assert svc.cache.hits == 1 and svc.cache.misses == 1


def test_eviction_and_interleaving_determinism():
    # size the budget from a measured entry so exactly ~1 entry fits
    probe = build_entry(_req())
    budget = int(probe.nbytes * 1.5)
    reqs = [
        _req(geometry=g, f=float(f), priority=pr)
        for g, f, pr in [
            (DISK, 1.0, 0), (SMALL_DISK, 1.5, 1), (TINY_DISK, 2.0, 2),
            (DISK, 2.5, 0), (SMALL_DISK, 3.0, 1),
        ]
    ]

    def run(stream):
        svc = SolverService(cache_bytes=budget, max_batch=4)
        for r in stream:
            assert svc.submit(r) is None
        svc.drain()
        return svc

    a = run(reqs)
    b = run(reversed(reqs))
    assert len(a.cache.eviction_log) > 0
    assert a.cache.eviction_log == b.cache.eviction_log
    assert a.stream_digest == b.stream_digest
    da = {r.request_digest: r.digest for r in a.responses}
    db = {r.request_digest: r.digest for r in b.responses}
    assert da == db


def test_stream_replay_bit_identical():
    def run():
        svc = SolverService(max_batch=8)
        for r in demo_workload(18, seed=1):
            svc.submit(r)
        svc.drain()
        return svc

    a, b = run(), run()
    assert a.stream_digest == b.stream_digest
    assert [r.digest for r in a.responses] == [r.digest for r in b.responses]


# -- batching ------------------------------------------------------------


def test_batch_solution_matches_single_request_solves():
    reqs = [_req(f=float(f), g=float(g))
            for f, g in [(1.0, 0.0), (2.5, 0.0), (0.5, 1.0), (3.0, -2.0)]]
    entry = build_entry(reqs[0])
    factor, built = ensure_factor(entry, reqs[0])
    assert built
    block = solve_batch(factor, reqs)
    assert block.solutions.shape[1] == len(reqs)
    for j, r in enumerate(reqs):
        single = solve_batch(factor, [r])
        scale = max(np.linalg.norm(single.solutions[:, 0]), 1.0)
        err = np.linalg.norm(block.solutions[:, j] - single.solutions[:, 0])
        assert err <= 1e-12 * scale


def test_service_batches_shared_fingerprints():
    svc = SolverService(max_batch=8)
    for f in (1.0, 2.0, 3.0, 4.0):
        svc.submit(_req(f=f))
    svc.submit(_req(geometry=SMALL_DISK, f=5.0))
    done = svc.drain()
    sizes = {r.request_digest: r.batch_size for r in done}
    assert sorted(sizes.values()) == [1, 4, 4, 4, 4]
    assert svc.stats()["batches"] == 2


def test_transport_batch_matches_transport_problem_run():
    from repro.fem.transport import TransportProblem

    req = SolveRequest(
        geometry=DISK, pde="transport", base_level=2, boundary_level=3,
        velocity=(1.0, 0.5), kappa=0.05, dt=0.2, steps=3, f=1.7,
    )
    entry = build_entry(req)
    factor, _ = ensure_factor(entry, req)
    out = solve_batch(factor, [req, req])
    mesh = entry.mesh
    prob = TransportProblem(
        mesh, np.tile([1.0, 0.5], (mesh.n_nodes, 1)), kappa=0.05, dt=0.2,
        dirichlet_mask=mesh.dirichlet_mask, dirichlet_value=0.0,
    )
    ref = prob.run(np.zeros(mesh.n_nodes), 3, source=1.7)
    for j in range(2):
        assert np.linalg.norm(out.solutions[:, j] - ref) <= 1e-12 * max(
            np.linalg.norm(ref), 1.0
        )


def test_client_solves_all_pde_kinds():
    svc = SolverService()
    client = SolverClient(svc)
    r1 = client.solve(_req(pde="poisson", f=2.0))
    r2 = client.solve(_req(pde="sbm", f=2.0))
    r3 = client.solve(SolveRequest(
        geometry=DISK, pde="transport", base_level=2, boundary_level=3,
        velocity=(1.0, 0.0), steps=2,
    ))
    assert r1.ok and r1.reason == "converged"
    assert r2.ok and r2.reason == "direct"
    assert r3.ok and r3.reason == "direct"
    # sbm shares the poisson request's mesh entry
    assert r2.cache_hit and r3.cache_hit
    assert len({r1.solution_digest, r2.solution_digest,
                r3.solution_digest}) == 3


# -- retry with backoff --------------------------------------------------


class _FlakyOnce:
    """Raise SolverBreakdown on each request's first attempt only."""

    def __init__(self):
        self.calls = 0

    def __call__(self, request, retries):
        from repro.resilience.faults import SolverBreakdown

        self.calls += 1
        if retries == 0:
            raise SolverBreakdown("injected", "breakdown", "first try fails")


def test_retry_with_backoff_recovers():
    svc = SolverService(fault_injector=_FlakyOnce(), backoff=500)
    svc.submit(_req(f=1.0))
    done = svc.drain()
    assert len(done) == 1
    (r,) = done
    assert r.ok and r.retries == 1
    assert r.t_done >= 500  # the backoff window actually elapsed


def test_retries_exhausted_is_typed_failure():
    def always_fail(request, retries):
        from repro.resilience.faults import SolverBreakdown

        raise SolverBreakdown("injected", "breakdown", "never succeeds")

    svc = SolverService(fault_injector=always_fail, max_retries=1)
    svc.submit(_req())
    done = svc.drain()
    (r,) = done
    assert r.status == "failed" and r.reason == "retries_exhausted"
    assert r.retries == 1
    assert svc.stats()["status"] == {"failed": 1}


# -- deadline edge case (regression) -------------------------------------


def test_deadline_equal_to_current_tick_is_expired():
    """A request whose deadline equals the current tick is already
    missed: the solve takes at least one tick, so dispatching it could
    never finish in time (regression: the old check used a strict
    inequality and dispatched it anyway)."""
    from repro.serve import PendingItem

    item = PendingItem(request=_req(deadline=10), digest="d",
                       t_submit=100, seq=1)
    assert not item.expired(109)
    assert item.expired(110)  # deadline == now: reject, don't dispatch
    assert item.expired(111)


def test_deadline_equal_tick_rejected_through_service():
    svc = SolverService()
    svc.submit(_req(priority=0, deadline=0))
    done = svc.drain()
    (r,) = done
    assert r.status == "rejected" and r.reason == "deadline_exceeded"


# -- per-cache gauges and the step loop ----------------------------------


def test_named_caches_publish_labeled_gauges(traced):
    """Two services with named caches must not overwrite each other's
    byte/entry gauges — fleet-stats reads per-shard cache pressure from
    the ``cache=<name>`` label."""
    a = SolverService(name="shardA")
    b = SolverService(name="shardB")
    a.submit(_req(f=1.0))
    a.drain()
    b.submit(_req(geometry=SMALL_DISK, f=1.0))
    b.drain()
    bytes_a = obs.get_value("serve.cache.bytes", cache="shardA")
    bytes_b = obs.get_value("serve.cache.bytes", cache="shardB")
    assert bytes_a and bytes_b and bytes_a != bytes_b
    assert obs.get_value("serve.cache.entries", cache="shardA") == 1
    assert obs.get_value("serve.cache.misses", cache="shardB") == 1
    # unnamed services keep the label-free series
    c = SolverService()
    c.submit(_req(f=2.0))
    c.drain()
    assert obs.get_value("serve.cache.entries") == 1
    assert a.cache.stats()["name"] == "shardA"


def test_step_loop_equivalent_to_drain():
    def run(stepwise):
        svc = SolverService(max_batch=4)
        for r in demo_workload(10, seed=3):
            svc.submit(r)
        if stepwise:
            done = []
            while svc.scheduler.depth:
                done.extend(svc.step())
        else:
            done = svc.drain()
        return svc, done

    a, da = run(stepwise=True)
    b, db = run(stepwise=False)
    assert [r.digest for r in da] == [r.digest for r in db]
    assert a.stream_digest == b.stream_digest


# -- demo workload -------------------------------------------------------


def test_demo_workload_deterministic_and_mixed():
    a = demo_workload(30, seed=0)
    b = demo_workload(30, seed=0)
    assert [r.digest for r in a] == [r.digest for r in b]
    kinds = {r.pde for r in a}
    assert kinds == {"poisson", "sbm", "transport"}
    assert [r.digest for r in demo_workload(30, seed=1)] != [
        r.digest for r in a
    ]
