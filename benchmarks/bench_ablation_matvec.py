"""Ablation — traversal-based vs element-to-node-map MATVEC.

The paper's design choice (§3.5): traverse the tree so elemental nodes
become contiguous, instead of indirect gathers through an
element-to-node map.  In C the traversal wins on memory locality; in
numpy the map-based path is a single sparse gather + batched matmul, so
it is the production operator here.  This bench quantifies both (and
pytest-benchmark times the map-based one), records the traversal's
phase breakdown, and asserts the two agree to machine precision — the
correctness half of the claim that matters for the reproduction.
"""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.core.matvec import (
    MapBasedMatVec,
    TraversalPlan,
    TraversalTimers,
    traversal_matvec,
)
from repro.geometry import SphereCarve

from _util import ResultTable


@pytest.fixture(scope="module")
def mesh():
    dom = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    return build_mesh(dom, 4, 7, p=1)


def test_map_based_matvec_speed(benchmark, mesh):
    mv = MapBasedMatVec(mesh)
    u = np.linspace(0, 1, mesh.n_nodes)
    benchmark(mv, u)


def test_traversal_vs_map_ablation(benchmark, mesh):
    mv = MapBasedMatVec(mesh)
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    plan = TraversalPlan(mesh)
    timers = TraversalTimers()

    y_tr = benchmark.pedantic(
        lambda: traversal_matvec(mesh, u, plan=plan, timers=timers),
        rounds=1, iterations=1,
    )
    y_map = mv(u)
    t = ResultTable(
        "ablation_matvec",
        f"Ablation: traversal vs map-based MATVEC "
        f"({mesh.n_elem} elements, {mesh.n_nodes} DOFs)",
    )
    t.row(f"max |traversal - map| = {np.abs(y_tr - y_map).max():.3e}")
    t.row(f"traversal phases: top-down {timers.top_down:.3f}s, "
          f"leaf {timers.leaf:.3f}s, bottom-up {timers.bottom_up:.3f}s")
    t.row("(in numpy the map-based gather is the fast path; the traversal "
          "is the faithful reference of §3.5)")
    t.save()
    assert np.allclose(y_tr, y_map, atol=1e-10)
    assert timers.top_down > 0 and timers.leaf > 0
