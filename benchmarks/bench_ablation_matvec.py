"""Ablation — traversal-based vs element-to-node-map MATVEC.

The paper's design choice (§3.5): traverse the tree so elemental nodes
become contiguous, instead of indirect gathers through an
element-to-node map.  In C the traversal wins on memory locality; in
numpy the map-based path is a single sparse gather + batched matmul, so
it is the production operator here.  This bench quantifies both (and
pytest-benchmark times the map-based one), records the traversal's
phase breakdown, and asserts the two agree to machine precision — the
correctness half of the claim that matters for the reproduction.
"""

import time

import numpy as np
import pytest

from repro import Domain, build_mesh, obs
from repro.analysis import measured_kernel_points
from repro.core.matvec import MapBasedMatVec, TraversalPlan, traversal_matvec
from repro.geometry import SphereCarve
from repro.kernels import available_backends, backend_names, use_backend
from repro.parallel import (
    SimComm,
    analyze_partition,
    distributed_matvec,
    partition_mesh,
)
from repro.parallel.ghost import ExchangePlan, exchange_plan

from _util import ResultTable


@pytest.fixture(scope="module")
def mesh():
    dom = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    return build_mesh(dom, 4, 7, p=1)


def test_map_based_matvec_speed(benchmark, mesh):
    mv = MapBasedMatVec(mesh)
    u = np.linspace(0, 1, mesh.n_nodes)
    benchmark(mv, u)


def test_traversal_vs_map_ablation(benchmark, mesh):
    mv = MapBasedMatVec(mesh)
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    plan = TraversalPlan(mesh)

    obs.reset()
    obs.enable()
    try:
        y_tr = benchmark.pedantic(
            lambda: traversal_matvec(mesh, u, plan=plan),
            rounds=1, iterations=1,
        )
    finally:
        obs.disable()
    phases = {
        p.split("/")[-1]: s
        for p, s in obs.summary()["spans"].items()
        if p.startswith("matvec.traversal/")
    }
    y_map = mv(u)
    t = ResultTable(
        "ablation_matvec",
        f"Ablation: traversal vs map-based MATVEC "
        f"({mesh.n_elem} elements, {mesh.n_nodes} DOFs)",
    )
    t.row(f"max |traversal - map| = {np.abs(y_tr - y_map).max():.3e}")
    t.row("traversal phases: " + ", ".join(
        f"{name.removeprefix('matvec.')} {phases[name]['duration']:.3f}s"
        for name in ("matvec.top_down", "matvec.leaf", "matvec.bottom_up")
    ))
    t.row("(in numpy the map-based gather is the fast path; the traversal "
          "is the faithful reference of §3.5)")
    for name, s in phases.items():
        t.record(phase=name, seconds=s["duration"], count=s["count"],
                 **s["counters"])
    t.save()
    assert np.allclose(y_tr, y_map, atol=1e-10)
    assert phases["matvec.top_down"]["duration"] > 0
    assert phases["matvec.leaf"]["duration"] > 0


def test_backend_ablation(mesh):
    """Kernel-backend ablation on the serial traversal MATVEC.

    Times each registered :mod:`repro.kernels` backend on the same
    traversal plan, asserts same-backend runs are bit-identical and
    cross-backend results agree to 1e-10, records the achieved
    fraction-of-peak per kernel per backend into the bench.v1 sidecar,
    and requires the best non-default backend to beat the numpy
    reference by >= 1.5x (the tentpole acceptance bar)."""
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    plan = TraversalPlan(mesh)
    mv = MapBasedMatVec(mesh)
    repeats = 3
    avail = available_backends()

    t = ResultTable(
        "backend_ablation_matvec",
        f"Kernel backends: serial traversal MATVEC "
        f"({mesh.n_elem} elements, {mesh.n_nodes} DOFs, {repeats} applies)",
    )
    results, timings = {}, {}
    obs.reset()
    obs.enable()
    try:
        for name in backend_names():
            if not avail[name]:
                t.row(f"{name:8s}: skipped (backend unavailable)")
                t.record(column="backend", backend=name, available=False)
                continue
            with use_backend(name):
                y0 = traversal_matvec(mesh, u, plan=plan)  # warm-up / jit
                y1 = traversal_matvec(mesh, u, plan=plan)
                assert y0.tobytes() == y1.tobytes(), (
                    f"{name}: same-backend runs are not bit-identical"
                )
                t0 = time.perf_counter()
                for _ in range(repeats):
                    y1 = traversal_matvec(mesh, u, plan=plan)
                dt = (time.perf_counter() - t0) / repeats
                mv(u)  # exercise gather/elem_apply/scatter counters too
            results[name], timings[name] = y1, dt
            t.row(f"{name:8s}: {dt * 1e3:9.3f} ms/apply")
            t.record(
                column="backend", backend=name, available=True,
                seconds_per_apply=dt, repeats=repeats,
            )
    finally:
        obs.disable()

    for name, y in results.items():
        assert np.allclose(y, results["numpy"], atol=1e-10), (
            f"{name} disagrees with numpy beyond tolerance"
        )
    # achieved fraction-of-peak per kernel per backend (measured by the
    # facade counters of the runs above)
    for m in measured_kernel_points():
        t.row(
            f"  {m.kernel:10s} [{m.backend:7s}] AI={m.arithmetic_intensity:6.3f} "
            f"achieved={m.achieved_gflops / 1e9:7.3f} GFLOP/s "
            f"fraction-of-peak={m.fraction_of_peak:.4f}"
        )
        t.record(column="measured_kernel", **m.to_doc())

    best_name, best_dt = min(
        ((n, dt) for n, dt in timings.items() if n != "numpy"),
        key=lambda kv: kv[1],
    )
    speedup = timings["numpy"] / best_dt
    t.row(f"best non-default backend: {best_name} ({speedup:.2f}x vs numpy)")
    t.record(column="best_backend", backend=best_name, speedup=speedup)
    t.save()
    assert speedup >= 1.5, (
        f"best backend {best_name} only {speedup:.2f}x over numpy (< 1.5x)"
    )


def test_plan_reuse_vs_rebuild(mesh):
    """Operator-plan ablation: 50 repeated distributed MATVEC applies
    with the cached :class:`ExchangePlan` vs rebuilding the plan on
    every call (the pre-plan-layer behaviour, which re-derived exchange
    dicts and re-CSR'd the gather per apply)."""
    nranks, repeats = 8, 50
    layout = analyze_partition(mesh, partition_mesh(mesh, nranks))
    comm = SimComm(nranks)
    rng = np.random.default_rng(1)
    u = rng.standard_normal(mesh.n_nodes)

    plan = exchange_plan(mesh, layout)  # built once, cached on the layout
    y_cached = distributed_matvec(mesh, layout, u, comm, plan=plan)  # warm-up
    t0 = time.perf_counter()
    for _ in range(repeats):
        y_cached = distributed_matvec(mesh, layout, u, comm, plan=plan)
    t_cached = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(repeats):
        y_rebuilt = distributed_matvec(
            mesh, layout, u, comm, plan=ExchangePlan(mesh, layout)
        )
    t_rebuild = time.perf_counter() - t0

    speedup = t_rebuild / t_cached
    t = ResultTable(
        "plan_reuse_matvec",
        f"Operator-plan reuse: {repeats} distributed MATVEC applies "
        f"({mesh.n_elem} elements, {nranks} ranks)",
    )
    t.row(f"cached plan   : {t_cached / repeats * 1e3:8.3f} ms/apply")
    t.row(f"rebuild/call  : {t_rebuild / repeats * 1e3:8.3f} ms/apply")
    t.row(f"speedup       : {speedup:.2f}x")
    t.record(
        column="plan_reuse_vs_rebuild",
        nranks=nranks,
        repeats=repeats,
        n_elem=mesh.n_elem,
        cached_seconds=t_cached,
        rebuild_seconds=t_rebuild,
        speedup=speedup,
    )
    t.save()
    assert np.array_equal(y_cached, y_rebuilt)
    assert speedup >= 3.0, f"plan reuse speedup {speedup:.2f}x < 3x"
