"""Serving throughput — cold vs cache-hot vs batched multi-RHS.

Measures what the :mod:`repro.serve` stack buys on a 30-request
workload over three discretizations:

* **cold** — empty artifact cache: every fingerprint pays mesh
  construction + operator-context build + factorization;
* **hot sequential** — warm cache, ``max_batch=1``: requests skip all
  build work but each one runs its own single-RHS solve;
* **hot batched** — warm cache, ``max_batch=10``: requests sharing a
  fingerprint solve as one multi-RHS block (one SpMM per CG iteration
  instead of k SpMVs).

The acceptance bar is batched >= 2x hot-sequential throughput; the
speedup and the per-request latency percentiles (measured wall time,
summarised with the deterministic :class:`repro.obs.Histogram`) land
in ``benchmarks/results/serve_throughput.{txt,json}`` (bench.v1
sidecar with structured records).
"""

import time

from repro.obs import Histogram
from repro.serve import SolveRequest, SolverService

from _util import ResultTable

N_REQUESTS = 30
SPECS = [
    {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.3},
    {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.2},
    {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.15},
]


def _workload() -> list[SolveRequest]:
    return [
        SolveRequest(
            geometry=SPECS[i % len(SPECS)],
            base_level=2,
            boundary_level=5,
            f=1.0 + 0.03 * i,
            priority=i % 3,
        )
        for i in range(N_REQUESTS)
    ]


def _run_stream(svc: SolverService, hist: Histogram | None = None) -> float:
    reqs = _workload()
    t0 = time.perf_counter()
    if hist is None:
        for r in reqs:
            svc.submit(r)
        done = svc.drain()
    else:
        done = []
        for r in reqs:  # per-request wall latency needs one drain each
            t1 = time.perf_counter()
            svc.submit(r)
            done += svc.drain()
            hist.observe(time.perf_counter() - t1)
    elapsed = time.perf_counter() - t0
    assert len(done) == N_REQUESTS
    assert all(resp.ok for resp in done)
    return elapsed


def _best_of(n: int, fn) -> float:
    return min(fn() for _ in range(n))


def test_serve_throughput():
    table = ResultTable(
        "serve_throughput",
        "Serving throughput: cold vs cache-hot vs batched multi-RHS "
        f"({N_REQUESTS} requests, {len(SPECS)} discretizations)",
    )

    # cold: every fingerprint pays the full build pipeline
    svc_seq = SolverService(max_batch=1)
    t_cold = _run_stream(svc_seq)

    # hot sequential: warm cache, single-RHS solves, per-request latency
    hist = Histogram()
    t_hot_seq = _best_of(3, lambda: _run_stream(svc_seq, hist))

    # hot batched: warm the batched service once, then time it
    svc_bat = SolverService(max_batch=10)
    _run_stream(svc_bat)
    t_hot_bat = _best_of(3, lambda: _run_stream(svc_bat))

    speedup_hot = t_cold / t_hot_seq
    speedup_bat = t_hot_seq / t_hot_bat
    rps = N_REQUESTS / t_hot_bat
    s = hist.summary()

    table.row(f"{'mode':<18} {'seconds':>9} {'req/s':>8}")
    for mode, t in [("cold", t_cold), ("hot sequential", t_hot_seq),
                    ("hot batched", t_hot_bat)]:
        table.row(f"{mode:<18} {t:>9.4f} {N_REQUESTS / t:>8.1f}")
    table.row(
        f"cache-hot speedup over cold:      {speedup_hot:>6.2f}x"
    )
    table.row(
        f"batched speedup over sequential:  {speedup_bat:>6.2f}x  (bar: >= 2x)"
    )
    table.row(
        "hot sequential per-request latency (s): "
        f"p50={s['p50']:.2e} p95={s['p95']:.2e} p99={s['p99']:.2e} "
        f"max={s['max']:.2e}"
    )
    st = svc_bat.stats()
    table.row(
        f"batched service: {st['batches']} batches, "
        f"mean size {st['mean_batch_size']}, cache hits {st['cache']['hits']}"
    )
    table.record(mode="cold", seconds=t_cold)
    table.record(mode="hot_sequential", seconds=t_hot_seq,
                 latency_p50=s["p50"], latency_p95=s["p95"],
                 latency_p99=s["p99"])
    table.record(mode="hot_batched", seconds=t_hot_bat,
                 requests_per_second=rps)
    table.record(speedup_hot_over_cold=speedup_hot,
                 speedup_batched_over_sequential=speedup_bat)
    table.save()

    assert speedup_hot > 1.0, "cache-hot must beat cold"
    assert speedup_bat >= 2.0, (
        f"batched multi-RHS speedup {speedup_bat:.2f}x below the 2x bar"
    )


if __name__ == "__main__":
    test_serve_throughput()
