"""Fleet shard scaling — virtual throughput and tail latency vs N.

Runs the same seeded zipf/bursty workload through 1-, 2-, 4- and
8-shard fleets and reports, per shard count:

* **virtual throughput** — requests per kilotick of fleet makespan
  (the furthest any shard clock advanced);
* **tail latency** — p50/p95/p99 of the virtual arrival-to-completion
  latency (deterministic :class:`repro.obs.Histogram` percentiles);
* steal and shared-L2 activity, which is *why* the skewed workload
  scales: consistent-hash routing hot-spots the zipf-popular meshes
  onto one shard, stealing rebalances the backlog, and the second tier
  turns the thief's rebuild into a cheap fetch.

Two acceptance bars gate the run:

* the 4-shard fleet must reach **>= 2x** the single-shard virtual
  throughput on the identical workload;
* a mid-run shard kill (after the arrival phase, stealing quiescent —
  the certified fail-over scenario) must recover with a **fleet digest
  bit-identical** to the failure-free run's.

Everything is on the virtual clock, so every number in the table —
including the percentiles — is bit-reproducible across machines.
Results land in ``benchmarks/results/fleet_scaling.{txt,json}``
(bench.v1 sidecar with structured records).
"""

from repro.fleet import FleetService, synthetic_workload

from _util import ResultTable

N_REQUESTS = 96
SEED = 11
SHARD_COUNTS = (1, 2, 4, 8)


def _workload():
    # compute-bound regime: interarrival gaps well below the ~200-tick
    # per-request cost, so queues build and shard parallelism matters
    return synthetic_workload(
        N_REQUESTS, seed=SEED, mean_gap=20, burst_gap=4, pool=8
    )


def _fleet(n_shards, *, stealing=True, ckpt_dir=None):
    return FleetService(
        n_shards, cache_bytes=8 << 20, steal_threshold=4,
        steal_latency=100, stealing=stealing, ckpt_dir=ckpt_dir,
        ckpt_interval=4,
    )


def test_fleet_scaling(tmp_path=None):
    table = ResultTable(
        "fleet_scaling",
        f"Fleet shard scaling ({N_REQUESTS} zipf/bursty requests, "
        f"seed {SEED}, shard counts {list(SHARD_COUNTS)})",
    )
    wl = _workload()
    table.row(
        f"{'shards':>6} {'makespan':>9} {'req/ktick':>10} {'p50':>7} "
        f"{'p95':>7} {'p99':>7} {'steals':>7} {'l2 hits':>8}"
    )
    thr = {}
    for n in SHARD_COUNTS:
        fleet = _fleet(n)
        fleet.run(wl)
        st = fleet.stats()
        assert st["status"] == {"ok": N_REQUESTS}, st["status"]
        lat = st["latency_ticks"]
        thr[n] = 1000.0 * N_REQUESTS / fleet.makespan
        table.row(
            f"{n:>6} {fleet.makespan:>9} {thr[n]:>10.2f} "
            f"{lat['p50']:>7.0f} {lat['p95']:>7.0f} {lat['p99']:>7.0f} "
            f"{st['steals']:>7} {st['l2']['hits']:>8}"
        )
        table.record(
            shards=n, makespan_ticks=fleet.makespan,
            requests_per_kilotick=thr[n], latency_p50=lat["p50"],
            latency_p95=lat["p95"], latency_p99=lat["p99"],
            steals=st["steals"], stolen_items=st["stolen_items"],
            l2_hits=st["l2"]["hits"], fleet_digest=st["fleet_digest"],
        )
    speedup = thr[4] / thr[1]
    table.row(f"4-shard speedup over single shard: {speedup:.2f}x  "
              "(bar: >= 2x)")

    # fail-over recovery: kill the busiest shard after the last arrival
    # (the certified bit-identity scenario) and compare fleet digests
    base = _fleet(4, stealing=False)
    base.run(wl)
    kill_tick = max(a.tick for a in wl) + 1
    victim = max(sorted(base.routed), key=lambda s: base.routed[s])
    ckpt_dir = None if tmp_path is None else tmp_path / "ckpt"
    killed = _fleet(4, stealing=False, ckpt_dir=ckpt_dir)
    killed.run(wl, kill=(kill_tick, victim))
    ev = killed.failover_events[0]
    recovered = killed.fleet_digest == base.fleet_digest
    table.row(f"fail-over: {ev.describe()}")
    table.row(
        f"recovered fleet digest == failure-free: {recovered}  "
        f"({killed.fleet_digest[:16]}…)"
    )
    table.record(
        kill_tick=kill_tick, victim=victim, replayed=ev.replayed,
        recovered_bit_identical=recovered,
        speedup_4shard_over_1shard=speedup,
    )
    table.save()

    assert speedup >= 2.0, (
        f"4-shard virtual throughput {speedup:.2f}x below the 2x bar"
    )
    assert recovered, "recovered fleet digest diverged from failure-free run"


if __name__ == "__main__":
    test_fleet_scaling()
