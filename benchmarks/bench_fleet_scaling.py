"""Fleet shard scaling — virtual throughput and tail latency vs N.

Runs the same seeded zipf/bursty workload through 1-, 2-, 4- and
8-shard fleets and reports, per shard count:

* **virtual throughput** — requests per kilotick of fleet makespan
  (the furthest any shard clock advanced);
* **tail latency** — p50/p95/p99 of the virtual arrival-to-completion
  latency (deterministic :class:`repro.obs.Histogram` percentiles);
* steal and shared-L2 activity, which is *why* the skewed workload
  scales: consistent-hash routing hot-spots the zipf-popular meshes
  onto one shard, stealing rebalances the backlog, and the second tier
  turns the thief's rebuild into a cheap fetch.

Two acceptance bars gate the run:

* the 4-shard fleet must reach **>= 2x** the single-shard virtual
  throughput on the identical workload;
* a mid-run shard kill (after the arrival phase, stealing quiescent —
  the certified fail-over scenario) must recover with a **fleet digest
  bit-identical** to the failure-free run's;
* attaching the flight recorder must not perturb virtual time at all:
  a recorded 4-shard run must reproduce the recorder-free makespan and
  fleet digest **exactly** (the ISSUE bar of "within 10%" is met with
  zero margin — recording is off the virtual clock by construction).

Each scaling row also reports where the latency went: the flight
recorder's per-stage attribution (queue wait vs batch assembly vs
build/factor vs solve) is aggregated into mean-ticks-per-request
columns and into the JSON sidecar (``stage_mean_ticks``).

Everything is on the virtual clock, so every number in the table —
including the percentiles — is bit-reproducible across machines.
Results land in ``benchmarks/results/fleet_scaling.{txt,json}``
(bench.v1 sidecar with structured records).
"""

from repro.fleet import FleetService, synthetic_workload
from repro.obs import EventLog
from repro.obs.reqtrace import STAGES, stage_histograms

from _util import ResultTable

N_REQUESTS = 96
SEED = 11
SHARD_COUNTS = (1, 2, 4, 8)


def _workload():
    # compute-bound regime: interarrival gaps well below the ~200-tick
    # per-request cost, so queues build and shard parallelism matters
    return synthetic_workload(
        N_REQUESTS, seed=SEED, mean_gap=20, burst_gap=4, pool=8
    )


def _fleet(n_shards, *, stealing=True, ckpt_dir=None, recorder=None, **kw):
    return FleetService(
        n_shards, cache_bytes=8 << 20, steal_threshold=4,
        steal_latency=100, stealing=stealing, ckpt_dir=ckpt_dir,
        ckpt_interval=4, recorder=recorder, **kw,
    )


def _stage_means(recorder):
    """Mean ticks per request for each serving stage (+ e2e)."""
    hists = stage_histograms(recorder)
    return {
        stage: (h.sum / h.count if h.count else 0.0)
        for stage, h in hists.items()
    }


def test_fleet_scaling(tmp_path=None):
    table = ResultTable(
        "fleet_scaling",
        f"Fleet shard scaling ({N_REQUESTS} zipf/bursty requests, "
        f"seed {SEED}, shard counts {list(SHARD_COUNTS)})",
    )
    wl = _workload()
    table.row(
        f"{'shards':>6} {'makespan':>9} {'req/ktick':>10} {'p50':>7} "
        f"{'p95':>7} {'p99':>7} {'steals':>7} {'l2 hits':>8}"
    )
    thr = {}
    means = {}
    digests = {}
    for n in SHARD_COUNTS:
        rec = EventLog()
        fleet = _fleet(n, recorder=rec)
        fleet.run(wl)
        st = fleet.stats()
        assert st["status"] == {"ok": N_REQUESTS}, st["status"]
        lat = st["latency_ticks"]
        thr[n] = 1000.0 * N_REQUESTS / fleet.makespan
        means[n] = _stage_means(rec)
        digests[n] = (fleet.makespan, st["fleet_digest"])
        table.row(
            f"{n:>6} {fleet.makespan:>9} {thr[n]:>10.2f} "
            f"{lat['p50']:>7.0f} {lat['p95']:>7.0f} {lat['p99']:>7.0f} "
            f"{st['steals']:>7} {st['l2']['hits']:>8}"
        )
        table.record(
            shards=n, makespan_ticks=fleet.makespan,
            requests_per_kilotick=thr[n], latency_p50=lat["p50"],
            latency_p95=lat["p95"], latency_p99=lat["p99"],
            steals=st["steals"], stolen_items=st["stolen_items"],
            l2_hits=st["l2"]["hits"], fleet_digest=st["fleet_digest"],
            event_digest=rec.digest, n_events=len(rec),
            stage_mean_ticks=means[n],
        )
    speedup = thr[4] / thr[1]
    table.row(f"4-shard speedup over single shard: {speedup:.2f}x  "
              "(bar: >= 2x)")

    table.row("")
    table.row("per-stage mean latency (ticks/request, flight-recorder "
              "attribution):")
    table.row(f"{'shards':>6} " + " ".join(f"{s:>7}" for s in STAGES)
              + f" {'e2e':>8}")
    for n in SHARD_COUNTS:
        m = means[n]
        table.row(f"{n:>6} " + " ".join(f"{m[s]:>7.0f}" for s in STAGES)
                  + f" {m['e2e']:>8.0f}")

    # recorder overhead: recording lives off the virtual clock, so a
    # recorder-free rerun must land the identical makespan and digest
    bare = _fleet(4)
    bare.run(wl)
    rec_makespan, rec_digest = digests[4]
    no_overhead = (bare.makespan == rec_makespan
                   and bare.fleet_digest == rec_digest)
    table.row("")
    table.row(
        f"recorded vs recorder-free 4-shard run: makespan {rec_makespan} "
        f"vs {bare.makespan}, digests equal: "
        f"{bare.fleet_digest == rec_digest}"
    )
    table.record(recording_overhead_ticks=rec_makespan - bare.makespan,
                 recording_bit_identical=no_overhead)

    # fail-over recovery: kill the busiest shard after the last arrival
    # (the certified bit-identity scenario) and compare fleet digests
    base = _fleet(4, stealing=False)
    base.run(wl)
    kill_tick = max(a.tick for a in wl) + 1
    victim = max(sorted(base.routed), key=lambda s: base.routed[s])
    ckpt_dir = None if tmp_path is None else tmp_path / "ckpt"
    killed = _fleet(4, stealing=False, ckpt_dir=ckpt_dir)
    killed.run(wl, kill=(kill_tick, victim))
    ev = killed.failover_events[0]
    recovered = killed.fleet_digest == base.fleet_digest
    table.row(f"fail-over: {ev.describe()}")
    table.row(
        f"recovered fleet digest == failure-free: {recovered}  "
        f"({killed.fleet_digest[:16]}…)"
    )
    table.record(
        kill_tick=kill_tick, victim=victim, replayed=ev.replayed,
        recovered_bit_identical=recovered,
        speedup_4shard_over_1shard=speedup,
    )

    # straggler tail latency: the busiest shard runs 10x slow for the
    # whole run (stealing off, so nothing else rebalances); hedged
    # requests must claw back at least half of the lost p99
    from repro.chaos import ChaosSchedule
    from repro.fleet.defense import HedgePolicy

    def straggler_fleet(hedge=None):
        return _fleet(
            4, stealing=False,
            chaos=ChaosSchedule().slow(victim, 0, 1 << 30, 10),
            hedge=hedge,
        )

    # the delay is pinned (unreachable min_samples): under a whole-run
    # straggler the adaptive p95 is itself straggler-inflated, so the
    # observed-latency recipe never fires — the classic feedback trap
    hedge_policy = HedgePolicy(initial_delay=2_000, min_delay=1_000,
                               min_samples=10**9, transfer_latency=100)
    p99_clean = base.stats()["latency_ticks"]["p99"]
    no_hedge = straggler_fleet()
    no_hedge.run(wl)
    p99_no_hedge = no_hedge.stats()["latency_ticks"]["p99"]
    hedged = straggler_fleet(hedge=hedge_policy)
    hedged.run(wl)
    p99_hedged = hedged.stats()["latency_ticks"]["p99"]
    lost_no_hedge = p99_no_hedge - p99_clean
    lost_hedged = max(p99_hedged - p99_clean, 1.0)
    recovery = lost_no_hedge / lost_hedged
    table.row("")
    table.row(f"straggler tail ({victim} 10x slow, 4 shards, "
              "stealing off):")
    table.row(f"{'config':>12} {'p99':>9} {'lost p99':>9} {'hedges':>7}")
    table.row(f"{'clean':>12} {p99_clean:>9.0f} {0:>9.0f} {'-':>7}")
    table.row(f"{'no hedge':>12} {p99_no_hedge:>9.0f} "
              f"{lost_no_hedge:>9.0f} {0:>7}")
    table.row(f"{'hedged':>12} {p99_hedged:>9.0f} "
              f"{p99_hedged - p99_clean:>9.0f} "
              f"{hedged.hedges_fired:>7}")
    table.row(f"hedging recovered {recovery:.1f}x of the lost p99 "
              "(bar: >= 2x)")
    table.record(
        straggler_victim=victim,
        straggler_p99_clean=p99_clean,
        straggler_p99_no_hedge=p99_no_hedge,
        straggler_p99_hedged=p99_hedged,
        straggler_hedges_fired=hedged.hedges_fired,
        straggler_hedge_wins=hedged.hedge_wins,
        straggler_p99_recovery=recovery,
    )
    table.save()

    assert speedup >= 2.0, (
        f"4-shard virtual throughput {speedup:.2f}x below the 2x bar"
    )
    assert recovered, "recovered fleet digest diverged from failure-free run"
    assert no_overhead, (
        "flight recorder perturbed the virtual clock: "
        f"makespan {rec_makespan} vs {bare.makespan}"
    )
    assert hedged.hedges_fired > 0, "straggler scenario never hedged"
    assert recovery >= 2.0, (
        f"hedging recovered only {recovery:.2f}x of the straggler's "
        "lost p99 (bar: >= 2x)"
    )


if __name__ == "__main__":
    test_fleet_scaling()
