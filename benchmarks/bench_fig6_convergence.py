"""E3 — Fig. 6: Poisson convergence on a carved 2-D disk.

−Δu = 1 on the disk R = 0.5 centred in the unit square, u = 0 on the
circle; exact solution u = (R² − r²)/4.  Imposing the boundary data at
the voxelated boundary nodes ("naive") is first-order accurate in both
L2 and L∞ because the data lands a distance O(h) from the true circle;
the Shifted Boundary Method recovers the optimal second order for
linear elements — exactly the paper's Fig. 6.
"""

import numpy as np
import pytest

from repro import Domain, build_uniform_mesh
from repro.analysis import fit_rate
from repro.fem import PoissonProblem, l2_error, linf_error
from repro.geometry import SphereRetain

from _util import ResultTable

R = 0.5
CENTER = np.array([0.5, 0.5])


def exact(pts):
    r2 = ((pts - CENTER) ** 2).sum(axis=1)
    return 0.25 * (R * R - r2)


def run_fig6(levels=(4, 5, 6, 7)):
    dom = Domain(SphereRetain(CENTER, R))
    out = {}
    for method in ("nodal", "sbm"):
        rows = []
        for lv in levels:
            mesh = build_uniform_mesh(dom, lv, p=1)
            u = PoissonProblem(mesh, f=1.0, dirichlet=0.0, method=method).solve()
            rows.append((lv, 2.0**-lv, l2_error(mesh, u, exact),
                         linf_error(mesh, u, exact)))
        out[method] = rows
    return out


def test_fig6_convergence(benchmark):
    out = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    t = ResultTable(
        "fig6_convergence",
        "Fig 6: Poisson on a 2D disk — naive voxel BC vs Shifted Boundary Method",
    )
    rates = {}
    for method, rows in out.items():
        t.row(f"-- {method}")
        t.row(f"{'level':>6} {'h':>9} {'L2':>12} {'Linf':>12}")
        for lv, h, e2, einf in rows:
            t.row(f"{lv:>6} {h:>9.5f} {e2:>12.4e} {einf:>12.4e}")
        hs = np.array([r[1] for r in rows])
        r2 = fit_rate(hs, np.array([r[2] for r in rows]))
        ri = fit_rate(hs, np.array([r[3] for r in rows]))
        rates[method] = (r2, ri)
        t.row(f"fitted orders: L2 = {r2:.2f}, Linf = {ri:.2f}")
    t.row("paper: naive first order, SBM second order (both norms)")
    t.save()
    assert 0.7 < rates["nodal"][0] < 1.4, "naive BC should be ~first order in L2"
    assert rates["sbm"][0] > 1.7, "SBM should restore ~second order in L2"
    assert rates["sbm"][1] > 1.2, "SBM should beat first order in Linf"
