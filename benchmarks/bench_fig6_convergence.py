"""E3 — Fig. 6: Poisson convergence on a carved 2-D disk.

−Δu = 1 on the disk R = 0.5 centred in the unit square, u = 0 on the
circle; exact solution u = (R² − r²)/4.  Imposing the boundary data at
the voxelated boundary nodes ("naive") is first-order accurate in both
L2 and L∞ because the data lands a distance O(h) from the true circle;
the Shifted Boundary Method recovers the optimal second order for
linear elements — exactly the paper's Fig. 6.

The companion AMR column compares uniform vs estimator-driven adaptive
refinement on the L-shaped domain (re-entrant corner singularity
u = r^{2/3} sin(2θ/3)): uniform meshes are rate-limited to N^{-2/3} in
L2 while the Dörfler-marked adaptive loop recovers close to the optimal
N^{-1} error-vs-DoF rate.
"""

import numpy as np
import pytest

from repro import Domain, build_uniform_mesh
from repro.amr import amr_solve
from repro.analysis import fit_rate
from repro.core import construct_adaptive
from repro.core.mesh import mesh_from_leaves
from repro.fem import PoissonProblem, l2_error, linf_error
from repro.geometry import BoxCarve, SphereRetain

from _util import ResultTable

R = 0.5
CENTER = np.array([0.5, 0.5])


def exact(pts):
    r2 = ((pts - CENTER) ** 2).sum(axis=1)
    return 0.25 * (R * R - r2)


def run_fig6(levels=(4, 5, 6, 7)):
    dom = Domain(SphereRetain(CENTER, R))
    out = {}
    for method in ("nodal", "sbm"):
        rows = []
        for lv in levels:
            mesh = build_uniform_mesh(dom, lv, p=1)
            u = PoissonProblem(mesh, f=1.0, dirichlet=0.0, method=method).solve()
            rows.append((lv, 2.0**-lv, l2_error(mesh, u, exact),
                         linf_error(mesh, u, exact)))
        out[method] = rows
    return out


def test_fig6_convergence(benchmark):
    out = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    t = ResultTable(
        "fig6_convergence",
        "Fig 6: Poisson on a 2D disk — naive voxel BC vs Shifted Boundary Method",
    )
    rates = {}
    for method, rows in out.items():
        t.row(f"-- {method}")
        t.row(f"{'level':>6} {'h':>9} {'L2':>12} {'Linf':>12}")
        for lv, h, e2, einf in rows:
            t.row(f"{lv:>6} {h:>9.5f} {e2:>12.4e} {einf:>12.4e}")
        hs = np.array([r[1] for r in rows])
        r2 = fit_rate(hs, np.array([r[2] for r in rows]))
        ri = fit_rate(hs, np.array([r[3] for r in rows]))
        rates[method] = (r2, ri)
        t.row(f"fitted orders: L2 = {r2:.2f}, Linf = {ri:.2f}")
    t.row("paper: naive first order, SBM second order (both norms)")
    t.save()
    assert 0.7 < rates["nodal"][0] < 1.4, "naive BC should be ~first order in L2"
    assert rates["sbm"][0] > 1.7, "SBM should restore ~second order in L2"
    assert rates["sbm"][1] > 1.2, "SBM should beat first order in Linf"


def _lshape_exact(pts):
    x = pts[:, 0] - 0.5
    y = pts[:, 1] - 0.5
    r = np.hypot(x, y)
    theta = np.mod(np.arctan2(y, x) - np.pi / 2, 2 * np.pi)
    return np.where(r > 0, r ** (2.0 / 3.0), 0.0) * np.sin(2.0 * theta / 3.0)


def run_amr_vs_uniform(levels=(3, 4, 5, 6), max_cycles=12):
    dom = Domain(BoxCarve([0.5, 0.5], [1.0, 1.0]), dim=2)
    uniform = []
    for lv in levels:
        mesh = mesh_from_leaves(dom, construct_adaptive(dom, lv, lv), p=1)
        u = PoissonProblem(mesh, f=0.0, dirichlet=_lshape_exact).solve()
        uniform.append((mesh.n_nodes, l2_error(mesh, u, _lshape_exact)))
    res = amr_solve(
        dom, f=0.0, dirichlet=_lshape_exact, base_level=levels[0],
        max_cycles=max_cycles, theta=0.5, exact=_lshape_exact,
    )
    adaptive = [(r["n_dofs"], r["error_l2"]) for r in res.history]
    return uniform, adaptive, res.digest()


def _dof_rate(points):
    n = np.array([float(p[0]) for p in points])
    e = np.array([float(p[1]) for p in points])
    # error ~ C N^{-rate}; fit_rate works in a mesh-size-like variable
    return fit_rate(1.0 / n, e)


def test_fig6_amr_vs_uniform(benchmark):
    uniform, adaptive, digest = benchmark.pedantic(
        run_amr_vs_uniform, rounds=1, iterations=1
    )
    t = ResultTable(
        "fig6_amr_vs_uniform",
        "Fig 6 (AMR column): L-shape error vs DoFs — uniform vs adaptive",
    )
    for label, rows in (("uniform", uniform), ("adaptive", adaptive)):
        t.row(f"-- {label}")
        t.row(f"{'DoFs':>8} {'L2':>12}")
        for n, e in rows:
            t.row(f"{n:>8} {e:>12.4e}")
            t.record(series=label, dofs=int(n), l2=float(e))
    r_uni = _dof_rate(uniform)
    r_amr = _dof_rate(adaptive[-6:])
    t.row(f"error-vs-DoF rates: uniform N^-{r_uni:.2f}, adaptive N^-{r_amr:.2f}")
    t.row(f"trajectory digest: {digest}")
    t.record(rate_uniform=float(r_uni), rate_adaptive=float(r_amr),
             digest=digest)
    t.save()
    assert r_uni < 0.85, "uniform should be singularity-limited (~N^-2/3)"
    assert r_amr > r_uni + 0.1, "adaptive must beat the uniform rate"
    assert r_amr > 0.85, "adaptive should approach the optimal N^-1"
