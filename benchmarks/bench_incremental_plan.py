"""Incremental operator-plan deltas vs full rebuild (the PlanDelta path).

A localized AMR step changes a small SFC-contiguous window of the leaf
array; :func:`repro.core.plan_delta.update_mesh` diffs old-vs-new
leaves, reuses the untouched per-element rows and CSR blocks, and
recomputes only the changed elements plus their hanging-node closure.
This bench measures the incremental-vs-full wall-time ratio at three
churn levels (~1%, ~5%, ~20% of elements changed) on the carved-disk
mesh, asserts the contract the AMR loop relies on — a ~5%-churn refine
costs at most 25% of a full rebuild — and re-verifies bit-identity of
the incremental result at every churn level.
"""

import time

import numpy as np
import pytest

from repro import Domain
from repro.core import balance_2to1, construct_adaptive, refine_leaves
from repro.core.mesh import mesh_from_leaves
from repro.core.plan import diff_leaves
from repro.core.plan_delta import assert_plan_equivalent, update_mesh
from repro.geometry import SphereCarve

from _util import ResultTable

# mark fraction of a contiguous SFC window -> resulting churn after the
# 2:1-balance ripple (measured on this mesh: ~0.008 / ~0.048 / ~0.17)
MARK_FRACS = {"1%": 0.002, "5%": 0.0125, "20%": 0.05}
ROUNDS = 3


def _median_time(fn, rounds=ROUNDS):
    best = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        best.append(time.perf_counter() - t0)
    return float(np.median(best)), out


def run_incremental_plan():
    dom = Domain(SphereCarve([0.5, 0.5], 0.27), dim=2, scale=1.0)
    leaves = construct_adaptive(dom, 9, 11)
    mesh = mesh_from_leaves(dom, leaves, p=1)
    n = mesh.n_elem
    rows = []
    for label, frac in MARK_FRACS.items():
        k = max(int(n * frac), 1)
        start = n // 3
        marks = np.zeros(n, bool)
        marks[start : start + k] = True
        new_leaves = balance_2to1(dom, refine_leaves(dom, mesh.leaves, marks))
        delta = diff_leaves(mesh.leaves, new_leaves, mesh.curve)
        t_inc, (inc_mesh, _) = _median_time(
            lambda: update_mesh(mesh, new_leaves, churn_limit=1.0)
        )
        t_full, full_mesh = _median_time(
            lambda: mesh_from_leaves(
                dom, new_leaves, p=1, curve=mesh.curve, balance=False
            )
        )
        assert inc_mesh._plan_update.incremental, (
            f"{label}: expected the incremental path (churn {delta.churn:.3f})"
        )
        assert_plan_equivalent(inc_mesh, full_mesh)
        rows.append(
            dict(label=label, churn=float(delta.churn), n_elem=n,
                 n_new=inc_mesh.n_elem, t_inc=t_inc, t_full=t_full,
                 ratio=t_inc / t_full)
        )
    return rows


@pytest.mark.amr
def test_incremental_plan(benchmark):
    rows = benchmark.pedantic(run_incremental_plan, rounds=1, iterations=1)
    t = ResultTable(
        "incremental_plan",
        "Incremental operator-plan delta vs full rebuild (2-D carved disk, p=1)",
    )
    t.row(f"{'churn':>7} {'elems':>8} {'incremental':>12} {'full':>9} {'ratio':>7}")
    for r in rows:
        t.row(
            f"{r['churn']:>7.3f} {r['n_elem']:>8} {r['t_inc'] * 1e3:>10.1f}ms "
            f"{r['t_full'] * 1e3:>7.1f}ms {r['ratio']:>7.2f}"
        )
        t.record(**r)
    t.row("contract: ~5%-churn refine <= 25% of a full rebuild;")
    t.row("every incremental result re-verified bit-identical to the rebuild")
    t.save()
    five = next(r for r in rows if r["label"] == "5%")
    assert five["ratio"] <= 0.25, (
        f"5%-churn incremental update took {five['ratio']:.2f} of a full "
        "rebuild (contract: <= 0.25)"
    )
    one = next(r for r in rows if r["label"] == "1%")
    assert one["ratio"] < five["ratio"] + 0.05, (
        "ratio should not grow as churn shrinks"
    )
