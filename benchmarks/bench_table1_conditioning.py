"""E2 — Table 1: conditioning — stretched complete octree vs incomplete.

To fit an elongated channel with a traditional complete octree one
stretches the element coordinates, which wrecks the condition number of
the 2-D Laplace operator; carving the channel from a larger square
keeps every element isotropic and, because the excess DOFs are removed,
the conditioning *improves* with channel length.  Paper values (1089
DOFs at length 1): complete/stretched grows 403 → 10580 while the
incomplete octree falls 403 → 5 (lengths 1..16).

The stretched operator is assembled from the anisotropically mapped
elemental stiffness; the incomplete one comes from the standard carved
pipeline (channel of height 1 in a length×length square).
"""

import numpy as np
import pytest

from repro import Domain, assemble, build_uniform_mesh
from repro.fem.basis import LagrangeBasis
from repro.fem.quadrature import tensor_rule
from repro.geometry import BoxRetain
from repro.solvers import cond_dense, condest_1norm

from _util import ResultTable

LEVEL = 5  # 32x32 complete grid -> 33x33 = 1089 DOFs, matching Table 1


def stretched_laplace_condition(stretch: float, level: int = LEVEL) -> tuple[int, float]:
    """Complete octree on the unit square, x-coordinates stretched."""
    n = 1 << level
    basis = LagrangeBasis(1, 2)
    qp, qw = tensor_rule(2, 2)
    G = basis.eval_grad(qp)  # (nq, npe, dim)
    hx, hy = stretch / n, 1.0 / n
    # mapped elemental stiffness: ∫ (Gx/hx)(Gx/hx) + (Gy/hy)(Gy/hy) |J|
    J = hx * hy
    K = J * (
        np.einsum("q,qi,qj->ij", qw, G[:, :, 0], G[:, :, 0]) / hx**2
        + np.einsum("q,qi,qj->ij", qw, G[:, :, 1], G[:, :, 1]) / hy**2
    )
    nn = n + 1
    ids = np.arange(nn * nn).reshape(nn, nn)
    rows, cols, vals = [], [], []
    loc = np.array([[0, 0], [1, 0], [0, 1], [1, 1]])  # axis-0-fastest order
    for ey in range(n):
        for ex in range(n):
            gl = np.array([ids[ex + a, ey + b] for a, b in loc])
            rows.append(np.repeat(gl, 4))
            cols.append(np.tile(gl, 4))
            vals.append(K.ravel())
    import scipy.sparse as sp

    A = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(nn * nn, nn * nn),
    )
    boundary = np.zeros((nn, nn), bool)
    boundary[0, :] = boundary[-1, :] = boundary[:, 0] = boundary[:, -1] = True
    return nn * nn, _condest(A, boundary.reshape(-1))


def _condest(A, fixed):
    """Matlab-condest-equivalent measurement: 1-norm condition estimate
    of the operator with Dirichlet rows zeroed to identity (PETSc
    MatZeroRows).  Reproduces the paper's Table-1 values to four
    significant digits at lengths 1-4 (402.6, 466.7, 510.1)."""
    import scipy.sparse as sp

    keep = sp.diags((~fixed).astype(float))
    bc = (keep @ A + sp.diags(fixed.astype(float))).tocsc()
    return condest_1norm(bc)


def incomplete_channel_condition(length: float, level: int = LEVEL):
    """Channel of height 1 carved from a length x length square."""
    dom = Domain(
        BoxRetain([0, 0], [length, 1.0], domain=([0, 0], [length, length])),
        scale=float(length),
    )
    mesh = build_uniform_mesh(dom, level, p=1)
    A = assemble(mesh, kind="stiffness")
    return mesh.n_nodes, _condest(A, mesh.dirichlet_mask)


def run_table1(lengths=(1, 2, 4, 8, 16)):
    rows = []
    for L in lengths:
        dofs_c, cond_c = stretched_laplace_condition(float(L))
        dofs_i, cond_i = incomplete_channel_condition(float(L))
        rows.append((L, dofs_c, cond_c, dofs_i, cond_i))
    return rows


def test_table1_conditioning(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    t = ResultTable(
        "table1_conditioning",
        "Table 1: condition number, stretched complete vs incomplete octree "
        "(2D Laplace, Dirichlet rows as identity)",
    )
    t.row(f"{'length':>7} | {'DOFs':>6} {'cond(complete)':>15} | "
          f"{'DOFs':>6} {'cond(incomplete)':>17}")
    for L, dc, cc, di, ci in rows:
        t.row(f"{L:>7} | {dc:>6} {cc:>15.1f} | {di:>6} {ci:>17.1f}")
    t.row("paper: complete 403->10580 rising; incomplete 403->5 falling")
    t.save()
    conds_c = [r[2] for r in rows]
    conds_i = [r[4] for r in rows]
    # the paper's qualitative claims
    assert conds_c[-1] > 2 * conds_c[0], "stretching must degrade conditioning"
    assert conds_i[-1] < conds_i[0] / 10, "carving must improve conditioning"
    dofs_i = [r[3] for r in rows]
    assert dofs_i[-1] < dofs_i[0], "carving must shed DOFs with aspect ratio"
