"""E11 — Table 4: the complete-octree (Dendro-style) baseline comparison.

A 128×4×1 micro-channel carved from a 128³ cube.  The baseline builds
and partitions the **complete** octree — nearly all of it void — then
cancels inactive octants; our pipeline prunes during construction and
partitions active octants only.  Measured here, exactly as the counting
analysis in :mod:`repro.baselines.complete_octree` provides:

* construction work (octants visited): paper ≈ 20× mesh-generation gap;
* active-element imbalance under the complete-tree partition → MATVEC
  time gap via the per-rank model with a Navier–Stokes-weight leaf op
  (paper ≈ 5×);
* the baseline's memory blow-up: Dendro failed outright at base ≥ 12 —
  reproduced as the complete tree exceeding the node-memory model.
"""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.baselines import dendro_style_pipeline
from repro.geometry import BoxRetain
from repro.parallel import (
    FRONTERA,
    analyze_partition,
    model_matvec,
    partition_mesh,
    rank_statistics,
)

from _util import ResultTable

#: Navier-Stokes leaf op: (dim+1) coupled fields per node
NS_DOFS_PER_NODE = 4


def channel128():
    return Domain(
        BoxRetain([0, 0, 0], [128, 4, 1],
                  domain=([0, 0, 0], [128, 128, 128])),
        scale=128.0,
    )


def run_table4():
    dom = channel128()
    cases = [(7, 9), (7, 10), (8, 10)]  # paper: (10,12), (10,14), (12,...)
    nranks = 64
    rows = []
    for base, bnd in cases:
        rep = dendro_style_pipeline(dom, base, bnd, nranks)
        mesh = build_mesh(dom, base, bnd, p=1)
        splits = partition_mesh(mesh, nranks, load_tol=0.1)
        layout = analyze_partition(mesh, splits)
        stats = rank_statistics(mesh, layout)
        ours = model_matvec(stats, p=1, dim=3, machine=FRONTERA,
                            dofs_per_node=NS_DOFS_PER_NODE)
        # baseline: same mesh statistics but per-rank active work from
        # the complete-tree partition (inactive octants still traverse)
        base_stats = rank_statistics(mesh, layout)
        dendro = model_matvec(
            base_stats, p=1, dim=3, machine=FRONTERA,
            dofs_per_node=NS_DOFS_PER_NODE,
            active_elem=np.full(nranks, rep.active_per_rank.max()),
        )
        mesh_speedup = rep.octants_visited / rep.active_octants_visited
        rows.append((base, bnd, rep, mesh.n_elem, ours.time, dendro.time,
                     mesh_speedup))
    return rows


def test_table4_dendro_comparison(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    t = ResultTable(
        "table4_dendro_comparison",
        "Table 4: complete-octree (Dendro-style) pipeline vs ours, "
        "128x4x1 channel, 64 virtual ranks",
    )
    t.row(f"{'base':>5} {'bnd':>4} {'active el':>10} {'complete el':>12} "
          f"{'inact %':>8} {'mesh work x':>11} {'imbal':>6} "
          f"{'matvec ours':>12} {'matvec dendro':>13} {'x':>5} {'OOM?':>5}")
    for base, bnd, rep, ne, t_ours, t_dendro, msh_x in rows:
        oom = rep.exceeds_memory()
        t.row(
            f"{base:>5} {bnd:>4} {rep.n_active:>10} {rep.n_complete:>12} "
            f"{100 * rep.inactive_fraction:>7.1f}% {msh_x:>11.1f} "
            f"{rep.active_imbalance:>6.1f} {t_ours * 1e3:>10.2f}ms "
            f"{t_dendro * 1e3:>11.2f}ms {t_dendro / t_ours:>5.1f} "
            f"{'YES' if oom else 'no':>5}"
        )
    t.row("paper: ~20x mesh-generation speedup, ~5x NS-MATVEC speedup; "
          "Dendro out-of-memory at base level >= 12")
    t.save()
    base, bnd, rep, ne, t_ours, t_dendro, msh_x = rows[0]
    assert msh_x > 5, "pruned construction must visit far fewer octants"
    assert rep.inactive_fraction > 0.9, "the channel cube is ~99% void"
    assert t_dendro / t_ours > 2, "active imbalance must slow the baseline MATVEC"
    # the memory-failure regime: scale the counting analysis to the
    # paper's base level 12 (cheap — counting only)
    dom = channel128()
    rep12 = dendro_style_pipeline(dom, 12, 12, 448)
    assert rep12.exceeds_memory(), \
        "complete tree at base 12 must exceed the node-memory model"
