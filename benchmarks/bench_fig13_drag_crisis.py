"""E12 — Fig. 13: drag coefficient across the drag-crisis regime.

The paper validates its VMS Navier–Stokes solver by reproducing the
sphere drag crisis (C_d collapsing from ≈0.5 to ≈0.1 near Re ≈ 3×10⁵)
against Achenbach's experiments and Geier et al.'s LBM results, on
meshes up to ~40M elements.  A pure-Python reproduction cannot run LES
at those Reynolds numbers (DESIGN.md substitution), so this bench

1. regenerates the Fig-13 *curve* from the Morrison (2013) correlation
   sampled at the paper's Re range, checked against the digitised
   experimental anchors (crisis location, pre/post-crisis levels); and
2. runs the actual VMS solver on a carved mesh in the laminar regime
   it can afford (2-D cylinder, Re 20/40) and checks the computed drag
   against blockage-corrected references — exercising the identical
   carve → mesh → solve → surface-integrate code path the paper uses.
"""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.analysis import (
    ACHENBACH_ANCHORS,
    CYLINDER_CD_REFERENCE,
    drag_from_faces,
    morrison_cd,
)
from repro.core.faces import extract_boundary_faces
from repro.fem import NavierStokesProblem
from repro.geometry import SphereCarve

from _util import ResultTable


def run_crisis_curve():
    Re = np.logspace(4, np.log10(2e6), 25)
    return Re, morrison_cd(Re)


def run_solver_points():
    dom = Domain(SphereCarve([3.0, 5.0], 0.5), scale=10.0)
    mesh = build_mesh(dom, 5, 8, p=1)
    pts = mesh.node_coords()

    def bc(pts_):
        n = len(pts_)
        mask = np.zeros((n, 2), bool)
        vals = np.zeros((n, 2))
        inlet = np.isclose(pts_[:, 0], 0.0)
        walls = np.isclose(pts_[:, 1], 0.0) | np.isclose(pts_[:, 1], 10.0)
        mask[inlet] = True
        vals[inlet, 0] = 1.0
        mask[walls] = True
        vals[walls, 0] = 1.0
        obj = mesh.nodes.carved_node
        mask[obj] = True
        return mask, vals

    outlet = np.isclose(pts[:, 0], 10.0)
    faces, _ = extract_boundary_faces(mesh)
    rows = []
    for Re in (20, 40):
        ns = NavierStokesProblem(mesh, nu=1.0 / Re, velocity_bc=bc,
                                 pressure_pin=outlet)
        res = ns.picard_solve(max_iter=40, tol=1e-7)
        F = drag_from_faces(mesh, faces, res.velocity, res.pressure, nu=1.0 / Re)
        rows.append((Re, F / 0.5, res.iterations))
    return mesh, rows


def test_fig13_drag_crisis(benchmark):
    (Re, cd), (mesh, solver_rows) = benchmark.pedantic(
        lambda: (run_crisis_curve(), run_solver_points()), rounds=1, iterations=1
    )
    t = ResultTable(
        "fig13_drag_crisis",
        "Fig 13: Cd across the drag crisis (Morrison correlation + "
        "experimental anchors) and solver validation points",
    )
    t.row(f"{'Re':>12} {'Cd (Morrison)':>14}")
    for r, c in zip(Re, cd):
        t.row(f"{r:>12.3e} {c:>14.3f}")
    t.row("-- experimental anchors (Achenbach 1972 digitised / paper levels)")
    for r, c in ACHENBACH_ANCHORS:
        t.row(f"{r:>12.3e} {c:>14.3f}")
    t.row(f"-- VMS solver on carved mesh ({mesh.n_elem} elements), 2D cylinder, "
          f"fixed-wall blockage factor ~1.23")
    blockage = 1.0 / (1.0 - 0.1) ** 2
    for ReS, cdS, iters in solver_rows:
        ref = CYLINDER_CD_REFERENCE[ReS] * blockage
        t.row(f"Re={ReS:>4}: Cd={cdS:.3f}  blockage-corrected ref={ref:.2f} "
              f"({iters} picard iters)")
    t.save()

    # the crisis structure: plateau ~0.4-0.5 pre-crisis, collapse below
    # 0.2 just after 3e5, partial recovery by 2e6
    pre = cd[(Re > 2e4) & (Re < 2e5)]
    post = float(morrison_cd(4.2e5))
    end = float(morrison_cd(2e6))
    assert 0.38 < pre.min() and pre.max() < 0.55
    assert post < 0.2, "the crisis collapse must appear just past Re=3e5"
    assert post < end < 0.4, "partial recovery toward 2e6"
    # anchors tracked within the experimental scatter band
    anchor_cd = morrison_cd(ACHENBACH_ANCHORS[:, 0])
    mask = (ACHENBACH_ANCHORS[:, 0] < 2.5e5) | (ACHENBACH_ANCHORS[:, 0] > 5e5)
    dev = np.abs(anchor_cd[mask] - ACHENBACH_ANCHORS[mask, 1])
    assert dev.max() < 0.15
    # solver points within ~12% of blockage-corrected references
    for ReS, cdS, _ in solver_rows:
        ref = CYLINDER_CD_REFERENCE[ReS] * blockage
        assert abs(cdS - ref) / ref < 0.12, f"Re={ReS}: Cd={cdS} vs {ref}"
