"""Ablation — TreeSort implementations and SFC locality.

Compares (a) the vectorised key-sort TreeSort against the faithful
recursive MSD bucketing, and (b) Morton vs Hilbert ordering locality
(mean SFC-neighbour distance in space — Hilbert's guarantee — and the
resulting partition surface, i.e. mean ghost-node count).
"""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.core.treesort import tree_sort, tree_sort_msd
from repro.geometry import SphereCarve
from repro.parallel import analyze_partition, partition_mesh

from _util import ResultTable


@pytest.fixture(scope="module")
def meshes():
    dom = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    return {c: build_mesh(dom, 4, 7, p=1, curve=c) for c in ("morton", "hilbert")}


def test_keysort_speed(benchmark, meshes):
    leaves = meshes["morton"].leaves
    benchmark(tree_sort, leaves, "morton")


def test_msd_reference_matches(benchmark, meshes):
    leaves = meshes["morton"].leaves
    rng = np.random.default_rng(0)
    perm = rng.permutation(len(leaves))
    shuffled = leaves[perm]
    out = benchmark.pedantic(
        lambda: tree_sort_msd(shuffled, "morton"), rounds=1, iterations=1
    )
    ref, _ = tree_sort(shuffled, "morton")
    assert np.array_equal(out.anchors, ref.anchors)
    assert np.array_equal(out.levels, ref.levels)


def test_morton_vs_hilbert_locality(benchmark, meshes):
    def run():
        stats = {}
        for curve, mesh in meshes.items():
            ctr = mesh.element_centers()
            jumps = np.linalg.norm(np.diff(ctr, axis=0), axis=1)
            ghosts = []
            for nranks in (8, 32):
                layout = analyze_partition(mesh, partition_mesh(mesh, nranks))
                ghosts.append(float(layout.ghost_counts.mean()))
            stats[curve] = (float(jumps.mean()), float(jumps.max()), ghosts)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    t = ResultTable(
        "ablation_treesort",
        "Ablation: Morton vs Hilbert ordering locality (carved sphere mesh)",
    )
    t.row(f"{'curve':>8} {'mean jump':>10} {'max jump':>10} "
          f"{'ghosts@8':>9} {'ghosts@32':>10}")
    for curve, (mj, xj, gh) in stats.items():
        t.row(f"{curve:>8} {mj:>10.4f} {xj:>10.4f} {gh[0]:>9.1f} {gh[1]:>10.1f}")
    t.row("Hilbert bounds the successor jump (no long Z-order seams)")
    t.save()
    # Hilbert's locality: strictly smaller mean successor jump
    assert stats["hilbert"][0] < stats["morton"][0]
    assert stats["hilbert"][1] <= stats["morton"][1] + 1e-12
