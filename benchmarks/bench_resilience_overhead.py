"""Resilience overhead — checkpoint cost, fault-gate tax, recovery latency.

Quantifies what the `repro.resilience` subsystem charges a solve:

* the fault gate on every collective (the per-op schedule check) —
  measured as distributed-MATVEC throughput with and without an
  installed (never-firing) fault schedule;
* checkpoint write/load/restore cost and on-disk volume for the
  Krylov state of the carved-sphere Poisson solve;
* end-to-end recovery latency: failure-free vs injected-crash solves
  of the same problem, including the answer-match check the recovery
  contract promises.

Rows land in ``benchmarks/results/resilience_overhead.{txt,json}``
(bench.v1 sidecar with structured records).
"""

import time

import numpy as np
import pytest

from repro import Domain, build_mesh, obs
from repro.fem.poisson import PoissonProblem
from repro.geometry import SphereCarve
from repro.parallel import (
    SimComm,
    analyze_partition,
    distributed_matvec,
    partition_mesh,
)
from repro.parallel.ghost import exchange_plan
from repro.resilience import (
    FaultSchedule,
    load_checkpoint,
    resilient_poisson_solve,
    save_checkpoint,
)

from _util import ResultTable

RANKS = 6


@pytest.fixture(scope="module")
def setup():
    dom = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    mesh = build_mesh(dom, 2, 5, p=1)
    splits = partition_mesh(mesh, RANKS, load_tol=0.1)
    layout = analyze_partition(mesh, splits)
    plan = exchange_plan(mesh, layout)
    return dom, mesh, layout, plan


def test_resilience_overhead(setup, tmp_path):
    dom, mesh, layout, plan = setup
    table = ResultTable(
        "resilience_overhead",
        "Resilience overhead: fault gate, checkpoint cost, recovery latency",
    )
    table.row(f"mesh: {mesh.n_elem} elements, {mesh.n_nodes} DOFs, "
              f"{RANKS} ranks; exchange plan {plan.nbytes()} B resident")

    # -- fault-gate tax on the hot path (distributed MATVEC) ----------
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    reps = 20

    def run_matvecs(schedule):
        comm = SimComm(RANKS)
        comm.install_faults(schedule)
        distributed_matvec(mesh, layout, u, comm, plan=plan)  # warm
        t0 = time.perf_counter()
        for _ in range(reps):
            distributed_matvec(mesh, layout, u, comm, plan=plan)
        return (time.perf_counter() - t0) / reps

    t_plain = run_matvecs(None)
    # a pending-but-never-matching schedule: the worst-case gate check
    sched = FaultSchedule(seed=0).crash_rank(0, at_op=10**9)
    t_gated = run_matvecs(sched)
    tax = (t_gated / t_plain - 1.0) * 100.0
    table.row(f"distributed MATVEC: {t_plain * 1e3:.3f} ms plain, "
              f"{t_gated * 1e3:.3f} ms with armed schedule "
              f"({tax:+.1f}% gate tax)")
    table.record(kind="fault_gate", t_plain_s=t_plain, t_gated_s=t_gated,
                 tax_pct=tax)

    # -- checkpoint write / load / restore ----------------------------
    vecs = {
        "x": rng.standard_normal(mesh.n_nodes),
        "r": rng.standard_normal(mesh.n_nodes),
        "p": rng.standard_normal(mesh.n_nodes),
    }
    t0 = time.perf_counter()
    path = save_checkpoint(tmp_path / "bench.ckpt.json", mesh, step=1,
                           splits=layout.splits, vectors=vecs, name="bench")
    t_save = time.perf_counter() - t0
    nbytes = path.stat().st_size
    t0 = time.perf_counter()
    ck = load_checkpoint(path)
    t_load = time.perf_counter() - t0
    t0 = time.perf_counter()
    ck.restore(dom)
    t_restore = time.perf_counter() - t0
    table.row(f"checkpoint: {nbytes} B on disk; write {t_save * 1e3:.2f} ms, "
              f"load+verify {t_load * 1e3:.2f} ms, "
              f"full restore {t_restore * 1e3:.2f} ms")
    table.record(kind="checkpoint", bytes=nbytes, t_save_s=t_save,
                 t_load_s=t_load, t_restore_s=t_restore)

    # -- end-to-end recovery latency ----------------------------------
    prob = PoissonProblem(mesh, f=1.0)
    obs.reset()
    obs.enable()
    try:
        t0 = time.perf_counter()
        ref = resilient_poisson_solve(
            prob, ranks=RANKS, ckpt_dir=tmp_path / "ref", ckpt_interval=10,
        )
        t_ref = time.perf_counter() - t0
        sched = FaultSchedule(seed=1).crash_rank(2, at_op=30)
        t0 = time.perf_counter()
        res = resilient_poisson_solve(
            prob, ranks=RANKS, ckpt_dir=tmp_path / "faulted",
            ckpt_interval=10, fault_schedule=sched,
        )
        t_faulted = time.perf_counter() - t0
    finally:
        obs.disable()
    assert ref.converged and res.converged
    diff = float(np.abs(res.x - ref.x).max())
    assert diff <= 1e-12
    recovery_s = sum(e.elapsed for e in res.recoveries)
    table.row(f"failure-free solve: {t_ref * 1e3:.1f} ms "
              f"({ref.iterations} its, {ref.checkpoints_written} ckpts)")
    table.row(f"injected-crash solve: {t_faulted * 1e3:.1f} ms "
              f"({len(res.recoveries)} recovery, {recovery_s * 1e3:.1f} ms "
              f"in recovery, answer diff {diff:.1e})")
    table.record(kind="recovery", t_ref_s=t_ref, t_faulted_s=t_faulted,
                 recovery_s=recovery_s, answer_diff=diff,
                 iterations=res.iterations)
    table.save()
