"""E4 — Table 2: element/DOF excess of immersing vs carving.

The immersed baseline keeps the complete octree: IN elements survive,
the 2:1 ripple refines them near the boundary, and the IMGA-style band
refinement resolves both sides of the surface.  The paper reports
f_elem ≈ 1.75–1.92 and f_DOF ≈ 1.30–1.43 for a sphere and the Stanford
dragon at boundary levels 11–14 (base 4).  Scaled to laptop levels the
same sweep shows f_elem growing with the boundary level toward the
paper's range, with f_DOF markedly smaller than f_elem (the paper's CG
node-sharing argument).
"""

import numpy as np
import pytest

from repro import Domain
from repro.baselines import compare_carved_immersed
from repro.geometry import SphereCarve, TriMeshCarve, dragon_blob

from _util import ResultTable


def run_table2():
    cases = {
        "sphere": (Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0), 3,
                   (6, 7, 8)),
        "dragon-blob": (
            Domain(TriMeshCarve(dragon_blob((0.5, 0.5, 0.5), 0.22, 3))), 3,
            (5, 6, 7),
        ),
    }
    out = {}
    for name, (dom, base, levels) in cases.items():
        rows = []
        for blv in levels:
            r = compare_carved_immersed(dom, base, blv, p=1)
            rows.append((blv, r.carved_elems, r.immersed_elems, r.f_elem,
                         r.carved_dofs, r.immersed_dofs, r.f_dof))
        out[name] = rows
    return out


def test_table2_immersed_vs_carved(benchmark):
    out = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    t = ResultTable(
        "table2_immersed_vs_carved",
        "Table 2: f_elem / f_DOF of the immersed vs carved-out meshes",
    )
    finals = {}
    for name, rows in out.items():
        t.row(f"-- {name}")
        t.row(f"{'blevel':>7} {'carved el':>10} {'immersed el':>12} "
              f"{'f_elem':>7} {'f_DOF':>7}")
        for blv, ce, ie, fe, cd, idn, fd in rows:
            t.row(f"{blv:>7} {ce:>10} {ie:>12} {fe:>7.2f} {fd:>7.2f}")
        finals[name] = rows[-1]
    t.row("paper (levels 11-14): sphere f_elem 1.75-1.82, f_DOF 1.30-1.33; "
          "dragon f_elem 1.84-1.92, f_DOF 1.36-1.43")
    t.save()
    for name, (blv, ce, ie, fe, cd, idn, fd) in finals.items():
        assert fe > 1.3, f"{name}: immersing must cost substantially more elements"
        assert fd > 1.0, f"{name}: immersing must cost more DOFs"
        assert fd < fe, f"{name}: DOF excess must be below element excess (CG sharing)"
    # f_elem grows with the boundary level (the ripple argument)
    sph = out["sphere"]
    assert sph[-1][3] > sph[0][3]
