"""Ablation — proactive pruning vs build-complete-then-filter.

The central §3.2 design choice: prune carved subtrees *during*
construction.  This bench measures actual construction wall time and
octants visited for both pipelines on the same geometry (at a scale
where the complete tree is still buildable), plus the growth of the
gap with channel elongation.
"""

import time

import numpy as np
import pytest

from repro import Domain
from repro.baselines import dendro_style_pipeline
from repro.core.construct import construct_adaptive
from repro.geometry import BoxRetain

from _util import ResultTable


def channel(length):
    return Domain(
        BoxRetain([0, 0, 0], [length, 1, 1],
                  domain=([0, 0, 0], [length] * 3)),
        scale=float(length),
    )


def run_pruning_ablation():
    rows = []
    for length in (4, 16, 64):
        dom = channel(length)
        base, bnd = 6, 7
        t0 = time.perf_counter()
        pruned = construct_adaptive(dom, base, bnd)
        t_pruned = time.perf_counter() - t0
        rep = dendro_style_pipeline(dom, base, bnd, nranks=8)
        rows.append((length, len(pruned), rep.n_complete,
                     rep.active_octants_visited, rep.octants_visited,
                     t_pruned))
    return rows


def test_ablation_pruning(benchmark):
    rows = benchmark.pedantic(run_pruning_ablation, rounds=1, iterations=1)
    t = ResultTable(
        "ablation_pruning",
        "Ablation: proactive pruning vs complete-then-filter "
        "(channel length sweep, base 6 / boundary 7)",
    )
    t.row(f"{'length':>7} {'active el':>10} {'complete el':>12} "
          f"{'visited(pruned)':>16} {'visited(complete)':>18} {'work x':>7}")
    for L, na, nc, va, vc, tp in rows:
        t.row(f"{L:>7} {na:>10} {nc:>12} {va:>16} {vc:>18} {vc / va:>7.1f}")
    t.row("the work gap grows with elongation: pruning pays off more the "
          "more anisotropic the domain")
    t.save()
    gaps = [r[4] / r[3] for r in rows]
    assert gaps[-1] > gaps[0] > 1.0, "pruning advantage must grow with length"
    assert gaps[-1] > 10
