"""E14 — Table 5: classroom — immersed vs carved mesh and solve cost.

The classroom scene (desks, monitors, mannequins, instructor) meshed
both ways.  Reported per refinement case: active element counts, the
element excess f_excess of the immersed mesh, measured mesh-construction
wall time for both pipelines, and the modelled solve time (the
element-count-proportional part the paper's Table 5 shows; mannequins
have a large surface-to-volume ratio, so the speedup is milder than the
channel case — the paper's ≈1.5× element excess and ≈2-3× time gap).
"""

import time

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.baselines import ImmersedPredicate
from repro.geometry import CarveUnion, ClassroomScene
from repro.geometry.classroom import ROOM_X
from repro.parallel import FRONTERA, analyze_partition, model_matvec, partition_mesh, rank_statistics

from _util import ResultTable

NS_DOFS = 4


def _immersed_classroom_domain(scene):
    """The IMGA comparator: the room shell remains carved (the paper's
    background grid is the room box) but the furniture/people are
    *immersed* — their interiors stay in the mesh as IN elements."""
    return Domain(
        CarveUnion([scene.room, ImmersedPredicate(scene.objects)]),
        scale=ROOM_X,
    )


def _imga_band_refine(scene, boundary_level, band=1.0):
    """IMGA-style both-sides band refinement near the object surfaces."""
    objects = scene.objects

    def refine(frontier, labels):
        lo, hi = frontier.physical_bounds(ROOM_X)
        ctr = 0.5 * (lo + hi)
        diag = np.linalg.norm(hi - lo, axis=1)
        d = np.abs(objects.boundary_distance(ctr))
        return np.where(d <= band * diag, boundary_level, 0)

    return refine


def run_table5():
    scene = ClassroomScene(n_rows=2, n_cols=3, with_monitors=True)
    dom = scene.domain()
    imm_dom = _immersed_classroom_domain(scene)
    cases = [(4, 5), (4, 6), (5, 6)]  # paper: base 6-7, levels 8-11
    rows = []
    for base, bnd in cases:
        dom.reset_query_counters()
        t0 = time.perf_counter()
        carved = build_mesh(dom, base, bnd, p=1)
        t_carved = time.perf_counter() - t0
        q_carved = dom.cell_queries + dom.point_queries
        imm_dom.reset_query_counters()
        t0 = time.perf_counter()
        imm = build_mesh(imm_dom, base, bnd, p=1,
                         extra_refine=_imga_band_refine(scene, bnd))
        t_imm = time.perf_counter() - t0
        q_imm = imm_dom.cell_queries + imm_dom.point_queries
        f_excess = imm.n_elem / carved.n_elem

        def solve_model(mesh, nranks=32):
            splits = partition_mesh(mesh, nranks, load_tol=0.1)
            layout = analyze_partition(mesh, splits)
            stats = rank_statistics(mesh, layout)
            ph = model_matvec(stats, p=1, dim=3, machine=FRONTERA,
                              dofs_per_node=NS_DOFS)
            return ph.time * 300  # ~300 MATVECs per nonlinear solve

        rows.append(
            (base, bnd, carved.n_elem, imm.n_elem, f_excess,
             t_carved, t_imm, solve_model(carved), solve_model(imm),
             q_carved, q_imm)
        )
    return rows


def test_table5_classroom(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    t = ResultTable(
        "table5_classroom",
        "Table 5: classroom — immersed vs carved (mesh construction measured, "
        "solve modelled at 32 ranks)",
    )
    t.row(f"{'base':>5} {'bnd':>4} {'carved el':>10} {'immersed el':>11} "
          f"{'f_excess':>9} {'mesh C(s)':>10} {'mesh I(s)':>10} "
          f"{'solve C(s)':>11} {'solve I(s)':>11} {'InOut C':>9} {'InOut I':>9}")
    for base, bnd, ce, ie, fx, tc, ti, sc, si, qc, qi in rows:
        t.row(f"{base:>5} {bnd:>4} {ce:>10} {ie:>11} {fx:>9.2f} "
              f"{tc:>10.2f} {ti:>10.2f} {sc:>11.3f} {si:>11.3f} "
              f"{qc:>9} {qi:>9}")
    t.row("paper: f_excess 1.43-1.64; mesh ~2.2x and solve ~2.8x faster "
          "carved; the In-Out test count (ray tracing in the paper) "
          "dominates mesh-generation cost for these high-area objects")
    t.save()
    for base, bnd, ce, ie, fx, tc, ti, sc, si, qc, qi in rows:
        assert fx > 1.15, "immersing the classroom must cost extra elements"
        assert si > sc, "carved solve must be cheaper"
        assert qi > qc, "the immersed pipeline performs more In-Out tests"
    # the paper's magnitude band for f_excess
    assert any(1.3 < r[4] < 2.2 for r in rows)
