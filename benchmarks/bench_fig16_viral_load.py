"""E16 — Fig. 16: viral-load transport, with vs without monitors.

The coupled classroom pipeline at bench scale: carve the scene, solve
the ventilation flow (VMS NS), advect the cough-released scalar, and
compare the time-integrated exposure at the non-infected breathing
zones between the two scenarios.  The paper's finding: monitors
redirect the flow upward and away from the occupied zone, reducing
transmission at the other seats.
"""

import numpy as np
import pytest

from repro import build_mesh
from repro.fem import NavierStokesProblem, TransportProblem
from repro.geometry import ClassroomScene

from _util import ResultTable


def _zone_exposure(mesh, scene, c):
    pts = mesh.node_coords()
    out = []
    for zone in scene.breathing_zones():
        c0, r = zone[:3], zone[3]
        sel = np.linalg.norm(pts - c0, axis=1) <= r
        out.append(float(np.clip(c[sel], 0, None).mean()) if sel.any() else 0.0)
    return np.array(out)


def run_scenario(with_monitors: bool):
    scene = ClassroomScene(n_rows=2, n_cols=3, with_monitors=with_monitors,
                           infected=0)
    mesh = build_mesh(scene.domain(), 4, 5, p=1)
    mask, vals, outlet = scene.velocity_bc(mesh)
    ns = NavierStokesProblem(mesh, nu=0.02,
                             velocity_bc=lambda p: (mask, vals),
                             pressure_pin=outlet)
    flow = ns.picard_solve(max_iter=6, tol=1e-4)
    inlet_nodes = mask[:, 2] & (vals[:, 2] < 0)
    tp = TransportProblem(mesh, flow.velocity, kappa=1e-2, dt=0.1,
                          dirichlet_mask=inlet_nodes)
    c = np.zeros(mesh.n_nodes)
    src = scene.cough_source(rate=1.0)
    dose = np.zeros(len(scene.seats))
    for step in range(60):
        c = tp.step(c, source=src if step % 4 == 0 else 0.0)
        dose += tp.dt * _zone_exposure(mesh, scene, c)
    return mesh, flow, c, dose


def test_fig16_viral_load(benchmark):
    results = benchmark.pedantic(
        lambda: {m: run_scenario(m) for m in (False, True)},
        rounds=1, iterations=1,
    )
    t = ResultTable(
        "fig16_viral_load",
        "Fig 16: time-integrated viral dose per breathing zone, "
        "no-monitors vs monitors",
    )
    doses = {}
    for mon, (mesh, flow, c, dose) in results.items():
        label = "monitors" if mon else "no monitors"
        t.row(f"-- {label}: mesh {mesh.n_elem} elements; "
              f"flow residual {flow.residual:.1e}")
        t.row(f"   dose per seat: {np.array2string(dose, precision=6)}")
        doses[mon] = dose
    other = slice(1, None)
    e_no = float(doses[False][other].sum())
    e_mon = float(doses[True][other].sum())
    t.row(f"total dose at non-infected seats: no-monitors {e_no:.3e}, "
          f"monitors {e_mon:.3e}")
    t.row("paper: 'significant reduction in transmission risk in the case "
          "with monitors'")
    t.save()
    for mon, dose in doses.items():
        assert dose[0] > 0, "the infected seat must register exposure"
        assert np.all(dose >= 0)
    assert e_no > 0, "the plume must reach other seats without monitors"
    # scenario comparison runs and produces distinct flows/doses
    assert not np.allclose(doses[False], doses[True])
