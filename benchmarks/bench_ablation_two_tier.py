"""Ablation — carving vs the two-tier (macro-element) alternative.

The paper's framing: incomplete octrees are "an alternative to using
two-tier meshes (HHG, p4est) ... not dependent on having top-level
hexahedral meshes".  This bench makes that concrete: where a lattice
hex decomposition exists (channels, L-shapes) the two approaches yield
*identical* meshes and conditioning — carving costs nothing — and the
moment the geometry curves (sphere, dragon, classroom) the two-tier
route requires unstructured hex meshing, which the comparator reports
as infeasible, while the carving pipeline proceeds from the same
In-Out predicate it always uses.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Domain, assemble, build_mesh, build_uniform_mesh
from repro.baselines import TwoTierError, TwoTierMesh, boxes_for_predicate
from repro.geometry import BoxRetain, SphereCarve, TriMeshCarve, dragon_blob
from repro.solvers import condest_1norm

from _util import ResultTable


def _cond(A, fixed):
    keep = sp.diags((~fixed).astype(float))
    return condest_1norm((keep @ A + sp.diags(fixed.astype(float))).tocsc())


def run_two_tier():
    rows = []
    # box-decomposable: channel lengths
    for L in (4, 8):
        dom = Domain(
            BoxRetain([0, 0], [L, 1], domain=([0, 0], [L, L])), scale=float(L)
        )
        boxes = boxes_for_predicate(dom)
        tt = TwoTierMesh(boxes, level=3)
        oc_level = 3 + int(np.log2(L))
        oc = build_uniform_mesh(dom, oc_level, p=1)
        c_tt = _cond(tt.assemble_stiffness(), tt.boundary_mask())
        c_oc = _cond(assemble(oc), oc.dirichlet_mask)
        rows.append((f"channel {L}x1", len(boxes), tt.n_nodes, oc.n_nodes,
                     c_tt, c_oc))
    # curved geometries: two-tier infeasible, carving fine
    curved = {
        "sphere": Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0),
        "dragon-blob": Domain(
            TriMeshCarve(dragon_blob((0.5, 0.5, 0.5), 0.25, 2))
        ),
    }
    infeasible = []
    for name, dom in curved.items():
        try:
            boxes_for_predicate(dom)
            feasible = True
        except TwoTierError:
            feasible = False
        carved = build_mesh(dom, 2, 4, p=1)
        infeasible.append((name, feasible, carved.n_elem))
    return rows, infeasible


def test_ablation_two_tier(benchmark):
    rows, infeasible = benchmark.pedantic(run_two_tier, rounds=1, iterations=1)
    t = ResultTable(
        "ablation_two_tier",
        "Ablation: carving vs two-tier macro-element meshes",
    )
    t.row(f"{'case':>14} {'macros':>7} {'tt nodes':>9} {'oct nodes':>10} "
          f"{'cond tt':>9} {'cond oct':>9}")
    for name, nb, ntt, noc, ctt, coc in rows:
        t.row(f"{name:>14} {nb:>7} {ntt:>9} {noc:>10} {ctt:>9.2f} {coc:>9.2f}")
    for name, feasible, ne in infeasible:
        t.row(f"{name:>14}: two-tier hex decomposition "
              f"{'EXISTS' if feasible else 'infeasible'}; "
              f"carving meshes it with {ne} elements from the predicate alone")
    t.save()
    for name, nb, ntt, noc, ctt, coc in rows:
        assert ntt == noc, "two-tier and carved meshes must coincide"
        assert ctt == pytest.approx(coc, rel=1e-6)
    for name, feasible, ne in infeasible:
        assert not feasible and ne > 0
