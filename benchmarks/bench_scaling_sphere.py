"""E7/E8 — Figs. 9-10 + Table 3 (sphere): strong & weak MATVEC scaling.

A sphere of diameter 1 carved from a 10³ cube with 5 levels of octree
adaptivity near the surface (§4.5.2) — the domain of the Navier–Stokes
validation.  Same methodology as the channel bench.  Paper: strong 90%
(linear) / 96% (quadratic) over 32×; weak 74% / 83%.
"""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.geometry import SphereCarve
from repro.parallel import FRONTERA, analyze_partition, model_matvec, partition_mesh, rank_statistics

from bench_scaling_channel import _report_strong, scaling_run
from _util import ResultTable


def sphere_domain():
    return Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)


def test_sphere_strong_scaling(benchmark):
    dom = sphere_domain()
    meshes = benchmark.pedantic(
        lambda: {p: build_mesh(dom, 4, 8, p=p) for p in (1, 2)},
        rounds=1, iterations=1,
    )
    t = ResultTable(
        "fig9_sphere_strong",
        "Fig 9 + Table 3: sphere strong scaling (parallel cost)",
    )
    ranks = (1, 2, 4, 8, 16, 32)
    effs = {}
    for p, mesh in meshes.items():
        t.row(f"mesh: {mesh.n_elem} elements, {mesh.n_nodes} DOFs (p={p}), "
              f"levels {mesh.leaves.levels.min()}..{mesh.leaves.levels.max()}")
        rows = scaling_run(mesh, ranks, verify_ranks=(4,))
        effs[p] = _report_strong(t, rows, f"p={p}")
    t.row("paper: 90% (linear) / 96% (quadratic) efficiency over 32x")
    t.save()
    assert effs[1][-1] > 0.6
    assert effs[2][-1] > effs[1][-1] - 0.05
    assert meshes[1].leaves.levels.max() - meshes[1].leaves.levels.min() >= 4, \
        "the sphere case must have ~5 levels of adaptivity"


def test_sphere_weak_scaling(benchmark):
    dom = sphere_domain()
    grain = 1500  # paper: 10K elements/core, scaled down
    levels = [(3, 6), (4, 7), (4, 8)]

    def build_all():
        return [
            {p: build_mesh(dom, b, bl, p=p) for p in (1, 2)} for b, bl in levels
        ]

    series = benchmark.pedantic(build_all, rounds=1, iterations=1)
    t = ResultTable(
        "fig10_sphere_weak",
        "Fig 10 + Table 3: sphere weak scaling (fixed grain per rank)",
    )
    effs = {}
    for p in (1, 2):
        t.row(f"-- p={p}")
        t.row(f"{'ranks':>6} {'elements':>9} {'DOFs':>9} {'t_matvec':>10} {'eff':>6}")
        t0 = None
        eff = []
        for meshes in series:
            mesh = meshes[p]
            nranks = max(1, round(mesh.n_elem / grain))
            splits = partition_mesh(mesh, nranks, load_tol=0.1)
            layout = analyze_partition(mesh, splits)
            stats = rank_statistics(mesh, layout)
            ph = model_matvec(stats, p=p, dim=3, machine=FRONTERA)
            tt = ph.time
            t0 = t0 or tt
            eff.append(t0 / tt)
            t.row(f"{nranks:>6} {mesh.n_elem:>9} {mesh.n_nodes:>9} "
                  f"{tt * 1e3:>8.2f}ms {eff[-1]:>6.2f}")
        effs[p] = eff
    t.row("paper: weak efficiency 74% (linear) / 83% (quadratic) at 512x; "
          "quadratic better because eta ~ 1/(p+1)")
    t.save()
    assert effs[1][-1] > 0.45 and effs[2][-1] > 0.45
    assert effs[2][-1] >= effs[1][-1] - 0.08
