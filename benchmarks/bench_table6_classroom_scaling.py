"""E15 — Table 6: classroom strong-scaling efficiency.

Two classroom meshes at different refinement levels, partitioned over a
doubling rank sweep; the modelled total solve time (Navier–Stokes
MATVEC-dominated) gives the efficiency column.  Paper: ≈0.90 efficiency
over a 16× rank increase for both meshes.
"""

import numpy as np
import pytest

from repro import build_mesh
from repro.geometry import ClassroomScene
from repro.parallel import FRONTERA, analyze_partition, model_matvec, partition_mesh, rank_statistics

from _util import ResultTable

NS_DOFS = 4


def run_table6():
    scene = ClassroomScene(n_rows=2, n_cols=3, with_monitors=True)
    dom = scene.domain()
    meshes = [build_mesh(dom, 4, 6, p=1), build_mesh(dom, 5, 7, p=1)]
    ranks = (4, 8, 16, 32, 64)
    out = []
    for mesh in meshes:
        times = []
        for nranks in ranks:
            splits = partition_mesh(mesh, nranks, load_tol=0.1)
            layout = analyze_partition(mesh, splits)
            stats = rank_statistics(mesh, layout)
            ph = model_matvec(stats, p=1, dim=3, machine=FRONTERA,
                              dofs_per_node=NS_DOFS)
            times.append(ph.time * 300)
        out.append((mesh.n_elem, ranks, times))
    return out


def test_table6_classroom_scaling(benchmark):
    out = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    t = ResultTable(
        "table6_classroom_scaling",
        "Table 6: classroom strong scaling (modelled total solve time)",
    )
    effs_all = []
    for n_elem, ranks, times in out:
        t.row(f"-- mesh: {n_elem} elements")
        t.row(f"{'ranks':>6} {'time(s)':>9} {'efficiency':>11}")
        t0 = times[0] * ranks[0]
        effs = [t0 / (tt * r) for tt, r in zip(times, ranks)]
        for r, tt, e in zip(ranks, times, effs):
            t.row(f"{r:>6} {tt:>9.3f} {e:>11.2f}")
        effs_all.append(effs)
    t.row("paper: ~0.90 efficiency over a 16x rank increase")
    t.save()
    for effs in effs_all:
        assert effs[-1] > 0.55, "classroom strong scaling collapsed"
        assert all(e <= 1.05 for e in effs)
