"""Shared helpers for the benchmark/experiment harness.

Every bench regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and writes its rows both to stdout
and to ``benchmarks/results/<name>.txt`` so the output survives pytest
capture.  A machine-readable JSON sidecar
(``benchmarks/results/<name>.json``, schema ``repro.obs/bench.v1``) is
written alongside: the same lines, any structured records added with
:meth:`ResultTable.record`, and the aggregated :mod:`repro.obs` trace
summary of the run.  Absolute numbers are laptop-scale; EXPERIMENTS.md
records the paper-vs-measured comparison.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


class ResultTable:
    """Collects printed rows and persists them per experiment."""

    def __init__(self, name: str, title: str, results_dir=None):
        self.name = name
        self.title = title
        self.results_dir = Path(results_dir) if results_dir else RESULTS_DIR
        self.lines: list[str] = [title, "=" * len(title)]
        self.records: list[dict] = []
        print(f"\n{title}", flush=True)

    def row(self, text: str) -> None:
        self.lines.append(text)
        print(text, flush=True)

    def record(self, **fields) -> None:
        """Add one structured row to the JSON sidecar (not printed)."""
        self.records.append(fields)

    def save(self) -> Path:
        self.results_dir.mkdir(parents=True, exist_ok=True)
        out = self.results_dir / f"{self.name}.txt"
        out.write_text("\n".join(self.lines) + "\n")
        self._save_sidecar()
        return out

    def _save_sidecar(self) -> Path:
        from repro.obs import summary
        from repro.obs.report import BENCH_SCHEMA_ID

        doc = {
            "schema": BENCH_SCHEMA_ID,
            "name": self.name,
            "title": self.title,
            "lines": self.lines,
            "records": self.records,
            "trace": summary(),
        }
        out = self.results_dir / f"{self.name}.json"
        out.write_text(json.dumps(doc, indent=1) + "\n")
        return out
