"""Shared helpers for the benchmark/experiment harness.

Every bench regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and writes its rows both to stdout
and to ``benchmarks/results/<name>.txt`` so the output survives pytest
capture.  Absolute numbers are laptop-scale; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


class ResultTable:
    """Collects printed rows and persists them per experiment."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.lines: list[str] = [title, "=" * len(title)]
        print(f"\n{title}", flush=True)

    def row(self, text: str) -> None:
        self.lines.append(text)
        print(text, flush=True)

    def save(self) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{self.name}.txt"
        out.write_text("\n".join(self.lines) + "\n")
        return out
