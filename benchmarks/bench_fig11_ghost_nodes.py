"""E9 — Fig. 11: ghost-node distribution and η = N_G/N_L vs rank count.

For the carved-sphere mesh the per-rank ghost-node mean/std measures
the communication volume, and the ratio η of ghost to owned-referenced
nodes measures how much communication can hide behind computation.
The paper derives η ∝ 1/(p+1) (surface nodes grow as (p+1)^(d-1),
volume nodes as (p+1)^d) and observes the quadratic curves below the
linear ones — reproduced here from real partitions of real meshes.
"""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.geometry import SphereCarve
from repro.parallel import analyze_partition, partition_mesh

from _util import ResultTable


def run_ghost_analysis():
    dom = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    meshes = {p: build_mesh(dom, 4, 8, p=p) for p in (1, 2)}
    ranks = (2, 4, 8, 16, 32, 64)
    out = {}
    for p, mesh in meshes.items():
        rows = []
        for nranks in ranks:
            splits = partition_mesh(mesh, nranks, load_tol=0.1)
            layout = analyze_partition(mesh, splits)
            g = layout.ghost_counts
            rows.append((nranks, float(g.mean()), float(g.std()),
                         float(layout.eta().mean())))
        out[p] = rows
    return out


def test_fig11_ghost_nodes(benchmark):
    out = benchmark.pedantic(run_ghost_analysis, rounds=1, iterations=1)
    t = ResultTable(
        "fig11_ghost_nodes",
        "Fig 11: ghost nodes (mean/std) and eta = N_G/N_L per rank count",
    )
    for p, rows in out.items():
        t.row(f"-- p={p}")
        t.row(f"{'ranks':>6} {'ghost mean':>11} {'ghost std':>10} {'eta':>8}")
        for nranks, gm, gs, eta in rows:
            t.row(f"{nranks:>6} {gm:>11.1f} {gs:>10.1f} {eta:>8.4f}")
    t.row("paper: eta grows with ranks; eta(quadratic) < eta(linear), "
          "ratio ~ (p+1) factor from surface/volume scaling")
    t.save()
    for p, rows in out.items():
        etas = [r[3] for r in rows]
        assert etas[-1] > etas[0], "eta must grow with rank count"
        gms = [r[1] for r in rows]
        assert gms[0] > 0
    # the paper's p-scaling: eta_linear / eta_quadratic ≈ (2+1)/(1+1) = 1.5
    ratio = np.mean(
        [l[3] / q[3] for l, q in zip(out[1], out[2])]
    )
    assert 1.1 < ratio < 2.2, f"eta ratio {ratio} outside the 1/(p+1) trend"
