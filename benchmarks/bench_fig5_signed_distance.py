"""E1 — Fig. 5b: signed-distance error of the voxelised geometry.

The carved octree approximates the true surface by a voxelated
boundary; the paper measures the L∞ signed distance from the octree's
boundary nodes to the STL surface of the Stanford dragon and observes
first-order convergence with the boundary refinement level.  We run the
identical pipeline on the procedural dragon-substitute blob (and the
icosphere as a smooth control), computing the signed distance with the
in-repo trimesh substrate (Eq. 3 of the paper's Appendix B.1).
"""

import numpy as np
import pytest

from repro import Domain, build_mesh
from repro.analysis import fit_rate
from repro.geometry import TriMeshCarve, dragon_blob

from _util import ResultTable


def _boundary_node_error(pred, mesh):
    pts = mesh.node_coords()
    bnodes = pts[mesh.nodes.carved_node]
    sd = pred.mesh.signed_distance(bnodes)
    return float(np.abs(sd).max()), len(bnodes)


def run_signed_distance(levels=(4, 5, 6, 7)):
    blob = dragon_blob((0.5, 0.5, 0.5), 0.28, subdivisions=3)
    pred = TriMeshCarve(blob)
    dom = Domain(pred)
    rows = []
    for lv in levels:
        mesh = build_mesh(dom, 3, lv, p=1)
        err, nb = _boundary_node_error(pred, mesh)
        h = 1.0 / (1 << lv)
        rows.append((lv, h, mesh.n_elem, nb, err))
    return rows


def test_fig5_signed_distance(benchmark):
    rows = benchmark.pedantic(run_signed_distance, rounds=1, iterations=1)
    t = ResultTable(
        "fig5_signed_distance",
        "Fig 5b: Linf signed-distance error vs boundary refinement "
        "(dragon-substitute blob)",
    )
    t.row(f"{'level':>6} {'h':>10} {'elems':>8} {'bnd nodes':>10} {'Linf err':>12}")
    for lv, h, ne, nb, err in rows:
        t.row(f"{lv:>6} {h:>10.5f} {ne:>8} {nb:>10} {err:>12.5e}")
    hs = np.array([r[1] for r in rows])
    errs = np.array([r[4] for r in rows])
    rate = fit_rate(hs, errs)
    t.row(f"fitted convergence order: {rate:.2f}  (paper: first order)")
    t.save()
    assert 0.6 < rate < 1.6, "signed-distance error must converge ~first order"
    assert errs[-1] < errs[0]
