"""E5/E6 — Figs. 7-8 + Table 3 (channel): strong & weak MATVEC scaling.

The 16×1×1 elongated channel carved from a 16³ cube, refined at the
walls — the boundary-dominated workload of §4.5.1.  For every virtual
rank count the partition, ghost structure and message counts are
*measured* from the real mesh; phase times (top-down, leaf, bottom-up,
comm, malloc) come from the calibrated machine model (DESIGN.md).  The
distributed MATVEC itself is executed and verified against the serial
result.  Paper efficiencies: strong 81% (linear) / 90% (quadratic) over
128×; weak 82% / 86%.  Quadratic scales better than linear because
η = N_ghost/N_owned ∝ 1/(p+1).
"""

import numpy as np

from repro import Domain, build_mesh, obs
from repro.core.matvec import MapBasedMatVec
from repro.geometry import BoxRetain
from repro.parallel import (
    FRONTERA,
    SimComm,
    analyze_partition,
    distributed_matvec,
    model_matvec,
    partition_mesh,
    rank_statistics,
)

from _util import ResultTable


def channel_domain(length=16.0):
    return Domain(
        BoxRetain([0, 0, 0], [length, 1, 1],
                  domain=([0, 0, 0], [length, length, length])),
        scale=length,
    )


def scaling_run(mesh, ranks_list, verify_ranks=()):
    """Measured partition stats + modelled times per rank count.

    The modelled phase breakdown is published as ``matvec.<phase>``
    spans under one ``matvec.modelled`` span per rank count; the
    reported Fig 7 percentages are read back from those spans
    (requires :mod:`repro.obs` to be enabled by the caller).
    """
    rows = []
    serial = None
    for nranks in ranks_list:
        splits = partition_mesh(mesh, nranks, load_tol=0.1)
        layout = analyze_partition(mesh, splits)
        stats = rank_statistics(mesh, layout)
        phases = model_matvec(stats, p=mesh.p, dim=mesh.dim, machine=FRONTERA)
        with obs.span("matvec.modelled", ranks=nranks, p=mesh.p):
            phase_spans = {
                k: obs.record(f"matvec.{k}", float(v))
                for k, v in phases.breakdown().items()
            }
        if nranks in verify_ranks:
            if serial is None:
                rng = np.random.default_rng(0)
                u = rng.standard_normal(mesh.n_nodes)
                serial = (u, MapBasedMatVec(mesh)(u))
            u, ref = serial
            dist = distributed_matvec(mesh, layout, u, SimComm(nranks))
            assert np.allclose(dist, ref, atol=1e-9)
        rows.append((nranks, stats, phases, phase_spans))
    return rows


def _report_strong(t, rows, label):
    t.row(f"-- strong scaling, {label}")
    t.row(f"{'ranks':>6} {'elem/rank':>10} {'t_matvec':>10} {'cost(t*P)':>10} "
          f"{'eff':>6}  {'breakdown td/leaf/bu/comm/malloc (%)':>38}")
    t0 = None
    effs = []
    for nranks, stats, ph, phase_spans in rows:
        tt = ph.time
        t0 = t0 or tt * nranks
        eff = t0 / (tt * nranks)
        effs.append(eff)
        # Fig 7 breakdown straight from the recorded obs spans
        br = {k: sp.duration for k, sp in phase_spans.items()}
        tot = sum(br.values())
        pct = "/".join(f"{100 * br[k] / tot:.0f}" for k in
                       ("top_down", "leaf", "bottom_up", "comm", "malloc"))
        t.row(f"{nranks:>6} {stats.n_elem.mean():>10.0f} {tt * 1e3:>8.2f}ms "
              f"{ph.parallel_cost() * 1e3:>8.1f}ms {eff:>6.2f}  {pct:>38}")
        t.record(label=label, ranks=nranks, t_matvec=tt, efficiency=eff, **br)
    return effs


def test_channel_strong_scaling(benchmark):
    dom = channel_domain()
    meshes = benchmark.pedantic(
        lambda: {p: build_mesh(dom, 6, 8, p=p) for p in (1, 2)},
        rounds=1, iterations=1,
    )
    t = ResultTable(
        "fig7_channel_strong",
        "Fig 7 + Table 3: channel strong scaling (parallel cost; model times "
        "from measured partitions)",
    )
    ranks = (1, 2, 4, 8, 16, 32, 64, 128)
    effs = {}
    obs.reset()
    obs.enable()
    try:
        for p, mesh in meshes.items():
            t.row(f"mesh: {mesh.n_elem} elements, {mesh.n_nodes} DOFs (p={p})")
            rows = scaling_run(mesh, ranks, verify_ranks=(8,))
            effs[p] = _report_strong(t, rows, f"p={p}")
    finally:
        obs.disable()
    t.row("paper: 81% (linear) and 90% (quadratic) efficiency at 128x")
    t.save()
    assert effs[1][-1] > 0.5, "linear strong efficiency collapsed"
    assert effs[2][-1] > effs[1][-1] - 0.05, \
        "quadratic should scale at least as well as linear"
    # DOF ratio ~8x with identical element partitions (the paper's setup)
    assert meshes[2].n_nodes / meshes[1].n_nodes > 6


def test_channel_weak_scaling(benchmark):
    dom = channel_domain()
    grain = 2200  # elements per rank (paper: 35K/core, scaled down)
    levels = [(5, 7), (6, 8), (7, 9)]

    def build_all():
        return [
            {p: build_mesh(dom, b, bl, p=p) for p in (1, 2)} for b, bl in levels
        ]

    series = benchmark.pedantic(build_all, rounds=1, iterations=1)
    t = ResultTable(
        "fig8_channel_weak",
        "Fig 8 + Table 3: channel weak scaling (fixed grain per rank)",
    )
    effs = {}
    for p in (1, 2):
        t.row(f"-- p={p}")
        t.row(f"{'ranks':>6} {'elements':>9} {'elem/rank':>10} {'DOFs':>9} "
              f"{'t_matvec':>10} {'eff':>6}")
        t0 = None
        eff = []
        for meshes in series:
            mesh = meshes[p]
            nranks = max(1, round(mesh.n_elem / grain))
            splits = partition_mesh(mesh, nranks, load_tol=0.1)
            layout = analyze_partition(mesh, splits)
            stats = rank_statistics(mesh, layout)
            ph = model_matvec(stats, p=p, dim=3, machine=FRONTERA)
            tt = ph.time
            t0 = t0 or tt
            eff.append(t0 / tt)
            t.row(f"{nranks:>6} {mesh.n_elem:>9} {mesh.n_elem / nranks:>10.0f} "
                  f"{mesh.n_nodes:>9} {tt * 1e3:>8.2f}ms {eff[-1]:>6.2f}")
        effs[p] = eff
    t.row("paper: weak efficiency 82% (linear) / 86% (quadratic) at 512x")
    t.save()
    assert effs[1][-1] > 0.5 and effs[2][-1] > 0.5
