"""E10 — Fig. 12: roofline of the Poisson elemental MATVEC.

Arithmetic intensity is counted analytically (tensorised FLOPs over the
traversal's byte traffic, the paper's quantities: AI ≈ 0.072 linear,
≈ 0.121 quadratic at ≈ 60 GB/s); the achieved FLOP rate of our numpy
kernel is measured by timing.  The headline property — AI and achieved
rate both *grow with p* because compute scales as O(d(p+1)^(d+1))
while data scales as O((p+1)^d) — is asserted.
"""

import pytest

from repro import Domain, build_mesh, obs
from repro.analysis import (
    analyze_kernel,
    measured_kernel_points,
    roofline_ceilings,
)
from repro.geometry import BoxRetain, SphereCarve
from repro.kernels import available_backends, backend_names

from _util import ResultTable


def run_roofline():
    dom_c = Domain(
        BoxRetain([0, 0, 0], [16, 1, 1], domain=([0, 0, 0], [16, 16, 16])),
        scale=16.0,
    )
    dom_s = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    points = []
    for name, dom, lv in (("channel", dom_c, (6, 7)), ("sphere", dom_s, (4, 7))):
        for p in (1, 2):
            mesh = build_mesh(dom, lv[0], lv[1], p=p)
            pt = analyze_kernel(mesh)
            points.append((name, pt))
    return points


def run_backend_columns():
    """Per-backend achieved kernel rates on the sphere p=1 mesh,
    measured through the repro.kernels facade counters."""
    dom_s = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    mesh = build_mesh(dom_s, 4, 7, p=1)
    avail = available_backends()
    rows = []
    obs.reset()
    obs.enable()
    try:
        for name in backend_names():
            if not avail[name]:
                continue
            analyze_kernel(mesh, repeats=3, backend=name)
        rows = measured_kernel_points()
    finally:
        obs.disable()
    return rows


def test_fig12_roofline(benchmark):
    points = benchmark.pedantic(run_roofline, rounds=1, iterations=1)
    ceil = roofline_ceilings()
    t = ResultTable(
        "fig12_roofline",
        "Fig 12: roofline — arithmetic intensity & achieved GFLOP/s",
    )
    t.row(f"machine model: bw = {ceil['memory_bw'] / 1e9:.0f} GB/s, "
          f"peak = {ceil['peak_flops'] / 1e9:.0f} GFLOP/s, "
          f"ridge AI = {ceil['ridge_ai']:.2f}")
    t.row(f"{'mesh':>8} {'p':>3} {'AI (model)':>11} {'bw-bound GF/s':>14} "
          f"{'paper-model GF/s':>17} {'our numpy GF/s':>15}")
    by_p = {1: [], 2: []}
    for name, pt in points:
        t.row(f"{name:>8} {pt.p:>3} {pt.arithmetic_intensity:>11.3f} "
              f"{pt.bandwidth_bound_gflops / 1e9:>14.2f} "
              f"{pt.model_gflops / 1e9:>17.1f} "
              f"{pt.measured_gflops / 1e9:>15.2f}")
        by_p[pt.p].append(pt)
    t.row("paper: AI 0.072 (linear) / 0.121 (quadratic); achieved "
          "~4 / ~7 GFLOP/s — memory bound")
    # measured per-kernel per-backend achieved rates (repro.kernels
    # facade counters) — the achieved half of predicted-vs-achieved
    t.row(f"{'kernel':>12} {'backend':>8} {'AI (meas)':>10} "
          f"{'achieved GF/s':>14} {'frac-of-peak':>13}")
    measured = run_backend_columns()
    for m in measured:
        t.row(f"{m.kernel:>12} {m.backend:>8} "
              f"{m.arithmetic_intensity:>10.3f} "
              f"{m.achieved_gflops / 1e9:>14.3f} "
              f"{m.fraction_of_peak:>13.4f}")
        t.record(column="measured_kernel", **m.to_doc())
    t.save()
    assert measured, "kernel facade published no measured counters"
    assert all(0.0 <= m.fraction_of_peak <= 1.5 for m in measured)
    ai1 = by_p[1][0].arithmetic_intensity
    ai2 = by_p[2][0].arithmetic_intensity
    assert ai2 > ai1, "AI must grow with polynomial order"
    assert 0.03 < ai1 < 0.3 and 0.05 < ai2 < 0.5, "AI in the paper's regime"
    # memory bound: both AIs sit left of the ridge point
    assert ai2 < ceil["ridge_ai"]
    # our batched kernel should also run faster per-FLOP at p=2
    assert (by_p[2][0].measured_gflops > by_p[1][0].measured_gflops)
