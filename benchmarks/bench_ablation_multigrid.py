"""Ablation — geometric multigrid vs single-level preconditioning.

§3.6 motivates fast assembly by "problems whose convergence heavily
depends on the preconditioners"; the natural octree preconditioner is a
geometric V-cycle over a hierarchy of carved meshes (the Dendro
lineage).  This bench measures CG iteration counts with Jacobi,
block-Jacobi (ASM-like) and the V-cycle on the carved-disk Poisson
system at two resolutions, showing the mesh-independent convergence of
multigrid.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Domain, assemble, build_mesh
from repro.geometry import SphereCarve
from repro.solvers import BlockJacobi, MultigridPoisson, cg, jacobi

from _util import ResultTable


def _system(mesh):
    A = assemble(mesh)
    fixed = mesh.dirichlet_mask
    keep = sp.diags((~fixed).astype(float))
    Abc = (keep @ A @ keep + sp.diags(fixed.astype(float))).tocsr()
    b = keep @ np.ones(mesh.n_nodes)
    return Abc, b, fixed


def run_mg_ablation():
    dom = Domain(SphereCarve([0.5, 0.5], 0.25))
    rows = []
    for fine in (5, 6):
        meshes = [build_mesh(dom, lv, lv + 2, p=1) for lv in range(fine, 2, -1)]
        Abc, b, fixed = _system(meshes[0])
        iters = {}
        iters["jacobi"] = cg(Abc, b, M=jacobi(Abc), rtol=1e-8, maxiter=20000).iterations
        iters["block-jacobi"] = cg(
            Abc, b, M=BlockJacobi(Abc, nblocks=8), rtol=1e-8, maxiter=20000
        ).iterations
        mg = MultigridPoisson(meshes, Abc, fixed)
        iters["mg-vcycle"] = cg(Abc, b, M=mg, rtol=1e-8).iterations
        rows.append((meshes[0].n_nodes, len(meshes), iters))
    return rows


def test_ablation_multigrid(benchmark):
    rows = benchmark.pedantic(run_mg_ablation, rounds=1, iterations=1)
    t = ResultTable(
        "ablation_multigrid",
        "Ablation: CG iterations by preconditioner (carved-disk Poisson)",
    )
    t.row(f"{'DOFs':>7} {'levels':>7} {'jacobi':>8} {'block-jacobi':>13} "
          f"{'mg-vcycle':>10}")
    for n, nl, it in rows:
        t.row(f"{n:>7} {nl:>7} {it['jacobi']:>8} {it['block-jacobi']:>13} "
              f"{it['mg-vcycle']:>10}")
    t.row("multigrid iteration counts are (near) mesh-independent")
    t.save()
    for n, nl, it in rows:
        assert it["mg-vcycle"] < it["jacobi"] / 2
    # mesh independence: growth far below the Jacobi growth
    growth_mg = rows[1][2]["mg-vcycle"] / max(rows[0][2]["mg-vcycle"], 1)
    growth_j = rows[1][2]["jacobi"] / max(rows[0][2]["jacobi"], 1)
    assert growth_mg < growth_j
