"""Per-request timeline reconstruction and stage attribution.

Given a flight-recorder stream (:mod:`repro.obs.events`), rebuild the
full causal timeline of any request — router → shard → scheduler →
batch → solve/cache → response — and attribute its end-to-end virtual
latency to serving stages:

``admission``
    submission to scheduler enqueue (non-zero when the owning shard's
    clock was already past the arrival tick — the shard was busy).
``queue``
    enqueue to the (final) batch formation — dispatch-order wait,
    retry backoff and steal migration all land here.
``batch``
    batch formation to solve start, *minus* the explicitly accounted
    build/cache/factor ticks — the residual batch-assembly wait.
``build`` / ``cache`` / ``factor``
    cold mesh+operator construction, second-tier transfer, and
    batch-key factorization ticks paid by the request's batch.
``solve``
    block-solve execution ticks.

The decomposition is exact by construction: the stage durations of a
request **sum to its end-to-end virtual latency** (asserted by the
tests for every request of every workload, retries and steals
included).  Batch-scoped events (cache/build/factor/solve_exec) carry
a ``bid`` attr and are joined into each member's timeline through the
member's own ``batch_form`` event.

Everything here is pure event-stream arithmetic on integer ticks —
reconstruction of the same stream is bit-deterministic, which is what
lets the fail-over tests compare recovered timelines for equality via
:func:`timeline_doc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .counters import Histogram
from .events import Event, EventLog

__all__ = [
    "STAGES",
    "RequestTimeline",
    "reconstruct",
    "resolve_rid",
    "timelines",
    "stage_histograms",
    "timeline_doc",
    "render_timeline",
    "events_to_chrome",
]

#: Serving stages, in pipeline order.  Per completed request the stage
#: durations sum exactly to ``t_done - t_submit`` on the virtual clock.
STAGES = ("admission", "queue", "batch", "build", "cache", "factor", "solve")

#: Batch-scoped event kinds joined into member timelines via ``bid``.
_BATCH_KINDS = frozenset(
    {"cache_hit", "cache_miss", "build", "factor", "solve_exec",
     "corrupt_detect", "quarantine"}
)


@dataclass
class RequestTimeline:
    """The reconstructed causal history of one request."""

    rid: str
    status: str
    reason: str
    pde: str
    t_submit: int
    t_done: int
    deadline: int | None
    retries: int
    stages: dict[str, int]
    shards: list[str] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)

    @property
    def latency(self) -> int:
        return self.t_done - self.t_submit

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def resolve_rid(log: EventLog, prefix: str) -> str:
    """Resolve a (possibly abbreviated) request id against the log."""
    rids = log.request_ids()
    if prefix in rids:
        return prefix
    matches = [r for r in rids if r.startswith(prefix)]
    if not matches:
        raise KeyError(f"no request matching {prefix!r} in the event stream")
    if len(matches) > 1:
        raise KeyError(
            f"request id prefix {prefix!r} is ambiguous "
            f"({len(matches)} matches)"
        )
    return matches[0]


def reconstruct(log: EventLog, rid: str) -> RequestTimeline:
    """Rebuild one request's timeline (``rid`` may be a unique prefix).

    Raises ``KeyError`` for an unknown id and ``ValueError`` for a
    request that never completed (the stream was captured mid-flight).
    """
    rid = resolve_rid(log, rid)
    own = log.for_request(rid)
    bids = {ev.get("bid") for ev in own if ev.get("bid") is not None}
    events = list(own)
    if bids:
        events += [
            ev for ev in log.events
            if ev.rid != rid and ev.kind in _BATCH_KINDS
            and ev.get("bid") in bids
        ]
        events.sort(key=lambda ev: ev.seq)

    completes = [ev for ev in own if ev.kind == "complete"]
    if not completes:
        raise ValueError(
            f"request {rid[:12]}… never completed in this event stream"
        )
    done = completes[-1]
    submits = [ev for ev in own if ev.kind == "submit"]
    t_submit = int(done.get("t_submit", submits[0].tick if submits
                            else own[0].tick))
    t_done = done.tick
    deadline = submits[0].get("deadline") if submits else None
    pde = str(done.get("pde", submits[0].get("pde", "") if submits else ""))

    enqueues = [ev for ev in own if ev.kind == "enqueue"]
    forms = [ev for ev in own if ev.kind == "batch_form"]
    stages = dict.fromkeys(STAGES, 0)
    if enqueues:
        t_admit = enqueues[0].tick
        stages["admission"] = t_admit - t_submit
        if forms:
            # a hedged request can be formed into batches on several
            # shards; the completion event names the *winning* batch,
            # and the stage arithmetic must follow that one (it still
            # telescopes to t_done - t_submit exactly)
            wbid = done.get("bid")
            winners = [f for f in forms if wbid and f.get("bid") == wbid]
            last = winners[-1] if winners else forms[-1]
            bid = last.get("bid")
            t_form = last.tick
            stages["queue"] = t_form - t_admit
            batch_events = [ev for ev in events if ev.get("bid") == bid]
            for kind, stage in (("build", "build"), ("factor", "factor"),
                                ("cache_hit", "cache")):
                stages[stage] = sum(
                    int(ev.get("ticks", 0)) for ev in batch_events
                    if ev.kind == kind
                )
            starts = [ev for ev in own
                      if ev.kind == "solve_start" and ev.get("bid") == bid]
            t_exec_end = starts[-1].tick if starts else t_done
            stages["batch"] = (
                t_exec_end - t_form
                - stages["build"] - stages["cache"] - stages["factor"]
            )
            stages["solve"] = t_done - t_exec_end
        else:
            stages["queue"] = t_done - t_admit
    else:
        # refused at admission: the whole latency is admission wait
        stages["admission"] = t_done - t_submit

    shards: list[str] = []
    for ev in events:
        if ev.shard is not None and (not shards or shards[-1] != ev.shard):
            shards.append(ev.shard)
    return RequestTimeline(
        rid=rid, status=str(done.get("status", "")),
        reason=str(done.get("reason", "")), pde=pde,
        t_submit=t_submit, t_done=t_done,
        deadline=deadline, retries=int(done.get("retries", 0)),
        stages=stages, shards=shards, events=events,
    )


def timelines(log: EventLog) -> list[RequestTimeline]:
    """Timelines of every *completed* request, in first-seen order
    (requests still in flight when the stream was captured are
    skipped)."""
    out: list[RequestTimeline] = []
    for rid in log.request_ids():
        try:
            out.append(reconstruct(log, rid))
        except ValueError:
            continue
    return out


def stage_histograms(log: EventLog) -> dict[str, Histogram]:
    """Deterministic per-stage latency histograms over all completed
    requests, plus an ``e2e`` end-to-end histogram."""
    hists = {stage: Histogram() for stage in (*STAGES, "e2e")}
    for tl in timelines(log):
        hists["e2e"].observe(tl.latency)
        for stage, ticks in tl.stages.items():
            hists[stage].observe(ticks)
    return hists


def timeline_doc(tl: RequestTimeline) -> dict:
    """Canonical, replay-comparable document of a timeline.

    Global sequence numbers are dropped — a killed-and-recovered run
    interleaves extra fail-over events, shifting every later ``seq`` —
    but ticks, kinds, shards and attrs are kept verbatim, so two runs
    agree on a request's ``timeline_doc`` iff the request experienced
    the *identical* causal history on the virtual clock.
    """
    return {
        "rid": tl.rid,
        "status": tl.status,
        "reason": tl.reason,
        "pde": tl.pde,
        "t_submit": tl.t_submit,
        "t_done": tl.t_done,
        "retries": tl.retries,
        "stages": dict(tl.stages),
        "shards": list(tl.shards),
        "events": [
            {"tick": ev.tick, "kind": ev.kind, "shard": ev.shard,
             "attrs": ev.attrs}
            for ev in tl.events
        ],
    }


def render_timeline(tl: RequestTimeline) -> str:
    """Human-readable causal timeline of one request."""
    lines = [
        f"request {tl.rid}",
        f"  status={tl.status} reason={tl.reason or '-'} pde={tl.pde} "
        f"retries={tl.retries}",
        f"  t_submit={tl.t_submit} t_done={tl.t_done} "
        f"latency={tl.latency} ticks"
        + (f" (deadline {tl.deadline})" if tl.deadline is not None else ""),
        "  hops: " + (" -> ".join(tl.shards) if tl.shards else "(local)"),
        "  stages: "
        + " ".join(f"{s}={tl.stages[s]}" for s in STAGES)
        + f"  (sum={sum(tl.stages.values())})",
        f"  {'seq':>6} {'tick':>10} {'shard':<8} {'kind':<16} attrs",
    ]
    for ev in tl.events:
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(ev.attrs.items())
            if k not in ("t_submit",)
        )
        lines.append(
            f"  {ev.seq:>6} {ev.tick:>10} {ev.shard or '-':<8} "
            f"{ev.kind:<16} {attrs}"
        )
    return "\n".join(lines)


def events_to_chrome(log: EventLog) -> dict:
    """Chrome trace-format timeline of an event stream, one process
    track per shard (load via chrome://tracing or Perfetto).

    Each completed request becomes one complete ("X") event on its
    final shard's track (ts = submission tick, dur = end-to-end
    latency, args = the stage breakdown); rows within a shard track are
    assigned in completion order.  Steals, retries, rejects and
    fail-overs appear as instant ("i") markers.  One virtual tick maps
    to one microsecond.
    """
    shard_pids: dict[str, int] = {}

    def pid_of(shard: str | None) -> int:
        name = shard or "service"
        if name not in shard_pids:
            shard_pids[name] = len(shard_pids) + 1
        return shard_pids[name]

    events: list[dict] = []
    rows: dict[int, int] = {}
    for tl in timelines(log):
        pid = pid_of(tl.shards[-1] if tl.shards else None)
        rows[pid] = rows.get(pid, 0) + 1
        events.append({
            "name": f"req {tl.rid[:10]} [{tl.status}]",
            "ph": "X", "ts": float(tl.t_submit), "dur": float(tl.latency),
            "pid": pid, "tid": rows[pid],
            "args": {"stages": dict(tl.stages), "pde": tl.pde,
                     "reason": tl.reason, "retries": tl.retries},
        })
    for ev in log.events:
        if ev.kind in ("steal", "retry", "reject", "failover",
                       "failover_replay", "hedge", "hedge_win",
                       "breaker_open", "breaker_half_open",
                       "breaker_close", "shed", "degrade",
                       "corrupt_detect", "quarantine"):
            events.append({
                "name": ev.kind, "ph": "i", "ts": float(ev.tick), "s": "p",
                "pid": pid_of(ev.shard), "tid": 0,
                "args": {"rid": ev.rid[:10], **ev.attrs},
            })
    meta = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": name}}
        for name, pid in sorted(shard_pids.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}
