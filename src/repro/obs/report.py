"""Run artifacts: JSON export, text reports, Chrome-trace timelines.

A *run artifact* is the machine-readable record of one traced run:

.. code-block:: json

    {
      "schema": "repro.obs/run.v1",
      "name": "mvc-channel",
      "meta": {"argv": "..."},
      "spans": [ {"name": "build_mesh", "duration": ..,
                  "counters": {..}, "children": [..]} ],
      "metrics": {"counters": {"comm.bytes_sent{rank=\\"0\\"}": 512.0},
                  "gauges": {}}
    }

The span tree mirrors :class:`repro.obs.trace.Span`; ``metrics`` is the
flat Prometheus-style dump of the global counter registry.  Artifacts
are what ``python -m repro trace-report`` renders and what
:mod:`repro.obs.regress` diffs for perf-trajectory tracking.
"""

from __future__ import annotations

import json
from pathlib import Path

from . import counters as _counters
from .trace import TRACER

__all__ = [
    "RUN_SCHEMA_ID",
    "BENCH_SCHEMA_ID",
    "ARTIFACT_SCHEMA",
    "BENCH_SCHEMA",
    "collect",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
    "canonical_metrics",
    "canonical_spans",
    "summary",
    "render_report",
    "to_chrome_trace",
]

RUN_SCHEMA_ID = "repro.obs/run.v1"
BENCH_SCHEMA_ID = "repro.obs/bench.v1"

_SPAN_SCHEMA = {
    "type": "object",
    "required": ["name", "count"],
    "properties": {
        "name": {"type": "string"},
        "attrs": {"type": "object"},
        "t_start": {"type": "number"},
        "duration": {"type": "number"},
        "count": {"type": "integer", "minimum": 0},
        "counters": {"type": "object", "additionalProperties": {"type": "number"}},
        "meta": {"type": "object"},
        "children": {"type": "array", "items": {"$ref": "#/$defs/span"}},
    },
}

#: JSON Schema of a run artifact (draft 2020-12 subset).
ARTIFACT_SCHEMA = {
    "$id": "https://repro.invalid/schemas/run.v1.json",
    "type": "object",
    "required": ["schema", "name", "spans", "metrics"],
    "properties": {
        "schema": {"const": RUN_SCHEMA_ID},
        "name": {"type": "string"},
        "meta": {"type": "object"},
        "spans": {"type": "array", "items": {"$ref": "#/$defs/span"}},
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges"],
            "properties": {
                "counters": {
                    "type": "object",
                    "additionalProperties": {"type": "number"},
                },
                "gauges": {
                    "type": "object",
                    "additionalProperties": {"type": "number"},
                },
                "histograms": {
                    "type": "object",
                    "additionalProperties": {"type": "object"},
                },
            },
        },
    },
    "$defs": {"span": _SPAN_SCHEMA},
}

#: JSON Schema of a benchmark sidecar (``benchmarks/results/<name>.json``).
BENCH_SCHEMA = {
    "$id": "https://repro.invalid/schemas/bench.v1.json",
    "type": "object",
    "required": ["schema", "name", "title", "lines"],
    "properties": {
        "schema": {"const": BENCH_SCHEMA_ID},
        "name": {"type": "string"},
        "title": {"type": "string"},
        "lines": {"type": "array", "items": {"type": "string"}},
        "records": {"type": "array", "items": {"type": "object"}},
        "trace": {"type": "object"},
    },
    "$defs": {"span": _SPAN_SCHEMA},
}


def collect(name: str, meta: dict | None = None) -> dict:
    """Snapshot the global tracer + counter registry into an artifact."""
    return {
        "schema": RUN_SCHEMA_ID,
        "name": name,
        "meta": dict(meta) if meta else {},
        "spans": [root.to_dict() for root in TRACER.roots],
        "metrics": _counters.snapshot(),
    }


def write_artifact(path, name: str, meta: dict | None = None) -> Path:
    """Collect and write an artifact; returns the written path."""
    path = Path(path)
    doc = collect(name, meta)
    path.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")
    return path


def load_artifact(path) -> dict:
    doc = json.loads(Path(path).read_text())
    errors = validate_artifact(doc)
    if errors:
        raise ValueError(f"{path}: not a valid run artifact: {errors[0]}")
    return doc


def validate_artifact(doc, schema: dict | None = None) -> list[str]:
    """Structural validation against :data:`ARTIFACT_SCHEMA` (or the
    bench schema).  Dependency-free subset of JSON Schema: checks the
    schema tag, required keys and container/leaf types; returns a list
    of error strings (empty = valid)."""
    schema = schema or ARTIFACT_SCHEMA
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["artifact must be a JSON object"]
    props = schema["properties"]
    for key in schema["required"]:
        if key not in doc:
            errors.append(f"missing required key {key!r}")
    tag = props["schema"].get("const")
    if tag is not None and doc.get("schema") != tag:
        errors.append(f"schema tag must be {tag!r}, got {doc.get('schema')!r}")
    if "spans" in doc:
        if not isinstance(doc["spans"], list):
            errors.append("spans must be an array")
        else:
            for s in doc["spans"]:
                errors.extend(_validate_span(s))
    if "metrics" in schema["required"]:
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            errors.append("metrics must be an object")
        else:
            for grp in ("counters", "gauges"):
                vals = metrics.get(grp)
                if not isinstance(vals, dict):
                    errors.append(f"metrics.{grp} must be an object")
                    continue
                for k, v in vals.items():
                    if not isinstance(v, (int, float)) or isinstance(v, bool):
                        errors.append(f"metrics.{grp}[{k!r}] must be a number")
    if "lines" in schema["required"]:
        lines = doc.get("lines")
        if not isinstance(lines, list) or not all(
            isinstance(x, str) for x in lines
        ):
            errors.append("lines must be an array of strings")
    return errors


def _validate_span(s, path: str = "spans") -> list[str]:
    errors: list[str] = []
    if not isinstance(s, dict):
        return [f"{path}: span must be an object"]
    if not isinstance(s.get("name"), str):
        errors.append(f"{path}: span name must be a string")
    if not isinstance(s.get("count"), int):
        errors.append(f"{path}.{s.get('name')}: count must be an integer")
    ctr = s.get("counters", {})
    if not isinstance(ctr, dict):
        errors.append(f"{path}.{s.get('name')}: counters must be an object")
    for key in ("t_start", "duration"):
        if key in s and not isinstance(s[key], (int, float)):
            errors.append(f"{path}.{s.get('name')}: {key} must be a number")
    for c in s.get("children", []):
        errors.extend(_validate_span(c, f"{path}.{s.get('name')}"))
    return errors


def canonical_spans(doc_or_spans) -> list[dict]:
    """Timing-free canonical form of a span forest: names, structure,
    counts and counters only — the fields that must be bit-identical
    across repeated runs of a deterministic pipeline."""
    spans = doc_or_spans.get("spans") if isinstance(doc_or_spans, dict) else doc_or_spans

    def strip(s: dict) -> dict:
        out = {"name": s["name"], "count": s.get("count", 0)}
        if s.get("attrs"):
            out["attrs"] = s["attrs"]
        if s.get("counters"):
            out["counters"] = s["counters"]
        if s.get("children"):
            out["children"] = [strip(c) for c in s["children"]]
        return out

    return [strip(s) for s in spans]


def canonical_metrics(doc_or_metrics) -> dict:
    """Timing-free canonical form of the flat metrics dump: wall-clock
    counters (base name ending in ``.seconds``, e.g. the kernel layer's
    ``kernels.seconds{...}``) are dropped, mirroring how
    :func:`canonical_spans` strips span clock fields."""
    metrics = (
        doc_or_metrics.get("metrics", doc_or_metrics)
        if isinstance(doc_or_metrics, dict)
        else doc_or_metrics
    )
    out: dict = {}
    for grp, vals in metrics.items():
        if not isinstance(vals, dict):
            out[grp] = vals
            continue
        out[grp] = {
            k: v
            for k, v in vals.items()
            if not k.split("{", 1)[0].endswith(".seconds")
        }
    return out


def summary() -> dict:
    """Compact trace attachment for benchmark sidecars: aggregated
    span totals by dotted path plus the flat metrics dump."""
    agg: dict[str, dict] = {}

    def walk(s, prefix: str) -> None:
        path = f"{prefix}/{s.name}" if prefix else s.name
        slot = agg.setdefault(
            path, {"duration": 0.0, "count": 0, "counters": {}}
        )
        slot["duration"] += s.duration
        slot["count"] += s.count
        for k, v in s.counters.items():
            slot["counters"][k] = slot["counters"].get(k, 0) + v
        for c in s.children:
            walk(c, path)

    for root in TRACER.roots:
        walk(root, "")
    return {
        "enabled": TRACER.enabled,
        "spans": {k: agg[k] for k in sorted(agg)},
        "metrics": _counters.snapshot(),
    }


def _fmt_counters(counters: dict) -> str:
    if not counters:
        return ""
    parts = []
    for k in sorted(counters):
        v = counters[k]
        parts.append(f"{k}={int(v) if float(v).is_integer() else f'{v:.4g}'}")
    return "  [" + ", ".join(parts) + "]"


def render_report(doc: dict) -> str:
    """Human-readable text rendering of a run artifact.

    Sibling spans with the same name (e.g. one ``matvec.rank`` span per
    virtual rank) are aggregated into one line with a ``xN`` tally so
    wide fan-outs stay readable; the JSON keeps the full tree.
    """
    lines = [f"run artifact: {doc.get('name')}  (schema {doc.get('schema')})"]
    meta = doc.get("meta") or {}
    for k in sorted(meta):
        lines.append(f"  meta.{k} = {meta[k]}")

    def walk(spans: list[dict], depth: int) -> None:
        groups: dict[str, dict] = {}
        order: list[str] = []
        for s in spans:
            g = groups.get(s["name"])
            if g is None:
                groups[s["name"]] = g = {
                    "duration": 0.0, "count": 0, "n": 0,
                    "counters": {}, "children": [],
                }
                order.append(s["name"])
            g["duration"] += s.get("duration", 0.0)
            g["count"] += s.get("count", 0)
            g["n"] += 1
            for k, v in (s.get("counters") or {}).items():
                g["counters"][k] = g["counters"].get(k, 0) + v
            g["children"].extend(s.get("children") or [])
        for name in order:
            g = groups[name]
            tally = f" x{g['count']}" if g["count"] > 1 else ""
            lines.append(
                f"{'  ' * (depth + 1)}{name:<{max(40 - 2 * depth, 8)}}"
                f"{g['duration'] * 1e3:>10.3f} ms{tally}"
                f"{_fmt_counters(g['counters'])}"
            )
            walk(g["children"], depth + 1)

    walk(doc.get("spans", []), 0)
    metrics = doc.get("metrics") or {}
    for grp in ("counters", "gauges"):
        vals = metrics.get(grp) or {}
        if vals:
            lines.append(f"  -- {grp} --")
            for k in sorted(vals):
                v = vals[k]
                lines.append(
                    f"  {k} = {int(v) if float(v).is_integer() else v}"
                )
    hists = metrics.get("histograms") or {}
    if hists:
        lines.append("  -- histograms --")
        for k in sorted(hists):
            h = hists[k]
            if not h.get("count"):
                lines.append(f"  {k}: empty")
                continue
            lines.append(
                f"  {k}: n={h['count']} sum={h['sum']:.6g} "
                f"min={h['min']:.6g} max={h['max']:.6g} "
                f"p50={h['p50']:.6g} p95={h['p95']:.6g} p99={h['p99']:.6g}"
            )
    return "\n".join(lines)


def to_chrome_trace(doc: dict) -> dict:
    """Chrome trace-format timeline (load via chrome://tracing or
    Perfetto).  Complete events keyed by virtual rank: a span's ``pid``
    is the ``rank`` attr of its nearest ancestor carrying one (0 when
    no rank is in scope); merged spans emit a single event spanning
    their accumulated duration."""
    events: list[dict] = []

    def walk(s: dict, rank: int) -> None:
        rank = int((s.get("attrs") or {}).get("rank", rank))
        events.append(
            {
                "name": s["name"],
                "ph": "X",
                "ts": float(s.get("t_start", 0.0)) * 1e6,
                "dur": float(s.get("duration", 0.0)) * 1e6,
                "pid": rank,
                "tid": 0,
                "args": dict(s.get("counters") or {}),
            }
        )
        for c in s.get("children") or []:
            walk(c, rank)

    for s in doc.get("spans", []):
        walk(s, 0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
