"""repro.obs — unified tracing, counters and machine-readable artifacts.

The observability subsystem every layer of the stack reports into:

* :mod:`repro.obs.trace` — hierarchical spans with per-span counters
  and merge accumulation for hot loops;
* :mod:`repro.obs.counters` — named global counters/gauges (the
  per-rank communication tallies of :class:`repro.parallel.SimComm`
  publish here);
* :mod:`repro.obs.report` — JSON run artifacts (span tree + flat
  metrics dump), text reports and Chrome-trace timelines;
* :mod:`repro.obs.regress` — per-span deltas between two artifacts;
* :mod:`repro.obs.events` — the request-scoped flight recorder: a
  typed, digest-chained event log on the virtual clock;
* :mod:`repro.obs.reqtrace` — per-request timeline reconstruction and
  exact stage attribution from a flight-recorder stream;
* :mod:`repro.obs.slo` — deterministic SLO evaluation and fleet
  health snapshots.

Off by default; enable with the ``REPRO_TRACE=1`` environment variable
or :func:`enable`.  Disabled-mode calls cost one attribute check, so
instrumentation stays in place permanently::

    from repro import obs

    obs.enable()
    with obs.span("solve") as sp:
        sp.add("iterations", it)
    obs.write_artifact("run.json", "my-run")
"""

from .counters import (
    REGISTRY,
    Histogram,
    add,
    get_counter,
    get_gauge,
    get_histogram,
    get_value,
    observe,
    set_gauge,
    snapshot,
)
from .events import (
    EVENT_KINDS,
    EVENTS_SCHEMA_ID,
    Event,
    EventLog,
    EventStreamCorruption,
    load_events,
    save_events,
)
from .trace import TRACER, current_span, is_enabled, record, set_enabled, span

__all__ = [
    "span",
    "record",
    "current_span",
    "add",
    "set_gauge",
    "observe",
    "get_value",
    "get_counter",
    "get_gauge",
    "get_histogram",
    "Histogram",
    "snapshot",
    "Event",
    "EventLog",
    "EventStreamCorruption",
    "EVENT_KINDS",
    "EVENTS_SCHEMA_ID",
    "save_events",
    "load_events",
    "enable",
    "disable",
    "set_enabled",
    "is_enabled",
    "reset",
    "collect",
    "write_artifact",
    "summary",
    "TRACER",
    "REGISTRY",
]


def enable() -> None:
    """Turn tracing + counter publishing on."""
    set_enabled(True)


def disable() -> None:
    set_enabled(False)


def reset() -> None:
    """Drop all recorded spans and metrics (the enable flag is kept)."""
    TRACER.reset()
    REGISTRY.reset()


def collect(name: str, meta: dict | None = None) -> dict:
    from .report import collect as _collect

    return _collect(name, meta)


def write_artifact(path, name: str, meta: dict | None = None):
    from .report import write_artifact as _write

    return _write(path, name, meta)


def summary() -> dict:
    from .report import summary as _summary

    return _summary()
