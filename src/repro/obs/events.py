"""Request-scoped flight recorder: a typed, append-only event log.

Where :mod:`repro.obs.trace` answers "where did this *run* spend time",
the event log answers "what happened to request *X*": every hop a
request takes through the serving stack — submission, routing, queue
admission, batch formation, cache lookups, steals, retries, fail-over
replays, completion — is one :class:`Event` on the **virtual clock**,
carrying the request's causal id (its canonical request digest) and a
deterministic sequence number.

Because the serve/fleet layers run entirely on integer virtual clocks,
the event stream of a run is a pure function of (config, workload,
kill schedule): two identical runs produce bit-identical streams, and
the chained sha256 :attr:`EventLog.digest` certifies it.  The recorder
is therefore a *correctness gate*, not just a debugging aid — the
fail-over tests assert that a killed-and-recovered fleet reproduces
the exact per-request timelines of the failure-free run for every
request on a surviving shard.

Overhead contract: the recorder is opt-in (services take
``recorder=None``), and every instrumentation site is guarded by a
single ``if recorder is not None`` flag check, so the disabled path
costs one comparison per event site.  An :class:`EventLog` can also be
soft-disabled (``enabled = False``), in which case :meth:`EventLog.emit`
returns after one attribute check.

Event streams serialise to ``repro.obs/events.v1`` documents whose
stream digest is re-verified on load (the same integrity discipline as
the ``ckpt.v1`` checkpoints).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "EVENTS_SCHEMA_ID",
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "EventStreamCorruption",
    "save_events",
    "load_events",
]

EVENTS_SCHEMA_ID = "repro.obs/events.v1"

#: The closed vocabulary of the ``repro.obs/events.v1`` schema.  Every
#: site in the serving stack emits one of these:
#:
#: ``submit``          request reached a service (tick = arrival)
#: ``route``           consistent-hash ring picked the owning shard
#: ``enqueue``         the scheduler queued the item (also fired on
#:                     steal adoption and fail-over replay)
#: ``admit``           bounded admission accepted the request
#: ``reject``          admission refusal (``queue_full``) or deadline
#:                     expiry (``deadline_exceeded``)
#: ``batch_form``      the item joined a dispatched batch (attr ``bid``)
#: ``cache_hit``       artifact cache hit (attr ``tier`` = l1/l2;
#:                     ``ticks`` carries the l2 transfer cost)
#: ``cache_miss``      artifact cache miss (attr ``tier``)
#: ``build``           cold mesh/operator build (attr ``ticks``)
#: ``factor``          batch-key factorization built (attr ``ticks``)
#: ``solve_start``     the member's block solve began
#: ``solve_exec``      the batch solve executed (columns, matvecs)
#: ``steal_plan``      the stealing planner paired victim and thief
#: ``steal``           one item migrated between shards
#: ``retry``           breakdown re-queue with backoff
#: ``failover``        a shard was killed and a replacement rebuilt
#: ``failover_replay`` one in-flight request replayed onto the
#:                     replacement shard
#: ``complete``        the response was finalized (status, reason)
#: ``hedge``           a speculative copy was dispatched to the ring
#:                     successor (attrs ``src``, ``delay``)
#: ``hedge_win``       a hedged request completed; the losing copies
#:                     were cancelled (attr ``cancelled``)
#: ``breaker_open``    a shard's circuit breaker tripped open
#:                     (attrs ``failures``, ``window``)
#: ``breaker_half_open``  cooldown elapsed; the breaker admits one
#:                     probe request
#: ``breaker_close``   the half-open probe succeeded; traffic restored
#: ``shed``            brownout dropped a low-priority item before
#:                     dispatch (attrs ``depth``, ``priority``)
#: ``degrade``         an overloaded batch solved at loosened
#:                     tolerance (attr ``tol_scale``)
#: ``corrupt_detect``  an artifact failed its content-digest
#:                     re-verification (attr ``tier``)
#: ``quarantine``      the corrupted artifact was evicted and its key
#:                     quarantined pending rebuild
EVENT_KINDS = (
    "submit",
    "route",
    "enqueue",
    "admit",
    "reject",
    "batch_form",
    "cache_hit",
    "cache_miss",
    "build",
    "factor",
    "solve_start",
    "solve_exec",
    "steal_plan",
    "steal",
    "retry",
    "failover",
    "failover_replay",
    "complete",
    "hedge",
    "hedge_win",
    "breaker_open",
    "breaker_half_open",
    "breaker_close",
    "shed",
    "degrade",
    "corrupt_detect",
    "quarantine",
)

_KIND_SET = frozenset(EVENT_KINDS)


class EventStreamCorruption(RuntimeError):
    """A persisted event stream failed its digest re-verification."""


@dataclass(frozen=True)
class Event:
    """One flight-recorder event.

    ``seq`` is the 1-based emission index (deterministic: the event
    loop that produced it is), ``tick`` the emitting layer's virtual
    clock, ``rid`` the causal request id (the canonical request digest;
    empty for batch-/shard-scoped events, which join a request's
    timeline through their ``bid`` attr), ``shard`` the emitting shard
    (``None`` for a bare :class:`repro.serve.SolverService`).
    """

    seq: int
    tick: int
    kind: str
    rid: str = ""
    shard: str | None = None
    attrs: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        return {
            "seq": self.seq,
            "tick": self.tick,
            "kind": self.kind,
            "rid": self.rid,
            "shard": self.shard,
            "attrs": self.attrs,
        }

    def get(self, key: str, default=None):
        """Shorthand attr access (``ev.get("bid")``)."""
        return self.attrs.get(key, default)


def _canonical(doc: dict) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


class EventLog:
    """Append-only, digest-chained event stream.

    Events are immutable once emitted; the log folds each event's
    canonical JSON document into a running sha256 chain in emission
    order, so :attr:`digest` certifies the *entire causal history* of a
    run the way the serve/fleet stream digests certify the response
    set.  ``enabled = False`` turns :meth:`emit` into a one-check no-op.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = bool(enabled)
        self.events: list[Event] = []
        self._stream = hashlib.sha256()

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, kind: str, rid: str = "", *, tick: int,
             shard: str | None = None, **attrs) -> Event | None:
        """Append one event; returns it (or ``None`` while disabled).

        ``attrs`` must be JSON-serialisable; numpy scalars are coerced.
        Unknown kinds are rejected — the schema is a closed vocabulary
        so downstream reconstruction never meets a surprise.
        """
        if not self.enabled:
            return None
        if kind not in _KIND_SET:
            raise ValueError(f"unknown event kind {kind!r}")
        clean = {}
        for k, v in attrs.items():
            if hasattr(v, "item"):  # numpy scalar → plain python
                v = v.item()
            clean[k] = v
        ev = Event(seq=len(self.events) + 1, tick=int(tick), kind=kind,
                   rid=rid, shard=shard, attrs=clean)
        self.events.append(ev)
        self._stream.update(_canonical(ev.to_doc()))
        return ev

    @property
    def digest(self) -> str:
        """sha256 chained over canonical event documents in sequence
        order — bit-identical across identical replays."""
        return self._stream.hexdigest()

    # -- queries ---------------------------------------------------------

    def for_request(self, rid: str) -> list[Event]:
        """All events carrying exactly this request id, in seq order."""
        return [ev for ev in self.events if ev.rid == rid]

    def request_ids(self) -> list[str]:
        """Distinct request ids in order of first appearance."""
        seen: dict[str, None] = {}
        for ev in self.events:
            if ev.rid and ev.rid not in seen:
                seen[ev.rid] = None
        return list(seen)

    def kinds(self) -> dict[str, int]:
        """Event-kind tally (diagnostics)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return dict(sorted(out.items()))

    # -- persistence -----------------------------------------------------

    def to_doc(self, name: str = "") -> dict:
        return {
            "schema": EVENTS_SCHEMA_ID,
            "name": name,
            "n_events": len(self.events),
            "digest": self.digest,
            "events": [ev.to_doc() for ev in self.events],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "EventLog":
        """Rebuild a log from its document, re-verifying the digest
        chain (an edited or truncated stream fails loudly)."""
        if doc.get("schema") != EVENTS_SCHEMA_ID:
            raise ValueError(
                f"not a {EVENTS_SCHEMA_ID} document "
                f"(schema={doc.get('schema')!r})"
            )
        log = cls()
        for edoc in doc.get("events", []):
            ev = log.emit(
                edoc["kind"], edoc.get("rid", ""), tick=edoc["tick"],
                shard=edoc.get("shard"), **(edoc.get("attrs") or {}),
            )
            if ev.seq != edoc.get("seq"):
                raise EventStreamCorruption(
                    f"event stream gap: expected seq {ev.seq}, "
                    f"document says {edoc.get('seq')}"
                )
        if log.digest != doc.get("digest"):
            raise EventStreamCorruption(
                "event stream digest mismatch: "
                f"recomputed {log.digest[:16]}…, "
                f"document claims {str(doc.get('digest'))[:16]}…"
            )
        return log


def save_events(path, log: EventLog, name: str = "") -> Path:
    """Write a log as a ``repro.obs/events.v1`` JSON document."""
    path = Path(path)
    path.write_text(json.dumps(log.to_doc(name), indent=1) + "\n")
    return path


def load_events(path) -> EventLog:
    """Load and digest-verify a persisted event stream."""
    return EventLog.from_doc(json.loads(Path(path).read_text()))
