"""Deterministic SLO evaluation and fleet health snapshots.

Turns a flight-recorder stream (:mod:`repro.obs.events`) into the
operator's view of the fleet: is it meeting its deadlines, is it
available, which serving stage is burning the latency budget, and is
any virtual-clock window burning error budget fast enough to page.

Because the serving layers run on integer virtual clocks, every number
here is a pure function of the event stream — the same health snapshot
re-evaluates bit-identically from a persisted ``repro.obs/events.v1``
document, so SLO regressions can be gated in CI exactly like response
digests.

Definitions (all on the virtual clock):

availability
    completed-ok / terminal responses.  ``reject`` responses
    (queue-full refusals, deadline expiries) and retry-exhausted
    failures count against it.
deadline-hit rate
    among requests carrying a deadline, the fraction whose response
    arrived at or before it.  Requests without a deadline are judged
    against ``SLOPolicy.default_deadline`` when one is set.
stage objectives
    per-stage p95 ceilings (ticks) over the stage attribution of
    :mod:`repro.obs.reqtrace`.
burn rate
    per-window ``(1 - availability) / (1 - availability_objective)``:
    the speed at which the window consumed error budget (1.0 = exactly
    on budget; ``SLOPolicy.burn_alert`` of 2.0 pages when a window
    burned twice its share).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import EventLog
from .reqtrace import STAGES, RequestTimeline, stage_histograms, timelines

__all__ = [
    "HEALTH_SCHEMA_ID",
    "SLOPolicy",
    "evaluate_windows",
    "fleet_health",
    "render_health",
]

HEALTH_SCHEMA_ID = "repro.obs/health.v1"


@dataclass(frozen=True)
class SLOPolicy:
    """Service-level objectives, expressed in virtual ticks."""

    #: fraction of terminal responses that must be ok
    availability_objective: float = 0.95
    #: fraction of deadline-carrying requests that must hit it
    deadline_objective: float = 0.95
    #: deadline (ticks after submit) applied to requests that carry
    #: none; ``None`` judges only explicit deadlines
    default_deadline: int | None = None
    #: per-stage p95 ceilings in ticks, e.g. ``{"queue": 4000}``
    stage_p95: dict[str, int] = field(default_factory=dict)
    #: window width in ticks for burn-rate evaluation
    window: int = 5_000
    #: page when a window's burn rate reaches this multiple
    burn_alert: float = 2.0


def _deadline_hit(tl: RequestTimeline, policy: SLOPolicy) -> bool | None:
    """ok-and-in-time verdict; ``None`` when no deadline applies."""
    deadline = tl.deadline
    if deadline is None:
        if policy.default_deadline is None:
            return None
        deadline = tl.t_submit + policy.default_deadline
    return tl.ok and tl.t_done <= deadline


def evaluate_windows(
    log: EventLog, policy: SLOPolicy
) -> list[dict]:
    """Per-window SLO evaluation, bucketing by completion tick.

    Each window doc carries request/ok counts, availability, the burn
    rate against the availability objective, and an ``alert`` flag.
    """
    buckets: dict[int, list[RequestTimeline]] = {}
    for tl in timelines(log):
        buckets.setdefault(tl.t_done // policy.window, []).append(tl)
    budget = 1.0 - policy.availability_objective
    out = []
    for w in sorted(buckets):
        tls = buckets[w]
        ok = sum(1 for tl in tls if tl.ok)
        avail = ok / len(tls)
        burn = (1.0 - avail) / budget if budget > 0 else (
            0.0 if avail == 1.0 else float("inf")
        )
        out.append({
            "window": w,
            "t_start": w * policy.window,
            "t_end": (w + 1) * policy.window,
            "requests": len(tls),
            "ok": ok,
            "availability": avail,
            "burn_rate": burn,
            "alert": burn >= policy.burn_alert,
        })
    return out


def fleet_health(
    log: EventLog, policy: SLOPolicy | None = None, name: str = ""
) -> dict:
    """Roll a full event stream into a ``repro.obs/health.v1`` snapshot.

    The snapshot is deterministic: identical streams (same digest)
    yield byte-identical health documents.
    """
    policy = policy or SLOPolicy()
    tls = timelines(log)
    ok = [tl for tl in tls if tl.ok]
    rejected = [tl for tl in tls if tl.status == "rejected"]
    failed = [tl for tl in tls if not tl.ok and tl.status != "rejected"]
    availability = len(ok) / len(tls) if tls else 1.0

    verdicts = [_deadline_hit(tl, policy) for tl in tls]
    judged = [v for v in verdicts if v is not None]
    deadline_hit = (sum(judged) / len(judged)) if judged else None

    hists = stage_histograms(log)
    stages = {name_: h.summary() for name_, h in hists.items()}

    violations: list[dict] = []
    if availability < policy.availability_objective:
        violations.append({
            "objective": "availability",
            "target": policy.availability_objective,
            "actual": availability,
        })
    if deadline_hit is not None and deadline_hit < policy.deadline_objective:
        violations.append({
            "objective": "deadline_hit_rate",
            "target": policy.deadline_objective,
            "actual": deadline_hit,
        })
    for stage, ceiling in sorted(policy.stage_p95.items()):
        summ = stages.get(stage) or {}
        p95 = summ.get("p95", 0.0)
        if p95 > ceiling:
            violations.append({
                "objective": f"stage_p95:{stage}",
                "target": ceiling,
                "actual": p95,
            })

    windows = evaluate_windows(log, policy)
    alerts = [w for w in windows if w["alert"]]

    retries = sum(tl.retries for tl in tls)
    per_shard: dict[str, int] = {}
    for tl in tls:
        if tl.shards:
            key = tl.shards[-1]
            per_shard[key] = per_shard.get(key, 0) + 1

    # graceful-degradation tallies (PR 9 defenses): how much traffic
    # was hedged, browned out, or survived artifact corruption
    hedged = sum(
        1 for tl in tls if any(ev.kind == "hedge" for ev in tl.events)
    )
    shed = sum(1 for tl in tls if tl.reason == "shed")
    degraded = sum(
        1 for tl in tls if any(ev.kind == "degrade" for ev in tl.events)
    )
    quarantines = sum(1 for ev in log.events if ev.kind == "quarantine")
    breaker_opens = sum(
        1 for ev in log.events if ev.kind == "breaker_open"
    )

    return {
        "schema": HEALTH_SCHEMA_ID,
        "name": name,
        "policy": {
            "availability_objective": policy.availability_objective,
            "deadline_objective": policy.deadline_objective,
            "default_deadline": policy.default_deadline,
            "stage_p95": dict(sorted(policy.stage_p95.items())),
            "window": policy.window,
            "burn_alert": policy.burn_alert,
        },
        "requests": len(tls),
        "ok": len(ok),
        "rejected": len(rejected),
        "failed": len(failed),
        "retries": retries,
        "hedged": hedged,
        "shed": shed,
        "degraded": degraded,
        "quarantines": quarantines,
        "breaker_opens": breaker_opens,
        "availability": availability,
        "deadline_hit_rate": deadline_hit,
        "per_shard_completed": dict(sorted(per_shard.items())),
        "stages": stages,
        "windows": windows,
        "violations": violations,
        "alert_windows": [w["window"] for w in alerts],
        "healthy": not violations and not alerts,
        "events": len(log),
        "event_digest": log.digest,
    }


def render_health(doc: dict) -> str:
    """Human-readable fleet health report from a health snapshot."""
    lines = [
        f"fleet health: {'HEALTHY' if doc['healthy'] else 'DEGRADED'}"
        + (f"  ({doc['name']})" if doc.get("name") else ""),
        f"  requests={doc['requests']} ok={doc['ok']} "
        f"rejected={doc['rejected']} failed={doc['failed']} "
        f"retries={doc['retries']}",
        f"  degradation: hedged={doc.get('hedged', 0)} "
        f"shed={doc.get('shed', 0)} degraded={doc.get('degraded', 0)} "
        f"quarantines={doc.get('quarantines', 0)} "
        f"breaker_opens={doc.get('breaker_opens', 0)}",
        f"  availability={doc['availability']:.4f}"
        + (
            f"  deadline_hit_rate={doc['deadline_hit_rate']:.4f}"
            if doc["deadline_hit_rate"] is not None
            else "  deadline_hit_rate=n/a"
        ),
    ]
    lines.append("  stage p50/p95 (ticks):")
    for stage in (*STAGES, "e2e"):
        summ = doc["stages"].get(stage) or {}
        if summ.get("count"):
            lines.append(
                f"    {stage:<10} p50={summ['p50']:>12.1f} "
                f"p95={summ['p95']:>12.1f} max={summ['max']:>12.1f}"
            )
    if doc["windows"]:
        lines.append(
            f"  windows ({doc['policy']['window']} ticks, "
            f"burn alert at {doc['policy']['burn_alert']:.1f}x):"
        )
        for w in doc["windows"]:
            flag = "  <-- ALERT" if w["alert"] else ""
            lines.append(
                f"    [{w['t_start']:>8}, {w['t_end']:>8})  "
                f"n={w['requests']:<4} avail={w['availability']:.3f} "
                f"burn={w['burn_rate']:.2f}x{flag}"
            )
    for v in doc["violations"]:
        lines.append(
            f"  VIOLATION {v['objective']}: "
            f"target {v['target']} actual {v['actual']:.4f}"
        )
    if doc["per_shard_completed"]:
        spread = " ".join(
            f"{k}={v}" for k, v in doc["per_shard_completed"].items()
        )
        lines.append(f"  completed per shard: {spread}")
    lines.append(f"  events={doc['events']} digest={doc['event_digest']}")
    return "\n".join(lines)
