"""Named global counters and gauges (Prometheus-style flat metrics).

Monotonic counters (``comm.bytes_sent``) and point-in-time gauges
(``mesh.n_nodes``) published by the library layers: the simulated MPI
substrate, ghost analysis, elemental kernels and solvers all report
here.  Metrics carry optional labels — the per-rank communication
tallies use ``rank=<r>`` — and render as ``name{rank="3"}`` in the
flat dump of the run artifact.

Publishing is gated on the global observability switch (see
:mod:`repro.obs.trace`): with tracing disabled, ``add``/``set_gauge``
return after one attribute check, so hot paths stay instrumented
unconditionally.
"""

from __future__ import annotations

import bisect
import threading

from .trace import TRACER

__all__ = [
    "Histogram",
    "CounterRegistry",
    "REGISTRY",
    "add",
    "set_gauge",
    "observe",
    "get_value",
    "get_counter",
    "get_gauge",
    "get_histogram",
    "snapshot",
]

#: Fixed log-spaced bucket upper bounds shared by every histogram:
#: four buckets per decade from 1e-6 to 1e7 (53 edges).  Fixed,
#: data-independent buckets keep histogram state mergeable across runs
#: and make the quantile summaries bit-deterministic.
BUCKET_EDGES: tuple[float, ...] = tuple(
    10.0 ** (e / 4.0) for e in range(-24, 29)
)


class Histogram:
    """Log-bucketed value distribution with deterministic quantiles.

    Observations land in the fixed :data:`BUCKET_EDGES` buckets (plus
    one overflow bucket); ``quantile(q)`` reports the upper bound of
    the bucket holding the q-th observation, so two runs recording the
    same values always summarise identically regardless of insertion
    order.  Exact ``count`` / ``sum`` / ``min`` / ``max`` ride along.
    Usable standalone (e.g. benchmark percentiles) or through the
    registry via :func:`observe`.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_EDGES) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(BUCKET_EDGES, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def quantile(self, q: float) -> float:
        """Upper bucket bound holding the q-th observation (0 < q <= 1)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank:
                return BUCKET_EDGES[i] if i < len(BUCKET_EDGES) else self.max
        return self.max

    def summary(self) -> dict:
        """JSON-ready digest: count/sum/min/max + p50/p95/p99.

        All three quantiles are read off a single cumulative pass over
        the bucket array (``quantile()`` would rescan it per call).
        """
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        ranks = {
            q: max(1, int(q * self.count + 0.5)) for q in (0.50, 0.95, 0.99)
        }
        quantiles: dict[float, float] = {}
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            for q, rank in ranks.items():
                if q not in quantiles and cum >= rank:
                    quantiles[q] = (
                        BUCKET_EDGES[i] if i < len(BUCKET_EDGES) else self.max
                    )
            if len(quantiles) == len(ranks):
                break
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": quantiles.get(0.50, self.max),
            "p95": quantiles.get(0.95, self.max),
            "p99": quantiles.get(0.99, self.max),
        }


def _render(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class CounterRegistry:
    """Thread-safe registry of monotonic counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._hists: dict[tuple, Histogram] = {}

    def add(self, name: str, value: float = 1, **labels) -> None:
        """Accumulate into a monotonic counter (no-op while disabled)."""
        if not TRACER.enabled:
            return
        if hasattr(value, "item"):  # numpy scalar → JSON-serialisable
            value = value.item()
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to a point-in-time value (no-op while disabled)."""
        if not TRACER.enabled:
            return
        if hasattr(value, "item"):
            value = value.item()
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one value into a named histogram (no-op while disabled)."""
        if not TRACER.enabled:
            return
        if hasattr(value, "item"):
            value = value.item()
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            h = self._hists.get(key)
            if h is None:
                h = self._hists[key] = Histogram()
            h.observe(value)

    def get_histogram(self, name: str, **labels) -> dict | None:
        """Summary dict of a histogram; None if never observed."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            h = self._hists.get(key)
            return h.summary() if h is not None else None

    def get_counter(self, name: str, **labels):
        """Read back a counter value; None if never published."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            return self._counters.get(key)

    def get_gauge(self, name: str, **labels):
        """Read back a gauge value; None if never published."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            return self._gauges.get(key)

    def get_value(self, name: str, **labels):
        """Read back a counter or gauge value; None if never published.

        A name published as *both* a counter and a gauge is ambiguous —
        silently preferring one would mask the collision — so that case
        raises; disambiguate with :meth:`get_counter` / :meth:`get_gauge`.
        """
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            in_counters = key in self._counters
            in_gauges = key in self._gauges
            if in_counters and in_gauges:
                raise KeyError(
                    f"metric {_render(name, key[1])!r} exists as both a "
                    "counter and a gauge; use get_counter()/get_gauge()"
                )
            if in_counters:
                return self._counters[key]
            return self._gauges.get(key)

    def snapshot(self) -> dict:
        """Flat rendered dump: counters, gauges and histogram summaries.

        Keys are sorted so the dump is deterministic run-to-run.
        Histograms appear only when at least one was observed, keeping
        pre-existing artifacts byte-stable.
        """
        with self._lock:
            counters = {
                _render(n, lb): v
                for (n, lb), v in sorted(self._counters.items())
            }
            gauges = {
                _render(n, lb): v for (n, lb), v in sorted(self._gauges.items())
            }
            hists = {
                _render(n, lb): h.summary()
                for (n, lb), h in sorted(self._hists.items())
            }
        out = {"counters": counters, "gauges": gauges}
        if hists:
            out["histograms"] = hists
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


REGISTRY = CounterRegistry()

add = REGISTRY.add
set_gauge = REGISTRY.set_gauge
observe = REGISTRY.observe
get_value = REGISTRY.get_value
get_counter = REGISTRY.get_counter
get_gauge = REGISTRY.get_gauge
get_histogram = REGISTRY.get_histogram
snapshot = REGISTRY.snapshot
