"""Named global counters and gauges (Prometheus-style flat metrics).

Monotonic counters (``comm.bytes_sent``) and point-in-time gauges
(``mesh.n_nodes``) published by the library layers: the simulated MPI
substrate, ghost analysis, elemental kernels and solvers all report
here.  Metrics carry optional labels — the per-rank communication
tallies use ``rank=<r>`` — and render as ``name{rank="3"}`` in the
flat dump of the run artifact.

Publishing is gated on the global observability switch (see
:mod:`repro.obs.trace`): with tracing disabled, ``add``/``set_gauge``
return after one attribute check, so hot paths stay instrumented
unconditionally.
"""

from __future__ import annotations

import threading

from .trace import TRACER

__all__ = ["CounterRegistry", "REGISTRY", "add", "set_gauge", "get_value", "snapshot"]


def _render(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class CounterRegistry:
    """Thread-safe registry of monotonic counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}

    def add(self, name: str, value: float = 1, **labels) -> None:
        """Accumulate into a monotonic counter (no-op while disabled)."""
        if not TRACER.enabled:
            return
        if hasattr(value, "item"):  # numpy scalar → JSON-serialisable
            value = value.item()
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to a point-in-time value (no-op while disabled)."""
        if not TRACER.enabled:
            return
        if hasattr(value, "item"):
            value = value.item()
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._gauges[key] = value

    def get_value(self, name: str, **labels):
        """Read back a counter (or gauge) value; None if never published."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key)

    def snapshot(self) -> dict:
        """Flat rendered dump: {"counters": {...}, "gauges": {...}}.

        Keys are sorted so the dump is deterministic run-to-run.
        """
        with self._lock:
            counters = {
                _render(n, lb): v
                for (n, lb), v in sorted(self._counters.items())
            }
            gauges = {
                _render(n, lb): v for (n, lb), v in sorted(self._gauges.items())
            }
        return {"counters": counters, "gauges": gauges}

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


REGISTRY = CounterRegistry()

add = REGISTRY.add
set_gauge = REGISTRY.set_gauge
get_value = REGISTRY.get_value
snapshot = REGISTRY.snapshot
