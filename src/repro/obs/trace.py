"""Hierarchical tracing spans with near-zero disabled overhead.

The tracer is the timing backbone of :mod:`repro.obs`: every layer of
the stack opens named spans (``with span("matvec.top_down"): ...``)
that nest into a tree, carry per-span counters (elements, FLOPs,
bytes) and metadata, and are exported by :mod:`repro.obs.report` into
machine-readable run artifacts.

Design constraints, in order:

* **Near-zero overhead when disabled.**  ``span()`` on the disabled
  path is one attribute check and returns a shared no-op context
  manager — no allocation, no clock read.  Hot loops (the per-leaf
  traversal MATVEC, per-message SimComm accounting) stay instrumented
  unconditionally.

* **Merge accumulation.**  Phases that run thousands of times per
  parent (per-leaf elemental applies, per-child bucketing steps) use
  ``span(name, merge=True)``: all invocations under the same parent
  fold into a single child span whose ``duration`` accumulates and
  whose ``count`` records the number of invocations.  This is the
  replacement for the old ad-hoc ``TraversalTimers`` struct.

* **Thread safety.**  The span stack is thread-local; the root-span
  registry and the enable flag live behind a lock.  Spans themselves
  are only mutated by the thread that opened them.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["Span", "Tracer", "TRACER", "span", "record", "current_span",
           "set_enabled", "is_enabled"]


class Span:
    """One node of the trace tree.

    ``duration`` is accumulated wall time (seconds), ``count`` the
    number of enter/exit cycles folded into this span (>1 only for
    merge spans), ``counters`` monotonic per-span tallies and ``meta``
    free-form metadata (e.g. residual histories).
    """

    __slots__ = ("name", "attrs", "t_start", "duration", "count",
                 "counters", "meta", "children", "_merged")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.t_start = 0.0
        self.duration = 0.0
        self.count = 0
        self.counters: dict[str, float] = {}
        self.meta: dict = {}
        self.children: list[Span] = []
        self._merged: dict[str, Span] = {}

    def add(self, counter: str, value: float = 1) -> None:
        """Accumulate a per-span counter (numpy scalars are coerced so
        the artifact stays JSON-serialisable)."""
        if hasattr(value, "item"):
            value = value.item()
        self.counters[counter] = self.counters.get(counter, 0) + value

    def set(self, key: str, value) -> None:
        """Attach free-form metadata to the span."""
        self.meta[key] = value

    def event(self, name: str, **data) -> None:
        """Append a point-in-time event to the span (``meta["events"]``).

        Events are how exceptional occurrences — injected faults,
        recoveries, dt backoffs — are pinned to the span in whose scope
        they happened, without opening a child span."""
        ev = {"name": name}
        for k, v in data.items():
            ev[k] = v.item() if hasattr(v, "item") else v
        self.meta.setdefault("events", []).append(ev)

    def to_dict(self, timing: bool = True) -> dict:
        """Serialise the subtree; ``timing=False`` drops clock fields
        (the canonical form compared by the determinism tests)."""
        d: dict = {"name": self.name}
        if self.attrs:
            d["attrs"] = self.attrs
        if timing:
            d["t_start"] = self.t_start
            d["duration"] = self.duration
        d["count"] = self.count
        if self.counters:
            d["counters"] = self.counters
        if self.meta and timing:  # meta may hold timing-adjacent data
            d["meta"] = self.meta
        if self.children:
            d["children"] = [c.to_dict(timing) for c in self.children]
        return d


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, counter: str, value: float = 1) -> None:
        pass

    def set(self, key: str, value) -> None:
        pass

    def event(self, name: str, **data) -> None:
        pass


_NULL = _NullSpan()


class _ActiveSpan:
    """Context manager driving one enter/exit cycle of a real span."""

    __slots__ = ("_tracer", "_name", "_merge", "_attrs", "_span", "_t0")

    def __init__(self, tracer: "Tracer", name: str, merge: bool, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._merge = merge
        self._attrs = attrs

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        parent = stack[-1] if stack else None
        sp = None
        if self._merge and parent is not None:
            sp = parent._merged.get(self._name)
        if sp is None:
            sp = Span(self._name, self._attrs)
            if parent is not None:
                parent.children.append(sp)
                if self._merge:
                    parent._merged[self._name] = sp
            else:
                with tracer._lock:
                    tracer.roots.append(sp)
        now = time.perf_counter()
        if sp.count == 0:
            sp.t_start = now - tracer.epoch
        sp.count += 1
        self._t0 = now
        stack.append(sp)
        self._span = sp
        return sp

    def __exit__(self, *exc) -> bool:
        self._span.duration += time.perf_counter() - self._t0
        self._tracer._stack().pop()
        return False


class Tracer:
    """Thread-safe registry of trace trees for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.roots: list[Span] = []
        self.enabled = False
        self.epoch = time.perf_counter()

    def _stack(self) -> list[Span]:
        st = getattr(self._tls, "stack", None)
        if st is None:
            st = self._tls.stack = []
        return st

    def span(self, name: str, merge: bool = False, **attrs):
        """Open a span under the current one (or a new root).

        Disabled path: returns the shared no-op span, cost of one
        attribute check.
        """
        if not self.enabled:
            return _NULL
        return _ActiveSpan(self, name, merge, attrs)

    def record(self, name: str, seconds: float, merge: bool = True,
               **counters) -> Span | None:
        """Attach a completed span of a known duration (e.g. modelled
        phase times) under the current span without running a clock."""
        if not self.enabled:
            return None
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = parent._merged.get(name) if (merge and parent is not None) else None
        if sp is None:
            sp = Span(name)
            if parent is not None:
                parent.children.append(sp)
                if merge:
                    parent._merged[name] = sp
            else:
                with self._lock:
                    self.roots.append(sp)
            sp.t_start = time.perf_counter() - self.epoch
        sp.count += 1
        sp.duration += seconds
        for k, v in counters.items():
            sp.add(k, v)
        return sp

    def current(self) -> Span | None:
        """The innermost open span of this thread, if any."""
        st = self._stack()
        return st[-1] if st else None

    def reset(self) -> None:
        """Drop all recorded trees (open spans keep working but detach)."""
        with self._lock:
            self.roots = []
            self.epoch = time.perf_counter()
        self._tls.stack = []


TRACER = Tracer()
TRACER.enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0")


def span(name: str, merge: bool = False, **attrs):
    """Module-level shortcut for :meth:`Tracer.span` on the global tracer."""
    if not TRACER.enabled:
        return _NULL
    return _ActiveSpan(TRACER, name, merge, attrs)


def record(name: str, seconds: float, merge: bool = True, **counters) -> Span | None:
    """Module-level shortcut for :meth:`Tracer.record`."""
    return TRACER.record(name, seconds, merge=merge, **counters)


def current_span() -> Span | None:
    """The innermost open span of this thread (None when disabled or
    no span is open) — the anchor point for :meth:`Span.event`."""
    if not TRACER.enabled:
        return None
    return TRACER.current()


def set_enabled(flag: bool) -> None:
    TRACER.enabled = bool(flag)


def is_enabled() -> bool:
    return TRACER.enabled
