"""Regression analysis over run artifacts: per-span deltas with tolerance.

``python -m repro trace-diff base.json new.json --tol 0.25`` loads two
run artifacts, aggregates both span forests by dotted path, and reports
per-span time deltas plus counter mismatches.  Time deltas beyond the
relative tolerance flag a span as a regression (slower) or an
improvement (faster); counter deltas are flagged unconditionally —
counters are deterministic, so any drift means the workload itself
changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .report import load_artifact

__all__ = [
    "DIFF_SCHEMA_ID",
    "SpanDelta",
    "flatten_spans",
    "diff_artifacts",
    "render_diff",
    "diff_doc",
]

DIFF_SCHEMA_ID = "repro.obs/trace_diff.v1"

#: spans shorter than this (seconds, both sides) are never flagged —
#: sub-millisecond timings are clock noise at this scale
MIN_TIME = 1e-3


@dataclass
class SpanDelta:
    """Comparison of one aggregated span path across two artifacts."""

    path: str
    t_base: float | None
    t_new: float | None
    status: str  # "ok" | "slower" | "faster" | "added" | "removed"
    counter_deltas: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def rel(self) -> float | None:
        if self.t_base is None or self.t_new is None or self.t_base == 0:
            return None
        return (self.t_new - self.t_base) / self.t_base

    def to_doc(self) -> dict:
        """JSON-ready document of this delta (``trace-diff --json``)."""
        return {
            "path": self.path,
            "t_base": self.t_base,
            "t_new": self.t_new,
            "rel": self.rel,
            "status": self.status,
            "counter_deltas": {
                k: [va, vb] for k, (va, vb) in self.counter_deltas.items()
            },
        }


def flatten_spans(doc: dict) -> dict[str, dict]:
    """Aggregate a span forest by dotted path → totals."""
    agg: dict[str, dict] = {}

    def walk(s: dict, prefix: str) -> None:
        path = f"{prefix}/{s['name']}" if prefix else s["name"]
        slot = agg.setdefault(path, {"duration": 0.0, "count": 0, "counters": {}})
        slot["duration"] += s.get("duration", 0.0)
        slot["count"] += s.get("count", 0)
        for k, v in (s.get("counters") or {}).items():
            slot["counters"][k] = slot["counters"].get(k, 0) + v
        for c in s.get("children") or []:
            walk(c, path)

    for s in doc.get("spans", []):
        walk(s, "")
    return agg


def diff_artifacts(base, new, tol: float = 0.25) -> list[SpanDelta]:
    """Per-span deltas between two artifacts (paths or loaded dicts)."""
    if not isinstance(base, dict):
        base = load_artifact(base)
    if not isinstance(new, dict):
        new = load_artifact(new)
    fa, fb = flatten_spans(base), flatten_spans(new)
    deltas: list[SpanDelta] = []
    for path in sorted(set(fa) | set(fb)):
        a, b = fa.get(path), fb.get(path)
        if a is None:
            deltas.append(SpanDelta(path, None, b["duration"], "added"))
            continue
        if b is None:
            deltas.append(SpanDelta(path, a["duration"], None, "removed"))
            continue
        ta, tb = a["duration"], b["duration"]
        status = "ok"
        if max(ta, tb) >= MIN_TIME and ta > 0:
            rel = (tb - ta) / ta
            if rel > tol:
                status = "slower"
            elif rel < -tol:
                status = "faster"
        cdel = {
            k: (a["counters"].get(k, 0), b["counters"].get(k, 0))
            for k in set(a["counters"]) | set(b["counters"])
            if a["counters"].get(k, 0) != b["counters"].get(k, 0)
        }
        deltas.append(SpanDelta(path, ta, tb, status, dict(sorted(cdel.items()))))
    return deltas


def diff_doc(deltas: list[SpanDelta], tol: float = 0.25) -> dict:
    """Machine-readable ``repro.obs/trace_diff.v1`` document.

    Mirrors the text table exactly: ``flagged`` is true iff the CLI
    would exit non-zero (any slower/added/removed span or counter
    drift).
    """
    return {
        "schema": DIFF_SCHEMA_ID,
        "tol": tol,
        "min_time": MIN_TIME,
        "deltas": [d.to_doc() for d in deltas],
        "flagged": any(
            d.status in ("slower", "added", "removed") or d.counter_deltas
            for d in deltas
        ),
    }


def render_diff(deltas: list[SpanDelta], tol: float = 0.25) -> str:
    """Text table of span deltas; regressions and drift listed last."""
    lines = [
        f"trace diff (tolerance ±{tol * 100:.0f}% on spans ≥ {MIN_TIME * 1e3:.0f} ms)",
        f"{'span':<44} {'base':>10} {'new':>10} {'delta':>8}  status",
    ]
    flagged: list[str] = []
    for d in deltas:
        tb = "-" if d.t_base is None else f"{d.t_base * 1e3:.2f}ms"
        tn = "-" if d.t_new is None else f"{d.t_new * 1e3:.2f}ms"
        rel = d.rel
        rtxt = "-" if rel is None else f"{rel * 100:+.1f}%"
        lines.append(f"{d.path:<44} {tb:>10} {tn:>10} {rtxt:>8}  {d.status}")
        if d.status in ("slower", "added", "removed"):
            flagged.append(f"{d.path}: {d.status}")
        for k, (va, vb) in d.counter_deltas.items():
            lines.append(f"{'':<44} counter {k}: {va:g} -> {vb:g}")
            flagged.append(f"{d.path}: counter {k} drifted {va:g} -> {vb:g}")
    if flagged:
        lines.append(f"-- {len(flagged)} flag(s):")
        lines.extend(f"   {f}" for f in flagged)
    else:
        lines.append("-- no regressions within tolerance")
    return "\n".join(lines)
