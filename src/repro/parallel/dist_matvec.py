"""Distributed matrix-free MATVEC over the simulated communicator.

A faithful SPMD simulation: the input vector is distributed by node
ownership, each rank touches **only** its owned entries plus the ghost
payloads it received, works entirely in a rank-local index space
(ghosted vectors), and returns partial results whose ghost contributions
travel back to their owners — the two exchange legs of §3.5, both
counted by :class:`SimComm`.  The assembled global result is
bit-identical to the serial MATVEC (asserted in tests).

All per-mesh/per-partition derivations — the rank-restricted gather
CSRs, the send/recv index arrays of both exchange legs — live in the
persistent :class:`repro.parallel.ghost.ExchangePlan` (cached on the
layout behind the mesh content fingerprint), so Krylov solvers calling
this once per iteration pay only for the apply, not for plan rebuilds.
"""

from __future__ import annotations

import numpy as np

from ..core.mesh import IncompleteMesh
from ..obs import span
from ..resilience.faults import RankFailure
from .ghost import ExchangePlan, PartitionLayout, exchange_plan
from .simmpi import SimComm

__all__ = ["distributed_matvec"]


def distributed_matvec(
    mesh: IncompleteMesh,
    layout: PartitionLayout,
    u: np.ndarray,
    comm: SimComm,
    kind: str = "stiffness",
    plan: ExchangePlan | None = None,
) -> np.ndarray:
    """One distributed MATVEC; returns the assembled global result.

    ``plan`` is the persistent exchange plan; by default the cached plan
    of ``(mesh, layout)`` is used (built on first call).
    """
    if comm.size != layout.nranks:
        raise ValueError("communicator size must match the partition")
    if plan is None:
        plan = exchange_plan(mesh, layout)
    ref_el = plan.ctx.ref()
    if kind == "stiffness":
        apply_loc = ref_el.apply_stiffness
    elif kind == "mass":
        apply_loc = ref_el.apply_mass
    else:
        raise ValueError(f"unknown kind {kind!r}")
    h = plan.h
    splits = layout.splits
    nranks = comm.size

    # --- pre-exchange: owners send ghost values to the users ----------
    # (an owner reads only entries it owns — legitimate rank-local data)
    with span("matvec.exchange.pre", merge=True):
        pre = {key: u[ids] for key, ids in plan.send_ids.items()}
        try:
            pre = comm.exchange(pre, allow_self=False)
        except RankFailure as exc:
            exc.phase = "matvec.exchange.pre"
            raise

    out = np.zeros_like(u, dtype=np.float64)
    post: dict[tuple[int, int], np.ndarray] = {}
    for r in range(nranks):
        lo, hi = splits[r], splits[r + 1]
        if hi <= lo:
            continue
        with span("matvec.rank", rank=r):
            ref = layout.ref_nodes[r]
            mine = plan.mine[r]
            with span("matvec.top_down") as tsp:
                # rank-local ghosted input vector: owned entries from the
                # locally stored distributed vector, ghosts from payloads.
                # Zero-initialised so a silently dropped ghost payload
                # (fault injection) yields a deterministic wrong answer
                # rather than reading uninitialised memory.
                u_loc_vec = np.zeros(len(ref))
                u_loc_vec[mine] = u[plan.owned_ids[r]]
                for o in layout.neighbor_ranks[r]:
                    key = (int(o), r)
                    payload = pre.get(key)
                    if payload is not None:
                        u_loc_vec[plan.ghost_pos[key]] = payload
                u_elem = plan.gather_rank(r, u_loc_vec)
                tsp.add("local_nodes", len(ref))
            with span("matvec.leaf") as lsp:
                w_elem = apply_loc(u_elem, h[lo:hi])
                lsp.add("elements", hi - lo)
            with span("matvec.bottom_up") as bsp:
                contrib = plan.scatter_rank(r, w_elem)
                # owned contributions accumulate locally ...
                out[plan.owned_ids[r]] += contrib[mine]
                # ... ghost contributions return to their owners
                for o in layout.neighbor_ranks[r]:
                    post[(r, int(o))] = contrib[plan.ghost_pos[(int(o), r)]]
                bsp.add("ghost_returns", int(len(layout.ghost_nodes[r])))
    with span("matvec.exchange.post", merge=True):
        try:
            post = comm.exchange(post, allow_self=False)
        except RankFailure as exc:
            exc.phase = "matvec.exchange.post"
            raise
        # owners accumulate the returned ghost contributions
        for (src_rank, owner), payload in post.items():
            out[plan.send_ids[(owner, src_rank)]] += payload
    return out
