"""Distributed matrix-free MATVEC over the simulated communicator.

A faithful SPMD simulation: the input vector is distributed by node
ownership, each rank touches **only** its owned entries plus the ghost
payloads it received, works entirely in a rank-local index space
(ghosted vectors), and returns partial results whose ghost contributions
travel back to their owners — the two exchange legs of §3.5, both
counted by :class:`SimComm`.  The assembled global result is
bit-identical to the serial MATVEC (asserted in tests).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.mesh import IncompleteMesh
from ..fem.elemental import reference_element
from ..obs import span
from .ghost import PartitionLayout
from .simmpi import SimComm

__all__ = ["distributed_matvec"]


def distributed_matvec(
    mesh: IncompleteMesh,
    layout: PartitionLayout,
    u: np.ndarray,
    comm: SimComm,
    kind: str = "stiffness",
) -> np.ndarray:
    """One distributed MATVEC; returns the assembled global result."""
    if comm.size != layout.nranks:
        raise ValueError("communicator size must match the partition")
    ref_el = reference_element(mesh.p, mesh.dim)
    if kind == "stiffness":
        apply_loc = ref_el.apply_stiffness
    elif kind == "mass":
        apply_loc = ref_el.apply_mass
    else:
        raise ValueError(f"unknown kind {kind!r}")
    npe = mesh.npe
    g = mesh.nodes.gather.tocsr()
    h = mesh.element_sizes()
    splits = layout.splits
    nranks = comm.size

    # --- pre-exchange: owners send ghost values to the users ----------
    # (an owner reads only entries it owns — legitimate rank-local data)
    with span("matvec.exchange.pre", merge=True):
        pre: dict[tuple[int, int], np.ndarray] = {}
        for r in range(nranks):
            gh, src = layout.ghost_nodes[r], layout.ghost_sources[r]
            for owner in layout.neighbor_ranks[r]:
                ids = gh[src == owner]
                pre[(int(owner), r)] = u[ids]
        comm.exchange(pre)

    out = np.zeros_like(u, dtype=np.float64)
    post: dict[tuple[int, int], np.ndarray] = {}
    # per-rank contributions to owned entries of *other* ranks are
    # buffered here with their local payloads until the post exchange
    contrib_store: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for r in range(nranks):
        lo, hi = splits[r], splits[r + 1]
        if hi <= lo:
            continue
        with span("matvec.rank", rank=r):
            ref = layout.ref_nodes[r]
            gh, src = layout.ghost_nodes[r], layout.ghost_sources[r]
            owner = layout.node_owner[ref]
            with span("matvec.top_down") as tsp:
                # rank-local ghosted input vector: owned entries from the
                # locally stored distributed vector, ghosts from payloads
                u_loc_vec = np.empty(len(ref))
                mine = owner == r
                u_loc_vec[mine] = u[ref[mine]]
                gpos = np.searchsorted(ref, gh)
                for o in layout.neighbor_ranks[r]:
                    sel = src == o
                    u_loc_vec[gpos[sel]] = pre[(int(o), r)]
                # restrict the gather operator to this rank's rows and
                # remap columns into the local index space
                rows = slice(lo * npe, hi * npe)
                g_r = g[rows]
                local_cols = np.searchsorted(ref, g_r.indices)
                g_loc = sp.csr_matrix(
                    (g_r.data, local_cols, g_r.indptr),
                    shape=(g_r.shape[0], len(ref)),
                )
                u_elem = (g_loc @ u_loc_vec).reshape(hi - lo, npe)
                tsp.add("local_nodes", len(ref))
            with span("matvec.leaf") as lsp:
                w_elem = apply_loc(u_elem, h[lo:hi])
                lsp.add("elements", hi - lo)
            with span("matvec.bottom_up") as bsp:
                contrib = g_loc.T @ w_elem.reshape(-1)
                # owned contributions accumulate locally ...
                out[ref[mine]] += contrib[mine]
                # ... ghost contributions return to their owners
                for o in layout.neighbor_ranks[r]:
                    sel = src == o
                    post[(r, int(o))] = contrib[gpos[sel]]
                bsp.add("ghost_returns", int(len(gh)))
            contrib_store[r] = (ref, contrib)
    with span("matvec.exchange.post", merge=True):
        comm.exchange(post)
        # owners accumulate the returned ghost contributions
        for (src_rank, owner), payload in post.items():
            gh = layout.ghost_nodes[src_rank]
            ids = gh[layout.ghost_sources[src_rank] == owner]
            out[ids] += payload
    return out
