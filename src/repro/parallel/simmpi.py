"""Simulated MPI: a deterministic in-process virtual communicator.

The paper's distributed algorithms (DistTreeSort partitioning, ghost
exchange, traversal restriction to owned octants) are data-driven and
rank-local; executing the rank programs sequentially over partitioned
data yields bit-identical results while letting us *measure* exact
communication volumes and message counts.  Real mpi4py is deliberately
not used: Python process-level MPI is far too slow for the core tree
algorithms (see DESIGN.md), and wall-clock scaling is produced by the
explicit performance model in :mod:`repro.parallel.perfmodel` fed with
the measurements collected here.

The API mirrors the phased collective style of the algorithms: each
call takes per-rank inputs and returns per-rank outputs, updating the
per-rank traffic counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import add as obs_add

__all__ = ["SimComm", "TrafficCounters"]


@dataclass
class TrafficCounters:
    """Per-rank accumulated communication statistics."""

    bytes_sent: np.ndarray
    bytes_recv: np.ndarray
    messages_sent: np.ndarray
    collectives: int = 0

    @classmethod
    def zeros(cls, size: int) -> "TrafficCounters":
        return cls(
            np.zeros(size, np.int64), np.zeros(size, np.int64), np.zeros(size, np.int64)
        )

    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    def max_bytes_per_rank(self) -> int:
        return int(self.bytes_sent.max()) if len(self.bytes_sent) else 0


def _nbytes(obj) -> int:
    """Payload size in bytes for any message the collectives accept:
    numpy arrays, scalars, bytes-likes, and (nested) list/tuple/dict
    containers.  Dict payloads count both keys and values — the
    rank-local index maps some algorithms ship are real traffic."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_nbytes(k) + _nbytes(v) for k, v in obj.items())
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if obj is None:
        return 0
    return np.asarray(obj).nbytes


class SimComm:
    """A virtual communicator over ``size`` ranks.

    All collectives are phased: inputs and outputs are length-``size``
    lists indexed by rank.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.counters = TrafficCounters.zeros(size)

    def reset_counters(self) -> None:
        self.counters = TrafficCounters.zeros(self.size)

    def _count_p2p(self, src: int, dst: int, nb: int) -> None:
        """Tally one cross-rank message in the local counters and the
        global :mod:`repro.obs` registry (no-op while obs is disabled)."""
        self.counters.bytes_sent[src] += nb
        self.counters.bytes_recv[dst] += nb
        self.counters.messages_sent[src] += 1
        obs_add("comm.bytes_sent", nb, rank=src)
        obs_add("comm.bytes_recv", nb, rank=dst)
        obs_add("comm.messages_sent", 1, rank=src)

    def _count_collective(self) -> None:
        self.counters.collectives += 1
        obs_add("comm.collectives", 1)

    # -- collectives ----------------------------------------------------

    def alltoallv(self, send: list[list]) -> list[list]:
        """``send[src][dst]`` → returns ``recv[dst][src]``.

        Entries may be numpy arrays or None (no message).
        """
        if len(send) != self.size or any(len(row) != self.size for row in send):
            raise ValueError("send must be a size x size matrix of buffers")
        self._count_collective()
        recv: list[list] = [[None] * self.size for _ in range(self.size)]
        for src in range(self.size):
            for dst in range(self.size):
                buf = send[src][dst]
                if buf is None or (isinstance(buf, np.ndarray) and buf.size == 0):
                    continue
                if src != dst:
                    self._count_p2p(src, dst, _nbytes(buf))
                recv[dst][src] = buf
        return recv

    def allgather(self, values: list) -> list[list]:
        """Each rank contributes one value; all ranks get the list."""
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        self._count_collective()
        sizes = [_nbytes(v) for v in values]
        total = sum(sizes)
        for r in range(self.size):
            nb = sizes[r]
            self.counters.bytes_sent[r] += nb * (self.size - 1)
            self.counters.messages_sent[r] += self.size - 1
            self.counters.bytes_recv[r] += total - nb
            obs_add("comm.bytes_sent", nb * (self.size - 1), rank=r)
            obs_add("comm.bytes_recv", total - nb, rank=r)
            obs_add("comm.messages_sent", self.size - 1, rank=r)
        return [list(values) for _ in range(self.size)]

    def allreduce(self, values: list, op=np.add):
        """Elementwise reduction of per-rank arrays/scalars."""
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        self._count_collective()
        arrs = [np.asarray(v) for v in values]
        out = arrs[0].copy()
        for a in arrs[1:]:
            out = op(out, a)
        per = _nbytes(arrs[0])
        self.counters.bytes_sent += per
        self.counters.bytes_recv += per
        self.counters.messages_sent += 1
        for r in range(self.size):
            obs_add("comm.bytes_sent", per, rank=r)
            obs_add("comm.bytes_recv", per, rank=r)
            obs_add("comm.messages_sent", 1, rank=r)
        return [out.copy() for _ in range(self.size)]

    def exchange(self, messages: dict[tuple[int, int], np.ndarray]):
        """Batched point-to-point: {(src, dst): array} → same mapping,
        with traffic counted (self-messages are free)."""
        self._count_collective()
        for (src, dst), buf in messages.items():
            if src == dst:
                continue
            self._count_p2p(src, dst, _nbytes(buf))
        return messages
