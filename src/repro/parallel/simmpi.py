"""Simulated MPI: a deterministic in-process virtual communicator.

The paper's distributed algorithms (DistTreeSort partitioning, ghost
exchange, traversal restriction to owned octants) are data-driven and
rank-local; executing the rank programs sequentially over partitioned
data yields bit-identical results while letting us *measure* exact
communication volumes and message counts.  Real mpi4py is deliberately
not used: Python process-level MPI is far too slow for the core tree
algorithms (see DESIGN.md), and wall-clock scaling is produced by the
explicit performance model in :mod:`repro.parallel.perfmodel` fed with
the measurements collected here.

The API mirrors the phased collective style of the algorithms: each
call takes per-rank inputs and returns per-rank outputs, updating the
per-rank traffic counters.

Fault injection (:mod:`repro.resilience.faults`): installing a
:class:`~repro.resilience.faults.FaultSchedule` makes the communicator
raise typed :class:`RankFailure` / :class:`MessageCorruption` errors at
exactly the scheduled collective steps.  A crashed rank poisons the
communicator — every later collective keeps raising until a recovery
driver rebuilds a fresh one over the survivors — matching real MPI
semantics where a communicator with a dead rank is unusable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import add as obs_add
from ..obs import record as obs_record
from ..obs.trace import TRACER
from ..resilience.faults import (
    FaultSchedule,
    MessageCorruption,
    RankFailure,
    corrupt_buffer,
)

__all__ = ["SimComm", "TrafficCounters"]


@dataclass
class TrafficCounters:
    """Per-rank accumulated communication statistics."""

    bytes_sent: np.ndarray
    bytes_recv: np.ndarray
    messages_sent: np.ndarray
    collectives: int = 0

    @classmethod
    def zeros(cls, size: int) -> "TrafficCounters":
        return cls(
            np.zeros(size, np.int64), np.zeros(size, np.int64), np.zeros(size, np.int64)
        )

    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    def max_bytes_per_rank(self) -> int:
        return int(self.bytes_sent.max()) if len(self.bytes_sent) else 0


def _nbytes(obj) -> int:
    """Payload size in bytes for any message the collectives accept:
    numpy arrays, scalars, bytes-likes, and (nested) list/tuple/dict
    containers.  Dict payloads count both keys and values — the
    rank-local index maps some algorithms ship are real traffic."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_nbytes(k) + _nbytes(v) for k, v in obj.items())
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if obj is None:
        return 0
    return np.asarray(obj).nbytes


class SimComm:
    """A virtual communicator over ``size`` ranks.

    All collectives are phased: inputs and outputs are length-``size``
    lists indexed by rank.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.counters = TrafficCounters.zeros(size)
        #: monotonically increasing collective index (fault-schedule clock)
        self.op_index = 0
        #: ranks that have crashed; non-empty == communicator is broken
        self.failed_ranks: set[int] = set()
        self.fault_schedule: FaultSchedule | None = None

    def reset_counters(self) -> None:
        self.counters = TrafficCounters.zeros(self.size)

    # -- fault injection ------------------------------------------------

    def install_faults(self, schedule: FaultSchedule | None) -> None:
        """Attach a deterministic fault schedule (None to clear)."""
        self.fault_schedule = schedule

    def _record_fault(self, kind: str, op: str, idx: int, **labels) -> None:
        """Publish one injected fault: counter + zero-duration span +
        event on the innermost open span (no-ops while obs disabled)."""
        obs_add("resilience.faults_injected", 1, kind=kind)
        obs_record(f"resilience.fault.{kind}", 0.0)
        sp = TRACER.current() if TRACER.enabled else None
        if sp is not None:
            sp.event("fault", kind=kind, op=op, op_index=idx, **labels)

    def _fault_gate(self, op: str) -> int:
        """Advance the collective clock and apply crash faults.

        Raises :class:`RankFailure` when a rank dies at this step or
        the communicator already lost a rank earlier."""
        idx = self.op_index
        self.op_index += 1
        sched = self.fault_schedule
        if sched is not None:
            for f in sched.crashes_at(idx):
                if f.rank is not None and 0 <= f.rank < self.size:
                    sched.consume(f)
                    self.failed_ranks.add(int(f.rank))
                    self._record_fault("crash", op, idx, rank=int(f.rank))
        if self.failed_ranks:
            raise RankFailure(min(self.failed_ranks), op, idx)
        return idx

    def _has_message_faults(self, idx: int) -> bool:
        """Once-per-collective fast path: only walk the per-message
        filter when some unconsumed drop/corrupt fault targets this
        collective index (keeps the armed-schedule tax off the
        per-message hot path)."""
        sched = self.fault_schedule
        if sched is None:
            return False
        return any(
            f.kind in ("drop", "corrupt") and f.at_op == idx
            for f in sched.pending()
        )

    def _message_filter(self, idx: int, op: str, src: int, dst: int, buf):
        """Apply drop/corrupt faults to one message.

        Returns ``(deliver, buf)``; raises :class:`MessageCorruption`
        for detected (non-silent) faults."""
        sched = self.fault_schedule
        if sched is None:
            return True, buf
        f = sched.message_fault(idx, src, dst)
        if f is None:
            return True, buf
        sched.consume(f)
        self._record_fault(f.kind, op, idx, src=src, dst=dst)
        if not f.silent:
            raise MessageCorruption(src, dst, f.kind, op, idx)
        if f.kind == "drop":
            return False, buf
        return True, corrupt_buffer(buf, (sched.seed, idx, src, dst))

    def _count_p2p(self, src: int, dst: int, nb: int) -> None:
        """Tally one cross-rank message in the local counters and the
        global :mod:`repro.obs` registry (no-op while obs is disabled)."""
        self.counters.bytes_sent[src] += nb
        self.counters.bytes_recv[dst] += nb
        self.counters.messages_sent[src] += 1
        obs_add("comm.bytes_sent", nb, rank=src)
        obs_add("comm.bytes_recv", nb, rank=dst)
        obs_add("comm.messages_sent", 1, rank=src)

    def _count_collective(self) -> None:
        self.counters.collectives += 1
        obs_add("comm.collectives", 1)

    # -- collectives ----------------------------------------------------

    def alltoallv(self, send: list[list]) -> list[list]:
        """``send[src][dst]`` → returns ``recv[dst][src]``.

        Entries may be numpy arrays or None (no message).  Buffers are
        validated before any counter is touched: a reported negative
        payload size or the *same* array object aliased into several
        slots would corrupt the traffic counters (and hand mutable
        aliases to several receivers), so both are rejected with a
        clear error instead.
        """
        if len(send) != self.size or any(len(row) != self.size for row in send):
            raise ValueError("send must be a size x size matrix of buffers")
        seen: dict[int, tuple[int, int]] = {}
        for src in range(self.size):
            for dst in range(self.size):
                buf = send[src][dst]
                if buf is None or (isinstance(buf, np.ndarray) and buf.size == 0):
                    continue
                nb = _nbytes(buf)
                if nb < 0:
                    raise ValueError(
                        f"alltoallv: buffer ({src}->{dst}) reports negative "
                        f"size {nb}"
                    )
                if isinstance(buf, np.ndarray):
                    prev = seen.setdefault(id(buf), (src, dst))
                    if prev != (src, dst):
                        raise ValueError(
                            f"alltoallv: buffer ({src}->{dst}) aliases the "
                            f"({prev[0]}->{prev[1]}) buffer — send distinct "
                            "arrays per destination"
                        )
        idx = self._fault_gate("alltoallv")
        filtering = self._has_message_faults(idx)
        self._count_collective()
        recv: list[list] = [[None] * self.size for _ in range(self.size)]
        for src in range(self.size):
            for dst in range(self.size):
                buf = send[src][dst]
                if buf is None or (isinstance(buf, np.ndarray) and buf.size == 0):
                    continue
                if filtering:
                    deliver, buf = self._message_filter(
                        idx, "alltoallv", src, dst, buf
                    )
                    if not deliver:
                        continue
                if src != dst:
                    self._count_p2p(src, dst, _nbytes(buf))
                recv[dst][src] = buf
        return recv

    def allgather(self, values: list) -> list[list]:
        """Each rank contributes one value; all ranks get the list."""
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        self._fault_gate("allgather")
        self._count_collective()
        sizes = [_nbytes(v) for v in values]
        total = sum(sizes)
        for r in range(self.size):
            nb = sizes[r]
            self.counters.bytes_sent[r] += nb * (self.size - 1)
            self.counters.messages_sent[r] += self.size - 1
            self.counters.bytes_recv[r] += total - nb
            obs_add("comm.bytes_sent", nb * (self.size - 1), rank=r)
            obs_add("comm.bytes_recv", total - nb, rank=r)
            obs_add("comm.messages_sent", self.size - 1, rank=r)
        return [list(values) for _ in range(self.size)]

    def allreduce(self, values: list, op=np.add):
        """Elementwise reduction of per-rank arrays/scalars."""
        if len(values) != self.size:
            raise ValueError("one value per rank required")
        self._fault_gate("allreduce")
        self._count_collective()
        arrs = [np.asarray(v) for v in values]
        out = arrs[0].copy()
        for a in arrs[1:]:
            out = op(out, a)
        per = _nbytes(arrs[0])
        self.counters.bytes_sent += per
        self.counters.bytes_recv += per
        self.counters.messages_sent += 1
        for r in range(self.size):
            obs_add("comm.bytes_sent", per, rank=r)
            obs_add("comm.bytes_recv", per, rank=r)
            obs_add("comm.messages_sent", 1, rank=r)
        return [out.copy() for _ in range(self.size)]

    def exchange(
        self,
        messages: dict[tuple[int, int], np.ndarray],
        allow_self: bool = True,
    ) -> dict[tuple[int, int], np.ndarray]:
        """Batched point-to-point: {(src, dst): array} → delivered
        mapping, with traffic counted (self-messages are free).

        Keys are validated: src/dst must be in-range ranks, and
        self-sends are rejected when ``allow_self`` is False (the ghost
        exchange legs never legitimately self-send, so corrupted keys
        fail loudly there instead of silently skewing counters).
        Callers must consume the *returned* mapping — under an
        installed fault schedule it may differ from the input
        (dropped or corrupted entries).
        """
        for key in messages:
            if (
                not isinstance(key, tuple) or len(key) != 2
                or not all(isinstance(k, (int, np.integer)) for k in key)
            ):
                raise ValueError(f"exchange: malformed message key {key!r}")
            src, dst = int(key[0]), int(key[1])
            if not (0 <= src < self.size and 0 <= dst < self.size):
                raise ValueError(
                    f"exchange: message key ({src}, {dst}) outside "
                    f"communicator of size {self.size}"
                )
            if src == dst and not allow_self:
                raise ValueError(
                    f"exchange: self-send ({src}->{dst}) is not allowed here"
                )
        idx = self._fault_gate("exchange")
        filtering = self._has_message_faults(idx)
        self._count_collective()
        out: dict[tuple[int, int], np.ndarray] = {}
        for (src, dst), buf in messages.items():
            if src != dst:
                if filtering:
                    deliver, buf = self._message_filter(
                        idx, "exchange", int(src), int(dst), buf
                    )
                    if not deliver:
                        continue
                self._count_p2p(src, dst, _nbytes(buf))
            out[(src, dst)] = buf
        return out
