"""Simulated distributed-memory substrate (see DESIGN.md).

Mesh-dependent pieces are exported lazily (PEP 562) to avoid import
cycles with :mod:`repro.core`.
"""

from .partition import partition_weights, shrink_splits
from .simmpi import SimComm, TrafficCounters

__all__ = [
    "SimComm",
    "TrafficCounters",
    "partition_weights",
    "shrink_splits",
    "partition_mesh",
    "PartitionLayout",
    "analyze_partition",
    "ExchangePlan",
    "exchange_plan",
    "update_exchange_plan",
    "distributed_matvec",
    "MachineModel",
    "FRONTERA",
    "MatvecPhases",
    "model_matvec",
    "rank_statistics",
]

_LAZY = {
    "partition_mesh": ("partition", "partition_mesh"),
    "PartitionLayout": ("ghost", "PartitionLayout"),
    "analyze_partition": ("ghost", "analyze_partition"),
    "ExchangePlan": ("ghost", "ExchangePlan"),
    "exchange_plan": ("ghost", "exchange_plan"),
    "update_exchange_plan": ("ghost", "update_exchange_plan"),
    "distributed_matvec": ("dist_matvec", "distributed_matvec"),
    "MachineModel": ("perfmodel", "MachineModel"),
    "FRONTERA": ("perfmodel", "FRONTERA"),
    "MatvecPhases": ("perfmodel", "MatvecPhases"),
    "model_matvec": ("perfmodel", "model_matvec"),
    "rank_statistics": ("perfmodel", "rank_statistics"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        mod, attr = _LAZY[name]
        return getattr(importlib.import_module(f".{mod}", __name__), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
