"""SFC partitioning with load tolerance (the DistTreeSort splitter rule).

Elements already in SFC order are split into contiguous per-rank ranges.
The ideal splitter positions balance weights exactly; an optional
tolerance lets splitters snap to coarse subtree boundaries (the paper:
"a large tolerance will partition the tree at coarse levels; a small
tolerance will balance the load more evenly at the expense of splitting
coarse subtrees over multiple processes").

The *active-region-only* property — the central difference from the
complete-octree pipeline of [66]/Dendro — holds by construction here:
the element list being split contains only retained octants, so every
rank receives the same amount of actual FEM work.  The baseline in
:mod:`repro.baselines.complete_octree` partitions the complete tree
instead, and its per-rank *active* work becomes unbalanced.
"""

from __future__ import annotations

import numpy as np

from ..core.mesh import IncompleteMesh
from ..core.octant import max_level
from ..core.sfc import get_curve

__all__ = [
    "partition_weights",
    "partition_mesh",
    "splitter_block_levels",
    "shrink_splits",
]


def partition_weights(
    weights: np.ndarray, nparts: int, load_tol: float = 0.0, keys=None, dim=3
) -> np.ndarray:
    """Split SFC-ordered ``weights`` into ``nparts`` contiguous ranges.

    Returns ``splits`` of length ``nparts + 1`` (element index bounds).
    With ``load_tol > 0`` and ``keys`` given, each splitter may move by
    up to ``load_tol`` × (ideal grain) positions to land on the
    coarsest-possible subtree boundary.
    """
    w = np.asarray(weights, np.float64)
    n = len(w)
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    csum = np.concatenate([[0.0], np.cumsum(w)])
    total = csum[-1]
    targets = total * np.arange(1, nparts) / nparts
    splits = np.searchsorted(csum, targets, side="left")
    splits = np.clip(splits, 0, n)
    out = np.concatenate([[0], splits, [n]]).astype(np.int64)
    # enforce monotonicity for degenerate weight distributions
    np.maximum.accumulate(out, out=out)
    if load_tol > 0.0 and keys is not None and n:
        grain = max(int(n / nparts), 1)
        radius = max(int(load_tol * grain), 0)
        align = _boundary_alignment(np.asarray(keys, np.uint64), dim)
        for i in range(1, nparts):
            s = out[i]
            lo = max(int(out[i - 1]), s - radius)
            hi = min(int(out[i + 1]), s + radius)
            if hi <= lo:
                continue
            cand = np.arange(lo, hi + 1)
            cand = cand[(cand >= out[i - 1]) & (cand <= out[i + 1])]
            # prefer the coarsest block boundary, then closeness to ideal
            score = -align[np.clip(cand, 0, n - 1)] * (2 * radius + 2) + np.abs(
                cand - s
            )
            out[i] = cand[np.argmin(score)]
        np.maximum.accumulate(out, out=out)
    return out


def _boundary_alignment(keys: np.ndarray, dim: int) -> np.ndarray:
    """How coarse a subtree boundary each position starts: the number of
    trailing zero *digit groups* (dim bits each) of the SFC key."""
    n = len(keys)
    out = np.zeros(n + 1, np.int64)
    m = max_level(dim)
    k = keys.astype(np.uint64)
    for g in range(1, m + 1):
        mask = (np.uint64(1) << np.uint64(dim * g)) - np.uint64(1)
        aligned = (k & mask) == 0
        out[:n] = np.where(aligned, g, out[:n])
    out[n] = m
    return out


def partition_mesh(
    mesh: IncompleteMesh, nparts: int, load_tol: float = 0.0
) -> np.ndarray:
    """Partition a mesh's elements (unit weights) into rank ranges."""
    keys = get_curve(mesh.curve).keys(mesh.leaves)
    return partition_weights(
        np.ones(mesh.n_elem), nparts, load_tol, keys=keys, dim=mesh.dim
    )


def shrink_splits(splits: np.ndarray, failed_ranks) -> np.ndarray:
    """Contract a partition onto the ranks surviving a failure.

    Each failed rank's element range is absorbed by the nearest
    surviving rank *before* it in SFC order (leading failed ranges go
    to the first survivor), so surviving ranks keep their own element
    ranges — the minimal-data-movement recovery repartition used by
    :mod:`repro.resilience.recovery`.  Returns splits of length
    ``n_survivors + 1`` covering the same global element range.
    """
    splits = np.asarray(splits, np.int64)
    nranks = len(splits) - 1
    failed = {int(r) for r in failed_ranks}
    if not failed <= set(range(nranks)):
        raise ValueError(f"failed ranks {sorted(failed)} outside 0..{nranks - 1}")
    survivors = [r for r in range(nranks) if r not in failed]
    if not survivors:
        raise ValueError("no surviving ranks to shrink onto")
    out = np.empty(len(survivors) + 1, np.int64)
    out[0] = splits[0]
    # survivor i > 0 keeps its own range start; everything between the
    # previous survivor's end and here (failed ranges) merges backwards
    for i, r in enumerate(survivors[1:], start=1):
        out[i] = splits[r]
    out[-1] = splits[-1]
    return out


def splitter_block_levels(mesh: IncompleteMesh, splits: np.ndarray) -> np.ndarray:
    """Diagnostic: the block-alignment level at each interior splitter
    (coarser alignment = fewer split subtrees)."""
    keys = get_curve(mesh.curve).keys(mesh.leaves)
    align = _boundary_alignment(keys, mesh.dim)
    return align[splits[1:-1]]
