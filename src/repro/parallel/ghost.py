"""Owned/ghost node analysis for partitioned incomplete-octree meshes.

Node ownership follows the first-touch SFC rule: a node is owned by the
rank owning the first element (in SFC order) that references it.  Ghost
nodes of a rank are the nodes its elements reference but does not own —
the quantities behind Fig. 11 (ghost distribution, η = N_G/N_L) and the
communication volumes of the scaling studies.

:class:`ExchangePlan` turns a :class:`PartitionLayout` into a
*persistent* ghost-exchange plan: the per-(rank, neighbour) send/recv
index arrays and the rank-local restricted gather operators that the
distributed MATVEC needs on every apply, precomputed once.  Krylov
solvers hit :func:`repro.parallel.dist_matvec.distributed_matvec` once
per iteration, so hoisting this derivation out of the call is the
distributed half of the operator-plan layer
(:mod:`repro.core.plan`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..core.mesh import IncompleteMesh
from ..core.plan import mesh_fingerprint, operator_context
from ..obs import set_gauge, span

__all__ = [
    "PartitionLayout",
    "analyze_partition",
    "ExchangePlan",
    "exchange_plan",
    "update_exchange_plan",
]


@dataclass
class PartitionLayout:
    """Everything the distributed MATVEC needs to know about a partition."""

    splits: np.ndarray              # (nranks+1,) element range bounds
    node_owner: np.ndarray          # (n_glob,) owning rank per node
    owned_counts: np.ndarray        # (nranks,) nodes owned per rank
    ghost_counts: np.ndarray        # (nranks,) ghost nodes per rank
    local_counts: np.ndarray        # (nranks,) referenced nodes per rank
    ref_nodes: list[np.ndarray]     # per rank: all referenced global ids
    ghost_nodes: list[np.ndarray]   # per rank: global ids of its ghosts
    ghost_sources: list[np.ndarray]  # per rank: owner rank of each ghost
    neighbor_ranks: list[np.ndarray]  # per rank: distinct exchange partners

    @property
    def nranks(self) -> int:
        return len(self.splits) - 1

    def eta(self) -> np.ndarray:
        """η = N_G / N_L per rank (ghost / locally-owned-and-referenced)."""
        own_ref = self.local_counts - self.ghost_counts
        own_ref = np.maximum(own_ref, 1)
        return self.ghost_counts / own_ref

    def ghost_bytes(self, dofs_per_node: int = 1) -> np.ndarray:
        """Bytes exchanged per rank per direction of one ghost exchange."""
        return self.ghost_counts * 8 * dofs_per_node

    def message_counts(self) -> np.ndarray:
        return np.array([len(nr) for nr in self.neighbor_ranks], np.int64)


def analyze_partition(mesh: IncompleteMesh, splits: np.ndarray) -> PartitionLayout:
    """Compute ownership and ghost structure for SFC-contiguous ranges."""
    with span("partition.analyze") as osp:
        layout = _analyze_partition(mesh, splits)
        osp.add("ranks", layout.nranks)
        osp.add("ghost_total", int(layout.ghost_counts.sum()))
        osp.add("messages_total", int(layout.message_counts().sum()))
        for r in range(layout.nranks):
            set_gauge("partition.ghost_nodes", int(layout.ghost_counts[r]), rank=r)
            set_gauge("partition.owned_nodes", int(layout.owned_counts[r]), rank=r)
    return layout


def _analyze_partition(mesh: IncompleteMesh, splits: np.ndarray) -> PartitionLayout:
    splits = np.asarray(splits, np.int64)
    nranks = len(splits) - 1
    npe = mesh.npe
    g = mesh.nodes.gather.tocsr()
    n_glob = mesh.n_nodes

    # first-touch owner: smallest element index referencing each node.
    # CSC column indices are row-sorted, so the first entry per column
    # is the smallest referencing row.
    gc = g.tocsc()
    first_row = np.full(n_glob, np.iinfo(np.int64).max, np.int64)
    nnz_per_col = np.diff(gc.indptr)
    has = nnz_per_col > 0
    first_row[has] = gc.indices[gc.indptr[:-1][has]]
    if not has.all():
        raise RuntimeError("mesh has nodes referenced by no element")
    owner_elem = first_row // npe
    node_owner = (np.searchsorted(splits, owner_elem, side="right") - 1).astype(
        np.int64
    )

    owned_counts = np.bincount(node_owner, minlength=nranks)
    ghost_counts = np.zeros(nranks, np.int64)
    local_counts = np.zeros(nranks, np.int64)
    ref_nodes: list[np.ndarray] = []
    ghost_nodes: list[np.ndarray] = []
    ghost_sources: list[np.ndarray] = []
    neighbor_ranks: list[np.ndarray] = []
    indptr, indices = g.indptr, g.indices
    for r in range(nranks):
        lo, hi = splits[r], splits[r + 1]
        ref = np.unique(indices[indptr[lo * npe] : indptr[hi * npe]])
        ref_nodes.append(ref)
        local_counts[r] = len(ref)
        gmask = node_owner[ref] != r
        gh = ref[gmask]
        ghost_nodes.append(gh)
        src = node_owner[gh]
        ghost_sources.append(src)
        ghost_counts[r] = len(gh)
        neighbor_ranks.append(np.unique(src))

    return PartitionLayout(
        splits=splits,
        node_owner=node_owner,
        owned_counts=owned_counts,
        ghost_counts=ghost_counts,
        local_counts=local_counts,
        ref_nodes=ref_nodes,
        ghost_nodes=ghost_nodes,
        ghost_sources=ghost_sources,
        neighbor_ranks=neighbor_ranks,
    )


class ExchangePlan:
    """Persistent ghost-exchange + rank-local operator plan (§3.5).

    Precomputes, once per (mesh fingerprint, layout):

    * ``send_ids[(owner, user)]`` — global node ids whose values the
      owner rank ships to the user rank in the pre-exchange (and where
      the returned ghost contributions accumulate in the post-exchange);
    * ``ghost_pos[(owner, user)]`` — the positions of those ghosts in
      the user rank's local (referenced-node) index space;
    * ``g_loc[r]`` — rank ``r``'s rows of the gather operator with
      columns remapped into its local index space (CSR);
    * ``mine[r]`` / ``owned_ids[r]`` — the locally owned subset of the
      referenced nodes and their global ids.

    ``distributed_matvec`` consumes these arrays directly, so repeated
    distributed applies no longer re-derive exchange dicts or re-CSR the
    gather on every call.
    """

    def __init__(
        self,
        mesh: IncompleteMesh,
        layout: PartitionLayout,
        _reuse: "dict[int, tuple[sp.csr_matrix, sp.csc_matrix]] | None" = None,
    ):
        ctx = operator_context(mesh)
        self.mesh = mesh
        self.layout = layout
        self.ctx = ctx
        self.fingerprint = ctx.fingerprint
        self.npe = mesh.npe
        self.h = ctx.h
        g = ctx.gather
        npe = mesh.npe
        splits = layout.splits
        nranks = layout.nranks
        self.mine: list[np.ndarray] = []
        self.owned_ids: list[np.ndarray] = []
        self.g_loc: list[sp.csr_matrix | None] = []
        self.g_loc_T: list[sp.csc_matrix | None] = []
        self.send_ids: dict[tuple[int, int], np.ndarray] = {}
        self.ghost_pos: dict[tuple[int, int], np.ndarray] = {}
        self.reused_ranks = 0
        for r in range(nranks):
            self._build_rank_exchange(layout, r)
            lo, hi = splits[r], splits[r + 1]
            if hi <= lo:
                self.g_loc.append(None)
                self.g_loc_T.append(None)
                continue
            if _reuse is not None and r in _reuse:
                g_loc, g_loc_T = _reuse[r]
                self.g_loc.append(g_loc)
                self.g_loc_T.append(g_loc_T)
                self.reused_ranks += 1
                continue
            g_loc = self._build_rank_operator(g, layout, r, npe)
            self.g_loc.append(g_loc)
            # the CSC transpose shares g_loc's arrays; prebuilding it
            # keeps scipy's per-call transpose wrapper off the hot path
            self.g_loc_T.append(g_loc.T)

    def _build_rank_exchange(self, layout: PartitionLayout, r: int) -> None:
        """Per-rank send/recv index arrays and ownership masks (cheap)."""
        ref = layout.ref_nodes[r]
        gh, src = layout.ghost_nodes[r], layout.ghost_sources[r]
        mine = layout.node_owner[ref] == r
        self.mine.append(mine)
        self.owned_ids.append(ref[mine])
        gpos = np.searchsorted(ref, gh)
        for owner in layout.neighbor_ranks[r]:
            sel = src == owner
            self.send_ids[(int(owner), r)] = gh[sel]
            self.ghost_pos[(int(owner), r)] = gpos[sel]

    @staticmethod
    def _build_rank_operator(
        g: sp.csr_matrix, layout: PartitionLayout, r: int, npe: int
    ) -> sp.csr_matrix:
        """Rank ``r``'s gather rows with columns remapped into its local
        (referenced-node) index space — the expensive per-rank piece."""
        lo, hi = layout.splits[r], layout.splits[r + 1]
        ref = layout.ref_nodes[r]
        g_r = g[lo * npe : hi * npe]
        local_cols = np.searchsorted(ref, g_r.indices)
        return sp.csr_matrix(
            (g_r.data, local_cols, g_r.indptr),
            shape=(g_r.shape[0], len(ref)),
        )

    def gather_rank(self, r: int, u_loc_vec: np.ndarray) -> np.ndarray:
        """Rank ``r``'s element gather through the active kernel backend:
        local ghosted vector → ``(n_owned_elem, npe)`` slot matrix."""
        from ..kernels import api as kernels

        lo, hi = self.layout.splits[r], self.layout.splits[r + 1]
        return kernels.gather(self.g_loc[r], u_loc_vec).reshape(
            hi - lo, self.npe
        )

    def scatter_rank(self, r: int, w_elem: np.ndarray) -> np.ndarray:
        """Rank ``r``'s bottom-up accumulation through the active kernel
        backend: elemental results → rank-local node contributions."""
        from ..kernels import api as kernels

        return kernels.scatter(self.g_loc_T[r], w_elem.reshape(-1))

    def nbytes(self) -> int:
        """Resident bytes of the plan's index/operator arrays — the
        memory price of persisting the exchange plan, reported by the
        resilience overhead benchmark alongside checkpoint volume."""
        total = 0
        for arrs in (self.mine, self.owned_ids):
            total += sum(a.nbytes for a in arrs)
        for d in (self.send_ids, self.ghost_pos):
            total += sum(a.nbytes for a in d.values())
        for m in self.g_loc:
            if m is not None:
                total += m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        return total


def exchange_plan(mesh: IncompleteMesh, layout: PartitionLayout) -> ExchangePlan:
    """The layout's cached :class:`ExchangePlan`.

    Cached on the layout object behind the mesh content fingerprint:
    reusing a layout against a refined/coarsened mesh (new fingerprint)
    rebuilds the plan instead of reusing stale index arrays.
    """
    plan = getattr(layout, "_exchange_plan", None)
    if (
        plan is not None
        and plan.mesh is mesh
        and plan.fingerprint == mesh_fingerprint(mesh)
    ):
        return plan
    with span("plan.exchange_build") as osp:
        plan = ExchangePlan(mesh, layout)
        osp.add("ranks", layout.nranks)
    layout._exchange_plan = plan
    return plan


def update_exchange_plan(
    mesh: IncompleteMesh, layout: PartitionLayout, old_plan: ExchangePlan
) -> ExchangePlan:
    """Build ``mesh``'s :class:`ExchangePlan`, reusing per-rank operators
    from ``old_plan`` where the incremental plan delta proves them valid.

    ``mesh`` must come out of :func:`repro.core.plan_delta.update_mesh`
    (it carries a :class:`~repro.core.plan_delta.PlanUpdateReport`).  A
    rank's restricted gather ``g_loc[r]`` is bit-identical to a fresh
    build — and therefore reused — when

    * its element window is unchanged (same splits) and every element in
      it is *clean* (its gather row was spliced, not recomputed), and
    * its referenced-node set maps elementwise through the old→new
      ``gid_map`` onto the new referenced set (no node in the window
      vanished or appeared; the monotone gid_map preserves the local
      column order).

    All cheap per-rank index arrays (send/recv ids, ownership masks) are
    rebuilt fresh from ``layout`` — they live in *global* node ids, which
    shift under the delta.  Ranks failing the conditions rebuild their
    operator exactly as :class:`ExchangePlan` would.
    """
    report = getattr(mesh, "_plan_update", None)
    if report is None or not report.incremental:
        return exchange_plan(mesh, layout)
    gid_map = report.gid_map
    clean = report.clean_new
    ol = old_plan.layout
    reuse: dict[int, tuple[sp.csr_matrix, sp.csc_matrix]] = {}
    for r in range(layout.nranks):
        lo, hi = int(layout.splits[r]), int(layout.splits[r + 1])
        if hi <= lo or r >= ol.nranks:
            continue
        if int(ol.splits[r]) != lo or int(ol.splits[r + 1]) != hi:
            continue
        if old_plan.g_loc[r] is None or not clean[lo:hi].all():
            continue
        mapped = gid_map[ol.ref_nodes[r]]
        if (mapped < 0).any() or not np.array_equal(
            mapped, layout.ref_nodes[r]
        ):
            continue
        reuse[r] = (old_plan.g_loc[r], old_plan.g_loc_T[r])
    with span("plan.exchange_update") as osp:
        plan = ExchangePlan(mesh, layout, _reuse=reuse)
        osp.add("ranks", layout.nranks)
        osp.add("ranks_reused", plan.reused_ranks)
    layout._exchange_plan = plan
    return plan
