"""Owned/ghost node analysis for partitioned incomplete-octree meshes.

Node ownership follows the first-touch SFC rule: a node is owned by the
rank owning the first element (in SFC order) that references it.  Ghost
nodes of a rank are the nodes its elements reference but does not own —
the quantities behind Fig. 11 (ghost distribution, η = N_G/N_L) and the
communication volumes of the scaling studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mesh import IncompleteMesh
from ..obs import set_gauge, span

__all__ = ["PartitionLayout", "analyze_partition"]


@dataclass
class PartitionLayout:
    """Everything the distributed MATVEC needs to know about a partition."""

    splits: np.ndarray              # (nranks+1,) element range bounds
    node_owner: np.ndarray          # (n_glob,) owning rank per node
    owned_counts: np.ndarray        # (nranks,) nodes owned per rank
    ghost_counts: np.ndarray        # (nranks,) ghost nodes per rank
    local_counts: np.ndarray        # (nranks,) referenced nodes per rank
    ref_nodes: list[np.ndarray]     # per rank: all referenced global ids
    ghost_nodes: list[np.ndarray]   # per rank: global ids of its ghosts
    ghost_sources: list[np.ndarray]  # per rank: owner rank of each ghost
    neighbor_ranks: list[np.ndarray]  # per rank: distinct exchange partners

    @property
    def nranks(self) -> int:
        return len(self.splits) - 1

    def eta(self) -> np.ndarray:
        """η = N_G / N_L per rank (ghost / locally-owned-and-referenced)."""
        own_ref = self.local_counts - self.ghost_counts
        own_ref = np.maximum(own_ref, 1)
        return self.ghost_counts / own_ref

    def ghost_bytes(self, dofs_per_node: int = 1) -> np.ndarray:
        """Bytes exchanged per rank per direction of one ghost exchange."""
        return self.ghost_counts * 8 * dofs_per_node

    def message_counts(self) -> np.ndarray:
        return np.array([len(nr) for nr in self.neighbor_ranks], np.int64)


def analyze_partition(mesh: IncompleteMesh, splits: np.ndarray) -> PartitionLayout:
    """Compute ownership and ghost structure for SFC-contiguous ranges."""
    with span("partition.analyze") as osp:
        layout = _analyze_partition(mesh, splits)
        osp.add("ranks", layout.nranks)
        osp.add("ghost_total", int(layout.ghost_counts.sum()))
        osp.add("messages_total", int(layout.message_counts().sum()))
        for r in range(layout.nranks):
            set_gauge("partition.ghost_nodes", int(layout.ghost_counts[r]), rank=r)
            set_gauge("partition.owned_nodes", int(layout.owned_counts[r]), rank=r)
    return layout


def _analyze_partition(mesh: IncompleteMesh, splits: np.ndarray) -> PartitionLayout:
    splits = np.asarray(splits, np.int64)
    nranks = len(splits) - 1
    npe = mesh.npe
    g = mesh.nodes.gather.tocsr()
    n_glob = mesh.n_nodes

    # first-touch owner: smallest element index referencing each node.
    # CSC column indices are row-sorted, so the first entry per column
    # is the smallest referencing row.
    gc = g.tocsc()
    first_row = np.full(n_glob, np.iinfo(np.int64).max, np.int64)
    nnz_per_col = np.diff(gc.indptr)
    has = nnz_per_col > 0
    first_row[has] = gc.indices[gc.indptr[:-1][has]]
    if not has.all():
        raise RuntimeError("mesh has nodes referenced by no element")
    owner_elem = first_row // npe
    node_owner = (np.searchsorted(splits, owner_elem, side="right") - 1).astype(
        np.int64
    )

    owned_counts = np.bincount(node_owner, minlength=nranks)
    ghost_counts = np.zeros(nranks, np.int64)
    local_counts = np.zeros(nranks, np.int64)
    ref_nodes: list[np.ndarray] = []
    ghost_nodes: list[np.ndarray] = []
    ghost_sources: list[np.ndarray] = []
    neighbor_ranks: list[np.ndarray] = []
    indptr, indices = g.indptr, g.indices
    for r in range(nranks):
        lo, hi = splits[r], splits[r + 1]
        ref = np.unique(indices[indptr[lo * npe] : indptr[hi * npe]])
        ref_nodes.append(ref)
        local_counts[r] = len(ref)
        gmask = node_owner[ref] != r
        gh = ref[gmask]
        ghost_nodes.append(gh)
        src = node_owner[gh]
        ghost_sources.append(src)
        ghost_counts[r] = len(gh)
        neighbor_ranks.append(np.unique(src))

    return PartitionLayout(
        splits=splits,
        node_owner=node_owner,
        owned_counts=owned_counts,
        ghost_counts=ghost_counts,
        local_counts=local_counts,
        ref_nodes=ref_nodes,
        ghost_nodes=ghost_nodes,
        ghost_sources=ghost_sources,
        neighbor_ranks=neighbor_ranks,
    )
