"""Performance model: measured partitions → modelled wall-clock times.

The reproduction substitutes Frontera with an explicit machine model
(DESIGN.md).  Everything *structural* — per-rank element counts, ghost
node counts, message counts, leaf depths — is measured from the real
meshes and partitions built by this repo; only the conversion to
seconds uses the model below, calibrated to the paper's single-core
roofline measurements (≈4 GFLOP/s for linear, ≈7 GFLOP/s for quadratic
elemental kernels, ≈60 GB/s achieved bandwidth) and typical HPC
interconnect parameters.

The modelled MATVEC phases match the paper's breakdown: top-down
traversal, leaf MATVEC, bottom-up traversal, communication (ghost
exchange), and malloc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.mesh import IncompleteMesh
from .ghost import PartitionLayout

__all__ = ["MachineModel", "MatvecPhases", "rank_statistics", "model_matvec", "FRONTERA"]


@dataclass(frozen=True)
class MachineModel:
    """Frontera-like per-core and network parameters."""

    name: str = "frontera-clx-model"
    #: achieved elemental-kernel rate by element order (FLOP/s)
    gflops_linear: float = 4.0e9
    gflops_quadratic: float = 7.0e9
    #: achieved memory bandwidth per core (B/s)
    mem_bw: float = 60.0e9
    #: network message latency (s) and per-rank effective bandwidth (B/s)
    net_latency: float = 2.0e-6
    net_bw: float = 2.5e9
    #: buffer management overheads
    malloc_base: float = 2.0e-6
    malloc_per_node: float = 1.0e-9
    #: duplication factor of top-down node bucketing (nodes shared by
    #: several children are copied once per child)
    dup_factor: float = 1.35

    def kernel_rate(self, p: int) -> float:
        if p == 1:
            return self.gflops_linear
        if p == 2:
            return self.gflops_quadratic
        # interpolate in arithmetic-intensity terms for other orders
        return self.gflops_quadratic * (p / 2.0) ** 0.25

    def leaf_flops_per_element(self, p: int, dim: int) -> float:
        """Leaf-MATVEC work per element, including quadrature-based
        elemental operator formation: ≈ 20·d·(p+1)^(d+2) FLOPs.

        Calibrated to the paper's measured per-element times: 13.5M
        linear elements in 2.87 s × 224 cores per 100 MATVECs gives
        ≈ 480 ns/element at 4 GFLOP/s ⇒ ≈ 1.9 kFLOP (p=1, d=3); the
        (p+1)^(d+2) growth reproduces the observed 4.2× quadratic vs
        linear time ratio once the 7/4 GFLOP/s rate gap is applied.
        """
        return 20.0 * dim * (p + 1) ** (dim + 2)


FRONTERA = MachineModel()


@dataclass
class MatvecPhases:
    """Per-rank modelled phase times (seconds) of one MATVEC."""

    top_down: np.ndarray
    leaf: np.ndarray
    bottom_up: np.ndarray
    comm: np.ndarray
    malloc: np.ndarray

    def per_rank_total(self) -> np.ndarray:
        return self.top_down + self.leaf + self.bottom_up + self.comm + self.malloc

    @property
    def time(self) -> float:
        """Execution time of the MATVEC: the slowest rank."""
        return float(self.per_rank_total().max())

    def breakdown(self) -> dict[str, float]:
        """Phase times of the critical (slowest) rank."""
        r = int(np.argmax(self.per_rank_total()))
        return {
            "top_down": float(self.top_down[r]),
            "leaf": float(self.leaf[r]),
            "bottom_up": float(self.bottom_up[r]),
            "comm": float(self.comm[r]),
            "malloc": float(self.malloc[r]),
        }

    def parallel_cost(self) -> float:
        """Run time × number of ranks (the strong-scaling metric)."""
        return self.time * len(self.leaf)


@dataclass
class RankStats:
    """Measured per-rank workload statistics."""

    n_elem: np.ndarray
    n_ref_nodes: np.ndarray      # nodes referenced (owned-ref + ghosts)
    ghost_nodes: np.ndarray
    messages: np.ndarray
    mean_leaf_depth: np.ndarray


def rank_statistics(mesh: IncompleteMesh, layout: PartitionLayout) -> RankStats:
    splits = layout.splits
    nranks = layout.nranks
    n_elem = np.diff(splits).astype(np.int64)
    depth = np.zeros(nranks)
    lv = mesh.leaves.levels.astype(np.float64)
    for r in range(nranks):
        lo, hi = splits[r], splits[r + 1]
        depth[r] = lv[lo:hi].mean() if hi > lo else 0.0
    return RankStats(
        n_elem=n_elem,
        n_ref_nodes=layout.local_counts,
        ghost_nodes=layout.ghost_counts,
        messages=layout.message_counts(),
        mean_leaf_depth=depth,
    )


def model_matvec(
    stats: RankStats,
    p: int,
    dim: int,
    machine: MachineModel = FRONTERA,
    dofs_per_node: int = 1,
    active_elem: np.ndarray | None = None,
) -> MatvecPhases:
    """Model one MATVEC from measured rank statistics.

    ``active_elem`` overrides the per-rank element counts that do real
    FEM work (used for the complete-octree baseline, whose partitions
    contain inactive void elements that cost traversal but are load-
    imbalanced in the leaf phase).
    """
    work = stats.n_elem if active_elem is None else np.asarray(active_elem)
    flops = machine.leaf_flops_per_element(p, dim) * dofs_per_node**2
    leaf = work * flops / machine.kernel_rate(p)
    # traversal phases: every referenced node is copied down (and merged
    # up) once per tree level on average, with duplication
    td_bytes = (
        8.0
        * dofs_per_node
        * stats.n_ref_nodes
        * stats.mean_leaf_depth
        * machine.dup_factor
    )
    top_down = td_bytes / machine.mem_bw
    bottom_up = 1.15 * top_down  # accumulation also reads the child buffer
    # ghost exchange before and after the local traversals
    comm = 2.0 * (
        machine.net_latency * np.maximum(stats.messages, 1)
        + 8.0 * dofs_per_node * stats.ghost_nodes / machine.net_bw
    )
    nranks = len(work)
    comm = comm + machine.net_latency * np.log2(max(nranks, 2))
    malloc = (
        machine.malloc_base
        + machine.malloc_per_node * dofs_per_node * stats.n_ref_nodes
    )
    malloc = np.full(nranks, machine.malloc_base) + (
        machine.malloc_per_node * dofs_per_node * stats.n_ref_nodes
    )
    return MatvecPhases(
        top_down=top_down,
        leaf=leaf,
        bottom_up=bottom_up,
        comm=comm,
        malloc=malloc,
    )
