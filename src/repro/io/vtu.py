"""VTK XML unstructured-grid (.vtu) output.

The paper's artifact writes compressed binary .vtu files; this
substitute writes plain ASCII XML readable by ParaView/VisIt without
any external dependency.  Elements are exported as disconnected
quads/hexahedra with per-element corner points — hanging-node values
are interpolated through the gather operator, so the rendered field is
exactly the conforming FE function.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.mesh import IncompleteMesh
from ..fem.basis import local_node_offsets

__all__ = ["write_vtu"]

#: VTK cell types: quad (2D) and hexahedron (3D)
_VTK_CELL = {2: 9, 3: 12}
#: VTK corner ordering relative to our axis-0-fastest corner layout
_VTK_ORDER = {
    2: [0, 1, 3, 2],
    3: [0, 1, 3, 2, 4, 5, 7, 6],
}


def _fmt(arr: np.ndarray, per_line: int = 9) -> str:
    flat = np.asarray(arr).ravel()
    chunks = [
        " ".join(f"{v:.10g}" for v in flat[i : i + per_line])
        for i in range(0, len(flat), per_line)
    ]
    return "\n".join(chunks)


def write_vtu(
    mesh: IncompleteMesh,
    filename,
    point_data: dict[str, np.ndarray] | None = None,
    cell_data: dict[str, np.ndarray] | None = None,
) -> Path:
    """Write the mesh (and fields) as an ASCII .vtu file.

    ``point_data`` values are global nodal vectors (``n_nodes`` or
    ``(n_nodes, k)``); ``cell_data`` values are per-element vectors.
    """
    dim = mesh.dim
    if dim not in _VTK_CELL:
        raise ValueError("vtu export supports dim 2 and 3")
    p = mesh.p
    nc = 1 << dim  # corners per element
    # corner slots within the (p+1)^d local layout
    off = local_node_offsets(p, dim)
    corner_slot = np.flatnonzero(
        np.all((off == 0) | (off == p), axis=1)
    )
    # corner coordinates per element (duplicated points)
    a = mesh.leaves.anchors.astype(np.int64)
    s = mesh.leaves.sizes.astype(np.int64)
    X = (
        2 * p * a[:, None, :]
        + 2 * off[corner_slot][None, :, :] * s[:, None, None]
    ) * mesh.nodes.h_node
    n_elem = mesh.n_elem
    pts3 = np.zeros((n_elem * nc, 3))
    pts3[:, :dim] = X.reshape(-1, dim)

    order = _VTK_ORDER[dim]
    conn = (
        np.arange(n_elem)[:, None] * nc + np.array(order)[None, :]
    ).ravel()
    offsets = np.arange(1, n_elem + 1) * nc
    types = np.full(n_elem, _VTK_CELL[dim])

    # interpolate point data to the duplicated corner points
    pd_blocks = []
    if point_data:
        g = mesh.nodes.gather
        npe = mesh.npe
        for name, field in point_data.items():
            field = np.asarray(field, float)
            comps = field.reshape(mesh.n_nodes, -1)
            k = comps.shape[1]
            loc = np.stack(
                [
                    (g @ comps[:, j]).reshape(n_elem, npe)[:, corner_slot]
                    for j in range(k)
                ],
                axis=2,
            ).reshape(-1, k)
            pd_blocks.append((name, k, loc))

    cd_blocks = []
    if cell_data:
        for name, field in cell_data.items():
            field = np.asarray(field, float).reshape(n_elem, -1)
            cd_blocks.append((name, field.shape[1], field))

    out = []
    out.append('<?xml version="1.0"?>')
    out.append(
        '<VTKFile type="UnstructuredGrid" version="0.1" '
        'byte_order="LittleEndian">'
    )
    out.append("<UnstructuredGrid>")
    out.append(
        f'<Piece NumberOfPoints="{len(pts3)}" NumberOfCells="{n_elem}">'
    )
    out.append("<Points>")
    out.append('<DataArray type="Float64" NumberOfComponents="3" format="ascii">')
    out.append(_fmt(pts3))
    out.append("</DataArray></Points>")
    out.append("<Cells>")
    out.append('<DataArray type="Int64" Name="connectivity" format="ascii">')
    out.append(_fmt(conn))
    out.append("</DataArray>")
    out.append('<DataArray type="Int64" Name="offsets" format="ascii">')
    out.append(_fmt(offsets))
    out.append("</DataArray>")
    out.append('<DataArray type="UInt8" Name="types" format="ascii">')
    out.append(_fmt(types))
    out.append("</DataArray></Cells>")
    if pd_blocks:
        out.append("<PointData>")
        for name, k, loc in pd_blocks:
            out.append(
                f'<DataArray type="Float64" Name="{name}" '
                f'NumberOfComponents="{k}" format="ascii">'
            )
            out.append(_fmt(loc))
            out.append("</DataArray>")
        out.append("</PointData>")
    if cd_blocks:
        out.append("<CellData>")
        for name, k, field in cd_blocks:
            out.append(
                f'<DataArray type="Float64" Name="{name}" '
                f'NumberOfComponents="{k}" format="ascii">'
            )
            out.append(_fmt(field))
            out.append("</DataArray>")
        out.append("</CellData>")
    out.append("</Piece></UnstructuredGrid></VTKFile>")
    path = Path(filename)
    path.write_text("\n".join(out))
    return path
