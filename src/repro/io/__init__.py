"""I/O: VTK XML output for meshes and solution fields."""

from .vtu import write_vtu

__all__ = ["write_vtu"]
