"""repro: Scalable adaptive PDE solvers in arbitrary domains.

Reproduction of the SC'21 incomplete-octree framework: adaptive
tree-based mesh generation that *carves* arbitrary void regions from a
cubic domain, with traversal-based matrix-free finite-element
computation, 2:1 balancing, hanging-node handling via cancellation
nodes, simulated-MPI scaling studies, and the paper's full evaluation
harness (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    import numpy as np
    from repro import Domain, build_mesh
    from repro.geometry import SphereCarve
    from repro.fem import PoissonProblem

    domain = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    mesh = build_mesh(domain, base_level=3, boundary_level=6, p=1)
    u = PoissonProblem(mesh, f=1.0, dirichlet=0.0).solve()
"""

from .core.assembly import assemble
from .core.domain import Domain
from .core.matvec import MapBasedMatVec, traversal_matvec
from .core.mesh import IncompleteMesh, build_mesh, build_uniform_mesh, mesh_from_leaves
from .core.octant import OctantSet, max_level

__version__ = "1.0.0"

__all__ = [
    "Domain",
    "IncompleteMesh",
    "build_mesh",
    "build_uniform_mesh",
    "mesh_from_leaves",
    "OctantSet",
    "max_level",
    "MapBasedMatVec",
    "traversal_matvec",
    "assemble",
]
