"""Command-line entry points mirroring the paper's artifact (Appendix B.4).

The original artifact ships three executables::

    ibrun MVCChannel 10 12 1 log10_12.out      # channel MATVEC scaling
    ibrun MVCSphere   7 12 1 log7_12.out       # sphere MATVEC scaling
    ibrun signedDistance stlFile 4 14          # voxel signed distance

This module provides the equivalents on the simulated substrate::

    python -m repro mvc-channel 5 7 1 [--ranks 32] [--out log.txt]
    python -m repro mvc-sphere  4 7 2 [--ranks 32] [--out log.txt]
    python -m repro signed-distance [--shape blob|sphere] 3 6 [--out log.txt]

The paper's executable names work as aliases (``MVCChannel``,
``MVCSphere``, ``signedDistance``) and all positionals have defaults,
so ``python -m repro MVCChannel`` runs out of the box.

Each command prints (and optionally writes) the same timing/statistics
rows the paper's logs contain: per-phase MATVEC breakdown from the
measured partition + machine model, or per-level boundary-node
signed-distance errors.

With ``REPRO_TRACE=1`` every command additionally writes a
:mod:`repro.obs` run artifact (span tree + flat metrics) to
``--trace-out`` (default ``trace_<command>.json``); inspect it with
``python -m repro trace-report`` and compare two runs with
``python -m repro trace-diff``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from . import obs


def _emit(lines: list[str], out: str | None) -> None:
    text = "\n".join(lines)
    print(text)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")


def _mvc_common(domain, base, boundary, order, ranks, label):
    from .core.mesh import build_mesh
    from .kernels import resolve_backend_name
    from .parallel import (
        FRONTERA,
        SimComm,
        analyze_partition,
        distributed_matvec,
        model_matvec,
        partition_mesh,
        rank_statistics,
    )
    from .core.matvec import MapBasedMatVec, traversal_matvec

    t0 = time.perf_counter()
    mesh = build_mesh(domain, base, boundary, p=order)
    t_mesh = time.perf_counter() - t0
    lines = [
        f"# {label}: base={base} boundary={boundary} order={order} "
        f"ranks={ranks} backend={resolve_backend_name()}",
        f"mesh: {mesh.n_elem} elements, {mesh.n_nodes} DOFs, "
        f"levels {int(mesh.leaves.levels.min())}..{int(mesh.leaves.levels.max())}",
        f"mesh construction: {t_mesh:.3f} s (measured, this machine)",
    ]
    splits = partition_mesh(mesh, ranks, load_tol=0.1)
    layout = analyze_partition(mesh, splits)
    # execute one real distributed MATVEC and verify against serial
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    comm = SimComm(ranks)
    dist = distributed_matvec(mesh, layout, u, comm)
    serial = MapBasedMatVec(mesh)(u)
    ok = bool(np.allclose(dist, serial, atol=1e-9))
    lines.append(f"distributed MATVEC == serial: {ok}")
    # serial traversal matvec + assembly so the run artifact carries the
    # kernel-layer spans the CI perf gate diffs (matvec.*, assembly)
    from .core.assembly import assemble

    t0 = time.perf_counter()
    trav = traversal_matvec(mesh, u)
    t_trav = time.perf_counter() - t0
    ok_trav = bool(np.allclose(trav, serial, atol=1e-9))
    lines.append(
        f"traversal MATVEC == serial: {ok_trav} ({t_trav * 1e3:.2f} ms)"
    )
    t0 = time.perf_counter()
    A = assemble(mesh)
    t_asm = time.perf_counter() - t0
    lines.append(f"assembly: {int(A.nnz)} nnz ({t_asm * 1e3:.2f} ms)")
    lines.append(
        f"ghost exchange: {int(comm.counters.total_bytes())} B total, "
        f"max/rank {int(comm.counters.bytes_sent.max())} B"
    )
    stats = rank_statistics(mesh, layout)
    ph = model_matvec(stats, p=order, dim=mesh.dim, machine=FRONTERA)
    br = ph.breakdown()
    # publish the modelled phase breakdown as spans so the artifact
    # carries both the measured (matvec.rank subtree) and the modelled
    # FRONTERA numbers
    with obs.span("matvec.modelled", ranks=ranks):
        for phase_name, seconds in br.items():
            obs.record(f"matvec.{phase_name}", float(seconds))
    lines.append(
        "modelled MATVEC time: "
        f"{ph.time * 1e3:.3f} ms  (top-down {br['top_down'] * 1e3:.3f}, "
        f"leaf {br['leaf'] * 1e3:.3f}, bottom-up {br['bottom_up'] * 1e3:.3f}, "
        f"comm {br['comm'] * 1e3:.3f}, malloc {br['malloc'] * 1e3:.3f})"
    )
    lines.append(
        f"eta = ghost/owned: mean {layout.eta().mean():.4f}, "
        f"max {layout.eta().max():.4f}"
    )
    if not ok or not ok_trav:
        raise SystemExit("FATAL: distributed MATVEC mismatch")
    return lines


def cmd_mvc_channel(args) -> None:
    from .core.domain import Domain
    from .geometry import BoxRetain

    domain = Domain(
        BoxRetain([0, 0, 0], [16, 1, 1], domain=([0, 0, 0], [16, 16, 16])),
        scale=16.0,
    )
    lines = _mvc_common(
        domain, args.base_level, args.boundary_level, args.order,
        args.ranks, "MVCChannel (16x1x1 carved channel)",
    )
    _emit(lines, args.out)


def cmd_mvc_sphere(args) -> None:
    from .core.domain import Domain
    from .geometry import SphereCarve

    domain = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    lines = _mvc_common(
        domain, args.base_level, args.boundary_level, args.order,
        args.ranks, "MVCSphere (d=1 sphere carved from 10^3 cube)",
    )
    _emit(lines, args.out)


def cmd_signed_distance(args) -> None:
    from .core.domain import Domain
    from .core.mesh import build_mesh
    from .geometry import TriMeshCarve, dragon_blob, icosphere

    if args.shape == "blob":
        surf = dragon_blob((0.5, 0.5, 0.5), 0.28, subdivisions=3)
    else:
        surf = icosphere((0.5, 0.5, 0.5), 0.3, subdivisions=3)
    pred = TriMeshCarve(surf)
    domain = Domain(pred)
    lines = [
        f"# signedDistance: shape={args.shape} "
        f"levels {args.min_level}..{args.max_level}",
        f"surface: {len(surf.faces)} triangles, area {surf.area():.4f}, "
        f"volume {surf.volume():.4f}",
        f"{'level':>6} {'elements':>9} {'bnd nodes':>10} {'Linf sd':>12}",
    ]
    for lv in range(args.min_level, args.max_level + 1):
        mesh = build_mesh(domain, min(3, lv), lv, p=1)
        pts = mesh.node_coords()[mesh.nodes.carved_node]
        err = float(np.abs(surf.signed_distance(pts)).max()) if len(pts) else 0.0
        lines.append(f"{lv:>6} {mesh.n_elem:>9} {len(pts):>10} {err:>12.5e}")
    _emit(lines, args.out)


def _resilience_sphere(args, sched):
    from .core.domain import Domain
    from .fem.poisson import PoissonProblem
    from .geometry import SphereCarve
    from .resilience import resilient_poisson_solve

    domain = Domain(SphereCarve([0.5, 0.5, 0.5], 0.3))
    from .core.mesh import build_mesh

    mesh = build_mesh(domain, args.base_level, args.boundary_level, p=1)
    prob = PoissonProblem(mesh, f=1.0)
    kw = dict(ranks=args.ranks, ckpt_interval=args.ckpt_interval, rtol=1e-12)
    ref = resilient_poisson_solve(
        prob, ckpt_dir=f"{args.ckpt_dir}/ref", name="sphere_ref", **kw
    )
    res = resilient_poisson_solve(
        prob, ckpt_dir=f"{args.ckpt_dir}/faulted", name="sphere",
        fault_schedule=sched, **kw
    )
    diff = float(np.abs(res.x - ref.x).max())
    lines = [
        f"mesh: {mesh.n_elem} elements, {mesh.n_nodes} DOFs",
        f"failure-free: {ref.reason} in {ref.iterations} iterations "
        f"({ref.checkpoints_written} checkpoints)",
        f"faulted:      {res.reason} in {res.iterations} iterations on "
        f"{res.ranks_final}/{args.ranks} ranks",
    ]
    return lines, res, diff


def _resilience_channel(args, sched):
    from .core.domain import Domain
    from .core.mesh import build_uniform_mesh
    from .fem.navier_stokes import NavierStokesProblem
    from .geometry import BoxRetain
    from .resilience import ResilientNSDriver

    domain = Domain(
        BoxRetain([0, 0], [4, 1], domain=([0, 0], [4, 4])), scale=4.0
    )
    mesh = build_uniform_mesh(domain, args.boundary_level, p=1)
    pts = mesh.node_coords()

    def bc(p_):
        mask = np.zeros((len(p_), 2), bool)
        vals = np.zeros((len(p_), 2))
        wall = np.isclose(p_[:, 1], 0) | np.isclose(p_[:, 1], 1)
        inlet = np.isclose(p_[:, 0], 0)
        mask[wall] = True
        mask[inlet] = True
        vals[inlet, 0] = 4 * p_[inlet, 1] * (1 - p_[inlet, 1])
        return mask, vals

    outlet = np.isclose(pts[:, 0], 4.0)

    def make():
        return NavierStokesProblem(
            mesh, nu=0.05, velocity_bc=bc, pressure_pin=outlet, dt=0.2
        )

    kw = dict(ranks=args.ranks, ckpt_interval=args.ckpt_interval)
    ref = ResilientNSDriver(
        make(), ckpt_dir=f"{args.ckpt_dir}/ref", name="channel_ref", **kw
    ).run(args.steps)
    res = ResilientNSDriver(
        make(), ckpt_dir=f"{args.ckpt_dir}/faulted", name="channel",
        fault_schedule=sched, **kw
    ).run(args.steps)
    diff = float(
        max(
            np.abs(res.velocity - ref.velocity).max(),
            np.abs(res.pressure - ref.pressure).max(),
        )
    )
    lines = [
        f"mesh: {mesh.n_elem} elements, {mesh.n_nodes} DOFs",
        f"failure-free: {ref.steps} steps "
        f"({ref.checkpoints_written} checkpoints)",
        f"faulted:      {res.steps} steps on "
        f"{res.ranks_final}/{args.ranks} ranks",
    ]
    return lines, res, diff


def cmd_resilience_demo(args) -> None:
    """Run a solve twice — failure-free and with an injected rank crash —
    and report whether the self-healing driver reproduced the answer."""
    from .resilience import FaultSchedule

    if args.crash_at is None:
        args.crash_at = 17 if args.case == "sphere" else max(args.steps // 2, 1)
    sched = FaultSchedule(seed=args.seed).crash_rank(
        args.crash_rank, at_op=args.crash_at
    )
    lines = [
        f"# resilience-demo: case={args.case} ranks={args.ranks} "
        f"crash rank {args.crash_rank} at op {args.crash_at}",
    ]
    if args.case == "sphere":
        body, res, diff = _resilience_sphere(args, sched)
    else:
        body, res, diff = _resilience_channel(args, sched)
    lines += body
    for ev in res.recoveries:
        lines.append(f"recovery: {ev.describe()}")
    lines.append(f"max |faulted - failure-free| = {diff:.3e}")
    if not res.recoveries:
        raise SystemExit("FATAL: the scheduled crash never fired")
    if diff > 1e-12:
        raise SystemExit(f"FATAL: recovered answer drifted by {diff:.3e}")
    lines.append("recovered answer matches the failure-free run (<= 1e-12)")
    _emit(lines, args.out)


def cmd_ckpt_info(args) -> None:
    """Inspect a ckpt.v1 checkpoint file (integrity-checked on load)."""
    from .resilience import load_checkpoint

    ck = load_checkpoint(args.path)
    lines = [
        f"# {ck.path}",
        f"schema:      {ck.doc['schema']}",
        f"name:        {ck.name}",
        f"step:        {ck.step}   time: {ck.time}   dt: {ck.dt}",
        f"fingerprint: {ck.fingerprint}",
        f"sha256:      {ck.doc['sha256']}",
        f"mesh:        dim={ck.doc['mesh']['dim']} p={ck.doc['mesh']['p']} "
        f"curve={ck.doc['mesh']['curve']}",
    ]
    splits = ck.splits()
    if splits is not None:
        lines.append(
            f"splits:      {[int(s) for s in splits]} "
            f"({len(splits) - 1} ranks)"
        )
    for k, v in ck.vectors().items():
        lines.append(f"vector {k!r}: shape {v.shape} dtype {v.dtype}")
    for k, v in ck.scalars.items():
        lines.append(f"scalar {k!r}: {v}")
    _emit(lines, args.out)


def cmd_serve_demo(args) -> None:
    """Push a deterministic mixed workload through the serving layer."""
    import json

    from .serve import SolverService, demo_workload

    recorder = None
    if args.events:
        from .obs.events import EventLog

        recorder = EventLog()
    svc = SolverService(
        cache_bytes=args.cache_mb << 20,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        recorder=recorder,
    )
    reqs = demo_workload(args.requests, seed=args.seed,
                         base_level=args.base_level,
                         boundary_level=args.boundary_level)
    for r in reqs:
        svc.submit(r)
    svc.drain()
    st = svc.stats()
    lines = [
        f"# serve-demo: requests={args.requests} seed={args.seed} "
        f"max_batch={args.max_batch} cache={args.cache_mb} MiB",
        f"responses: {st['responses']}  status: "
        + " ".join(f"{k}={v}" for k, v in st["status"].items()),
        f"batches: {st['batches']}  mean batch size: {st['mean_batch_size']}",
        f"cache: hits={st['cache']['hits']} misses={st['cache']['misses']} "
        f"evictions={st['cache']['evictions']} "
        f"bytes={st['cache']['bytes']} / {st['cache']['byte_budget']}",
        f"virtual clock: {st['clock_ticks']} ticks",
        "latency (virtual ticks): "
        + " ".join(
            f"{k}={st['latency_ticks'][k]:.0f}"
            for k in ("min", "p50", "p95", "p99", "max")
        ),
        f"stream digest: {st['stream_digest']}",
    ]
    if recorder is not None:
        from .obs.events import save_events

        save_events(args.events, recorder, name="serve-demo")
        lines.append(f"events: {len(recorder)} written to {args.events}")
        lines.append(f"event digest: {recorder.digest}")
    if args.json:
        doc = {
            "schema": "repro.serve/demo.v1",
            "config": {
                "requests": args.requests, "seed": args.seed,
                "max_batch": args.max_batch, "max_pending": args.max_pending,
                "cache_mb": args.cache_mb,
                "base_level": args.base_level,
                "boundary_level": args.boundary_level,
            },
            "stats": st,
            "responses": [r.to_doc() for r in svc.responses],
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        lines.append(f"json report written to {args.json}")
    _emit(lines, args.out)


def _amr_lshape_exact(pts):
    """r^{2/3} sin(2θ/3) around the re-entrant corner at (0.5, 0.5)."""
    x = pts[:, 0] - 0.5
    y = pts[:, 1] - 0.5
    r = np.hypot(x, y)
    theta = np.mod(np.arctan2(y, x) - np.pi / 2, 2 * np.pi)
    return np.where(r > 0, r ** (2.0 / 3.0), 0.0) * np.sin(2.0 * theta / 3.0)


def cmd_amr_demo(args) -> None:
    """Run the estimator-driven AMR loop on a canonical problem."""
    from .amr import amr_solve
    from .core.domain import Domain
    from .geometry import BoxCarve, SphereCarve

    if args.case == "lshape":
        domain = Domain(BoxCarve([0.5, 0.5], [1.0, 1.0]), dim=2, scale=1.0)
        f, g, exact = 0.0, _amr_lshape_exact, _amr_lshape_exact
    else:  # "source": sharp off-dyadic Gaussian — exercises the
        # incremental plan-delta path (refinement stays SFC-local)
        domain = Domain(SphereCarve([0.62, 0.38], 0.2), dim=2, scale=1.0)

        def f(pts):
            d2 = ((pts - np.array([0.3, 0.7])) ** 2).sum(axis=1)
            return 100.0 * np.exp(-d2 / (2 * 0.02**2))

        g, exact = 0.0, None
    res = amr_solve(
        domain, f, g,
        base_level=args.base_level,
        boundary_level=args.boundary_level or args.base_level,
        max_cycles=args.cycles, theta=args.theta, exact=exact,
        check_equivalence=not args.no_equivalence_check,
    )
    lines = [
        f"# amr-demo: case={args.case} cycles={args.cycles} "
        f"theta={args.theta} base={args.base_level}",
        "cycle  n_elem   n_dofs   eta        churn  incr"
        + ("  l2_error" if exact else ""),
    ]
    for rec in res.history:
        row = (
            f"{rec['cycle']:>5}  {rec['n_elem']:>6}  {rec['n_dofs']:>7}  "
            f"{rec['eta']:.3e}  {rec['churn']:.3f}  {str(rec['incremental']):<5}"
        )
        if exact:
            row += f" {rec['error_l2']:.3e}"
        lines.append(row)
    inc_steps = sum(1 for r in res.history if r["incremental"])
    lines.append(
        f"incremental steps: {inc_steps}/{max(len(res.history) - 1, 0)} "
        f"(equivalence gate {'ON' if not args.no_equivalence_check else 'off'})"
    )
    lines.append(f"final: {res.mesh.n_elem} elements, {res.n_dofs} DOFs, "
                 f"eta={res.total_eta:.3e}")
    lines.append(f"digest: {res.digest()}")
    _emit(lines, args.out)


def cmd_serve_stats(args) -> None:
    """Render a serve-demo JSON report."""
    import json

    with open(args.report) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "repro.serve/demo.v1":
        raise SystemExit(
            f"{args.report}: not a repro.serve/demo.v1 report "
            f"(schema={doc.get('schema')!r})"
        )
    cfg, st = doc["config"], doc["stats"]
    lines = [
        f"# serve report: {args.report}",
        f"config: requests={cfg['requests']} seed={cfg['seed']} "
        f"max_batch={cfg['max_batch']} cache={cfg['cache_mb']} MiB",
        f"responses: {st['responses']}  status: "
        + " ".join(f"{k}={v}" for k, v in st["status"].items()),
        f"batches: {st['batches']}  mean batch size: {st['mean_batch_size']}",
        f"cache: hits={st['cache']['hits']} misses={st['cache']['misses']} "
        f"evictions={st['cache']['evictions']}",
        "latency (virtual ticks): "
        + " ".join(
            f"{k}={st['latency_ticks'][k]:.0f}"
            for k in ("min", "p50", "p95", "p99", "max")
        ),
        f"stream digest: {st['stream_digest']}",
    ]
    by_pde: dict[str, int] = {}
    for r in doc["responses"]:
        by_pde[r["pde"]] = by_pde.get(r["pde"], 0) + 1
    lines.append(
        "by pde: " + " ".join(f"{k}={v}" for k, v in sorted(by_pde.items()))
    )
    _emit(lines, args.out)


def cmd_fleet_demo(args) -> None:
    """Run a seeded zipf/bursty workload through the sharded fleet."""
    import json

    from .fleet import FleetService, synthetic_workload

    kill = None
    if args.kill:
        tick, _, sid = args.kill.partition(":")
        if not sid:
            raise SystemExit("--kill wants TICK:SHARD_ID, e.g. 2000:shard1")
        kill = (int(tick), sid)
    recorder = None
    if args.events:
        from .obs.events import EventLog

        recorder = EventLog()
    fleet = FleetService(
        args.shards, cache_bytes=args.cache_mb << 20,
        max_batch=args.max_batch, max_pending=args.max_pending,
        steal_threshold=args.steal_threshold,
        steal_latency=args.steal_latency,
        stealing=not args.no_steal, ckpt_dir=args.ckpt_dir,
        ckpt_interval=args.ckpt_interval, recorder=recorder,
    )
    fleet.run(
        synthetic_workload(args.requests, seed=args.seed,
                           mean_gap=args.mean_gap, burst_gap=args.burst_gap),
        kill=kill,
    )
    st = fleet.stats()
    lines = [
        f"# fleet-demo: shards={args.shards} requests={args.requests} "
        f"seed={args.seed} stealing={not args.no_steal}"
        + (f" kill={args.kill}" if args.kill else ""),
        f"responses: {st['responses']}  status: "
        + " ".join(f"{k}={v}" for k, v in st["status"].items()),
        "routed: "
        + " ".join(f"{k}={v}" for k, v in sorted(st["routed"].items())),
        f"steals: {st['steals']} ({st['stolen_items']} items)  "
        f"makespan: {st['makespan_ticks']} virtual ticks",
        "latency (virtual ticks): "
        + " ".join(
            f"{k}={st['latency_ticks'][k]:.0f}"
            for k in ("min", "p50", "p95", "p99", "max")
        ),
        f"l2: hits={st['l2']['hits']} misses={st['l2']['misses']} "
        f"entries={st['l2']['entries']} promoted={st['l2']['promotions']}",
    ]
    for line in st["failovers"]:
        lines.append(f"failover: {line}")
    lines += [
        f"stream digest: {st['stream_digest']}",
        f"fleet digest:  {st['fleet_digest']}",
    ]
    if recorder is not None:
        from .obs.events import save_events

        save_events(args.events, recorder, name="fleet-demo")
        lines.append(f"events: {len(recorder)} written to {args.events}")
        lines.append(f"event digest: {recorder.digest}")
    if args.json:
        doc = {
            "schema": "repro.fleet/demo.v1",
            "config": {
                "shards": args.shards, "requests": args.requests,
                "seed": args.seed, "cache_mb": args.cache_mb,
                "max_batch": args.max_batch,
                "max_pending": args.max_pending,
                "steal_threshold": args.steal_threshold,
                "steal_latency": args.steal_latency,
                "stealing": not args.no_steal,
                "mean_gap": args.mean_gap, "burst_gap": args.burst_gap,
                "kill": args.kill,
            },
            "stats": st,
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        lines.append(f"json report written to {args.json}")
    _emit(lines, args.out)


def cmd_chaos_demo(args) -> None:
    """Run a seeded fault schedule against the fully-defended fleet —
    or sweep the chaos invariants (``--check``)."""
    from .chaos import run_sweep

    if args.check:
        out = run_sweep(seeds=tuple(range(args.seeds)), strict=False,
                        log=print)
        lines = [
            f"# chaos-check: {out['passed']}/{out['schedules']} "
            f"schedules passed"
        ]
        for breach in out["breaches"]:
            lines.append(f"BREACH: {breach}")
        _emit(lines, args.out)
        if out["breaches"] and args.strict:
            raise SystemExit(1)
        return

    from .chaos import ChaosSchedule
    from .fleet import FleetService, synthetic_workload
    from .fleet.defense import BreakerPolicy, HedgePolicy
    from .obs.events import EventLog
    from .serve.scheduler import BrownoutPolicy

    recorder = EventLog()
    shard_ids = [f"shard{i}" for i in range(args.shards)]
    sched = ChaosSchedule.random(
        args.seed, shard_ids, args.horizon,
        n_slow=1, n_stall=1, n_crash=args.crashes, n_corrupt=1,
        n_handoff=0 if args.no_steal else 2,
        slow_factor=args.slow_factor,
    )
    fleet = FleetService(
        args.shards, cache_bytes=args.cache_mb << 20,
        steal_threshold=4, steal_latency=100,
        stealing=not args.no_steal, recorder=recorder, chaos=sched,
        hedge=HedgePolicy(), breaker=BreakerPolicy(),
        brownout=BrownoutPolicy(),
    )
    fleet.run(synthetic_workload(args.requests, seed=args.seed))
    st = fleet.stats()
    lines = [
        f"# chaos-demo: shards={args.shards} requests={args.requests} "
        f"seed={args.seed} stealing={not args.no_steal}",
    ]
    for fault in sched.describe():
        lines.append(f"fault: {fault}")
    lines.append(
        f"responses: {st['responses']}  status: "
        + " ".join(f"{k}={v}" for k, v in st["status"].items())
    )
    d = st.get("defense", {})
    lines.append(
        f"defense: hedges={d.get('hedges', 0)} "
        f"hedge_wins={d.get('hedge_wins', 0)} "
        f"breaker_opens={d.get('breaker_opens', 0)}"
    )
    from .chaos import CHAOS_KINDS

    kinds: dict[str, int] = {}
    for ev in recorder.events:
        if ev.kind in CHAOS_KINDS:
            kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
    lines.append(
        "chaos events: "
        + (" ".join(f"{k}={v}" for k, v in sorted(kinds.items())) or "none")
    )
    for line in st["failovers"]:
        lines.append(f"failover: {line}")
    if recorder is not None and args.events:
        from .obs.events import save_events

        save_events(args.events, recorder, name="chaos-demo")
        lines.append(f"events: {len(recorder)} written to {args.events}")
    lines += [
        f"event digest:  {recorder.digest}",
        f"stream digest: {st['stream_digest']}",
        f"fleet digest:  {st['fleet_digest']}",
    ]
    _emit(lines, args.out)


def cmd_fleet_stats(args) -> None:
    """Render a fleet-demo JSON report (per-shard + cache pressure)."""
    import json

    with open(args.report) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "repro.fleet/demo.v1":
        raise SystemExit(
            f"{args.report}: not a repro.fleet/demo.v1 report "
            f"(schema={doc.get('schema')!r})"
        )
    cfg, st = doc["config"], doc["stats"]
    lines = [
        f"# fleet report: {args.report}",
        f"config: shards={cfg['shards']} requests={cfg['requests']} "
        f"seed={cfg['seed']} stealing={cfg['stealing']}"
        + (f" kill={cfg['kill']}" if cfg.get("kill") else ""),
        f"responses: {st['responses']}  makespan: {st['makespan_ticks']} "
        f"ticks  steals: {st['steals']} ({st['stolen_items']} items)",
        "latency (virtual ticks): "
        + " ".join(
            f"{k}={st['latency_ticks'][k]:.0f}"
            for k in ("min", "p50", "p95", "p99", "max")
        ),
        f"{'shard':>8} {'routed':>7} {'resp':>6} {'batches':>8} "
        f"{'l2 fetch':>9} {'cache bytes':>12} {'cache ent':>10} "
        f"{'hit rate':>9}",
    ]
    for sid, sh in sorted(st["shards"].items()):
        cache = sh["cache"]
        lookups = cache["hits"] + cache["misses"]
        rate = cache["hits"] / lookups if lookups else 0.0
        lines.append(
            f"{sid:>8} {st['routed'].get(sid, 0):>7} {sh['responses']:>6} "
            f"{sh['batches']:>8} {sh.get('l2_fetches', 0):>9} "
            f"{cache['bytes']:>12} {cache['entries']:>10} {rate:>9.2f}"
        )
    l2 = st["l2"]
    lines.append(
        f"shared l2: entries={l2['entries']} bytes={l2['bytes']} "
        f"hits={l2['hits']} misses={l2['misses']} "
        f"promoted={l2['promotions']} demoted={l2['demotions']} "
        f"pinned={l2['pinned']}"
    )
    for line in st["failovers"]:
        lines.append(f"failover: {line}")
    lines += [
        f"stream digest: {st['stream_digest']}",
        f"fleet digest:  {st['fleet_digest']}",
    ]
    _emit(lines, args.out)


def cmd_trace_report(args) -> None:
    from .obs.report import load_artifact, render_report, to_chrome_trace

    doc = load_artifact(args.artifact)
    print(render_report(doc))
    if args.chrome:
        import json

        with open(args.chrome, "w") as fh:
            json.dump(to_chrome_trace(doc), fh)
        print(f"chrome trace written to {args.chrome}")


def cmd_trace_diff(args) -> None:
    import json

    from .obs.regress import diff_artifacts, diff_doc, render_diff
    from .obs.report import load_artifact

    deltas = diff_artifacts(
        load_artifact(args.base), load_artifact(args.new), tol=args.tol
    )
    print(render_diff(deltas, args.tol))
    doc = diff_doc(deltas, args.tol)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        print(f"json diff written to {args.json}")
    if doc["flagged"]:
        raise SystemExit(1)


def cmd_request_trace(args) -> None:
    """Reconstruct the causal timeline of one request from an event
    stream (``--events`` export of serve-demo / fleet-demo)."""
    from .obs.events import load_events
    from .obs.reqtrace import reconstruct, render_timeline, timelines

    log = load_events(args.events)
    if args.list or not args.rid:
        lines = [
            f"{tl.rid} {tl.status:<8} pde={tl.pde:<9} "
            f"latency={tl.latency} shards={','.join(tl.shards) or '-'}"
            for tl in timelines(log)
        ]
        if not lines:
            raise SystemExit(f"{args.events}: no completed requests")
        _emit(lines, args.out)
        return
    try:
        tl = reconstruct(log, args.rid)
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    _emit(render_timeline(tl).splitlines(), args.out)


def cmd_fleet_health(args) -> None:
    """Evaluate SLOs over an event stream into a fleet health report."""
    import json

    from .obs.events import load_events
    from .obs.reqtrace import events_to_chrome
    from .obs.slo import SLOPolicy, fleet_health, render_health

    log = load_events(args.events)
    stage_p95 = {}
    for spec in args.stage_p95 or []:
        stage, _, ceiling = spec.partition("=")
        if not ceiling:
            raise SystemExit("--stage-p95 wants STAGE=TICKS, e.g. queue=4000")
        stage_p95[stage] = int(ceiling)
    policy = SLOPolicy(
        availability_objective=args.availability,
        deadline_objective=args.deadline_objective,
        default_deadline=args.default_deadline,
        stage_p95=stage_p95,
        window=args.window,
        burn_alert=args.burn_alert,
    )
    doc = fleet_health(log, policy, name=str(args.events))
    _emit(render_health(doc).splitlines(), args.out)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        print(f"health snapshot written to {args.json}")
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(events_to_chrome(log), fh)
        print(f"chrome trace written to {args.chrome}")
    if args.strict and not doc["healthy"]:
        raise SystemExit(1)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Incomplete-octree PDE framework (SC'21 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add_mvc(name, alias, func, helptext):
        s = sub.add_parser(name, aliases=[alias], help=helptext)
        s.add_argument("base_level", type=int, nargs="?", default=4)
        s.add_argument("boundary_level", type=int, nargs="?", default=6)
        s.add_argument("order", type=int, nargs="?", choices=(1, 2), default=1)
        s.add_argument("--ranks", type=int, default=16)
        s.add_argument("--out", default=None)
        s.add_argument("--trace-out", default=None,
                       help="run-artifact path (default trace_<command>.json)")
        s.add_argument("--backend", default=None,
                       help="kernel backend (numpy, einsum, numba; "
                            "default: $REPRO_KERNELS_BACKEND or numpy)")
        s.set_defaults(func=func, trace_name=name)

    add_mvc("mvc-channel", "MVCChannel", cmd_mvc_channel,
            "channel MATVEC scaling run")
    add_mvc("mvc-sphere", "MVCSphere", cmd_mvc_sphere,
            "sphere MATVEC scaling run")
    s = sub.add_parser(
        "signed-distance", aliases=["signedDistance"],
        help="voxel signed-distance sweep",
    )
    s.add_argument("min_level", type=int, nargs="?", default=4)
    s.add_argument("max_level", type=int, nargs="?", default=6)
    s.add_argument("--shape", choices=("blob", "sphere"), default="blob")
    s.add_argument("--out", default=None)
    s.add_argument("--trace-out", default=None,
                   help="run-artifact path (default trace_<command>.json)")
    s.set_defaults(func=cmd_signed_distance, trace_name="signed-distance")

    s = sub.add_parser(
        "resilience-demo",
        help="inject a rank crash mid-solve and verify self-healing recovery",
    )
    s.add_argument("--case", choices=("sphere", "channel"), default="sphere")
    s.add_argument("--base-level", type=int, default=2)
    s.add_argument("--boundary-level", type=int, default=4)
    s.add_argument("--ranks", type=int, default=6)
    s.add_argument("--crash-rank", type=int, default=2)
    s.add_argument("--crash-at", type=int, default=None,
                   help="collective op index at which the rank dies "
                        "(default: 17 for sphere, steps//2 for channel)")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--steps", type=int, default=6,
                   help="time steps (channel case)")
    s.add_argument("--ckpt-interval", type=int, default=5)
    s.add_argument("--ckpt-dir", default="ckpt_demo")
    s.add_argument("--out", default=None)
    s.add_argument("--trace-out", default=None,
                   help="run-artifact path (default trace_<command>.json)")
    s.set_defaults(func=cmd_resilience_demo, trace_name="resilience-demo")

    s = sub.add_parser("ckpt-info",
                       help="inspect an integrity-checked ckpt.v1 file")
    s.add_argument("path")
    s.add_argument("--out", default=None)
    s.set_defaults(func=cmd_ckpt_info, trace_name=None)

    s = sub.add_parser(
        "serve-demo",
        help="run a deterministic mixed workload through repro.serve",
    )
    s.add_argument("--requests", type=int, default=30)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--base-level", type=int, default=2)
    s.add_argument("--boundary-level", type=int, default=3)
    s.add_argument("--max-batch", type=int, default=8)
    s.add_argument("--max-pending", type=int, default=128)
    s.add_argument("--cache-mb", type=int, default=256,
                   help="artifact-cache byte budget in MiB")
    s.add_argument("--json", default=None,
                   help="write a repro.serve/demo.v1 JSON report here")
    s.add_argument("--events", default=None,
                   help="record the flight-recorder event stream "
                        "(repro.obs/events.v1) to this path")
    s.add_argument("--out", default=None)
    s.add_argument("--trace-out", default=None,
                   help="run-artifact path (default trace_<command>.json)")
    s.add_argument("--backend", default=None,
                   help="kernel backend for all solves (numpy, einsum, "
                        "numba; default: $REPRO_KERNELS_BACKEND or numpy)")
    s.set_defaults(func=cmd_serve_demo, trace_name="serve-demo")

    s = sub.add_parser(
        "amr-demo",
        help="estimator-driven adaptive refinement loop "
             "(incremental operator-plan deltas + equivalence gate)",
    )
    s.add_argument("--case", choices=("lshape", "source"), default="lshape")
    s.add_argument("--cycles", type=int, default=6)
    s.add_argument("--theta", type=float, default=0.5)
    s.add_argument("--base-level", type=int, default=3)
    s.add_argument("--boundary-level", type=int, default=None)
    s.add_argument("--no-equivalence-check", action="store_true",
                   help="skip the incremental-vs-full bit-identity gate")
    s.add_argument("--out", default=None)
    s.add_argument("--trace-out", default=None,
                   help="run-artifact path (default trace_<command>.json)")
    s.set_defaults(func=cmd_amr_demo, trace_name="amr-demo")

    s = sub.add_parser("serve-stats",
                       help="render a serve-demo JSON report")
    s.add_argument("report")
    s.add_argument("--out", default=None)
    s.set_defaults(func=cmd_serve_stats, trace_name=None)

    s = sub.add_parser(
        "fleet-demo",
        help="run a seeded zipf/bursty workload through the sharded fleet",
    )
    s.add_argument("--shards", type=int, default=4)
    s.add_argument("--requests", type=int, default=60)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--mean-gap", type=int, default=120,
                   help="mean interarrival gap in virtual ticks (quiet state)")
    s.add_argument("--burst-gap", type=int, default=15,
                   help="mean interarrival gap during bursts")
    s.add_argument("--max-batch", type=int, default=8)
    s.add_argument("--max-pending", type=int, default=256)
    s.add_argument("--cache-mb", type=int, default=8,
                   help="per-shard L1 byte budget in MiB")
    s.add_argument("--steal-threshold", type=int, default=4)
    s.add_argument("--steal-latency", type=int, default=100)
    s.add_argument("--no-steal", action="store_true",
                   help="disable cross-shard work stealing")
    s.add_argument("--kill", default=None, metavar="TICK:SHARD_ID",
                   help="kill a shard mid-run and fail over, e.g. 2000:shard1")
    s.add_argument("--ckpt-dir", default=None,
                   help="directory for sealed shard state checkpoints "
                        "(default: in-memory)")
    s.add_argument("--ckpt-interval", type=int, default=6)
    s.add_argument("--json", default=None,
                   help="write a repro.fleet/demo.v1 JSON report here")
    s.add_argument("--events", default=None,
                   help="record the flight-recorder event stream "
                        "(repro.obs/events.v1) to this path")
    s.add_argument("--out", default=None)
    s.add_argument("--trace-out", default=None,
                   help="run-artifact path (default trace_<command>.json)")
    s.add_argument("--backend", default=None,
                   help="kernel backend for all solves (numpy, einsum, "
                        "numba; default: $REPRO_KERNELS_BACKEND or numpy)")
    s.set_defaults(func=cmd_fleet_demo, trace_name="fleet-demo")

    s = sub.add_parser(
        "chaos-demo",
        help="inject a seeded fault schedule into the defended fleet, "
             "or sweep the chaos invariants (--check)",
    )
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--shards", type=int, default=4)
    s.add_argument("--requests", type=int, default=40)
    s.add_argument("--horizon", type=int, default=8000,
                   help="virtual-tick window fault times are drawn in")
    s.add_argument("--slow-factor", type=int, default=10,
                   help="straggler slowdown multiplier")
    s.add_argument("--crashes", type=int, default=1,
                   help="number of shard crashes to schedule")
    s.add_argument("--no-steal", action="store_true",
                   help="disable cross-shard work stealing "
                        "(also disables handoff faults)")
    s.add_argument("--cache-mb", type=int, default=8,
                   help="per-shard L1 byte budget in MiB")
    s.add_argument("--check", action="store_true",
                   help="run the chaos invariant sweep instead of a demo")
    s.add_argument("--seeds", type=int, default=8,
                   help="isolation-band seeds for --check (default 8)")
    s.add_argument("--strict", action="store_true",
                   help="with --check: exit 1 on any invariant breach")
    s.add_argument("--events", default=None,
                   help="record the flight-recorder event stream "
                        "(repro.obs/events.v1) to this path")
    s.add_argument("--out", default=None)
    s.set_defaults(func=cmd_chaos_demo, trace_name=None)

    s = sub.add_parser("fleet-stats",
                       help="render a fleet-demo JSON report")
    s.add_argument("report")
    s.add_argument("--out", default=None)
    s.set_defaults(func=cmd_fleet_stats, trace_name=None)

    s = sub.add_parser("trace-report", help="render a repro.obs run artifact")
    s.add_argument("artifact")
    s.add_argument("--chrome", default=None,
                   help="also write a Chrome-trace timeline to this path")
    s.set_defaults(func=cmd_trace_report, trace_name=None)

    s = sub.add_parser("trace-diff",
                       help="per-span regression diff of two artifacts")
    s.add_argument("base")
    s.add_argument("new")
    s.add_argument("--tol", type=float, default=0.25,
                   help="relative slowdown tolerance (default 0.25)")
    s.add_argument("--json", default=None,
                   help="also write a machine-readable "
                        "repro.obs/trace_diff.v1 document here")
    s.set_defaults(func=cmd_trace_diff, trace_name=None)

    s = sub.add_parser(
        "request-trace",
        help="reconstruct one request's causal timeline from an "
             "event stream (--events export)",
    )
    s.add_argument("events", help="repro.obs/events.v1 stream path")
    s.add_argument("rid", nargs="?", default=None,
                   help="request id (unique prefix accepted); omit to list")
    s.add_argument("--list", action="store_true",
                   help="list completed requests, one scriptable row each")
    s.add_argument("--out", default=None)
    s.set_defaults(func=cmd_request_trace, trace_name=None)

    s = sub.add_parser(
        "fleet-health",
        help="deterministic SLO evaluation over an event stream",
    )
    s.add_argument("events", help="repro.obs/events.v1 stream path")
    s.add_argument("--availability", type=float, default=0.95,
                   help="availability objective (default 0.95)")
    s.add_argument("--deadline-objective", type=float, default=0.95,
                   help="deadline-hit-rate objective (default 0.95)")
    s.add_argument("--default-deadline", type=int, default=None,
                   help="deadline (ticks) applied to requests carrying none")
    s.add_argument("--stage-p95", action="append", metavar="STAGE=TICKS",
                   help="per-stage p95 ceiling, e.g. --stage-p95 queue=4000 "
                        "(repeatable)")
    s.add_argument("--window", type=int, default=5000,
                   help="burn-rate window width in virtual ticks")
    s.add_argument("--burn-alert", type=float, default=2.0,
                   help="alert when a window burns this multiple of budget")
    s.add_argument("--json", default=None,
                   help="write the repro.obs/health.v1 snapshot here")
    s.add_argument("--chrome", default=None,
                   help="write a per-shard-track Chrome trace of the "
                        "event stream here")
    s.add_argument("--strict", action="store_true",
                   help="exit 1 when the fleet is not healthy")
    s.add_argument("--out", default=None)
    s.set_defaults(func=cmd_fleet_health, trace_name=None)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        from .kernels import UnknownBackend, set_default_backend

        try:
            set_default_backend(args.backend)
        except UnknownBackend as exc:
            raise SystemExit(f"--backend: {exc}") from None
    tracing = obs.is_enabled() and getattr(args, "trace_name", None)
    if tracing:
        obs.reset()
    args.func(args)
    if tracing:
        path = getattr(args, "trace_out", None) or f"trace_{args.trace_name}.json"
        obs.write_artifact(path, args.trace_name)
        print(f"trace artifact written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
