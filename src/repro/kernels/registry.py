"""Backend registry for the hot-path kernel layer.

Every numerical hot loop in the stack (slot gather/scatter, batched
elemental applies, the flat traversal MATVEC, global assembly, Krylov
axpy/dot) is reachable through the :mod:`repro.kernels.api` facade,
which dispatches to one of the *backends* registered here:

``numpy``
    the default; bit-identical to the historical inline code paths.
``einsum``
    level-batched identity-block applies through ``np.einsum`` and a
    fully flat (non-recursive) traversal MATVEC.
``numba``
    jitted CSR/slot loops; registered as *unavailable* when numba is
    not installed, so selecting it raises a typed error instead of an
    ImportError deep inside a solve.

Selection precedence (highest wins):

1. an explicit ``backend=`` argument to a facade call,
2. the innermost active :func:`use_backend` context (per-request
   overrides in :mod:`repro.serve` use this),
3. the process default set by :func:`set_default_backend` (the
   ``--backend`` CLI flag),
4. the ``REPRO_KERNELS_BACKEND`` environment variable (read at
   resolution time, not import time),
5. ``"numpy"``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "UnknownBackend",
    "BackendUnavailable",
    "register_backend",
    "backend_names",
    "available_backends",
    "resolve_backend_name",
    "get_backend",
    "set_default_backend",
    "default_backend",
    "use_backend",
]

ENV_VAR = "REPRO_KERNELS_BACKEND"
DEFAULT_BACKEND = "numpy"


class UnknownBackend(KeyError):
    """Raised when a backend name is not in the registry."""

    def __init__(self, name: str, known: tuple[str, ...]):
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:  # KeyError.__str__ would repr() the args
        return (
            f"unknown kernel backend {self.name!r}; "
            f"registered backends: {', '.join(self.known)}"
        )


class BackendUnavailable(RuntimeError):
    """Raised when a registered backend cannot run on this host
    (e.g. ``numba`` selected but numba is not installed)."""


_BACKENDS: dict[str, object] = {}
_DEFAULT: str | None = None
_LOCAL = threading.local()  # per-thread stack of use_backend() overrides
_LOCK = threading.Lock()


def register_backend(name: str, backend, *, replace: bool = False) -> None:
    """Register a backend instance under ``name``.

    ``backend`` must expose ``name``, ``available`` (bool) and the op
    methods the facade calls (see :class:`~repro.kernels.numpy_backend.
    NumpyKernels`, the reference implementation all others subclass).
    """
    with _LOCK:
        if name in _BACKENDS and not replace:
            raise ValueError(f"backend {name!r} already registered")
        _BACKENDS[name] = backend


def backend_names() -> tuple[str, ...]:
    """Sorted names of all registered backends (available or not)."""
    return tuple(sorted(_BACKENDS))


def available_backends() -> dict[str, bool]:
    """``{name: available}`` for every registered backend."""
    return {n: bool(_BACKENDS[n].available) for n in backend_names()}


def _override_stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def resolve_backend_name(name: str | None = None) -> str:
    """Apply the selection precedence and return a *registered* name.

    Raises :class:`UnknownBackend` for names (from any source,
    including the environment variable) that are not registered.
    """
    if name is None:
        stack = _override_stack()
        if stack:
            name = stack[-1]
        elif _DEFAULT is not None:
            name = _DEFAULT
        else:
            name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if name not in _BACKENDS:
        raise UnknownBackend(name, backend_names())
    return name


def get_backend(name: str | None = None):
    """The backend instance the next facade call would dispatch to.

    Raises :class:`UnknownBackend` for unregistered names and
    :class:`BackendUnavailable` for registered-but-unusable ones.
    """
    resolved = resolve_backend_name(name)
    be = _BACKENDS[resolved]
    if not be.available:
        reason = getattr(be, "unavailable_reason", "not available on this host")
        raise BackendUnavailable(f"kernel backend {resolved!r}: {reason}")
    return be


def set_default_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Validates eagerly so a bad ``--backend`` flag fails at startup, not
    mid-solve.
    """
    global _DEFAULT
    if name is not None:
        get_backend(name)  # raises UnknownBackend / BackendUnavailable
    _DEFAULT = name


def default_backend() -> str | None:
    """The process-wide default set by :func:`set_default_backend`."""
    return _DEFAULT


@contextmanager
def use_backend(name: str | None):
    """Scoped backend override; ``None`` is a no-op passthrough.

    Nested contexts stack; the innermost wins.  Used by the serving
    layer to honour per-request backend overrides without touching the
    process default.
    """
    if name is None:
        yield
        return
    get_backend(name)  # validate before entering
    stack = _override_stack()
    stack.append(name)
    try:
        yield
    finally:
        stack.pop()
