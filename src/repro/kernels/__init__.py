"""repro.kernels — swappable multi-backend kernel layer.

The hot numerical loops of the stack (gather/scatter, batched elemental
applies, the traversal MATVEC, assembly, Krylov axpy/dot) execute
through the :mod:`~repro.kernels.api` facade, dispatching to a
registered backend:

* ``numpy`` (default) — bit-identical to the historical inline paths;
* ``einsum`` — level-batched identity-block applies + flat traversal;
* ``numba`` — jitted slot/CSR loops, gracefully unavailable when
  numba is not installed.

Select a backend with the ``REPRO_KERNELS_BACKEND`` environment
variable, the ``--backend`` CLI flag (:func:`set_default_backend`), a
scoped :func:`use_backend` context, or per-request via
``SolveRequest.backend`` in :mod:`repro.serve`.  Every facade call
publishes ``kernels.{calls,flops,bytes,seconds}`` counters to
:mod:`repro.obs` when tracing is on, which
:func:`repro.analysis.roofline.measured_kernel_points` converts into
measured fraction-of-peak per kernel per backend.
"""

from . import api
from .einsum_backend import EinsumKernels
from .numba_backend import NUMBA_AVAILABLE, NumbaKernels
from .numpy_backend import NumpyKernels
from .registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendUnavailable,
    UnknownBackend,
    available_backends,
    backend_names,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)

__all__ = [
    "api",
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "NUMBA_AVAILABLE",
    "UnknownBackend",
    "BackendUnavailable",
    "NumpyKernels",
    "EinsumKernels",
    "NumbaKernels",
    "register_backend",
    "backend_names",
    "available_backends",
    "resolve_backend_name",
    "get_backend",
    "set_default_backend",
    "default_backend",
    "use_backend",
]

register_backend("numpy", NumpyKernels())
register_backend("einsum", EinsumKernels())
register_backend("numba", NumbaKernels())
