"""Numba backend — jitted CSR/slot loops (optional dependency).

The kernels are written as plain scalar-loop functions and jitted at
import time when numba is installed; without numba the module still
imports cleanly and registers the backend as *unavailable*, so
``get_backend("numba")`` raises a typed
:class:`~repro.kernels.registry.BackendUnavailable` instead of an
ImportError.  The undecorated pure-Python functions remain importable
(``_py_kernels``) so their logic is testable anywhere.

The jitted traversal walks the flat slot table directly (one pass over
``slot_ptr``/``slot_idx``/``slot_gid``/``slot_w``), handling identity
and hanging elements uniformly — per-element locality instead of the
einsum backend's batched temporaries.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .numpy_backend import NumpyKernels

__all__ = ["NumbaKernels", "NUMBA_AVAILABLE"]

try:  # pragma: no cover - exercised only in the numba CI job
    import numba

    NUMBA_AVAILABLE = True
    _NUMBA_REASON = ""
except ImportError:  # pragma: no cover - the default local environment
    numba = None
    NUMBA_AVAILABLE = False
    _NUMBA_REASON = "numba is not installed (pip install repro[numba])"


def _csr_matvec(indptr, indices, data, x, out):
    for i in range(len(indptr) - 1):
        acc = 0.0
        for k in range(indptr[i], indptr[i + 1]):
            acc += data[k] * x[indices[k]]
        out[i] = acc
    return out


def _dot(x, y):
    acc = 0.0
    for i in range(len(x)):
        acc += x[i] * y[i]
    return acc


def _axpy(alpha, x, y):
    for i in range(len(x)):
        y[i] += alpha * x[i]
    return y


def _traversal_flat(
    slot_ptr, slot_idx, slot_gid, slot_w, h, u, ker, pw, e_lo, e_hi, out
):
    npe = ker.shape[0]
    u_loc = np.zeros(npe)
    w_loc = np.zeros(npe)
    for e in range(e_lo, e_hi):
        lo, hi = slot_ptr[e], slot_ptr[e + 1]
        for i in range(npe):
            u_loc[i] = 0.0
        for k in range(lo, hi):
            u_loc[slot_idx[k]] += slot_w[k] * u[slot_gid[k]]
        scale = h[e] ** pw
        for i in range(npe):
            acc = 0.0
            for j in range(npe):
                acc += ker[i, j] * u_loc[j]
            w_loc[i] = acc * scale
        for k in range(lo, hi):
            out[slot_gid[k]] += slot_w[k] * w_loc[slot_idx[k]]
    return out


#: the pure-Python kernel bodies (pre-jit), kept importable for tests
_py_kernels = {
    "csr_matvec": _csr_matvec,
    "dot": _dot,
    "axpy": _axpy,
    "traversal_flat": _traversal_flat,
}

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only in the numba CI job
    _jit = numba.njit(cache=True, fastmath=False)
    _csr_matvec = _jit(_csr_matvec)
    _dot = _jit(_dot)
    _axpy = _jit(_axpy)
    _traversal_flat = _jit(_traversal_flat)


class NumbaKernels(NumpyKernels):
    """Jitted scalar-loop backend; unavailable without numba."""

    name = "numba"
    available = NUMBA_AVAILABLE
    unavailable_reason = _NUMBA_REASON
    flat_traversal = True

    def gather(self, G: sp.csr_matrix, u: np.ndarray) -> np.ndarray:
        # block inputs and non-CSR formats (e.g. the exchange plan's
        # shared-array CSC transposes) stay on the scipy path
        if getattr(u, "ndim", 1) != 1 or not sp.isspmatrix_csr(G):
            return G @ u
        out = np.empty(G.shape[0])
        return _csr_matvec(
            G.indptr, G.indices, G.data, np.asarray(u, np.float64), out
        )

    def scatter(self, S: sp.csr_matrix, w: np.ndarray) -> np.ndarray:
        if getattr(w, "ndim", 1) != 1 or not sp.isspmatrix_csr(S):
            return S @ w
        out = np.empty(S.shape[0])
        return _csr_matvec(
            S.indptr, S.indices, S.data, np.asarray(w, np.float64), out
        )

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(_dot(np.asarray(x, np.float64), np.asarray(y, np.float64)))

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return _axpy(float(alpha), np.asarray(x, np.float64), y)

    def traversal_matvec(self, plan, u, ker, pw, e_lo, e_hi):
        out = np.zeros(len(u))
        return _traversal_flat(
            plan.slot_ptr,
            plan.slot_idx,
            plan.slot_gid,
            plan.slot_w,
            plan.h,
            np.asarray(u, np.float64),
            np.ascontiguousarray(ker),
            np.int64(pw),
            np.int64(e_lo),
            np.int64(e_hi),
            out,
        )
