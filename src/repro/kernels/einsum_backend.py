"""Einsum backend — level-batched block applies and a flat traversal.

Two structural facts of the operator plan make this backend fast
without any compiled code:

* Most elements have **identity slot rows** (no hanging nodes —
  ``TraversalPlan.identity_elem``), so their gather is a pure index
  read, their elemental apply is one batched einsum (BLAS-dispatched
  via ``optimize=True``), and their scatter is a ``bincount``
  accumulation.  Grouping the identity elements by refinement level
  keeps the ``h^pw`` scale uniform per batch, mirroring
  ``OperatorContext.level_batches``.

* Every ``slot_gid`` in the plan references a **global node id whose
  value the traversal's top-down pass copies unchanged** from the root
  frame (hanging slots combine coarse donors by weight).  The recursive
  bucket walk is therefore semantically a flat expression over the CSR
  slot table — which is what :meth:`EinsumKernels.traversal_matvec`
  evaluates, skipping the tree recursion entirely.

Results agree with the numpy backend to floating-point reassociation
(different summation order in ``bincount`` vs CSR scatter), asserted
within 1e-10 by the cross-backend property tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..obs import span
from .numpy_backend import NumpyKernels

__all__ = ["EinsumKernels"]


def _flat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each (start, count)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + offsets


class EinsumKernels(NumpyKernels):
    """Batched-einsum backend over the flat operator-plan arrays."""

    name = "einsum"
    flat_traversal = True

    def elem_apply(
        self, u_loc: np.ndarray, M: np.ndarray, scale: np.ndarray
    ) -> np.ndarray:
        out = np.einsum("ej,ij->ei", u_loc, M, optimize=True)
        out *= scale[:, None]
        return out

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.einsum("i,i->", x, y, optimize=True))

    def traversal_matvec(self, plan, u, ker, pw, e_lo, e_hi):
        """Flat traversal MATVEC over elements ``[e_lo, e_hi)``.

        Identity elements go through per-level batched einsum applies;
        hanging elements expand their CSR slot rows vectorially
        (``bincount`` both for the weighted gather and the scatter).
        """
        npe = ker.shape[0]
        n_nodes = len(u)
        h, levels = plan.h, plan.levels
        out = np.zeros(n_nodes)
        els = np.arange(e_lo, e_hi, dtype=np.int64)
        ident = plan.identity_elem[e_lo:e_hi]
        id_els = els[ident]
        hang_els = els[~ident]

        for lv in np.unique(levels[id_els]) if len(id_els) else ():
            with span("matvec.leaf", merge=True) as lsp:
                sel = id_els[levels[id_els] == lv]
                gid = plan.slot_gid[
                    plan.slot_ptr[sel][:, None] + np.arange(npe, dtype=np.int64)
                ]
                w_loc = np.einsum("ej,ij->ei", u[gid], ker, optimize=True)
                w_loc *= float(h[sel[0]]) ** pw
                out += np.bincount(
                    gid.ravel(), weights=w_loc.ravel(), minlength=n_nodes
                )
                lsp.add("elements", len(sel))

        if len(hang_els):
            with span("matvec.leaf", merge=True) as lsp:
                starts = plan.slot_ptr[hang_els]
                counts = plan.slot_ptr[hang_els + 1] - starts
                flat = _flat_ranges(starts, counts)
                row = np.repeat(
                    np.arange(len(hang_els), dtype=np.int64), counts
                )
                sidx = plan.slot_idx[flat]
                gid = plan.slot_gid[flat]
                w = plan.slot_w[flat]
                u_loc = np.bincount(
                    row * npe + sidx,
                    weights=w * u[gid],
                    minlength=len(hang_els) * npe,
                ).reshape(len(hang_els), npe)
                w_loc = np.einsum("ej,ij->ei", u_loc, ker, optimize=True)
                w_loc *= (h[hang_els] ** pw)[:, None]
                out += np.bincount(
                    gid, weights=w * w_loc[row, sidx], minlength=n_nodes
                )
                lsp.add("elements", len(hang_els))
        return out

    def assemble(self, ctx, blocks: np.ndarray) -> sp.csr_matrix:
        """Vectorized §3.6 triplet assembly.

        Identity elements emit their whole dense block against the
        ``(npe,)`` gid row in one broadcast; only hanging elements
        (a small fraction of any mesh) take the per-element
        donor-expansion path.
        """
        plan = ctx.traversal
        mesh = ctx.mesh
        n, npe = mesh.n_nodes, mesh.npe
        id_els = np.flatnonzero(plan.identity_elem)
        hang_els = np.flatnonzero(~plan.identity_elem)
        rows_l, cols_l, vals_l = [], [], []
        if len(id_els):
            gids = plan.slot_gid[
                plan.slot_ptr[id_els][:, None] + np.arange(npe, dtype=np.int64)
            ]
            shape = (len(id_els), npe, npe)
            rows_l.append(np.broadcast_to(gids[:, :, None], shape).ravel())
            cols_l.append(np.broadcast_to(gids[:, None, :], shape).ravel())
            vals_l.append(blocks[id_els].reshape(-1))
        for e in hang_els:
            slot, gid, w = plan.rows(e)
            kw = blocks[e][np.ix_(slot, slot)] * np.outer(w, w)
            rows_l.append(np.broadcast_to(gid[:, None], kw.shape).ravel())
            cols_l.append(np.broadcast_to(gid[None, :], kw.shape).ravel())
            vals_l.append(kw.ravel())
        A = sp.csr_matrix(
            (
                np.concatenate(vals_l) if vals_l else np.empty(0),
                (
                    np.concatenate(rows_l) if rows_l else np.empty(0, np.int64),
                    np.concatenate(cols_l) if cols_l else np.empty(0, np.int64),
                ),
            ),
            shape=(n, n),
        )
        A.sum_duplicates()
        return A
