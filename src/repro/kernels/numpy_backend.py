"""Reference numpy backend — bit-identical to the historical hot paths.

Every op here is the exact expression the call sites inlined before the
kernel layer existed, so routing through this backend changes no bits:
CSR gather/scatter are ``scipy.sparse`` products, the batched elemental
apply is one dense matmul plus a column scale, dot/axpy are the plain
BLAS-backed numpy expressions, and assembly is the BSR triple product.

``traversal_matvec`` returns ``None``: this backend has no flat
traversal, which tells :func:`repro.core.matvec.traversal_matvec` to
run its recursive reference implementation (keeping trace spans and
results bit-identical to the pre-kernel-layer code).

Other backends subclass this and override only the ops they speed up,
so every backend is complete by construction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["NumpyKernels"]


class NumpyKernels:
    """Baseline kernel set; the contract every backend implements."""

    name = "numpy"
    available = True
    unavailable_reason = ""
    #: True when :meth:`traversal_matvec` implements the flat
    #: (non-recursive) traversal; False routes the caller to the
    #: recursive reference path.
    flat_traversal = False

    # -- sparse gather / scatter ----------------------------------------

    def gather(self, G: sp.csr_matrix, u: np.ndarray) -> np.ndarray:
        """Element-local slot vector ``G @ u`` (hanging-aware gather)."""
        return G @ u

    def scatter(self, S: sp.csr_matrix, w: np.ndarray) -> np.ndarray:
        """Bottom-up accumulation ``S @ w`` (S is gatherᵀ in CSR)."""
        return S @ w

    # -- batched elemental apply ----------------------------------------

    def elem_apply(
        self, u_loc: np.ndarray, M: np.ndarray, scale: np.ndarray
    ) -> np.ndarray:
        """``(u_loc @ M.T) * scale[:, None]`` for all elements at once."""
        return (u_loc @ M.T) * scale[:, None]

    # -- Krylov vector ops ------------------------------------------------

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(x @ y)

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """In-place ``y += alpha * x``; returns ``y``."""
        y += alpha * x
        return y

    # -- traversal MATVEC -------------------------------------------------

    def traversal_matvec(self, plan, u, ker, pw, e_lo, e_hi):
        """No flat traversal: defer to the recursive reference path."""
        return None

    # -- global assembly ---------------------------------------------------

    def assemble(self, ctx, blocks: np.ndarray) -> sp.csr_matrix:
        """``gatherᵀ · blockdiag(K_e) · gather`` via one BSR product."""
        n_elem, npe, _ = blocks.shape
        B = sp.bsr_matrix(
            (blocks, np.arange(n_elem), np.arange(n_elem + 1)),
            shape=(n_elem * npe, n_elem * npe),
        )
        g = ctx.gather
        A = (g.T @ (B @ g)).tocsr()
        A.sum_duplicates()
        return A
