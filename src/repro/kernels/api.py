"""Instrumented ops facade — the single entry point to kernel backends.

Call sites (:mod:`repro.core.matvec`, :mod:`repro.core.assembly`,
:mod:`repro.fem.elemental`, :mod:`repro.parallel.dist_matvec`,
:mod:`repro.solvers.krylov`) invoke these functions instead of inlining
numpy expressions; each call dispatches to the active backend (see
:mod:`repro.kernels.registry` for the selection precedence) and — when
:mod:`repro.obs` tracing is enabled — publishes achieved-work counters::

    kernels.calls{backend="einsum",kernel="elem_apply"}
    kernels.flops{...}     # modelled double-precision FLOPs executed
    kernels.bytes{...}     # modelled bytes moved
    kernels.seconds{...}   # measured wall time

:func:`repro.analysis.roofline.measured_kernel_points` turns these four
counters into measured arithmetic intensity and fraction-of-peak per
kernel per backend, from a live registry or any ``run.v1``/``bench.v1``
artifact.  With tracing disabled every facade call costs one attribute
check on top of the op itself.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import scipy.sparse as sp

from ..obs.counters import REGISTRY
from ..obs.trace import TRACER, span
from .registry import get_backend

__all__ = [
    "gather",
    "scatter",
    "elem_apply",
    "dot",
    "axpy",
    "traversal_apply",
    "assemble",
]


def _publish(kernel: str, backend: str, flops: float, nbytes: float,
             seconds: float) -> None:
    REGISTRY.add("kernels.calls", 1, kernel=kernel, backend=backend)
    REGISTRY.add("kernels.flops", float(flops), kernel=kernel, backend=backend)
    REGISTRY.add("kernels.bytes", float(nbytes), kernel=kernel, backend=backend)
    REGISTRY.add("kernels.seconds", float(seconds), kernel=kernel,
                 backend=backend)


def _csr_traffic(A: sp.csr_matrix, x: np.ndarray, out_rows: int) -> float:
    """Bytes touched by one CSR product: matrix arrays + both vectors."""
    ncols = x.shape[1] if getattr(x, "ndim", 1) == 2 else 1
    return (
        A.data.nbytes + A.indices.nbytes + A.indptr.nbytes
        + getattr(x, "nbytes", 8 * A.shape[1] * ncols)
        + 8.0 * out_rows * ncols
    )


def gather(G: sp.csr_matrix, u: np.ndarray, backend: str | None = None):
    """Hanging-aware element gather ``G @ u`` through the active backend."""
    be = get_backend(backend)
    if not TRACER.enabled:
        return be.gather(G, u)
    t0 = perf_counter()
    out = be.gather(G, u)
    dt = perf_counter() - t0
    ncols = u.shape[1] if getattr(u, "ndim", 1) == 2 else 1
    _publish("gather", be.name, 2.0 * G.nnz * ncols,
             _csr_traffic(G, u, G.shape[0]), dt)
    return out


def scatter(S: sp.csr_matrix, w: np.ndarray, backend: str | None = None):
    """Bottom-up accumulation ``S @ w`` through the active backend."""
    be = get_backend(backend)
    if not TRACER.enabled:
        return be.scatter(S, w)
    t0 = perf_counter()
    out = be.scatter(S, w)
    dt = perf_counter() - t0
    ncols = w.shape[1] if getattr(w, "ndim", 1) == 2 else 1
    _publish("scatter", be.name, 2.0 * S.nnz * ncols,
             _csr_traffic(S, w, S.shape[0]), dt)
    return out


def elem_apply(u_loc: np.ndarray, M: np.ndarray, scale: np.ndarray,
               backend: str | None = None) -> np.ndarray:
    """Batched elemental apply ``(u_loc @ M.T) * scale[:, None]``."""
    be = get_backend(backend)
    if not TRACER.enabled:
        return be.elem_apply(u_loc, M, scale)
    t0 = perf_counter()
    out = be.elem_apply(u_loc, M, scale)
    dt = perf_counter() - t0
    ne, npe_in = u_loc.shape
    npe_out = M.shape[0]
    _publish(
        "elem_apply", be.name,
        2.0 * ne * npe_out * npe_in + ne * npe_out,
        u_loc.nbytes + scale.nbytes + 8.0 * ne * npe_out, dt,
    )
    return out


def dot(x: np.ndarray, y: np.ndarray, backend: str | None = None) -> float:
    """Krylov inner product ⟨x, y⟩."""
    be = get_backend(backend)
    if not TRACER.enabled:
        return be.dot(x, y)
    t0 = perf_counter()
    out = be.dot(x, y)
    dt = perf_counter() - t0
    _publish("dot", be.name, 2.0 * len(x), 16.0 * len(x), dt)
    return out


def axpy(alpha: float, x: np.ndarray, y: np.ndarray,
         backend: str | None = None) -> np.ndarray:
    """In-place ``y += alpha * x``; returns ``y``."""
    be = get_backend(backend)
    if not TRACER.enabled:
        return be.axpy(alpha, x, y)
    t0 = perf_counter()
    out = be.axpy(alpha, x, y)
    dt = perf_counter() - t0
    _publish("axpy", be.name, 2.0 * len(x), 24.0 * len(x), dt)
    return out


def traversal_apply(plan, u: np.ndarray, ker: np.ndarray, pw: int,
                    e_lo: int, e_hi: int,
                    backend: str | None = None) -> np.ndarray | None:
    """Flat traversal MATVEC, or ``None`` when the active backend has
    no flat path (the caller then runs the recursive reference walk,
    keeping the default backend bit-identical to the historical code).
    """
    be = get_backend(backend)
    if not be.flat_traversal:
        return None
    if not TRACER.enabled:
        return be.traversal_matvec(plan, u, ker, pw, e_lo, e_hi)
    with span("matvec.traversal", backend=be.name) as osp:
        t0 = perf_counter()
        out = be.traversal_matvec(plan, u, ker, pw, e_lo, e_hi)
        dt = perf_counter() - t0
        osp.add("elements", e_hi - e_lo)
    npe = ker.shape[0]
    n_el = e_hi - e_lo
    nnz = float(plan.slot_ptr[e_hi] - plan.slot_ptr[e_lo])
    _publish(
        "traversal", be.name,
        n_el * (2.0 * npe * npe + npe) + 4.0 * nnz,
        32.0 * nnz + 16.0 * n_el * npe + 16.0 * len(u), dt,
    )
    return out


def assemble(ctx, blocks: np.ndarray,
             backend: str | None = None) -> sp.csr_matrix:
    """Global sparse assembly ``Σ_e P_eᵀ K_e P_e`` through the backend."""
    be = get_backend(backend)
    if not TRACER.enabled:
        return be.assemble(ctx, blocks)
    t0 = perf_counter()
    A = be.assemble(ctx, blocks)
    dt = perf_counter() - t0
    ne, npe, _ = blocks.shape
    g = ctx.gather
    _publish(
        "assemble", be.name, 2.0 * ne * npe * npe,
        blocks.nbytes + g.data.nbytes + g.indices.nbytes + 12.0 * A.nnz, dt,
    )
    return A
