"""The sharded serving fleet: discrete-event loop, digests, fail-over.

:class:`FleetService` composes the fleet subsystem — consistent-hash
routing (:mod:`repro.fleet.router`), per-shard
:class:`~repro.serve.service.SolverService` instances behind a shared
second-tier cache (:mod:`repro.fleet.tiercache`), work stealing
(:mod:`repro.fleet.steal`) and checkpointed fail-over
(:mod:`repro.fleet.failover`) — into one deterministic discrete-event
simulation::

    fleet = FleetService(4, seed-independent config...)
    fleet.run(synthetic_workload(200, seed=7))
    fleet.stream_digest   # chained digest, fleet completion order
    fleet.fleet_digest    # order-free digest over the response set

**The event loop.**  Each shard runs its own virtual clock; the fleet
tracks a global event time ``now`` and repeatedly executes the
earliest of four event kinds — a scheduled shard kill, the next
workload arrival, the next due hedge, or the earliest shard-ready
execution step — with ties broken kill < arrival < hedge < exec.
Arrivals are canonically sorted by ``(tick, request digest)`` before
the loop starts, so *any* submission order of the same workload yields
the same simulation (the shuffle test asserts this on both digests).

**Exactly-once completion.**  Every delivery gets a fleet-assigned
*instance* id.  Hedged re-dispatch, duplicated handoffs and fail-over
replay can put several live copies of one instance on the fleet; a
completion guard installed on every shard consults the instance
registry before any terminal disposition, so exactly one response per
delivery ever reaches the stream — the winner — while losers are
suppressed and still-queued copies are cancelled.  Suppressed and
cancelled copies are logged as completed in their shard's durable log,
keeping the fail-over rebuild algebra consistent.

**Defense layers** (:mod:`repro.fleet.defense`).  ``hedge=`` enables
speculative re-dispatch of deliveries stuck past a p95-derived delay;
``breaker=`` gives each shard a closed/open/half-open circuit breaker
that routes arrivals (and steal targets) around unhealthy shards;
``brownout=`` (a :class:`repro.serve.scheduler.BrownoutPolicy`) lets
overloaded shards shed their lowest-priority tail and degrade solve
tolerances, with external *pressure* asserted fleet-wide while any
breaker is open.

**Chaos** (:mod:`repro.chaos.schedule`).  ``chaos=`` installs a seeded
fault schedule: per-shard slowdown/stall windows (via a schedule-aware
virtual clock), multi-crash kills, cache-artifact bit corruption and
duplicated/dropped handoffs — all deterministic, which is what lets
:mod:`repro.chaos.invariants` assert bit-level properties of faulted
runs.

**Two digests, two guarantees.**  Responses fold a **core document**
(request digest, status, reason, PDE, solution digest, iterations,
residual, degraded flag — no timing, no cache/batch metadata) into
both digests.  ``stream_digest`` chains core digests in fleet
completion order and certifies deterministic replay of an identical
run (the CI smoke step runs the demo twice and compares).
``fleet_digest`` hashes the *sorted* core digests, so it is
completion-order-free — the value a killed-and-recovered run must
reproduce bit-for-bit against the failure-free run even though
fail-over reshuffles completion order.

**Fail-over scope.**  Solutions are bit-deterministic per *batch*, so
the fleet digest survives a kill exactly when the replacement shard
reforms the batches the dead shard would have formed.  That holds for
kills after the last arrival with stealing quiescent (the certified
scenario in the tests, demo and bench); for arbitrary kill points the
fleet still guarantees exactly-once completion of every admitted
request (no loss, no duplicates), which the early-kill and chaos tests
assert.
"""

from __future__ import annotations

import hashlib
import json

from ..obs import Histogram
from ..obs import add as obs_add
from ..resilience.faults import ArtifactCorruption, corrupt_in_place
from ..serve.api import SolveRequest, SolveResponse
from ..serve.batcher import build_entry
from ..serve.scheduler import BrownoutPolicy, cost_build
from ..serve.service import SolverService
from .defense import BreakerPolicy, CircuitBreaker, HedgePolicy
from .failover import FailoverEvent, ShardCheckpointer, ShardLog, rebuild_queue
from .router import HashRing
from .steal import StealEvent, plan_steals
from .tiercache import TierCache
from .workload import Arrival

__all__ = ["FleetShard", "FleetService", "core_doc", "core_digest"]


def core_doc(resp: SolveResponse) -> dict:
    """The replay-invariant core of a response: *what* was computed,
    never *when* or *where*.  Timing (submit/start/done ticks), cache
    hits, batch sizes and retry counts legitimately differ between a
    failure-free run and a killed-and-recovered one; the solution
    bits may not.  ``degraded`` is part of the core: a browned-out
    solve is a *different answer* and must digest differently."""
    return {
        "request_digest": resp.request_digest,
        "status": resp.status,
        "reason": resp.reason,
        "pde": resp.pde,
        "solution_digest": resp.solution_digest,
        "iterations": resp.iterations,
        "residual": resp.residual,
        "degraded": resp.degraded,
    }


def core_digest(resp: SolveResponse) -> str:
    return hashlib.sha256(json.dumps(
        core_doc(resp), sort_keys=True, separators=(",", ":")
    ).encode()).hexdigest()


class FleetShard(SolverService):
    """One fleet shard: a :class:`SolverService` wired into the shared
    second tier.

    The override point is :meth:`_resolve_entry` — between the private
    L1 miss and a cold build, the shard consults the fleet's
    :class:`TierCache`, paying the (much cheaper) transfer cost when
    another shard already built the mesh.  Cold builds write through
    to L2, and L1 byte-budget victims demote into L2 instead of being
    dropped, so each discretization is built at most once fleet-wide.

    With a chaos schedule attached, the shard counts its L1 lookups
    and flips one bit of the due entry's payload *before* the lookup —
    the digest re-verification inside :class:`ArtifactCache` then
    catches the damage, quarantines the entry and degrades to a
    rebuild.  Both tiers verify: a fetched L2 entry that fails its
    digest is quarantined from L2 and rebuilt as well.
    """

    def __init__(self, shard_id: str, l2: TierCache, *, chaos=None, **kwargs):
        super().__init__(name=shard_id, **kwargs)
        self.shard_id = shard_id
        self.l2 = l2
        self.cache.on_evict = l2.publish_entry
        self.l2_fetches = 0
        self.chaos = chaos
        self._lookups = 0

    def _resolve_entry(self, request: SolveRequest, bid: str = ""):
        if self.chaos is not None:
            self._lookups += 1
            if self.chaos.cache_corruption_due(self.shard_id, self._lookups):
                victim = self.cache.peek(request.mesh_digest)
                if victim is not None:
                    corrupt_in_place(
                        victim.ctx.h, (self.chaos.seed, self._lookups)
                    )
        entry = self._lookup_verified(request, bid)
        if entry is not None:
            if self.recorder is not None:
                self.recorder.emit(
                    "cache_hit", request.digest, tick=self.clock.now,
                    shard=self.name, tier="l1", bid=bid, ticks=0,
                )
            return entry, True
        if self.recorder is not None:
            self.recorder.emit(
                "cache_miss", request.digest, tick=self.clock.now,
                shard=self.name, tier="l1", bid=bid,
            )
        fetched = self.l2.fetch(request.mesh_digest)
        if fetched is not None:
            try:
                fetched.verify(tier="l2")
            except ArtifactCorruption as exc:
                self.l2.quarantine(fetched)
                if self.recorder is not None:
                    self.recorder.emit(
                        "corrupt_detect", request.digest,
                        tick=self.clock.now, shard=self.name, bid=bid,
                        tier=exc.tier, key=exc.key,
                    )
                    self.recorder.emit(
                        "quarantine", request.digest, tick=self.clock.now,
                        shard=self.name, bid=bid, key=exc.key,
                    )
                fetched = None
        if fetched is not None:
            ticks = self.l2.fetch_cost(fetched)
            self.clock.advance(ticks)
            self.l2_fetches += 1
            if self.recorder is not None:
                self.recorder.emit(
                    "cache_hit", request.digest, tick=self.clock.now,
                    shard=self.name, tier="l2", bid=bid, ticks=ticks,
                )
            return self.cache.insert(request.mesh_digest, fetched), True
        if self.recorder is not None:
            self.recorder.emit(
                "cache_miss", request.digest, tick=self.clock.now,
                shard=self.name, tier="l2", bid=bid,
            )
        entry = build_entry(request)
        ticks = cost_build(entry.mesh.n_elem)
        self.clock.advance(ticks)
        if self.recorder is not None:
            self.recorder.emit(
                "build", request.digest, tick=self.clock.now,
                shard=self.name, bid=bid, ticks=ticks,
                n_elem=entry.mesh.n_elem,
            )
        entry = self.cache.insert(request.mesh_digest, entry)
        self.l2.publish(request.mesh_digest, entry)
        return entry, False

    def stats(self) -> dict:
        out = super().stats()
        out["l2_fetches"] = self.l2_fetches
        return out


class FleetService:
    """N deterministic shards behind a consistent-hash ring.

    One instance simulates one fleet run: build it, :meth:`run` a
    workload (optionally killing a shard mid-run), read the digests
    and :meth:`stats`.  All shard construction parameters are
    identical across shards, so any fleet with the same configuration
    and workload replays bit-identically.
    """

    def __init__(self, n_shards: int = 4, *, cache_bytes: int = 64 << 20,
                 l2_bytes: int = 512 << 20, max_pending: int = 256,
                 max_batch: int = 8, steal_threshold: int = 6,
                 steal_latency: int = 200, steal_max: int | None = None,
                 stealing: bool = True, ckpt_dir=None, ckpt_interval: int = 8,
                 l2_promote_after: int = 4, l2_window: int = 32,
                 recorder=None, hedge: HedgePolicy | None = None,
                 breaker: BreakerPolicy | None = None,
                 brownout: BrownoutPolicy | None = None, chaos=None):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.shard_ids = [f"shard{i}" for i in range(int(n_shards))]
        self.l2 = TierCache(l2_bytes, promote_after=l2_promote_after,
                            window=l2_window)
        self.ring = HashRing(self.shard_ids)
        #: optional flight recorder shared by the fleet loop and every
        #: shard — one :class:`repro.obs.EventLog` receives the entire
        #: causal history of the run (route → shard → batch → response)
        self.recorder = recorder
        #: defense-layer policies (all optional; None disables)
        self.hedge = hedge
        self.breaker_policy = breaker
        self.chaos = chaos
        self.breakers: dict[str, CircuitBreaker] = (
            {sid: CircuitBreaker(sid, breaker, recorder)
             for sid in self.shard_ids}
            if breaker is not None else {}
        )
        self._shard_kwargs = dict(
            cache_bytes=cache_bytes, max_pending=max_pending,
            max_batch=max_batch, recorder=recorder, brownout=brownout,
        )
        self.steal_threshold = int(steal_threshold)
        self.steal_latency = int(steal_latency)
        self.steal_max = steal_max
        self.stealing = bool(stealing)
        self.shards: dict[str, FleetShard] = {}
        self.logs: dict[str, ShardLog] = {
            sid: ShardLog() for sid in self.shard_ids
        }
        self.checkpointers: dict[str, ShardCheckpointer] = {
            sid: ShardCheckpointer(sid, ckpt_dir, interval=ckpt_interval)
            for sid in self.shard_ids
        }
        for sid in self.shard_ids:
            self.shards[sid] = self._make_shard(sid)
        #: global event time: the tick of the last event the loop ran
        self.now = 0
        self.responses: list[SolveResponse] = []
        self.latency = Histogram()
        self.steal_events: list[StealEvent] = []
        self.failover_events: list[FailoverEvent] = []
        self.routed: dict[str, int] = {sid: 0 for sid in self.shard_ids}
        self._status_counts: dict[str, int] = {}
        self._stream = hashlib.sha256()
        self._core_digests: list[str] = []
        #: delivery-instance registry: index = instance id; each record
        #: tracks the request, its original submission tick, whether a
        #: terminal response was produced, and how many hedges fired
        self._instances: list[dict] = []
        #: fleet-wide latency decomposition feeding the hedge delay
        self._wait_hist = Histogram()
        self._service_hist = Histogram()
        self._completions = 0
        self._handoffs = 0
        self.hedges_fired = 0
        self.hedge_wins = 0

    # -- shard lifecycle --------------------------------------------------

    def _make_shard(self, sid: str) -> FleetShard:
        kwargs = dict(self._shard_kwargs)
        if self.chaos is not None:
            kwargs["clock"] = self.chaos.clock_for(sid)
        shard = FleetShard(sid, self.l2, chaos=self.chaos, **kwargs)
        shard.on_response = self._make_on_response(sid)
        shard.completion_guard = self._make_completion_guard(sid)
        return shard

    def _make_on_response(self, sid: str):
        def on_response(resp: SolveResponse) -> None:
            self.logs[sid].completed.append(resp.request_digest)
            self._fleet_finalize(sid, resp)
        return on_response

    def _make_completion_guard(self, sid: str):
        """Exactly-once arbitration for multi-copy deliveries.

        ``kind`` semantics (see ``SolverService.completion_guard``):
        ``solve``/``failed``/``expire``/``shed`` are terminal —
        mark-if-first, suppress otherwise; ``retry`` only peeks (a
        requeue is not terminal, but a copy whose instance already
        completed elsewhere is disposed of instead of backed off).
        Every disposal without a response appends the digest to the
        shard's durable completion log so fail-over rebuilds stay
        consistent.
        """
        def guard(item, kind: str) -> bool:
            iid = item.instance
            if iid < 0 or iid >= len(self._instances):
                return True
            rec = self._instances[iid]
            if rec["completed"]:
                self.logs[sid].completed.append(item.digest)
                return False
            if kind == "retry":
                return True
            rec["completed"] = True
            cancelled = self._cancel_copies(iid)
            if rec["hedges"] > 0 and kind in ("solve", "failed"):
                self.hedge_wins += 1
                if self.recorder is not None:
                    self.recorder.emit(
                        "hedge_win", item.digest,
                        tick=self.shards[sid].clock.now, shard=sid,
                        cancelled=cancelled,
                    )
            return True
        return guard

    def _cancel_copies(self, iid: int) -> int:
        """Remove every still-queued copy of a delivery instance
        fleet-wide (hedge losers, duplicated handoffs), logging each as
        completed on its shard."""
        n = 0
        for osid in sorted(self.shards):
            for it in self.shards[osid].scheduler.cancel_instance(iid):
                self.logs[osid].completed.append(it.digest)
                n += 1
        return n

    def _fleet_finalize(self, sid: str, resp: SolveResponse) -> None:
        self.responses.append(resp)
        d = core_digest(resp)
        self._core_digests.append(d)
        self._stream.update(d.encode())
        self._status_counts[resp.status] = (
            self._status_counts.get(resp.status, 0) + 1
        )
        self.latency.observe(resp.latency)
        if resp.status in ("ok", "failed"):
            self._completions += 1
            self._wait_hist.observe(max(resp.t_start - resp.t_submit, 0))
            self._service_hist.observe(max(resp.t_done - resp.t_start, 0))
            if self.breakers:
                self.breakers[sid].record(
                    resp.status == "ok", self.shards[sid].clock.now
                )
        obs_add("fleet.responses", 1, shard=sid, status=resp.status)

    def _update_pressure(self) -> None:
        """Assert brownout pressure on every shard while any breaker is
        open: survivors are absorbing rerouted traffic and should shed
        earlier."""
        if not self.breakers:
            return
        pressure = any(b.state == "open" for b in self.breakers.values())
        for sh in self.shards.values():
            sh.pressure = pressure

    # -- the discrete-event loop ------------------------------------------

    def run(self, arrivals: list[Arrival],
            kill: tuple[int, str] | None = None) -> list[SolveResponse]:
        """Simulate the fleet over a workload; returns all responses in
        fleet completion order.

        ``kill=(tick, shard_id)`` schedules one shard kill; a chaos
        schedule may add more.  At each kill the shard's process state
        is discarded and :meth:`_fail_over` rebuilds a replacement from
        the checkpoint and logs.  Event ties resolve kill < arrival <
        hedge < exec, and arrivals are canonically re-sorted, so the
        simulation is a pure function of (config, workload multiset,
        kill, chaos schedule).
        """
        queue = sorted(arrivals, key=lambda a: (a.tick, a.request.digest))
        i = 0
        kills: list[tuple[int, str]] = []
        if kill is not None:
            kills.append((int(kill[0]), kill[1]))
        if self.chaos is not None:
            kills.extend(self.chaos.crashes())
        kills.sort()
        while True:
            self._update_pressure()
            next_arrival = queue[i].tick if i < len(queue) else None
            ready: dict[str, int] = {}
            for sid, sh in self.shards.items():
                rt = sh.ready_time()
                if rt is None:
                    continue
                if self.chaos is not None:
                    rt = max(rt, self.chaos.stall_until(sid, rt))
                ready[sid] = rt
            next_exec = min(ready.values()) if ready else None
            kill_tick = kills[0][0] if kills else None
            next_hedge = self._next_hedge_tick()
            events = [t for t in (kill_tick, next_arrival, next_hedge,
                                  next_exec) if t is not None]
            if not events:
                break
            t = min(events)
            self.now = max(self.now, t)
            if kill_tick == t:
                self._fail_over(kills.pop(0)[1])
                continue
            if next_arrival == t:
                while i < len(queue) and queue[i].tick == t:
                    self._deliver(queue[i])
                    i += 1
            elif next_hedge == t:
                self._fire_hedges(t)
            else:
                sid = min(s for s, rt in ready.items() if rt == t)
                shard, log = self.shards[sid], self.logs[sid]
                if self.chaos is not None:
                    # a stalled shard resumes at the window's end; its
                    # clock must not pretend the pause never happened
                    shard.clock.jump_to(t)
                for _ in shard.step():
                    self.checkpointers[sid].on_response(shard, log)
            self._maybe_steal()
        return self.responses

    def _deliver(self, arrival: Arrival) -> None:
        """Route one arrival to its ring owner — or, when the owner's
        circuit breaker refuses, to the first willing ring successor.
        Jumping the target's clock to the arrival tick is safe: the
        loop never delivers an arrival while any shard has strictly
        earlier executable work."""
        req = arrival.request
        owner = self.ring.route(req.mesh_digest)
        sid = owner
        if self.breakers:
            for cand in self.ring.successors(req.mesh_digest):
                if self.breakers[cand].allow(arrival.tick):
                    sid = cand
                    break
            else:
                sid = owner  # every breaker open: the owner it is
        if self.recorder is not None:
            attrs = {"key": req.mesh_digest}
            if sid != owner:
                attrs["rerouted_from"] = owner
            self.recorder.emit("route", req.digest, tick=arrival.tick,
                               shard=sid, **attrs)
        iid = len(self._instances)
        rec = {"request": req, "digest": req.digest,
               "t_submit": int(arrival.tick), "completed": False,
               "hedges": 0}
        self._instances.append(rec)
        shard = self.shards[sid]
        shard.clock.jump_to(arrival.tick)
        self.logs[sid].record_arrival(arrival.tick, req, instance=iid)
        item, _ = shard.submit_item(req, t_submit=arrival.tick, instance=iid)
        if item is None:
            rec["completed"] = True  # rejected at admission: terminal
        self.routed[sid] += 1
        obs_add("fleet.requests", 1, shard=sid)

    # -- hedged requests --------------------------------------------------

    def _hedge_delay(self) -> int:
        """Current hedge delay: conservative until the histograms have
        ``min_samples`` completions, then p95-derived."""
        p = self.hedge
        if self._completions < p.min_samples:
            return p.initial_delay
        observed = (self._wait_hist.quantile(0.95)
                    + self._service_hist.quantile(0.95))
        return max(p.min_delay, int(p.multiplier * observed))

    def _next_hedge_tick(self) -> int | None:
        """Earliest tick at which any live delivery is due a hedge."""
        if self.hedge is None or len(self.shards) < 2:
            return None
        delay = self._hedge_delay()
        best = None
        for rec in self._instances:
            if rec["completed"] or rec["hedges"] >= self.hedge.max_hedges:
                continue
            due = rec["t_submit"] + delay * (rec["hedges"] + 1)
            if best is None or due < best:
                best = due
        return best

    def _fire_hedges(self, t: int) -> None:
        delay = self._hedge_delay()
        for iid, rec in enumerate(self._instances):
            if rec["completed"] or rec["hedges"] >= self.hedge.max_hedges:
                continue
            if rec["t_submit"] + delay * (rec["hedges"] + 1) <= t:
                self._fire_one_hedge(iid, rec, t)

    def _fire_one_hedge(self, iid: int, rec: dict, t: int) -> None:
        """Speculatively re-dispatch one overdue delivery to the ring
        successor of the shard holding its primary copy.  The attempt
        is consumed even when no copy or target is found, guaranteeing
        loop progress."""
        rec["hedges"] += 1
        src = None
        src_item = None
        for sid in sorted(self.shards):
            for it in self.shards[sid].scheduler.pending:
                if it.instance == iid and not it.hedge:
                    src, src_item = sid, it
                    break
            if src is not None:
                break
        if src is None:
            return  # the primary is mid-dispatch or already gone
        key = rec["request"].mesh_digest
        dst = None
        for cand in self.ring.successors(key):
            if cand == src:
                continue
            if self.breakers and not self.breakers[cand].allow(t):
                continue
            dst = cand
            break
        if dst is None:
            return
        not_before = t + self.hedge.transfer_latency
        item = self.shards[dst].scheduler.adopt(
            src_item.request, self.shards[dst].clock,
            t_submit=src_item.t_submit, retries=src_item.retries,
            not_before=not_before, instance=iid, hedge=True,
        )
        if item is None:
            return  # destination backpressured; attempt still consumed
        self.logs[dst].record_arrival(
            src_item.t_submit, src_item.request, src_item.retries,
            instance=iid, hedge=True,
        )
        if self.recorder is not None:
            self.recorder.emit(
                "hedge", src_item.digest, tick=t, shard=dst, src=src,
                not_before=not_before,
            )
        self.hedges_fired += 1
        obs_add("fleet.hedges", 1)

    # -- work stealing ----------------------------------------------------

    def _maybe_steal(self) -> None:
        if not self.stealing or len(self.shards) < 2:
            return
        depths = {sid: sh.scheduler.depth for sid, sh in self.shards.items()}
        capacity = {
            sid: sh.scheduler.max_pending - sh.scheduler.depth
            for sid, sh in self.shards.items()
        }
        exclude = ({sid for sid, b in self.breakers.items()
                    if b.state != "closed"}
                   if self.breakers else None)
        for plan in plan_steals(depths, threshold=self.steal_threshold,
                                capacity=capacity, max_items=self.steal_max,
                                exclude=exclude,
                                recorder=self.recorder, tick=self.now):
            src, dst = self.shards[plan.src], self.shards[plan.dst]
            items = src.scheduler.steal_items(plan.n, src.clock.now)
            if not items:
                continue
            digests = []
            for it in items:
                mode = None
                if self.chaos is not None:
                    mode = self.chaos.handoff_mode(self._handoffs)
                    self._handoffs += 1
                if mode == "drop":
                    # lost in transit: the copy never departs the
                    # source's durable log and never arrives at the
                    # destination; the source retransmits to itself
                    # after a timeout
                    it.not_before = max(
                        it.not_before, self.now + 2 * self.steal_latency
                    )
                    src.scheduler.pending.append(it)
                    if self.recorder is not None:
                        self.recorder.emit(
                            "steal", it.digest, tick=self.now,
                            shard=plan.src, src=plan.src,
                            not_before=it.not_before, fault="drop",
                        )
                    continue
                adopted = dst.scheduler.adopt(
                    it.request, dst.clock, t_submit=it.t_submit,
                    retries=it.retries,
                    not_before=self.now + self.steal_latency,
                    instance=it.instance, hedge=it.hedge,
                )
                if adopted is None:
                    src.scheduler.pending.append(it)
                    continue
                if mode == "dup":
                    # delivered AND kept at the source: two live copies
                    # of one delivery instance — the completion guard
                    # dedups, and the source log keeps its arrival
                    src.scheduler.pending.append(it)
                else:
                    self.logs[plan.src].stolen_away.append(it.digest)
                self.logs[plan.dst].record_arrival(
                    it.t_submit, it.request, it.retries,
                    instance=it.instance, hedge=it.hedge,
                )
                if self.recorder is not None:
                    attrs = {"src": plan.src,
                             "not_before": self.now + self.steal_latency}
                    if mode == "dup":
                        attrs["fault"] = "dup"
                    self.recorder.emit("steal", it.digest, tick=self.now,
                                       shard=plan.dst, **attrs)
                digests.append(it.digest)
            self.steal_events.append(StealEvent(
                tick=self.now, src=plan.src, dst=plan.dst,
                digests=tuple(digests),
            ))
            obs_add("fleet.steals", 1)
            obs_add("fleet.stolen_items", len(digests))

    # -- fail-over --------------------------------------------------------

    def _fail_over(self, sid: str) -> None:
        """Kill ``sid`` and rebuild it from checkpoint + log replay.

        The dead shard's in-memory state (queue, clock, L1 cache) is
        discarded wholesale — recovery may use only the durable
        artifacts: the sealed state checkpoint, the fleet-side logs,
        and the shared L2 (which survives because it lives outside the
        shard).  The replacement inherits the ring slot, so no other
        shard's keyspace moves.  Delivery-instance ids ride through
        the logs, so replayed copies stay under exactly-once
        arbitration; the shard's breaker resets to closed (the
        replacement's health is its own).
        """
        if sid not in self.shards:
            raise ValueError(f"cannot kill unknown shard {sid!r}")
        ckpt = self.checkpointers[sid]
        state = ckpt.latest_state()
        if self.recorder is not None:
            self.recorder.emit(
                "failover", tick=self.now, shard=sid,
                ckpt_step=ckpt.step if state is not None else None,
            )
        replay = rebuild_queue(state, self.logs[sid],
                               recorder=self.recorder, tick=self.now,
                               shard=sid)
        replacement = self._make_shard(sid)
        replacement.clock.jump_to(self.now)
        if state is not None:
            replacement.clock.jump_to(state["clock"])
        for doc in replay:
            replacement.scheduler.adopt(
                SolveRequest.from_doc(doc["request"]), replacement.clock,
                t_submit=doc["t_submit"], retries=doc["retries"],
                instance=doc.get("instance", -1),
                hedge=doc.get("hedge", False),
            )
        self.shards[sid] = replacement
        ckpt.reset_after_failover()
        if self.breakers:
            self.breakers[sid] = CircuitBreaker(
                sid, self.breaker_policy, self.recorder
            )
        survivors = sorted(s for s in self.shards if s != sid)
        event = FailoverEvent(
            tick=self.now, shard_id=sid,
            host=survivors[0] if survivors else None,
            replayed=len(replay),
            ckpt_step=ckpt.step if state is not None else None,
        )
        self.failover_events.append(event)
        obs_add("fleet.failovers", 1)
        obs_add("fleet.replayed_requests", len(replay))

    # -- certification and reporting --------------------------------------

    @property
    def stream_digest(self) -> str:
        """sha256 chained over response core digests in fleet
        completion order — certifies identical replay of an identical
        run (CI runs the demo twice and diffs this)."""
        return self._stream.hexdigest()

    @property
    def fleet_digest(self) -> str:
        """sha256 over the *sorted* response core digests — the
        completion-order-free certificate a recovered run must match
        against the failure-free run."""
        h = hashlib.sha256()
        for d in sorted(self._core_digests):
            h.update(d.encode())
        return h.hexdigest()

    @property
    def makespan(self) -> int:
        """Virtual makespan: the furthest any shard clock advanced."""
        return max(sh.clock.now for sh in self.shards.values())

    def stats(self) -> dict:
        out = {
            "n_shards": len(self.shards),
            "responses": len(self.responses),
            "status": dict(sorted(self._status_counts.items())),
            "routed": dict(self.routed),
            "makespan_ticks": self.makespan,
            "latency_ticks": self.latency.summary(),
            "steals": len(self.steal_events),
            "stolen_items": sum(e.n for e in self.steal_events),
            "failovers": [e.describe() for e in self.failover_events],
            "l2": self.l2.stats(),
            "shards": {sid: sh.stats()
                       for sid, sh in sorted(self.shards.items())},
            "stream_digest": self.stream_digest,
            "fleet_digest": self.fleet_digest,
        }
        if self.hedge is not None or self.breakers:
            out["defense"] = {
                "hedges": self.hedges_fired,
                "hedge_wins": self.hedge_wins,
                "breaker_states": {sid: b.state for sid, b
                                   in sorted(self.breakers.items())},
                "breaker_opens": sum(b.opens
                                     for b in self.breakers.values()),
            }
        if self.chaos is not None:
            out["chaos"] = self.chaos.describe()
        return out
