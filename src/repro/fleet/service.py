"""The sharded serving fleet: discrete-event loop, digests, fail-over.

:class:`FleetService` composes the fleet subsystem — consistent-hash
routing (:mod:`repro.fleet.router`), per-shard
:class:`~repro.serve.service.SolverService` instances behind a shared
second-tier cache (:mod:`repro.fleet.tiercache`), work stealing
(:mod:`repro.fleet.steal`) and checkpointed fail-over
(:mod:`repro.fleet.failover`) — into one deterministic discrete-event
simulation::

    fleet = FleetService(4, seed-independent config...)
    fleet.run(synthetic_workload(200, seed=7))
    fleet.stream_digest   # chained digest, fleet completion order
    fleet.fleet_digest    # order-free digest over the response set

**The event loop.**  Each shard runs its own virtual clock; the fleet
tracks a global event time ``now`` and repeatedly executes the
earliest of three event kinds — a scheduled shard kill, the next
workload arrival, or the earliest shard-ready execution step — with
ties broken kill < arrival < exec.  Arrivals are canonically sorted by
``(tick, request digest)`` before the loop starts, so *any* submission
order of the same workload yields the same simulation (the shuffle
test asserts this on both digests).

**Two digests, two guarantees.**  Responses fold a **core document**
(request digest, status, reason, PDE, solution digest, iterations,
residual — no timing, no cache/batch metadata) into both digests.
``stream_digest`` chains core digests in fleet completion order and
certifies deterministic replay of an identical run (the CI smoke step
runs the demo twice and compares).  ``fleet_digest`` hashes the
*sorted* core digests, so it is completion-order-free — the value a
killed-and-recovered run must reproduce bit-for-bit against the
failure-free run even though fail-over reshuffles completion order.

**Fail-over scope.**  Solutions are bit-deterministic per *batch*, so
the fleet digest survives a kill exactly when the replacement shard
reforms the batches the dead shard would have formed.  That holds for
kills after the last arrival with stealing quiescent (the certified
scenario in the tests, demo and bench); for arbitrary kill points the
fleet still guarantees exactly-once completion of every admitted
request (no loss, no duplicates), which the early-kill test asserts.
"""

from __future__ import annotations

import hashlib
import json

from ..obs import Histogram
from ..obs import add as obs_add
from ..serve.api import SolveRequest, SolveResponse
from ..serve.batcher import build_entry
from ..serve.scheduler import cost_build
from ..serve.service import SolverService
from .failover import FailoverEvent, ShardCheckpointer, ShardLog, rebuild_queue
from .router import HashRing
from .steal import StealEvent, plan_steals
from .tiercache import TierCache
from .workload import Arrival

__all__ = ["FleetShard", "FleetService", "core_doc", "core_digest"]


def core_doc(resp: SolveResponse) -> dict:
    """The replay-invariant core of a response: *what* was computed,
    never *when* or *where*.  Timing (submit/start/done ticks), cache
    hits, batch sizes and retry counts legitimately differ between a
    failure-free run and a killed-and-recovered one; the solution
    bits may not."""
    return {
        "request_digest": resp.request_digest,
        "status": resp.status,
        "reason": resp.reason,
        "pde": resp.pde,
        "solution_digest": resp.solution_digest,
        "iterations": resp.iterations,
        "residual": resp.residual,
    }


def core_digest(resp: SolveResponse) -> str:
    return hashlib.sha256(json.dumps(
        core_doc(resp), sort_keys=True, separators=(",", ":")
    ).encode()).hexdigest()


class FleetShard(SolverService):
    """One fleet shard: a :class:`SolverService` wired into the shared
    second tier.

    The override point is :meth:`_resolve_entry` — between the private
    L1 miss and a cold build, the shard consults the fleet's
    :class:`TierCache`, paying the (much cheaper) transfer cost when
    another shard already built the mesh.  Cold builds write through
    to L2, and L1 byte-budget victims demote into L2 instead of being
    dropped, so each discretization is built at most once fleet-wide.
    """

    def __init__(self, shard_id: str, l2: TierCache, **kwargs):
        super().__init__(name=shard_id, **kwargs)
        self.shard_id = shard_id
        self.l2 = l2
        self.cache.on_evict = l2.publish_entry
        self.l2_fetches = 0

    def _resolve_entry(self, request: SolveRequest, bid: str = ""):
        entry = self.cache.lookup(request.mesh_digest)
        if entry is not None:
            if self.recorder is not None:
                self.recorder.emit(
                    "cache_hit", request.digest, tick=self.clock.now,
                    shard=self.name, tier="l1", bid=bid, ticks=0,
                )
            return entry, True
        if self.recorder is not None:
            self.recorder.emit(
                "cache_miss", request.digest, tick=self.clock.now,
                shard=self.name, tier="l1", bid=bid,
            )
        fetched = self.l2.fetch(request.mesh_digest)
        if fetched is not None:
            ticks = self.l2.fetch_cost(fetched)
            self.clock.advance(ticks)
            self.l2_fetches += 1
            if self.recorder is not None:
                self.recorder.emit(
                    "cache_hit", request.digest, tick=self.clock.now,
                    shard=self.name, tier="l2", bid=bid, ticks=ticks,
                )
            return self.cache.insert(request.mesh_digest, fetched), True
        if self.recorder is not None:
            self.recorder.emit(
                "cache_miss", request.digest, tick=self.clock.now,
                shard=self.name, tier="l2", bid=bid,
            )
        entry = build_entry(request)
        ticks = cost_build(entry.mesh.n_elem)
        self.clock.advance(ticks)
        if self.recorder is not None:
            self.recorder.emit(
                "build", request.digest, tick=self.clock.now,
                shard=self.name, bid=bid, ticks=ticks,
                n_elem=entry.mesh.n_elem,
            )
        entry = self.cache.insert(request.mesh_digest, entry)
        self.l2.publish(request.mesh_digest, entry)
        return entry, False

    def stats(self) -> dict:
        out = super().stats()
        out["l2_fetches"] = self.l2_fetches
        return out


class FleetService:
    """N deterministic shards behind a consistent-hash ring.

    One instance simulates one fleet run: build it, :meth:`run` a
    workload (optionally killing a shard mid-run), read the digests
    and :meth:`stats`.  All shard construction parameters are
    identical across shards, so any fleet with the same configuration
    and workload replays bit-identically.
    """

    def __init__(self, n_shards: int = 4, *, cache_bytes: int = 64 << 20,
                 l2_bytes: int = 512 << 20, max_pending: int = 256,
                 max_batch: int = 8, steal_threshold: int = 6,
                 steal_latency: int = 200, steal_max: int | None = None,
                 stealing: bool = True, ckpt_dir=None, ckpt_interval: int = 8,
                 l2_promote_after: int = 4, l2_window: int = 32,
                 recorder=None):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.shard_ids = [f"shard{i}" for i in range(int(n_shards))]
        self.l2 = TierCache(l2_bytes, promote_after=l2_promote_after,
                            window=l2_window)
        self.ring = HashRing(self.shard_ids)
        #: optional flight recorder shared by the fleet loop and every
        #: shard — one :class:`repro.obs.EventLog` receives the entire
        #: causal history of the run (route → shard → batch → response)
        self.recorder = recorder
        self._shard_kwargs = dict(
            cache_bytes=cache_bytes, max_pending=max_pending,
            max_batch=max_batch, recorder=recorder,
        )
        self.steal_threshold = int(steal_threshold)
        self.steal_latency = int(steal_latency)
        self.steal_max = steal_max
        self.stealing = bool(stealing)
        self.shards: dict[str, FleetShard] = {}
        self.logs: dict[str, ShardLog] = {
            sid: ShardLog() for sid in self.shard_ids
        }
        self.checkpointers: dict[str, ShardCheckpointer] = {
            sid: ShardCheckpointer(sid, ckpt_dir, interval=ckpt_interval)
            for sid in self.shard_ids
        }
        for sid in self.shard_ids:
            self.shards[sid] = self._make_shard(sid)
        #: global event time: the tick of the last event the loop ran
        self.now = 0
        self.responses: list[SolveResponse] = []
        self.latency = Histogram()
        self.steal_events: list[StealEvent] = []
        self.failover_events: list[FailoverEvent] = []
        self.routed: dict[str, int] = {sid: 0 for sid in self.shard_ids}
        self._status_counts: dict[str, int] = {}
        self._stream = hashlib.sha256()
        self._core_digests: list[str] = []

    # -- shard lifecycle --------------------------------------------------

    def _make_shard(self, sid: str) -> FleetShard:
        shard = FleetShard(sid, self.l2, **self._shard_kwargs)
        shard.on_response = self._make_on_response(sid)
        return shard

    def _make_on_response(self, sid: str):
        def on_response(resp: SolveResponse) -> None:
            self.logs[sid].completed.append(resp.request_digest)
            self._fleet_finalize(sid, resp)
        return on_response

    def _fleet_finalize(self, sid: str, resp: SolveResponse) -> None:
        self.responses.append(resp)
        d = core_digest(resp)
        self._core_digests.append(d)
        self._stream.update(d.encode())
        self._status_counts[resp.status] = (
            self._status_counts.get(resp.status, 0) + 1
        )
        self.latency.observe(resp.latency)
        obs_add("fleet.responses", 1, shard=sid, status=resp.status)

    # -- the discrete-event loop ------------------------------------------

    def run(self, arrivals: list[Arrival],
            kill: tuple[int, str] | None = None) -> list[SolveResponse]:
        """Simulate the fleet over a workload; returns all responses in
        fleet completion order.

        ``kill=(tick, shard_id)`` schedules one shard kill: at that
        event time the shard's process state is discarded and
        :meth:`_fail_over` rebuilds a replacement from the checkpoint
        and logs.  Event ties resolve kill < arrival < exec, and
        arrivals are canonically re-sorted, so the simulation is a
        pure function of (config, workload multiset, kill).
        """
        queue = sorted(arrivals, key=lambda a: (a.tick, a.request.digest))
        i = 0
        pending_kill = kill
        while True:
            next_arrival = queue[i].tick if i < len(queue) else None
            ready = {sid: sh.ready_time() for sid, sh in self.shards.items()}
            exec_ticks = [t for t in ready.values() if t is not None]
            next_exec = min(exec_ticks) if exec_ticks else None
            kill_tick = pending_kill[0] if pending_kill else None
            events = [t for t in (kill_tick, next_arrival, next_exec)
                      if t is not None]
            if not events:
                break
            t = min(events)
            self.now = max(self.now, t)
            if kill_tick == t:
                self._fail_over(pending_kill[1])
                pending_kill = None
                continue
            if next_arrival == t:
                while i < len(queue) and queue[i].tick == t:
                    self._deliver(queue[i])
                    i += 1
            else:
                sid = min(s for s, rt in ready.items() if rt == t)
                shard, log = self.shards[sid], self.logs[sid]
                for _ in shard.step():
                    self.checkpointers[sid].on_response(shard, log)
            self._maybe_steal()
        return self.responses

    def _deliver(self, arrival: Arrival) -> None:
        """Route one arrival to its ring owner.  Jumping the target's
        clock to the arrival tick is safe: the loop never delivers an
        arrival while any shard has strictly earlier executable work."""
        sid = self.ring.route(
            arrival.request.mesh_digest, recorder=self.recorder,
            tick=arrival.tick, rid=arrival.request.digest,
        )
        shard = self.shards[sid]
        shard.clock.jump_to(arrival.tick)
        self.logs[sid].record_arrival(arrival.tick, arrival.request)
        shard.submit(arrival.request, t_submit=arrival.tick)
        self.routed[sid] += 1
        obs_add("fleet.requests", 1, shard=sid)

    def _maybe_steal(self) -> None:
        if not self.stealing or len(self.shards) < 2:
            return
        depths = {sid: sh.scheduler.depth for sid, sh in self.shards.items()}
        capacity = {
            sid: sh.scheduler.max_pending - sh.scheduler.depth
            for sid, sh in self.shards.items()
        }
        for plan in plan_steals(depths, threshold=self.steal_threshold,
                                capacity=capacity, max_items=self.steal_max,
                                recorder=self.recorder, tick=self.now):
            src, dst = self.shards[plan.src], self.shards[plan.dst]
            items = src.scheduler.steal_items(plan.n, src.clock.now)
            if not items:
                continue
            digests = []
            for it in items:
                self.logs[plan.src].stolen_away.append(it.digest)
                self.logs[plan.dst].record_arrival(
                    it.t_submit, it.request, it.retries)
                if self.recorder is not None:
                    self.recorder.emit(
                        "steal", it.digest, tick=self.now, shard=plan.dst,
                        src=plan.src, not_before=self.now + self.steal_latency,
                    )
                dst.scheduler.adopt(
                    it.request, dst.clock, t_submit=it.t_submit,
                    retries=it.retries,
                    not_before=self.now + self.steal_latency,
                )
                digests.append(it.digest)
            self.steal_events.append(StealEvent(
                tick=self.now, src=plan.src, dst=plan.dst,
                digests=tuple(digests),
            ))
            obs_add("fleet.steals", 1)
            obs_add("fleet.stolen_items", len(digests))

    def _fail_over(self, sid: str) -> None:
        """Kill ``sid`` and rebuild it from checkpoint + log replay.

        The dead shard's in-memory state (queue, clock, L1 cache) is
        discarded wholesale — recovery may use only the durable
        artifacts: the sealed state checkpoint, the fleet-side logs,
        and the shared L2 (which survives because it lives outside the
        shard).  The replacement inherits the ring slot, so no other
        shard's keyspace moves.
        """
        if sid not in self.shards:
            raise ValueError(f"cannot kill unknown shard {sid!r}")
        ckpt = self.checkpointers[sid]
        state = ckpt.latest_state()
        if self.recorder is not None:
            self.recorder.emit(
                "failover", tick=self.now, shard=sid,
                ckpt_step=ckpt.step if state is not None else None,
            )
        replay = rebuild_queue(state, self.logs[sid],
                               recorder=self.recorder, tick=self.now,
                               shard=sid)
        replacement = self._make_shard(sid)
        replacement.clock.jump_to(self.now)
        if state is not None:
            replacement.clock.jump_to(state["clock"])
        for doc in replay:
            replacement.scheduler.adopt(
                SolveRequest.from_doc(doc["request"]), replacement.clock,
                t_submit=doc["t_submit"], retries=doc["retries"],
            )
        self.shards[sid] = replacement
        ckpt.reset_after_failover()
        survivors = sorted(s for s in self.shards if s != sid)
        event = FailoverEvent(
            tick=self.now, shard_id=sid,
            host=survivors[0] if survivors else None,
            replayed=len(replay),
            ckpt_step=ckpt.step if state is not None else None,
        )
        self.failover_events.append(event)
        obs_add("fleet.failovers", 1)
        obs_add("fleet.replayed_requests", len(replay))

    # -- certification and reporting --------------------------------------

    @property
    def stream_digest(self) -> str:
        """sha256 chained over response core digests in fleet
        completion order — certifies identical replay of an identical
        run (CI runs the demo twice and diffs this)."""
        return self._stream.hexdigest()

    @property
    def fleet_digest(self) -> str:
        """sha256 over the *sorted* response core digests — the
        completion-order-free certificate a recovered run must match
        against the failure-free run."""
        h = hashlib.sha256()
        for d in sorted(self._core_digests):
            h.update(d.encode())
        return h.hexdigest()

    @property
    def makespan(self) -> int:
        """Virtual makespan: the furthest any shard clock advanced."""
        return max(sh.clock.now for sh in self.shards.values())

    def stats(self) -> dict:
        return {
            "n_shards": len(self.shards),
            "responses": len(self.responses),
            "status": dict(sorted(self._status_counts.items())),
            "routed": dict(self.routed),
            "makespan_ticks": self.makespan,
            "latency_ticks": self.latency.summary(),
            "steals": len(self.steal_events),
            "stolen_items": sum(e.n for e in self.steal_events),
            "failovers": [e.describe() for e in self.failover_events],
            "l2": self.l2.stats(),
            "shards": {sid: sh.stats()
                       for sid, sh in sorted(self.shards.items())},
            "stream_digest": self.stream_digest,
            "fleet_digest": self.fleet_digest,
        }
