"""Shared second-tier artifact cache with hit-rate promotion/demotion.

Each shard's :class:`repro.serve.cache.ArtifactCache` is its private
L1; the fleet shares one :class:`TierCache` (L2) behind all of them.
The tiers interact at exactly three points:

* **write-through on build** — the shard that pays a cold mesh build
  publishes the entry here, so every other shard (work stealing,
  fail-over replacements) can fetch it for a transfer cost instead of
  rebuilding: each discretization is built at most once fleet-wide;
* **demotion on L1 eviction** — an entry falling out of a shard's L1
  byte budget is offered back (victim caching) rather than dropped;
* **fetch on L1 miss** — the shard adapter consults L2 between its L1
  miss and a cold build, paying :meth:`fetch_cost` virtual ticks
  (size-proportional, ~1/16 of the build cost).

Promotion/demotion is hit-rate driven and fully deterministic: L2
counts per-fingerprint fetch hits in a sliding window (counts halve
every ``window`` operations — integer decay, no wall clock).  An entry
whose windowed hit count reaches ``promote_after`` is **promoted**
(pinned: the byte-budget eviction scan skips it), and a pinned entry
whose count decays below ``demote_below`` is **demoted** back to
evictable.  Eviction among evictable entries is LRU by operation
sequence, so identical fleet runs evict identically.

Metrics: ``fleet.l2.{hits,misses,evictions,promotions,demotions}``
counters and ``fleet.l2.{bytes,entries}`` gauges.
"""

from __future__ import annotations

from ..obs import add as obs_add
from ..obs import set_gauge
from ..serve.cache import CacheEntry
from ..serve.scheduler import cost_build

__all__ = ["TierCache"]


class TierCache:
    """Deterministic shared L2 over :class:`CacheEntry` objects."""

    def __init__(self, byte_budget: int = 512 << 20, *,
                 promote_after: int = 4, demote_below: int = 2,
                 window: int = 32, fetch_cost_divisor: int = 16):
        if promote_after < 1 or window < 1:
            raise ValueError("promote_after and window must be >= 1")
        self.byte_budget = int(byte_budget)
        self.promote_after = int(promote_after)
        self.demote_below = int(demote_below)
        self.window = int(window)
        self.fetch_cost_divisor = int(fetch_cost_divisor)
        self._entries: dict[str, CacheEntry] = {}   # fingerprint → entry
        #: mesh digest → fingerprint; kept even after eviction so a
        #: re-published victim stays fetchable by request-side digest
        self._alias: dict[str, str] = {}
        self._lru: dict[str, int] = {}
        self._counts: dict[str, int] = {}
        self._pinned: set[str] = set()
        self._seq = 0
        self._ops = 0
        self.hits = 0
        self.misses = 0
        self.promotions = 0
        self.demotions = 0
        self.eviction_log: list[str] = []
        #: fingerprints dropped after failing digest re-verification on
        #: fetch (a shard's write-through shares the entry object, so
        #: damage in one tier is visible — and quarantined — in both)
        self.quarantined: set[str] = set()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    @property
    def pinned(self) -> frozenset[str]:
        return frozenset(self._pinned)

    def fetch_cost(self, entry: CacheEntry) -> int:
        """Virtual ticks to pull an entry out of the shared tier."""
        return max(1, cost_build(entry.mesh.n_elem) // self.fetch_cost_divisor)

    # -- internal bookkeeping --------------------------------------------

    def _touch(self, fp: str) -> None:
        self._seq += 1
        self._lru[fp] = self._seq

    def _tick(self) -> None:
        """One cache operation: drives the deterministic promote/demote
        window (counts halve; pins recomputed from the decayed rates)."""
        self._ops += 1
        if self._ops % self.window:
            return
        for fp in sorted(self._counts):
            c = self._counts[fp]
            if fp in self._entries and c >= self.promote_after \
                    and fp not in self._pinned:
                self._pinned.add(fp)
                self.promotions += 1
                obs_add("fleet.l2.promotions", 1)
            elif fp in self._pinned and c < self.demote_below:
                self._pinned.discard(fp)
                self.demotions += 1
                obs_add("fleet.l2.demotions", 1)
            self._counts[fp] = c >> 1

    # -- the tier interface ----------------------------------------------

    def fetch(self, mesh_digest: str) -> CacheEntry | None:
        """Resolve a shard's L1 miss; publishes fleet.l2 hit/miss."""
        self._tick()
        fp = self._alias.get(mesh_digest)
        entry = self._entries.get(fp) if fp is not None else None
        if entry is None:
            self.misses += 1
            obs_add("fleet.l2.misses", 1)
            return None
        self.hits += 1
        obs_add("fleet.l2.hits", 1)
        self._counts[fp] = self._counts.get(fp, 0) + 1
        self._touch(fp)
        return entry

    def quarantine(self, entry: CacheEntry) -> None:
        """Drop a corruption-flagged entry from the tier.

        The alias stays (a rebuilt replacement re-publishes under the
        same fingerprint); the fingerprint is remembered for audit and
        counted as ``fleet.l2.quarantined``.
        """
        fp = entry.fingerprint
        self.quarantined.add(fp)
        obs_add("fleet.l2.quarantined", 1)
        if fp in self._entries:
            del self._entries[fp]
            del self._lru[fp]
            self._pinned.discard(fp)
        self._publish_gauges()

    def publish(self, mesh_digest: str, entry: CacheEntry) -> None:
        """Write-through from a shard's cold build (registers the
        request-side alias)."""
        self._alias[mesh_digest] = entry.fingerprint
        self.publish_entry(entry)

    def publish_entry(self, entry: CacheEntry) -> None:
        """(Re-)insert an entry — the L1 victim-demotion hook.  The
        alias learned at first publish persists, so the entry stays
        fetchable."""
        self._tick()
        fp = entry.fingerprint
        if fp not in self._entries:
            self._entries[fp] = entry
            self._counts.setdefault(fp, 0)
        self._touch(fp)
        self.enforce_budget(protect=fp)
        self._publish_gauges()

    def enforce_budget(self, protect: str | None = None) -> None:
        """Evict until within budget: unpinned LRU first, pinned LRU
        only if the unpinned set alone cannot make room."""
        while self.nbytes > self.byte_budget and len(self._entries) > 1:
            pool = [fp for fp in self._entries
                    if fp != protect and fp not in self._pinned]
            if not pool:
                pool = [fp for fp in self._entries if fp != protect]
            if not pool:
                break
            victim = min(pool, key=lambda fp: self._lru[fp])
            del self._entries[victim]
            del self._lru[victim]
            self._pinned.discard(victim)
            self.eviction_log.append(victim)
            obs_add("fleet.l2.evictions", 1)
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        set_gauge("fleet.l2.bytes", self.nbytes)
        set_gauge("fleet.l2.entries", len(self._entries))

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.nbytes,
            "byte_budget": self.byte_budget,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": len(self.eviction_log),
            "promotions": self.promotions,
            "demotions": self.demotions,
            "pinned": len(self._pinned),
            "quarantined": len(self.quarantined),
        }
