"""Consistent-hash request routing by operator-plan fingerprint.

Requests are routed by their :attr:`repro.serve.api.SolveRequest.mesh_digest`
— the request-side proxy of the operator-plan fingerprint (it is the
key the artifact caches alias to the post-build fingerprint of
:func:`repro.core.plan.mesh_fingerprint`).  Routing by discretization
identity is what makes a sharded fleet cache-efficient: every request
for the same carved mesh lands on the same shard, so that shard's L1
holds the mesh/operator artifacts exactly once fleet-wide (modulo
stolen work, which the shared second tier covers).

The ring is the classic construction: each shard owns ``vnodes``
pseudo-random points on a sha256 ring; a key routes to the first shard
point at or clockwise-after the key's own hash.  Everything is derived
from sha256 of stable strings — no RNG, no insertion-order dependence —
so any process that builds the same ring routes identically.  Removing
a shard (fail-over) only remaps the keyspace the dead shard owned;
every other key keeps its shard, which is why a kill does not
invalidate the survivors' caches.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(data: str) -> int:
    """64-bit ring position of a string."""
    return int.from_bytes(
        hashlib.sha256(data.encode()).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over named shards."""

    def __init__(self, shard_ids: list[str], vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: list[tuple[int, str]] = []
        self._ids: list[str] = []
        for sid in shard_ids:
            self.add(sid)

    @property
    def shard_ids(self) -> list[str]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, shard_id: str) -> None:
        if shard_id in self._ids:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._ids.append(shard_id)
        for v in range(self.vnodes):
            self._points.append((_point(f"{shard_id}#{v}"), shard_id))
        self._points.sort()

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._ids:
            raise ValueError(f"shard {shard_id!r} not on the ring")
        self._ids.remove(shard_id)
        self._points = [(p, s) for p, s in self._points if s != shard_id]

    def route(self, key: str, *, recorder=None, tick: int = 0,
              rid: str = "") -> str:
        """The shard owning ``key`` (first point clockwise of its hash).

        When a flight recorder is passed, the routing decision is
        logged as a ``route`` event carrying the causal request id —
        the first hop of every request's timeline."""
        if not self._points:
            raise RuntimeError("cannot route on an empty ring")
        h = _point(key)
        i = bisect.bisect_right(self._points, (h, ""))
        if i == len(self._points):
            i = 0
        owner = self._points[i][1]
        if recorder is not None:
            recorder.emit("route", rid or key, tick=tick, shard=owner,
                          key=key)
        return owner

    def successors(self, key: str) -> list[str]:
        """Every live shard in ring order starting at ``key``'s owner.

        The fall-back order for breaker-aware routing and hedged
        re-dispatch: element 0 is :meth:`route`'s answer, element 1 is
        the shard that would inherit the key if the owner left the
        ring, and so on — the same deterministic construction, so any
        process that builds the same ring walks identically.
        """
        if not self._points:
            return []
        h = _point(key)
        i = bisect.bisect_right(self._points, (h, ""))
        out: list[str] = []
        n = len(self._points)
        for k in range(n):
            sid = self._points[(i + k) % n][1]
            if sid not in out:
                out.append(sid)
                if len(out) == len(self._ids):
                    break
        return out

    def ownership(self, keys: list[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (diagnostics/tests)."""
        out = {sid: 0 for sid in self._ids}
        for k in keys:
            out[self.route(k)] += 1
        return out
