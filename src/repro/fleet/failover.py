"""Replica fail-over: checkpointed shard state, bit-identical replay.

The durability model mirrors a real serving fleet:

* **Responses are durable at completion** — a batch dispatched before
  the kill was already delivered; the failure can't unsend it.
* **Queued work is recoverable** — each shard periodically seals a
  :mod:`repro.resilience` ``state.v1`` checkpoint (the same
  canonical-JSON + sha256 machinery as the solver ``ckpt.v1`` files)
  of its pending items, and the fleet keeps append-only per-shard logs
  of deliveries, migrations-out and completions.

When a shard dies, :func:`rebuild_queue` reconstructs the exact
kill-time queue from ``checkpoint.pending`` plus the log tails past
the checkpoint's watermarks::

    queue = ckpt.pending
          + arrivals[arrivals_seen:]        (deliveries + adopted steals)
          - stolen_away[steals_seen:]       (migrated to another shard)
          - completed[completed_seen:]      (already durable)

A replacement shard hosted on a survivor adopts that queue with the
original submission ticks and retry counts.  Because the scheduler's
dispatch order and batch grouping are keyed by (priority, digest) —
never by arrival interleaving or the clock — the replacement forms the
*same batches* the dead shard would have, and the block solves are
bit-deterministic, so every replayed response carries the identical
solution digest: the fleet's canonical digest over a killed run equals
the failure-free run's, which is what the recovery tests and the
scaling bench assert.  (The certified invariant assumes no deadlines
on replayed requests and stealing quiesced at the kill; both hold in
the demo/bench kill scenarios.)

Checkpoints bound the replay log scan but are not load-bearing for
correctness: with no checkpoint yet written, the rebuild degrades to a
full log replay and produces the same queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..obs import add as obs_add
from ..resilience.checkpoint import (
    latest_checkpoint,
    load_state_checkpoint,
    save_state_checkpoint,
)
from ..serve.api import SolveRequest
from ..serve.scheduler import PendingItem

__all__ = ["ShardLog", "FailoverEvent", "ShardCheckpointer",
           "item_doc", "rebuild_queue"]


def item_doc(item: PendingItem) -> dict:
    """Canonical JSON document of one queued item (checkpoint/replay
    currency): the request's own document plus the serving state that
    must survive migration."""
    return {
        "request": item.request.to_doc(),
        "digest": item.digest,
        "t_submit": int(item.t_submit),
        "retries": int(item.retries),
        "instance": int(item.instance),
        "hedge": bool(item.hedge),
    }


def _arrival_doc(tick: int, request: SolveRequest, retries: int,
                 instance: int, hedge: bool) -> dict:
    return {
        "request": request.to_doc(),
        "digest": request.digest,
        "t_submit": int(tick),
        "retries": int(retries),
        "instance": int(instance),
        "hedge": bool(hedge),
    }


@dataclass
class ShardLog:
    """Fleet-side append-only bookkeeping for one shard slot.

    The fleet (not the shard) owns these: they survive the shard's
    death.  ``arrivals`` holds every delivery *and* every adopted
    stolen item; ``stolen_away`` / ``completed`` hold request digests
    in event order.  Checkpoint watermarks are plain list lengths.
    """

    arrivals: list[dict] = field(default_factory=list)
    stolen_away: list[str] = field(default_factory=list)
    completed: list[str] = field(default_factory=list)

    def record_arrival(self, tick: int, request: SolveRequest,
                       retries: int = 0, *, instance: int = -1,
                       hedge: bool = False) -> None:
        self.arrivals.append(
            _arrival_doc(tick, request, retries, instance, hedge)
        )

    def watermarks(self) -> dict:
        return {
            "arrivals_seen": len(self.arrivals),
            "steals_seen": len(self.stolen_away),
            "completed_seen": len(self.completed),
        }


@dataclass(frozen=True)
class FailoverEvent:
    """One executed fail-over (fleet log entry)."""

    tick: int
    shard_id: str
    host: str | None
    replayed: int
    ckpt_step: int | None

    def describe(self) -> str:
        src = (f"checkpoint step {self.ckpt_step} + log tail"
               if self.ckpt_step is not None else "full log replay")
        host = f"on {self.host}" if self.host else "on a cold standby"
        return (f"shard {self.shard_id} killed at tick {self.tick}: "
                f"{self.replayed} in-flight requests replayed {host} "
                f"({src})")


class ShardCheckpointer:
    """Periodic ``state.v1`` snapshots of one shard's pending queue.

    A checkpoint is taken every ``interval`` completed responses (the
    natural event boundary: batches are atomic).  With ``directory``
    set, snapshots are sealed to disk through
    :func:`repro.resilience.checkpoint.save_state_checkpoint` with
    ``keep_last`` retention and restored — integrity-checked — through
    :func:`load_state_checkpoint`; without it the latest state is held
    in memory only (same rebuild semantics, no persistence).
    """

    def __init__(self, shard_id: str, directory=None, *,
                 interval: int = 8, keep_last: int = 3):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.shard_id = shard_id
        self.directory = Path(directory) if directory else None
        self.interval = int(interval)
        self.keep_last = int(keep_last)
        self.step = 0
        self._since = 0
        self._memory: dict | None = None

    def _state(self, shard, log: ShardLog) -> dict:
        return {
            "shard": self.shard_id,
            "clock": int(shard.clock.now),
            "pending": [item_doc(it) for it in sorted(
                shard.scheduler.pending, key=lambda it: it.sort_key)],
            **log.watermarks(),
        }

    def on_response(self, shard, log: ShardLog) -> bool:
        """Count one completion; checkpoint when the interval is due."""
        self._since += 1
        if self._since < self.interval:
            return False
        self.checkpoint(shard, log)
        return True

    def checkpoint(self, shard, log: ShardLog) -> None:
        self._since = 0
        self.step += 1
        state = self._state(shard, log)
        if self.directory is not None:
            save_state_checkpoint(
                self.directory / f"{self.shard_id}_step{self.step}.ckpt.json",
                name=self.shard_id, step=self.step, state=state,
                keep_last=self.keep_last,
            )
        else:
            self._memory = state
        obs_add("fleet.ckpt.writes", 1)

    def latest_state(self) -> dict | None:
        """The newest surviving snapshot (integrity-checked when read
        from disk); ``None`` before the first checkpoint."""
        if self.directory is not None:
            path = latest_checkpoint(self.directory, name=self.shard_id)
            if path is None:
                return None
            return load_state_checkpoint(path).state
        return self._memory

    def reset_after_failover(self) -> None:
        """Restart the completion counter for the replacement shard."""
        self._since = 0


def rebuild_queue(ckpt_state: dict | None, log: ShardLog, *,
                  recorder=None, tick: int = 0,
                  shard: str | None = None) -> list[dict]:
    """Reconstruct a dead shard's kill-time queue as item documents.

    Multiset semantics: each digest in the stolen/completed log tails
    cancels exactly one matching queued document (duplicate requests
    differ at most in ``t_submit``, which is timing metadata — the
    canonical fleet digest never sees it).

    With a flight recorder attached, each recovered document is logged
    as a ``failover_replay`` event carrying the request's causal id —
    the hop that explains why a surviving request's timeline continues
    on a replacement shard.
    """
    if ckpt_state is None:
        pending = []
        arrivals_seen = steals_seen = completed_seen = 0
    else:
        pending = [dict(d) for d in ckpt_state["pending"]]
        arrivals_seen = int(ckpt_state["arrivals_seen"])
        steals_seen = int(ckpt_state["steals_seen"])
        completed_seen = int(ckpt_state["completed_seen"])
    pending.extend(dict(d) for d in log.arrivals[arrivals_seen:])
    gone: dict[str, int] = {}
    for digest in log.stolen_away[steals_seen:]:
        gone[digest] = gone.get(digest, 0) + 1
    for digest in log.completed[completed_seen:]:
        gone[digest] = gone.get(digest, 0) + 1
    out: list[dict] = []
    for doc in pending:
        d = doc["digest"]
        if gone.get(d, 0) > 0:
            gone[d] -= 1
            continue
        out.append(doc)
    leftover = {d: c for d, c in gone.items() if c > 0}
    if leftover:
        raise RuntimeError(
            f"shard log inconsistency: {sum(leftover.values())} "
            f"completions/steals with no matching queued item"
        )
    if recorder is not None:
        for doc in out:
            recorder.emit(
                "failover_replay", doc["digest"], tick=tick, shard=shard,
                t_submit=doc["t_submit"], retries=doc["retries"],
            )
    return out
