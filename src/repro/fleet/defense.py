"""Fleet defense layers: hedged requests and per-shard circuit breakers.

Tail latency in a sharded fleet is dominated by stragglers: one slow or
stalled shard holds every request routed to it hostage while the rest
of the fleet idles.  Two classic defenses, both deterministic on the
virtual clock:

**Hedged requests** (:class:`HedgePolicy`).  When a delivery has been
in flight longer than the *hedge delay*, the fleet speculatively
re-dispatches a copy of it to the ring successor shard.  First
completion wins; the guard in :class:`repro.fleet.service.FleetService`
suppresses the loser and cancels still-queued copies, so completion
stays exactly-once.  The delay is derived from observed fleet behavior:
until ``min_samples`` completions it is the conservative
``initial_delay``; afterwards it is
``max(min_delay, multiplier * (p95 wait + p95 service))`` over the
fleet's deterministic latency histograms — the standard
"hedge above the p95" recipe, computed from virtual ticks.

**Per-shard circuit breakers** (:class:`BreakerPolicy`,
:class:`CircuitBreaker`).  Each shard has a closed → open → half-open
state machine over a sliding window of completion outcomes.  A shard
whose windowed failure rate reaches ``failure_threshold`` opens its
breaker: the router walks past it to the next ring successor, and the
work-stealing planner stops treating it as an idle target.  After
``cooldown`` virtual ticks the breaker goes half-open and admits
exactly **one** probe request; the probe's outcome closes the breaker
or re-opens it for another cooldown.  All transitions are emitted to
the flight recorder (``breaker_open`` / ``breaker_half_open`` /
``breaker_close``), so SLO health snapshots can count them.

Everything here is a pure function of the event history — no wall
clock, no RNG — so fleets with breakers and hedging replay
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HedgePolicy", "BreakerPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class HedgePolicy:
    """Knobs for speculative re-dispatch of slow deliveries.

    ``initial_delay`` applies until ``min_samples`` fleet completions
    have been observed (the histograms are too thin to trust earlier);
    after that the delay tracks the observed p95 wait + service time,
    scaled by ``multiplier`` and floored at ``min_delay``.  A hedged
    copy becomes eligible on the successor ``transfer_latency`` ticks
    after the hedge fires (the migration is not free), and each
    delivery is hedged at most ``max_hedges`` times.
    """

    min_delay: int = 2_000
    multiplier: float = 3.0
    min_samples: int = 8
    initial_delay: int = 50_000
    transfer_latency: int = 100
    max_hedges: int = 1


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs for the per-shard closed/open/half-open breaker."""

    #: sliding window length (completion outcomes) for the failure rate
    window: int = 16
    #: open when ``failures / window_len >= failure_threshold``
    failure_threshold: float = 0.5
    #: never open before this many outcomes are in the window
    min_samples: int = 8
    #: virtual ticks an open breaker waits before going half-open
    cooldown: int = 20_000


class CircuitBreaker:
    """Deterministic per-shard breaker over completion outcomes.

    The owning fleet calls :meth:`allow` at every routing decision
    (arrival delivery and hedge-target selection) and :meth:`record`
    with every solve outcome attributed to the shard.  State
    transitions emit typed flight-recorder events when a recorder is
    attached.
    """

    def __init__(self, shard_id: str, policy: BreakerPolicy | None = None,
                 recorder=None):
        self.shard_id = shard_id
        self.policy = policy or BreakerPolicy()
        self.recorder = recorder
        #: "closed" | "open" | "half_open"
        self.state = "closed"
        self._window: list[bool] = []
        self._opened_at = 0
        self._probe_inflight = False
        #: lifetime count of closed→open (and re-open) transitions
        self.opens = 0

    def _emit(self, kind: str, tick: int, **attrs) -> None:
        if self.recorder is not None:
            self.recorder.emit(kind, tick=tick, shard=self.shard_id, **attrs)

    def allow(self, tick: int) -> bool:
        """May the router send work to this shard at ``tick``?

        An open breaker whose cooldown elapsed transitions to
        half-open here and admits exactly one probe; further calls
        return False until :meth:`record` resolves the probe.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if tick < self._opened_at + self.policy.cooldown:
                return False
            self.state = "half_open"
            self._probe_inflight = False
            self._emit("breaker_half_open", tick)
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record(self, ok: bool, tick: int) -> None:
        """Fold one completion outcome on this shard into the breaker."""
        if self.state == "half_open":
            # whatever completes first on a half-open shard is the
            # probe's verdict: the shard demonstrably served (or
            # failed) work
            self._probe_inflight = False
            if ok:
                self.state = "closed"
                self._window = []
                self._emit("breaker_close", tick)
            else:
                self.state = "open"
                self._opened_at = tick
                self.opens += 1
                self._emit("breaker_open", tick, probe=True)
            return
        self._window.append(bool(ok))
        if len(self._window) > self.policy.window:
            del self._window[: len(self._window) - self.policy.window]
        if self.state != "closed":
            return
        if len(self._window) < self.policy.min_samples:
            return
        failures = sum(1 for o in self._window if not o)
        if failures / len(self._window) >= self.policy.failure_threshold:
            self.state = "open"
            self._opened_at = tick
            self.opens += 1
            self._window = []
            self._emit("breaker_open", tick, failures=failures)
