"""repro.fleet — deterministic sharded serving fleet.

Scales :mod:`repro.serve` from one service to N shards behind a
consistent-hash ring keyed by operator-plan fingerprint, with a shared
second-tier artifact cache (hit-rate-driven promote/demote), cross-
shard work stealing when queues spike, and checkpointed replica
fail-over that replays a killed shard's in-flight requests
bit-identically on a survivor.  The whole fleet — faults, steals and
all — runs as a discrete-event simulation on integer virtual clocks
and is certified by stream digests.
"""

from .defense import BreakerPolicy, CircuitBreaker, HedgePolicy
from .failover import (
    FailoverEvent,
    ShardCheckpointer,
    ShardLog,
    item_doc,
    rebuild_queue,
)
from .router import HashRing
from .service import FleetService, FleetShard, core_digest, core_doc
from .steal import StealEvent, StealPlan, plan_steals
from .tiercache import TierCache
from .workload import Arrival, mesh_catalog, synthetic_workload

__all__ = [
    "HashRing",
    "TierCache",
    "HedgePolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "StealPlan",
    "StealEvent",
    "plan_steals",
    "ShardLog",
    "ShardCheckpointer",
    "FailoverEvent",
    "item_doc",
    "rebuild_queue",
    "Arrival",
    "mesh_catalog",
    "synthetic_workload",
    "FleetShard",
    "FleetService",
    "core_doc",
    "core_digest",
    "demo_fleet",
]


def demo_fleet(n_shards: int = 4, *, seed: int = 0, n_requests: int = 60,
               stealing: bool = True, ckpt_dir=None,
               kill: tuple[int, str] | None = None,
               recorder=None) -> FleetService:
    """Build and run the canonical demo fleet (CLI / CI smoke entry).

    Small meshes, a zipf-skewed bursty workload, and parameters tuned
    so stealing actually fires.  Returns the finished
    :class:`FleetService` for digest/stats inspection.  Pass a
    :class:`repro.obs.EventLog` as ``recorder`` to capture the run's
    full causal event stream.
    """
    fleet = FleetService(
        n_shards, cache_bytes=8 << 20, steal_threshold=4,
        steal_latency=100, stealing=stealing, ckpt_dir=ckpt_dir,
        ckpt_interval=6, recorder=recorder,
    )
    fleet.run(synthetic_workload(n_requests, seed=seed), kill=kill)
    return fleet
