"""Cross-shard work stealing: deterministic migration planning.

Consistent-hash routing by discretization identity is cache-optimal
but load-oblivious: a zipf-popular mesh sends a disproportionate share
of traffic to one shard while its neighbours idle.  Stealing is the
corrective: whenever a shard's queue depth exceeds ``threshold`` and
another shard is idle, up to half the victim's backlog migrates.

Everything is deterministic given the fleet state:

* :func:`plan_steals` pairs the deepest overloaded shard with the
  idle shard of lowest id, repeatedly, until no shard is over
  threshold or no idle shard remains (ties broken by shard id);
* the items taken are the *tail* of the victim's dispatch order
  (see :meth:`repro.serve.scheduler.Scheduler.steal_items`), so the
  batch about to dispatch on the victim is never broken up;
* a stolen item keeps its submission tick and retry count, and becomes
  eligible on the thief ``latency`` virtual ticks after the steal (the
  migration is not free).

Stolen items usually share a batch key (they are the popular mesh's
backlog), so they batch on the thief exactly as they would have on the
victim — and the thief finds the mesh artifacts in the shared second
tier, paying a fetch instead of a rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StealPlan", "StealEvent", "plan_steals"]


@dataclass(frozen=True)
class StealPlan:
    """One planned migration: move ``n`` items from ``src`` to ``dst``."""

    src: str
    dst: str
    n: int


@dataclass(frozen=True)
class StealEvent:
    """One executed migration (fleet log entry)."""

    tick: int
    src: str
    dst: str
    digests: tuple[str, ...]

    @property
    def n(self) -> int:
        return len(self.digests)


def plan_steals(depths: dict[str, int], *, threshold: int,
                capacity: dict[str, int] | None = None,
                max_items: int | None = None, exclude=None,
                recorder=None, tick: int = 0) -> list[StealPlan]:
    """Plan migrations for the current fleet queue depths.

    ``depths`` maps shard id → pending count for *alive* shards.
    A shard is overloaded when ``depth > threshold`` and a target when
    ``depth == 0``.  Each plan moves ``min(depth // 2, max_items,
    capacity[dst])`` items; depths are updated between pairings so one
    deep victim can feed several idle shards deterministically.

    ``exclude`` removes shards from the *thief* pool — the fleet passes
    its open-circuit-breaker set, so an unhealthy shard that happens to
    have an empty queue (because nothing routes to it) never receives
    migrated work.

    With a flight recorder attached, each victim/thief pairing is
    logged as a ``steal_plan`` event (the per-item migrations become
    ``steal`` events at execution time in the fleet loop).
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    work = dict(depths)
    free = dict(capacity) if capacity else None
    banned = frozenset(exclude or ())
    idle = sorted(sid for sid, d in work.items()
                  if d == 0 and sid not in banned)
    plans: list[StealPlan] = []
    for dst in idle:
        over = [(d, sid) for sid, d in work.items() if d > threshold]
        if not over:
            break
        depth, src = sorted(over, key=lambda t: (-t[0], t[1]))[0]
        n = depth // 2
        if max_items is not None:
            n = min(n, max_items)
        if free is not None:
            n = min(n, free.get(dst, n))
        if n < 1:
            continue
        plans.append(StealPlan(src=src, dst=dst, n=n))
        if recorder is not None:
            recorder.emit("steal_plan", tick=tick, shard=src, dst=dst, n=n)
        work[src] -= n
        work[dst] += n
        if free is not None:
            free[dst] = free.get(dst, n) - n
    return plans
