"""Seeded synthetic fleet workloads: zipf popularity, bursty arrivals.

A stand-in for millions-of-users traffic against the solver fleet,
entirely on the virtual clock:

* **Mesh popularity is zipf-distributed.**  A catalog of ``pool``
  distinct discretizations (carved disks of varying radius and depth,
  a channel) is ranked; request ``i`` draws its template with
  probability ∝ 1/(rank+1)^s.  A handful of meshes dominate —
  exactly the regime where consistent-hash routing hot-spots a shard
  and the two-tier cache and work stealing earn their keep.

* **Arrivals are a bursty Poisson process.**  Interarrival gaps are
  exponential draws on the virtual clock; a two-state modulation
  (quiet / burst) multiplies the rate by ``mean_gap / burst_gap``
  during bursts, which arrive with probability ``burst_prob`` per
  request and last ``burst_len`` requests.  Queue depths therefore
  spike — the work-stealing trigger — instead of trickling uniformly.

Everything is drawn from one ``numpy`` generator seeded by ``seed``:
the same ``(n, seed, …)`` always produces byte-identical arrivals
(asserted by the determinism tests), which is what lets the whole
fleet simulation — faults included — be certified by stream digests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serve.api import SolveRequest

__all__ = ["Arrival", "mesh_catalog", "synthetic_workload"]


@dataclass(frozen=True)
class Arrival:
    """One request and the virtual tick it reaches the fleet."""

    tick: int
    request: SolveRequest


def mesh_catalog(pool: int = 6, *, base_level: int = 2,
                 boundary_level: int = 3) -> list[dict]:
    """``pool`` distinct request templates in popularity rank order.

    Rank 0 (the most popular mesh under zipf) is the paper's carved
    disk; later ranks vary the radius/centre (distinct operator-plan
    fingerprints), alternate the PDE kind, and include one channel
    transport workload.  All templates are shallow (small meshes) so
    fleet tests and benches stay fast.
    """
    if pool < 1:
        raise ValueError("pool must be >= 1")
    channel = {"shape": "box", "lo": (0.0, 0.0), "hi": (4.0, 1.0),
               "domain_hi": (4.0, 4.0), "scale": 4.0}
    out: list[dict] = []
    for i in range(pool):
        if i % 5 == 3:
            out.append(dict(
                geometry=channel, pde="transport",
                velocity=(1.0, 0.0), kappa=0.05, dt=0.2,
                steps=1 + (i // 5) % 2,
                base_level=base_level, boundary_level=boundary_level,
            ))
            continue
        geom = {
            "shape": "sphere",
            "center": (0.5, 0.5),
            "radius": round(0.3 - 0.015 * i, 6),
        }
        out.append(dict(
            geometry=geom, pde="sbm" if i % 5 == 2 else "poisson",
            base_level=base_level, boundary_level=boundary_level,
        ))
    return out


def synthetic_workload(n: int = 80, seed: int = 0, *, pool: int = 6,
                       zipf_s: float = 1.1, mean_gap: int = 400,
                       burst_gap: int = 40, burst_len: int = 8,
                       burst_prob: float = 0.15, base_level: int = 2,
                       boundary_level: int = 3) -> list[Arrival]:
    """Generate ``n`` seeded arrivals (sorted by tick).

    ``mean_gap`` / ``burst_gap`` are mean interarrival gaps in virtual
    ticks for the quiet and burst states; ``zipf_s`` is the popularity
    exponent (larger → more skew toward the rank-0 mesh).
    """
    templates = mesh_catalog(pool, base_level=base_level,
                             boundary_level=boundary_level)
    weights = np.array([1.0 / (r + 1) ** zipf_s for r in range(pool)])
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    t = 0.0
    burst_left = 0
    arrivals: list[Arrival] = []
    for _ in range(n):
        if burst_left == 0 and rng.random() < burst_prob:
            burst_left = burst_len
        gap = burst_gap if burst_left > 0 else mean_gap
        burst_left = max(0, burst_left - 1)
        t += rng.exponential(gap)
        tmpl = templates[int(rng.choice(pool, p=weights))]
        req = SolveRequest(
            f=round(float(rng.uniform(0.5, 2.0)), 6),
            priority=int(rng.integers(0, 3)),
            **tmpl,
        )
        arrivals.append(Arrival(tick=int(round(t)), request=req))
    return arrivals
