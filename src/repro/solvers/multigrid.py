"""Geometric multigrid on incomplete-octree hierarchies.

The paper's lineage (Dendro, [51]) is a multigrid code, and §3.6
motivates fast assembly by preconditioner construction; this module
supplies the natural octree preconditioner: a V-cycle over a hierarchy
of carved meshes.

The hierarchy uses *Galerkin* coarse operators A_c = Pᵀ A_f P, with the
prolongation P built geometrically: every fine node is located inside a
coarse leaf (the same perturbed-corner point-location the hanging-node
donor search uses) and its row holds the coarse element's shape
functions — composed with the coarse hanging-node interpolation, so
conformity is preserved across levels.  Galerkin coarsening makes the
cycle robust even though carved hierarchies are not perfectly nested
(the voxelated boundary moves with the level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.mesh import IncompleteMesh
from ..core.octant import max_level
from ..core.plan import operator_context
from ..fem.basis import LagrangeBasis, local_node_offsets

__all__ = ["prolongation", "MultigridPoisson"]


def _locate_leaves(mesh: IncompleteMesh, pts_2p: np.ndarray) -> np.ndarray:
    """Containing leaf index for integer node coords in 2p-scaled units.

    Points on cell boundaries resolve to any containing leaf via
    corner-perturbed queries (value continuity makes the choice
    immaterial for conforming fields).  Returns -1 where no retained
    leaf contains the point.
    """
    dim = mesh.dim
    m = max_level(dim)
    p = mesh.p
    # SFC keys and block ends come from the mesh's cached traversal plan
    plan = operator_context(mesh).traversal
    oracle, keys, ends = plan.oracle, plan.keys, plan.ends
    dirs = 2 * local_node_offsets(1, dim) - 1
    Q = 2 * pts_2p[:, None, :] + dirs[None, :, :]  # 4p-scaled units
    extent4 = 4 * p * (1 << m)
    in_dom = np.all((Q > 0) & (Q < extent4), axis=2)
    cell = np.clip(Q // (4 * p), 0, (1 << m) - 1).astype(np.uint32)
    ck = oracle.keys_from_coords(cell.reshape(-1, dim), dim)
    idx = np.searchsorted(keys, ck, side="right") - 1
    idxc = np.clip(idx, 0, len(keys) - 1)
    ok = (idx >= 0) & (ck >= keys[idxc]) & (ck < ends[idxc])
    ok &= in_dom.reshape(-1)
    cand = np.where(ok, idxc, -1).reshape(len(pts_2p), -1)
    out = np.full(len(pts_2p), -1, np.int64)
    for c in range(cand.shape[1]):
        out = np.where(out < 0, cand[:, c], out)
    return out


def prolongation(
    fine: IncompleteMesh, coarse: IncompleteMesh
) -> sp.csr_matrix:
    """Sparse P mapping coarse DOF vectors to fine DOF vectors."""
    if fine.dim != coarse.dim or fine.p != coarse.p:
        raise ValueError("meshes must share dimension and order")
    dim, p = fine.dim, fine.p
    basis = LagrangeBasis(p, dim)
    # fine node coordinates in the coarse mesh's 2p-units (identical
    # integer lattice: both meshes share max_level scaling)
    pts = fine.nodes.coords
    leaf = _locate_leaves(coarse, pts)
    missing = leaf < 0
    if missing.any():
        # voxelated boundaries recede with coarsening: a fine boundary
        # node can fall outside the coarse mesh — snap it to the
        # nearest retained coarse leaf centre (injection fallback)
        centers = coarse.element_centers()
        fpts = fine.nodes.physical_coords()[missing]
        from scipy.spatial import cKDTree

        _, nearest = cKDTree(centers).query(fpts)
        leaf = leaf.copy()
        leaf[missing] = nearest
    a = coarse.leaves.anchors.astype(np.int64)[leaf]
    s = coarse.leaves.sizes.astype(np.int64)[leaf]
    xi = (pts / (2 * p) - a) / s[:, None]
    xi = np.clip(xi, 0.0, 1.0)
    N = basis.eval(xi)  # (n_fine, npe)
    # compose with the coarse hanging interpolation via its gather rows
    g = operator_context(coarse).gather
    npe = coarse.npe
    rows, cols, vals = [], [], []
    indptr, indices, data = g.indptr, g.indices, g.data
    for i in range(len(pts)):
        e = leaf[i]
        r0, r1 = indptr[e * npe], indptr[(e + 1) * npe]
        slot = np.repeat(
            np.arange(npe), np.diff(indptr[e * npe : (e + 1) * npe + 1])
        )
        w = N[i, slot] * data[r0:r1]
        nz = w != 0.0
        cols.append(indices[r0:r1][nz])
        vals.append(w[nz])
        rows.append(np.full(int(nz.sum()), i, np.int64))
    P = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(fine.n_nodes, coarse.n_nodes),
    )
    P.sum_duplicates()
    return P


@dataclass(eq=False)
class _Level:
    A: sp.csr_matrix
    P: sp.csr_matrix | None  # to the next-coarser level
    dinv: np.ndarray


class MultigridPoisson:
    """V-cycle preconditioner/solver for carved-mesh Poisson operators.

    ``meshes`` are ordered fine → coarse; the fine operator is the
    BC-eliminated stiffness matrix (Dirichlet rows/columns identity),
    coarse operators are Galerkin products, the smoother is damped
    Jacobi, and the coarsest level is solved directly.
    """

    def __init__(
        self,
        meshes: list[IncompleteMesh],
        A_fine: sp.spmatrix,
        fixed: np.ndarray,
        nsmooth: int = 2,
        omega: float = 0.67,
        smoother: str = "jacobi",
    ):
        if len(meshes) < 2:
            raise ValueError("need at least two mesh levels")
        if smoother not in ("jacobi", "chebyshev"):
            raise ValueError("smoother must be 'jacobi' or 'chebyshev'")
        self.nsmooth = nsmooth
        self.omega = omega
        self.smoother = smoother
        self.levels: list[_Level] = []
        A = A_fine.tocsr()
        fixed_f = np.asarray(fixed, bool)
        for k in range(len(meshes) - 1):
            P = prolongation(meshes[k], meshes[k + 1])
            # keep boundary conditions out of the correction space:
            # zero P rows at fixed fine nodes
            keep = sp.diags((~fixed_f).astype(float))
            P = (keep @ P).tocsr()
            d = A.diagonal()
            self.levels.append(_Level(A, P, 1.0 / np.where(d != 0, d, 1.0)))
            A = (P.T @ A @ P).tocsr()
            # regularise coarse null rows (nodes outside the fine span)
            d = A.diagonal()
            null = d == 0
            if null.any():
                A = A + sp.diags(null.astype(float))
            fixed_f = np.zeros(A.shape[0], bool)
        self._coarse_lu = spla.splu(A.tocsc())
        d = A.diagonal()
        self.levels.append(_Level(A, None, 1.0 / np.where(d != 0, d, 1.0)))
        if self.smoother == "chebyshev":
            self._lmax = [self._estimate_lmax(lvl) for lvl in self.levels]

    def _estimate_lmax(self, lvl: _Level, iters: int = 12) -> float:
        """Power iteration on D⁻¹A for the Chebyshev interval."""
        rng = np.random.default_rng(0)
        v = rng.standard_normal(lvl.A.shape[0])
        lam = 1.0
        for _ in range(iters):
            w = lvl.dinv * (lvl.A @ v)
            lam = float(np.linalg.norm(w))
            if lam == 0.0:
                return 1.0
            v = w / lam
        return 1.1 * lam  # safety margin

    def _smooth(self, lvl: _Level, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.smoother == "chebyshev":
            k = self.levels.index(lvl)
            return self._smooth_chebyshev(lvl, x, b, self._lmax[k])
        for _ in range(self.nsmooth):
            x = x + self.omega * lvl.dinv * (b - lvl.A @ x)
        return x

    def _smooth_chebyshev(
        self, lvl: _Level, x: np.ndarray, b: np.ndarray, lmax: float
    ) -> np.ndarray:
        """Chebyshev polynomial smoothing on [lmax/4, lmax] (Adams et
        al. style), preconditioned by the diagonal."""
        lmin = lmax / 4.0
        theta = 0.5 * (lmax + lmin)
        delta = 0.5 * (lmax - lmin)
        sigma = theta / delta
        rho = 1.0 / sigma
        r = lvl.dinv * (b - lvl.A @ x)
        d = r / theta
        for _ in range(self.nsmooth):
            x = x + d
            r = lvl.dinv * (b - lvl.A @ x)
            rho_new = 1.0 / (2.0 * sigma - rho)
            d = rho_new * rho * d + 2.0 * rho_new / delta * r
            rho = rho_new
        return x

    def _vcycle(self, k: int, b: np.ndarray) -> np.ndarray:
        lvl = self.levels[k]
        if lvl.P is None:
            return self._coarse_lu.solve(b)
        x = self._smooth(lvl, np.zeros_like(b), b)
        r = b - lvl.A @ x
        xc = self._vcycle(k + 1, lvl.P.T @ r)
        x = x + lvl.P @ xc
        return self._smooth(lvl, x, b)

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """One V-cycle: the preconditioner interface for Krylov."""
        return self._vcycle(0, r)

    def solve(
        self, b: np.ndarray, rtol: float = 1e-8, max_cycles: int = 60
    ) -> tuple[np.ndarray, int, float]:
        """Stand-alone V-cycle iteration to tolerance."""
        x = np.zeros_like(b)
        bnorm = float(np.linalg.norm(b)) or 1.0
        A = self.levels[0].A
        for it in range(1, max_cycles + 1):
            x = x + self._vcycle(0, b - A @ x)
            res = float(np.linalg.norm(b - A @ x)) / bnorm
            if res < rtol:
                return x, it, res
        return x, max_cycles, res
