"""Linear/nonlinear solver substrate (the PETSc-equivalent layer)."""

from .condest import cond_dense, cond_spd_extremes, condest_1norm
from .krylov import KrylovResult, bicgstab, cg
from .multigrid import MultigridPoisson, prolongation
from .newton import NewtonResult, newton_ls
from .precond import BlockJacobi, JacobiPreconditioner, jacobi

__all__ = [
    "cg",
    "bicgstab",
    "KrylovResult",
    "jacobi",
    "JacobiPreconditioner",
    "BlockJacobi",
    "newton_ls",
    "MultigridPoisson",
    "prolongation",
    "NewtonResult",
    "cond_dense",
    "condest_1norm",
    "cond_spd_extremes",
]
