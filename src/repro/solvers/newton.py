"""Newton's method with backtracking line search (PETSc NEWTONLS role)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs import add as obs_add
from ..obs import span

__all__ = ["NewtonResult", "newton_ls"]


@dataclass
class NewtonResult:
    """Newton outcome with a structured termination reason.

    ``reason`` is one of ``"converged"``, ``"maxiter"``,
    ``"breakdown"`` (the line search could not produce a finite
    decreasing step within its retry budget) or ``"nonfinite"``
    (NaN/Inf in the residual or Newton direction).  ``converged`` is
    True **only** for ``reason == "converged"``.  ``retries`` counts
    the backoff restarts consumed from ``retry_budget``.
    """

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    reason: str = "maxiter"
    retries: int = 0


def newton_ls(
    residual: Callable[[np.ndarray], np.ndarray],
    solve_jacobian: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    rtol: float = 1e-6,
    atol: float = 1e-12,
    max_iter: int = 50,
    max_backtracks: int = 8,
    retry_budget: int = 0,
) -> NewtonResult:
    """Damped Newton: x ← x + λ δ with δ = −J(x)⁻¹ F(x).

    ``solve_jacobian(x, rhs)`` must return J(x)⁻¹ rhs.  The step is
    halved until the residual norm decreases (Armijo-free backtracking,
    the default PETSc ``bt`` behaviour in spirit).

    When the line search exhausts ``max_backtracks`` without a finite
    decreasing step and ``retry_budget > 0``, the iteration retries
    from the same iterate with the starting step cap λ halved
    (retry-with-backoff); once the budget is spent, the smallest step
    is accepted if finite (the legacy behaviour) and the search is
    declared a ``"breakdown"`` only if even that step is non-finite.
    Retries are published to :mod:`repro.obs` as
    ``resilience.newton.retries``.
    """
    with span("solver.newton") as osp:
        x = np.asarray(x0, float).copy()
        F = residual(x)
        norm0 = float(np.linalg.norm(F))
        norm = norm0
        tol = max(rtol * norm0, atol)
        it = 0
        retries = 0
        lam_cap = 1.0
        fail: str | None = None if np.isfinite(norm0) else "nonfinite"
        while fail is None and norm > tol and it < max_iter:
            delta = solve_jacobian(x, -F)
            if not np.all(np.isfinite(delta)):
                fail = "nonfinite"
                break
            lam = lam_cap
            found = False
            for _ in range(max_backtracks):
                x_try = x + lam * delta
                F_try = residual(x_try)
                n_try = float(np.linalg.norm(F_try))
                if np.isfinite(n_try) and n_try < norm:
                    found = True
                    break
                lam *= 0.5
            if not found:
                if retries < retry_budget:
                    # back off: restart the search from the same iterate
                    # with a halved step cap before giving up
                    retries += 1
                    lam_cap *= 0.5
                    obs_add("resilience.newton.retries", 1)
                    continue
                # budget spent: accept the smallest step if it is finite
                x_try = x + lam * delta
                F_try = residual(x_try)
                n_try = float(np.linalg.norm(F_try))
                if not np.isfinite(n_try):
                    fail = "breakdown"
                    break
            x, F, norm = x_try, F_try, n_try
            it += 1
        reason = fail or ("converged" if norm <= tol else "maxiter")
        osp.add("iterations", it)
        osp.set("reason", reason)
        if retries:
            osp.set("retries", retries)
    return NewtonResult(x, it, norm, reason == "converged", reason, retries)
