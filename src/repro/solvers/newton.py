"""Newton's method with backtracking line search (PETSc NEWTONLS role)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["NewtonResult", "newton_ls"]


@dataclass
class NewtonResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool


def newton_ls(
    residual: Callable[[np.ndarray], np.ndarray],
    solve_jacobian: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    rtol: float = 1e-6,
    atol: float = 1e-12,
    max_iter: int = 50,
    max_backtracks: int = 8,
) -> NewtonResult:
    """Damped Newton: x ← x + λ δ with δ = −J(x)⁻¹ F(x).

    ``solve_jacobian(x, rhs)`` must return J(x)⁻¹ rhs.  The step is
    halved until the residual norm decreases (Armijo-free backtracking,
    the default PETSc ``bt`` behaviour in spirit).
    """
    x = np.asarray(x0, float).copy()
    F = residual(x)
    norm0 = float(np.linalg.norm(F))
    norm = norm0
    tol = max(rtol * norm0, atol)
    it = 0
    while norm > tol and it < max_iter:
        delta = solve_jacobian(x, -F)
        lam = 1.0
        for _ in range(max_backtracks):
            x_try = x + lam * delta
            F_try = residual(x_try)
            n_try = float(np.linalg.norm(F_try))
            if n_try < norm:
                break
            lam *= 0.5
        else:
            # no decrease found: accept the smallest step and continue
            x_try = x + lam * delta
            F_try = residual(x_try)
            n_try = float(np.linalg.norm(F_try))
        x, F, norm = x_try, F_try, n_try
        it += 1
    return NewtonResult(x, it, norm, norm <= tol)
