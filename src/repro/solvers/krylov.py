"""Matrix-free Krylov solvers: CG and BiCGStab.

These mirror the PETSc KSP configurations the paper uses
(``-ksp_type bcgs`` with an additive-Schwarz preconditioner); both
accept any callable operator, so they compose with the matrix-free
traversal MATVEC as well as assembled matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..obs import span

__all__ = ["KrylovResult", "cg", "bicgstab"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class KrylovResult:
    """Solve outcome with a structured termination reason.

    ``reason`` is one of ``"converged"``, ``"maxiter"``,
    ``"breakdown"`` (a Krylov scalar vanished — the solver cannot
    continue) or ``"nonfinite"`` (NaN/Inf entered the recurrence).
    ``converged`` is True **only** for ``reason == "converged"``; a
    breakdown or non-finite exit never reports success, even if the
    last residual norm happened to sit below the tolerance.
    """

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    matvecs: int = 0
    reason: str = "maxiter"


def _as_op(A) -> Operator:
    if callable(A):
        return A
    if sp.issparse(A) or isinstance(A, np.ndarray):
        return lambda v: A @ v
    raise TypeError(f"cannot interpret {type(A)} as a linear operator")


def cg(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    M: Operator | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-12,
    maxiter: int | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> KrylovResult:
    """Preconditioned conjugate gradients for SPD operators.

    ``callback(it, rnorm)`` is invoked after every iteration; the
    per-iteration residual history is also attached to the
    ``solver.cg`` trace span when :mod:`repro.obs` is enabled.
    """
    with span("solver.cg") as osp:
        op = _as_op(A)
        n = len(b)
        maxiter = maxiter or 10 * n
        x = np.zeros(n) if x0 is None else x0.astype(float).copy()
        r = b - op(x)
        nmv = 1
        z = M(r) if M else r
        p = z.copy()
        rz = float(r @ z)
        bnorm = float(np.linalg.norm(b)) or 1.0
        tol = max(rtol * bnorm, atol)
        rnorm = float(np.linalg.norm(r))
        residuals = [rnorm]
        it = 0
        fail: str | None = None if np.isfinite(rnorm) else "nonfinite"
        while fail is None and rnorm > tol and it < maxiter:
            with span("solver.iteration", merge=True) as isp:
                Ap = op(p)
                nmv += 1
                pAp = float(p @ Ap)
                if not np.isfinite(pAp):
                    fail = "nonfinite"
                    break
                if pAp == 0.0:
                    fail = "breakdown"
                    break
                alpha = rz / pAp
                x += alpha * p
                r -= alpha * Ap
                rnorm = float(np.linalg.norm(r))
                isp.add("matvecs", 1)
            it += 1
            residuals.append(rnorm)
            if callback is not None:
                callback(it, rnorm)
            if not np.isfinite(rnorm):
                fail = "nonfinite"
                break
            if rnorm <= tol:
                break
            z = M(r) if M else r
            rz_new = float(r @ z)
            p = z + (rz_new / rz) * p
            rz = rz_new
        reason = fail or ("converged" if rnorm <= tol else "maxiter")
        osp.add("iterations", it)
        osp.add("matvecs", nmv)
        osp.set("residual_history", residuals)
        osp.set("reason", reason)
    return KrylovResult(x, it, rnorm, reason == "converged", nmv, reason)


def bicgstab(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    M: Operator | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-12,
    maxiter: int | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> KrylovResult:
    """Preconditioned BiCGStab for general (nonsymmetric) operators.

    ``callback(it, rnorm)`` is invoked after every iteration; the
    per-iteration residual history is also attached to the
    ``solver.bicgstab`` trace span when :mod:`repro.obs` is enabled.
    """
    with span("solver.bicgstab") as osp:
        op = _as_op(A)
        n = len(b)
        maxiter = maxiter or 10 * n
        x = np.zeros(n) if x0 is None else x0.astype(float).copy()
        r = b - op(x)
        nmv = 1
        r_hat = r.copy()
        rho = alpha = omega = 1.0
        v = np.zeros(n)
        p = np.zeros(n)
        bnorm = float(np.linalg.norm(b)) or 1.0
        tol = max(rtol * bnorm, atol)
        rnorm = float(np.linalg.norm(r))
        residuals = [rnorm]
        it = 0
        fail: str | None = None if np.isfinite(rnorm) else "nonfinite"
        while fail is None and rnorm > tol and it < maxiter:
            with span("solver.iteration", merge=True) as isp:
                rho_new = float(r_hat @ r)
                if not np.isfinite(rho_new):
                    fail = "nonfinite"
                    break
                if rho_new == 0.0:
                    fail = "breakdown"  # Lanczos breakdown: ⟨r̂, r⟩ = 0
                    break
                if it == 0:
                    p = r.copy()
                else:
                    beta = (rho_new / rho) * (alpha / omega)
                    p = r + beta * (p - omega * v)
                phat = M(p) if M else p
                v = op(phat)
                nmv += 1
                isp.add("matvecs", 1)
                denom = float(r_hat @ v)
                if not np.isfinite(denom):
                    fail = "nonfinite"
                    break
                if denom == 0.0:
                    fail = "breakdown"  # pivot breakdown: ⟨r̂, Ap̂⟩ = 0
                    break
                alpha = rho_new / denom
                s = r - alpha * v
                if np.linalg.norm(s) <= tol:
                    x += alpha * phat
                    r = s
                    rnorm = float(np.linalg.norm(r))
                    it += 1
                    residuals.append(rnorm)
                    if callback is not None:
                        callback(it, rnorm)
                    break
                shat = M(s) if M else s
                t = op(shat)
                nmv += 1
                isp.add("matvecs", 1)
                tt = float(t @ t)
                omega = float(t @ s) / tt if tt > 0 else 0.0
                x += alpha * phat + omega * shat
                r = s - omega * t
                rho = rho_new
                rnorm = float(np.linalg.norm(r))
            it += 1
            residuals.append(rnorm)
            if callback is not None:
                callback(it, rnorm)
            if not np.isfinite(rnorm):
                fail = "nonfinite"
                break
            if omega == 0.0:
                # stabiliser breakdown — terminal unless already converged
                if rnorm > tol:
                    fail = "breakdown"
                break
        reason = fail or ("converged" if rnorm <= tol else "maxiter")
        osp.add("iterations", it)
        osp.add("matvecs", nmv)
        osp.set("residual_history", residuals)
        osp.set("reason", reason)
    return KrylovResult(x, it, rnorm, reason == "converged", nmv, reason)
