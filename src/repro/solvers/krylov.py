"""Matrix-free Krylov solvers: CG and BiCGStab.

These mirror the PETSc KSP configurations the paper uses
(``-ksp_type bcgs`` with an additive-Schwarz preconditioner); both
accept any callable operator, so they compose with the matrix-free
traversal MATVEC as well as assembled matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..kernels import api as kernels
from ..obs import span

__all__ = ["KrylovResult", "cg", "bicgstab"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class KrylovResult:
    """Solve outcome with a structured termination reason.

    ``reason`` is one of ``"converged"``, ``"maxiter"``,
    ``"breakdown"`` (a Krylov scalar vanished — the solver cannot
    continue) or ``"nonfinite"`` (NaN/Inf entered the recurrence).
    ``converged`` is True **only** for ``reason == "converged"``; a
    breakdown or non-finite exit never reports success, even if the
    last residual norm happened to sit below the tolerance.

    For a multi-RHS block solve (``b`` of shape ``(n, k)``), ``x`` is
    ``(n, k)``, the scalar fields aggregate over columns (worst
    residual, total iterations, all-columns ``converged``) and the
    per-column outcome is carried in ``col_iterations`` /
    ``col_residuals`` / ``col_reasons``.
    """

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    matvecs: int = 0
    reason: str = "maxiter"
    col_iterations: np.ndarray | None = None
    col_residuals: np.ndarray | None = None
    col_reasons: tuple[str, ...] | None = None


def _as_op(A) -> Operator:
    if callable(A):
        return A
    if sp.issparse(A) or isinstance(A, np.ndarray):
        return lambda v: A @ v
    raise TypeError(f"cannot interpret {type(A)} as a linear operator")


def _apply_columns(M: Operator, R: np.ndarray) -> np.ndarray:
    """Apply a single-vector preconditioner column-by-column."""
    out = np.empty_like(R)
    for j in range(R.shape[1]):
        out[:, j] = M(R[:, j])
    return out


def _col_dots(U: np.ndarray, V: np.ndarray) -> np.ndarray:
    """Per-column inner products ⟨u_j, v_j⟩ of two (n, k) blocks."""
    return np.einsum("ij,ij->j", U, V)


def _cg_block(
    A,
    B: np.ndarray,
    x0: np.ndarray | None,
    M: Operator | None,
    rtol: float,
    atol: float,
    maxiter: int | None,
    callback: Callable[[int, float], None] | None,
) -> KrylovResult:
    """Multi-RHS CG: k independent recurrences advanced in lockstep.

    Each column carries its own ``alpha``/``beta`` scalars, so the
    iterates are mathematically identical to k separate single-RHS
    solves — but every iteration applies the operator to the whole
    ``(n, k)`` block at once (one SpMM / one traversal instead of k
    SpMVs), which is what makes fingerprint-grouped request batching in
    :mod:`repro.serve` pay one traversal per batch.  Columns freeze as
    they converge (their search direction is zeroed) and per-column
    breakdowns are recorded without stopping the surviving columns.
    """
    with span("solver.cg") as osp:
        op = _as_op(A)
        B = np.asarray(B, float)
        n, k = B.shape
        maxiter = maxiter or 10 * n
        X = np.zeros((n, k)) if x0 is None else np.asarray(x0, float).copy()
        R = B - op(X)
        nmv = 1
        Z = _apply_columns(M, R) if M else R.copy()
        P = Z.copy()
        rz = _col_dots(R, Z)
        bnorm = np.linalg.norm(B, axis=0)
        tol = np.maximum(rtol * np.where(bnorm == 0.0, 1.0, bnorm), atol)
        rnorm = np.linalg.norm(R, axis=0)
        residuals = [float(rnorm.max())]
        col_it = np.zeros(k, np.int64)
        col_reason = np.array(["maxiter"] * k, object)
        nonfin = ~np.isfinite(rnorm)
        col_reason[nonfin] = "nonfinite"
        done0 = ~nonfin & (rnorm <= tol)
        col_reason[done0] = "converged"
        active = ~nonfin & ~done0
        P[:, ~active] = 0.0
        it = 0
        while active.any() and it < maxiter:
            with span("solver.iteration", merge=True) as isp:
                AP = op(P)
                nmv += 1
                pAp = _col_dots(P, AP)
                bad = active & ~np.isfinite(pAp)
                brk = active & np.isfinite(pAp) & (pAp == 0.0)
                col_reason[bad] = "nonfinite"
                col_reason[brk] = "breakdown"
                col_it[bad | brk] = it
                active &= ~(bad | brk)
                if bad.any() or brk.any():
                    P[:, bad | brk] = 0.0
                if not active.any():
                    break
                alpha = np.where(
                    active, rz / np.where(pAp == 0.0, 1.0, pAp), 0.0
                )
                X += alpha[None, :] * P
                R -= alpha[None, :] * AP
                rnorm = np.linalg.norm(R, axis=0)
                isp.add("matvecs", 1)
            it += 1
            residuals.append(float(rnorm.max()))
            if callback is not None:
                callback(it, float(rnorm.max()))
            nonfin = active & ~np.isfinite(rnorm)
            col_reason[nonfin] = "nonfinite"
            col_it[nonfin] = it
            done = active & ~nonfin & (rnorm <= tol)
            col_reason[done] = "converged"
            col_it[done] = it
            active &= ~(nonfin | done)
            if not active.any():
                break
            Z = _apply_columns(M, R) if M else R.copy()
            rz_new = _col_dots(R, Z)
            beta = np.where(active, rz_new / np.where(rz == 0.0, 1.0, rz), 0.0)
            P = np.where(active[None, :], Z + beta[None, :] * P, 0.0)
            rz = rz_new
        col_it[active] = it  # columns that ran out of iterations
        reasons = tuple(str(r) for r in col_reason)
        if "nonfinite" in reasons:
            reason = "nonfinite"
        elif "breakdown" in reasons:
            reason = "breakdown"
        elif "maxiter" in reasons:
            reason = "maxiter"
        else:
            reason = "converged"
        osp.add("iterations", it)
        osp.add("matvecs", nmv)
        osp.add("columns", k)
        osp.set("residual_history", residuals)
        osp.set("reason", reason)
    return KrylovResult(
        X, it, float(rnorm.max()) if k else 0.0, reason == "converged",
        nmv, reason,
        col_iterations=col_it,
        col_residuals=rnorm.copy(),
        col_reasons=reasons,
    )


def cg(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    M: Operator | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-12,
    maxiter: int | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> KrylovResult:
    """Preconditioned conjugate gradients for SPD operators.

    ``callback(it, rnorm)`` is invoked after every iteration; the
    per-iteration residual history is also attached to the
    ``solver.cg`` trace span when :mod:`repro.obs` is enabled.

    A 2-D ``b`` of shape ``(n, k)`` selects the multi-RHS block path:
    all k systems share every operator application (the operator must
    then accept ``(n, k)`` blocks — assembled matrices do), with
    per-column convergence bookkeeping.  ``M`` is still a single-vector
    preconditioner; it is applied column-wise.
    """
    if getattr(b, "ndim", 1) == 2:
        return _cg_block(A, b, x0, M, rtol, atol, maxiter, callback)
    with span("solver.cg") as osp:
        op = _as_op(A)
        n = len(b)
        maxiter = maxiter or 10 * n
        x = np.zeros(n) if x0 is None else x0.astype(float).copy()
        r = b - op(x)
        nmv = 1
        z = M(r) if M else r
        p = z.copy()
        rz = kernels.dot(r, z)
        bnorm = float(np.linalg.norm(b)) or 1.0
        tol = max(rtol * bnorm, atol)
        rnorm = float(np.linalg.norm(r))
        residuals = [rnorm]
        it = 0
        fail: str | None = None if np.isfinite(rnorm) else "nonfinite"
        while fail is None and rnorm > tol and it < maxiter:
            with span("solver.iteration", merge=True) as isp:
                Ap = op(p)
                nmv += 1
                pAp = kernels.dot(p, Ap)
                if not np.isfinite(pAp):
                    fail = "nonfinite"
                    break
                if pAp == 0.0:
                    fail = "breakdown"
                    break
                alpha = rz / pAp
                kernels.axpy(alpha, p, x)
                kernels.axpy(-alpha, Ap, r)
                rnorm = float(np.linalg.norm(r))
                isp.add("matvecs", 1)
            it += 1
            residuals.append(rnorm)
            if callback is not None:
                callback(it, rnorm)
            if not np.isfinite(rnorm):
                fail = "nonfinite"
                break
            if rnorm <= tol:
                break
            z = M(r) if M else r
            rz_new = kernels.dot(r, z)
            p = z + (rz_new / rz) * p
            rz = rz_new
        reason = fail or ("converged" if rnorm <= tol else "maxiter")
        osp.add("iterations", it)
        osp.add("matvecs", nmv)
        osp.set("residual_history", residuals)
        osp.set("reason", reason)
    return KrylovResult(x, it, rnorm, reason == "converged", nmv, reason)


def bicgstab(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    M: Operator | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-12,
    maxiter: int | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> KrylovResult:
    """Preconditioned BiCGStab for general (nonsymmetric) operators.

    ``callback(it, rnorm)`` is invoked after every iteration; the
    per-iteration residual history is also attached to the
    ``solver.bicgstab`` trace span when :mod:`repro.obs` is enabled.
    """
    with span("solver.bicgstab") as osp:
        op = _as_op(A)
        n = len(b)
        maxiter = maxiter or 10 * n
        x = np.zeros(n) if x0 is None else x0.astype(float).copy()
        r = b - op(x)
        nmv = 1
        r_hat = r.copy()
        rho = alpha = omega = 1.0
        v = np.zeros(n)
        p = np.zeros(n)
        bnorm = float(np.linalg.norm(b)) or 1.0
        tol = max(rtol * bnorm, atol)
        rnorm = float(np.linalg.norm(r))
        residuals = [rnorm]
        it = 0
        fail: str | None = None if np.isfinite(rnorm) else "nonfinite"
        while fail is None and rnorm > tol and it < maxiter:
            with span("solver.iteration", merge=True) as isp:
                rho_new = kernels.dot(r_hat, r)
                if not np.isfinite(rho_new):
                    fail = "nonfinite"
                    break
                if rho_new == 0.0:
                    fail = "breakdown"  # Lanczos breakdown: ⟨r̂, r⟩ = 0
                    break
                if it == 0:
                    p = r.copy()
                else:
                    beta = (rho_new / rho) * (alpha / omega)
                    p = r + beta * (p - omega * v)
                phat = M(p) if M else p
                v = op(phat)
                nmv += 1
                isp.add("matvecs", 1)
                denom = kernels.dot(r_hat, v)
                if not np.isfinite(denom):
                    fail = "nonfinite"
                    break
                if denom == 0.0:
                    fail = "breakdown"  # pivot breakdown: ⟨r̂, Ap̂⟩ = 0
                    break
                alpha = rho_new / denom
                s = r - alpha * v
                if np.linalg.norm(s) <= tol:
                    x += alpha * phat
                    r = s
                    rnorm = float(np.linalg.norm(r))
                    it += 1
                    residuals.append(rnorm)
                    if callback is not None:
                        callback(it, rnorm)
                    break
                shat = M(s) if M else s
                t = op(shat)
                nmv += 1
                isp.add("matvecs", 1)
                tt = kernels.dot(t, t)
                omega = kernels.dot(t, s) / tt if tt > 0 else 0.0
                x += alpha * phat + omega * shat
                r = s - omega * t
                rho = rho_new
                rnorm = float(np.linalg.norm(r))
            it += 1
            residuals.append(rnorm)
            if callback is not None:
                callback(it, rnorm)
            if not np.isfinite(rnorm):
                fail = "nonfinite"
                break
            if omega == 0.0:
                # stabiliser breakdown — terminal unless already converged
                if rnorm > tol:
                    fail = "breakdown"
                break
        reason = fail or ("converged" if rnorm <= tol else "maxiter")
        osp.add("iterations", it)
        osp.add("matvecs", nmv)
        osp.set("residual_history", residuals)
        osp.set("reason", reason)
    return KrylovResult(x, it, rnorm, reason == "converged", nmv, reason)
