"""Preconditioners: Jacobi and block-Jacobi (additive-Schwarz style).

The paper runs PETSc's ASM preconditioner; with zero overlap ASM
reduces to block Jacobi over per-process blocks, which is what
:class:`BlockJacobi` implements (blocks = contiguous SFC index ranges,
exactly the per-rank partitions of the simulated runs).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["jacobi", "JacobiPreconditioner", "BlockJacobi"]


class JacobiPreconditioner:
    """Diagonal scaling M ≈ diag(A)^-1."""

    def __init__(self, A):
        d = A.diagonal() if sp.issparse(A) else np.diag(A)
        d = np.where(np.abs(d) > 0, d, 1.0)
        self.dinv = 1.0 / d

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.dinv * r


def jacobi(A) -> JacobiPreconditioner:
    return JacobiPreconditioner(A)


class BlockJacobi:
    """Additive-Schwarz-like block preconditioner with LU blocks.

    ``splits`` are the boundaries of contiguous index blocks (as from a
    partitioner); each diagonal block is factorised once.
    """

    def __init__(self, A: sp.spmatrix, nblocks: int = 8, splits=None):
        A = A.tocsc()
        n = A.shape[0]
        if splits is None:
            splits = np.linspace(0, n, nblocks + 1).astype(int)
        self.splits = np.asarray(splits, int)
        self.factors = []
        for b in range(len(self.splits) - 1):
            lo, hi = self.splits[b], self.splits[b + 1]
            if hi <= lo:
                self.factors.append(None)
                continue
            blk = A[lo:hi, lo:hi].tocsc()
            self.factors.append(spla.splu(blk))

    def __call__(self, r: np.ndarray) -> np.ndarray:
        out = np.zeros_like(r)
        for b, f in enumerate(self.factors):
            lo, hi = self.splits[b], self.splits[b + 1]
            if f is not None:
                out[lo:hi] = f.solve(r[lo:hi])
        return out
