"""Condition-number estimation (Matlab ``condest`` substitute).

Table 1 compares 2-norm-ish conditioning of small Laplace systems; for
those we use exact dense conditioning.  For larger sparse systems a
Hager-style 1-norm estimator combined with a sparse LU gives the
condest quantity Matlab reports (κ₁ = ‖A‖₁·‖A⁻¹‖₁).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["cond_dense", "condest_1norm", "cond_spd_extremes"]


def cond_dense(A) -> float:
    """Exact 2-norm condition number via dense SVD (small systems)."""
    M = A.toarray() if sp.issparse(A) else np.asarray(A)
    return float(np.linalg.cond(M))


def condest_1norm(A: sp.spmatrix) -> float:
    """κ₁ estimate: ‖A‖₁ exactly, ‖A⁻¹‖₁ by Hager/Higham iteration."""
    A = A.tocsc()
    n = A.shape[0]
    norm_a = float(np.abs(A).sum(axis=0).max())
    lu = spla.splu(A)
    x = np.full(n, 1.0 / n)
    gamma_prev = 0.0
    for _ in range(10):
        y = lu.solve(x)
        gamma = float(np.abs(y).sum())
        xi = np.sign(y)
        z = lu.solve(xi, trans="T")
        j = int(np.argmax(np.abs(z)))
        if gamma <= gamma_prev or np.abs(z[j]) <= float(z @ x):
            break
        x = np.zeros(n)
        x[j] = 1.0
        gamma_prev = gamma
    return norm_a * gamma


def cond_spd_extremes(A: sp.spmatrix, tol: float = 1e-8) -> float:
    """κ₂ for SPD matrices via extreme eigenvalues (Lanczos)."""
    A = A.tocsr()
    n = A.shape[0]
    if n < 200:
        return cond_dense(A)
    lmax = spla.eigsh(A, k=1, which="LA", return_eigenvectors=False, tol=tol)[0]
    lmin = spla.eigsh(
        A, k=1, sigma=0, which="LM", return_eigenvectors=False, tol=tol
    )[0]
    return float(lmax / lmin)
