"""Residual-based a-posteriori error estimators.

Per-element estimator for the Poisson problem

    η_K² = h_K² ‖f‖²_K  +  Σ_{faces} ½ · (h_K/2) ‖[∂u_h/∂n]‖²_e

with the face terms split half-and-half between the two adjacent
elements.  Normal-derivative jumps are measured by a second-difference
probe across each face: with face centre c and outward normal n,

    [∂u/∂n] ≈ (u(c + δn) − 2 u(c) + u(c − δn)) / δ,   δ = h_K/4,

which is exact for piecewise-linear kinks and vanishes on smooth
regions.  The inner probe and the face value are evaluated from the
element's own dofs (reference coordinates 0.25/0.75 — no point
location needed); only the outer probe crosses into the neighbour and
goes through :func:`repro.core.interpolate.locate_points`.  Faces whose
outer probe leaves the mesh (surrogate/cube boundary) contribute no
jump term.

For SBM solves an additional boundary-mismatch term

    η_K² += h_K^{dim-2} · (u_h(c_f) − g(proj(c_f)))²

is accumulated over the element's surrogate-boundary faces, where
``proj`` is the predicate's closest-point projection onto the true
boundary — the geometric error the Shifted Boundary Method controls.

Everything is vectorised over elements; cost is a handful of basis
evaluations plus one point-location sweep per face direction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.faces import extract_boundary_faces
from ..core.interpolate import locate_points
from ..core.mesh import IncompleteMesh
from ..core.octant import max_level
from ..core.plan import operator_context
from ..fem.basis import LagrangeBasis

__all__ = ["poisson_estimator"]


def _local_values(u_loc: np.ndarray, N: np.ndarray) -> np.ndarray:
    """Field values from per-element dofs at one reference point."""
    return u_loc @ N


def poisson_estimator(
    mesh: IncompleteMesh,
    u: np.ndarray,
    f: Callable | float = 0.0,
    *,
    method: str = "nodal",
    dirichlet: Callable | float = 0.0,
) -> np.ndarray:
    """Per-element squared error indicators ``η_K²`` (length n_elem)."""
    dim, p, n = mesh.dim, mesh.p, mesh.n_elem
    m = max_level(dim)
    ctx = operator_context(mesh)
    u = np.asarray(u, float)
    u_loc = (ctx.gather @ u).reshape(n, mesh.npe)
    basis = LagrangeBasis(p, dim)
    h = mesh.element_sizes()
    lo, _ = mesh.leaves.physical_bounds(mesh.domain.scale)
    centers = lo + 0.5 * h[:, None]

    # cell residual: h² ∫_K f²  (midpoint quadrature; Δu_h is dropped —
    # zero for p=1 tensor elements away from the mixed terms)
    if np.isscalar(f):
        fc = np.full(n, float(f))
    else:
        fc = np.asarray(f(centers), float)
    eta2 = h**2 * fc**2 * h**dim

    # face jump terms via second-difference probes
    anchors = mesh.leaves.anchors.astype(np.int64)
    sizes = mesh.leaves.sizes.astype(np.int64)
    scale = mesh.domain.scale
    for ax in range(dim):
        for side in (0, 1):
            sign = 2 * side - 1
            xi0 = np.full((1, dim), 0.5)
            xi0[0, ax] = float(side)
            xi_in = np.full((1, dim), 0.5)
            xi_in[0, ax] = 0.5 + sign * 0.25
            N0 = basis.eval(xi0)[0]
            Nin = basis.eval(xi_in)[0]
            u0 = _local_values(u_loc, N0)
            u_in = _local_values(u_loc, Nin)
            pts = centers.copy()
            pts[:, ax] += sign * 0.75 * h
            leaf = locate_points(mesh, pts)
            found = leaf >= 0
            if not found.any():
                continue
            idx = np.flatnonzero(found)
            lf = leaf[idx]
            frac = pts[idx] / scale * (1 << m)
            xi = np.clip(
                (frac - anchors[lf]) / sizes[lf][:, None], 0.0, 1.0
            )
            Nout = basis.eval(xi)
            u_out = np.einsum("ki,ki->k", Nout, u_loc[lf])
            delta = 0.25 * h[idx]
            jump = (u_out - 2.0 * u0[idx] + u_in[idx]) / delta
            eta2[idx] += 0.5 * (0.5 * h[idx]) * jump**2 * h[idx] ** (dim - 1)

    if method == "sbm":
        faces, _ = extract_boundary_faces(mesh)
        if len(faces):
            pred = mesh.domain.predicate
            e, ax, sd = faces.elem, faces.axis, faces.side
            sign = 2.0 * sd - 1.0
            fc_pts = centers[e].copy()
            fc_pts[np.arange(len(e)), ax] += sign * 0.5 * h[e]
            xi = np.full((len(e), dim), 0.5)
            xi[np.arange(len(e)), ax] = sd.astype(float)
            Nf = basis.eval(xi)
            u_f = np.einsum("ki,ki->k", Nf, u_loc[e])
            proj = pred.boundary_projection(fc_pts)
            if np.isscalar(dirichlet):
                g = np.full(len(e), float(dirichlet))
            else:
                g = np.asarray(dirichlet(proj), float)
            term = h[e] ** (dim - 2) * (u_f - g) ** 2
            np.add.at(eta2, e, term)
    elif method != "nodal":
        raise ValueError(f"unknown method {method!r}")

    return eta2
