"""The adaptive solve → estimate → mark → refine loop.

Each cycle:

1. **solve** the Poisson problem on the current mesh, warm-starting CG
   with the previous cycle's solution transferred through
   :func:`repro.core.interpolate.transfer_field`;
2. **estimate** per-element indicators η_K²
   (:func:`repro.amr.estimators.poisson_estimator`);
3. **mark** elements (Dörfler or maximum strategy);
4. **refine** the marked leaves, 2:1-balance, and rebuild the operator
   plan *incrementally* through
   :func:`repro.core.plan_delta.update_mesh` — the step cost scales
   with the churn fraction, not the mesh size.

With ``check_equivalence=True`` (the default) every incremental step is
cross-checked against a from-scratch rebuild and must be bit-identical
— the equivalence gate the incremental-plan layer guarantees.  Disable
it in benchmarks where the full rebuild would dominate the timing.

The loop is deterministic: identical inputs produce an identical
refinement trajectory and a stable :attr:`AMRResult.digest`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.adapt import refine_leaves
from ..core.balance import balance_2to1
from ..core.construct import construct_adaptive
from ..core.domain import Domain
from ..core.interpolate import transfer_field
from ..core.mesh import IncompleteMesh, mesh_from_leaves
from ..core.plan_delta import assert_plan_equivalent, update_mesh
from ..fem.poisson import PoissonProblem, l2_error
from ..obs import span
from .estimators import poisson_estimator
from .marking import dorfler_mark, maximum_mark

__all__ = ["AMRResult", "amr_solve"]

_MARKERS = {"dorfler": dorfler_mark, "maximum": maximum_mark}


@dataclass
class AMRResult:
    """Final state and per-cycle history of an adaptive solve."""

    mesh: IncompleteMesh
    u: np.ndarray
    eta2: np.ndarray
    history: list[dict] = field(default_factory=list)

    @property
    def n_dofs(self) -> int:
        return self.mesh.n_nodes

    @property
    def total_eta(self) -> float:
        return float(np.sqrt(self.eta2.sum()))

    def digest(self) -> str:
        """Deterministic fingerprint of the adaptive trajectory."""
        hsh = hashlib.sha256()
        for rec in self.history:
            hsh.update(
                f"{rec['cycle']}:{rec['n_elem']}:{rec['n_dofs']}:"
                f"{rec['eta']:.12e}:{rec['marked']}".encode()
            )
        hsh.update(np.ascontiguousarray(self.u).tobytes())
        hsh.update(self.mesh.leaves.anchors.tobytes())
        hsh.update(self.mesh.leaves.levels.tobytes())
        return hsh.hexdigest()


def amr_solve(
    domain: Domain,
    f: Callable | float = 0.0,
    dirichlet: Callable | float = 0.0,
    *,
    p: int = 1,
    base_level: int = 3,
    boundary_level: int | None = None,
    max_cycles: int = 8,
    theta: float = 0.5,
    marking: str = "dorfler",
    method: str = "nodal",
    solver: str = "auto",
    rtol: float = 1e-10,
    target_dofs: int | None = None,
    check_equivalence: bool = True,
    churn_limit: float = 0.5,
    exact: Callable | None = None,
) -> AMRResult:
    """Run the adaptive loop; see the module docstring for the cycle.

    Stops after ``max_cycles`` refinements or once ``target_dofs`` is
    exceeded.  ``exact`` (optional reference solution) adds an
    ``error_l2`` column to the history — used by the convergence
    benchmarks.
    """
    try:
        mark_fn = _MARKERS[marking]
    except KeyError:
        raise ValueError(
            f"unknown marking {marking!r}; options: {sorted(_MARKERS)}"
        )
    with span("amr.solve") as outer:
        leaves = construct_adaptive(
            domain, base_level, boundary_level or base_level
        )
        mesh = mesh_from_leaves(domain, leaves, p=p)
        u_prev: np.ndarray | None = None
        history: list[dict] = []
        for cycle in range(max_cycles + 1):
            with span("amr.cycle", cycle=cycle) as csp:
                problem = PoissonProblem(
                    mesh, f=f, dirichlet=dirichlet, method=method
                )
                with span("amr.solve_pde"):
                    u = problem.solve(rtol=rtol, solver=solver, x0=u_prev)
                with span("amr.estimate"):
                    eta2 = poisson_estimator(
                        mesh, u, f, method=method, dirichlet=dirichlet
                    )
                rec = {
                    "cycle": cycle,
                    "n_elem": mesh.n_elem,
                    "n_dofs": mesh.n_nodes,
                    "eta": float(np.sqrt(eta2.sum())),
                    "marked": 0,
                    "churn": 0.0,
                    "incremental": False,
                }
                if exact is not None:
                    rec["error_l2"] = l2_error(mesh, u, exact)
                csp.add("n_elem", mesh.n_elem)
                csp.add("n_dofs", mesh.n_nodes)
                done = cycle == max_cycles or (
                    target_dofs is not None and mesh.n_nodes >= target_dofs
                )
                if done:
                    history.append(rec)
                    break
                marks = mark_fn(eta2, theta)
                rec["marked"] = int(marks.sum())
                if not marks.any():
                    history.append(rec)
                    break
                with span("amr.adapt"):
                    new_leaves = balance_2to1(
                        domain, refine_leaves(domain, mesh.leaves, marks)
                    )
                    new_mesh, delta = update_mesh(
                        mesh, new_leaves, churn_limit=churn_limit
                    )
                rec["churn"] = float(delta.churn)
                rec["incremental"] = bool(
                    new_mesh._plan_update.incremental
                )
                csp.add("marked", rec["marked"])
                csp.add("incremental", int(rec["incremental"]))
                if check_equivalence and rec["incremental"]:
                    with span("amr.equivalence_gate"):
                        ref = mesh_from_leaves(
                            domain,
                            new_leaves,
                            p=p,
                            curve=mesh.curve,
                            balance=False,
                        )
                        assert_plan_equivalent(new_mesh, ref)
                with span("amr.transfer"):
                    u_prev = transfer_field(mesh, new_mesh, u)
                mesh = new_mesh
                history.append(rec)
        outer.add("cycles", len(history))
        outer.add("final_dofs", mesh.n_nodes)
    return AMRResult(mesh=mesh, u=u, eta2=eta2, history=history)
