"""Marking strategies turning error indicators into refinement sets."""

from __future__ import annotations

import numpy as np

__all__ = ["dorfler_mark", "maximum_mark"]


def dorfler_mark(eta2: np.ndarray, theta: float = 0.5) -> np.ndarray:
    """Dörfler (bulk-chasing) marking.

    Marks a minimal set M (greedily, largest indicators first) with
    ``Σ_{K∈M} η_K² ≥ θ · Σ_K η_K²``.  Scale-invariant: marking depends
    only on the *relative* distribution of the indicators, so scaling
    the data (f, g) by any constant leaves the marked set unchanged —
    the property the serving layer exploits to share one refinement
    trajectory across a batch of proportional requests.
    """
    eta2 = np.asarray(eta2, float)
    if not 0.0 < theta <= 1.0:
        raise ValueError("theta must be in (0, 1]")
    total = float(eta2.sum())
    marks = np.zeros(len(eta2), bool)
    if total <= 0.0:
        return marks
    order = np.argsort(eta2, kind="stable")[::-1]
    csum = np.cumsum(eta2[order])
    k = int(np.searchsorted(csum, theta * total, side="left")) + 1
    marks[order[: min(k, len(eta2))]] = True
    return marks


def maximum_mark(eta2: np.ndarray, theta: float = 0.5) -> np.ndarray:
    """Maximum-strategy marking: ``η_K ≥ θ · max_K η_K``."""
    eta2 = np.asarray(eta2, float)
    if not 0.0 < theta <= 1.0:
        raise ValueError("theta must be in (0, 1]")
    if len(eta2) == 0 or eta2.max() <= 0.0:
        return np.zeros(len(eta2), bool)
    return eta2 >= theta**2 * eta2.max()
