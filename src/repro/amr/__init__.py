"""Estimator-driven adaptive mesh refinement (AMR).

The solve → estimate → mark → refine loop that turns the paper's fast
re-meshing and this repo's incremental operator-plan deltas
(:mod:`repro.core.plan_delta`) into an adaptive solver: each cycle pays
roughly the *churn fraction* of a full mesh rebuild, and the refined
solution warm-starts the next CG solve.
"""

from .estimators import poisson_estimator
from .loop import AMRResult, amr_solve
from .marking import dorfler_mark, maximum_mark

__all__ = [
    "poisson_estimator",
    "dorfler_mark",
    "maximum_mark",
    "amr_solve",
    "AMRResult",
]
