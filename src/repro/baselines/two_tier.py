"""Two-tier (macro-element) mesh baseline — the HHG/p4est alternative.

The paper positions carving as "an alternative to using two-tier meshes
(HHG, p4est) ... not dependent on having top-level hexahedral meshes —
that can be hard to generate".  This comparator implements the two-tier
idea in its structured form: the user supplies a top-level decomposition
of the domain into *unit cubes on an integer lattice* (the easy case —
e.g. an elongated channel is a row of cubes), and each macro cell hosts
a uniformly refined grid.

What the comparison shows (tests + bench):

* for box-decomposable domains the two-tier mesh coincides exactly with
  the carved incomplete octree — same elements, same DOFs, same
  conditioning: carving loses nothing where two-tier works;
* for anything else (a sphere, the classroom, the dragon) there *is* no
  axis-aligned hex decomposition — :func:`boxes_for_predicate` fails —
  while the carving pipeline only needs the In–Out predicate.  Hex
  meshing of general geometry is the hard problem the paper's approach
  removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..core.domain import Domain
from ..fem.basis import LagrangeBasis, local_node_offsets
from ..fem.quadrature import tensor_rule
from ..geometry.predicate import RegionLabel

__all__ = ["TwoTierMesh", "boxes_for_predicate", "TwoTierError"]


class TwoTierError(RuntimeError):
    """Raised when no top-level hex decomposition exists."""


def boxes_for_predicate(
    domain: Domain, probe_level: int = 4
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Derive a unit-cube top-level decomposition, if one exists.

    The retained region must be exactly a union of integer-lattice unit
    cubes (verified by classifying every lattice cube: each must be
    fully retained or fully carved — any intercepted cube means the
    geometry does not admit this two-tier decomposition).
    """
    dim = domain.dim
    n = int(round(domain.scale))
    if abs(domain.scale - n) > 1e-12:
        raise TwoTierError(
            f"domain scale {domain.scale} is not an integer lattice"
        )
    axes = [np.arange(n)] * dim
    grids = np.meshgrid(*axes, indexing="ij")
    lo = np.stack([g.ravel() for g in grids], axis=1).astype(float)
    hi = lo + 1.0
    # classify slightly shrunk cubes: a cube flush against ∂C (its face
    # IS the geometry boundary — fine for a macro element) shrinks to
    # RETAIN_INTERNAL, while a cube genuinely intercepted stays
    # RETAIN_BOUNDARY and vetoes the decomposition
    eps = 1e-9
    lab = domain.predicate.classify_cells(lo + eps, hi - eps)
    if np.any(lab == RegionLabel.RETAIN_BOUNDARY):
        raise TwoTierError(
            "geometry is not a union of lattice unit cubes — a two-tier "
            "mesh would require unstructured hex meshing (the hard "
            "problem carving avoids)"
        )
    keep = lab == RegionLabel.RETAIN_INTERNAL
    return [(lo[i], hi[i]) for i in np.flatnonzero(keep)]


@dataclass
class TwoTierMesh:
    """Macro cubes, each uniformly refined into ``2**level`` cells/axis."""

    boxes: list
    level: int
    p: int = 1

    def __post_init__(self):
        if not self.boxes:
            raise TwoTierError("empty top-level decomposition")
        self.dim = len(self.boxes[0][0])
        self.n_per_axis = 1 << self.level
        self.h = 1.0 / self.n_per_axis
        self._enumerate_nodes()

    @property
    def n_elem(self) -> int:
        return len(self.boxes) * self.n_per_axis**self.dim

    def _enumerate_nodes(self) -> None:
        """Global nodes: per-macro lattices deduplicated at interfaces."""
        dim, p = self.dim, self.p
        n = self.n_per_axis
        # node lattice per macro in integer units of h/p
        axes = [np.arange(n * p + 1)] * dim
        grids = np.meshgrid(*axes, indexing="ij")
        local = np.stack([g.ravel() for g in grids], axis=1)
        allc = []
        for lo, _ in self.boxes:
            base = (np.asarray(lo) * n * p).astype(np.int64)
            allc.append(base[None, :] + local)
        allc = np.concatenate(allc)
        uniq, inv = np.unique(allc, axis=0, return_inverse=True)
        self.node_coords_int = uniq
        self._macro_node_map = inv.reshape(len(self.boxes), -1)
        self.n_nodes = len(uniq)
        # element connectivity
        npe = (p + 1) ** dim
        off = local_node_offsets(p, dim)
        conn = []
        cell_axes = [np.arange(n)] * dim
        cgrids = np.meshgrid(*cell_axes, indexing="ij")
        cells = np.stack([g.ravel() for g in cgrids], axis=1)
        stride = np.array([(n * p + 1) ** k for k in range(dim)])
        # local flat index of node multi-index within a macro lattice
        for b in range(len(self.boxes)):
            corner = cells * p  # node multi-index of each cell's origin
            idx = np.zeros((len(cells), npe), np.int64)
            for j, o in enumerate(off):
                multi = corner + o
                flat = multi @ stride
                idx[:, j] = self._macro_node_map[b][flat]
            conn.append(idx)
        self.elem_nodes = np.concatenate(conn)

    def node_coords(self) -> np.ndarray:
        return self.node_coords_int.astype(float) * (self.h / self.p)

    def boundary_mask(self) -> np.ndarray:
        """Nodes on the boundary of the union of macro cubes: nodes
        referenced by fewer elements than an interior lattice node."""
        counts = np.zeros(self.n_nodes, np.int64)
        np.add.at(counts, self.elem_nodes.ravel(), 1)
        # interior nodes of a tensor mesh touch 2^dim cells (corners of
        # cells) for p=1; for p>1 face/interior nodes touch fewer — use
        # the geometric criterion instead for general p
        pts = self.node_coords()
        eps = 1e-9
        # a node is interior iff a small ball around it is covered: test
        # the 2^dim diagonal probes for membership in some macro box
        dirs = 2 * local_node_offsets(1, self.dim) - 1
        covered = np.ones(self.n_nodes, bool)
        for d in dirs:
            probe = pts + d * (self.h / (4 * self.p))
            inside = np.zeros(self.n_nodes, bool)
            for lo, hi in self.boxes:
                inside |= np.all(
                    (probe >= np.asarray(lo) - eps) & (probe <= np.asarray(hi) + eps),
                    axis=1,
                )
            covered &= inside
        return ~covered

    def assemble_stiffness(self) -> sp.csr_matrix:
        basis = LagrangeBasis(self.p, self.dim)
        qp, qw = tensor_rule(self.p + 1, self.dim)
        G = basis.eval_grad(qp)
        K = (
            np.einsum("q,qid,qjd->ij", qw, G, G)
            * self.h ** (self.dim - 2)
        )
        npe = (self.p + 1) ** self.dim
        rows = np.repeat(self.elem_nodes, npe, axis=1).ravel()
        cols = np.tile(self.elem_nodes, (1, npe)).ravel()
        vals = np.tile(K.ravel(), self.n_elem)
        A = sp.csr_matrix(
            (vals, (rows, cols)), shape=(self.n_nodes, self.n_nodes)
        )
        A.sum_duplicates()
        return A
