"""Immersed-boundary baseline meshes (the comparator of Tables 2 & 5).

In the immersed (IMGA-style) approach the full octree is retained: the
object is *immersed* rather than carved, so octants inside the object
(IN) stay in the mesh, carry matrix/vector storage and traversal cost,
and finally receive Dirichlet values.  2:1 balancing causes a ripple of
fine IN elements near the boundary, which is why the element excess is
larger than the naive volume argument suggests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.domain import Domain
from ..core.mesh import IncompleteMesh, build_mesh
from ..geometry.predicate import RegionLabel, SubdomainPredicate

__all__ = ["ImmersedPredicate", "build_immersed_mesh", "CarvedVsImmersed", "compare_carved_immersed"]


class ImmersedPredicate(SubdomainPredicate):
    """Wraps a carving predicate so nothing is carved.

    Boundary-intercepted cells keep their label (driving the same
    near-object refinement as the carved mesh); fully-inside cells
    become RETAIN_INTERNAL instead of CARVED.  Point queries still
    report the object interior, so IN nodes can be identified for the
    Dirichlet masking step.
    """

    def __init__(self, inner: SubdomainPredicate):
        self.inner = inner
        self.dim = inner.dim

    def classify_cells(self, lo, hi):
        lab = self.inner.classify_cells(lo, hi).copy()
        lab[lab == RegionLabel.CARVED] = RegionLabel.RETAIN_INTERNAL
        return lab

    def carved_points(self, pts):
        return self.inner.carved_points(pts)

    def boundary_distance(self, pts):
        return self.inner.boundary_distance(pts)

    def boundary_projection(self, pts):
        return self.inner.boundary_projection(pts)


def build_immersed_mesh(
    domain: Domain,
    base_level: int,
    boundary_level: int,
    p: int = 1,
    curve: str = "morton",
    extra_refine=None,
    band: float = 0.6,
) -> IncompleteMesh:
    """Build the complete-octree immersed mesh for ``domain``.

    The returned mesh uses the immersed predicate, so
    ``mesh.nodes.carved_node`` marks the IN nodes (inside the object)
    where the immersed method imposes Dirichlet data.  IMGA-style
    codes refine a band on *both* sides of the surface (the forcing
    needs resolved IN cells near ∂C): cells whose centre is within
    ``band`` × (cell diagonal) of ∂C refine to the boundary level too,
    when the predicate provides distances.  ``band=0`` disables this
    and refines only intercepted cells.
    """
    immersed = Domain(
        ImmersedPredicate(domain.predicate), dim=domain.dim, scale=domain.scale
    )
    inner = domain.predicate
    band_refine = None
    if band > 0:
        try:
            inner.boundary_distance(np.zeros((1, domain.dim)))
            has_dist = True
        except (NotImplementedError, Exception):
            has_dist = False
        if has_dist:

            def band_refine(frontier, labels):
                lo, hi = frontier.physical_bounds(domain.scale)
                ctr = 0.5 * (lo + hi)
                diag = np.linalg.norm(hi - lo, axis=1)
                d = np.abs(inner.boundary_distance(ctr))
                want = np.where(d <= band * diag, boundary_level, 0)
                return want

    def combined(frontier, labels):
        want = np.zeros(len(frontier), np.int64)
        if band_refine is not None:
            want = np.maximum(want, band_refine(frontier, labels))
        if extra_refine is not None:
            want = np.maximum(want, extra_refine(frontier, labels))
        return want

    use_extra = combined if (band_refine is not None or extra_refine is not None) else None
    return build_mesh(
        immersed, base_level, boundary_level, p, curve, extra_refine=use_extra
    )


@dataclass
class CarvedVsImmersed:
    """The Table-2 quantities."""

    carved_elems: int
    immersed_elems: int
    carved_dofs: int
    immersed_dofs: int
    in_elements: int          # immersed elements fully inside the object

    @property
    def f_elem(self) -> float:
        return self.immersed_elems / self.carved_elems

    @property
    def f_dof(self) -> float:
        return self.immersed_dofs / self.carved_dofs


def compare_carved_immersed(
    domain: Domain,
    base_level: int,
    boundary_level: int,
    p: int = 1,
    extra_refine=None,
) -> CarvedVsImmersed:
    """Build both meshes and report element/DOF excess factors."""
    carved = build_mesh(
        domain, base_level, boundary_level, p, extra_refine=extra_refine
    )
    imm = build_immersed_mesh(
        domain, base_level, boundary_level, p, extra_refine=extra_refine
    )
    lab = domain.classify_octants(imm.leaves)
    return CarvedVsImmersed(
        carved_elems=carved.n_elem,
        immersed_elems=imm.n_elem,
        carved_dofs=carved.n_nodes,
        immersed_dofs=imm.n_nodes,
        in_elements=int((lab == RegionLabel.CARVED).sum()),
    )
