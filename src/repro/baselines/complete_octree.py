"""Dendro-style complete-octree pipeline (the Table-4 comparator).

The prior approach ([66], Dendro-based) first builds the **complete**
octree over the isotropic cube — void regions included — partitions it,
and only then cancels the inactive octants.  Consequences the paper
measures and we reproduce:

* construction visits (and stores) every octant of the complete tree —
  for an elongated channel almost all of them are void, so mesh
  creation is ~20× slower and memory explodes (Dendro fails outright at
  base level ≥ 12);
* the partitioner balances *complete-tree* octants, so the **active**
  (retained) elements per rank are imbalanced, and MATVEC time is set
  by the most-loaded rank (~5× slower).

Building a complete level-10+ tree in a 128³-cube channel means ~2³⁰
octants — unbuildable here exactly as it was for Dendro.  We therefore
count it *exactly* without enumeration: whenever the pruned constructor
discards a carved subtree at level ℓ < base, that subtree would have
contributed ``2^(dim·(base−ℓ))`` complete-tree leaves at the base
level; recording each pruned block's SFC key and leaf count also lets
us compute, by prefix sums, exactly how many active elements fall into
every rank range of the complete-tree partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.construct import construct_adaptive
from ..core.domain import Domain
from ..core.octant import OctantSet, children, max_level
from ..core.sfc import get_curve
from ..geometry.predicate import RegionLabel

__all__ = ["CompleteTreeReport", "dendro_style_pipeline"]


@dataclass
class CompleteTreeReport:
    """Measured outcome of the complete-octree baseline pipeline."""

    n_active: int                # retained (FEM-active) elements
    n_complete: int              # leaves of the complete octree
    octants_visited: int         # construction work (complete pipeline)
    active_octants_visited: int  # construction work (pruned pipeline)
    active_per_rank: np.ndarray  # active elements per complete-tree rank
    bytes_per_rank: np.ndarray   # complete-tree storage per rank (B)

    @property
    def inactive_fraction(self) -> float:
        return 1.0 - self.n_active / self.n_complete

    @property
    def active_imbalance(self) -> float:
        """max/mean active elements per rank (1.0 = perfectly balanced)."""
        mean = self.active_per_rank.mean()
        return float(self.active_per_rank.max() / mean) if mean > 0 else np.inf

    def exceeds_memory(self, bytes_per_octant: float = 1.0e3, node_mem: float = 192e9,
                       ranks_per_node: int = 56) -> bool:
        """Would the complete tree overflow node memory (the Dendro
        failure the paper reports for base level >= 12)?"""
        per_node = self.bytes_per_rank.max() * ranks_per_node
        return bool(per_node * bytes_per_octant / 8.0 > node_mem)


def dendro_style_pipeline(
    domain: Domain,
    base_level: int,
    boundary_level: int,
    nranks: int,
    curve: str = "morton",
) -> CompleteTreeReport:
    """Run the complete-tree pipeline in counting mode.

    Builds the *pruned* tree for the active octants (cheap), while
    exactly accounting for the carved blocks the complete pipeline
    would have enumerated, then partitions the complete tree into
    ``nranks`` equal ranges and measures the active load per rank.
    """
    dim = domain.dim
    m = max_level(dim)
    oracle = get_curve(curve)

    # pruned construction with carved-block recording
    pruned_keys: list[np.ndarray] = []
    pruned_counts: list[np.ndarray] = []
    visited_active = 0
    visited_complete = 0
    frontier = OctantSet.root(dim)
    leaves: list[OctantSet] = []
    while len(frontier):
        visited_active += len(frontier)
        visited_complete += len(frontier)
        labels = domain.classify_octants(frontier)
        carved = labels == RegionLabel.CARVED
        if carved.any():
            sub = frontier[np.flatnonzero(carved)]
            lv = sub.levels.astype(np.int64)
            # carved cells refine to base level in the complete tree
            nleaves = np.where(
                lv >= base_level, 1, 1 << (dim * (base_level - lv))
            ).astype(np.int64)
            # complete pipeline also visits all their internal octants:
            # a full 2^dim-ary tree with L leaves has (L·2^dim − 1)/(2^dim − 1) nodes
            nch = 1 << dim
            visited_complete += int(((nleaves * nch - 1) // (nch - 1)).sum())
            pruned_keys.append(oracle.keys(sub))
            pruned_counts.append(nleaves)
        keep = np.flatnonzero(~carved)
        frontier = frontier[keep]
        labels = labels[keep]
        if not len(frontier):
            break
        target = np.full(len(frontier), base_level, np.int64)
        np.putmask(target, labels == RegionLabel.RETAIN_BOUNDARY, boundary_level)
        split = (frontier.levels.astype(np.int64) < target) & (frontier.levels < m)
        leaves.append(frontier[np.flatnonzero(~split)])
        frontier = children(frontier[np.flatnonzero(split)])

    from ..core.treesort import tree_sort

    active = tree_sort(OctantSet.concatenate(leaves), oracle)[0]
    akeys = oracle.keys(active)
    n_active = len(active)

    if pruned_keys:
        ckeys = np.concatenate(pruned_keys)
        ccounts = np.concatenate(pruned_counts)
        order = np.argsort(ckeys)
        ckeys, ccounts = ckeys[order], ccounts[order]
    else:
        ckeys = np.zeros(0, np.uint64)
        ccounts = np.zeros(0, np.int64)
    ccum = np.concatenate([[0], np.cumsum(ccounts)])
    n_complete = int(n_active + ccum[-1])

    # position of each active element in the complete-tree SFC order =
    # its active index + number of carved leaves with smaller keys
    carved_before = ccum[np.searchsorted(ckeys, akeys, side="left")]
    complete_pos = np.arange(n_active) + carved_before

    # equal complete-tree ranges per rank (what Dendro's partitioner does)
    bounds = np.linspace(0, n_complete, nranks + 1)
    active_per_rank = np.histogram(complete_pos, bins=bounds)[0].astype(np.int64)
    complete_per_rank = np.diff(bounds).astype(np.int64)

    return CompleteTreeReport(
        n_active=n_active,
        n_complete=n_complete,
        octants_visited=visited_complete,
        active_octants_visited=visited_active,
        active_per_rank=active_per_rank,
        bytes_per_rank=complete_per_rank * 8,
    )
