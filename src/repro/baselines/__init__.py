"""Comparator implementations: immersed meshing and the complete-octree
(Dendro-style) pipeline."""

from .complete_octree import CompleteTreeReport, dendro_style_pipeline
from .two_tier import TwoTierError, TwoTierMesh, boxes_for_predicate
from .immersed import (
    CarvedVsImmersed,
    ImmersedPredicate,
    build_immersed_mesh,
    compare_carved_immersed,
)

__all__ = [
    "ImmersedPredicate",
    "build_immersed_mesh",
    "CarvedVsImmersed",
    "compare_carved_immersed",
    "CompleteTreeReport",
    "dendro_style_pipeline",
    "TwoTierMesh",
    "TwoTierError",
    "boxes_for_predicate",
]
