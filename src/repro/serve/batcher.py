"""Fingerprint-grouped batch execution: one operator pass, many RHS.

Requests that share a :attr:`repro.serve.api.SolveRequest.batch_key`
(same discretization, same operator parameters) differ only in their
RHS data (source amplitude ``f``, Dirichlet value ``g``).  Both enter
the discrete system *linearly*, so a batch of k requests is exactly a
multi-RHS solve:

* ``poisson`` — block CG through the new multi-RHS path of
  :func:`repro.solvers.krylov.cg` on the cached assembled operator:
  every iteration is one SpMM over the ``(n, k)`` block instead of k
  SpMVs, so cache-hot traffic pays one operator traversal per batch.
* ``sbm`` — the Shifted Boundary Method system is factorized once
  (``splu``); a batch is one k-column triangular solve.
* ``transport`` — the implicit-Euler SUPG matrix is factorized once;
  time stepping advances all k columns together.
* ``amr`` — one estimator-driven refinement trajectory
  (:func:`repro.amr.loop.amr_solve`, unit source) is cached per batch
  key; every request shares the adapted mesh and scales the unit
  solution by its amplitude ``f``.

Per-request RHS columns are assembled from cached *unit* vectors
(``b_unit`` for f=1, ``bs_unit``/``lift`` for g=1), so the per-request
marginal cost on the hot path is axpy-scale.

A Krylov ``breakdown``/``nonfinite`` column surfaces as a typed
:class:`repro.resilience.faults.SolverBreakdown` for the whole batch —
the scheduler's retry-with-backoff handles it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from ..core.assembly import assemble
from ..core.plan import operator_context
from ..fem.poisson import load_vector
from ..obs import span
from ..resilience.faults import SolverBreakdown
from ..solvers.krylov import cg
from ..solvers.precond import jacobi
from .api import SolveRequest, solution_digest
from .cache import CacheEntry

__all__ = ["BatchOutcome", "build_entry", "ensure_factor", "solve_batch"]


@dataclass
class BatchOutcome:
    """Per-column results of one batch solve."""

    solutions: np.ndarray          # (n_nodes, k)
    iterations: list[int]
    residuals: list[float]
    reasons: list[str]
    matvecs: int                   # block operator applications

    def digest(self, j: int) -> str:
        return solution_digest(self.solutions[:, j])


def build_entry(request: SolveRequest) -> CacheEntry:
    """Cold path: construct mesh + operator context for a request.

    This is the only place in the serving stack that opens
    ``build_mesh`` / ``plan.context_build`` spans; a cache-hot request
    never reaches it.
    """
    mesh = request.build_mesh()
    ctx = operator_context(mesh)
    return CacheEntry(ctx.fingerprint, mesh, ctx)


# -- factors ------------------------------------------------------------


class _PoissonFactor:
    """Assembled nodal-Dirichlet Poisson operator + Jacobi + unit RHS."""

    kind = "poisson"

    def __init__(self, mesh):
        A = assemble(mesh, kind="stiffness")
        self.fixed = mesh.dirichlet_mask.copy()
        self.free = np.flatnonzero(~self.fixed)
        fixed_idx = np.flatnonzero(self.fixed)
        self.Aff = A[np.ix_(self.free, self.free)].tocsr()
        self.M = jacobi(self.Aff)
        self.b_unit = load_vector(mesh, 1.0)
        self.lift = np.asarray(
            A[np.ix_(self.free, fixed_idx)] @ np.ones(len(fixed_idx))
        ).ravel()
        self.n_nodes = mesh.n_nodes
        self.nbytes = (
            self.Aff.data.nbytes + self.Aff.indices.nbytes
            + self.Aff.indptr.nbytes + self.b_unit.nbytes + self.lift.nbytes
        )

    def solve(self, requests: list[SolveRequest],
              tol_scale: float = 1.0) -> BatchOutcome:
        k = len(requests)
        fs = np.array([r.f for r in requests])
        gs = np.array([r.g for r in requests])
        U = np.empty((self.n_nodes, k))
        U[self.fixed, :] = gs[None, :]
        if len(self.free) == 0:
            return BatchOutcome(U, [0] * k, [0.0] * k, ["direct"] * k, 0)
        B = (
            self.b_unit[self.free, None] * fs[None, :]
            - self.lift[:, None] * gs[None, :]
        )
        # equal across the batch (in the batch key); brownout loosens
        # it uniformly via tol_scale
        rtol = min(requests[0].tol * tol_scale, 1e-2)
        res = cg(self.Aff, B, M=self.M, rtol=rtol, atol=1e-14,
                 maxiter=20 * len(self.free))
        bad = [r for r in res.col_reasons if r in ("breakdown", "nonfinite")]
        if bad:
            raise SolverBreakdown("serve.batch", bad[0],
                                  f"{len(bad)}/{k} columns broke down")
        U[self.free, :] = res.x
        return BatchOutcome(
            U,
            [int(i) for i in res.col_iterations],
            [float(r) for r in res.col_residuals],
            list(res.col_reasons),
            res.matvecs,
        )


class _SbmFactor:
    """Shifted-Boundary-Method Poisson, LU-factorized once per mesh."""

    kind = "sbm"

    def __init__(self, mesh, alpha: float = 2.0):
        from ..fem.sbm import sbm_terms

        A = assemble(mesh, kind="stiffness")
        ones = lambda pts: np.ones(len(pts))  # noqa: E731
        A_s, bs_unit = sbm_terms(mesh, ones, alpha=alpha)
        A = (A + A_s).tocsr()
        # only the true cube boundary stays strongly imposed
        self.fixed = mesh.nodes.domain_boundary & ~mesh.nodes.carved_node
        self.free = np.flatnonzero(~self.fixed)
        fixed_idx = np.flatnonzero(self.fixed)
        self.Aff = A[np.ix_(self.free, self.free)].tocsr()
        self.lu = spla.splu(self.Aff.tocsc())
        self.b_unit = load_vector(mesh, 1.0)
        self.bs_unit = bs_unit
        self.lift = np.asarray(
            A[np.ix_(self.free, fixed_idx)] @ np.ones(len(fixed_idx))
        ).ravel()
        self.n_nodes = mesh.n_nodes
        self.nbytes = (
            self.Aff.data.nbytes + self.Aff.indices.nbytes
            + self.Aff.indptr.nbytes + 16 * int(self.lu.nnz)
            + self.b_unit.nbytes + self.bs_unit.nbytes + self.lift.nbytes
        )

    def solve(self, requests: list[SolveRequest],
              tol_scale: float = 1.0) -> BatchOutcome:
        k = len(requests)
        fs = np.array([r.f for r in requests])
        gs = np.array([r.g for r in requests])
        U = np.empty((self.n_nodes, k))
        U[self.fixed, :] = gs[None, :]
        if len(self.free) == 0:
            return BatchOutcome(U, [0] * k, [0.0] * k, ["direct"] * k, 0)
        b = self.b_unit[:, None] * fs[None, :] + self.bs_unit[:, None] * gs[None, :]
        B = b[self.free, :] - self.lift[:, None] * gs[None, :]
        X = self.lu.solve(B)
        if not np.all(np.isfinite(X)):
            raise SolverBreakdown("serve.batch", "nonfinite",
                                  "SBM LU solve produced non-finite values")
        U[self.free, :] = X
        rnorm = np.linalg.norm(self.Aff @ X - B, axis=0)
        return BatchOutcome(
            U, [0] * k, [float(r) for r in rnorm], ["direct"] * k, 1
        )


class _TransportFactor:
    """Implicit-Euler SUPG transport, one LU shared by the batch.

    All batch members share velocity/kappa/dt/steps (they are in the
    batch key); the per-request source amplitude ``f`` scales the unit
    load column, and the k concentration histories advance in lockstep
    through the shared factorization.
    """

    kind = "transport"

    def __init__(self, mesh, request: SolveRequest):
        from ..fem.transport import TransportProblem

        vel = np.asarray(request.velocity, float)[: mesh.dim]
        if len(vel) != mesh.dim:
            raise ValueError(
                f"velocity needs >= {mesh.dim} components for a "
                f"{mesh.dim}-D mesh"
            )
        self.problem = TransportProblem(
            mesh, np.tile(vel, (mesh.n_nodes, 1)), kappa=request.kappa,
            dt=request.dt, dirichlet_mask=mesh.dirichlet_mask,
            dirichlet_value=0.0,
        )
        self.steps = request.steps
        self.b_unit = load_vector(mesh, 1.0)
        self.n_nodes = mesh.n_nodes
        A = self.problem.A
        self.nbytes = (
            A.data.nbytes + A.indices.nbytes + A.indptr.nbytes
            + 16 * int(self.problem._lu.nnz) + self.b_unit.nbytes
        )

    def solve(self, requests: list[SolveRequest],
              tol_scale: float = 1.0) -> BatchOutcome:
        k = len(requests)
        fs = np.array([r.f for r in requests])
        prob = self.problem
        C = np.zeros((self.n_nodes, k))
        for _ in range(self.steps):
            rhs = prob.M_old @ C + self.b_unit[:, None] * fs[None, :]
            rhs[prob.dirichlet_mask, :] = prob.dirichlet_value
            C = prob._lu.solve(rhs)
        if not np.all(np.isfinite(C)):
            raise SolverBreakdown("serve.batch", "nonfinite",
                                  "transport stepping produced non-finite values")
        return BatchOutcome(
            C, [self.steps] * k, [0.0] * k, ["direct"] * k, self.steps
        )


class _AmrFactor:
    """One cached adaptive-refinement trajectory per batch key.

    The loop is driven with the *unit* source (f=1, g=0).  Dörfler and
    maximum marking depend only on the relative indicator distribution,
    and the estimator scales by f² under RHS scaling, so every request
    in the batch follows the identical trajectory — the final adapted
    mesh is shared and each request's solution is ``f · u_unit`` by
    linearity (g = 0 is enforced at validation).
    """

    kind = "amr"

    def __init__(self, request: SolveRequest):
        from ..amr import amr_solve
        from .api import build_domain

        result = amr_solve(
            build_domain(request.geometry),
            f=1.0,
            dirichlet=0.0,
            p=request.p,
            base_level=request.base_level,
            boundary_level=request.boundary_level,
            max_cycles=request.amr_cycles,
            theta=request.amr_theta,
            rtol=request.tol,
            check_equivalence=False,
        )
        self.mesh = result.mesh
        self.u_unit = result.u
        self.cycles = len(result.history)
        self.eta = result.total_eta
        self.n_nodes = result.mesh.n_nodes
        self.nbytes = (
            self.u_unit.nbytes
            + self.mesh.leaves.anchors.nbytes
            + self.mesh.leaves.levels.nbytes
        )

    def solve(self, requests: list[SolveRequest],
              tol_scale: float = 1.0) -> BatchOutcome:
        k = len(requests)
        fs = np.array([r.f for r in requests])
        U = self.u_unit[:, None] * fs[None, :]
        return BatchOutcome(
            U, [self.cycles] * k, [float(self.eta)] * k, ["converged"] * k, 0
        )


def ensure_factor(entry: CacheEntry, request: SolveRequest):
    """The entry's factor for this request's batch key, building (and
    byte-accounting) it on first use."""
    key = request.batch_key
    factor = entry.factors.get(key)
    if factor is not None:
        return factor, False
    with span("serve.factor_build", pde=request.pde) as osp:
        if request.pde == "poisson":
            factor = _PoissonFactor(entry.mesh)
        elif request.pde == "sbm":
            factor = _SbmFactor(entry.mesh)
        elif request.pde == "transport":
            factor = _TransportFactor(entry.mesh, request)
        elif request.pde == "amr":
            factor = _AmrFactor(request)
        else:  # pragma: no cover - validated at submit
            raise ValueError(f"unknown pde {request.pde!r}")
        osp.add("bytes", factor.nbytes)
    entry.add_factor(key, factor, factor.nbytes)
    return factor, True


def solve_batch(factor, requests: list[SolveRequest],
                emit=None, tol_scale: float = 1.0) -> BatchOutcome:
    """Solve one batch through its cached factor (one multi-RHS block).

    ``emit`` is the flight-recorder hook: when the owning service
    records events, it passes a callback that turns the batch execution
    into one ``solve_exec`` event (columns, matvecs, pde).
    ``tol_scale > 1`` is the brownout degrade path: iterative members
    stop at a loosened tolerance (direct factors are unaffected)."""
    with span("serve.solve", pde=factor.kind) as osp:
        out = factor.solve(requests, tol_scale=tol_scale)
        osp.add("columns", len(requests))
        osp.add("matvecs", out.matvecs)
    if emit is not None:
        emit(columns=len(requests), matvecs=out.matvecs, pde=factor.kind)
    return out
