"""repro.serve — deterministic solver-as-a-service.

Turns the repo's one-shot pipeline (carve → refine → assemble → solve)
into a bounded, observable service: typed versioned requests, a
content-addressed artifact cache keyed by the operator-plan
fingerprint, fingerprint batching into multi-RHS block solves, and a
virtual-clock scheduler with admission control, deadlines and
retry-with-backoff.  Everything is deterministic — identical request
streams produce bit-identical response digests.
"""

from .api import (
    PDE_KINDS,
    REQ_SCHEMA_ID,
    RESP_SCHEMA_ID,
    Rejected,
    SolveRequest,
    SolveResponse,
    build_domain,
    canonical_geometry,
    solution_digest,
)
from .batcher import BatchOutcome, build_entry, ensure_factor, solve_batch
from .cache import ArtifactCache, CacheEntry
from .scheduler import PendingItem, Scheduler, VirtualClock
from .service import SolverClient, SolverService, demo_workload

__all__ = [
    "REQ_SCHEMA_ID",
    "RESP_SCHEMA_ID",
    "PDE_KINDS",
    "SolveRequest",
    "SolveResponse",
    "Rejected",
    "canonical_geometry",
    "build_domain",
    "solution_digest",
    "ArtifactCache",
    "CacheEntry",
    "BatchOutcome",
    "build_entry",
    "ensure_factor",
    "solve_batch",
    "Scheduler",
    "VirtualClock",
    "PendingItem",
    "SolverService",
    "SolverClient",
    "demo_workload",
]
