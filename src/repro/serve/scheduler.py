"""Deterministic virtual-clock scheduling: priorities, admission, retry.

The serving loop runs on a **virtual clock** (integer ticks, no wall
time anywhere — the simmpi style): every unit of work advances the
clock by a deterministic cost derived from the work's own discrete
outputs (elements built, operator applications, columns solved).  Two
runs of the same request stream therefore see identical timestamps,
identical deadline outcomes and identical backoff windows — which is
what lets the response digests be bit-identical.

Mechanics, all bounded and typed:

* **Priority queue** — dispatch picks the eligible item minimising
  ``(priority, request digest, arrival seq)``.  Tie-breaking by
  *digest* rather than arrival order means any interleaving of the
  same request set produces the same schedule (asserted by the cache
  determinism tests); the arrival sequence only separates byte-equal
  duplicates, which are interchangeable anyway.
* **Bounded admission** — at most ``max_pending`` queued items; the
  service turns an admission refusal into a typed
  :class:`repro.serve.api.Rejected` (``queue_full``) response.
* **Deadlines** — an item whose dispatch would not start strictly
  before ``t_submit + deadline`` is expired with ``deadline_exceeded``
  (a deadline equal to the current tick is already missed: the solve
  would take at least one tick, so dispatching it could never finish
  in time).
* **Retry with backoff** — when a batch dies with
  :class:`repro.resilience.faults.SolverBreakdown`, its members are
  re-queued ``backoff * 2**retries`` ticks into the virtual future (up
  to ``max_retries``); the clock jumps forward when only backed-off
  work remains.
* **Deadline-aware brownout** — under overload (queue depth past a
  watermark) or external pressure (open circuit breakers upstream),
  :meth:`Scheduler.shed_overload` drops the lowest-priority tail of
  the dispatch order instead of letting queue wait blow every
  deadline, and :meth:`BrownoutPolicy.degrades` loosens solve
  tolerances for the batches that remain.  Both knobs live in
  :class:`BrownoutPolicy` and both decisions are pure functions of
  (queue state, policy), so browned-out runs stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from .api import SolveRequest

__all__ = [
    "VirtualClock",
    "PendingItem",
    "Scheduler",
    "BrownoutPolicy",
    "cost_build",
    "cost_factor",
    "cost_solve",
]

# -- deterministic cost model (ticks) -----------------------------------
#
# The absolute scale is arbitrary; only the *ratios* matter for the
# scheduling semantics.  Mesh construction dominates (the paper's whole
# point is amortizing it), factorization is cheaper, and a batched
# solve pays one traversal-scale term per operator application plus a
# small per-column term.

TICKS_PER_ELEMENT_BUILD = 8
TICKS_PER_NODE_FACTOR = 2
TICKS_PER_NODE_MATVEC = 1
TICKS_PER_COLUMN = 16


def cost_build(n_elem: int) -> int:
    return TICKS_PER_ELEMENT_BUILD * int(n_elem)


def cost_factor(n_nodes: int) -> int:
    return TICKS_PER_NODE_FACTOR * int(n_nodes)


def cost_solve(n_nodes: int, matvecs: int, columns: int) -> int:
    return (
        TICKS_PER_NODE_MATVEC * int(n_nodes) * max(int(matvecs), 1)
        + TICKS_PER_COLUMN * int(columns)
    )


class VirtualClock:
    """Monotonic integer tick counter — the service's only notion of time."""

    def __init__(self) -> None:
        self.now = 0

    def advance(self, ticks: int) -> int:
        if ticks < 0:
            raise ValueError("the virtual clock cannot run backwards")
        self.now += int(ticks)
        return self.now

    def jump_to(self, t: int) -> int:
        self.now = max(self.now, int(t))
        return self.now


@dataclass
class PendingItem:
    """One admitted request waiting for dispatch.

    ``instance`` is the fleet-assigned delivery id used for
    exactly-once accounting when a request has more than one live copy
    (hedging, duplicated handoffs, fail-over replay); ``-1`` for bare
    services that never duplicate.  ``hedge`` marks a speculative copy:
    it never expires — the primary owns the deadline — and its
    completion only counts if it wins the race.
    """

    request: SolveRequest
    digest: str
    t_submit: int
    seq: int
    not_before: int = 0
    retries: int = 0
    instance: int = -1
    hedge: bool = False

    @property
    def sort_key(self) -> tuple:
        return (self.request.priority, self.digest, self.seq)

    def expired(self, now: int) -> bool:
        if self.hedge:
            return False
        d = self.request.deadline
        return d is not None and now >= self.t_submit + d


@dataclass(frozen=True)
class BrownoutPolicy:
    """Knobs for deadline-aware load shedding and solve degradation.

    ``shed_depth`` is the queue-depth watermark past which the
    dispatch-order tail sheds; under ``pressure`` (open breakers
    upstream concentrating traffic here) the tighter
    ``pressure_depth`` applies instead.  Only items with
    ``priority >= shed_priority`` are sheddable — latency-critical
    low-priority-number work is never dropped.  ``degrade_depth`` is
    the depth at batch formation past which solves run at
    ``tol * degrade_tol_factor`` and responses carry
    ``degraded=True``.
    """

    shed_depth: int = 24
    pressure_depth: int = 12
    shed_priority: int = 2
    degrade_depth: int = 12
    degrade_tol_factor: float = 1e3

    def depth_limit(self, *, pressure: bool = False) -> int:
        return self.pressure_depth if pressure else self.shed_depth

    def degrades(self, depth: int, *, pressure: bool = False) -> bool:
        return depth > self.degrade_depth or (
            pressure and depth > self.degrade_depth // 2
        )


class Scheduler:
    """Bounded, deterministic dispatch queue over :class:`PendingItem`."""

    def __init__(self, *, max_pending: int = 128, max_batch: int = 8,
                 max_retries: int = 2, backoff: int = 1000):
        if max_batch < 1 or max_pending < 1:
            raise ValueError("max_pending and max_batch must be >= 1")
        self.max_pending = int(max_pending)
        self.max_batch = int(max_batch)
        self.max_retries = int(max_retries)
        self.backoff = int(backoff)
        self.pending: list[PendingItem] = []
        self._seq = 0
        #: optional flight recorder (:class:`repro.obs.EventLog`) and
        #: the shard name stamped onto emitted events; wired by the
        #: owning service.  Every emission site below is guarded by a
        #: single ``is not None`` check, so the disabled path costs one
        #: comparison.
        self.recorder = None
        self.shard: str | None = None

    @property
    def depth(self) -> int:
        return len(self.pending)

    def submit(self, request: SolveRequest, clock: VirtualClock, *,
               t_submit: int | None = None, instance: int = -1,
               hedge: bool = False) -> PendingItem | None:
        """Admit a request; None means the queue is full (backpressure).

        ``t_submit`` overrides the recorded submission tick — the fleet
        layer passes the *arrival* tick, which can trail the shard's
        own clock when the shard is busy (latency is measured from
        arrival, not from when the shard got around to looking).
        """
        if len(self.pending) >= self.max_pending:
            return None
        self._seq += 1
        item = PendingItem(
            request=request, digest=request.digest,
            t_submit=clock.now if t_submit is None else int(t_submit),
            seq=self._seq, not_before=clock.now,
            instance=int(instance), hedge=bool(hedge),
        )
        self.pending.append(item)
        if self.recorder is not None:
            self.recorder.emit(
                "enqueue", item.digest, tick=clock.now, shard=self.shard,
                t_submit=item.t_submit, retries=item.retries,
                depth=len(self.pending),
            )
        return item

    def adopt(self, request: SolveRequest, clock: VirtualClock, *,
              t_submit: int, retries: int = 0,
              not_before: int | None = None, instance: int = -1,
              hedge: bool = False) -> PendingItem | None:
        """Admit an item that already lived on another scheduler.

        Used by cross-shard work stealing, hedged re-dispatch and
        checkpointed fail-over replay: the original submission tick,
        retry count and delivery instance are preserved (latency,
        retry budgets and exactly-once identity carry over), only the
        dispatch sequence number is local.
        """
        item = self.submit(request, clock, t_submit=t_submit,
                           instance=instance, hedge=hedge)
        if item is None:
            return None
        item.retries = int(retries)
        if not_before is not None:
            item.not_before = max(item.not_before, int(not_before))
        return item

    def cancel_instance(self, instance: int) -> list[PendingItem]:
        """Remove every still-queued copy of a delivery instance (the
        losers of a hedge race).  In-flight copies — already popped
        into a dispatched batch — are not reachable here; the owning
        service suppresses their completion instead."""
        if instance < 0:
            return []
        gone = [it for it in self.pending if it.instance == instance]
        for it in gone:
            self.pending.remove(it)
        return gone

    def shed_overload(self, clock: VirtualClock, policy: BrownoutPolicy,
                      *, pressure: bool = False) -> list[PendingItem]:
        """Brownout: pop the sheddable dispatch-order tail while the
        queue sits past the policy's depth watermark.

        Returns the shed items (the service finalizes each as a typed
        ``rejected/shed`` response).  Hedge copies are never shed here
        — cancelling them is the hedging layer's call — and items
        below ``shed_priority`` are protected.  Purely a function of
        (queue state, policy, pressure flag), hence deterministic.
        """
        limit = policy.depth_limit(pressure=pressure)
        if len(self.pending) <= limit:
            return []
        sheddable = sorted(
            (it for it in self.pending
             if not it.hedge and it.request.priority >= policy.shed_priority),
            key=lambda it: it.sort_key,
        )
        out: list[PendingItem] = []
        while sheddable and len(self.pending) > limit:
            it = sheddable.pop()
            self.pending.remove(it)
            out.append(it)
        return out

    def steal_items(self, n: int, now: int) -> list[PendingItem]:
        """Remove up to ``n`` pending items for migration to another
        shard — the *tail* of the dispatch order (the work this queue
        would get to last), skipping expired and backed-off items.

        Taking from the tail keeps the head batch intact (the items
        about to dispatch here stay here) and is deterministic: the
        dispatch order is keyed by (priority, digest, seq), so any run
        of the same fleet state steals the same items.
        """
        if n <= 0:
            return []
        eligible = [it for it in self.pending
                    if it.not_before <= now and not it.expired(now)]
        victims = sorted(eligible, key=lambda it: it.sort_key)[-n:]
        for it in victims:
            self.pending.remove(it)
        return victims

    def ready_time(self, clock: VirtualClock) -> int | None:
        """The earliest virtual tick this queue could act: ``None``
        when empty, ``clock.now`` if anything is dispatchable or
        already expired, else the earliest backed-off ``not_before``.
        The fleet's discrete-event loop uses this to pick which shard
        moves next."""
        if not self.pending:
            return None
        if any(it.not_before <= clock.now or it.expired(clock.now)
               for it in self.pending):
            return clock.now
        return min(it.not_before for it in self.pending)

    def requeue(self, item: PendingItem, clock: VirtualClock) -> None:
        """Back off a broken-down item: eligible again at
        ``now + backoff * 2**retries``."""
        item.retries += 1
        item.not_before = clock.now + self.backoff * 2 ** (item.retries - 1)
        self.pending.append(item)
        if self.recorder is not None:
            self.recorder.emit(
                "retry", item.digest, tick=clock.now, shard=self.shard,
                retries=item.retries, not_before=item.not_before,
            )

    def next_batch(self, clock: VirtualClock
                   ) -> tuple[list[PendingItem], list[PendingItem]]:
        """Pop the next batch to execute plus any expired items.

        Expired items (deadline already missed at ``clock.now``) are
        removed first.  If every survivor is backed off into the
        future, the clock jumps to the earliest ``not_before`` (virtual
        time has nothing else to do).  The batch is every eligible item
        sharing the head item's batch key, in dispatch order, capped at
        ``max_batch``.
        """
        expired = [it for it in self.pending if it.expired(clock.now)]
        for it in expired:
            self.pending.remove(it)
        if not self.pending:
            return [], expired
        eligible = [it for it in self.pending if it.not_before <= clock.now]
        if not eligible:
            clock.jump_to(min(it.not_before for it in self.pending))
            eligible = [it for it in self.pending
                        if it.not_before <= clock.now]
        head = min(eligible, key=lambda it: it.sort_key)
        key = head.request.batch_key
        batch = sorted(
            (it for it in eligible if it.request.batch_key == key),
            key=lambda it: it.sort_key,
        )[: self.max_batch]
        for it in batch:
            self.pending.remove(it)
        return batch, expired
