"""The in-process solver service: facade, synchronous client, workload.

:class:`SolverService` composes the serving stack — typed requests
(:mod:`repro.serve.api`), the content-addressed artifact cache
(:mod:`repro.serve.cache`), fingerprint batching
(:mod:`repro.serve.batcher`) and the deterministic virtual-clock
scheduler (:mod:`repro.serve.scheduler`) — behind two calls::

    svc = SolverService(cache_bytes=64 << 20, max_batch=8)
    for req in workload:
        svc.submit(req)        # → Rejected on admission refusal
    responses = svc.drain()    # completion order
    svc.stream_digest          # sha256 chain over response digests

Every completed response folds its canonical digest into a running
**stream digest** in completion order; replaying an identical request
stream reproduces it bit for bit (the CI smoke step runs the demo
workload twice and diffs the digests).  Per-request observability:
``serve.request`` spans, ``serve.requests{status=…}`` counters, a
``serve.latency_ticks`` histogram and a ``serve.queue_depth`` gauge.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..kernels import use_backend
from ..obs import Histogram
from ..obs import add as obs_add
from ..obs import observe as obs_observe
from ..obs import set_gauge, span
from ..resilience.faults import ArtifactCorruption, SolverBreakdown
from .api import Rejected, SolveRequest, SolveResponse
from .batcher import build_entry, ensure_factor, solve_batch
from .cache import ArtifactCache
from .scheduler import (
    BrownoutPolicy,
    PendingItem,
    Scheduler,
    VirtualClock,
    cost_build,
    cost_factor,
    cost_solve,
)

__all__ = ["SolverService", "SolverClient", "demo_workload"]


class SolverService:
    """Deterministic in-process solver-as-a-service facade.

    ``fault_injector(request, retries)`` is the resilience hook: called
    before each batch member executes, it may raise
    :class:`~repro.resilience.faults.SolverBreakdown` to exercise the
    retry-with-backoff path (the serve analogue of
    :class:`repro.resilience.faults.FaultSchedule`).  Real Krylov
    breakdowns surface through the same path.
    """

    def __init__(self, *, cache_bytes: int = 256 << 20,
                 max_pending: int = 128, max_batch: int = 8,
                 max_retries: int = 2, backoff: int = 1000,
                 fault_injector=None, name: str | None = None,
                 recorder=None, brownout: BrownoutPolicy | None = None,
                 clock: VirtualClock | None = None):
        self.name = name
        self.cache = ArtifactCache(cache_bytes, name=name)
        self.scheduler = Scheduler(
            max_pending=max_pending, max_batch=max_batch,
            max_retries=max_retries, backoff=backoff,
        )
        #: the fleet's chaos harness substitutes a slowdown-scaling
        #: clock here; default is the plain monotonic tick counter
        self.clock = VirtualClock() if clock is None else clock
        self.fault_injector = fault_injector
        self.responses: list[SolveResponse] = []
        self.latency = Histogram()
        self.batches = 0
        self.batched_requests = 0
        self._status_counts: dict[str, int] = {}
        self._stream = hashlib.sha256()
        #: optional flight recorder (:class:`repro.obs.EventLog`); every
        #: emission site costs one ``is not None`` check when absent
        self.recorder = recorder
        self.scheduler.recorder = recorder
        self.scheduler.shard = name
        #: monotonic batch counter — unlike ``self.batches`` it also
        #: counts batches that died in a breakdown, so every dispatched
        #: batch gets a distinct ``bid`` in the event stream
        self._batch_seq = 0
        #: observer called with every finalized response — the fleet
        #: layer hangs its durable completion log and digests here
        self.on_response = None
        #: deadline-aware brownout policy (None = never shed/degrade)
        self.brownout = brownout
        #: external overload signal (the fleet raises it while circuit
        #: breakers are open and survivors absorb rerouted traffic)
        self.pressure = False
        #: exactly-once hook: ``completion_guard(item, kind)`` is
        #: consulted before any terminal disposition of a pending item
        #: (kind ∈ solve/failed/expire/shed — mark-if-first — or retry
        #: — peek only).  Returning False suppresses the response
        #: silently: the item's delivery instance already completed on
        #: another shard (hedge race, duplicated handoff).
        self.completion_guard = None

    # -- submission ------------------------------------------------------

    def submit(self, request: SolveRequest, *,
               t_submit: int | None = None) -> SolveResponse | None:
        """Admit a request.  Returns ``None`` on acceptance or a typed
        :class:`Rejected` (already finalized into the stream) when the
        queue is full.  ``t_submit`` overrides the recorded submission
        tick (fleet arrivals trail the shard clock when it is busy)."""
        _, rejected = self.submit_item(request, t_submit=t_submit)
        return rejected

    def submit_item(self, request: SolveRequest, *,
                    t_submit: int | None = None, instance: int = -1
                    ) -> tuple[PendingItem | None, SolveResponse | None]:
        """:meth:`submit` variant returning the admitted pending item.

        The fleet uses the item handle for hedging and exactly-once
        bookkeeping; ``instance`` is the fleet-assigned delivery id.
        Returns ``(item, None)`` on admission or ``(None, rejected)``
        on backpressure.
        """
        request.validate()
        arrival = self.clock.now if t_submit is None else int(t_submit)
        if self.recorder is not None:
            self.recorder.emit(
                "submit", request.digest, tick=arrival, shard=self.name,
                pde=request.pde, priority=request.priority,
                deadline=request.deadline,
            )
        item = self.scheduler.submit(request, self.clock,
                                     t_submit=t_submit, instance=instance)
        if item is None:
            if self.recorder is not None:
                self.recorder.emit(
                    "reject", request.digest, tick=self.clock.now,
                    shard=self.name, reason="queue_full",
                    depth=self.scheduler.depth,
                )
            rej = Rejected(
                request.digest, "queue_full", pde=request.pde,
                t_submit=arrival, t_done=self.clock.now,
            )
            self._finalize(rej)
            return None, rej
        if self.recorder is not None:
            self.recorder.emit(
                "admit", request.digest, tick=self.clock.now,
                shard=self.name, depth=self.scheduler.depth,
            )
        set_gauge("serve.queue_depth", self.scheduler.depth)
        return item, None

    # -- the serving loop ------------------------------------------------

    def step(self) -> list[SolveResponse]:
        """One scheduling round: expire what is overdue, run one batch.

        The fleet's discrete-event loop interleaves many shards by
        stepping each one batch at a time; :meth:`drain` is just
        ``step`` until empty."""
        done: list[SolveResponse] = []
        shed: list[PendingItem] = []
        if self.brownout is not None:
            shed = self.scheduler.shed_overload(
                self.clock, self.brownout, pressure=self.pressure
            )
        batch, expired = self.scheduler.next_batch(self.clock)
        for it in expired:
            if (self.completion_guard is not None
                    and not self.completion_guard(it, "expire")):
                continue
            if self.recorder is not None:
                self.recorder.emit(
                    "reject", it.digest, tick=self.clock.now,
                    shard=self.name, reason="deadline_exceeded",
                    retries=it.retries,
                )
            done.append(self._finalize(Rejected(
                it.digest, "deadline_exceeded", pde=it.request.pde,
                t_submit=it.t_submit, t_done=self.clock.now,
                retries=it.retries,
            )))
        for it in shed:
            if (self.completion_guard is not None
                    and not self.completion_guard(it, "shed")):
                continue
            if self.recorder is not None:
                self.recorder.emit(
                    "shed", it.digest, tick=self.clock.now,
                    shard=self.name, depth=self.scheduler.depth,
                    priority=it.request.priority,
                )
            obs_add("serve.shed", 1)
            done.append(self._finalize(Rejected(
                it.digest, "shed", pde=it.request.pde,
                t_submit=it.t_submit, t_done=self.clock.now,
                retries=it.retries,
            )))
        set_gauge("serve.queue_depth", self.scheduler.depth)
        if batch:
            done.extend(self._run_batch(batch))
        return done

    def drain(self) -> list[SolveResponse]:
        """Run the event loop until the queue is empty; returns the
        responses completed by this call, in completion order."""
        done: list[SolveResponse] = []
        while self.scheduler.depth:
            done.extend(self.step())
        return done

    def ready_time(self) -> int | None:
        """Earliest virtual tick this service could act (see
        :meth:`repro.serve.scheduler.Scheduler.ready_time`)."""
        return self.scheduler.ready_time(self.clock)

    def _resolve_entry(self, request: SolveRequest, bid: str = ""):
        """Resolve the request's cache entry; the shard adapter hook.

        Returns ``(entry, hit)``.  The base service knows one tier: L1
        miss → build (advancing the clock by the build cost).  The
        fleet's shard override consults the shared second tier between
        the miss and the build.  ``bid`` is the dispatching batch's id;
        cache/build events are batch-scoped and join every member's
        timeline through it."""
        entry = self._lookup_verified(request, bid)
        if entry is not None:
            if self.recorder is not None:
                self.recorder.emit(
                    "cache_hit", request.digest, tick=self.clock.now,
                    shard=self.name, tier="l1", bid=bid, ticks=0,
                )
            return entry, True
        if self.recorder is not None:
            self.recorder.emit(
                "cache_miss", request.digest, tick=self.clock.now,
                shard=self.name, tier="l1", bid=bid,
            )
        entry = build_entry(request)
        ticks = cost_build(entry.mesh.n_elem)
        self.clock.advance(ticks)
        if self.recorder is not None:
            self.recorder.emit(
                "build", request.digest, tick=self.clock.now,
                shard=self.name, bid=bid, ticks=ticks,
                n_elem=entry.mesh.n_elem,
            )
        return self.cache.insert(request.mesh_digest, entry), False

    def _lookup_verified(self, request: SolveRequest, bid: str = ""):
        """L1 lookup that degrades a digest-verification failure into a
        miss: the corrupted entry is already evicted + quarantined by
        the cache; we record the detection and fall through to a
        rebuild, so corruption costs one rebuild, never a wrong
        solution."""
        try:
            return self.cache.lookup(request.mesh_digest)
        except ArtifactCorruption as exc:
            if self.recorder is not None:
                self.recorder.emit(
                    "corrupt_detect", request.digest, tick=self.clock.now,
                    shard=self.name, bid=bid, tier=exc.tier,
                    key=exc.key,
                )
                self.recorder.emit(
                    "quarantine", request.digest, tick=self.clock.now,
                    shard=self.name, bid=bid, key=exc.key,
                )
            return None

    def _run_batch(self, batch: list[PendingItem]) -> list[SolveResponse]:
        req0 = batch[0].request
        out: list[SolveResponse] = []
        self._batch_seq += 1
        bid = f"{self.name or 'serve'}#b{self._batch_seq}"
        # brownout degrade decision at batch formation: queue depth
        # (batch included) past the watermark, or external pressure
        degraded = False
        tol_scale = 1.0
        if self.brownout is not None and self.brownout.degrades(
                self.scheduler.depth + len(batch), pressure=self.pressure):
            degraded = True
            tol_scale = self.brownout.degrade_tol_factor
        with span("serve.batch", pde=req0.pde) as bsp:
            t_start = self.clock.now
            if self.recorder is not None:
                for it in batch:
                    self.recorder.emit(
                        "batch_form", it.digest, tick=t_start,
                        shard=self.name, bid=bid, size=len(batch),
                    )
                if degraded:
                    for it in batch:
                        self.recorder.emit(
                            "degrade", it.digest, tick=t_start,
                            shard=self.name, bid=bid, tol_scale=tol_scale,
                        )
            if degraded:
                obs_add("serve.degraded", len(batch))
            with use_backend(req0.backend):
                entry, hit = self._resolve_entry(req0, bid)
                factor, built = ensure_factor(entry, req0)
            if built:
                ticks = cost_factor(entry.mesh.n_nodes)
                self.clock.advance(ticks)
                self.cache.enforce_budget(protect=entry.fingerprint)
                if self.recorder is not None:
                    self.recorder.emit(
                        "factor", req0.digest, tick=self.clock.now,
                        shard=self.name, bid=bid, ticks=ticks,
                    )
            emit = None
            if self.recorder is not None:
                def emit(**kw):
                    self.recorder.emit(
                        "solve_exec", req0.digest, tick=self.clock.now,
                        shard=self.name, bid=bid, **kw,
                    )
            try:
                if self.fault_injector is not None:
                    for it in batch:
                        self.fault_injector(it.request, it.retries)
                if self.recorder is not None:
                    for it in batch:
                        self.recorder.emit(
                            "solve_start", it.digest, tick=self.clock.now,
                            shard=self.name, bid=bid,
                        )
                with use_backend(req0.backend):
                    outcome = solve_batch(
                        factor, [it.request for it in batch], emit=emit,
                        tol_scale=tol_scale,
                    )
            except SolverBreakdown as exc:
                bsp.event("solver_breakdown",
                          reason=getattr(exc, "reason", "breakdown"))
                obs_add("serve.breakdowns", 1)
                return self._handle_breakdown(batch)
            self.clock.advance(cost_solve(
                entry.mesh.n_nodes, outcome.matvecs, len(batch)
            ))
            bsp.add("requests", len(batch))
            bsp.add("cache_hit", int(hit))
            self.batches += 1
            self.batched_requests += len(batch)
            for j, it in enumerate(batch):
                if (self.completion_guard is not None
                        and not self.completion_guard(it, "solve")):
                    continue  # a copy already won the hedge race
                reason = outcome.reasons[j]
                status = "ok" if reason in ("converged", "direct") else "failed"
                resp = SolveResponse(
                    request_digest=it.digest, status=status,
                    pde=it.request.pde, reason=reason, cache_hit=hit,
                    batch_size=len(batch),
                    iterations=outcome.iterations[j],
                    residual=outcome.residuals[j],
                    solution_digest=outcome.digest(j),
                    t_submit=it.t_submit, t_start=t_start,
                    t_done=self.clock.now, retries=it.retries,
                    degraded=degraded,
                )
                out.append(self._finalize(resp, bid=bid))
        return out

    def _handle_breakdown(self, batch: list[PendingItem]
                          ) -> list[SolveResponse]:
        """Retry-with-backoff on SolverBreakdown, typed failure when
        the retry budget is spent."""
        out = []
        for it in batch:
            if it.retries >= self.scheduler.max_retries:
                if (self.completion_guard is not None
                        and not self.completion_guard(it, "failed")):
                    continue
                out.append(self._finalize(SolveResponse(
                    request_digest=it.digest, status="failed",
                    pde=it.request.pde, reason="retries_exhausted",
                    t_submit=it.t_submit, t_start=self.clock.now,
                    t_done=self.clock.now, retries=it.retries,
                )))
            else:
                if (self.completion_guard is not None
                        and not self.completion_guard(it, "retry")):
                    continue  # instance already completed elsewhere
                self.scheduler.requeue(it, self.clock)
                obs_add("serve.retries", 1)
        set_gauge("serve.queue_depth", self.scheduler.depth)
        return out

    # -- response stream -------------------------------------------------

    def _finalize(self, resp: SolveResponse,
                  bid: str = "") -> SolveResponse:
        if self.recorder is not None:
            self.recorder.emit(
                "complete", resp.request_digest, tick=resp.t_done,
                shard=self.name, status=resp.status, reason=resp.reason,
                t_submit=resp.t_submit, retries=resp.retries,
                pde=resp.pde, batch_size=resp.batch_size, bid=bid,
                degraded=resp.degraded,
            )
        self.responses.append(resp)
        self._stream.update(resp.digest.encode())
        self._status_counts[resp.status] = (
            self._status_counts.get(resp.status, 0) + 1
        )
        self.latency.observe(resp.latency)
        with span("serve.request", merge=True) as rsp:
            rsp.add("requests", 1)
            rsp.add("latency_ticks", resp.latency)
        obs_add("serve.requests", 1, status=resp.status)
        obs_observe("serve.latency_ticks", resp.latency)
        if self.on_response is not None:
            self.on_response(resp)
        return resp

    @property
    def stream_digest(self) -> str:
        """sha256 chained over response digests in completion order —
        the single value that certifies a deterministic replay."""
        return self._stream.hexdigest()

    def stats(self) -> dict:
        mean_batch = (
            self.batched_requests / self.batches if self.batches else 0.0
        )
        return {
            "responses": len(self.responses),
            "status": dict(sorted(self._status_counts.items())),
            "batches": self.batches,
            "mean_batch_size": round(mean_batch, 3),
            "clock_ticks": self.clock.now,
            "latency_ticks": self.latency.summary(),
            "cache": self.cache.stats(),
            "stream_digest": self.stream_digest,
        }


class SolverClient:
    """Synchronous convenience wrapper: submit one request, drain, and
    return that request's response."""

    def __init__(self, service: SolverService):
        self.service = service

    def solve(self, request: SolveRequest) -> SolveResponse:
        rejected = self.service.submit(request)
        if rejected is not None:
            return rejected
        digest = request.digest
        completed = self.service.drain()
        matches = [r for r in completed if r.request_digest == digest]
        if not matches:  # pragma: no cover - drain always resolves the queue
            raise RuntimeError(f"request {digest[:12]}… was never completed")
        return matches[-1]


def demo_workload(n: int = 30, seed: int = 0,
                  base_level: int = 2, boundary_level: int = 3
                  ) -> list[SolveRequest]:
    """A deterministic mixed workload: a few discretizations × three
    PDE kinds × per-request RHS amplitudes and priorities.

    Used by the ``serve-demo`` CLI, the throughput bench and the replay
    tests; the same ``(n, seed)`` always generates byte-identical
    requests.
    """
    disk = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.3}
    small_disk = {"shape": "sphere", "center": (0.5, 0.5), "radius": 0.2}
    channel = {"shape": "box", "lo": (0.0, 0.0), "hi": (4.0, 1.0),
               "domain_hi": (4.0, 4.0), "scale": 4.0}
    templates = [
        dict(geometry=disk, pde="poisson"),
        dict(geometry=small_disk, pde="poisson"),
        dict(geometry=disk, pde="sbm"),
        dict(geometry=channel, pde="transport",
             velocity=(1.0, 0.0), kappa=0.05, dt=0.2, steps=2),
        dict(geometry=small_disk, pde="poisson"),
        dict(geometry=disk, pde="poisson"),
    ]
    rng = np.random.default_rng(seed)
    reqs = []
    for i in range(n):
        t = templates[i % len(templates)]
        reqs.append(SolveRequest(
            base_level=base_level, boundary_level=boundary_level,
            f=round(float(rng.uniform(0.5, 2.0)), 6),
            priority=int(rng.integers(0, 3)),
            **t,
        ))
    return reqs
