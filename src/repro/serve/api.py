"""Typed, versioned solve requests/responses (``repro.serve/req.v1``).

The service boundary of :mod:`repro.serve`: a :class:`SolveRequest`
names a geometry, a PDE kind, a refinement depth and solve parameters;
a :class:`SolveResponse` carries the outcome plus the serving metadata
(cache hit, batch size, virtual-clock timestamps, retries).  Both are
plain dataclasses with a **canonical sha256 digest** over their
sorted-key JSON document, which is what makes the whole serving layer
checkable end to end: identical request streams must produce
bit-identical response digests, and the CI smoke test asserts exactly
that on the stream digest.

Three digests matter, at three scopes:

``SolveRequest.digest``
    the full request identity (dedup / logging / audit).
``SolveRequest.mesh_digest``
    only the fields the *discretization* depends on (geometry +
    refinement depth + element order + curve).  This is the cache
    lookup key before a mesh exists; after the first build it is
    aliased to the operator-plan fingerprint of
    :func:`repro.core.plan.mesh_fingerprint`.
``SolveRequest.batch_key``
    ``mesh_digest`` + the operator/factor parameters (PDE kind,
    tolerance, transport coefficients).  Requests sharing a batch key
    share the cached factorization and are solved as one multi-RHS
    block by :mod:`repro.serve.batcher`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields

import numpy as np

__all__ = [
    "REQ_SCHEMA_ID",
    "RESP_SCHEMA_ID",
    "PDE_KINDS",
    "SolveRequest",
    "SolveResponse",
    "Rejected",
    "canonical_geometry",
    "build_domain",
    "solution_digest",
]

REQ_SCHEMA_ID = "repro.serve/req.v1"
RESP_SCHEMA_ID = "repro.serve/resp.v1"

#: Supported PDE kinds: strong-Dirichlet Poisson (batched multi-RHS
#: CG), Shifted-Boundary-Method Poisson (cached LU), SUPG transport
#: (cached implicit-Euler LU, block time stepping), adaptive Poisson
#: (one cached estimator-driven refinement trajectory per batch key —
#: Dörfler marking is invariant under RHS scaling, so every request in
#: the batch shares the adapted mesh and scales the unit solution).
PDE_KINDS = ("poisson", "sbm", "transport", "amr")

_SHAPES = ("sphere", "box")


def _sha256(doc: dict) -> str:
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def canonical_geometry(spec: dict) -> dict:
    """Validate and canonicalise a geometry spec.

    Two shapes cover the paper's workloads: ``sphere`` (a ball carved
    out of the unit cube/square — the paper's carved-sphere benchmark)
    and ``box`` (a retained box inside a larger cube — the channel).
    All coordinates are coerced to floats so digests never depend on
    int-vs-float spelling.
    """
    if not isinstance(spec, dict):
        raise ValueError("geometry must be a dict")
    shape = spec.get("shape")
    if shape not in _SHAPES:
        raise ValueError(f"geometry shape must be one of {_SHAPES}, got {shape!r}")
    out: dict = {"shape": shape, "scale": float(spec.get("scale", 1.0))}
    if shape == "sphere":
        center = [float(c) for c in spec["center"]]
        if len(center) not in (2, 3):
            raise ValueError("sphere center must be 2-D or 3-D")
        out["center"] = center
        out["radius"] = float(spec["radius"])
        if out["radius"] <= 0:
            raise ValueError("sphere radius must be positive")
    else:  # box
        lo = [float(c) for c in spec["lo"]]
        hi = [float(c) for c in spec["hi"]]
        if len(lo) != len(hi) or len(lo) not in (2, 3):
            raise ValueError("box lo/hi must both be 2-D or 3-D")
        out["lo"], out["hi"] = lo, hi
        if "domain_hi" in spec:
            out["domain_hi"] = [float(c) for c in spec["domain_hi"]]
    return out


def build_domain(geometry: dict):
    """Instantiate the :class:`repro.core.domain.Domain` of a spec."""
    from ..core.domain import Domain
    from ..geometry import BoxRetain, SphereCarve

    geo = canonical_geometry(geometry)
    if geo["shape"] == "sphere":
        pred = SphereCarve(geo["center"], geo["radius"])
    else:
        dim = len(geo["lo"])
        dom_hi = geo.get("domain_hi", [geo["scale"]] * dim)
        pred = BoxRetain(geo["lo"], geo["hi"], domain=([0.0] * dim, dom_hi))
    return Domain(pred, scale=geo["scale"])


@dataclass(frozen=True)
class SolveRequest:
    """One versioned solve request (schema ``repro.serve/req.v1``).

    ``deadline`` and ``priority`` drive the scheduler: a request whose
    dispatch would start later than ``t_submit + deadline`` virtual
    ticks is rejected with ``deadline_exceeded``; lower ``priority``
    values dispatch first (ties broken by request digest, so the
    schedule is independent of arrival interleaving).
    """

    geometry: dict = field(
        default_factory=lambda: {"shape": "sphere",
                                 "center": (0.5, 0.5), "radius": 0.3}
    )
    pde: str = "poisson"
    base_level: int = 2
    boundary_level: int = 3
    p: int = 1
    tol: float = 1e-10
    deadline: int | None = None
    priority: int = 4
    #: source amplitude (RHS scale) — the per-request column of a batch
    f: float = 1.0
    #: constant Dirichlet boundary value
    g: float = 0.0
    # transport-only coefficients
    velocity: tuple = (1.0, 0.0, 0.0)
    kappa: float = 0.01
    dt: float = 0.1
    steps: int = 1
    # amr-only parameters (see repro.amr.loop.amr_solve)
    amr_cycles: int = 4
    amr_theta: float = 0.5
    #: kernel backend override (repro.kernels); None = server default
    backend: str | None = None

    def validate(self) -> None:
        if self.pde not in PDE_KINDS:
            raise ValueError(f"pde must be one of {PDE_KINDS}, got {self.pde!r}")
        canonical_geometry(self.geometry)
        if not (0 < self.base_level <= self.boundary_level):
            raise ValueError("need 0 < base_level <= boundary_level")
        if self.p not in (1, 2):
            raise ValueError("element order p must be 1 or 2")
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be non-negative")
        if self.pde == "transport" and self.steps < 1:
            raise ValueError("transport needs steps >= 1")
        if self.pde == "amr":
            if self.g != 0.0:
                raise ValueError(
                    "amr requests require g == 0: the shared refinement "
                    "trajectory relies on pure RHS scaling"
                )
            if self.amr_cycles < 0:
                raise ValueError("amr_cycles must be non-negative")
            if not (0.0 < self.amr_theta <= 1.0):
                raise ValueError("amr_theta must be in (0, 1]")
        if self.backend is not None:
            from ..kernels import available_backends

            avail = available_backends()
            if self.backend not in avail:
                raise ValueError(
                    f"unknown kernel backend {self.backend!r}; "
                    f"known: {sorted(avail)}"
                )
            if not avail[self.backend]:
                raise ValueError(
                    f"kernel backend {self.backend!r} is not available "
                    "on this server"
                )

    # -- canonical documents and digests --------------------------------

    def to_doc(self) -> dict:
        doc = {"schema": REQ_SCHEMA_ID}
        for fld in fields(self):
            v = getattr(self, fld.name)
            if fld.name == "backend" and v is None:
                # omitted so pre-backend request digests are unchanged
                continue
            if fld.name == "geometry":
                v = canonical_geometry(v)
            elif fld.name == "velocity":
                v = [float(c) for c in v]
            elif isinstance(v, float):
                v = float(v)
            doc[fld.name] = v
        return doc

    @property
    def digest(self) -> str:
        """Canonical sha256 identity of the full request."""
        return _sha256(self.to_doc())

    @classmethod
    def from_doc(cls, doc: dict) -> "SolveRequest":
        """Rebuild a request from its canonical document.

        Digest-stable round trip (``from_doc(r.to_doc()).digest ==
        r.digest``) — the fleet's fail-over checkpoints persist queued
        requests as documents and rehydrate them on a survivor.
        """
        names = {f.name for f in fields(cls)}
        unknown = set(doc) - names - {"schema"}
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        kw = {k: v for k, v in doc.items() if k in names}
        if "velocity" in kw:
            kw["velocity"] = tuple(float(c) for c in kw["velocity"])
        req = cls(**kw)
        req.validate()
        return req

    def mesh_doc(self) -> dict:
        """The discretization-determining subset of the request."""
        return {
            "geometry": canonical_geometry(self.geometry),
            "base_level": self.base_level,
            "boundary_level": self.boundary_level,
            "p": self.p,
            "curve": "morton",
        }

    @property
    def mesh_digest(self) -> str:
        """Cache lookup key before the mesh (and its operator-plan
        fingerprint) exists."""
        return _sha256(self.mesh_doc())

    def solver_doc(self) -> dict:
        doc = {"mesh": self.mesh_doc(), "pde": self.pde, "tol": self.tol}
        if self.pde == "transport":
            doc["velocity"] = [float(c) for c in self.velocity]
            doc["kappa"] = self.kappa
            doc["dt"] = self.dt
            doc["steps"] = self.steps
        elif self.pde == "amr":
            doc["amr_cycles"] = self.amr_cycles
            doc["amr_theta"] = float(self.amr_theta)
        if self.backend is not None:
            # different kernel backends must not share a solve batch:
            # cross-backend results are only tolerance-equal, and one
            # batch executes under a single use_backend() scope
            doc["backend"] = self.backend
        return doc

    @property
    def batch_key(self) -> str:
        """Requests with equal batch keys share one cached factor and
        solve as one multi-RHS block."""
        return _sha256(self.solver_doc())

    def build_mesh(self):
        """Construct the request's mesh (cold path only — the cache
        makes this a once-per-fingerprint event)."""
        from ..core.mesh import build_mesh

        return build_mesh(
            build_domain(self.geometry), self.base_level,
            self.boundary_level, p=self.p, curve="morton",
        )


def solution_digest(u: np.ndarray) -> str:
    """Content digest of a solution array (dtype/shape-aware)."""
    a = np.ascontiguousarray(u)
    h = hashlib.sha256()
    h.update(f"{a.dtype.str}|{a.shape}|".encode())
    h.update(a.tobytes())
    return h.hexdigest()


@dataclass
class SolveResponse:
    """Outcome of one request (schema ``repro.serve/resp.v1``).

    ``status`` is ``"ok"``, ``"rejected"`` (admission control,
    deadline, or brownout shedding — see :class:`Rejected`) or
    ``"failed"`` (the solver gave up: ``maxiter`` or
    ``retries_exhausted``).  ``degraded`` marks a brownout solve that
    ran at loosened tolerance to protect deadlines under overload.
    Timestamps are virtual scheduler ticks, so they — and therefore
    :attr:`digest` — are bit-reproducible across runs and machines.
    """

    request_digest: str
    status: str
    pde: str = ""
    reason: str = ""
    cache_hit: bool = False
    batch_size: int = 0
    iterations: int = 0
    residual: float = 0.0
    solution_digest: str = ""
    t_submit: int = 0
    t_start: int = 0
    t_done: int = 0
    retries: int = 0
    degraded: bool = False

    def to_doc(self) -> dict:
        doc = {"schema": RESP_SCHEMA_ID}
        for fld in fields(self):
            doc[fld.name] = getattr(self, fld.name)
        return doc

    @property
    def digest(self) -> str:
        """Canonical sha256 over the full response document."""
        return _sha256(self.to_doc())

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency(self) -> int:
        """Virtual ticks between submission and completion."""
        return self.t_done - self.t_submit


class Rejected(SolveResponse):
    """Typed backpressure response: the request was never solved.

    ``reason`` is ``"queue_full"`` (bounded admission),
    ``"deadline_exceeded"`` (the scheduler could not dispatch the
    request before its deadline) or ``"shed"`` (deadline-aware
    brownout dropped the item under overload).  Being a
    :class:`SolveResponse` subclass, rejections flow through the same
    response stream and stream digest as successful solves.
    """

    def __init__(self, request_digest: str, reason: str, *, pde: str = "",
                 t_submit: int = 0, t_done: int = 0, retries: int = 0):
        super().__init__(
            request_digest=request_digest, status="rejected", pde=pde,
            reason=reason, t_submit=t_submit, t_start=t_done, t_done=t_done,
            retries=retries,
        )
