"""Content-addressed artifact cache with byte-budgeted LRU eviction.

The cache is what turns the repo's one-shot pipeline into a service:
the expensive artifacts of a discretization — the carved mesh, its
:class:`repro.core.plan.OperatorContext` and any factorized operators
(assembled stiffness + Jacobi diagonal, SBM LU, transport LU) — are
built once and then served to every request that shares the
operator-plan fingerprint.  A cache-hot request never opens a
``build_mesh`` / ``plan.context_build`` span at all; the smoke tests
assert that.

Keying is two-level, both content-addressed:

* entries are stored under the **plan fingerprint** of
  :func:`repro.core.plan.mesh_fingerprint` (the post-build truth);
* the request-side **mesh digest** (geometry + depth + order, known
  before any build) is aliased to the fingerprint on first insert, so
  later requests resolve without rebuilding anything.

Eviction is deterministic LRU over a byte budget: entries are ranked
by a monotonically increasing use sequence (no wall clock anywhere),
so identical request streams evict identically — the determinism tests
replay a stream under different arrival interleavings and assert the
eviction order matches.  The use sequence is cache-private (not stored
on the entry), so one :class:`CacheEntry` object can be shared by
several caches — the fleet layer keeps the same entry in a shard's L1
and the shared second tier simultaneously.

Metrics: ``serve.cache.{hits,misses,evictions}`` counters and
``serve.cache.{bytes,entries}`` gauges.  A *named* cache (the fleet
gives each shard's L1 its shard id) labels every metric with
``cache="<name>"``, so per-shard cache pressure — bytes and entries
against the budget — is separable in one registry snapshot; tier
promotion decisions and ``fleet-stats`` read exactly these gauges.

``on_evict(entry)``, when set, observes every eviction — the fleet's
demotion hook: an entry falling out of a shard's L1 is offered to the
shared second tier instead of being dropped.
"""

from __future__ import annotations

import hashlib

import scipy.sparse as sp

from ..obs import add as obs_add
from ..obs import set_gauge
from ..resilience.faults import ArtifactCorruption

__all__ = ["CacheEntry", "ArtifactCache", "ArtifactCorruption"]


def _obj_nbytes(obj) -> int:
    """Best-effort byte size of a cached artifact."""
    if obj is None:
        return 0
    if sp.issparse(obj):
        return sum(
            getattr(obj, a).nbytes
            for a in ("data", "indices", "indptr")
            if hasattr(obj, a)
        )
    if hasattr(obj, "nbytes"):
        return int(obj.nbytes)
    return 0


def _entry_base_nbytes(mesh, ctx) -> int:
    total = mesh.leaves.anchors.nbytes + mesh.leaves.levels.nbytes
    total += mesh.nodes.coords.nbytes
    total += _obj_nbytes(ctx.gather)
    total += ctx.h.nbytes + ctx.levels.nbytes
    return int(total)


def _entry_content_digest(mesh, ctx) -> str:
    """sha256 over the entry's base arrays — its birth certificate.

    Covers exactly the data a corrupted artifact would damage: the leaf
    octants, nodal coordinates and the operator context's per-node
    metadata.  Factors are rebuilt from these, so verifying the base is
    what guards every downstream solve.
    """
    h = hashlib.sha256()
    for arr in (mesh.leaves.anchors, mesh.leaves.levels,
                mesh.nodes.coords, ctx.h, ctx.levels):
        h.update(f"{arr.dtype.str}|{arr.shape}|".encode())
        h.update(arr.tobytes())
    return h.hexdigest()


class CacheEntry:
    """One discretization's artifacts: mesh + operator context + factors.

    ``factors`` maps a solver-parameter digest
    (:attr:`repro.serve.api.SolveRequest.batch_key`) to a factor object
    built by :mod:`repro.serve.batcher`; each factor reports its own
    byte estimate so the cache can account for it.  ``content_digest``
    is sealed at construction; :meth:`verify` recomputes it so every
    cache get can prove the artifact is still the one that was built.
    """

    __slots__ = ("fingerprint", "mesh", "ctx", "factors", "_factor_nbytes",
                 "_base_nbytes", "content_digest")

    def __init__(self, fingerprint: str, mesh, ctx):
        self.fingerprint = fingerprint
        self.mesh = mesh
        self.ctx = ctx
        self.factors: dict[str, object] = {}
        self._factor_nbytes: dict[str, int] = {}
        self._base_nbytes = _entry_base_nbytes(mesh, ctx)
        self.content_digest = _entry_content_digest(mesh, ctx)

    def add_factor(self, key: str, factor, nbytes: int) -> None:
        self.factors[key] = factor
        self._factor_nbytes[key] = int(nbytes)

    @property
    def nbytes(self) -> int:
        return self._base_nbytes + sum(self._factor_nbytes.values())

    def verify(self, *, tier: str = "l1") -> None:
        """Recompute the content digest; raise on mismatch."""
        actual = _entry_content_digest(self.mesh, self.ctx)
        if actual != self.content_digest:
            raise ArtifactCorruption(
                self.fingerprint, tier=tier,
                detail=f"stored {self.content_digest[:12]}… "
                       f"recomputed {actual[:12]}…",
            )


class ArtifactCache:
    """Deterministic byte-budgeted LRU over :class:`CacheEntry` objects."""

    def __init__(self, byte_budget: int = 256 << 20, name: str | None = None):
        self.byte_budget = int(byte_budget)
        self.name = name
        self._labels = {} if name is None else {"cache": name}
        self._entries: dict[str, CacheEntry] = {}   # fingerprint → entry
        self._alias: dict[str, str] = {}            # mesh digest → fingerprint
        self._lru: dict[str, int] = {}              # fingerprint → use seq
        self._seq = 0
        self.hits = 0
        self.misses = 0
        #: fingerprints in eviction order — asserted bit-identical by
        #: the interleaving-determinism tests
        self.eviction_log: list[str] = []
        #: observer called with each evicted entry (fleet demotion hook)
        self.on_evict = None
        #: fingerprints whose entries failed digest re-verification —
        #: evicted, counted (``serve.cache.quarantined``) and remembered
        #: so operators can audit which artifacts went bad
        self.quarantined: set[str] = set()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def _touch(self, entry: CacheEntry) -> None:
        self._seq += 1
        self._lru[entry.fingerprint] = self._seq

    def peek(self, mesh_digest: str) -> CacheEntry | None:
        """Resolve without touching LRU state or hit/miss counters —
        the inspection hook the chaos harness uses to find (and damage)
        a live entry without perturbing cache determinism."""
        fp = self._alias.get(mesh_digest)
        return self._entries.get(fp) if fp is not None else None

    def lookup(self, mesh_digest: str) -> CacheEntry | None:
        """Resolve a request-side mesh digest; publishes hit/miss.

        Every hit re-verifies the entry's content digest.  A mismatch
        evicts + quarantines the artifact and raises
        :class:`ArtifactCorruption` — the owning service treats it as a
        miss and rebuilds, so a flipped byte costs one rebuild, never a
        wrong solve.
        """
        fp = self._alias.get(mesh_digest)
        entry = self._entries.get(fp) if fp is not None else None
        if entry is None:
            self.misses += 1
            obs_add("serve.cache.misses", 1, **self._labels)
            return None
        try:
            entry.verify()
        except ArtifactCorruption:
            self.misses += 1
            obs_add("serve.cache.misses", 1, **self._labels)
            self.quarantine(entry)
            raise
        self.hits += 1
        obs_add("serve.cache.hits", 1, **self._labels)
        self._touch(entry)
        return entry

    def quarantine(self, entry: CacheEntry) -> None:
        """Evict a corrupted entry and remember its fingerprint.

        The eviction bypasses ``on_evict`` — a corrupted artifact must
        never be demoted into the shared second tier.
        """
        self.quarantined.add(entry.fingerprint)
        obs_add("serve.cache.quarantined", 1, **self._labels)
        if entry.fingerprint in self._entries:
            self._evict(entry, demote=False)
        self._publish_gauges()

    def insert(self, mesh_digest: str, entry: CacheEntry) -> CacheEntry:
        """Insert (or re-alias to an existing fingerprint) and enforce
        the byte budget.  The inserted entry itself is never evicted by
        its own insertion."""
        existing = self._entries.get(entry.fingerprint)
        if existing is not None:
            # two mesh specs can legitimately hash to the same carved
            # discretization — share the entry, keep one copy
            self._alias[mesh_digest] = existing.fingerprint
            self._touch(existing)
            return existing
        self._entries[entry.fingerprint] = entry
        self._alias[mesh_digest] = entry.fingerprint
        self._touch(entry)
        self.enforce_budget(protect=entry.fingerprint)
        self._publish_gauges()
        return entry

    def enforce_budget(self, protect: str | None = None) -> None:
        """Evict least-recently-used entries until within budget.

        ``protect`` pins one fingerprint (the entry being served right
        now); if that single entry alone exceeds the budget it stays —
        a service cannot refuse to hold the discretization it is
        actively solving on.
        """
        while self.nbytes > self.byte_budget and len(self._entries) > 1:
            victim = min(
                (e for e in self._entries.values()
                 if e.fingerprint != protect),
                key=lambda e: self._lru[e.fingerprint],
                default=None,
            )
            if victim is None:
                break
            self._evict(victim)
        self._publish_gauges()

    def _evict(self, entry: CacheEntry, demote: bool = True) -> None:
        del self._entries[entry.fingerprint]
        del self._lru[entry.fingerprint]
        for k in [k for k, fp in self._alias.items()
                  if fp == entry.fingerprint]:
            del self._alias[k]
        self.eviction_log.append(entry.fingerprint)
        obs_add("serve.cache.evictions", 1, **self._labels)
        if demote and self.on_evict is not None:
            self.on_evict(entry)

    def _publish_gauges(self) -> None:
        set_gauge("serve.cache.bytes", self.nbytes, **self._labels)
        set_gauge("serve.cache.entries", len(self._entries), **self._labels)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "entries": len(self._entries),
            "bytes": self.nbytes,
            "byte_budget": self.byte_budget,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": len(self.eviction_log),
            "quarantined": len(self.quarantined),
        }
