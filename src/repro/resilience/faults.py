"""Deterministic fault model for the simulated communicator.

The paper's production context (16K-core Frontera runs) treats rank
loss and message corruption as routine operational hazards.  This
module gives :class:`repro.parallel.SimComm` a *seeded, deterministic*
fault plan: a :class:`FaultSchedule` names exactly which collective
step kills which rank, or which (src, dst) message is dropped or
bit-corrupted.  Determinism is the point — a recovery experiment must
replay the same fault under the same seed, or its answer-matching
acceptance check means nothing.

Faults surface as typed exceptions:

* :class:`RankFailure` — a rank died; the communicator is poisoned and
  every subsequent collective raises until the driver rebuilds it over
  the survivors (mirroring a broken MPI communicator).
* :class:`MessageCorruption` — a message was dropped or bit-flipped
  *and detected* (the transport-CRC model).  Schedules may mark a
  fault ``silent`` to deliver the damage instead, which is how the
  NaN/Inf guards downstream are exercised.
* :class:`SolverBreakdown` — a solver-level failure (non-finite state,
  exhausted retry budget) raised by the hardened Newton / NS drivers.

Every injected fault is recorded as a ``resilience.faults_injected``
counter and a span event on the innermost open :mod:`repro.obs` span.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultError",
    "RankFailure",
    "MessageCorruption",
    "SolverBreakdown",
    "ArtifactCorruption",
    "Fault",
    "FaultSchedule",
    "corrupt_buffer",
    "corrupt_in_place",
]


class FaultError(RuntimeError):
    """Base class of all injected/detected resilience faults."""


class RankFailure(FaultError):
    """A rank crashed at a collective; the communicator is now broken."""

    def __init__(self, rank: int, op: str, op_index: int):
        self.rank = int(rank)
        self.op = op
        self.op_index = int(op_index)
        self.phase: str | None = None  # filled in by callers with context
        super().__init__(
            f"rank {rank} failed at collective #{op_index} ({op})"
        )


class MessageCorruption(FaultError):
    """A point-to-point message was dropped or bit-corrupted (detected)."""

    def __init__(self, src: int, dst: int, mode: str, op: str, op_index: int):
        self.src = int(src)
        self.dst = int(dst)
        self.mode = mode  # "drop" | "corrupt"
        self.op = op
        self.op_index = int(op_index)
        super().__init__(
            f"message {src}->{dst} {mode} at collective #{op_index} ({op})"
        )


class SolverBreakdown(FaultError):
    """A solver exhausted its retry budget or hit non-finite state."""

    def __init__(self, where: str, reason: str, detail: str = ""):
        self.where = where
        self.reason = reason
        msg = f"{where}: {reason}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class ArtifactCorruption(FaultError):
    """A cached artifact failed its content-digest re-verification.

    Raised by :class:`repro.serve.cache.ArtifactCache` (and the fleet's
    shared second tier) when an entry's stored arrays no longer hash to
    the digest computed at build time — bit rot, a torn write, or the
    chaos harness flipping a byte.  The owning service quarantines the
    key and rebuilds from scratch.
    """

    def __init__(self, key: str, tier: str = "l1", detail: str = ""):
        self.key = key
        self.tier = tier
        msg = f"artifact {key[:16]}… failed digest verification ({tier})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``kind`` is ``"crash"`` (needs ``rank``), ``"drop"`` or
    ``"corrupt"`` (need ``src``/``dst``); ``at_op`` is the communicator
    collective index (0-based, every collective increments it) at which
    the fault fires.  ``silent`` message faults deliver the damaged
    payload instead of raising.
    """

    kind: str
    at_op: int
    rank: int | None = None
    src: int | None = None
    dst: int | None = None
    silent: bool = False

    def describe(self) -> str:
        if self.kind == "crash":
            return f"crash rank {self.rank} @ op {self.at_op}"
        tag = " (silent)" if self.silent else ""
        return f"{self.kind} msg {self.src}->{self.dst} @ op {self.at_op}{tag}"


class FaultSchedule:
    """A seeded, fully deterministic plan of faults to inject.

    Faults are either declared explicitly (:meth:`crash_rank`,
    :meth:`drop_message`, :meth:`corrupt_message`) or drawn
    deterministically from the seed (:meth:`random`).  The schedule is
    one-shot: a fault that fired is *consumed* and does not re-fire on
    a rebuilt communicator (the same schedule object is reinstalled by
    the recovery drivers so later faults still apply).
    """

    def __init__(self, seed: int = 0, faults: list[Fault] | None = None):
        self.seed = int(seed)
        self.faults: list[Fault] = list(faults or [])
        self._consumed: set[int] = set()

    # -- construction ---------------------------------------------------

    def crash_rank(self, rank: int, at_op: int) -> "FaultSchedule":
        self.faults.append(Fault("crash", int(at_op), rank=int(rank)))
        return self

    def drop_message(self, src: int, dst: int, at_op: int,
                     silent: bool = False) -> "FaultSchedule":
        self.faults.append(
            Fault("drop", int(at_op), src=int(src), dst=int(dst), silent=silent)
        )
        return self

    def corrupt_message(self, src: int, dst: int, at_op: int,
                        silent: bool = False) -> "FaultSchedule":
        self.faults.append(
            Fault("corrupt", int(at_op), src=int(src), dst=int(dst),
                  silent=silent)
        )
        return self

    @classmethod
    def random(cls, seed: int, nranks: int, max_op: int,
               n_faults: int = 1, kinds: tuple[str, ...] = ("crash",),
               ) -> "FaultSchedule":
        """Draw ``n_faults`` faults deterministically from ``seed``.

        The same (seed, nranks, max_op, n_faults, kinds) always yields
        the same schedule — the reproducibility contract of every
        fault-injection experiment.
        """
        rng = np.random.default_rng(seed)
        sched = cls(seed=seed)
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            at_op = int(rng.integers(0, max(max_op, 1)))
            if kind == "crash":
                sched.crash_rank(int(rng.integers(0, nranks)), at_op)
            else:
                src = int(rng.integers(0, nranks))
                dst = int(rng.integers(0, nranks))
                sched.faults.append(
                    Fault(kind, at_op, src=src, dst=dst % max(nranks, 1))
                )
        return sched

    # -- queries (used by SimComm) --------------------------------------

    def crashes_at(self, op_index: int) -> list[Fault]:
        """Unconsumed crash faults scheduled for this collective."""
        return [
            f for i, f in enumerate(self.faults)
            if f.kind == "crash" and f.at_op == op_index
            and i not in self._consumed
        ]

    def message_fault(self, op_index: int, src: int, dst: int) -> Fault | None:
        """Unconsumed drop/corrupt fault for this message, if any."""
        for i, f in enumerate(self.faults):
            if (f.kind in ("drop", "corrupt") and f.at_op == op_index
                    and f.src == src and f.dst == dst
                    and i not in self._consumed):
                return f
        return None

    def consume(self, fault: Fault) -> None:
        """Mark a fired fault so it never re-fires (one-shot semantics)."""
        for i, f in enumerate(self.faults):
            if f is fault:
                self._consumed.add(i)
                return

    def pending(self) -> list[Fault]:
        return [f for i, f in enumerate(self.faults) if i not in self._consumed]

    def describe(self) -> list[str]:
        return [f.describe() for f in self.faults]


def corrupt_buffer(buf: np.ndarray, key: tuple[int, ...]) -> np.ndarray:
    """Deterministically flip one bit of ``buf`` (a copy is returned).

    The flipped (byte, bit) position is drawn from an RNG seeded by
    ``key`` — typically (schedule seed, op index, src, dst) — so the
    same schedule corrupts the same bit every run.
    """
    arr = np.asarray(buf)
    if arr.nbytes == 0:
        return arr
    rng = np.random.default_rng(list(key))
    raw = bytearray(arr.tobytes())
    byte = int(rng.integers(0, len(raw)))
    bit = int(rng.integers(0, 8))
    raw[byte] ^= 1 << bit
    return np.frombuffer(bytes(raw), dtype=arr.dtype).reshape(arr.shape)


def corrupt_in_place(buf: np.ndarray, key: tuple[int, ...]) -> tuple[int, int]:
    """Deterministically flip one bit of ``buf`` *in place*.

    The chaos harness uses this to damage a live cached artifact (a
    shared array object the cache is already serving) rather than a
    message copy; returns the (byte, bit) flipped so the injection is
    auditable.
    """
    arr = np.asarray(buf)
    if arr.nbytes == 0:
        return (0, 0)
    rng = np.random.default_rng(list(key))
    byte = int(rng.integers(0, arr.nbytes))
    bit = int(rng.integers(0, 8))
    flat = arr.view(np.uint8).reshape(-1)
    flat[byte] ^= np.uint8(1 << bit)
    return (byte, bit)
