"""Self-healing solver drivers: detect faults, shrink, restore, resume.

Two drivers exercise the full resilience stack end-to-end:

* :func:`resilient_poisson_solve` — a checkpointed distributed-CG
  Poisson solve.  Every Krylov iteration applies the operator through
  :func:`repro.parallel.dist_matvec.distributed_matvec`; when an
  injected :class:`~repro.resilience.faults.RankFailure` surfaces from
  a ghost-exchange leg, the driver contracts the partition onto the
  survivors (:func:`repro.parallel.partition.shrink_splits`), re-derives
  the exchange plan, reloads the latest ``ckpt.v1`` snapshot from disk
  and resumes iterating.  Restoring from *disk* rather than from the
  in-memory vectors is deliberate: in a real rank loss the dead rank's
  vector shards are gone — the full in-memory state is a simulation
  artifact the driver must not rely on.

* :class:`ResilientNSDriver` — a checkpointed Navier–Stokes
  time-stepping driver.  Each step opens with a heartbeat collective
  (the failure-detection point of the simulated communicator); a rank
  crash rolls the run back to the latest checkpoint and replays.  The
  stepper itself is hardened separately with the dt-halving retry of
  :meth:`repro.fem.navier_stokes.NavierStokesProblem.advance`.

Recovery cost is observable: each recovery opens a
``resilience.recover`` span and bumps ``resilience.recoveries`` /
``resilience.recovery_ms``, landing next to the checkpoint byte
counters in the ``run.v1`` artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.plan import operator_context
from ..obs import add as obs_add
from ..obs import span
from ..parallel.dist_matvec import distributed_matvec
from ..parallel.ghost import analyze_partition, exchange_plan
from ..parallel.partition import partition_mesh, shrink_splits
from ..parallel.simmpi import SimComm
from .checkpoint import (
    CheckpointCorruption,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .faults import RankFailure, SolverBreakdown

__all__ = [
    "RecoveryEvent",
    "ResilientSolveResult",
    "ResilientNSResult",
    "resilient_poisson_solve",
    "ResilientNSDriver",
]


@dataclass
class RecoveryEvent:
    """One completed failure → shrink → restore → resume cycle."""

    kind: str                   # "rank_failure"
    op_index: int               # communicator collective index at detection
    failed_ranks: tuple[int, ...]
    ranks_after: int
    restored_step: int          # checkpoint step resumed from
    elapsed: float              # seconds spent recovering

    def describe(self) -> str:
        return (
            f"{self.kind} of ranks {list(self.failed_ranks)} at op "
            f"{self.op_index}: resumed from step {self.restored_step} on "
            f"{self.ranks_after} ranks in {self.elapsed * 1e3:.1f} ms"
        )


@dataclass
class ResilientSolveResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    reason: str
    recoveries: list[RecoveryEvent]
    checkpoints_written: int
    ranks_final: int


@dataclass
class ResilientNSResult:
    velocity: np.ndarray
    pressure: np.ndarray
    steps: int
    residual: float
    recoveries: list[RecoveryEvent]
    checkpoints_written: int
    ranks_final: int


def _recover(mesh, ctx, comm, layout, ckpt_dir, name, schedule):
    """Shared shrink-and-restore: returns (comm, layout, plan, ckpt, event_stub)."""
    t0 = time.perf_counter()
    with span("resilience.recover") as osp:
        failed = tuple(sorted(comm.failed_ranks))
        survivors = comm.size - len(failed)
        if survivors < 1:
            raise SolverBreakdown("recovery", "no_survivors",
                                  f"all {comm.size} ranks failed")
        new_splits = shrink_splits(layout.splits, failed)
        layout = analyze_partition(mesh, new_splits)
        plan = exchange_plan(mesh, layout)
        new_comm = SimComm(survivors)
        # the schedule is one-shot per fault, so reinstalling it lets
        # later scheduled faults still hit the rebuilt communicator
        new_comm.install_faults(schedule)
        path = latest_checkpoint(ckpt_dir, name)
        if path is None:
            raise SolverBreakdown("recovery", "no_checkpoint",
                                  f"nothing to restore in {ckpt_dir}")
        ckpt = load_checkpoint(path)
        if ckpt.fingerprint != ctx.fingerprint:
            raise CheckpointCorruption(
                f"{path}: checkpoint fingerprint {ckpt.fingerprint[:12]}… "
                f"does not match live mesh {ctx.fingerprint[:12]}…"
            )
        osp.add("failed_ranks", len(failed))
        osp.add("restored_step", ckpt.step)
    elapsed = time.perf_counter() - t0
    obs_add("resilience.recoveries", 1)
    obs_add("resilience.recovery_ms", elapsed * 1e3)
    return new_comm, layout, plan, ckpt, (failed, survivors, elapsed)


def resilient_poisson_solve(
    problem,
    *,
    ranks: int = 8,
    ckpt_dir,
    ckpt_interval: int = 10,
    fault_schedule=None,
    rtol: float = 1e-12,
    atol: float = 0.0,
    maxiter: int | None = None,
    max_recoveries: int = 2,
    name: str = "poisson",
    keep_last: int | None = None,
) -> ResilientSolveResult:
    """Matrix-free distributed Jacobi-CG with checkpoint/restart.

    Semantically identical to ``PoissonProblem.solve(solver="matrix-free")``
    — same operator masking, same Jacobi diagonal — but the operator is
    applied through the simulated communicator, the Krylov state
    ``(x, r, p, rz)`` is checkpointed every ``ckpt_interval``
    iterations, and injected rank crashes are survived automatically
    (up to ``max_recoveries`` times).
    """
    from ..core.matvec import MapBasedMatVec
    from ..fem.poisson import load_vector

    mesh = problem.mesh
    if problem.method != "nodal":
        raise ValueError("resilient solve supports the nodal method")
    n = mesh.n_nodes
    fixed = mesh.dirichlet_mask
    free = ~fixed
    mv = MapBasedMatVec(mesh, kind="stiffness")
    u_fix = np.where(fixed, problem._g_at(mesh.node_coords()), 0.0)
    b = np.where(free, load_vector(mesh, problem.f) - mv(u_fix), 0.0)

    # Jacobi diagonal from the elemental blocks (partition-independent)
    ctx = operator_context(mesh)
    ref = ctx.ref()
    h = ctx.h
    dloc = (
        np.diag(ref.K_ref)[None, :] * (h ** (mesh.dim - 2))[:, None]
    ).reshape(-1)
    g = ctx.gather
    diag = np.asarray(g.T.multiply(g.T) @ dloc).ravel()
    diag = np.where(free & (diag > 0), diag, 1.0)

    ckpt_dir = Path(ckpt_dir)
    splits = partition_mesh(mesh, ranks, load_tol=0.1)
    layout = analyze_partition(mesh, splits)
    plan = exchange_plan(mesh, layout)
    comm = SimComm(ranks)
    comm.install_faults(fault_schedule)

    maxiter = maxiter or 20 * n
    bnorm = float(np.linalg.norm(b)) or 1.0
    tol = max(rtol * bnorm, atol)

    recoveries: list[RecoveryEvent] = []
    ckpts_written = 0
    reason = "maxiter"

    def apply_op(v):
        w = distributed_matvec(
            mesh, layout, np.where(free, v, 0.0), comm, plan=plan
        )
        return np.where(free, w, v)

    def checkpoint(step):
        nonlocal ckpts_written
        save_checkpoint(
            ckpt_dir / f"{name}_step{step:06d}.ckpt.json", mesh,
            step=step, splits=layout.splits,
            vectors={"x": x, "r": r, "p": p},
            scalars={"rz": rz, "it": float(it), "rnorm": rnorm},
            name=name,
            keep_last=keep_last,
        )
        ckpts_written += 1

    with span("resilience.solve", case=name) as osp:
        x = np.zeros(n)
        r = b.copy()          # r = b - A·0
        z = r / diag
        p = z.copy()
        rz = float(r @ z)
        rnorm = float(np.linalg.norm(r))
        it = 0
        checkpoint(0)

        while True:
            try:
                while rnorm > tol and it < maxiter:
                    Ap = apply_op(p)
                    pAp = float(p @ Ap)
                    if not np.isfinite(pAp) or pAp == 0.0:
                        reason = "nonfinite" if not np.isfinite(pAp) else "breakdown"
                        break
                    alpha = rz / pAp
                    x = x + alpha * p
                    r = r - alpha * Ap
                    rnorm = float(np.linalg.norm(r))
                    it += 1
                    if not np.isfinite(rnorm):
                        reason = "nonfinite"
                        break
                    if rnorm <= tol:
                        reason = "converged"
                        break
                    z = r / diag
                    rz_new = float(r @ z)
                    beta = rz_new / rz
                    p = z + beta * p
                    rz = rz_new
                    if it % ckpt_interval == 0:
                        checkpoint(it)
                if rnorm <= tol and reason == "maxiter":
                    reason = "converged"
                break
            except RankFailure as exc:
                if len(recoveries) >= max_recoveries:
                    raise
                comm, layout, plan, ckpt, (failed, survivors, elapsed) = _recover(
                    mesh, ctx, comm, layout, ckpt_dir, name, fault_schedule
                )
                x = ckpt.vector("x")
                r = ckpt.vector("r")
                p = ckpt.vector("p")
                rz = ckpt.scalars["rz"]
                it = int(ckpt.scalars["it"])
                rnorm = float(np.linalg.norm(r))
                recoveries.append(RecoveryEvent(
                    "rank_failure", exc.op_index, failed, survivors,
                    ckpt.step, elapsed,
                ))
        osp.add("iterations", it)
        osp.add("recoveries", len(recoveries))

    u = np.where(free, x, u_fix)
    return ResilientSolveResult(
        x=u, iterations=it, residual=rnorm,
        converged=(reason == "converged"), reason=reason,
        recoveries=recoveries, checkpoints_written=ckpts_written,
        ranks_final=comm.size,
    )


class ResilientNSDriver:
    """Checkpointed, crash-surviving Navier–Stokes time stepping.

    Wraps a :class:`repro.fem.navier_stokes.NavierStokesProblem` with a
    finite ``dt``.  Each step opens with a heartbeat collective on the
    simulated communicator — the detection point for injected rank
    crashes.  State ``(U, P, step)`` is checkpointed every
    ``ckpt_interval`` steps; a crash contracts the partition onto the
    survivors and replays deterministically from the latest snapshot,
    so a recovered run reproduces the failure-free trajectory bit for
    bit.  Per-step solver breakdowns (non-finite states) are handled
    below this layer by the stepper's dt-halving retry
    (``max_dt_halvings``).
    """

    def __init__(
        self,
        problem,
        *,
        ranks: int = 4,
        ckpt_dir,
        ckpt_interval: int = 2,
        fault_schedule=None,
        max_recoveries: int = 2,
        max_dt_halvings: int = 3,
        name: str = "ns",
        keep_last: int | None = None,
    ):
        if not np.isfinite(problem.dt):
            raise ValueError("ResilientNSDriver requires a finite dt")
        self.problem = problem
        self.mesh = problem.mesh
        self.ctx = operator_context(self.mesh)
        self.ckpt_dir = Path(ckpt_dir)
        self.ckpt_interval = max(int(ckpt_interval), 1)
        self.fault_schedule = fault_schedule
        self.max_recoveries = int(max_recoveries)
        self.max_dt_halvings = int(max_dt_halvings)
        self.name = name
        self.keep_last = keep_last
        self.splits = partition_mesh(self.mesh, ranks, load_tol=0.1)
        self.layout = analyze_partition(self.mesh, self.splits)
        self.comm = SimComm(ranks)
        self.comm.install_faults(fault_schedule)
        self.checkpoints_written = 0
        self.recoveries: list[RecoveryEvent] = []

    def _save(self, U: np.ndarray, P: np.ndarray, step: int) -> None:
        save_checkpoint(
            self.ckpt_dir / f"{self.name}_step{step:06d}.ckpt.json",
            self.mesh,
            step=step, t=step * self.problem.dt, dt=self.problem.dt,
            splits=self.layout.splits,
            vectors={"U": U, "P": P},
            name=self.name,
            keep_last=self.keep_last,
        )
        self.checkpoints_written += 1

    def run(self, nsteps: int, picard_per_step: int = 2) -> ResilientNSResult:
        problem = self.problem
        U, P = problem.initial_state()
        step = 0
        residual = np.inf
        with span("resilience.ns_run", steps=nsteps) as osp:
            self._save(U, P, 0)
            while step < nsteps:
                try:
                    # heartbeat: the per-step failure-detection collective
                    self.comm.allreduce(
                        [np.float64(step)] * self.comm.size
                    )
                    out = problem.advance(
                        U, P, 1, picard_per_step=picard_per_step,
                        max_dt_halvings=self.max_dt_halvings,
                    )
                    U, P, residual = out.velocity, out.pressure, out.residual
                    step += 1
                    if step % self.ckpt_interval == 0 or step == nsteps:
                        self._save(U, P, step)
                except RankFailure as exc:
                    if len(self.recoveries) >= self.max_recoveries:
                        raise
                    (self.comm, self.layout, _plan, ckpt,
                     (failed, survivors, elapsed)) = _recover(
                        self.mesh, self.ctx, self.comm, self.layout,
                        self.ckpt_dir, self.name, self.fault_schedule,
                    )
                    self.splits = self.layout.splits
                    U = ckpt.vector("U")
                    P = ckpt.vector("P")
                    step = ckpt.step
                    self.recoveries.append(RecoveryEvent(
                        "rank_failure", exc.op_index, failed,
                        survivors, ckpt.step, elapsed,
                    ))
            osp.add("recoveries", len(self.recoveries))
        return ResilientNSResult(
            velocity=U, pressure=P, steps=step, residual=float(residual),
            recoveries=self.recoveries,
            checkpoints_written=self.checkpoints_written,
            ranks_final=self.comm.size,
        )
