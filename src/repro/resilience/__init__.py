"""repro.resilience — fault injection, checkpoint/restart, recovery.

The robustness layer the paper's production context implies but never
spells out: 16K-core runs lose ranks and break solvers, so restartable
state and failure-aware drivers are first-class infrastructure here
(as in FEMPAR and the Badia–Martín–Neiva–Verdugo tree-AMR framework).

Three pieces:

* :mod:`repro.resilience.faults` — seeded deterministic
  :class:`FaultSchedule` installed on :class:`repro.parallel.SimComm`;
  typed :class:`RankFailure` / :class:`MessageCorruption` /
  :class:`SolverBreakdown` errors.
* :mod:`repro.resilience.checkpoint` — versioned snapshots (schema
  ``repro.resilience/ckpt.v1``) of mesh SFC state, partition layout,
  solver vectors and time-stepper state, with a sha256 integrity
  digest and fingerprint-verified restore.
* :mod:`repro.resilience.recovery` — self-healing drivers: a
  checkpointed distributed CG (:func:`resilient_poisson_solve`) and a
  Navier–Stokes time-stepping driver (:class:`ResilientNSDriver`) that
  survive injected rank crashes by shrinking the partition to the
  survivors and resuming from the latest checkpoint.

Only :mod:`faults` is imported eagerly (it is dependency-light and is
what :mod:`repro.parallel.simmpi` needs); the checkpoint/recovery
symbols resolve lazily (PEP 562) to keep import cycles out.
"""

from .faults import (
    Fault,
    FaultError,
    FaultSchedule,
    MessageCorruption,
    RankFailure,
    SolverBreakdown,
    corrupt_buffer,
)

__all__ = [
    "Fault",
    "FaultError",
    "FaultSchedule",
    "MessageCorruption",
    "RankFailure",
    "SolverBreakdown",
    "corrupt_buffer",
    "CKPT_SCHEMA_ID",
    "STATE_SCHEMA_ID",
    "Checkpoint",
    "StateCheckpoint",
    "CheckpointCorruption",
    "save_checkpoint",
    "load_checkpoint",
    "save_state_checkpoint",
    "load_state_checkpoint",
    "latest_checkpoint",
    "prune_checkpoints",
    "ResilientSolveResult",
    "RecoveryEvent",
    "resilient_poisson_solve",
    "ResilientNSDriver",
]

_LAZY = {
    "CKPT_SCHEMA_ID": ("checkpoint", "CKPT_SCHEMA_ID"),
    "STATE_SCHEMA_ID": ("checkpoint", "STATE_SCHEMA_ID"),
    "Checkpoint": ("checkpoint", "Checkpoint"),
    "StateCheckpoint": ("checkpoint", "StateCheckpoint"),
    "CheckpointCorruption": ("checkpoint", "CheckpointCorruption"),
    "save_checkpoint": ("checkpoint", "save_checkpoint"),
    "load_checkpoint": ("checkpoint", "load_checkpoint"),
    "save_state_checkpoint": ("checkpoint", "save_state_checkpoint"),
    "load_state_checkpoint": ("checkpoint", "load_state_checkpoint"),
    "latest_checkpoint": ("checkpoint", "latest_checkpoint"),
    "prune_checkpoints": ("checkpoint", "prune_checkpoints"),
    "ResilientSolveResult": ("recovery", "ResilientSolveResult"),
    "RecoveryEvent": ("recovery", "RecoveryEvent"),
    "resilient_poisson_solve": ("recovery", "resilient_poisson_solve"),
    "ResilientNSDriver": ("recovery", "ResilientNSDriver"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        mod, attr = _LAZY[name]
        return getattr(importlib.import_module(f".{mod}", __name__), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
