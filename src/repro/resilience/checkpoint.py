"""Versioned checkpoint/restart snapshots (schema ``repro.resilience/ckpt.v1``).

A checkpoint captures everything a recovery driver needs to resume a
solve after losing ranks or state:

* the mesh's discrete content — SFC octant anchors + levels, dim, p,
  curve (geometry is *code*, not data: restore takes the ``Domain``);
* the partition layout (element-range splits);
* named solver vectors (Krylov state, velocity/pressure fields);
* named scalars and time-stepper state (dt, step index, time);
* the operator-plan fingerprint of :mod:`repro.core.plan` — restore
  rebuilds the mesh and *verifies* the rebuilt fingerprint matches, so
  a checkpoint can never silently resurrect a different operator.

The file format is a single JSON document: arrays are stored as
base64-encoded raw bytes with dtype/shape, and a sha256 digest over
the canonical (sorted-key, no-whitespace) serialisation of everything
else seals the file.  Any tampering — payload or header — surfaces as
a typed :class:`CheckpointCorruption` at load time.  The format is
deliberately dependency-free and bit-deterministic: the same state
always produces byte-identical checkpoint files, which is what the
round-trip tests assert.
"""

from __future__ import annotations

import base64
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.mesh import IncompleteMesh, mesh_from_leaves
from ..core.octant import OctantSet
from ..core.plan import mesh_fingerprint
from ..obs import add as obs_add
from ..obs import span

__all__ = [
    "CKPT_SCHEMA_ID",
    "STATE_SCHEMA_ID",
    "CheckpointCorruption",
    "Checkpoint",
    "StateCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "save_state_checkpoint",
    "load_state_checkpoint",
    "latest_checkpoint",
    "prune_checkpoints",
]

CKPT_SCHEMA_ID = "repro.resilience/ckpt.v1"
STATE_SCHEMA_ID = "repro.resilience/state.v1"


class CheckpointCorruption(RuntimeError):
    """A checkpoint failed its integrity or compatibility checks."""


def _encode_array(arr: np.ndarray) -> dict:
    a = np.ascontiguousarray(arr)
    return {
        "dtype": a.dtype.str,
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def _decode_array(d: dict) -> np.ndarray:
    a = np.frombuffer(base64.b64decode(d["data"]), dtype=np.dtype(d["dtype"]))
    return a.reshape(d["shape"]).copy()  # copy: writable, owns its memory


def _canonical(doc: dict) -> bytes:
    """The byte string the integrity digest covers (digest key excluded)."""
    body = {k: v for k, v in doc.items() if k != "sha256"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def save_checkpoint(
    path,
    mesh: IncompleteMesh,
    *,
    step: int = 0,
    t: float = 0.0,
    dt: float | None = None,
    splits: np.ndarray | None = None,
    vectors: dict[str, np.ndarray] | None = None,
    scalars: dict[str, float] | None = None,
    name: str = "checkpoint",
    meta: dict | None = None,
    keep_last: int | None = None,
) -> Path:
    """Write one ``ckpt.v1`` snapshot; returns the written path.

    Checkpoint volume is published to :mod:`repro.obs` as
    ``resilience.ckpt.writes`` / ``resilience.ckpt.bytes_written`` so
    run artifacts carry the checkpointing cost of a resilient solve.

    ``keep_last=k`` prunes the checkpoint directory after the write so
    only the k newest snapshots of this ``name`` survive — the
    retention policy long-lived workers (e.g. :mod:`repro.serve`
    deployments) use to keep checkpoint directories bounded.
    """
    path = Path(path)
    with span("resilience.ckpt.save") as osp:
        doc: dict = {
            "schema": CKPT_SCHEMA_ID,
            "name": name,
            "step": int(step),
            "time": float(t),
            "dt": None if dt is None else float(dt),
            "fingerprint": mesh_fingerprint(mesh),
            "mesh": {
                "dim": int(mesh.dim),
                "p": int(mesh.p),
                "curve": mesh.curve,
                "anchors": _encode_array(mesh.leaves.anchors),
                "levels": _encode_array(mesh.leaves.levels),
            },
            "splits": None if splits is None else _encode_array(
                np.asarray(splits, np.int64)
            ),
            "vectors": {
                k: _encode_array(np.asarray(v))
                for k, v in sorted((vectors or {}).items())
            },
            "scalars": {
                k: float(v) for k, v in sorted((scalars or {}).items())
            },
            "meta": dict(meta) if meta else {},
        }
        doc["sha256"] = hashlib.sha256(_canonical(doc)).hexdigest()
        text = json.dumps(doc, sort_keys=True, indent=1) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        osp.add("bytes", len(text))
        obs_add("resilience.ckpt.writes", 1)
        obs_add("resilience.ckpt.bytes_written", len(text))
    if keep_last is not None:
        prune_checkpoints(path.parent, name=name, keep_last=keep_last)
    return path


def load_checkpoint(path) -> "Checkpoint":
    """Load and integrity-check one checkpoint file.

    Raises :class:`CheckpointCorruption` on a wrong schema tag, a
    missing digest, or any digest mismatch (tampered payload/header).
    """
    path = Path(path)
    with span("resilience.ckpt.load") as osp:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError) as exc:
            # a torn write can truncate mid-token (JSONDecodeError) or
            # mid-multibyte character (UnicodeDecodeError) — both are
            # corruption, not programming errors
            raise CheckpointCorruption(f"{path}: unreadable checkpoint: {exc}")
        if not isinstance(doc, dict) or doc.get("schema") != CKPT_SCHEMA_ID:
            raise CheckpointCorruption(
                f"{path}: schema tag must be {CKPT_SCHEMA_ID!r}, "
                f"got {doc.get('schema')!r}"
            )
        digest = doc.get("sha256")
        if not digest:
            raise CheckpointCorruption(f"{path}: missing integrity digest")
        actual = hashlib.sha256(_canonical(doc)).hexdigest()
        if actual != digest:
            raise CheckpointCorruption(
                f"{path}: integrity digest mismatch "
                f"(stored {digest[:12]}…, computed {actual[:12]}…)"
            )
        osp.add("bytes", path.stat().st_size)
        obs_add("resilience.ckpt.loads", 1)
    return Checkpoint(doc, path)


def save_state_checkpoint(path, *, name: str, step: int, state: dict,
                          meta: dict | None = None,
                          keep_last: int | None = None) -> Path:
    """Write one sealed ``state.v1`` snapshot of arbitrary JSON state.

    The mesh-centric :func:`save_checkpoint` covers solver restart;
    this is the same sealed-document machinery (canonical sorted-key
    serialisation, sha256 integrity digest, bit-deterministic bytes,
    :class:`CheckpointCorruption` on tamper) for services whose state
    is a queue, not a field — the fleet layer checkpoints each shard's
    pending requests here so a killed shard replays on a survivor.
    ``state`` must be JSON-serialisable and is stored verbatim.

    Files share the ``<name>_step<k>.ckpt.json`` naming convention, so
    :func:`latest_checkpoint` / :func:`prune_checkpoints` work on state
    checkpoints unchanged (``keep_last`` applies the same retention).
    """
    path = Path(path)
    with span("resilience.ckpt.save_state") as osp:
        doc: dict = {
            "schema": STATE_SCHEMA_ID,
            "name": name,
            "step": int(step),
            "state": state,
            "meta": dict(meta) if meta else {},
        }
        doc["sha256"] = hashlib.sha256(_canonical(doc)).hexdigest()
        text = json.dumps(doc, sort_keys=True, indent=1) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        osp.add("bytes", len(text))
        obs_add("resilience.ckpt.writes", 1)
        obs_add("resilience.ckpt.bytes_written", len(text))
    if keep_last is not None:
        prune_checkpoints(path.parent, name=name, keep_last=keep_last)
    return path


def load_state_checkpoint(path) -> "StateCheckpoint":
    """Load and integrity-check one ``state.v1`` checkpoint."""
    path = Path(path)
    with span("resilience.ckpt.load_state") as osp:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError) as exc:
            raise CheckpointCorruption(f"{path}: unreadable checkpoint: {exc}")
        if not isinstance(doc, dict) or doc.get("schema") != STATE_SCHEMA_ID:
            raise CheckpointCorruption(
                f"{path}: schema tag must be {STATE_SCHEMA_ID!r}, "
                f"got {doc.get('schema')!r}"
            )
        digest = doc.get("sha256")
        if not digest:
            raise CheckpointCorruption(f"{path}: missing integrity digest")
        actual = hashlib.sha256(_canonical(doc)).hexdigest()
        if actual != digest:
            raise CheckpointCorruption(
                f"{path}: integrity digest mismatch "
                f"(stored {digest[:12]}…, computed {actual[:12]}…)"
            )
        osp.add("bytes", path.stat().st_size)
        obs_add("resilience.ckpt.loads", 1)
    return StateCheckpoint(doc, path)


@dataclass
class StateCheckpoint:
    """A loaded, integrity-verified ``state.v1`` document."""

    doc: dict
    path: Path

    @property
    def name(self) -> str:
        return self.doc["name"]

    @property
    def step(self) -> int:
        return int(self.doc["step"])

    @property
    def state(self) -> dict:
        return self.doc["state"]

    @property
    def meta(self) -> dict:
        return dict(self.doc.get("meta", {}))


def _step_order(path: Path) -> tuple[int, str]:
    """(numeric step, filename) sort key for checkpoint files."""
    m = re.search(r"_step(\d+)\.ckpt\.json$", path.name)
    return (int(m.group(1)) if m else -1, path.name)


def _sorted_checkpoints(directory: Path, name: str | None) -> list[Path]:
    pattern = f"{name}_step*.ckpt.json" if name else "*.ckpt.json"
    return sorted(directory.glob(pattern), key=_step_order)


def latest_checkpoint(directory, name: str | None = None) -> Path | None:
    """Newest ``*.ckpt.json`` in ``directory`` by (step, filename).

    Step order is parsed numerically from the filename suffix written
    by the recovery drivers (``<name>_step<k>.ckpt.json``), so
    ``step10`` sorts after ``step2``; ties and foreign files fall back
    to lexicographic order.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    files = _sorted_checkpoints(directory, name)
    return files[-1] if files else None


def prune_checkpoints(directory, name: str | None = None,
                      keep_last: int = 1) -> list[Path]:
    """Delete all but the ``keep_last`` newest checkpoints of ``name``.

    Ordering matches :func:`latest_checkpoint` (numeric step, then
    filename), so the snapshots a recovery driver would restore from
    are exactly the ones kept.  Returns the removed paths; publishes
    ``resilience.ckpt.pruned`` to :mod:`repro.obs`.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")
    directory = Path(directory)
    if not directory.is_dir():
        return []
    files = _sorted_checkpoints(directory, name)
    removed = files[:-keep_last] if len(files) > keep_last else []
    for path in removed:
        path.unlink()
    if removed:
        obs_add("resilience.ckpt.pruned", len(removed))
    return removed


@dataclass
class Checkpoint:
    """A loaded, integrity-verified ``ckpt.v1`` document."""

    doc: dict
    path: Path

    @property
    def name(self) -> str:
        return self.doc["name"]

    @property
    def step(self) -> int:
        return int(self.doc["step"])

    @property
    def time(self) -> float:
        return float(self.doc["time"])

    @property
    def dt(self) -> float | None:
        dt = self.doc.get("dt")
        return None if dt is None else float(dt)

    @property
    def fingerprint(self) -> str:
        return self.doc["fingerprint"]

    @property
    def scalars(self) -> dict[str, float]:
        return dict(self.doc.get("scalars", {}))

    @property
    def meta(self) -> dict:
        return dict(self.doc.get("meta", {}))

    def vector(self, key: str) -> np.ndarray:
        return _decode_array(self.doc["vectors"][key])

    def vectors(self) -> dict[str, np.ndarray]:
        return {k: _decode_array(v) for k, v in self.doc["vectors"].items()}

    def splits(self) -> np.ndarray | None:
        enc = self.doc.get("splits")
        return None if enc is None else _decode_array(enc)

    def mesh_leaves(self) -> OctantSet:
        m = self.doc["mesh"]
        return OctantSet(
            _decode_array(m["anchors"]), _decode_array(m["levels"]), int(m["dim"])
        )

    def restore_mesh(self, domain) -> IncompleteMesh:
        """Rebuild the mesh on ``domain`` and verify the operator-plan
        fingerprint matches the one the checkpoint was taken against.

        The leaves were balanced when saved, so no re-balancing runs;
        a fingerprint mismatch (wrong domain discretisation, altered
        leaf data that survived the digest — i.e. a bug) raises
        :class:`CheckpointCorruption` rather than resuming a solve on
        a different operator.
        """
        m = self.doc["mesh"]
        with span("resilience.ckpt.restore_mesh") as osp:
            mesh = mesh_from_leaves(
                domain, self.mesh_leaves(), p=int(m["p"]), curve=m["curve"],
                balance=False,
            )
            fp = mesh_fingerprint(mesh)
            if fp != self.fingerprint:
                raise CheckpointCorruption(
                    f"{self.path}: restored mesh fingerprint {fp[:12]}… does "
                    f"not match checkpointed {self.fingerprint[:12]}…"
                )
            osp.add("elements", mesh.n_elem)
        return mesh

    def restore(self, domain):
        """Rebuild (mesh, layout, exchange plan) from the snapshot.

        The exchange plan is re-derived from the fingerprint-verified
        mesh, so the restored distributed operator is guaranteed
        consistent with the checkpointed vectors.
        """
        from ..parallel.ghost import analyze_partition, exchange_plan

        mesh = self.restore_mesh(domain)
        splits = self.splits()
        if splits is None:
            return mesh, None, None
        layout = analyze_partition(mesh, splits)
        plan = exchange_plan(mesh, layout)
        return mesh, layout, plan
