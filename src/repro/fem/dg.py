"""Discontinuous Galerkin (SIPG) Poisson on incomplete octrees.

The paper's stated future work ("we plan to extend the algorithms to
incorporate DG based FEM") and the §4.4 remark: in DG every element
owns its ``(p+1)^d`` nodes, so the DOF count scales exactly with the
element count (no sharing, hanging nodes irrelevant) — which is why the
immersed-vs-carved DOF excess would equal the element excess under DG.

This implementation provides the symmetric interior-penalty (SIPG)
discretisation of −Δu = f with Dirichlet data on the carved/domain
boundary faces.  Faces are matched between equal-level neighbours, so
meshes must be *uniform-level* (the standard first step for DG on
trees; hanging-interface mortars are the follow-up the paper defers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.faces import extract_boundary_faces
from ..core.mesh import IncompleteMesh
from ..core.octant import max_level
from ..core.sfc import get_curve
from ..fem.basis import LagrangeBasis
from ..fem.elemental import reference_element
from ..fem.sbm import face_quadrature

__all__ = ["DGPoissonProblem", "dg_dof_count", "interior_faces"]


def dg_dof_count(mesh: IncompleteMesh) -> int:
    """DG DOFs: every element owns all its nodes (§4.4 remark)."""
    return mesh.n_elem * mesh.npe


def interior_faces(mesh: IncompleteMesh):
    """(elem_minus, elem_plus, axis) for every interior face, counted
    once with the normal along +axis from minus to plus."""
    dim = mesh.dim
    oracle = get_curve(mesh.curve)
    keys = oracle.keys(mesh.leaves)
    a = mesh.leaves.anchors.astype(np.int64)
    s = mesh.leaves.sizes.astype(np.int64)
    m = max_level(dim)
    extent = np.int64(1) << m
    out = []
    for axis in range(dim):
        nb = a.copy()
        nb[:, axis] += s
        inside = nb[:, axis] < extent
        idx = np.flatnonzero(inside)
        nk = oracle.keys_from_coords(nb[idx].astype(np.uint32), dim)
        pos = np.searchsorted(keys, nk)
        posc = np.clip(pos, 0, len(keys) - 1)
        hit = (pos < len(keys)) & (keys[posc] == nk) & (
            mesh.leaves.levels[posc] == mesh.leaves.levels[idx]
        )
        em = idx[hit]
        ep = posc[hit]
        out.append((em, ep, np.full(len(em), axis)))
    return (
        np.concatenate([o[0] for o in out]),
        np.concatenate([o[1] for o in out]),
        np.concatenate([o[2] for o in out]),
    )


@dataclass
class DGPoissonProblem:
    """SIPG discretisation of −Δu = f, u = g on the voxel boundary."""

    mesh: IncompleteMesh
    f: object = 0.0
    dirichlet: object = 0.0
    sigma: float = 10.0  # penalty (scaled by p² / h)

    def __post_init__(self):
        lv = self.mesh.leaves.levels
        if lv.min() != lv.max():
            raise ValueError(
                "DGPoissonProblem requires a uniform-level mesh "
                "(hanging-interface mortars are future work, as in the paper)"
            )

    def _g_at(self, pts):
        if np.isscalar(self.dirichlet):
            return np.full(len(pts), float(self.dirichlet))
        return self.dirichlet(pts)

    def _f_at(self, pts):
        if np.isscalar(self.f):
            return np.full(len(pts), float(self.f))
        return self.f(pts)

    def assemble(self):
        mesh = self.mesh
        dim, p, npe = mesh.dim, mesh.p, mesh.npe
        ref = reference_element(p, dim)
        basis = LagrangeBasis(p, dim)
        n_elem = mesh.n_elem
        N = n_elem * npe
        h = mesh.element_sizes()
        pen = self.sigma * (p + 1) ** 2 / h

        rows, cols, vals = [], [], []

        def add_block(er, ec, B):
            """Accumulate per-face dense blocks B (nf, npe, npe)."""
            r = (er[:, None, None] * npe + np.arange(npe)[None, :, None])
            c = (ec[:, None, None] * npe + np.arange(npe)[None, None, :])
            rows.append(np.broadcast_to(r, B.shape).ravel())
            cols.append(np.broadcast_to(c, B.shape).ravel())
            vals.append(B.ravel())

        # volume stiffness
        Kv = ref.stiffness_blocks(h)
        add_block(np.arange(n_elem), np.arange(n_elem), Kv)

        # interior faces (same-level)
        em, ep, fax = interior_faces(mesh)
        nq1 = p + 1
        for axis in range(dim):
            sel = np.flatnonzero(fax == axis)
            if not len(sel):
                continue
            e1, e2 = em[sel], ep[sel]
            rpts_m, rwts = face_quadrature(p, dim, axis, 1, nq1)
            rpts_p, _ = face_quadrature(p, dim, axis, 0, nq1)
            Nm, Np = basis.eval(rpts_m), basis.eval(rpts_p)
            Gm = basis.eval_grad(rpts_m)[:, :, axis]
            Gp = basis.eval_grad(rpts_p)[:, :, axis]
            hh = h[e1]
            wq = rwts[None, :] * (hh ** (dim - 1))[:, None]
            pe = 0.5 * (pen[e1] + pen[e2])
            # average normal flux and jump operators; n = +axis
            # a(u, w) += -{∂u}[w] - {∂w}[u] + pen [u][w]
            def face_terms(Nw, Nu, Gw, Gu, sw, su, hw, hu):
                """sw/su: jump signs of the w/u sides; hw/hu: h of the
                gradient-owning element (for the 1/h scaling)."""
                t = -0.5 * np.einsum("fq,qi,qj->fij", wq / hu[:, None], Nw, Gu) * sw[:, None, None]
                t += -0.5 * np.einsum("fq,qi,qj->fij", wq / hw[:, None], Gw, Nu) * su[:, None, None]
                t += np.einsum("f,fq,qi,qj->fij", pe, wq, Nw, Nu) * (sw * su)[:, None, None]
                return t

            ones = np.ones(len(e1))
            add_block(e1, e1, face_terms(Nm, Nm, Gm, Gm, ones, ones, h[e1], h[e1]))
            add_block(e1, e2, face_terms(Nm, Np, Gm, Gp, ones, -ones, h[e1], h[e2]))
            add_block(e2, e1, face_terms(Np, Nm, Gp, Gm, -ones, ones, h[e2], h[e1]))
            add_block(e2, e2, face_terms(Np, Np, Gp, Gp, -ones, -ones, h[e2], h[e2]))

        # boundary faces: Nitsche Dirichlet
        b = np.zeros(N)
        sub, domf = extract_boundary_faces(mesh)
        all_e = np.concatenate([sub.elem, domf.elem])
        all_ax = np.concatenate([sub.axis, domf.axis])
        all_sd = np.concatenate([sub.side, domf.side])
        lo_all, _ = mesh.leaves.physical_bounds(mesh.domain.scale)
        for axis in range(dim):
            for side in (0, 1):
                sel = np.flatnonzero((all_ax == axis) & (all_sd == side))
                if not len(sel):
                    continue
                es = all_e[sel]
                rpts, rwts = face_quadrature(p, dim, axis, side, nq1)
                Nb = basis.eval(rpts)
                Gb = basis.eval_grad(rpts)[:, :, axis] * (2.0 * side - 1.0)
                hh = h[es]
                wq = rwts[None, :] * (hh ** (dim - 1))[:, None]
                B = -np.einsum("fq,qi,qj->fij", wq / hh[:, None], Nb, Gb)
                B += -np.einsum("fq,qi,qj->fij", wq / hh[:, None], Gb, Nb)
                B += np.einsum("f,fq,qi,qj->fij", pen[es], wq, Nb, Nb)
                add_block(es, es, B)
                xq = lo_all[es][:, None, :] + rpts[None, :, :] * hh[:, None, None]
                g = self._g_at(xq.reshape(-1, dim)).reshape(len(es), -1)
                rb = -np.einsum("fq,fq,qi->fi", wq / hh[:, None], g, Gb)
                rb += np.einsum("f,fq,fq,qi->fi", pen[es], wq, g, Nb)
                np.add.at(
                    b, es[:, None] * npe + np.arange(npe)[None, :], rb
                )

        A = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(N, N),
        )
        A.sum_duplicates()
        # volume load
        x = lo_all[:, None, :] + ref.qpts[None, :, :] * h[:, None, None]
        fv = self._f_at(x.reshape(-1, dim)).reshape(n_elem, ref.nq)
        wv = ref.qwts[None, :] * (h**dim)[:, None]
        b += np.einsum("eq,eq,qi->ei", wv, fv, ref.N).ravel()
        return A, b

    def solve(self):
        A, b = self.assemble()
        return spla.spsolve(A.tocsc(), b)

    # -- evaluation helpers ------------------------------------------------

    def l2_error(self, u: np.ndarray, exact) -> float:
        mesh = self.mesh
        ref = reference_element(mesh.p, mesh.dim, mesh.p + 2)
        h = mesh.element_sizes()
        lo, _ = mesh.leaves.physical_bounds(mesh.domain.scale)
        x = lo[:, None, :] + ref.qpts[None, :, :] * h[:, None, None]
        uh = u.reshape(mesh.n_elem, mesh.npe) @ ref.N.T
        ue = exact(x.reshape(-1, mesh.dim)).reshape(uh.shape)
        w = ref.qwts[None, :] * (h**mesh.dim)[:, None]
        return float(np.sqrt(np.sum(w * (uh - ue) ** 2)))
