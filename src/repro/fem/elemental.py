"""Elemental (reference-cell) FEM matrices and batched applications.

Because carved-octree elements remain **isotropic** (aspect ratio 1 —
the paper's conditioning argument in §4.2), every element of order p is
the reference cube scaled by its side h.  The physical elemental
operators are therefore a single reference matrix times a per-element
power of h:

* stiffness:  K_e = h^(d-2) · K_ref
* mass:       M_e = h^d    · M_ref
* advection:  C_e(v) = h^(d-1) · Σ_k v_k C_ref,k   (constant velocity)

This collapses elemental assembly and matrix-free application into
batched dense algebra over all elements at once.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..kernels import api as kernels
from .basis import LagrangeBasis
from .quadrature import tensor_rule

__all__ = ["ReferenceElement", "reference_element"]


class ReferenceElement:
    """Order-p reference element: quadrature, basis tables, matrices."""

    def __init__(self, p: int, dim: int, nquad: int | None = None):
        self.p = p
        self.dim = dim
        self.basis = LagrangeBasis(p, dim)
        self.npe = self.basis.npe
        nq1 = nquad if nquad is not None else p + 1
        self.qpts, self.qwts = tensor_rule(nq1, dim)
        self.nq = len(self.qpts)
        #: basis values at quadrature points, (nq, npe)
        self.N = self.basis.eval(self.qpts)
        #: reference gradients at quadrature points, (nq, npe, dim)
        self.G = self.basis.eval_grad(self.qpts)

        w = self.qwts
        #: reference stiffness ∫ ∇φ_i·∇φ_j, (npe, npe)
        self.K_ref = np.einsum("q,qid,qjd->ij", w, self.G, self.G)
        #: reference mass ∫ φ_i φ_j
        self.M_ref = np.einsum("q,qi,qj->ij", w, self.N, self.N)
        #: reference advection blocks ∫ φ_i ∂_k φ_j, (dim, npe, npe)
        self.C_ref = np.einsum("q,qi,qjk->kij", w, self.N, self.G)
        #: reference gradient-gradient blocks ∫ ∂_k φ_i ∂_l φ_j,
        #: (dim, dim, npe, npe) — stabilisation terms contract this
        #: with velocity/direction vectors
        self.D_ref = np.einsum("q,qik,qjl->klij", w, self.G, self.G)

    # -- batched matrix-free applications ------------------------------
    # routed through the repro.kernels facade so MapBasedMatVec, the
    # distributed MATVEC and the fem operators all honour the active
    # backend (the default numpy backend evaluates the exact historical
    # expressions, bit-identically)

    def apply_stiffness(self, u_loc: np.ndarray, h: np.ndarray) -> np.ndarray:
        """K_e u_e for all elements. ``u_loc`` is ``(n_elem, npe)``."""
        return kernels.elem_apply(u_loc, self.K_ref, h ** (self.dim - 2))

    def apply_mass(self, u_loc: np.ndarray, h: np.ndarray) -> np.ndarray:
        return kernels.elem_apply(u_loc, self.M_ref, h**self.dim)

    def apply_advection(
        self, u_loc: np.ndarray, h: np.ndarray, vel: np.ndarray
    ) -> np.ndarray:
        """C_e(v) u_e with per-element constant velocity ``vel (n_elem, dim)``."""
        scale = h ** (self.dim - 1)
        out = np.zeros_like(u_loc)
        for k in range(self.dim):
            out += kernels.elem_apply(u_loc, self.C_ref[k], vel[:, k])
        return out * scale[:, None]

    def stiffness_blocks(self, h: np.ndarray) -> np.ndarray:
        """Dense K_e blocks, ``(n_elem, npe, npe)``."""
        return h[:, None, None] ** (self.dim - 2) * self.K_ref[None]

    def mass_blocks(self, h: np.ndarray) -> np.ndarray:
        return h[:, None, None] ** self.dim * self.M_ref[None]

    # -- FLOP/byte accounting for the roofline study --------------------

    def matvec_flops_per_element(self) -> int:
        """Double-precision FLOPs of one elemental stiffness apply.

        A dense (npe × npe) matvec (2·npe² flops) plus the per-entry
        scale (npe).  The paper's complexity O(d (p+1)^(d+1)) refers to
        the tensorised kernel; we count our actual dense kernel.
        """
        return 2 * self.npe * self.npe + self.npe

    def matvec_bytes_per_element(self) -> int:
        """Bytes moved per element: read u_loc, write w_loc (8 B doubles),
        amortised elemental matrix reads (shared K_ref stays in cache, so
        count only vector traffic plus the h scale)."""
        return 8 * (2 * self.npe + 1)


@lru_cache(maxsize=None)
def reference_element(p: int, dim: int, nquad: int | None = None) -> ReferenceElement:
    """Cached reference-element factory."""
    return ReferenceElement(p, dim, nquad)
