"""Finite differences on incomplete octree grids (paper future work:
"extend the algorithms to incorporate ... Finite Difference and Finite
Volume Methods").

On a *uniform-level* incomplete grid the p=1 FEM nodes form a regular
lattice with holes; the classic 2d+1-point Laplacian applies at every
interior node whose axis neighbours all exist.  Nodes next to the
carved region are boundary nodes (Dirichlet) — exactly the voxel
boundary the carving produces — so the stencil never needs one-sided
differences.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.mesh import IncompleteMesh

__all__ = ["FDPoissonProblem", "node_neighbor_table"]


def _coord_key(coords: np.ndarray) -> np.ndarray:
    """Injective int64 key for integer node coordinates."""
    c = coords.astype(np.int64)
    key = c[:, 0].copy()
    for ax in range(1, c.shape[1]):
        key = key * np.int64(1 << 26) + c[:, ax]
    return key


def node_neighbor_table(mesh: IncompleteMesh) -> np.ndarray:
    """Axis-neighbour node ids ``(n_nodes, 2*dim)``; -1 where absent.

    Columns are ordered (−x, +x, −y, +y, ...).  Requires a
    uniform-level mesh (one lattice spacing).
    """
    lv = mesh.leaves.levels
    if lv.min() != lv.max():
        raise ValueError("finite differences require a uniform-level mesh")
    if mesh.p != 1:
        raise ValueError("finite differences use the p=1 lattice")
    coords = mesh.nodes.coords
    step = 2 * int(mesh.leaves.sizes[0])  # node spacing in 2p units
    keys = _coord_key(coords)
    order = np.argsort(keys)
    sorted_keys = keys[order]
    dim = mesh.dim
    out = np.full((len(coords), 2 * dim), -1, np.int64)
    for ax in range(dim):
        for s, col in ((-step, 2 * ax), (step, 2 * ax + 1)):
            q = coords.astype(np.int64).copy()
            q[:, ax] += s
            qk = _coord_key(q)
            pos = np.searchsorted(sorted_keys, qk)
            posc = np.clip(pos, 0, len(keys) - 1)
            hit = (pos < len(keys)) & (sorted_keys[posc] == qk)
            out[hit, col] = order[posc[hit]]
    return out


class FDPoissonProblem:
    """−Δu = f with Dirichlet data at the voxel/domain boundary nodes."""

    def __init__(self, mesh: IncompleteMesh, f=0.0, dirichlet=0.0):
        self.mesh = mesh
        self.f = f
        self.dirichlet = dirichlet
        self.neighbors = node_neighbor_table(mesh)
        h = mesh.element_sizes()[0]
        self.h = float(h)
        # a node with any missing neighbour is treated as boundary: it
        # sits on the voxel surface (or the cube boundary)
        incomplete = (self.neighbors < 0).any(axis=1)
        self.fixed = mesh.dirichlet_mask | incomplete

    def assemble(self):
        n = self.mesh.n_nodes
        dim = self.mesh.dim
        inv_h2 = 1.0 / self.h**2
        rows, cols, vals = [], [], []
        interior = np.flatnonzero(~self.fixed)
        rows.append(interior)
        cols.append(interior)
        vals.append(np.full(len(interior), 2.0 * dim * inv_h2))
        for col in range(2 * dim):
            nb = self.neighbors[interior, col]
            rows.append(interior)
            cols.append(nb)
            vals.append(np.full(len(interior), -inv_h2))
        bidx = np.flatnonzero(self.fixed)
        rows.append(bidx)
        cols.append(bidx)
        vals.append(np.ones(len(bidx)))
        A = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        )
        pts = self.mesh.node_coords()
        b = np.zeros(n)
        fv = (
            np.full(n, float(self.f)) if np.isscalar(self.f) else self.f(pts)
        )
        b[~self.fixed] = fv[~self.fixed]
        g = (
            np.full(n, float(self.dirichlet))
            if np.isscalar(self.dirichlet)
            else self.dirichlet(pts)
        )
        b[self.fixed] = g[self.fixed]
        return A.tocsc(), b

    def solve(self) -> np.ndarray:
        A, b = self.assemble()
        return spla.spsolve(A, b)
