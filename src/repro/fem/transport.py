"""SUPG-stabilised scalar transport on incomplete-octree meshes.

The §5 viral-load model: a passive scalar c (quanta/m³) advected by a
(statically computed) flow field with diffusion κ and localised source
terms (coughing events),

    c_t + v·∇c − κΔc = s,

discretised with equal-order elements, SUPG stabilisation and implicit
Euler.  The advection velocity is taken element-wise constant (the mean
of the element's nodal velocities), which keeps all elemental matrices
as contractions of cached reference tensors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.mesh import IncompleteMesh
from ..core.plan import operator_context
from ..fem.poisson import load_vector

__all__ = ["TransportProblem", "element_velocity"]


def element_velocity(mesh: IncompleteMesh, vel_nodes: np.ndarray) -> np.ndarray:
    """Element-wise mean velocity from nodal values ``(n_nodes, dim)``."""
    g = operator_context(mesh).gather
    npe = mesh.npe
    out = np.empty((mesh.n_elem, mesh.dim))
    for k in range(mesh.dim):
        out[:, k] = (g @ vel_nodes[:, k]).reshape(mesh.n_elem, npe).mean(axis=1)
    return out


class TransportProblem:
    """Implicit-Euler SUPG advection–diffusion.

    Parameters
    ----------
    velocity:
        ``(n_nodes, dim)`` nodal velocity field (e.g. a Navier–Stokes
        solution) or a callable ``f(points) -> (n, dim)``.
    kappa:
        Diffusivity.
    dt:
        Time-step size.
    dirichlet_mask / dirichlet_value:
        Nodes with strong data (e.g. inlet c = 0).  Other boundaries
        get the natural (zero-flux) condition.
    """

    def __init__(
        self,
        mesh: IncompleteMesh,
        velocity,
        kappa: float,
        dt: float,
        dirichlet_mask: np.ndarray | None = None,
        dirichlet_value: float = 0.0,
    ):
        self.mesh = mesh
        self.kappa = float(kappa)
        self.dt = float(dt)
        pts = mesh.node_coords()
        vel = velocity(pts) if callable(velocity) else np.asarray(velocity, float)
        if vel.shape != (mesh.n_nodes, mesh.dim):
            raise ValueError("velocity must be (n_nodes, dim)")
        self.vel_nodes = vel
        self.dirichlet_mask = (
            np.zeros(mesh.n_nodes, bool)
            if dirichlet_mask is None
            else np.asarray(dirichlet_mask, bool)
        )
        self.dirichlet_value = float(dirichlet_value)
        self._build()

    def _build(self) -> None:
        mesh = self.mesh
        ctx = operator_context(mesh)
        ref = ctx.ref()
        dim, npe = mesh.dim, mesh.npe
        h = ctx.h
        a = element_velocity(mesh, self.vel_nodes)  # (n_elem, dim)
        amag = np.linalg.norm(a, axis=1)
        kap = self.kappa
        # SUPG intrinsic time
        tau = 1.0 / np.sqrt(
            (2.0 / self.dt) ** 2
            + (2.0 * amag / h) ** 2
            + (12.0 * kap / h**2) ** 2
        )
        self.tau = tau

        M = ref.M_ref[None] * (h**dim)[:, None, None]
        K = ref.K_ref[None] * (kap * h ** (dim - 2))[:, None, None]
        C = np.einsum("fk,kij->fij", a, ref.C_ref) * (h ** (dim - 1))[:, None, None]
        # SUPG: tau (a·∇w, a·∇c) and tau (a·∇w, c/dt)
        Daa = np.einsum("fk,fl,klij->fij", a, a, ref.D_ref)
        S_adv = tau[:, None, None] * Daa * (h ** (dim - 2))[:, None, None]
        CT = np.einsum("fk,kji->fij", a, ref.C_ref)  # ∫ (a·∇φ_i) φ_j
        S_mass = (tau / self.dt)[:, None, None] * CT * (h ** (dim - 1))[:, None, None]
        self._blocks_lhs = M / self.dt + K + C + S_adv + S_mass
        self._blocks_mass = M / self.dt + S_mass  # multiplies c_old

        g = ctx.gather
        B = sp.bsr_matrix(
            (self._blocks_lhs, np.arange(mesh.n_elem), np.arange(mesh.n_elem + 1)),
            shape=(mesh.n_elem * npe, mesh.n_elem * npe),
        )
        A = (g.T @ (B @ g)).tocsr()
        Bm = sp.bsr_matrix(
            (self._blocks_mass, np.arange(mesh.n_elem), np.arange(mesh.n_elem + 1)),
            shape=(mesh.n_elem * npe, mesh.n_elem * npe),
        )
        self.M_old = (g.T @ (Bm @ g)).tocsr()

        fixed = self.dirichlet_mask
        A = A.tolil()
        idx = np.flatnonzero(fixed)
        for i in idx:
            A.rows[i] = [i]
            A.data[i] = [1.0]
        self.A = A.tocsc()
        self._lu = spla.splu(self.A)

    def step(self, c: np.ndarray, source: "Callable | float" = 0.0) -> np.ndarray:
        """Advance one implicit-Euler step; ``source`` is s(x) this step."""
        rhs = self.M_old @ c
        if not (np.isscalar(source) and source == 0.0):
            rhs = rhs + load_vector(self.mesh, source)
        rhs[self.dirichlet_mask] = self.dirichlet_value
        return self._lu.solve(rhs)

    def run(self, c0: np.ndarray, nsteps: int, source=0.0) -> np.ndarray:
        c = np.asarray(c0, float).copy()
        for _ in range(nsteps):
            c = self.step(c, source)
        return c

    def total_mass(self, c: np.ndarray) -> float:
        """∫ c over the retained domain."""
        from ..core.assembly import assemble

        M = assemble(self.mesh, kind="mass")
        return float(np.ones(self.mesh.n_nodes) @ (M @ c))
