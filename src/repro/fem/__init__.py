"""Finite-element substrate: bases, elemental kernels, PDE problems.

Problem classes are exported lazily (PEP 562): they import the core
mesh machinery, which itself uses :mod:`repro.fem.basis`, so eager
re-exports here would create an import cycle.
"""

from .basis import LagrangeBasis
from .elemental import ReferenceElement, reference_element
from .quadrature import gauss_legendre_1d, tensor_rule

__all__ = [
    "LagrangeBasis",
    "ReferenceElement",
    "reference_element",
    "gauss_legendre_1d",
    "tensor_rule",
    "PoissonProblem",
    "load_vector",
    "l2_error",
    "linf_error",
    "sbm_terms",
    "TransportProblem",
    "NavierStokesProblem",
    "DGPoissonProblem",
    "dg_dof_count",
    "FDPoissonProblem",
    "FVAdvectionProblem",
]

_LAZY = {
    "PoissonProblem": ("poisson", "PoissonProblem"),
    "load_vector": ("poisson", "load_vector"),
    "l2_error": ("poisson", "l2_error"),
    "linf_error": ("poisson", "linf_error"),
    "sbm_terms": ("sbm", "sbm_terms"),
    "TransportProblem": ("transport", "TransportProblem"),
    "NavierStokesProblem": ("navier_stokes", "NavierStokesProblem"),
    "DGPoissonProblem": ("dg", "DGPoissonProblem"),
    "dg_dof_count": ("dg", "dg_dof_count"),
    "FDPoissonProblem": ("fdm", "FDPoissonProblem"),
    "FVAdvectionProblem": ("fvm", "FVAdvectionProblem"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        mod, attr = _LAZY[name]
        return getattr(importlib.import_module(f".{mod}", __name__), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
