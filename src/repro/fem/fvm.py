"""Cell-centred finite volumes on incomplete octree grids (paper future
work, alongside finite differences).

First-order upwind advection with optional two-point-flux diffusion on
*uniform-level* incomplete grids: unknowns live at cell centres, fluxes
cross the same-level interior faces (reusing the DG face enumeration),
and the carved/domain boundary applies inflow data or outflow
extrapolation.  Explicit Euler with a CFL guard; exactly conservative
up to boundary fluxes (asserted in tests).
"""

from __future__ import annotations

import numpy as np

from ..core.faces import extract_boundary_faces
from ..core.mesh import IncompleteMesh
from .dg import interior_faces

__all__ = ["FVAdvectionProblem"]


class FVAdvectionProblem:
    """c_t + ∇·(v c) = κ Δc, cell-centred, first-order upwind."""

    def __init__(
        self,
        mesh: IncompleteMesh,
        velocity,
        kappa: float = 0.0,
        inflow_value: float = 0.0,
    ):
        lv = mesh.leaves.levels
        if lv.min() != lv.max():
            raise ValueError("the FV scheme requires a uniform-level mesh")
        self.mesh = mesh
        self.kappa = float(kappa)
        self.inflow_value = float(inflow_value)
        ctr = mesh.element_centers()
        vel = velocity(ctr) if callable(velocity) else np.asarray(velocity, float)
        if vel.shape != (mesh.n_elem, mesh.dim):
            raise ValueError("velocity must be (n_elem, dim)")
        self.vel = vel
        self.h = float(mesh.element_sizes()[0])
        self.em, self.ep, self.fax = interior_faces(mesh)
        # face-normal velocity (average of the two cells), +axis normal
        self.vn = 0.5 * (
            self.vel[self.em, self.fax] + self.vel[self.ep, self.fax]
        )
        sub, dom = extract_boundary_faces(mesh)
        self.b_elem = np.concatenate([sub.elem, dom.elem])
        self.b_axis = np.concatenate([sub.axis, dom.axis])
        self.b_sign = 2.0 * np.concatenate([sub.side, dom.side]) - 1.0

    def max_dt(self) -> float:
        """CFL limit for the explicit update."""
        vmax = np.abs(self.vel).max() or 1e-30
        dt_adv = 0.5 * self.h / vmax
        if self.kappa > 0:
            dt_diff = 0.25 * self.h**2 / (self.mesh.dim * self.kappa)
            return min(dt_adv, dt_diff)
        return dt_adv

    def step(self, c: np.ndarray, dt: float) -> np.ndarray:
        mesh = self.mesh
        dim = mesh.dim
        area = self.h ** (dim - 1)
        vol = self.h**dim
        flux = np.zeros(mesh.n_elem)
        # interior faces: upwind advective + two-point diffusive flux
        up = np.where(self.vn >= 0, c[self.em], c[self.ep])
        f_adv = self.vn * up * area
        f_dif = -self.kappa * (c[self.ep] - c[self.em]) / self.h * area
        f = f_adv + f_dif
        np.subtract.at(flux, self.em, f)
        np.add.at(flux, self.ep, f)
        # boundary faces: inflow Dirichlet, outflow first-order
        vb = self.vel[self.b_elem, self.b_axis] * self.b_sign  # outward normal vel
        cb = np.where(vb >= 0, c[self.b_elem], self.inflow_value)
        fb = vb * cb * area
        np.subtract.at(flux, self.b_elem, fb)
        return c + dt * flux / vol

    def run(self, c0: np.ndarray, t_end: float) -> np.ndarray:
        c = np.asarray(c0, float).copy()
        dt = self.max_dt()
        t = 0.0
        while t < t_end - 1e-14:
            step = min(dt, t_end - t)
            c = self.step(c, step)
            t += step
        return c

    def total_mass(self, c: np.ndarray) -> float:
        return float(c.sum() * self.h**self.mesh.dim)
