"""Tensor-product Gauss–Legendre quadrature on the reference cube [0,1]^d."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["gauss_legendre_1d", "tensor_rule"]


@lru_cache(maxsize=None)
def gauss_legendre_1d(n: int) -> tuple[np.ndarray, np.ndarray]:
    """``n``-point Gauss–Legendre points/weights on [0, 1]."""
    x, w = np.polynomial.legendre.leggauss(n)
    return 0.5 * (x + 1.0), 0.5 * w


@lru_cache(maxsize=None)
def tensor_rule(n: int, dim: int) -> tuple[np.ndarray, np.ndarray]:
    """Tensor rule: points ``(n**dim, dim)`` and weights ``(n**dim,)``."""
    x1, w1 = gauss_legendre_1d(n)
    grids = np.meshgrid(*([x1] * dim), indexing="ij")
    pts = np.stack([g.ravel() for g in grids], axis=1)
    wgrids = np.meshgrid(*([w1] * dim), indexing="ij")
    w = np.ones(len(pts))
    for g in wgrids:
        w *= g.ravel()
    return pts, w
