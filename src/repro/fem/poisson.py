"""Poisson problems on incomplete-octree meshes.

Supports both strong (nodal) Dirichlet conditions — the "naive"
first-order treatment of the voxelated boundary — and the Shifted
Boundary Method (:mod:`repro.fem.sbm`) that restores optimal
convergence (Fig. 6 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..core.assembly import assemble
from ..core.matvec import MapBasedMatVec
from ..core.mesh import IncompleteMesh
from ..core.plan import operator_context
from ..solvers.krylov import cg
from ..solvers.precond import jacobi

__all__ = ["PoissonProblem", "load_vector", "l2_error", "linf_error", "quad_points"]


def quad_points(mesh: IncompleteMesh, nquad: int | None = None):
    """Physical quadrature points and weights over all elements.

    Returns ``(x, w, ref)`` with ``x`` of shape ``(n_elem, nq, dim)``
    and ``w`` of shape ``(n_elem, nq)`` (already scaled by h^dim).
    """
    ctx = operator_context(mesh)
    ref = ctx.ref(nquad)
    h = ctx.h
    lo, _ = mesh.leaves.physical_bounds(mesh.domain.scale)
    x = lo[:, None, :] + ref.qpts[None, :, :] * h[:, None, None]
    w = ref.qwts[None, :] * (h**mesh.dim)[:, None]
    return x, w, ref


def load_vector(mesh: IncompleteMesh, f: Callable | float, nquad=None) -> np.ndarray:
    """Consistent load vector b_i = ∫ f φ_i over the retained domain."""
    x, w, ref = quad_points(mesh, nquad)
    fv = np.full(x.shape[:2], float(f)) if np.isscalar(f) else f(
        x.reshape(-1, mesh.dim)
    ).reshape(x.shape[:2])
    b_loc = np.einsum("eq,qi,eq->ei", fv, ref.N, w)
    return operator_context(mesh).scatter @ b_loc.reshape(-1)


def l2_error(mesh: IncompleteMesh, u_h: np.ndarray, exact: Callable, nquad=None) -> float:
    """‖u_h − u‖_L2 over the retained (voxelated) domain."""
    x, w, ref = quad_points(mesh, nquad or mesh.p + 2)
    u_loc = (operator_context(mesh).gather @ u_h).reshape(mesh.n_elem, mesh.npe)
    uh_q = u_loc @ ref.N.T
    ue_q = exact(x.reshape(-1, mesh.dim)).reshape(uh_q.shape)
    return float(np.sqrt(np.sum(w * (uh_q - ue_q) ** 2)))


def linf_error(mesh: IncompleteMesh, u_h: np.ndarray, exact: Callable) -> float:
    """max-norm error sampled at the global nodes."""
    pts = mesh.node_coords()
    return float(np.max(np.abs(u_h - exact(pts))))


@dataclass
class PoissonProblem:
    """−Δu = f on the retained subdomain with Dirichlet data.

    ``dirichlet`` is the boundary data g; with ``method='nodal'`` it is
    imposed strongly at every node of :attr:`IncompleteMesh.dirichlet_mask`
    (the voxelated boundary — first-order accurate); with
    ``method='sbm'`` the Shifted Boundary Method weak terms are added on
    the surrogate boundary faces instead (second order).
    """

    mesh: IncompleteMesh
    f: Callable | float = 0.0
    dirichlet: Callable | float = 0.0
    method: str = "nodal"
    # penalty: large enough for stability yet gentle on cells touching
    # the boundary only at a corner (where |d| approaches the cell
    # diagonal); 2.0 gives clean optimal rates for p=1 and p=2
    sbm_alpha: float = 2.0

    def _g_at(self, pts: np.ndarray) -> np.ndarray:
        if np.isscalar(self.dirichlet):
            return np.full(len(pts), float(self.dirichlet))
        return self.dirichlet(pts)

    def system(self) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
        """Assembled system (A, b, fixed_mask) before elimination."""
        A = assemble(self.mesh, kind="stiffness")
        b = load_vector(self.mesh, self.f)
        if self.method == "nodal":
            fixed = self.mesh.dirichlet_mask.copy()
        elif self.method == "sbm":
            from .sbm import sbm_terms

            A_s, b_s = sbm_terms(self.mesh, self._g_at, alpha=self.sbm_alpha)
            A = (A + A_s).tocsr()
            b = b + b_s
            # only the true cube boundary stays strongly imposed
            fixed = self.mesh.nodes.domain_boundary & ~self.mesh.nodes.carved_node
        else:
            raise ValueError(f"unknown method {self.method!r}")
        return A, b, fixed

    def solve(
        self,
        rtol: float = 1e-10,
        solver: str = "auto",
        x0: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve the problem.

        ``solver``: ``"auto"`` (direct for SBM, CG otherwise),
        ``"direct"``, ``"cg"`` (assembled + Jacobi-CG), or
        ``"matrix-free"`` — never assembles the global matrix: the
        operator action is the gather → elemental kernel → scatter
        MATVEC with boundary rows folded in, exactly the workflow the
        paper's traversal MATVEC enables.

        ``x0`` (length ``n_nodes``) warm-starts the CG iteration — the
        AMR loop passes the previous mesh's solution transferred to the
        current mesh, cutting iteration counts on later cycles.  Ignored
        by the direct solver.
        """
        if solver == "matrix-free":
            return self._solve_matrix_free(rtol)
        A, b, fixed = self.system()
        n = self.mesh.n_nodes
        u = np.zeros(n)
        if fixed.any():
            u[fixed] = self._g_at(self.mesh.node_coords()[fixed])
        free = np.flatnonzero(~fixed)
        if len(free) == 0:
            return u
        Aff = A[np.ix_(free, free)].tocsr()
        rhs = b[free] - A[np.ix_(free, np.flatnonzero(fixed))] @ u[fixed]
        if solver == "direct" or (solver == "auto" and self.method == "sbm"):
            import scipy.sparse.linalg as spla

            u[free] = spla.spsolve(Aff.tocsc(), rhs)
        else:
            start = None if x0 is None else np.asarray(x0, float)[free]
            res = cg(
                Aff,
                rhs,
                x0=start,
                M=jacobi(Aff),
                rtol=rtol,
                maxiter=20 * len(free),
            )
            if not res.converged:
                raise RuntimeError(
                    f"CG failed to converge: residual {res.residual:.3e}"
                )
            u[free] = res.x
        return u

    def _solve_matrix_free(self, rtol: float) -> np.ndarray:
        """Matrix-free CG: no global matrix is ever formed."""
        if self.method != "nodal":
            raise ValueError("matrix-free solve supports the nodal method")
        mesh = self.mesh
        fixed = mesh.dirichlet_mask
        free = ~fixed
        mv = MapBasedMatVec(mesh, kind="stiffness")
        u_fix = np.where(fixed, self._g_at(mesh.node_coords()), 0.0)
        b = load_vector(mesh, self.f) - mv(u_fix)
        b = np.where(free, b, 0.0)

        def op(v):
            w = mv(np.where(free, v, 0.0))
            return np.where(free, w, v)

        # Jacobi preconditioner from the elemental diagonal, gathered
        # without assembly: diag(A) = gatherT diag(blocks) over slots
        ctx = operator_context(mesh)
        ref = ctx.ref()
        h = ctx.h
        dloc = (
            np.diag(ref.K_ref)[None, :] * (h ** (mesh.dim - 2))[:, None]
        ).reshape(-1)
        g = ctx.gather
        diag = g.T.multiply(g.T) @ dloc  # sum of w_ig^2 * K_ii per node
        diag = np.asarray(diag).ravel()
        diag = np.where(free & (diag > 0), diag, 1.0)
        M = lambda r: r / diag
        res = cg(op, b, M=M, rtol=rtol, maxiter=20 * mesh.n_nodes)
        if not res.converged:
            raise RuntimeError(
                f"matrix-free CG failed: residual {res.residual:.3e}"
            )
        return np.where(free, res.x, u_fix)

    def matrix_free_operator(self) -> MapBasedMatVec:
        """The unconstrained stiffness action (for scaling studies)."""
        return MapBasedMatVec(self.mesh, kind="stiffness")
