"""Shifted Boundary Method (SBM) surface terms (§4.3).

The Dirichlet condition on the true boundary Γ is shifted to the
voxelated surrogate boundary Γ̃ (the carved-boundary faces of the
incomplete octree) with a second-order Taylor correction along the
distance vector d(x) = proj_Γ(x) − x:

  −(w, ∇u·ñ)_Γ̃ − (∇w·ñ, u + ∇u·d − u_D)_Γ̃
  + (α/h)(w + ∇w·d, u + ∇u·d − u_D)_Γ̃

following Main & Scovazzi (2018) / Atallah et al. (2020).  The
predicate must provide :meth:`boundary_projection`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..core.faces import extract_boundary_faces
from ..core.mesh import IncompleteMesh
from ..core.plan import operator_context
from ..fem.basis import LagrangeBasis
from ..fem.quadrature import tensor_rule

__all__ = ["sbm_terms", "face_quadrature"]


def face_quadrature(p: int, dim: int, axis: int, side: int, nquad: int):
    """Reference quadrature on one face of the unit cube.

    Returns ``(pts, wts)`` with pts ``(nqf, dim)`` lying on the face.
    """
    if dim == 1:
        return np.array([[float(side)]]), np.array([1.0])
    fpts, fwts = tensor_rule(nquad, dim - 1)
    pts = np.zeros((len(fpts), dim))
    in_axes = [a for a in range(dim) if a != axis]
    pts[:, in_axes] = fpts
    pts[:, axis] = float(side)
    return pts, fwts


def sbm_terms(
    mesh: IncompleteMesh,
    g: Callable[[np.ndarray], np.ndarray],
    alpha: float = 10.0,
    nquad: int | None = None,
    include_domain_faces: bool = True,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """SBM bilinear matrix and load vector on the surrogate boundary.

    ``g(points) -> values`` is the Dirichlet data, evaluated at the true
    boundary (at the projections of the quadrature points).  When the
    carved set reaches the root cube (e.g. a retained disk tangent to
    the cube), faces of retained elements on the cube boundary also
    belong to the surrogate boundary; ``include_domain_faces`` adds them
    (disable for problems where the cube boundary carries its own BC).
    """
    dim = mesh.dim
    p = mesh.p
    npe = mesh.npe
    nq1 = nquad or p + 1
    basis = LagrangeBasis(p, dim)
    sub_faces, dom_faces = extract_boundary_faces(mesh)
    if include_domain_faces and len(dom_faces):
        sub_faces = type(sub_faces)(
            np.concatenate([sub_faces.elem, dom_faces.elem]),
            np.concatenate([sub_faces.axis, dom_faces.axis]),
            np.concatenate([sub_faces.side, dom_faces.side]),
        )
    n_elem = mesh.n_elem
    h_all = operator_context(mesh).h
    lo_all, _ = mesh.leaves.physical_bounds(mesh.domain.scale)
    pred = mesh.domain.predicate

    blocks = np.zeros((n_elem, npe, npe))
    rhs_loc = np.zeros((n_elem, npe))
    touched = np.zeros(n_elem, bool)

    for axis in range(dim):
        for side in (0, 1):
            sel = np.flatnonzero((sub_faces.axis == axis) & (sub_faces.side == side))
            if len(sel) == 0:
                continue
            es = sub_faces.elem[sel]
            touched[es] = True
            rpts, rwts = face_quadrature(p, dim, axis, side, nq1)
            N = basis.eval(rpts)               # (nqf, npe)
            G = basis.eval_grad(rpts)          # (nqf, npe, dim)
            h = h_all[es]                      # (nf,)
            xq = lo_all[es][:, None, :] + rpts[None, :, :] * h[:, None, None]
            nf, nqf = len(es), len(rpts)
            flat = xq.reshape(-1, dim)
            proj = pred.boundary_projection(flat)
            dvec = (proj - flat).reshape(nf, nqf, dim)
            uD = g(proj).reshape(nf, nqf)
            nrm = np.zeros(dim)
            nrm[axis] = 2.0 * side - 1.0
            # physical gradients: G/h per element
            gn = np.einsum("qid,d->qi", G, nrm)[None, :, :] / h[:, None, None]
            gd = np.einsum("qid,fqd->fqi", G, dvec) / h[:, None, None]
            Nq = np.broadcast_to(N[None], (nf, nqf, npe))
            shifted = Nq + gd                  # φ + ∇φ·d
            wq = rwts[None, :] * (h ** (dim - 1))[:, None]
            wpen = wq * (alpha / h)[:, None]
            # bilinear terms
            S = (
                -np.einsum("fq,fqi,fqj->fij", wq, Nq, gn)
                - np.einsum("fq,fqi,fqj->fij", wq, gn, shifted)
                + np.einsum("fq,fqi,fqj->fij", wpen, shifted, shifted)
            )
            r = -np.einsum("fq,fqi,fq->fi", wq, gn, uD) + np.einsum(
                "fq,fqi,fq->fi", wpen, shifted, uD
            )
            np.add.at(blocks, es, S)
            np.add.at(rhs_loc, es, r)

    idx = np.flatnonzero(touched)
    if len(idx) == 0:
        n = mesh.n_nodes
        return sp.csr_matrix((n, n)), np.zeros(n)
    # assemble through the gather operator (hanging-aware)
    counts = np.zeros(n_elem, int)
    counts[idx] = 1
    indptr = np.concatenate([[0], np.cumsum(counts)])
    Bface = sp.bsr_matrix(
        (blocks[idx], idx, indptr),
        shape=(n_elem * npe, n_elem * npe),
        blocksize=(npe, npe),
    )
    gth = operator_context(mesh).gather
    A_s = (gth.T @ (Bface @ gth)).tocsr()
    b_s = gth.T @ rhs_loc.reshape(-1)
    return A_s, b_s
