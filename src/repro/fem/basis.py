"""Tensor-product Lagrange bases on the reference cube [0, 1]^dim.

Local nodes are laid out lexicographically with axis 0 fastest:
``local = i_0 + (p+1)*i_1 + (p+1)^2*i_2``, matching the node-generation
order in :mod:`repro.core.nodes`.  All evaluations are vectorised over
query points.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["LagrangeBasis", "local_node_offsets"]


@lru_cache(maxsize=None)
def _lagrange_1d_coeffs(p: int) -> np.ndarray:
    """Polynomial coefficients (p+1, p+1) of the 1-D Lagrange basis on
    equispaced nodes x_j = j/p (node 0 at 0, node p at 1).

    Row j holds the monomial coefficients (ascending powers) of L_j.
    """
    if p == 0:
        return np.ones((1, 1))
    xs = np.linspace(0.0, 1.0, p + 1)
    coeffs = np.zeros((p + 1, p + 1))
    for j in range(p + 1):
        c = np.poly1d([1.0])
        for k in range(p + 1):
            if k != j:
                c *= np.poly1d([1.0, -xs[k]]) / (xs[j] - xs[k])
        coeffs[j, : len(c.coeffs)] = c.coeffs[::-1]
    return coeffs


@lru_cache(maxsize=None)
def local_node_offsets(p: int, dim: int) -> np.ndarray:
    """Integer node multi-indices ``(npe, dim)`` with axis 0 fastest."""
    axes = [np.arange(p + 1)] * dim
    grids = np.meshgrid(*axes, indexing="ij")
    # axis 0 fastest: stack then reorder so index = sum i_k (p+1)^k
    out = np.stack([g.ravel(order="F") for g in grids], axis=1)
    return out


class LagrangeBasis:
    """Order-``p`` tensor Lagrange basis in ``dim`` dimensions."""

    def __init__(self, p: int, dim: int):
        if p < 1:
            raise ValueError("order p must be >= 1")
        self.p = p
        self.dim = dim
        self.npe = (p + 1) ** dim
        self._c = _lagrange_1d_coeffs(p)
        self.offsets = local_node_offsets(p, dim)

    def eval_1d(self, x: np.ndarray) -> np.ndarray:
        """1-D basis values, shape ``(len(x), p+1)``."""
        x = np.atleast_1d(np.asarray(x, float))
        powers = x[:, None] ** np.arange(self.p + 1)[None, :]
        return powers @ self._c.T

    def eval_1d_deriv(self, x: np.ndarray) -> np.ndarray:
        """1-D basis derivatives, shape ``(len(x), p+1)``."""
        x = np.atleast_1d(np.asarray(x, float))
        k = np.arange(1, self.p + 1)
        dpow = k[None, :] * x[:, None] ** (k - 1)[None, :]
        return dpow @ self._c[:, 1:].T

    def eval(self, pts: np.ndarray) -> np.ndarray:
        """Basis values at reference points ``(n, dim)`` → ``(n, npe)``."""
        pts = np.atleast_2d(np.asarray(pts, float))
        vals1d = [self.eval_1d(pts[:, ax]) for ax in range(self.dim)]
        out = np.ones((len(pts), self.npe))
        for ax in range(self.dim):
            out *= vals1d[ax][:, self.offsets[:, ax]]
        return out

    def eval_grad(self, pts: np.ndarray) -> np.ndarray:
        """Reference gradients at points: ``(n, npe, dim)``."""
        pts = np.atleast_2d(np.asarray(pts, float))
        vals1d = [self.eval_1d(pts[:, ax]) for ax in range(self.dim)]
        ders1d = [self.eval_1d_deriv(pts[:, ax]) for ax in range(self.dim)]
        out = np.ones((len(pts), self.npe, self.dim))
        for g_ax in range(self.dim):
            for ax in range(self.dim):
                f = ders1d[ax] if ax == g_ax else vals1d[ax]
                out[:, :, g_ax] *= f[:, self.offsets[:, ax]]
        return out

    def node_reference_coords(self) -> np.ndarray:
        """Reference coordinates of the local nodes, ``(npe, dim)``."""
        return self.offsets / self.p
