"""VMS/SUPG-PSPG stabilised incompressible Navier–Stokes (§5).

Equal-order Lagrange elements for velocity and pressure on the
incomplete octree, with the residual-based stabilisation of the VMS
family (Bazilevs et al. 2007 is the paper's formulation; this
implementation carries its SUPG/PSPG/grad-div core with element-wise
constant advection — adequate for the laminar validation regimes a
Python reproduction can reach, see DESIGN.md):

momentum   (w, u_t + a·∇u) + ν(∇w, ∇u) − (∇·w, p)
           + Σ_e τ_m (a·∇w, R_m(u, p)) + Σ_e τ_c (∇·w, ∇·u)
continuity (q, ∇·u) + Σ_e τ_m (∇q, R_m(u, p))

with R_m the momentum residual (time + advection + pressure gradient;
the viscous term drops for linear elements).  Nonlinearity is handled
by Picard iteration; time integration is implicit Euler; the linear
systems are solved with a sparse LU (the PETSc-equivalent role).

Unknown layout: ``x = [u_0 | u_1 | (u_2) | p]``, each field of length
``n_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.mesh import IncompleteMesh
from ..core.plan import operator_context
from ..obs import add as obs_add
from ..obs import span

__all__ = ["NavierStokesProblem", "big_gather", "NSResult"]


def big_gather(mesh: IncompleteMesh, nfields: int) -> sp.csr_matrix:
    """Multi-field gather: global ``[f0 | f1 | ...]`` vectors to
    element-local field-major slot vectors (hanging-aware).

    Built and cached by the mesh's shared
    :class:`repro.core.plan.OperatorContext`.
    """
    return operator_context(mesh).big_gather(nfields)


@dataclass
class NSResult:
    velocity: np.ndarray  # (n_nodes, dim)
    pressure: np.ndarray  # (n_nodes,)
    iterations: int
    residual: float


class NavierStokesProblem:
    """Incompressible Navier–Stokes on an incomplete-octree mesh.

    Parameters
    ----------
    nu:
        Kinematic viscosity (1/Re for unit inflow and length).
    velocity_bc:
        ``f(points) -> (mask, values)`` with ``mask`` and ``values`` of
        shape ``(n_nodes, dim)``: strong velocity data per component.
    pressure_pin:
        Boolean node mask where p = 0 is imposed (e.g. the outlet).
    """

    def __init__(
        self,
        mesh: IncompleteMesh,
        nu: float,
        velocity_bc: Callable,
        pressure_pin: np.ndarray | None = None,
        dt: float = np.inf,
        grad_div: float = 1.0,
    ):
        self.mesh = mesh
        self.nu = float(nu)
        self.dt = float(dt)
        self.grad_div = float(grad_div)
        self.dim = mesh.dim
        self.n = mesh.n_nodes
        self.ctx = operator_context(mesh)
        self.ref = self.ctx.ref()
        self.h = self.ctx.h
        pts = mesh.node_coords()
        mask, vals = velocity_bc(pts)
        self.vmask = np.asarray(mask, bool)
        self.vvals = np.asarray(vals, float)
        if self.vmask.shape != (self.n, self.dim):
            raise ValueError("velocity_bc mask must be (n_nodes, dim)")
        self.ppin = (
            np.zeros(self.n, bool) if pressure_pin is None else np.asarray(pressure_pin, bool)
        )
        self._G = self.ctx.big_gather(self.dim + 1)
        self._GT = self._G.T.tocsr()
        # big fixed-dof mask over [u components | p]
        self.fixed = np.concatenate(
            [self.vmask[:, k] for k in range(self.dim)] + [self.ppin]
        )
        self.fixed_vals = np.concatenate(
            [np.where(self.vmask[:, k], self.vvals[:, k], 0.0) for k in range(self.dim)]
            + [np.zeros(self.n)]
        )

    # -- elemental blocks ------------------------------------------------

    def _element_advection(self, U: np.ndarray) -> np.ndarray:
        g = self.ctx.gather
        npe = self.mesh.npe
        a = np.empty((self.mesh.n_elem, self.dim))
        for k in range(self.dim):
            a[:, k] = (g @ U[:, k]).reshape(-1, npe).mean(axis=1)
        return a

    def _taus(self, a: np.ndarray):
        amag = np.linalg.norm(a, axis=1)
        h = self.h
        inv_dt = 0.0 if not np.isfinite(self.dt) else 2.0 / self.dt
        tau_m = 1.0 / np.sqrt(
            inv_dt**2 + (2.0 * amag / h) ** 2 + (12.0 * self.nu / h**2) ** 2
        )
        re_h = amag * h / (2.0 * self.nu)
        tau_c = self.grad_div * 0.5 * h * amag * np.minimum(re_h / 3.0, 1.0)
        # keep grad-div active in the Stokes limit for pressure robustness
        tau_c = np.maximum(tau_c, 0.05 * self.nu)
        return tau_m, tau_c

    def _blocks(self, a: np.ndarray):
        """Dense element blocks ((dim+1)npe)² and the old-state operator."""
        ref, dim, npe = self.ref, self.dim, self.mesh.npe
        ne = self.mesh.n_elem
        h = self.h
        ndof = (dim + 1) * npe
        tau_m, tau_c = self._taus(a)
        sc_m = h**dim        # mass scaling
        sc_k = h ** (dim - 2)
        sc_c = h ** (dim - 1)
        inv_dt = 0.0 if not np.isfinite(self.dt) else 1.0 / self.dt

        M = ref.M_ref[None] * sc_m[:, None, None]
        K = ref.K_ref[None] * sc_k[:, None, None]
        C = np.einsum("fk,kij->fij", a, ref.C_ref) * sc_c[:, None, None]
        Daa = np.einsum("fk,fl,klij->fij", a, a, ref.D_ref) * sc_k[:, None, None]
        CT = np.einsum("fk,kji->fij", a, ref.C_ref) * sc_c[:, None, None]

        E = np.zeros((ne, ndof, ndof))
        rhs_old = np.zeros((ne, ndof, ndof))  # multiplies old state vector

        vel_diag = (
            inv_dt * M
            + C
            + self.nu * K
            + tau_m[:, None, None] * (Daa + inv_dt * CT)
        )
        for i in range(dim):
            sl_i = slice(i * npe, (i + 1) * npe)
            E[:, sl_i, sl_i] += vel_diag
            rhs_old[:, sl_i, sl_i] += inv_dt * (M + tau_m[:, None, None] * CT)
            # grad-div: tau_c (∂_i w, ∂_j u)
            for j in range(dim):
                sl_j = slice(j * npe, (j + 1) * npe)
                E[:, sl_i, sl_j] += (
                    tau_c[:, None, None] * ref.D_ref[i, j][None] * sc_k[:, None, None]
                )
            # pressure gradient: −(∂_i w, p) ; SUPG τ (a·∇w, ∂_i p)
            # τ_m ∫ (a·∇φ_r) ∂_i φ_c = τ_m Σ_k a_k D_ref[k, i]
            sl_p = slice(dim * npe, (dim + 1) * npe)
            gradP = -np.transpose(ref.C_ref[i][None], (0, 2, 1)) * sc_c[:, None, None]
            supgP = (
                tau_m[:, None, None]
                * np.einsum("fk,kij->fij", a, ref.D_ref[:, i])
                * sc_k[:, None, None]
            )
            E[:, sl_i, sl_p] += gradP + supgP
            # continuity: (q, ∂_i u_i) ; PSPG τ (∂_i q, u_t + a·∇u)
            contQ = ref.C_ref[i][None] * sc_c[:, None, None]
            pspgT = (
                tau_m[:, None, None]
                * inv_dt
                * np.transpose(ref.C_ref[i][None], (0, 2, 1))
                * sc_c[:, None, None]
            )
            pspgA = tau_m[:, None, None] * np.einsum(
                "fk,kij->fij", a, ref.D_ref[i, :]
            ) * sc_k[:, None, None]
            E[:, sl_p, sl_i] += contQ + pspgT + pspgA
            rhs_old[:, sl_p, sl_i] += (
                tau_m[:, None, None]
                * inv_dt
                * np.transpose(ref.C_ref[i][None], (0, 2, 1))
                * sc_c[:, None, None]
            )
        # PSPG pressure block: τ_m (∇q, ∇p)
        sl_p = slice(dim * npe, (dim + 1) * npe)
        E[:, sl_p, sl_p] += tau_m[:, None, None] * K
        return E, rhs_old

    # -- assembly & solve -------------------------------------------------

    def _assemble(self, U: np.ndarray, x_old: np.ndarray | None):
        with span("ns.assemble", merge=True) as osp:
            mesh = self.mesh
            dim, npe = self.dim, mesh.npe
            ndof = (dim + 1) * npe
            a = self._element_advection(U)
            E, R = self._blocks(a)
            ne = mesh.n_elem
            B = sp.bsr_matrix(
                (E, np.arange(ne), np.arange(ne + 1)),
                shape=(ne * ndof, ne * ndof),
            )
            A = (self._GT @ (B @ self._G)).tocsr()
            if x_old is not None:
                Bm = sp.bsr_matrix(
                    (R, np.arange(ne), np.arange(ne + 1)),
                    shape=(ne * ndof, ne * ndof),
                )
                b = self._GT @ (Bm @ (self._G @ x_old))
            else:
                b = np.zeros(A.shape[0])
            osp.add("elements", ne)
        return self._apply_bc(A, b)

    def _apply_bc(self, A: sp.csr_matrix, b: np.ndarray):
        fixed = self.fixed
        N = A.shape[0]
        keep = sp.diags((~fixed).astype(float))
        ident = sp.diags(fixed.astype(float))
        # zero fixed rows AND columns (their contribution moves to the
        # RHS), then unit diagonal — the symmetric elimination keeping
        # the matrix square
        A_bc = (keep @ A @ keep + ident).tocsc()
        b = keep @ (b - A @ (self.fixed_vals * fixed)) + self.fixed_vals * fixed
        return A_bc, b

    def pack(self, U: np.ndarray, P: np.ndarray) -> np.ndarray:
        return np.concatenate([U[:, k] for k in range(self.dim)] + [P])

    def unpack(self, x: np.ndarray):
        n = self.n
        U = np.stack([x[k * n : (k + 1) * n] for k in range(self.dim)], axis=1)
        return U, x[self.dim * n :]

    def initial_state(self):
        """Start from the boundary data extended by zero."""
        U = np.where(self.vmask, self.vvals, 0.0)
        return U, np.zeros(self.n)

    def picard_solve(
        self,
        U0: np.ndarray | None = None,
        P0: np.ndarray | None = None,
        x_old: np.ndarray | None = None,
        max_iter: int = 25,
        tol: float = 1e-6,
        relax: float = 1.0,
        verbose: bool = False,
    ) -> NSResult:
        """Picard iteration at fixed time level (steady if dt = inf)."""
        if U0 is None or P0 is None:
            U0, P0 = self.initial_state()
        U, P = U0.copy(), P0.copy()
        res = np.inf
        it = 0
        with span("ns.picard", merge=True) as osp:
            for it in range(1, max_iter + 1):
                A, b = self._assemble(U, x_old)
                with span("ns.linear_solve", merge=True):
                    x = spla.splu(A).solve(b)
                U_new, P_new = self.unpack(x)
                du = np.linalg.norm(U_new - U) / max(np.linalg.norm(U_new), 1e-12)
                U = relax * U_new + (1 - relax) * U
                P = relax * P_new + (1 - relax) * P
                res = du
                if verbose:
                    print(f"  picard {it}: dU = {du:.3e}")
                if du < tol:
                    break
            osp.add("iterations", it)
        return NSResult(U, P, it, res)

    def _substep(self, state: NSResult, picard_per_step: int) -> NSResult:
        """One implicit-Euler step at the current ``self.dt``; raises
        ``FloatingPointError`` if the new state is not finite (sparse-LU
        singular factors surface as ``RuntimeError`` from SciPy)."""
        x_old = self.pack(state.velocity, state.pressure)
        out = self.picard_solve(
            state.velocity, state.pressure, x_old=x_old,
            max_iter=picard_per_step, tol=1e-8,
        )
        if not (
            np.all(np.isfinite(out.velocity)) and np.all(np.isfinite(out.pressure))
        ):
            raise FloatingPointError("non-finite Navier-Stokes state")
        return out

    def advance(
        self,
        U: np.ndarray,
        P: np.ndarray,
        nsteps: int,
        picard_per_step: int = 2,
        verbose: bool = False,
        max_dt_halvings: int = 0,
    ) -> NSResult:
        """Implicit-Euler time stepping (dt must be finite).

        With ``max_dt_halvings > 0``, a failed step (singular linear
        solve or a non-finite state) is retried with the step size
        halved — 2^k substeps of dt/2^k land on the same time level, so
        the trajectory's time grid is unchanged for callers.  Each
        retry increments the ``resilience.ns.dt_halvings`` counter;
        exhausting the budget raises
        :class:`repro.resilience.faults.SolverBreakdown` instead of
        silently returning garbage.
        """
        if not np.isfinite(self.dt):
            raise ValueError("advance() requires a finite dt")
        out = NSResult(U, P, 0, np.inf)
        dt0 = self.dt
        with span("ns.advance") as osp:
            try:
                for s in range(nsteps):
                    for halving in range(max_dt_halvings + 1):
                        nsub = 2**halving
                        self.dt = dt0 / nsub
                        try:
                            sub = out
                            for _ in range(nsub):
                                sub = self._substep(sub, picard_per_step)
                            out = sub
                            break
                        except (FloatingPointError, RuntimeError) as exc:
                            if halving == max_dt_halvings:
                                if max_dt_halvings == 0:
                                    raise
                                from ..resilience.faults import SolverBreakdown

                                raise SolverBreakdown(
                                    "ns.advance",
                                    "dt_budget_exhausted",
                                    f"step {s + 1}: dt halved {halving}x "
                                    f"down to {self.dt:.3e}, still failing "
                                    f"({exc})",
                                ) from exc
                            obs_add("resilience.ns.dt_halvings", 1)
                            osp.add("dt_halvings", 1)
                            if verbose:
                                print(
                                    f"step {s + 1}: retry with dt = "
                                    f"{dt0 / 2 ** (halving + 1):.3e} ({exc})"
                                )
                    if verbose:
                        umax = np.abs(out.velocity).max()
                        print(
                            f"step {s + 1}/{nsteps}: dU = {out.residual:.3e}, "
                            f"|u|max = {umax:.3f}"
                        )
                osp.add("steps", nsteps)
            finally:
                self.dt = dt0
        return out

    def divergence_norm(self, U: np.ndarray) -> float:
        """L2 norm of ∇·u (diagnostic for incompressibility)."""
        mesh = self.mesh
        ref, dim, npe = self.ref, self.dim, mesh.npe
        g = self.ctx.gather
        h = self.h
        div_q = np.zeros((mesh.n_elem, ref.nq))
        for k in range(dim):
            u_loc = (g @ U[:, k]).reshape(mesh.n_elem, npe)
            div_q += (u_loc @ ref.G[:, :, k].T) / h[:, None]
        w = ref.qwts[None, :] * (h**dim)[:, None]
        return float(np.sqrt(np.sum(w * div_q**2)))
