"""Subdomain abstraction (§3.1) and geometric predicates."""

from .classroom import ClassroomScene
from .predicate import EverywhereRetained, RegionLabel, SubdomainPredicate
from .primitives import (
    BoxCarve,
    BoxRetain,
    CapsuleCarve,
    CarveUnion,
    CylinderCarve,
    HalfSpaceCarve,
    SphereCarve,
    SphereRetain,
)
from .trimesh import TriMesh, TriMeshCarve, dragon_blob, icosphere

__all__ = [
    "RegionLabel",
    "SubdomainPredicate",
    "EverywhereRetained",
    "SphereCarve",
    "SphereRetain",
    "BoxCarve",
    "BoxRetain",
    "CylinderCarve",
    "CapsuleCarve",
    "HalfSpaceCarve",
    "CarveUnion",
    "TriMesh",
    "TriMeshCarve",
    "icosphere",
    "dragon_blob",
    "ClassroomScene",
]
