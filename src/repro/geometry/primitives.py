"""Analytic subdomain predicates: spheres, boxes, channels, CSG.

Each primitive implements the conservative-exact interval tests required
by :class:`~repro.geometry.predicate.SubdomainPredicate`.  For the
primitives below, the cell tests are *exact* (no over-marking of
boundary cells), which the mesh-size experiments rely on.

Naming convention: ``XxxCarve`` removes the region (C = the shape),
``XxxRetain`` keeps only the region (C = complement of the shape's
interior) — e.g. :class:`SphereCarve` cuts a ball out of the cube (the
flow-past-a-sphere case) while :class:`SphereRetain` keeps a disk/ball
domain (the Fig. 6 convergence case); :class:`BoxRetain` carves
everything outside a subrectangle (the channel cases).
"""

from __future__ import annotations

import numpy as np

from .predicate import RegionLabel, SubdomainPredicate

__all__ = [
    "SphereCarve",
    "SphereRetain",
    "BoxCarve",
    "BoxRetain",
    "CylinderCarve",
    "CapsuleCarve",
    "HalfSpaceCarve",
    "CarveUnion",
]


def _labels(carved: np.ndarray, internal: np.ndarray) -> np.ndarray:
    out = np.full(len(carved), RegionLabel.RETAIN_BOUNDARY, np.uint8)
    out[internal] = RegionLabel.RETAIN_INTERNAL
    out[carved] = RegionLabel.CARVED
    return out


def _closest_in_cell(lo, hi, point):
    """Closest point of each cell [lo,hi] to ``point``; (N, dim)."""
    return np.clip(point[None, :], lo, hi)


def _farthest_in_cell(lo, hi, point):
    """Farthest corner of each cell from ``point``; (N, dim)."""
    return np.where(point[None, :] - lo > hi - point[None, :], lo, hi)


class SphereCarve(SubdomainPredicate):
    """C = closed ball of ``radius`` about ``center`` (object carved out)."""

    def __init__(self, center, radius: float):
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)
        self.dim = len(self.center)
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    def classify_cells(self, lo, hi):
        near = _closest_in_cell(lo, hi, self.center)
        far = _farthest_in_cell(lo, hi, self.center)
        dnear = np.linalg.norm(near - self.center, axis=1)
        dfar = np.linalg.norm(far - self.center, axis=1)
        carved = dfar <= self.radius           # whole closed cell inside ball
        internal = dnear > self.radius         # closed cell misses closed ball
        return _labels(carved, internal)

    def carved_points(self, pts):
        d = np.linalg.norm(np.asarray(pts, float) - self.center, axis=1)
        return d <= self.radius

    def boundary_distance(self, pts):
        d = np.linalg.norm(np.asarray(pts, float) - self.center, axis=1)
        return self.radius - d

    def boundary_projection(self, pts):
        v = np.asarray(pts, float) - self.center
        n = np.linalg.norm(v, axis=1, keepdims=True)
        n = np.where(n == 0, 1.0, n)
        return self.center + v / n * self.radius


class SphereRetain(SubdomainPredicate):
    """C = complement of the open ball: only the disk/ball is retained."""

    def __init__(self, center, radius: float):
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)
        self.dim = len(self.center)

    def classify_cells(self, lo, hi):
        near = _closest_in_cell(lo, hi, self.center)
        far = _farthest_in_cell(lo, hi, self.center)
        dnear = np.linalg.norm(near - self.center, axis=1)
        dfar = np.linalg.norm(far - self.center, axis=1)
        carved = dnear >= self.radius          # closed cell misses open ball
        internal = dfar < self.radius          # closed cell inside open ball
        return _labels(carved, internal)

    def carved_points(self, pts):
        d = np.linalg.norm(np.asarray(pts, float) - self.center, axis=1)
        return d >= self.radius

    def boundary_distance(self, pts):
        d = np.linalg.norm(np.asarray(pts, float) - self.center, axis=1)
        return d - self.radius

    def boundary_projection(self, pts):
        v = np.asarray(pts, float) - self.center
        n = np.linalg.norm(v, axis=1, keepdims=True)
        n = np.where(n == 0, 1.0, n)
        return self.center + v / n * self.radius


class BoxCarve(SubdomainPredicate):
    """C = the closed axis-aligned box [blo, bhi] (solid obstacle)."""

    def __init__(self, blo, bhi):
        self.blo = np.asarray(blo, dtype=np.float64)
        self.bhi = np.asarray(bhi, dtype=np.float64)
        self.dim = len(self.blo)
        if np.any(self.bhi <= self.blo):
            raise ValueError("box must have positive extent on every axis")

    def classify_cells(self, lo, hi):
        # cell ⊆ closed box
        carved = np.all((lo >= self.blo) & (hi <= self.bhi), axis=1)
        # closed cell disjoint from closed box
        internal = np.any((hi < self.blo) | (lo > self.bhi), axis=1)
        return _labels(carved, internal)

    def carved_points(self, pts):
        p = np.asarray(pts, float)
        return np.all((p >= self.blo) & (p <= self.bhi), axis=1)

    def boundary_distance(self, pts):
        p = np.asarray(pts, float)
        q = np.clip(p, self.blo, self.bhi)
        outside = np.linalg.norm(p - q, axis=1)
        inside = np.minimum(p - self.blo, self.bhi - p).min(axis=1)
        return np.where(outside > 0, -outside, inside)

    def boundary_projection(self, pts):
        p = np.asarray(pts, float)
        q = np.clip(p, self.blo, self.bhi)
        out = q.copy()
        ins = np.all(p == q, axis=1)
        if np.any(ins):
            # snap interior points to the nearest face
            pi = p[ins]
            gaps = np.stack([pi - self.blo, self.bhi - pi], axis=2)  # (n,dim,2)
            flat = gaps.reshape(len(pi), -1)
            k = np.argmin(flat, axis=1)
            axis, side = k // 2, k % 2
            snapped = pi.copy()
            rows = np.arange(len(pi))
            snapped[rows, axis] = np.where(side == 0, self.blo[axis], self.bhi[axis])
            out[ins] = snapped
        return out


class BoxRetain(SubdomainPredicate):
    """C = Ω minus the open box: only the subrectangle is retained.

    This is the anisotropic-channel predicate: a ``16×1×1`` channel is a
    retained box inside a ``16³`` cube.  Faces of the retain box listed
    in ``open_axes_lo`` / ``open_axes_hi`` (or faces coinciding with the
    ``domain`` cube when given) are treated as *not* part of ∂C, so that
    channel inlets/outlets at the domain boundary are not marked carved.
    """

    def __init__(self, blo, bhi, domain: "tuple | None" = None):
        self.blo = np.asarray(blo, dtype=np.float64)
        self.bhi = np.asarray(bhi, dtype=np.float64)
        self.dim = len(self.blo)
        # effective comparison bounds: faces flush with the domain cube
        # extend to infinity (they are domain boundary, not ∂C)
        eff_lo = self.blo.copy()
        eff_hi = self.bhi.copy()
        if domain is not None:
            dlo, dhi = (np.asarray(b, float) for b in domain)
            eff_lo[self.blo <= dlo] = -np.inf
            eff_hi[self.bhi >= dhi] = np.inf
        self._eff_lo = eff_lo
        self._eff_hi = eff_hi

    def classify_cells(self, lo, hi):
        # closed cell inside the open effective box -> internal
        internal = np.all((lo > self._eff_lo) & (hi < self._eff_hi), axis=1)
        # closed cell disjoint from the open box -> carved
        carved = np.any((hi <= self._eff_lo) | (lo >= self._eff_hi), axis=1)
        return _labels(carved, internal)

    def carved_points(self, pts):
        p = np.asarray(pts, float)
        return np.any((p <= self._eff_lo) | (p >= self._eff_hi), axis=1)

    def boundary_distance(self, pts):
        # positive in C (outside the open box)
        p = np.asarray(pts, float)
        lo = np.where(np.isinf(self._eff_lo), -1e300, self._eff_lo)
        hi = np.where(np.isinf(self._eff_hi), 1e300, self._eff_hi)
        q = np.clip(p, lo, hi)
        outside = np.linalg.norm(p - q, axis=1)
        inside = np.minimum(p - lo, hi - p).min(axis=1)
        return np.where(outside > 0, outside, -inside)

    def boundary_projection(self, pts):
        box = BoxCarve(
            np.where(np.isinf(self._eff_lo), -1e300, self._eff_lo),
            np.where(np.isinf(self._eff_hi), 1e300, self._eff_hi),
        )
        return box.boundary_projection(pts)


class CylinderCarve(SubdomainPredicate):
    """C = closed finite cylinder along coordinate ``axis``.

    Defined by the circle (``center`` in the cross-section plane,
    ``radius``) extruded over ``span = (a, b)`` along ``axis``.
    """

    def __init__(self, center, radius: float, axis: int, span, dim: int = 3):
        self.dim = dim
        self.axis = int(axis)
        self.span = (float(span[0]), float(span[1]))
        self.radius = float(radius)
        self.cross_axes = [i for i in range(dim) if i != self.axis]
        self.center = np.asarray(center, dtype=np.float64)
        if len(self.center) != len(self.cross_axes):
            raise ValueError("center must be given in the cross-section plane")

    def _cross_dists(self, lo, hi):
        clo, chi = lo[:, self.cross_axes], hi[:, self.cross_axes]
        near = np.clip(self.center[None], clo, chi)
        far = np.where(self.center[None] - clo > chi - self.center[None], clo, chi)
        dnear = np.linalg.norm(near - self.center, axis=1)
        dfar = np.linalg.norm(far - self.center, axis=1)
        return dnear, dfar

    def classify_cells(self, lo, hi):
        dnear, dfar = self._cross_dists(lo, hi)
        a, b = self.span
        ax_in = (lo[:, self.axis] >= a) & (hi[:, self.axis] <= b)
        ax_out = (hi[:, self.axis] < a) | (lo[:, self.axis] > b)
        carved = (dfar <= self.radius) & ax_in
        internal = (dnear > self.radius) | ax_out
        return _labels(carved, internal)

    def carved_points(self, pts):
        p = np.asarray(pts, float)
        d = np.linalg.norm(p[:, self.cross_axes] - self.center, axis=1)
        a, b = self.span
        return (d <= self.radius) & (p[:, self.axis] >= a) & (p[:, self.axis] <= b)

    def boundary_distance(self, pts):
        p = np.asarray(pts, float)
        d = np.linalg.norm(p[:, self.cross_axes] - self.center, axis=1)
        a, b = self.span
        rad_in = self.radius - d
        ax_in = np.minimum(p[:, self.axis] - a, b - p[:, self.axis])
        # signed distance to the closed cylinder (positive inside)
        inside = np.minimum(rad_in, ax_in)
        rad_out = np.maximum(d - self.radius, 0.0)
        ax_out = np.maximum(np.maximum(a - p[:, self.axis], p[:, self.axis] - b), 0.0)
        outside = np.hypot(rad_out, ax_out)
        return np.where((rad_in >= 0) & (ax_in >= 0), inside, -outside)


class CapsuleCarve(SubdomainPredicate):
    """C = closed capsule (segment p0–p1 inflated by ``radius``).

    Used for mannequin limbs/torso in the classroom scene.
    """

    def __init__(self, p0, p1, radius: float):
        self.p0 = np.asarray(p0, dtype=np.float64)
        self.p1 = np.asarray(p1, dtype=np.float64)
        self.radius = float(radius)
        self.dim = len(self.p0)
        self._d = self.p1 - self.p0
        self._len2 = float(np.dot(self._d, self._d))

    def _seg_dist(self, pts):
        p = np.asarray(pts, float)
        if self._len2 == 0:
            return np.linalg.norm(p - self.p0, axis=1)
        t = np.clip((p - self.p0) @ self._d / self._len2, 0.0, 1.0)
        proj = self.p0 + t[:, None] * self._d
        return np.linalg.norm(p - proj, axis=1)

    def classify_cells(self, lo, hi):
        # conservative via cell circumsphere around the centre
        c = 0.5 * (lo + hi)
        rad = 0.5 * np.linalg.norm(hi - lo, axis=1)
        d = self._seg_dist(c)
        carved = d + rad <= self.radius
        internal = d - rad > self.radius
        return _labels(carved, internal)

    def carved_points(self, pts):
        return self._seg_dist(pts) <= self.radius

    def boundary_distance(self, pts):
        return self.radius - self._seg_dist(pts)


class HalfSpaceCarve(SubdomainPredicate):
    """C = closed half-space  n·x ≥ c."""

    def __init__(self, normal, offset: float):
        self.normal = np.asarray(normal, dtype=np.float64)
        self.normal /= np.linalg.norm(self.normal)
        self.offset = float(offset)
        self.dim = len(self.normal)

    def classify_cells(self, lo, hi):
        corners_min = np.where(self.normal > 0, lo, hi) @ self.normal
        corners_max = np.where(self.normal > 0, hi, lo) @ self.normal
        carved = corners_min >= self.offset
        internal = corners_max < self.offset
        return _labels(carved, internal)

    def carved_points(self, pts):
        return np.asarray(pts, float) @ self.normal >= self.offset

    def boundary_distance(self, pts):
        return np.asarray(pts, float) @ self.normal - self.offset

    def boundary_projection(self, pts):
        p = np.asarray(pts, float)
        d = p @ self.normal - self.offset
        return p - d[:, None] * self.normal[None]


class CarveUnion(SubdomainPredicate):
    """C = union of the carved sets of several predicates.

    The natural combinator for scenes with multiple objects (classroom:
    tables ∪ monitors ∪ mannequins, plus a BoxRetain for the room).
    """

    def __init__(self, predicates):
        self.parts = list(predicates)
        if not self.parts:
            raise ValueError("CarveUnion needs at least one predicate")
        self.dim = self.parts[0].dim
        if any(p.dim != self.dim for p in self.parts):
            raise ValueError("all predicates must share a dimension")

    def classify_cells(self, lo, hi):
        carved = np.zeros(len(lo), bool)
        internal = np.ones(len(lo), bool)
        for p in self.parts:
            lab = p.classify_cells(lo, hi)
            carved |= lab == RegionLabel.CARVED
            internal &= lab == RegionLabel.RETAIN_INTERNAL
        return _labels(carved, internal)

    def carved_points(self, pts):
        out = np.zeros(len(pts), bool)
        for p in self.parts:
            out |= p.carved_points(pts)
        return out

    def boundary_distance(self, pts):
        # signed distance to the union: max of member signed distances
        return np.max([p.boundary_distance(pts) for p in self.parts], axis=0)

    def boundary_projection(self, pts):
        # project onto the member whose boundary is closest
        dists = np.stack([p.boundary_distance(pts) for p in self.parts])
        best = np.argmax(dists, axis=0)
        projs = np.stack([p.boundary_projection(pts) for p in self.parts])
        return projs[best, np.arange(len(pts))]
