"""Watertight triangle-mesh geometry: ray casting and signed distance.

This is the in-repo substitute for the ``trimesh`` library + Stanford
dragon STL the paper uses (§4.1, Appendix B.1): closed orientable
2-manifold triangle meshes with

* a vectorised point-in-mesh test (ray-casting parity with a grid
  prefilter),
* closest-point signed distance, Eq. (3) of the paper:
  ``d(p, M) = inf ||p − x||·sign``, positive **inside**,
* procedural meshes — an icosphere and a "dragon-like" star-shaped
  blob with multi-frequency surface detail (the Stanford dragon is
  used by the paper only as *a complex watertight surface*; the blob
  exercises identical code paths without the asset).

Plus :class:`TriMeshCarve`, the subdomain predicate carving the mesh
interior from the domain.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .predicate import RegionLabel, SubdomainPredicate

__all__ = ["TriMesh", "TriMeshCarve", "icosphere", "dragon_blob"]


class TriMesh:
    """A closed, orientable triangle surface mesh."""

    def __init__(self, vertices: np.ndarray, faces: np.ndarray):
        self.vertices = np.ascontiguousarray(vertices, np.float64)
        self.faces = np.ascontiguousarray(faces, np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must be (nv, 3)")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise ValueError("faces must be (nf, 3)")
        self.tri = self.vertices[self.faces]  # (nf, 3, 3)
        self._centroids = self.tri.mean(axis=1)
        self._radii = np.linalg.norm(
            self.tri - self._centroids[:, None, :], axis=2
        ).max(axis=1)
        self._tree = cKDTree(self._centroids)
        self._max_radius = float(self._radii.max())
        # yz-grid prefilter for +x ray casting
        self._grid_n = 32
        ymin, zmin = self.tri[:, :, 1].min(), self.tri[:, :, 2].min()
        ymax, zmax = self.tri[:, :, 1].max(), self.tri[:, :, 2].max()
        pad = 1e-9 + 1e-9 * max(ymax - ymin, zmax - zmin)
        self._yz0 = np.array([ymin - pad, zmin - pad])
        self._yzh = np.array(
            [(ymax - ymin + 2 * pad) / self._grid_n, (zmax - zmin + 2 * pad) / self._grid_n]
        )
        cell_lo = np.floor((self.tri[:, :, 1:].min(axis=1) - self._yz0) / self._yzh)
        cell_hi = np.floor((self.tri[:, :, 1:].max(axis=1) - self._yz0) / self._yzh)
        self._bins: list[list[np.ndarray]] = [
            [None] * self._grid_n for _ in range(self._grid_n)
        ]
        buckets: dict[tuple[int, int], list[int]] = {}
        for f in range(len(self.faces)):
            for gy in range(int(cell_lo[f, 0]), int(cell_hi[f, 0]) + 1):
                for gz in range(int(cell_lo[f, 1]), int(cell_hi[f, 1]) + 1):
                    if 0 <= gy < self._grid_n and 0 <= gz < self._grid_n:
                        buckets.setdefault((gy, gz), []).append(f)
        for (gy, gz), lst in buckets.items():
            self._bins[gy][gz] = np.asarray(lst, np.int64)

    # -- geometry queries -----------------------------------------------

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def area(self) -> float:
        e1 = self.tri[:, 1] - self.tri[:, 0]
        e2 = self.tri[:, 2] - self.tri[:, 0]
        return float(0.5 * np.linalg.norm(np.cross(e1, e2), axis=1).sum())

    def volume(self) -> float:
        """Enclosed volume via the divergence theorem (orientation-aware)."""
        v0, v1, v2 = self.tri[:, 0], self.tri[:, 1], self.tri[:, 2]
        return float(np.einsum("ij,ij->i", v0, np.cross(v1, v2)).sum() / 6.0)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Ray-casting parity in/out test (+x rays, yz-grid prefilter).

        Query points are jittered by an irrational sub-epsilon offset in
        the ray-transverse plane so rays never pass exactly through
        mesh vertices or edges (procedural meshes put many vertices on
        rational planes, where exact edge hits double-count and flip
        the parity).
        """
        pts = np.atleast_2d(np.asarray(points, np.float64)).copy()
        span = float(np.max(self.vertices.max(axis=0) - self.vertices.min(axis=0)))
        pts[:, 1] += 7.3e-8 * span * np.sqrt(2.0)
        pts[:, 2] += 5.1e-8 * span * np.sqrt(3.0)
        n = len(pts)
        inside = np.zeros(n, bool)
        cell = np.floor((pts[:, 1:] - self._yz0) / self._yzh).astype(np.int64)
        ok = (
            (cell[:, 0] >= 0)
            & (cell[:, 0] < self._grid_n)
            & (cell[:, 1] >= 0)
            & (cell[:, 1] < self._grid_n)
        )
        # group points by grid cell to share the candidate face list
        key = cell[:, 0] * self._grid_n + cell[:, 1]
        key[~ok] = -1
        order = np.argsort(key, kind="stable")
        sk = key[order]
        starts = np.flatnonzero(np.concatenate([[True], sk[1:] != sk[:-1]]))
        starts = np.append(starts, n)
        for si in range(len(starts) - 1):
            a, b = starts[si], starts[si + 1]
            k = sk[a]
            if k < 0:
                continue
            faces = self._bins[k // self._grid_n][k % self._grid_n]
            if faces is None:
                continue
            idx = order[a:b]
            inside[idx] = self._parity(pts[idx], faces)
        return inside

    def _parity(self, pts: np.ndarray, face_idx: np.ndarray) -> np.ndarray:
        """Count +x ray crossings against the candidate faces."""
        tri = self.tri[face_idx]  # (m, 3, 3)
        v0, v1, v2 = tri[:, 0], tri[:, 1], tri[:, 2]
        # Möller–Trumbore specialised for direction (1, 0, 0)
        e1 = v1 - v0
        e2 = v2 - v0
        # h = dir x e2 = (0, -e2z, e2y)
        hy, hz = -e2[:, 2], e2[:, 1]
        a = e1[:, 1] * hy + e1[:, 2] * hz  # e1 · h
        crossings = np.zeros(len(pts), np.int64)
        good = np.abs(a) > 1e-14
        if not good.any():
            return np.zeros(len(pts), bool)
        v0g, e1g, e2g = v0[good], e1[good], e2[good]
        hyg, hzg, ag = hy[good], hz[good], a[good]
        inv = 1.0 / ag
        for i, p in enumerate(pts):
            s = p[None, :] - v0g
            u = (s[:, 1] * hyg + s[:, 2] * hzg) * inv
            q = np.cross(s, e1g)
            v = q[:, 0] * inv  # dir · q with dir=(1,0,0)
            t = (
                e2g[:, 0] * q[:, 0] + e2g[:, 1] * q[:, 1] + e2g[:, 2] * q[:, 2]
            ) * inv
            hit = (u >= 0) & (v >= 0) & (u + v <= 1) & (t > 1e-12)
            crossings[i] = int(hit.sum())
        return crossings % 2 == 1

    def closest_points(self, points: np.ndarray, k: int = 32):
        """Closest surface point per query point.

        Uses a k-NN centroid prefilter (validated against the true
        lower bound ``centroid distance − face radius``); falls back to
        a wider query when the bound is not met.
        """
        pts = np.atleast_2d(np.asarray(points, np.float64))
        nf = len(self.faces)
        k = min(k, nf)
        d_c, idx = self._tree.query(pts, k=k)
        if k == 1:
            d_c, idx = d_c[:, None], idx[:, None]
        best_pt, best_d = self._closest_on_faces(pts, idx)
        # prefilter validity: faces beyond the k-th centroid have
        # centroid distance >= d_c[:, -1], hence surface distance
        # >= d_c[:, -1] - max_radius; widen (geometrically) if that
        # bound does not already exclude them
        while k < nf:
            unsafe = np.flatnonzero(best_d > d_c[:, -1] - self._max_radius)
            if len(unsafe) == 0:
                break
            k = min(4 * k, nf)
            d_c2, idx2 = self._tree.query(pts[unsafe], k=k)
            bpt, bd = self._closest_on_faces(pts[unsafe], idx2)
            best_pt[unsafe], best_d[unsafe] = bpt, bd
            d_c = np.broadcast_to(
                best_d[:, None] + 2 * self._max_radius, (len(pts), 1)
            ).copy()
            d_c[unsafe] = d_c2[:, -1:]
        return best_pt, best_d

    def _closest_on_faces(self, pts: np.ndarray, face_idx: np.ndarray):
        """Exact closest point among given faces per point (vectorised)."""
        tri = self.tri[face_idx]  # (n, k, 3, 3)
        p = pts[:, None, :]
        a, b, c = tri[:, :, 0], tri[:, :, 1], tri[:, :, 2]
        ab, ac, ap = b - a, c - a, p - a
        d1 = np.einsum("nkd,nkd->nk", ab, ap)
        d2 = np.einsum("nkd,nkd->nk", ac, ap)
        bp = p - b
        d3 = np.einsum("nkd,nkd->nk", ab, bp)
        d4 = np.einsum("nkd,nkd->nk", ac, bp)
        cp = p - c
        d5 = np.einsum("nkd,nkd->nk", ab, cp)
        d6 = np.einsum("nkd,nkd->nk", ac, cp)
        va = d3 * d6 - d5 * d4
        vb = d5 * d2 - d1 * d6
        vc = d1 * d4 - d3 * d2
        denom = va + vb + vc
        denom = np.where(np.abs(denom) < 1e-300, 1.0, denom)
        v = vb / denom
        w = vc / denom
        # interior projection
        cand = a + v[..., None] * ab + w[..., None] * ac
        # vertex regions
        cand = np.where(((d1 <= 0) & (d2 <= 0))[..., None], a, cand)
        cand = np.where(((d3 >= 0) & (d4 <= d3))[..., None], b, cand)
        cand = np.where(((d6 >= 0) & (d5 <= d6))[..., None], c, cand)
        # edge regions
        t_ab = np.clip(d1 / np.where(d1 - d3 == 0, 1, d1 - d3), 0, 1)
        on_ab = ((vc <= 0) & (d1 >= 0) & (d3 <= 0))
        cand = np.where(on_ab[..., None], a + t_ab[..., None] * ab, cand)
        t_ac = np.clip(d2 / np.where(d2 - d6 == 0, 1, d2 - d6), 0, 1)
        on_ac = ((vb <= 0) & (d2 >= 0) & (d6 <= 0))
        cand = np.where(on_ac[..., None], a + t_ac[..., None] * ac, cand)
        num = d4 - d3
        den = (d4 - d3) + (d5 - d6)
        t_bc = np.clip(num / np.where(den == 0, 1, den), 0, 1)
        on_bc = ((va <= 0) & (d4 - d3 >= 0) & (d5 - d6 >= 0))
        cand = np.where(on_bc[..., None], b + t_bc[..., None] * (c - b), cand)
        d = np.linalg.norm(cand - p, axis=2)
        j = np.argmin(d, axis=1)
        rows = np.arange(len(pts))
        return cand[rows, j], d[rows, j]

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        """Eq. (3): distance to the surface, positive inside."""
        _, d = self.closest_points(points)
        sign = np.where(self.contains(points), 1.0, -1.0)
        return sign * d


class TriMeshCarve(SubdomainPredicate):
    """Carve the interior of a watertight triangle mesh (C = inside).

    Cell classification is conservative via the signed distance at the
    cell centre against the cell circumradius — cells near the surface
    are marked RETAIN_BOUNDARY even if not strictly intercepted, which
    is allowed by the abstraction ("the intersection test may be as
    simple or complex as needed").
    """

    def __init__(self, mesh: TriMesh):
        self.mesh = mesh
        self.dim = 3

    def classify_cells(self, lo, hi):
        ctr = 0.5 * (lo + hi)
        rad = 0.5 * np.linalg.norm(hi - lo, axis=1)
        out = np.full(len(lo), RegionLabel.RETAIN_BOUNDARY, np.uint8)
        # cheap two-sided bound via the nearest face centroid: cells
        # provably farther from the surface than their circumradius are
        # decided by the in/out parity test alone
        d1, _ = self.mesh._tree.query(ctr, k=1)
        far = np.flatnonzero(d1 - self.mesh._max_radius > rad)
        if len(far):
            inside = self.mesh.contains(ctr[far])
            out[far[inside]] = RegionLabel.CARVED
            out[far[~inside]] = RegionLabel.RETAIN_INTERNAL
        near = np.flatnonzero(d1 - self.mesh._max_radius <= rad)
        if len(near):
            sd = self.mesh.signed_distance(ctr[near])
            out[near[sd - rad[near] > 0]] = RegionLabel.CARVED
            out[near[-sd - rad[near] > 0]] = RegionLabel.RETAIN_INTERNAL
        return out

    def carved_points(self, pts):
        return self.mesh.signed_distance(np.asarray(pts, float)) >= 0

    def boundary_distance(self, pts):
        return self.mesh.signed_distance(np.asarray(pts, float))

    def boundary_projection(self, pts):
        cp, _ = self.mesh.closest_points(np.asarray(pts, float))
        return cp


# -- procedural meshes ---------------------------------------------------


def icosphere(center=(0.0, 0.0, 0.0), radius: float = 1.0, subdivisions: int = 3) -> TriMesh:
    """Geodesic sphere by recursive icosahedron subdivision."""
    t = (1.0 + np.sqrt(5.0)) / 2.0
    verts = np.array(
        [
            [-1, t, 0], [1, t, 0], [-1, -t, 0], [1, -t, 0],
            [0, -1, t], [0, 1, t], [0, -1, -t], [0, 1, -t],
            [t, 0, -1], [t, 0, 1], [-t, 0, -1], [-t, 0, 1],
        ],
        float,
    )
    verts /= np.linalg.norm(verts, axis=1, keepdims=True)
    faces = np.array(
        [
            [0, 11, 5], [0, 5, 1], [0, 1, 7], [0, 7, 10], [0, 10, 11],
            [1, 5, 9], [5, 11, 4], [11, 10, 2], [10, 7, 6], [7, 1, 8],
            [3, 9, 4], [3, 4, 2], [3, 2, 6], [3, 6, 8], [3, 8, 9],
            [4, 9, 5], [2, 4, 11], [6, 2, 10], [8, 6, 7], [9, 8, 1],
        ],
        np.int64,
    )
    for _ in range(subdivisions):
        cache: dict[tuple[int, int], int] = {}
        vlist = list(verts)

        def midpoint(i, j):
            key = (min(i, j), max(i, j))
            if key not in cache:
                m = vlist[i] + vlist[j]
                m = m / np.linalg.norm(m)
                cache[key] = len(vlist)
                vlist.append(m)
            return cache[key]

        new_faces = []
        for f in faces:
            a, b, c = (int(x) for x in f)
            ab, bc, ca = midpoint(a, b), midpoint(b, c), midpoint(c, a)
            new_faces += [[a, ab, ca], [b, bc, ab], [c, ca, bc], [ab, bc, ca]]
        verts = np.asarray(vlist)
        faces = np.asarray(new_faces, np.int64)
    return TriMesh(np.asarray(center) + radius * verts, faces)


def dragon_blob(
    center=(0.0, 0.0, 0.0),
    scale: float = 1.0,
    subdivisions: int = 4,
    seed: int = 7,
) -> TriMesh:
    """A star-shaped blob with multi-frequency surface detail.

    Substitutes the Stanford dragon: a watertight surface with a large
    surface-area-to-volume ratio and fine geometric features at several
    scales, driving the same fine boundary refinement.
    """
    base = icosphere((0, 0, 0), 1.0, subdivisions)
    v = base.vertices
    theta = np.arccos(np.clip(v[:, 2], -1, 1))
    phi = np.arctan2(v[:, 1], v[:, 0])
    rng = np.random.default_rng(seed)
    r = np.ones(len(v))
    for ell, amp in [(2, 0.18), (3, 0.14), (5, 0.09), (8, 0.05), (13, 0.025)]:
        a, b, c = rng.uniform(0, 2 * np.pi, 3)
        r += amp * np.sin(ell * theta + a) * np.cos(ell * phi + b)
        r += 0.5 * amp * np.cos((ell + 1) * theta + c) * np.sin(ell * phi + a)
    r = np.clip(r, 0.55, 1.45)
    return TriMesh(np.asarray(center) + scale * (v * r[:, None]), base.faces)
