"""The §5 classroom scene: complex furniture carved via CSG.

A room of footprint 4.83 × 3.34 and unit height (the paper's
non-dimensional domain) containing rows of desks, seated mannequins
(capsule torso + sphere head), optional monitors, and a standing
instructor.  Ceiling velocity inlets and pressure outlets drive the
ventilation flow (Re = 10⁵ on room height in the paper; the
reproduction solves laminar-scale surrogates, see DESIGN.md).

Everything is an In–Out test: the octree carver only ever queries the
CSG predicate, which is the paper's central interface claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .predicate import SubdomainPredicate
from .primitives import BoxCarve, BoxRetain, CapsuleCarve, CarveUnion, SphereCarve

__all__ = ["ClassroomScene"]

ROOM_X, ROOM_Y, ROOM_Z = 4.83, 3.34, 1.0


@dataclass
class ClassroomScene:
    """Parametric classroom: geometry, BCs and source locations."""

    n_rows: int = 2
    n_cols: int = 3
    with_monitors: bool = True
    infected: int = 0  # mannequin index (row-major) who coughs

    desk_h: float = 0.32
    desk_size: tuple = (0.55, 0.35, 0.03)

    def __post_init__(self):
        self._layout()

    def _layout(self) -> None:
        xs = np.linspace(0.9, ROOM_X - 1.2, self.n_cols)
        ys = np.linspace(0.7, ROOM_Y - 0.7, self.n_rows)
        self.seats = [(x, y) for y in ys for x in xs]
        parts: list[SubdomainPredicate] = []
        dx, dy, dz = self.desk_size
        for x, y in self.seats:
            # desk top (a thin slab) with the sitter behind it (+x side)
            parts.append(
                BoxCarve(
                    [x - dx / 2, y - dy / 2, self.desk_h],
                    [x + dx / 2, y + dy / 2, self.desk_h + dz],
                )
            )
            if self.with_monitors:
                # thick enough to be carved (not just intercepted) at
                # the achievable boundary refinement of the examples
                parts.append(
                    BoxCarve(
                        [x - 0.16, y - dy / 2, self.desk_h + dz],
                        [x + 0.16, y - dy / 2 + 0.10, self.desk_h + dz + 0.30],
                    )
                )
            # seated mannequin: torso capsule + head sphere
            px, py = x, y + dy / 2 + 0.12
            parts.append(CapsuleCarve([px, py, 0.12], [px, py, 0.42], 0.09))
            parts.append(SphereCarve([px, py, 0.50], 0.07))
        # standing instructor near the front wall
        ix, iy = ROOM_X - 0.5, ROOM_Y / 2
        parts.append(CapsuleCarve([ix, iy, 0.05], [ix, iy, 0.62], 0.10))
        parts.append(SphereCarve([ix, iy, 0.72], 0.08))
        self.instructor = (ix, iy)
        room = BoxRetain(
            [0, 0, 0],
            [ROOM_X, ROOM_Y, ROOM_Z],
            domain=([0, 0, 0], [ROOM_X, ROOM_X, ROOM_X]),
        )
        self.room = room
        self.predicate = CarveUnion([room] + parts)
        self.objects = CarveUnion(parts)  # without the room shell
        # ceiling ventilation: inlets along the centreline, outlets near
        # the side walls (x, y, radius)
        self.inlets = [
            (ROOM_X * fx, ROOM_Y / 2, 0.22) for fx in (0.25, 0.5, 0.75)
        ]
        self.outlets = [
            (ROOM_X * fx, fy, 0.20)
            for fx in (0.2, 0.8)
            for fy in (0.35, ROOM_Y - 0.35)
        ]

    def domain(self):
        from ..core.domain import Domain  # deferred: avoids import cycle

        return Domain(self.predicate, scale=ROOM_X)

    # -- boundary conditions ---------------------------------------------

    def _in_patch(self, pts: np.ndarray, patches) -> np.ndarray:
        hit = np.zeros(len(pts), bool)
        for (cx, cy, r) in patches:
            hit |= (pts[:, 0] - cx) ** 2 + (pts[:, 1] - cy) ** 2 <= r * r
        return hit

    def velocity_bc(self, mesh, inlet_speed: float = 1.0):
        """Strong velocity data: ceiling inlets blow downwards, all
        solid surfaces (walls, floor, furniture, mannequins) no-slip;
        ceiling outlet patches are left free (pressure outlets)."""
        pts = mesh.node_coords()
        n = len(pts)
        mask = np.zeros((n, 3), bool)
        vals = np.zeros((n, 3))
        # the ceiling plane z = ROOM_Z is generally not grid-aligned, so
        # the ceiling surface of the retained mesh is the voxelated layer
        # of carved nodes at z >= ROOM_Z
        top = mesh.nodes.carved_node & (pts[:, 2] >= ROOM_Z - 1e-9)
        inlet = top & self._in_patch(pts, self.inlets)
        outlet = top & self._in_patch(pts, self.outlets)
        solid = mesh.nodes.carved_node | mesh.nodes.domain_boundary
        mask[solid] = True
        vals[solid] = 0.0
        mask[inlet] = True
        vals[inlet] = [0.0, 0.0, -inlet_speed]
        # outlets: natural BC on velocity, pressure pinned
        mask[outlet] = False
        return mask, vals, outlet

    def cough_source(self, sigma: float = 0.12, rate: float = 1.0):
        """Gaussian viral-load source at the infected person's head."""
        x0, y0 = self.seats[self.infected]
        dy = self.desk_size[1]
        c = np.array([x0, y0 + dy / 2 + 0.12, 0.55])

        def source(pts):
            d2 = ((pts - c) ** 2).sum(axis=1)
            return rate * np.exp(-d2 / (2 * sigma**2))

        return source

    def breathing_zones(self) -> list[np.ndarray]:
        """Sampling spheres (centre, radius) around every head — the
        exposure metric locations."""
        dy = self.desk_size[1]
        return [
            np.array([x, y + dy / 2 + 0.12, 0.50, 0.18]) for (x, y) in self.seats
        ]
