"""The subdomain abstraction of §3.1.

The computational domain is a cube Ω = C ∪ C′ split into a *closed*
carved set C (the region removed from the mesh — e.g. the inside of an
immersed object, or everything outside a channel) and its *open*
complement C′ (the retained region where the PDE is solved).

Applications specify the subdomain through a function ``F(cell)`` over
filled cubes of zero or positive side length:

* ``CARVED``          — closure(cell) ⊆ C        (prune the subtree)
* ``RETAIN_INTERNAL`` — closure(cell) ⊆ C′       (never refine for geometry)
* ``RETAIN_BOUNDARY`` — otherwise                (intercepted by ∂C)

Points (zero-size cells) can never be intercepted: a point is either in
C ("carved" — by the closed-C convention this includes points exactly on
∂C, which become *subdomain boundary nodes*) or in C′.

Implementations must be conservative-exact: a cell reported CARVED or
RETAIN_INTERNAL must truly be so; a cell whose status is uncertain must
be reported RETAIN_BOUNDARY.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

__all__ = ["RegionLabel", "SubdomainPredicate", "EverywhereRetained"]


class RegionLabel(IntEnum):
    """Classification of a filled cube region (octant or point)."""

    CARVED = 0
    RETAIN_INTERNAL = 1
    RETAIN_BOUNDARY = 2


class SubdomainPredicate:
    """Base class for subdomain specifications (the function F of §3.1).

    Subclasses implement the two vectorised queries below.  Physical
    coordinates are used throughout (the mesh layer converts anchor
    units to physical units before calling).
    """

    #: spatial dimension the predicate is defined for
    dim: int

    def classify_cells(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Classify axis-aligned cells given ``(N, dim)`` corner arrays.

        Returns an ``(N,)`` uint8 array of :class:`RegionLabel` values.
        """
        raise NotImplementedError

    def carved_points(self, pts: np.ndarray) -> np.ndarray:
        """Boolean ``(N,)``: is each point inside the closed carved set C?

        Points exactly on ∂C return True (closed-C convention); such
        points on retained elements are the subdomain boundary nodes.
        """
        raise NotImplementedError

    def boundary_distance(self, pts: np.ndarray) -> np.ndarray:
        """Signed distance from points to ∂C (positive inside C).

        Optional — needed by the Shifted Boundary Method (§4.3) and the
        signed-distance study (§4.1).  Default raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide boundary distances"
        )

    def boundary_projection(self, pts: np.ndarray) -> np.ndarray:
        """Closest point on ∂C for each input point (for SBM's d vector)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide boundary projections"
        )


class EverywhereRetained(SubdomainPredicate):
    """The trivial predicate: nothing carved (complete octree)."""

    def __init__(self, dim: int):
        self.dim = dim

    def classify_cells(self, lo, hi):
        return np.full(len(lo), RegionLabel.RETAIN_INTERNAL, np.uint8)

    def carved_points(self, pts):
        return np.zeros(len(pts), bool)
