"""The `IncompleteMesh` facade: construction → balance → nodes in one call.

This is the main public entry point of the library::

    from repro import build_mesh, Domain
    from repro.geometry import SphereCarve

    domain = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    mesh = build_mesh(domain, base_level=3, boundary_level=6, p=1)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.predicate import RegionLabel
from ..obs import set_gauge, span
from .balance import balance_2to1, is_balanced
from .construct import construct_adaptive, construct_uniform
from .domain import Domain
from .nodes import MeshNodes, build_nodes
from .octant import OctantSet
from .sfc import get_curve

__all__ = ["IncompleteMesh", "build_mesh", "build_uniform_mesh", "mesh_from_leaves"]


@dataclass
class IncompleteMesh:
    """An adaptively refined, 2:1-balanced incomplete-octree FEM grid."""

    domain: Domain
    leaves: OctantSet
    labels: np.ndarray  # RegionLabel per leaf
    nodes: MeshNodes
    p: int
    curve: str = "morton"

    @property
    def dim(self) -> int:
        return self.domain.dim

    @property
    def n_elem(self) -> int:
        return len(self.leaves)

    @property
    def n_nodes(self) -> int:
        return self.nodes.n_glob

    @property
    def npe(self) -> int:
        return self.nodes.npe

    @property
    def boundary_elements(self) -> np.ndarray:
        """Indices of elements intercepted by the subdomain boundary."""
        return np.flatnonzero(self.labels == RegionLabel.RETAIN_BOUNDARY)

    def element_sizes(self) -> np.ndarray:
        """Physical side length of every (isotropic) element."""
        return self.leaves.sizes.astype(np.float64) * self.domain.h_unit

    def element_centers(self) -> np.ndarray:
        return self.domain.octant_centers(self.leaves)

    def node_coords(self) -> np.ndarray:
        """Physical coordinates of the global nodes."""
        return self.nodes.physical_coords()

    @property
    def dirichlet_mask(self) -> np.ndarray:
        """Nodes where Dirichlet data is imposed by default: the carved
        (subdomain-boundary) nodes plus the root-cube boundary nodes
        that are retained."""
        return self.nodes.carved_node | self.nodes.domain_boundary

    def operator_context(self):
        """The mesh's cached operator plan (see :mod:`repro.core.plan`)."""
        from .plan import operator_context

        return operator_context(self)

    def summary(self) -> str:
        lv = self.leaves.levels
        return (
            f"IncompleteMesh(dim={self.dim}, p={self.p}, "
            f"elements={self.n_elem}, nodes={self.n_nodes}, "
            f"levels={int(lv.min())}..{int(lv.max())}, "
            f"hanging_slots={self.nodes.n_hanging_slots}, "
            f"boundary_elems={len(self.boundary_elements)})"
        )


def mesh_from_leaves(
    domain: Domain,
    leaves: OctantSet,
    p: int = 1,
    curve: str = "morton",
    balance: bool = True,
    check: bool = False,
) -> IncompleteMesh:
    """Wrap an existing leaf set (balancing it first unless told not to)."""
    if balance:
        leaves = balance_2to1(domain, leaves, curve)
    if check and not is_balanced(leaves, curve):
        raise RuntimeError("leaf set is not 2:1 balanced")
    labels = domain.classify_octants(leaves)
    nodes = build_nodes(domain, leaves, p, curve)
    name = get_curve(curve).name
    mesh = IncompleteMesh(domain, leaves, labels, nodes, p, name)
    set_gauge("mesh.n_elem", mesh.n_elem)
    set_gauge("mesh.n_nodes", mesh.n_nodes)
    return mesh


def build_mesh(
    domain: Domain,
    base_level: int,
    boundary_level: int | None = None,
    p: int = 1,
    curve: str = "morton",
    extra_refine=None,
    balance: bool = True,
) -> IncompleteMesh:
    """Construct a boundary-adapted mesh for ``domain``.

    Retained regions refine to ``base_level``; octants intercepting the
    carved boundary refine to ``boundary_level`` (default: base).
    """
    if boundary_level is None:
        boundary_level = base_level
    with span("build_mesh") as sp:
        leaves = construct_adaptive(
            domain, base_level, boundary_level, curve, extra_refine=extra_refine
        )
        mesh = mesh_from_leaves(domain, leaves, p, curve, balance=balance)
        sp.add("elements", mesh.n_elem)
        sp.add("nodes", mesh.n_nodes)
    return mesh


def build_uniform_mesh(
    domain: Domain, level: int, p: int = 1, curve: str = "morton"
) -> IncompleteMesh:
    """Uniform-level mesh covering the subdomain (Algorithm 1)."""
    leaves = construct_uniform(domain, level, curve)
    return mesh_from_leaves(domain, leaves, p, curve, balance=False)
