"""2:1 balancing of incomplete octrees (Algorithms 4 and 5).

Bottom-up local block balancing in the style of Sundar et al.: seed
octants are processed finest level first; for every seed the neighbours
of its *parent* are added as next-coarser seeds.  Crucially (per §3.3)
carved-region octants generated this way are **not** discarded — two
leaves of ≥4:1 size ratio could otherwise meet across a carved region.
The final constrained construction (Algorithm 2) then rebuilds a linear
octree that is no coarser than any seed, which enforces the 2:1
constraint over all shared boundaries (faces, edges and corners).
"""

from __future__ import annotations

import numpy as np

from ..obs import span
from .domain import Domain
from .construct import construct_constrained
from .octant import OctantSet, neighbors, parent
from .sfc import SFCOracle, get_curve
from .treesort import block_ends, remove_duplicates

__all__ = [
    "bottom_up_constrain_neighbors",
    "balance_2to1",
    "find_balance_violations",
    "is_balanced",
]


def bottom_up_constrain_neighbors(seeds: OctantSet) -> OctantSet:
    """Algorithm 5: propagate balance constraints coarse-ward.

    Returns the union of the input seeds and all generated auxiliary
    seeds (duplicates removed).  No subdomain predicate is applied.
    """
    dim = seeds.dim
    if len(seeds) == 0:
        return seeds
    levels = seeds.levels.astype(np.int64)
    by_level: dict[int, list[OctantSet]] = {}
    for lv in np.unique(levels):
        by_level[int(lv)] = [seeds[np.flatnonzero(levels == lv)]]
    finest = int(levels.max())
    for lv in range(finest, 0, -1):
        if lv not in by_level:
            continue
        tier = remove_duplicates(OctantSet.concatenate(by_level[lv]))
        by_level[lv] = [tier]
        nbrs = neighbors(parent(tier))  # level lv-1, clipped to the domain
        if len(nbrs):
            by_level.setdefault(lv - 1, []).append(nbrs)
    parts = [remove_duplicates(OctantSet.concatenate(v)) for v in by_level.values()]
    return remove_duplicates(OctantSet.concatenate(parts))


def balance_2to1(
    domain: Domain, seeds: OctantSet, curve: "str | SFCOracle" = "morton"
) -> OctantSet:
    """Algorithm 4: 2:1-balanced linear octree covering the subdomain.

    ``seeds`` is typically the unbalanced leaf set from construction.
    """
    with span("balance") as sp:
        with span("balance.constrain"):
            aux = bottom_up_constrain_neighbors(seeds)
        out = construct_constrained(domain, aux, curve)
        sp.add("seeds", len(seeds))
        sp.add("aux_seeds", len(aux))
        sp.add("leaves", len(out))
    return out


def find_balance_violations(
    leaves: OctantSet, curve: "str | SFCOracle" = "morton"
) -> np.ndarray:
    """Indices of leaves with a neighbour coarser by 2+ levels.

    ``leaves`` must be an SFC-sorted linear octree (as produced by the
    construction routines).  For every leaf we form its same-level
    neighbour regions and look up the leaf containing each region's
    anchor; if that containing leaf is coarser by more than one level,
    the pair violates 2:1 balance.
    """
    oracle = get_curve(curve)
    dim = leaves.dim
    n = len(leaves)
    if n == 0:
        return np.zeros(0, np.int64)
    keys = oracle.keys(leaves)
    ends = block_ends(keys, leaves.levels, dim)
    nbrs = neighbors(leaves)
    # neighbors() drops out-of-domain candidates; rebuild source indices
    counts = _neighbor_counts(leaves)
    src = np.repeat(np.arange(n), counts)
    nkeys = oracle.keys(nbrs)
    pos = np.searchsorted(keys, nkeys, side="right") - 1
    valid = pos >= 0
    pos_c = np.clip(pos, 0, n - 1)
    containing = valid & (nkeys >= keys[pos_c]) & (nkeys < ends[pos_c])
    too_coarse = containing & (
        leaves.levels[pos_c].astype(np.int64)
        < nbrs.levels.astype(np.int64) - 1
    )
    return np.unique(src[too_coarse])


def is_balanced(leaves: OctantSet, curve: "str | SFCOracle" = "morton") -> bool:
    """True if the linear octree satisfies the 2:1 constraint."""
    return len(find_balance_violations(leaves, curve)) == 0


def _neighbor_counts(oset: OctantSet) -> np.ndarray:
    """How many in-domain same-level neighbours each octant has."""
    from .octant import _neighbor_offsets, max_level

    dim = oset.dim
    m = max_level(dim)
    offs = _neighbor_offsets(dim)
    sizes = oset.sizes.astype(np.int64)
    cand = (
        oset.anchors.astype(np.int64)[:, None, :]
        + offs[None, :, :] * sizes[:, None, None]
    )
    extent = np.int64(1) << m
    ok = np.all((cand >= 0) & (cand < extent), axis=2)
    return ok.sum(axis=1)
