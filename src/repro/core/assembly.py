"""Traversal-based global sparse-matrix assembly (§3.6).

The global matrix is Σ_e P_eᵀ K_e P_e where P_e is the element's
interpolation row block (identity for ordinary slots, donor weights for
hanging slots) — algebraically ``gatherᵀ · blockdiag(K_e) · gather``.

Two implementations:

* :func:`assemble` — production path: the block diagonal is a BSR
  matrix (one dense block per element), and two sparse products give
  the global operator.  For constant-coefficient kernels the blocks are
  a Kronecker product ``diag(scale) ⊗ K_ref``.

* :func:`assemble_traversal` — the paper's §3.6 algorithm: a top-down
  traversal carries global node *ids* (not values) to the leaves, where
  one (row, col, val) entry is emitted per elemental matrix entry; the
  distributed sparse library (here ``scipy.sparse``, PETSc in the
  paper) merges duplicate indices.  No bottom-up phase is needed.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..kernels import api as kernels
from ..obs import span
from .mesh import IncompleteMesh
from .plan import operator_context

__all__ = ["assemble", "assemble_traversal", "elemental_blocks"]


def elemental_blocks(mesh: IncompleteMesh, kind="stiffness", nquad=None) -> np.ndarray:
    """Dense per-element matrices ``(n_elem, npe, npe)``."""
    ctx = operator_context(mesh)
    ref = ctx.ref(nquad)
    h = ctx.h
    if callable(kind):
        return kind(h)
    if kind == "stiffness":
        return ref.stiffness_blocks(h)
    if kind == "mass":
        return ref.mass_blocks(h)
    raise ValueError(f"unknown kind {kind!r}")


def assemble(mesh: IncompleteMesh, kind="stiffness", blocks=None) -> sp.csr_matrix:
    """Assembled global sparse operator (CSR).

    Executes through the :mod:`repro.kernels` facade: the default numpy
    backend runs the BSR triple product (bit-identical to the
    historical path); the einsum backend emits vectorized §3.6 triplets
    from the flat slot table.
    """
    with span("assembly") as osp:
        if blocks is None:
            blocks = elemental_blocks(mesh, kind)
        A = kernels.assemble(operator_context(mesh), blocks)
        osp.add("elements", blocks.shape[0])
        osp.add("nnz", int(A.nnz))
    return A


def assemble_traversal(
    mesh: IncompleteMesh, kind="stiffness", blocks=None
) -> sp.csr_matrix:
    """§3.6 traversal assembly emitting (row, col, val) triplets.

    Node *ids* are bucketed top-down exactly like nodal values in the
    traversal MATVEC; at each leaf the elemental matrix entries are
    emitted with global indices (hanging slots expand into their donor
    combinations).  Verified in tests to equal :func:`assemble`.
    """
    with span("assembly.traversal") as osp:
        if blocks is None:
            blocks = elemental_blocks(mesh, kind)
        plan = operator_context(mesh).traversal
        n = mesh.n_nodes
        rows_l, cols_l, vals_l = [], [], []
        for e in range(mesh.n_elem):
            slot, gid, w = plan.rows(e)
            Ke = blocks[e]
            # entry (i, j) of Ke contributes w_a * w_b * Ke[i, j] for
            # every (a: slot==i), (b: slot==j) pair
            kw = Ke[np.ix_(slot, slot)] * np.outer(w, w)
            rr = np.broadcast_to(gid[:, None], kw.shape)
            cc = np.broadcast_to(gid[None, :], kw.shape)
            rows_l.append(rr.ravel())
            cols_l.append(cc.ravel())
            vals_l.append(kw.ravel())
        A = sp.csr_matrix(
            (np.concatenate(vals_l), (np.concatenate(rows_l), np.concatenate(cols_l))),
            shape=(n, n),
        )
        A.sum_duplicates()
        osp.add("elements", mesh.n_elem)
        osp.add("triplets", sum(len(v) for v in vals_l))
    return A
