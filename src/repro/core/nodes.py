"""Nodal enumeration on incomplete 2:1-balanced octrees (§3.4).

For a given order p there are ``(p+1)^dim`` nodes per element.  Shared
nodes are deduplicated by sorting integer node coordinates; *hanging*
nodes (incident on a coarser neighbour's face/edge) are detected with
the paper's **cancellation node** device: every element also emits
temporary cancellation nodes at the positions where nodes of a
hypothetical one-level-finer neighbour would fall on its boundary.
After sorting, any coordinate carrying a cancellation instance is
hanging and is discarded from the set of independent DOFs.  This works
for arbitrary user-specified geometry, where the "expected instance
count" trick of isotropic domains does not (no hanging nodes may
survive at the carved boundary).

Integer node coordinates live in *2p-scaled anchor units*: the node at
local multi-index ``i`` of an element with anchor ``a`` and side ``s``
sits at ``X = 2p·a + 2·i·s``; cancellation positions are ``2p·a + k·s``
with ``k ∈ {0..2p}^dim`` on the element boundary with some odd
component.

The module also builds the per-element interpolation ("gather")
operator: a sparse matrix mapping global DOF vectors to contiguous
per-element local node vectors, with hanging slots expanded into the
coarse-donor Lagrange weights.  ``gather`` and its transpose are the
algebraic content of the top-down and bottom-up traversals of §3.5; the
faithful traversal implementation lives in :mod:`repro.core.matvec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
import scipy.sparse as sp

from ..fem.basis import LagrangeBasis, local_node_offsets
from ..obs import span
from .domain import Domain
from .octant import OctantSet, max_level
from .sfc import cached_keys, get_curve
from .treesort import block_ends

__all__ = ["MeshNodes", "build_nodes", "cancellation_offsets"]


@lru_cache(maxsize=None)
def cancellation_offsets(p: int, dim: int) -> np.ndarray:
    """Multi-indices k ∈ {0..2p}^dim of cancellation positions.

    On the element boundary (some ``k`` component is 0 or 2p) and at a
    hypothetical finer neighbour's node that is not an ordinary node
    (some ``k`` component odd).
    """
    axes = [np.arange(2 * p + 1)] * dim
    grids = np.meshgrid(*axes, indexing="ij")
    k = np.stack([g.ravel() for g in grids], axis=1)
    on_boundary = np.any((k == 0) | (k == 2 * p), axis=1)
    has_odd = np.any(k % 2 == 1, axis=1)
    return k[on_boundary & has_odd]


@dataclass
class MeshNodes:
    """Nodal data for an incomplete-octree FEM grid.

    Attributes
    ----------
    coords:
        ``(n_glob, dim)`` int64 global node coordinates in 2p-scaled
        anchor units (independent, non-hanging nodes only).
    elem_nodes:
        ``(n_elem, npe)`` int64 global ids; ``-1`` marks hanging slots.
    gather:
        CSR ``(n_elem*npe, n_glob)``; ``gather @ u`` yields contiguous
        per-element local vectors with hanging slots interpolated.
    carved_node:
        bool ``(n_glob,)``: node lies in the closed carved set C — the
        *subdomain boundary* nodes where Dirichlet data is imposed.
    domain_boundary:
        bool ``(n_glob,)``: node on the boundary of the root cube.
    hang_elem / hang_slot / hang_donor / hang_W:
        raw hanging-slot data, one row per hanging slot in row-major
        ``(elem, slot)`` order: the element and local slot index, the
        donor element, and the ``(npe,)`` donor Lagrange weight row
        (post small-weight zeroing).  This is what the incremental plan
        update (:mod:`repro.core.plan_delta`) needs to re-resolve
        chained hanging rows bit-identically without a full rebuild.
        ``None`` on nodes built by code predating the delta path.
    """

    p: int
    dim: int
    coords: np.ndarray
    elem_nodes: np.ndarray
    gather: sp.csr_matrix
    carved_node: np.ndarray
    domain_boundary: np.ndarray
    h_node: float  # physical length of one 2p-scaled unit
    hang_elem: np.ndarray | None = None
    hang_slot: np.ndarray | None = None
    hang_donor: np.ndarray | None = None
    hang_W: np.ndarray | None = None

    @property
    def n_glob(self) -> int:
        return len(self.coords)

    @property
    def n_elem(self) -> int:
        return len(self.elem_nodes)

    @property
    def npe(self) -> int:
        return (self.p + 1) ** self.dim

    @property
    def n_hanging_slots(self) -> int:
        return int((self.elem_nodes < 0).sum())

    def physical_coords(self) -> np.ndarray:
        """Physical coordinates of the global nodes, ``(n_glob, dim)``."""
        return self.coords.astype(np.float64) * self.h_node


def _element_node_coords(
    leaves: OctantSet, offsets: np.ndarray, p: int
) -> np.ndarray:
    """All per-element node coords ``(n_elem, n_off, dim)`` in 2p units.

    ``offsets`` are multi-indices scaled such that position =
    ``2p·a + offset·s`` (ordinary nodes pass ``2*i``, cancellation
    passes ``k``).
    """
    a = leaves.anchors.astype(np.int64)
    s = leaves.sizes.astype(np.int64)
    return 2 * p * a[:, None, :] + offsets[None, :, :] * s[:, None, None]


def _group_coords(all_coords: np.ndarray):
    """Group identical coordinate rows.

    Returns ``(grp, n_groups, first_of_group)`` where ``grp[i]`` is the
    group id of row i (ids ordered by sorted coordinate order) and
    ``first_of_group[g]`` indexes a representative row.
    """
    order = np.lexsort(all_coords.T)
    sc = all_coords[order]
    new = np.ones(len(sc), bool)
    if len(sc) > 1:
        new[1:] = np.any(sc[1:] != sc[:-1], axis=1)
    gid_sorted = np.cumsum(new) - 1
    grp = np.empty(len(all_coords), np.int64)
    grp[order] = gid_sorted
    first = order[new]
    return grp, int(gid_sorted[-1]) + 1 if len(sc) else 0, first


def build_nodes(
    domain: Domain,
    leaves: OctantSet,
    p: int = 1,
    curve: str = "morton",
) -> MeshNodes:
    """Enumerate independent DOFs and build the gather operator.

    ``leaves`` must be an SFC-sorted, 2:1-balanced linear octree of
    retained octants (the output of the construction + balance stack).
    """
    with span("nodes") as sp:
        nodes = _build_nodes(domain, leaves, p, curve)
        sp.add("n_nodes", nodes.n_glob)
        sp.add("hanging_slots", nodes.n_hanging_slots)
        sp.add("gather_nnz", int(nodes.gather.nnz))
    return nodes


def _build_nodes(
    domain: Domain,
    leaves: OctantSet,
    p: int,
    curve: str,
) -> MeshNodes:
    dim = domain.dim
    m = max_level(dim)
    npe = (p + 1) ** dim
    n_elem = len(leaves)
    if n_elem == 0:
        raise ValueError("cannot build nodes on an empty mesh")
    basis = LagrangeBasis(p, dim)
    ord_off = local_node_offsets(p, dim)  # (npe, dim), entries 0..p

    node_xyz = _element_node_coords(leaves, 2 * ord_off, p)  # ordinary
    canc_off = cancellation_offsets(p, dim)
    canc_xyz = _element_node_coords(leaves, canc_off, p)

    n_ord = n_elem * npe
    all_coords = np.concatenate(
        [node_xyz.reshape(n_ord, dim), canc_xyz.reshape(-1, dim)]
    )
    is_canc = np.zeros(len(all_coords), bool)
    is_canc[n_ord:] = True

    grp, n_grp, first = _group_coords(all_coords)
    grp_has_canc = np.zeros(n_grp, bool)
    np.logical_or.at(grp_has_canc, grp[is_canc], True)
    grp_has_ord = np.zeros(n_grp, bool)
    np.logical_or.at(grp_has_ord, grp[~is_canc], True)

    # independent DOFs: ordinary-only coordinates
    is_dof_grp = grp_has_ord & ~grp_has_canc
    gid_of_grp = np.full(n_grp, -1, np.int64)
    gid_of_grp[is_dof_grp] = np.arange(int(is_dof_grp.sum()))
    coords = all_coords[first[is_dof_grp]]

    elem_nodes = gid_of_grp[grp[:n_ord]].reshape(n_elem, npe)

    # --- hanging-slot interpolation -------------------------------------
    hang_e, hang_i = np.nonzero(elem_nodes < 0)
    rows_list, cols_list, vals_list = [], [], []
    # direct (non-hanging) slots
    ok_e, ok_i = np.nonzero(elem_nodes >= 0)
    rows_list.append(ok_e * npe + ok_i)
    cols_list.append(elem_nodes[ok_e, ok_i])
    vals_list.append(np.ones(len(ok_e)))

    if len(hang_e):
        don, xi = _find_donors(domain, leaves, hang_e, hang_i, p, curve)
        W = basis.eval(xi)  # (n_h, npe)
        W[np.abs(W) < 1e-12] = 0.0
        hr, hc, hv = _hanging_entries(elem_nodes, hang_e, hang_i, don, W, npe)
        rows_list += hr
        cols_list += hc
        vals_list += hv
    else:
        don = np.empty(0, np.int64)
        W = np.empty((0, npe))

    n_glob = len(coords)
    gather = sp.csr_matrix(
        (
            np.concatenate(vals_list),
            (np.concatenate(rows_list), np.concatenate(cols_list)),
        ),
        shape=(n_elem * npe, n_glob),
    )
    gather.sum_duplicates()

    h_node = domain.h_unit / (2 * p)
    phys = coords.astype(np.float64) * h_node
    carved_node = domain.carved_points(phys)
    extent = 2 * p * (1 << m)
    domain_boundary = np.any((coords == 0) | (coords == extent), axis=1)

    return MeshNodes(
        p=p,
        dim=dim,
        coords=coords,
        elem_nodes=elem_nodes,
        gather=gather,
        carved_node=carved_node,
        domain_boundary=domain_boundary,
        h_node=h_node,
        hang_elem=hang_e.astype(np.int64),
        hang_slot=hang_i.astype(np.int64),
        hang_donor=don.astype(np.int64),
        hang_W=W,
    )


def _hanging_entries(
    elem_nodes: np.ndarray,
    hang_e: np.ndarray,
    hang_i: np.ndarray,
    don: np.ndarray,
    W: np.ndarray,
    npe: int,
):
    """Gather entries for the given hanging slots.

    ``(hang_e[h], hang_i[h])`` is a hanging slot whose donor element is
    ``don[h]`` with Lagrange weight row ``W[h]``.  Slots whose donor row
    is itself partly hanging are resolved by recursive substitution —
    the slot list must therefore be *closed* under the donor relation
    (every slot reachable during the descent must appear in it; the full
    build passes all slots, the incremental build passes the recompute
    set plus its transitive donor closure).

    Returns three lists of arrays ``(rows, cols, vals)``.  Per-slot
    values depend only on that slot's donor chain data (weights and
    iteration order are chain-local), which is what makes incremental
    re-resolution bit-identical to a full rebuild.
    """
    rows_list: list[np.ndarray] = []
    cols_list: list[np.ndarray] = []
    vals_list: list[np.ndarray] = []
    G = elem_nodes[don]  # (n_h, npe)
    needs_chain = np.any((W != 0) & (G < 0), axis=1)
    easy = np.flatnonzero(~needs_chain)
    if len(easy):
        r = (hang_e[easy] * npe + hang_i[easy])[:, None] * np.ones(
            npe, np.int64
        )
        nz = W[easy] != 0
        rows_list.append(r[nz])
        cols_list.append(G[easy][nz])
        vals_list.append(W[easy][nz])
    hard = np.flatnonzero(needs_chain)
    if len(hard):
        h_index = {
            (int(e), int(i)): h for h, (e, i) in enumerate(zip(hang_e, hang_i))
        }
        memo: dict[tuple[int, int], dict[int, float]] = {}

        def resolve(e: int, i: int) -> dict[int, float]:
            key = (e, i)
            if key in memo:
                return memo[key]
            g = int(elem_nodes[e, i])
            if g >= 0:
                memo[key] = {g: 1.0}
                return memo[key]
            h = h_index[key]
            row: dict[int, float] = {}
            de = int(don[h])
            for k in range(npe):
                w = float(W[h, k])
                if w == 0.0:
                    continue
                for gg, ww in resolve(de, k).items():
                    row[gg] = row.get(gg, 0.0) + w * ww
            memo[key] = row
            return row

        for h in hard:
            e, i = int(hang_e[h]), int(hang_i[h])
            row = resolve(e, i)
            rr = e * npe + i
            for gg, ww in row.items():
                if ww != 0.0:
                    rows_list.append(np.array([rr]))
                    cols_list.append(np.array([gg]))
                    vals_list.append(np.array([ww]))
    return rows_list, cols_list, vals_list


def _find_donors(
    domain: Domain,
    leaves: OctantSet,
    hang_e: np.ndarray,
    hang_i: np.ndarray,
    p: int,
    curve: str,
):
    """Locate the coarse donor element for every hanging slot.

    Returns ``(donor_elem_index, xi)`` where ``xi`` are the hanging
    nodes' reference coordinates inside their donors.  The donor is the
    coarsest leaf whose closed cell contains the hanging coordinate; it
    is strictly coarser than the hanging slot's element (guaranteed by
    the cancellation construction — asserted).
    """
    dim = domain.dim
    m = max_level(dim)
    oracle = get_curve(curve)
    keys = cached_keys(leaves, oracle)
    ends = block_ends(keys, leaves.levels, dim)
    ord_off = local_node_offsets(p, dim)

    a = leaves.anchors.astype(np.int64)[hang_e]
    s = leaves.sizes.astype(np.int64)[hang_e]
    X = 2 * p * a + 2 * ord_off[hang_i] * s[:, None]  # (n_h, dim), 2p units

    # perturb towards each of the 2^dim corners, in 4p-scaled units
    dirs = 2 * local_node_offsets(1, dim) - 1  # (+/-1)^dim
    Q = 2 * X[:, None, :] + dirs[None, :, :]  # (n_h, 2^dim, dim) in 4p units
    extent4 = 4 * p * (1 << m)
    in_dom = np.all((Q > 0) & (Q < extent4), axis=2)
    cell = np.clip(Q // (4 * p), 0, (1 << m) - 1).astype(np.uint64)
    ckeys = oracle.keys_from_coords(cell.reshape(-1, dim).astype(np.uint32), dim)
    idx = np.searchsorted(keys, ckeys, side="right") - 1
    valid = idx >= 0
    idxc = np.clip(idx, 0, len(leaves) - 1)
    contained = valid & (ckeys >= keys[idxc]) & (ckeys < ends[idxc])
    contained &= in_dom.reshape(-1)
    lv = leaves.levels.astype(np.int64)[idxc]
    BIG = np.int64(1) << 40
    score = np.where(contained, lv * BIG + idxc, np.iinfo(np.int64).max)
    score = score.reshape(len(hang_e), -1)
    best = np.argmin(score, axis=1)
    don = idxc.reshape(len(hang_e), -1)[np.arange(len(hang_e)), best]
    best_score = score[np.arange(len(hang_e)), best]
    if np.any(best_score == np.iinfo(np.int64).max):
        raise RuntimeError("hanging node with no containing donor leaf")
    own_level = leaves.levels.astype(np.int64)[hang_e]
    don_level = leaves.levels.astype(np.int64)[don]
    if np.any(don_level >= own_level):
        raise RuntimeError(
            "donor not strictly coarser — mesh is not 2:1 balanced or "
            "node enumeration is inconsistent"
        )
    da = leaves.anchors.astype(np.int64)[don]
    ds = leaves.sizes.astype(np.int64)[don]
    xi = (X / (2 * p) - da) / ds[:, None]
    return don, xi
